//! Quickstart: build a VM, allocate linked structures, watch the
//! collector work.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tilgc::core::{build_vm, CollectorKind, GcConfig};
use tilgc::runtime::{FrameDesc, Trace, Value};

fn main() {
    // A generational collector with stack markers: 1 MB heap budget,
    // 16 KB nursery (so collections actually happen in this small demo).
    let config = GcConfig::new()
        .heap_budget_bytes(1 << 20)
        .nursery_bytes(16 << 10);
    let mut vm = build_vm(CollectorKind::GenerationalStack, &config);

    // Compiled code would come with trace tables; here we declare one
    // frame layout by hand: slot 0 holds a pointer, slot 1 an integer.
    let frame = vm.register_frame(
        FrameDesc::new("quickstart::main")
            .slot(Trace::Pointer)
            .slot(Trace::NonPointer),
    );
    let cell_site = vm.site("quickstart::cell");

    vm.push_frame(frame);
    vm.set_slot(0, Value::NULL);

    // Build a 10,000-cell list, interleaved with garbage. Live pointers
    // are re-read from the frame slot after every allocation — any
    // allocation may move objects.
    for i in 0..10_000i64 {
        let tail = vm.slot_ptr(0);
        let cell = vm
            .alloc_record(cell_site, &[Value::Int(i), Value::Ptr(tail)])
            .unwrap();
        vm.set_slot(0, Value::Ptr(cell));
        // Some short-lived garbage for the nursery to reclaim.
        for _ in 0..4 {
            let _ = vm.alloc_record(cell_site, &[Value::Int(-1), Value::NULL]);
        }
    }

    // Walk the list (loads don't allocate, so addresses stay stable).
    let mut sum = 0i64;
    let mut cur = vm.slot_ptr(0);
    while !cur.is_null() {
        sum += vm.load_int(cur, 0);
        cur = vm.load_ptr(cur, 1);
    }
    vm.pop_frame();

    let gc = vm.gc_stats();
    let m = vm.mutator_stats();
    println!("list sum                 : {sum}");
    println!("bytes allocated          : {}", m.alloc_bytes);
    println!(
        "collections              : {} ({} major)",
        gc.collections, gc.major_collections
    );
    println!("bytes copied             : {}", gc.copied_bytes);
    println!("max live after a GC      : {}", gc.max_live_bytes);
    println!(
        "frames scanned / reused  : {} / {}",
        gc.frames_scanned, gc.frames_reused
    );
    assert_eq!(sum, (0..10_000).sum::<i64>());
}
