//! The full profile-driven pretenuring workflow of §6, on the N-queens
//! benchmark:
//!
//! 1. a profiling run gathers per-site lifetime statistics;
//! 2. the Figure-2-style report shows the bimodal site distribution;
//! 3. sites with old% ≥ 80 become the pretenuring policy;
//! 4. a second run with the policy copies a fraction of the data.
//!
//! ```sh
//! cargo run --release --example profile_guided
//! ```

use tilgc::core::{build_vm, CollectorKind, GcConfig};
use tilgc::profile::{coverage, derive_policy, render_report, PolicyOptions, ReportOptions};
use tilgc::programs::Benchmark;

fn main() {
    let bench = Benchmark::Nqueen;

    // --- 1. profiling run ---
    let config = GcConfig::new()
        .heap_budget_bytes(16 << 20)
        .nursery_bytes(16 << 10)
        .profiling(true);
    let mut vm = build_vm(CollectorKind::GenerationalStack, &config);
    let checksum = bench.run(&mut vm, 1);
    vm.finish();
    let profile = vm.take_profile().expect("profiling enabled");

    // --- 2. the report ---
    let opts = ReportOptions {
        show_names: true,
        ..Default::default()
    };
    println!(
        "{}",
        render_report(bench.name(), &profile, &vm.mutator().sites, &opts)
    );

    // --- 3. the policy ---
    let policy = derive_policy(&profile, &PolicyOptions::default());
    let cov = coverage(&profile, &policy);
    println!(
        "policy: {} site(s) pretenured, covering {:.1}% of copied bytes\n",
        policy.len(),
        cov.copied_percent
    );

    // --- 4. before/after ---
    let base_config = GcConfig::new()
        .heap_budget_bytes(16 << 20)
        .nursery_bytes(16 << 10);
    let mut base_vm = build_vm(CollectorKind::GenerationalStack, &base_config);
    let base_checksum = bench.run(&mut base_vm, 1);
    assert_eq!(base_checksum, checksum, "profiling must not change results");

    let pt_config = base_config.clone().pretenure(policy);
    let mut pt_vm = build_vm(CollectorKind::GenerationalStackPretenure, &pt_config);
    let pt_checksum = bench.run(&mut pt_vm, 1);
    assert_eq!(pt_checksum, checksum, "pretenuring must not change results");

    let (base, pt) = (base_vm.gc_stats(), pt_vm.gc_stats());
    println!("without pretenuring: {:>9} bytes copied", base.copied_bytes);
    println!(
        "with pretenuring   : {:>9} bytes copied ({} pretenured at birth)",
        pt.copied_bytes, pt.pretenured_bytes
    );
    println!(
        "copying reduced by : {:.0}%",
        100.0 * (base.copied_bytes - pt.copied_bytes) as f64 / base.copied_bytes as f64
    );
}
