//! Generational stack collection on a deeply recursive program (§5).
//!
//! A 2,000-frame recursion allocates at every level. Without markers,
//! every one of the hundreds of collections rescans the whole stack; with
//! markers, collections rescan only the frames below the deepest intact
//! marker. Compare the `frames scanned` lines.
//!
//! ```sh
//! cargo run --release --example deep_recursion
//! ```

use tilgc::core::{build_vm, CollectorKind, GcConfig};
use tilgc::mem::SiteId;
use tilgc::runtime::{DescId, FrameDesc, Trace, Value, Vm};

const DEPTH: usize = 2_000;

fn recurse(vm: &mut Vm, frame: DescId, site: SiteId, depth: usize) -> i64 {
    vm.push_frame(frame);
    // Each level keeps one record live in its frame.
    let obj = vm.alloc_record(site, &[Value::Int(depth as i64)]).unwrap();
    vm.set_slot(0, Value::Ptr(obj));
    let below = if depth > 0 {
        let r = recurse(vm, frame, site, depth - 1);
        // Allocate on the way back up too, so collections see the stack
        // both growing and shrinking.
        for _ in 0..8 {
            let _ = vm.alloc_record(site, &[Value::Int(0)]);
        }
        r
    } else {
        0
    };
    let obj = vm.slot_ptr(0);
    let mine = vm.load_int(obj, 0);
    vm.pop_frame();
    below + mine
}

fn run(kind: CollectorKind) {
    let config = GcConfig::new()
        .heap_budget_bytes(4 << 20)
        .nursery_bytes(8 << 10);
    let mut vm = build_vm(kind, &config);
    let frame = vm.register_frame(FrameDesc::new("deep::level").slot(Trace::Pointer));
    let site = vm.site("deep::cell");
    let total = recurse(&mut vm, frame, site, DEPTH);
    assert_eq!(total, (0..=DEPTH as i64).sum::<i64>());

    let gc = vm.gc_stats();
    println!("--- {} ---", kind.label());
    println!("collections       : {}", gc.collections);
    println!("frames scanned    : {}", gc.frames_scanned);
    println!("frames reused     : {}", gc.frames_reused);
    println!("markers placed    : {}", gc.markers_placed);
    println!(
        "simulated GC time : {:.4}s (stack {:.4}s, {:.0}% of GC)",
        tilgc::runtime::CostModel::default().secs(gc.gc_cycles()),
        tilgc::runtime::CostModel::default().secs(gc.stack_cycles),
        100.0 * gc.stack_fraction(),
    );
}

fn main() {
    // Deep recursion needs a deep host stack in debug builds.
    std::thread::Builder::new()
        .stack_size(256 << 20)
        .spawn(|| {
            run(CollectorKind::Generational);
            run(CollectorKind::GenerationalStack);
        })
        .expect("spawn")
        .join()
        .expect("join");
}
