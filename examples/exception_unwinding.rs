//! Exceptions versus stack markers (§5).
//!
//! A raise can jump past marked frames without running their stubs, so
//! the runtime keeps a watermark `M` of the shallowest raise target; the
//! collector trusts cached scan results only below `min(M, deepest intact
//! marker)`. This example builds a deep stack, collects (placing
//! markers), raises across most of it, rebuilds, and collects again —
//! printing how much of the scan the collector was able to reuse and
//! verifying the heap stayed sound throughout.
//!
//! ```sh
//! cargo run --release --example exception_unwinding
//! ```

use tilgc::core::{build_vm, verify_vm, CollectorKind, GcConfig};
use tilgc::mem::SiteId;
use tilgc::runtime::{DescId, FrameDesc, RaiseOutcome, Trace, Value, Vm};

fn grow(vm: &mut Vm, frame: DescId, site: SiteId, levels: usize, tag: i64) {
    for i in 0..levels {
        vm.push_frame(frame);
        let obj = vm
            .alloc_record(site, &[Value::Int(tag * 1_000 + i as i64)])
            .unwrap();
        vm.set_slot(0, Value::Ptr(obj));
    }
}

fn main() {
    let config = GcConfig::new()
        .heap_budget_bytes(2 << 20)
        .nursery_bytes(8 << 10);
    let mut vm = build_vm(CollectorKind::GenerationalStack, &config);
    let frame = vm.register_frame(FrameDesc::new("exn::level").slot(Trace::Pointer));
    let site = vm.site("exn::cell");

    // Build 400 frames with a handler at depth 100, then collect: the
    // scan caches all of it and places markers every 25 frames.
    grow(&mut vm, frame, site, 100, 1);
    vm.push_handler();
    grow(&mut vm, frame, site, 300, 2);
    vm.gc_now();
    let after_build = vm.gc_stats().frames_scanned;
    println!("first collection scanned {after_build} frames (cold cache)");

    // Raise: control jumps from depth 400 to depth 100, past 12 markers,
    // without a single stub firing. The watermark records the cut.
    match vm.raise() {
        RaiseOutcome::Caught { handler_depth } => {
            println!("exception caught at depth {handler_depth}");
        }
        RaiseOutcome::Uncaught => unreachable!("a handler is installed"),
    }
    println!("watermark M = {:?}", vm.mutator().stack.watermark());

    // Rebuild and collect again: the collector may reuse only the frames
    // below the watermark — everything above was torn down and replaced.
    grow(&mut vm, frame, site, 300, 3);
    vm.gc_now();
    let gc = vm.gc_stats();
    println!(
        "second collection: {} frames rescanned, {} reused",
        gc.frames_scanned - after_build,
        gc.frames_reused
    );

    // The shadow-tag verifier proves no root was lost or left dangling.
    let report = verify_vm(&vm);
    println!(
        "heap verified: {} reachable objects, {} bytes, {} roots",
        report.objects, report.bytes, report.roots
    );

    // The per-frame roots below the cut must be the *original* (tag 1)
    // objects; above the cut, the rebuilt (tag 3) ones.
    let probe_low = vm.mutator().stack.frame(50).word(0);
    let probe_high = vm.mutator().stack.frame(250).word(0);
    let low = vm.load_int(tilgc::mem::Addr::new(probe_low as u32), 0);
    let high = vm.load_int(tilgc::mem::Addr::new(probe_high as u32), 0);
    assert_eq!(low / 1_000, 1, "below the handler: original frames");
    assert_eq!(high / 1_000, 3, "above the handler: rebuilt frames");
    println!("frame 50 root tag = {low}, frame 250 root tag = {high} — exactly as expected");
}
