//! **tilgc** — a reproduction of *Generational Stack Collection and
//! Profile-Driven Pretenuring* (Perry Cheng, Robert Harper, Peter Lee;
//! PLDI 1998) as a family of Rust crates.
//!
//! The paper presents two techniques for cutting garbage-collection cost
//! in a TIL-style (nearly tag-free, stack-based) runtime:
//!
//! 1. **Generational stack collection** (§5) — cache stack-scan results
//!    between collections; detect the unchanged stack prefix with *stack
//!    markers* (return addresses swapped for stubs every n frames) and an
//!    exception watermark. Up to 74 % GC-time reduction on deep-stack
//!    programs.
//! 2. **Profile-driven pretenuring** (§6) — heap-profile object lifetimes
//!    per allocation site; sites whose survival rate is ≥ 80 % allocate
//!    directly into the tenured generation, which is *scanned in place*
//!    instead of copied. Up to 50 % further GC-time reduction.
//!
//! This umbrella crate re-exports the workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`mem`] | word-addressed memory, object model, spaces |
//! | [`runtime`] | stack + trace tables, markers, barriers, exceptions, `Vm` |
//! | [`core`] | semispace & generational collectors, the two techniques |
//! | [`profile`] | Figure-2 reports and pretenure-policy derivation |
//! | [`programs`] | the paper's eleven benchmarks, re-implemented |
//!
//! # Quickstart
//!
//! ```
//! use tilgc::core::{build_vm, CollectorKind, GcConfig};
//! use tilgc::runtime::{FrameDesc, Trace, Value};
//!
//! // A generational collector with stack markers in a 1 MB heap.
//! let config = GcConfig::new().heap_budget_bytes(1 << 20).nursery_bytes(16 << 10);
//! let mut vm = build_vm(CollectorKind::GenerationalStack, &config);
//!
//! // Declare an activation-record layout and an allocation site.
//! let frame = vm.register_frame(FrameDesc::new("main").slot(Trace::Pointer));
//! let site = vm.site("main::pair");
//!
//! // Allocate; roots live in frame slots.
//! vm.push_frame(frame);
//! let pair = vm.alloc_record(site, &[Value::Int(1), Value::Int(2)]).unwrap();
//! vm.set_slot(0, Value::Ptr(pair));
//! vm.gc_now();
//! let pair = vm.slot_ptr(0); // relocated by the collection
//! assert_eq!(vm.load_int(pair, 1), 2);
//! ```
//!
//! See `examples/` for end-to-end walkthroughs (deep recursion with
//! markers, profile-guided pretenuring, exception unwinding) and the
//! `tilgc-experiments` binary for the regeneration of every table and
//! figure in the paper's evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tilgc_core as core;
pub use tilgc_mem as mem;
pub use tilgc_profile as profile;
pub use tilgc_programs as programs;
pub use tilgc_runtime as runtime;
