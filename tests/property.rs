//! Property-based tests over the whole stack: arbitrary mutator programs
//! must behave identically under every collector configuration, and the
//! marker machinery must never over-promise.

use proptest::prelude::*;
use tilgc::core::{build_vm, verify_vm, vm_snapshot, CollectorKind, GcConfig, PretenurePolicy};
use tilgc::mem::ObjectKind;
use tilgc::runtime::{FrameDesc, RaiseOutcome, Trace, Value, Vm};

/// One step of a random mutator program. Slot indices are taken modulo
/// the frame size, field indices modulo the object's arity, so every
/// generated program is well-formed by construction.
#[derive(Debug, Clone)]
enum Op {
    /// Allocate a 4-field record (fields 0–1 pointers seeded from slots,
    /// fields 2–3 integers); store it in a slot of the top frame.
    AllocRecord {
        dst: u8,
        src_a: u8,
        src_b: u8,
        tag: i8,
    },
    /// Allocate a 4-element pointer array initialized from a slot.
    AllocArray { dst: u8, init: u8 },
    /// Allocate a raw byte array and stamp one byte.
    AllocRaw { dst: u8, len: u8 },
    /// Barriered pointer store into a pointer field of a heap object.
    StorePtr { obj: u8, field: u8, val: u8 },
    /// Load a pointer field back into a slot.
    LoadPtr { obj: u8, field: u8, dst: u8 },
    /// Push a frame (bounded depth).
    Push,
    /// Pop a frame (never the last).
    Pop,
    /// Install an exception handler at the current frame.
    PushHandler,
    /// Raise (no-op if no handler is installed).
    Raise,
    /// Force a minor collection.
    Gc,
    /// Force a major collection.
    GcMajor,
}

const SLOTS: usize = 6;

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (any::<u8>(), any::<u8>(), any::<u8>(), any::<i8>())
            .prop_map(|(dst, src_a, src_b, tag)| Op::AllocRecord { dst, src_a, src_b, tag }),
        2 => (any::<u8>(), any::<u8>()).prop_map(|(dst, init)| Op::AllocArray { dst, init }),
        1 => (any::<u8>(), any::<u8>()).prop_map(|(dst, len)| Op::AllocRaw { dst, len }),
        3 => (any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(obj, field, val)| Op::StorePtr { obj, field, val }),
        3 => (any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(obj, field, dst)| Op::LoadPtr { obj, field, dst }),
        2 => Just(Op::Push),
        2 => Just(Op::Pop),
        1 => Just(Op::PushHandler),
        1 => Just(Op::Raise),
        1 => Just(Op::Gc),
        1 => Just(Op::GcMajor),
    ]
}

/// Interprets the program on a fresh VM of the given kind and returns the
/// canonical snapshot of the final reachable graph.
fn interpret(kind: CollectorKind, config: &GcConfig, ops: &[Op]) -> Vec<u64> {
    interpret_with(kind, config, ops, |_| {})
}

/// [`interpret`], with a check run after every op — for properties that
/// must hold at each step of an arbitrary program, not only at the end.
/// The check asserts on failure.
fn interpret_with(
    kind: CollectorKind,
    config: &GcConfig,
    ops: &[Op],
    mut after_op: impl FnMut(&Vm),
) -> Vec<u64> {
    let mut vm = build_vm(kind, config);
    let frame = vm.register_frame(FrameDesc::new("prop::frame").slots(SLOTS, Trace::Pointer));
    let rec_site = vm.site("prop::record");
    let arr_site = vm.site("prop::array");
    let raw_site = vm.site("prop::raw");
    vm.push_frame(frame);
    // Host-side record of handler anchor depths, so handlers are always
    // popped before their anchor frame (the SML scoping discipline).
    let mut handlers: Vec<usize> = Vec::new();

    let slot = |i: u8| (i as usize) % SLOTS;
    for op in ops {
        match *op {
            Op::AllocRecord {
                dst,
                src_a,
                src_b,
                tag,
            } => {
                let a = vm.slot_ptr(slot(src_a));
                let b = vm.slot_ptr(slot(src_b));
                let rec = vm
                    .alloc_record(
                        rec_site,
                        &[
                            Value::Ptr(a),
                            Value::Ptr(b),
                            Value::Int(i64::from(tag)),
                            Value::Int(42),
                        ],
                    )
                    .unwrap();
                vm.set_slot(slot(dst), Value::Ptr(rec));
            }
            Op::AllocArray { dst, init } => {
                let init = vm.slot_ptr(slot(init));
                let arr = vm.alloc_ptr_array(arr_site, 4, init).unwrap();
                vm.set_slot(slot(dst), Value::Ptr(arr));
            }
            Op::AllocRaw { dst, len } => {
                let len = 1 + (len as usize) % 64;
                let raw = vm.alloc_raw_array(raw_site, len).unwrap();
                vm.store_byte(raw, len - 1, 0xab);
                vm.set_slot(slot(dst), Value::Ptr(raw));
            }
            Op::StorePtr { obj, field, val } => {
                let target = vm.slot_ptr(slot(obj));
                if target.is_null() {
                    continue;
                }
                let header = vm.header(target);
                let field = match header.kind() {
                    ObjectKind::Record => (field as usize) % 2, // fields 0–1 are pointers
                    ObjectKind::PtrArray => (field as usize) % header.len(),
                    ObjectKind::RawArray => continue,
                };
                let val = vm.slot_ptr(slot(val));
                vm.store_ptr(target, field, val);
            }
            Op::LoadPtr { obj, field, dst } => {
                let target = vm.slot_ptr(slot(obj));
                if target.is_null() {
                    continue;
                }
                let header = vm.header(target);
                let field = match header.kind() {
                    ObjectKind::Record => (field as usize) % 2,
                    ObjectKind::PtrArray => (field as usize) % header.len(),
                    ObjectKind::RawArray => continue,
                };
                let v = vm.load_ptr(target, field);
                vm.set_slot(slot(dst), Value::Ptr(v));
            }
            Op::Push => {
                if vm.depth() < 64 {
                    vm.push_frame(frame);
                }
            }
            Op::Pop => {
                if vm.depth() > 1 {
                    while handlers.last() == Some(&vm.depth()) {
                        vm.pop_handler();
                        handlers.pop();
                    }
                    vm.pop_frame();
                }
            }
            Op::PushHandler => {
                if handlers.len() < 16 {
                    vm.push_handler();
                    handlers.push(vm.depth());
                }
            }
            Op::Raise => match vm.raise() {
                RaiseOutcome::Caught { .. } => {
                    handlers.pop();
                }
                RaiseOutcome::Uncaught => {}
            },
            Op::Gc => vm.gc_now(),
            Op::GcMajor => vm.gc_major(),
        }
        after_op(&vm);
    }
    verify_vm(&vm);
    vm_snapshot(&vm)
}

/// The paper's reuse bound: the cached-scan prefix claimed by the markers
/// — `min(M, deepest intact marker)` — must never exceed the simulation
/// oracle's true unchanged prefix.
fn assert_reuse_bound(vm: &Vm) {
    let stack = &vm.mutator().stack;
    assert!(
        stack.reusable_prefix() <= stack.true_unchanged_prefix(),
        "markers over-promised after a plan-driven scan: claimed {}, true {} (watermark {})",
        stack.reusable_prefix(),
        stack.true_unchanged_prefix(),
        stack.watermark(),
    );
}

fn tight_config() -> GcConfig {
    GcConfig::new()
        .heap_budget_bytes(1 << 20)
        .nursery_bytes(4 << 10)
        .large_object_bytes(4 << 10)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The central theorem: an arbitrary mutator program produces an
    /// identical reachable graph under the semispace baseline, the plain
    /// generational collector, generational stack collection, and
    /// pretenuring — all with tiny heaps forcing constant collection.
    #[test]
    fn all_collectors_preserve_arbitrary_programs(
        ops in proptest::collection::vec(op_strategy(), 1..300)
    ) {
        let config = tight_config();
        let baseline = interpret(CollectorKind::Semispace, &config, &ops);
        for kind in [
            CollectorKind::Generational,
            CollectorKind::GenerationalStack,
            CollectorKind::GenerationalStackPretenure,
        ] {
            let got = interpret(kind, &config, &ops);
            prop_assert_eq!(
                &got, &baseline,
                "{} diverged from the semispace baseline", kind.label()
            );
        }
        // The §7.2 tenure-threshold variant (aging nursery semispaces)
        // must agree too.
        for threshold in [1u8, 3] {
            let config = tight_config().tenure_threshold(threshold);
            let got = interpret(CollectorKind::GenerationalStack, &config, &ops);
            prop_assert_eq!(
                &got, &baseline,
                "tenure threshold {} diverged from the baseline", threshold
            );
        }
    }

    /// Pretenuring every site (the most aggressive possible policy) still
    /// preserves arbitrary programs: the pretenured-region scan must find
    /// every young reference in freshly tenured objects.
    #[test]
    fn aggressive_pretenuring_preserves_arbitrary_programs(
        ops in proptest::collection::vec(op_strategy(), 1..200)
    ) {
        let config = tight_config();
        let baseline = interpret(CollectorKind::Generational, &config, &ops);
        let mut policy = PretenurePolicy::new();
        // Site ids 1..=3 are prop::record/array/raw in registration order.
        for id in 1..=3u16 {
            policy.add_site(tilgc::mem::SiteId::new(id));
        }
        let config = tight_config().pretenure(policy);
        let got = interpret(CollectorKind::GenerationalStackPretenure, &config, &ops);
        prop_assert_eq!(got, baseline);
    }

    /// The reuse bound holds under *real* collections: when scan epochs
    /// come from the plan layer's root driver (`scan_stack` feeding
    /// `Evacuator::forward_roots`) rather than simulated marker placement
    /// — allocation-triggered minors, forced majors, exception unwinds in
    /// between — the cached prefix stays a lower bound on the oracle at
    /// every step. Run once with stack collection alone and once with a
    /// pretenured region scanned in place, and the two final graphs must
    /// also agree.
    #[test]
    fn reuse_bound_conservative_under_plan_driven_scans(
        ops in proptest::collection::vec(op_strategy(), 1..300)
    ) {
        let config = tight_config();
        let plain = interpret_with(
            CollectorKind::GenerationalStack, &config, &ops, assert_reuse_bound,
        );
        let mut policy = PretenurePolicy::new();
        // Site ids 1..=3 are prop::record/array/raw in registration order.
        for id in 1..=3u16 {
            policy.add_site(tilgc::mem::SiteId::new(id));
        }
        let config = tight_config().pretenure(policy);
        let pretenured = interpret_with(
            CollectorKind::GenerationalStackPretenure, &config, &ops, assert_reuse_bound,
        );
        prop_assert_eq!(
            pretenured, plain,
            "pretenured in-place scanning diverged from the stack-collection run"
        );
    }

    /// The marker bookkeeping never claims more reuse than reality: for
    /// arbitrary push/pop/raise interleavings, `reusable_prefix()` is a
    /// lower bound on the true unchanged prefix.
    #[test]
    fn marker_reuse_is_always_conservative(
        ops in proptest::collection::vec(op_strategy(), 1..300),
        interval in 1usize..40
    ) {
        let mut vm = build_vm(CollectorKind::GenerationalStack, &tight_config());
        let frame = vm.register_frame(
            FrameDesc::new("prop::frame").slots(SLOTS, Trace::Pointer),
        );
        vm.push_frame(frame);
        let mut handlers: Vec<usize> = Vec::new();
        for op in &ops {
            match op {
                Op::Push
                    if vm.depth() < 200 => {
                        vm.push_frame(frame);
                    }
                Op::Pop
                    if vm.depth() > 1 => {
                        while handlers.last() == Some(&vm.depth()) {
                            vm.pop_handler();
                            handlers.pop();
                        }
                        vm.pop_frame();
                    }
                Op::PushHandler
                    if handlers.len() < 16 => {
                        vm.push_handler();
                        handlers.push(vm.depth());
                    }
                Op::Raise => {
                    if let RaiseOutcome::Caught { .. } = vm.raise() {
                        handlers.pop();
                    }
                }
                Op::Gc => {
                    // Simulate a scan epoch: place markers directly.
                    vm.mutator_mut().stack.place_markers(interval);
                }
                _ => {}
            }
            let stack = &vm.mutator().stack;
            prop_assert!(
                stack.reusable_prefix() <= stack.true_unchanged_prefix(),
                "markers over-promised: claimed {}, true {}",
                stack.reusable_prefix(),
                stack.true_unchanged_prefix()
            );
        }
    }
}

/// Parses one `proptest-regressions` entry's op list out of its
/// `# shrinks to ops = [...]` comment — the `Debug` rendering of
/// `Vec<Op>`. Returns `None` on anything unrecognized so the caller can
/// fail with the offending line.
fn parse_regression_ops(line: &str) -> Option<Vec<Op>> {
    let start = line.find("shrinks to ops = [")? + "shrinks to ops = [".len();
    let end = line.rfind(']')?;
    let mut rest = line.get(start..end)?.trim();
    let mut ops = Vec::new();
    while !rest.is_empty() {
        let name_end = rest
            .find(|c: char| !c.is_ascii_alphanumeric() && c != '_')
            .unwrap_or(rest.len());
        let name = &rest[..name_end];
        rest = rest[name_end..].trim_start();
        let mut fields: Vec<(&str, i64)> = Vec::new();
        if let Some(after_brace) = rest.strip_prefix('{') {
            let close = after_brace.find('}')?;
            for kv in after_brace[..close].split(',') {
                let (k, v) = kv.split_once(':')?;
                fields.push((k.trim(), v.trim().parse().ok()?));
            }
            rest = after_brace[close + 1..].trim_start();
        }
        rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
        let field =
            |key: &str| -> Option<i64> { fields.iter().find(|(k, _)| *k == key).map(|&(_, v)| v) };
        ops.push(match name {
            "AllocRecord" => Op::AllocRecord {
                dst: field("dst")? as u8,
                src_a: field("src_a")? as u8,
                src_b: field("src_b")? as u8,
                tag: field("tag")? as i8,
            },
            "AllocArray" => Op::AllocArray {
                dst: field("dst")? as u8,
                init: field("init")? as u8,
            },
            "AllocRaw" => Op::AllocRaw {
                dst: field("dst")? as u8,
                len: field("len")? as u8,
            },
            "StorePtr" => Op::StorePtr {
                obj: field("obj")? as u8,
                field: field("field")? as u8,
                val: field("val")? as u8,
            },
            "LoadPtr" => Op::LoadPtr {
                obj: field("obj")? as u8,
                field: field("field")? as u8,
                dst: field("dst")? as u8,
            },
            "Push" => Op::Push,
            "Pop" => Op::Pop,
            "PushHandler" => Op::PushHandler,
            "Raise" => Op::Raise,
            "Gc" => Op::Gc,
            "GcMajor" => Op::GcMajor,
            _ => return None,
        });
    }
    Some(ops)
}

/// Replays every checked-in regression trace through the differential
/// property on all four collectors. The vendored proptest shim does not
/// read `proptest-regressions` files itself, so this test is what keeps
/// old counterexamples live — and it fails LOUDLY if the file is
/// missing, unreadable or unparseable, rather than silently skipping
/// the very cases that once found bugs.
#[test]
fn checked_in_regressions_replay_against_all_collectors() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/property.proptest-regressions");
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e} — checked-in regression seeds must replay on every run",
            path.display()
        )
    });
    let mut replayed = 0;
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        assert!(
            line.starts_with("cc "),
            "unrecognized regression entry at {}:{}: {line}",
            path.display(),
            idx + 1
        );
        let ops = parse_regression_ops(line).unwrap_or_else(|| {
            panic!(
                "unparseable regression entry at {}:{}: {line}",
                path.display(),
                idx + 1
            )
        });
        assert!(!ops.is_empty());
        let config = tight_config();
        let baseline = interpret(CollectorKind::Semispace, &config, &ops);
        for kind in [
            CollectorKind::Generational,
            CollectorKind::GenerationalStack,
            CollectorKind::GenerationalStackPretenure,
        ] {
            let got = interpret(kind, &config, &ops);
            assert_eq!(
                got,
                baseline,
                "{} diverged from the baseline replaying the regression at {}:{}",
                kind.label(),
                path.display(),
                idx + 1
            );
        }
        replayed += 1;
    }
    assert!(
        replayed >= 1,
        "no regression entries found in {} — the checked-in counterexample is gone",
        path.display()
    );
}
