//! Fault-injection differential: worker faults must be invisible to
//! everything but wall-clock time and the fault counters.
//!
//! For each injected fault kind (worker panic, worker stall, packet
//! drop), a 4-worker run must terminate, produce the same program
//! answer, the same reachable heap graph, and the same deterministic
//! `GcStats` as the serial oracle — only the `*_wall_ns` fields and the
//! fault counters (`workers_lost`, `degraded_collections`) may differ.
//! The degraded collection must announce itself in telemetry with a
//! schema-valid `degradation-begin`/`degradation-end` episode.

use tilgc::core::{
    build_vm, build_vm_with_recorder, verify_vm, vm_snapshot, CollectorKind, GcConfig,
    WorkerFaultKind, WorkerFaultSpec,
};
use tilgc::programs::Benchmark;
use tilgc::runtime::{Event, GcStats, RingRecorder};

fn big_stack<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
    std::thread::Builder::new()
        .stack_size(256 << 20)
        .spawn(f)
        .expect("spawn")
        .join()
        .expect("benchmark thread panicked")
}

/// Same sizing as the parallel differential: identical collection
/// timing on both lanes and enough to-space headroom that the parallel
/// gate engages.
fn config(workers: usize) -> GcConfig {
    GcConfig::new()
        .heap_budget_bytes(48 << 20)
        .nursery_bytes(16 << 10)
        .large_object_bytes(4 << 10)
        .workers(workers)
}

/// Wall-clock fields plus the fault counters are the only sanctioned
/// divergence from the serial oracle.
fn normalize(mut s: GcStats) -> GcStats {
    s.stack_wall_ns = 0;
    s.copy_wall_ns = 0;
    s.total_wall_ns = 0;
    s.workers_lost = 0;
    s.degraded_collections = 0;
    s
}

/// Runs a benchmark and returns (answer, raw stats, reachable graph).
fn run(kind: CollectorKind, bench: Benchmark, config: &GcConfig) -> (u64, GcStats, Vec<u64>) {
    let mut vm = build_vm(kind, config);
    let answer = bench.run(&mut vm, 1);
    verify_vm(&vm);
    let stats = *vm.gc_stats();
    let graph = vm_snapshot(&vm);
    (answer, stats, graph)
}

fn spec(kind: WorkerFaultKind) -> WorkerFaultSpec {
    // Worker 0's first packet pop: the 16 KiB nursery makes for short
    // packet queues, so worker 0 is the only worker guaranteed to pop
    // at all. The spec stays armed across collections until it fires.
    WorkerFaultSpec {
        kind,
        worker: 0,
        packet: 0,
    }
}

fn fault_config(kind: WorkerFaultKind) -> GcConfig {
    let c = config(4).worker_fault(spec(kind));
    match kind {
        // A short wall-clock deadline keeps the stall lane fast; the
        // watchdog is the only way a stalled worker is ever noticed.
        WorkerFaultKind::Stall => c.watchdog_ms(5),
        _ => c,
    }
}

/// All three fault kinds, against the serial oracle, on two plans
/// whose parallel lanes engage under this sizing (the semispace plan
/// never collects Life inside a 48 MiB budget, so a fault armed there
/// would be inert).
#[test]
fn injected_faults_reproduce_the_serial_oracle() {
    big_stack(|| {
        for kind in [
            CollectorKind::Generational,
            CollectorKind::GenerationalStack,
        ] {
            let serial = run(kind, Benchmark::Life, &config(1));
            for fault in [
                WorkerFaultKind::Panic,
                WorkerFaultKind::Stall,
                WorkerFaultKind::Drop,
            ] {
                let faulted = run(kind, Benchmark::Life, &fault_config(fault));
                assert_eq!(
                    serial.0,
                    faulted.0,
                    "{} / {:?}: answers diverged",
                    kind.label(),
                    fault
                );
                assert_eq!(
                    normalize(serial.1),
                    normalize(faulted.1),
                    "{} / {:?}: deterministic GcStats diverged",
                    kind.label(),
                    fault
                );
                assert_eq!(
                    serial.2,
                    faulted.2,
                    "{} / {:?}: reachable heap graphs diverged",
                    kind.label(),
                    fault
                );
                assert!(
                    faulted.1.degraded_collections >= 1,
                    "{} / {:?}: injected fault never degraded a collection",
                    kind.label(),
                    fault
                );
                match fault {
                    // A panicked or stalled worker is marked lost; a
                    // dropped packet only orphans work.
                    WorkerFaultKind::Panic | WorkerFaultKind::Stall => assert!(
                        faulted.1.workers_lost >= 1,
                        "{} / {:?}: lost worker not counted",
                        kind.label(),
                        fault
                    ),
                    WorkerFaultKind::Drop => {}
                }
                assert_eq!(
                    serial.1.workers_lost, 0,
                    "serial oracle must not lose workers"
                );
                assert_eq!(
                    serial.1.degraded_collections, 0,
                    "serial oracle must not degrade"
                );
            }
        }
    });
}

/// The degraded collection announces itself: exactly one bracketed
/// degradation episode per fired fault, with the expected trigger, and
/// the whole trace still passes the JSONL schema validator.
#[test]
fn degradation_episode_is_bracketed_and_schema_valid() {
    big_stack(|| {
        for (fault, triggers) in [
            (WorkerFaultKind::Panic, &["panic"][..]),
            // A stalled worker is usually caught by the watchdog, but
            // the queue can also close on the loss before the latch
            // releases, surfacing the episode as a panic-path loss.
            (WorkerFaultKind::Stall, &["watchdog", "panic"][..]),
            (WorkerFaultKind::Drop, &["orphan"][..]),
        ] {
            let mut vm = build_vm_with_recorder(
                CollectorKind::Generational,
                &fault_config(fault),
                Box::new(RingRecorder::with_capacity(1 << 16)),
            );
            let _ = Benchmark::Life.run(&mut vm, 1);
            verify_vm(&vm);
            let stats = *vm.gc_stats();
            assert!(stats.degraded_collections >= 1, "{fault:?}: never degraded");
            let events = RingRecorder::drain_events_from(vm.recorder_mut()).expect("ring");
            let mut begins = 0usize;
            let mut ends = 0usize;
            for e in &events {
                match e {
                    Event::DegradationBegin(b) => {
                        begins += 1;
                        assert!(
                            triggers.contains(&b.trigger),
                            "{fault:?}: unexpected trigger {:?}",
                            b.trigger
                        );
                        assert_eq!(b.workers, 4);
                        assert!(b.workers_lost <= b.workers);
                    }
                    Event::DegradationEnd(end) => {
                        ends += 1;
                        assert_eq!(end.outcome, "drained");
                    }
                    _ => {}
                }
            }
            assert_eq!(begins, ends, "{fault:?}: unbalanced degradation episodes");
            assert_eq!(
                begins as u64, stats.degraded_collections,
                "{fault:?}: episode count disagrees with GcStats"
            );
            let doc = tilgc_obs::jsonl::render("generational", "life", 1, &[], &events);
            if let Err(e) = tilgc_obs::schema::validate_jsonl(&doc) {
                panic!("{fault:?}: trace failed schema validation: {e}");
            }
        }
    });
}

/// TTSP tracking: when enabled, collection-begin events carry the
/// mutator's distance from its last safepoint poll and the trace still
/// validates; when disabled (the default), every `ttsp_cycles` is zero
/// so the JSONL output is byte-identical to pre-TTSP traces.
#[test]
fn ttsp_tracking_is_observational_and_gated() {
    big_stack(|| {
        let run_events = |track: bool| {
            let cfg = if track {
                config(1).track_ttsp(true)
            } else {
                config(1)
            };
            let mut vm = build_vm_with_recorder(
                CollectorKind::Generational,
                &cfg,
                Box::new(RingRecorder::with_capacity(1 << 16)),
            );
            let answer = Benchmark::Life.run(&mut vm, 1);
            verify_vm(&vm);
            let stats = normalize(*vm.gc_stats());
            let events = RingRecorder::drain_events_from(vm.recorder_mut()).expect("ring");
            (answer, stats, events)
        };
        let (plain_answer, plain_stats, plain_events) = run_events(false);
        let (ttsp_answer, ttsp_stats, ttsp_events) = run_events(true);
        assert_eq!(
            plain_answer, ttsp_answer,
            "TTSP tracking changed the answer"
        );
        assert_eq!(plain_stats, ttsp_stats, "TTSP tracking changed GcStats");

        let begins = |events: &[Event]| {
            events
                .iter()
                .filter_map(|e| match e {
                    Event::CollectionBegin(b) => Some(b.ttsp_cycles),
                    _ => None,
                })
                .collect::<Vec<u64>>()
        };
        let plain = begins(&plain_events);
        let tracked = begins(&ttsp_events);
        assert!(!tracked.is_empty(), "benchmark must collect");
        assert_eq!(plain.len(), tracked.len(), "collection counts diverged");
        assert!(
            plain.iter().all(|&t| t == 0),
            "untracked runs must report zero TTSP"
        );
        assert!(
            tracked.iter().any(|&t| t > 0),
            "tracked run never observed a nonzero time-to-safepoint"
        );

        // The metrics layer sees every collection, zeros included.
        let metrics = tilgc_obs::metrics::TtspMetrics::from_events(&ttsp_events);
        assert_eq!(metrics.histogram().count(), tracked.len() as u64);

        // Both traces validate; the untracked one carries no
        // `ttsp_cycles` field at all.
        for (label, events) in [("plain", &plain_events), ("ttsp", &ttsp_events)] {
            let doc = tilgc_obs::jsonl::render("generational", "life", 1, &[], events);
            if let Err(e) = tilgc_obs::schema::validate_jsonl(&doc) {
                panic!("{label}: trace failed schema validation: {e}");
            }
            if label == "plain" {
                assert!(
                    !doc.contains("ttsp_cycles"),
                    "untracked trace must omit ttsp_cycles entirely"
                );
            } else {
                assert!(
                    doc.contains("ttsp_cycles"),
                    "tracked trace must surface ttsp_cycles"
                );
            }
        }
    });
}

/// Faults armed under a serial configuration are inert: `workers = 1`
/// never takes the parallel lane, so the spec never fires and the run
/// is indistinguishable from a fault-free one.
#[test]
fn serial_runs_ignore_armed_faults() {
    big_stack(|| {
        let plain = run(CollectorKind::Generational, Benchmark::Life, &config(1));
        let armed = run(
            CollectorKind::Generational,
            Benchmark::Life,
            &config(1).worker_fault(spec(WorkerFaultKind::Panic)),
        );
        assert_eq!(plain.0, armed.0);
        assert_eq!(normalize(plain.1), normalize(armed.1));
        assert_eq!(plain.2, armed.2);
        assert_eq!(armed.1.workers_lost, 0);
        assert_eq!(armed.1.degraded_collections, 0);
    });
}
