//! Cost-model invariance: the simulated `GcStats` counters for every
//! benchmark × collector configuration must be bit-for-bit stable.
//!
//! The golden file was captured before the batched-kernel rewrite of the
//! evacuation, stack-scan, and SSB hot paths. Those kernels may only
//! change how fast the *host* executes a collection — every simulated
//! counter (words copied, words scanned, frames decoded, simulated
//! cycles) must stay identical. Any future perf work that silently
//! changes simulated results fails this test.
//!
//! Regenerate the golden (only when a deliberate semantic change is
//! intended) with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test cost_invariance
//! ```

use std::fmt::Write as _;

use tilgc_core::{
    build_vm, CollectorKind, GcConfig, GenerationalPlan, MarkerPolicy, Plan, PretenuringPlan,
    SemispacePlan,
};
use tilgc_programs::Benchmark;
use tilgc_runtime::{GcStats, MutatorState, Vm, WriteBarrier};

/// The paper's largest memory-budget multiple (k = 4 of the k sweep).
const K: f64 = 4.0;

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/cost_invariance.txt")
}

/// The experiments' nursery rule: a third of the heap, capped at the
/// scaled 32 KB cache bound (mirrors `experiments::harness`).
fn nursery_for_budget(budget: usize) -> usize {
    (32 << 10).min(budget / 3).max(4 << 10)
}

fn config_with_budget(budget: usize) -> GcConfig {
    GcConfig::new()
        .heap_budget_bytes(budget)
        .nursery_bytes(nursery_for_budget(budget))
        .large_object_bytes(4 << 10)
}

fn run_in_vm(bench: Benchmark, mut vm: Vm) -> (u64, GcStats) {
    vm.mutator_mut().check_shadows = false;
    let checksum = bench.run(&mut vm, 1);
    vm.finish();
    (checksum, *vm.gc_stats())
}

fn run(bench: Benchmark, kind: CollectorKind, config: &GcConfig) -> (u64, GcStats) {
    run_in_vm(bench, build_vm(kind, config))
}

/// A calibration run is only accepted if it never felt memory pressure:
/// no governor episode opened and no collection left a generation past
/// its budget share. A run that merely *survives* by degrading
/// gracefully is rejected just like the pre-ladder OOM panic was, so
/// the calibrated budgets (and the golden) are stable across the
/// panic-free refactor.
fn pressure_free(out: (u64, GcStats)) -> Option<(u64, GcStats)> {
    (out.1.pressure_episodes == 0 && out.1.budget_overruns == 0).then_some(out)
}

/// Like [`run`], but `None` on out-of-memory or memory pressure — the
/// calibration samples live size only at semispace collection points, so
/// a k·Min budget can genuinely undershoot a peak (the experiments
/// harness grows the budget by 25% steps for the same reason).
fn run_or_oom(bench: Benchmark, kind: CollectorKind, config: &GcConfig) -> Option<(u64, GcStats)> {
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {})); // silence the expected OOM panic
    let out =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(bench, kind, config))).ok();
    std::panic::set_hook(prev_hook);
    out.and_then(pressure_free)
}

/// [`run_or_oom`], for a pre-built VM.
fn run_in_vm_or_oom(bench: Benchmark, vm: Vm) -> Option<(u64, GcStats)> {
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_in_vm(bench, vm))).ok();
    std::panic::set_hook(prev_hook);
    out.and_then(pressure_free)
}

/// Max live bytes measured by a generous semispace run (every semispace
/// collection computes the exact live set).
fn max_live_bytes(bench: Benchmark) -> u64 {
    let config = config_with_budget(64 << 20);
    let (_, gc) = run(bench, CollectorKind::Semispace, &config);
    gc.max_live_bytes.max(8 << 10)
}

fn pretenure_config(bench: Benchmark, budget: usize) -> GcConfig {
    let profiled = config_with_budget(192 << 20).profiling(true);
    let mut vm = build_vm(CollectorKind::GenerationalStack, &profiled);
    vm.mutator_mut().check_shadows = false;
    bench.run(&mut vm, 1);
    vm.finish();
    let profile = vm.take_profile().expect("profiling enabled");
    let policy = tilgc_profile::derive_policy(&profile, &tilgc_profile::PolicyOptions::default());
    config_with_budget(budget).pretenure(policy)
}

/// One stable line per run: every deterministic `GcStats` counter plus
/// the program checksum. The wall-clock fields (`*_wall_ns`) are host
/// noise and deliberately excluded.
fn stats_line(bench: Benchmark, kind: CollectorKind, checksum: u64, g: &GcStats) -> String {
    let mut s = String::new();
    write!(
        s,
        "{}/{}: checksum={checksum:#018x} collections={} major={} copied_bytes={} \
         scanned_words={} frames_scanned={} frames_reused={} depth_at_gc_sum={} \
         slots_scanned={} roots_found={} barrier_entries={} markers_placed={} \
         pretenured_scanned_words={} pretenured_bytes={} max_live_bytes={} \
         last_live_bytes={} stack_cycles={} copy_cycles={} other_cycles={}",
        bench.name(),
        kind.label(),
        g.collections,
        g.major_collections,
        g.copied_bytes,
        g.scanned_words,
        g.frames_scanned,
        g.frames_reused,
        g.depth_at_gc_sum,
        g.slots_scanned,
        g.roots_found,
        g.barrier_entries,
        g.markers_placed,
        g.pretenured_scanned_words,
        g.pretenured_bytes,
        g.max_live_bytes,
        g.last_live_bytes,
        g.stack_cycles,
        g.copy_cycles,
        g.other_cycles,
    )
    .unwrap();
    s
}

/// Builds a VM for `kind` through the plan constructors directly — no
/// [`build_vm`]/`build_collector` — replicating the config adjustments
/// those helpers apply (marker policy forced on/off per kind, pretenuring
/// dropped where unused) and the barrier wiring (none for semispace, SSB
/// otherwise).
fn build_vm_via_plans(kind: CollectorKind, config: &GcConfig) -> Vm {
    let mut config = config.clone();
    let collector = match kind {
        CollectorKind::Semispace => {
            config.pretenure = None;
            SemispacePlan::new(&config).into_collector()
        }
        CollectorKind::Generational => {
            config.marker_policy = MarkerPolicy::Disabled;
            config.pretenure = None;
            GenerationalPlan::new(&config).into_collector()
        }
        CollectorKind::GenerationalStack => {
            if !config.marker_policy.is_enabled() {
                config.marker_policy = MarkerPolicy::PAPER;
            }
            config.pretenure = None;
            GenerationalPlan::new(&config).into_collector()
        }
        CollectorKind::GenerationalStackPretenure => {
            if !config.marker_policy.is_enabled() {
                config.marker_policy = MarkerPolicy::PAPER;
            }
            PretenuringPlan::new(&config).into_collector()
        }
    };
    let mut m = MutatorState::new();
    m.barrier = match kind {
        CollectorKind::Semispace => WriteBarrier::None,
        _ => WriteBarrier::ssb(),
    };
    Vm::with_mutator(m, collector)
}

/// The plan-based constructors must be a drop-in for `build_collector`:
/// all four collector configurations, driven by the same benchmark, must
/// produce byte-for-byte identical `GcStats` lines whether the collector
/// came from `build_vm` (pinned by the golden above) or from composing
/// the plans by hand.
#[test]
fn plan_constructors_match_build_collector() {
    let bench = Benchmark::Checksum;
    let min = 2 * max_live_bytes(bench);
    let budget = ((K * min as f64) as usize).max(48 << 10);
    for kind in CollectorKind::ALL {
        let mut budget = budget;
        let (via_builder, via_plans) = loop {
            let config = match kind {
                CollectorKind::GenerationalStackPretenure => pretenure_config(bench, budget),
                _ => config_with_budget(budget),
            };
            let builder = run_or_oom(bench, kind, &config);
            let plans = run_in_vm_or_oom(bench, build_vm_via_plans(kind, &config));
            match (builder, plans) {
                (Some(b), Some(p)) => break (b, p),
                _ => budget += budget / 4,
            }
        };
        let line_builder = stats_line(bench, kind, via_builder.0, &via_builder.1);
        let line_plans = stats_line(bench, kind, via_plans.0, &via_plans.1);
        assert_eq!(
            line_plans,
            line_builder,
            "{} via plan constructors diverged from build_collector",
            kind.label()
        );
    }
}

#[test]
fn gc_stats_match_golden() {
    let mut lines = Vec::new();
    for bench in Benchmark::ALL {
        let min = 2 * max_live_bytes(bench);
        let budget = ((K * min as f64) as usize).max(48 << 10);
        for kind in CollectorKind::ALL {
            let mut budget = budget;
            let (checksum, gc) = loop {
                let config = match kind {
                    CollectorKind::GenerationalStackPretenure => pretenure_config(bench, budget),
                    _ => config_with_budget(budget),
                };
                if let Some(out) = run_or_oom(bench, kind, &config) {
                    break out;
                }
                budget += budget / 4;
            };
            lines.push(stats_line(bench, kind, checksum, &gc));
        }
    }
    let actual = lines.join("\n") + "\n";

    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run UPDATE_GOLDEN=1 cargo test --test cost_invariance",
            path.display()
        )
    });
    if actual != golden {
        let mismatches: Vec<String> = actual
            .lines()
            .zip(golden.lines())
            .filter(|(a, g)| a != g)
            .map(|(a, g)| format!("  actual: {a}\n  golden: {g}"))
            .collect();
        panic!(
            "simulated GcStats diverged from golden ({} line(s)):\n{}",
            mismatches.len(),
            mismatches.join("\n")
        );
    }
}
