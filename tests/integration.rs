//! End-to-end integration: every benchmark, every collector, one answer.
//!
//! The paper's comparison is only meaningful if the collector never
//! changes program behaviour; these tests run the full benchmark suite
//! under all four configurations (§3) and demand identical checksums and
//! a verifiable heap afterwards.

use tilgc::core::{build_vm, verify_vm, CollectorKind, GcConfig};
use tilgc::programs::Benchmark;

fn big_stack<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
    std::thread::Builder::new()
        .stack_size(256 << 20)
        .spawn(f)
        .expect("spawn")
        .join()
        .expect("benchmark thread panicked")
}

fn small_config() -> GcConfig {
    GcConfig::new()
        .heap_budget_bytes(48 << 20)
        .nursery_bytes(16 << 10)
        .large_object_bytes(4 << 10)
}

/// The quick majority of the suite, checked under all four collectors.
#[test]
fn fast_benchmarks_agree_across_collectors() {
    big_stack(|| {
        for bench in [
            Benchmark::Checksum,
            Benchmark::Fft,
            Benchmark::Grobner,
            Benchmark::Life,
            Benchmark::Nqueen,
            Benchmark::Peg,
            Benchmark::Pia,
            Benchmark::Simple,
            Benchmark::Lexgen,
        ] {
            let mut results = Vec::new();
            for kind in CollectorKind::ALL {
                let mut vm = build_vm(kind, &small_config());
                results.push((kind.label(), bench.run(&mut vm, 1)));
                verify_vm(&vm);
            }
            assert!(
                results.windows(2).all(|w| w[0].1 == w[1].1),
                "{} disagreed across collectors: {results:?}",
                bench.name()
            );
        }
    });
}

/// The two slow, deep-stack benchmarks, same contract.
#[test]
fn deep_stack_benchmarks_agree_across_collectors() {
    big_stack(|| {
        for bench in [Benchmark::Color, Benchmark::KnuthBendix] {
            let mut results = Vec::new();
            for kind in CollectorKind::ALL {
                let mut vm = build_vm(kind, &small_config());
                results.push((kind.label(), bench.run(&mut vm, 1)));
                verify_vm(&vm);
            }
            assert!(
                results.windows(2).all(|w| w[0].1 == w[1].1),
                "{} disagreed across collectors: {results:?}",
                bench.name()
            );
        }
    });
}

/// Pretenuring with a profile-derived policy changes performance
/// characteristics, never results — across the whole Table 6 set.
#[test]
fn pretenuring_is_transparent_for_table6_programs() {
    big_stack(|| {
        for bench in [
            Benchmark::KnuthBendix,
            Benchmark::Lexgen,
            Benchmark::Nqueen,
            Benchmark::Simple,
        ] {
            // Profile.
            let config = small_config().profiling(true);
            let mut vm = build_vm(CollectorKind::GenerationalStack, &config);
            let expected = bench.run(&mut vm, 1);
            vm.finish();
            let profile = vm.take_profile().expect("profiling enabled");
            let policy =
                tilgc::profile::derive_policy(&profile, &tilgc::profile::PolicyOptions::default());

            // Re-run with the policy.
            let config = small_config().pretenure(policy);
            let mut vm = build_vm(CollectorKind::GenerationalStackPretenure, &config);
            let got = bench.run(&mut vm, 1);
            verify_vm(&vm);
            assert_eq!(
                got,
                expected,
                "pretenuring changed {}'s result",
                bench.name()
            );
        }
    });
}

/// The scaled-down Table 2 shape claims that drive the paper's analysis.
#[test]
fn table2_shape_claims_hold() {
    big_stack(|| {
        let run = |b: Benchmark| {
            let mut vm = build_vm(CollectorKind::GenerationalStack, &small_config());
            b.run(&mut vm, 1);
            (
                *vm.mutator_stats(),
                *vm.mutator().stack.stats(),
                *vm.gc_stats(),
            )
        };

        // Peg's pointer updates dwarf every other benchmark's.
        let (peg, _, _) = run(Benchmark::Peg);
        let (life, _, _) = run(Benchmark::Life);
        assert!(peg.pointer_updates > 20 * life.pointer_updates.max(1));

        // The deep-stack trio really is deep; Checksum really is shallow.
        let (_, color_stack, _) = run(Benchmark::Color);
        assert!(
            color_stack.max_depth > 200,
            "color depth {}",
            color_stack.max_depth
        );
        let (_, kb_stack, kb_gc) = run(Benchmark::KnuthBendix);
        assert!(kb_stack.max_depth > 1000, "kb depth {}", kb_stack.max_depth);
        assert!(
            kb_gc.avg_depth_at_gc() > 100.0,
            "kb avg depth {}",
            kb_gc.avg_depth_at_gc()
        );
        let (_, chk_stack, _) = run(Benchmark::Checksum);
        assert!(
            chk_stack.max_depth <= 5,
            "checksum depth {}",
            chk_stack.max_depth
        );

        // FFT is array-dominated; Checksum is record-dominated.
        let (fft, _, _) = run(Benchmark::Fft);
        assert!(fft.array_bytes() > 10 * fft.record_bytes.max(1));
        let (chk, _, _) = run(Benchmark::Checksum);
        assert!(chk.record_bytes > 10 * chk.array_bytes().max(1));
    });
}

/// Markers pay off on the deep-stack programs and cost almost nothing on
/// the shallow ones — Table 5's two claims.
#[test]
fn markers_shape_claims_hold() {
    big_stack(|| {
        let gc_cycles = |b: Benchmark, kind: CollectorKind| {
            let config = GcConfig::new()
                .heap_budget_bytes(48 << 20)
                .nursery_bytes(8 << 10)
                .large_object_bytes(4 << 10);
            let mut vm = build_vm(kind, &config);
            b.run(&mut vm, 1);
            vm.gc_stats().gc_cycles()
        };

        // Color: a large decrease.
        let without = gc_cycles(Benchmark::Color, CollectorKind::Generational);
        let with = gc_cycles(Benchmark::Color, CollectorKind::GenerationalStack);
        assert!(
            (with as f64) < 0.6 * without as f64,
            "markers should cut Color's GC cost: {with} vs {without}"
        );

        // Checksum: within a few percent either way.
        let without = gc_cycles(Benchmark::Checksum, CollectorKind::Generational);
        let with = gc_cycles(Benchmark::Checksum, CollectorKind::GenerationalStack);
        let ratio = with as f64 / without as f64;
        assert!(
            (0.9..=1.1).contains(&ratio),
            "markers should be near-free for shallow stacks: ratio {ratio}"
        );
    });
}
