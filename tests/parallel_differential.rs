//! Serial-vs-parallel differential: the work-packet scheduler must be
//! invisible to everything but wall-clock time.
//!
//! For every collector configuration, a benchmark run with `workers = 4`
//! must produce the same program answer, the same reachable heap graph,
//! and the same deterministic `GcStats` as the serial (`workers = 1`)
//! oracle — only the `*_wall_ns` fields may differ. Packet reordering
//! (the torture harness's scheduling-nondeterminism amplifier) must be
//! equally invisible.

use tilgc::core::{
    build_vm, build_vm_with_recorder, verify_vm, vm_snapshot, CollectorKind, GcConfig,
};
use tilgc::programs::Benchmark;
use tilgc::runtime::{Event, GcStats, RingRecorder};

fn big_stack<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
    std::thread::Builder::new()
        .stack_size(256 << 20)
        .spawn(f)
        .expect("spawn")
        .join()
        .expect("benchmark thread panicked")
}

/// Ample budget: identical collection timing on both lanes, and enough
/// to-space headroom that the parallel gate actually engages.
fn config(workers: usize) -> GcConfig {
    GcConfig::new()
        .heap_budget_bytes(48 << 20)
        .nursery_bytes(16 << 10)
        .large_object_bytes(4 << 10)
        .workers(workers)
}

/// Wall-clock fields are the only sanctioned divergence.
fn drop_wall(mut s: GcStats) -> GcStats {
    s.stack_wall_ns = 0;
    s.copy_wall_ns = 0;
    s.total_wall_ns = 0;
    s
}

fn run(kind: CollectorKind, bench: Benchmark, config: &GcConfig) -> (u64, GcStats, Vec<u64>) {
    let mut vm = build_vm(kind, config);
    let answer = bench.run(&mut vm, 1);
    verify_vm(&vm);
    let stats = drop_wall(*vm.gc_stats());
    let graph = vm_snapshot(&vm);
    (answer, stats, graph)
}

/// All four plans: a 4-worker run is indistinguishable from the serial
/// oracle in answer, stats, and reachable heap.
#[test]
fn parallel_matches_serial_oracle_across_all_plans() {
    big_stack(|| {
        for kind in CollectorKind::ALL {
            for bench in [Benchmark::Life, Benchmark::Lexgen] {
                let serial = run(kind, bench, &config(1));
                let parallel = run(kind, bench, &config(4));
                assert_eq!(
                    serial.0,
                    parallel.0,
                    "{} / {}: answers diverged",
                    kind.label(),
                    bench.name()
                );
                assert_eq!(
                    serial.1,
                    parallel.1,
                    "{} / {}: deterministic GcStats diverged",
                    kind.label(),
                    bench.name()
                );
                assert_eq!(
                    serial.2,
                    parallel.2,
                    "{} / {}: reachable heap graphs diverged",
                    kind.label(),
                    bench.name()
                );
            }
        }
    });
}

/// The parallel lane must actually run, not just trivially match: the
/// telemetry stream must carry collection-end events reporting 4 workers
/// whose per-worker copy totals reconcile with the collection's
/// `copied_bytes`.
#[test]
fn parallel_lane_engages_and_reconciles_per_worker_totals() {
    big_stack(|| {
        let mut vm = build_vm_with_recorder(
            CollectorKind::Generational,
            &config(4),
            Box::new(RingRecorder::with_capacity(1 << 16)),
        );
        let _ = Benchmark::Life.run(&mut vm, 1);
        verify_vm(&vm);
        assert!(vm.gc_stats().collections > 0, "benchmark must collect");
        let events = RingRecorder::drain_events_from(vm.recorder_mut()).expect("ring installed");
        let mut parallel_ends = 0usize;
        for e in &events {
            if let Event::CollectionEnd(end) = e {
                if end.workers > 1 {
                    parallel_ends += 1;
                    assert_eq!(end.workers, 4);
                    assert_eq!(end.worker_copied_bytes.len(), 4);
                    assert_eq!(
                        end.worker_copied_bytes.iter().sum::<u64>(),
                        end.copied_bytes,
                        "per-worker totals must reconcile"
                    );
                } else {
                    assert!(
                        end.worker_copied_bytes.is_empty(),
                        "serial collections carry no per-worker totals"
                    );
                }
            }
        }
        assert!(
            parallel_ends > 0,
            "at least one collection must have taken the parallel lane"
        );
    });
}

/// Packet reordering (worker-count-preserving scheduling perturbation)
/// is just as invisible as parallelism itself.
#[test]
fn packet_reorder_is_invisible() {
    big_stack(|| {
        for kind in CollectorKind::ALL {
            let plain = run(kind, Benchmark::Life, &config(3));
            let reordered = run(kind, Benchmark::Life, &config(3).packet_reorder(true));
            assert_eq!(
                plain.1,
                reordered.1,
                "{}: packet reorder changed deterministic stats",
                kind.label()
            );
            assert_eq!(
                plain.2,
                reordered.2,
                "{}: packet reorder changed the reachable heap",
                kind.label()
            );
        }
    });
}
