//! Shared experiment infrastructure: calibrated heap budgets, run
//! execution, and result bundling.
//!
//! The paper compares collectors under a fixed memory budget `k · Min`,
//! where `Min = 2 × max-live` is the least memory a copying collector
//! could need (§3). `Min` is measured here by a calibration run with a
//! generous heap; budgets for the `k` sweeps derive from it.
//!
//! Collectors are obtained through `tilgc-core`'s `build_vm`, which
//! composes the space/plan layers per `CollectorKind` — the harness
//! never constructs plans directly, so it stays insulated from the plan
//! layer's internals.

use std::collections::HashMap;
use std::time::Instant;

use tilgc_core::{build_vm, CollectorKind, GcConfig, MarkerPolicy, PretenurePolicy};
use tilgc_programs::Benchmark;
use tilgc_runtime::{CostModel, GcStats, HeapProfile, MutatorStats, StackStats};

/// The nursery cap used throughout the experiments. The paper caps the
/// nursery at the 512 KB secondary cache but shrinks it "for benchmarking
/// reasons" — and under a tight memory budget the nursery must shrink
/// with it (a 48 KB heap cannot host a 512 KB nursery). With workloads
/// scaled ~100× down from 1998 sizes, 32 KB plays the role of the cache
/// bound; the working rule is `nursery = min(32 KB, budget / 3)`.
pub const EXPERIMENT_NURSERY: usize = 32 << 10;

/// The nursery for a given budget: a third of the heap, capped at the
/// (scaled) cache size. The generous share matters: the paper's 512 KB
/// nursery dwarfs its small benchmarks' live sets, which is what lets the
/// generational collector copy almost nothing per minor collection.
pub fn nursery_for_budget(budget: usize) -> usize {
    EXPERIMENT_NURSERY.min(budget / 3).max(4 << 10)
}

/// Everything one run produces.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// The program's result checksum (must not depend on the collector).
    pub checksum: u64,
    /// Collector statistics.
    pub gc: GcStats,
    /// Mutator statistics.
    pub mutator: MutatorStats,
    /// Stack statistics.
    pub stack: StackStats,
    /// Heap profile, when profiling was requested.
    pub profile: Option<HeapProfile>,
    /// Names of the run's allocation sites (for reports).
    pub sites: tilgc_runtime::SiteRegistry,
    /// Host wall-clock for the whole run (reported by the bench harness;
    /// the tables use simulated cycles).
    #[allow(dead_code)]
    pub host_wall_secs: f64,
}

impl RunResult {
    /// Simulated total seconds (client + GC).
    pub fn total_secs(&self) -> f64 {
        self.gc_secs() + self.client_secs()
    }

    /// Simulated GC seconds.
    pub fn gc_secs(&self) -> f64 {
        CostModel::default().secs(self.gc.gc_cycles())
    }

    /// Simulated client (mutator) seconds.
    pub fn client_secs(&self) -> f64 {
        CostModel::default().secs(self.mutator.client_cycles)
    }

    /// Simulated seconds of stack (root-processing) work.
    pub fn stack_secs(&self) -> f64 {
        CostModel::default().secs(self.gc.stack_cycles)
    }

    /// Simulated seconds of copy/scan work (everything not stack).
    pub fn copy_secs(&self) -> f64 {
        CostModel::default().secs(self.gc.copy_cycles + self.gc.other_cycles)
    }
}

/// Runs `bench` once under the given collector kind and configuration.
pub fn run_once(bench: Benchmark, kind: CollectorKind, config: &GcConfig, scale: u32) -> RunResult {
    let mut vm = build_vm(kind, config);
    // Experiments run at full speed: the shadow cross-checks are covered
    // by the test suite.
    vm.mutator_mut().check_shadows = false;
    let t0 = Instant::now();
    let checksum = bench.run(&mut vm, scale);
    vm.finish();
    let host_wall_secs = t0.elapsed().as_secs_f64();
    let profile = vm.take_profile();
    RunResult {
        checksum,
        gc: *vm.gc_stats(),
        mutator: *vm.mutator_stats(),
        stack: *vm.mutator().stack.stats(),
        profile,
        sites: vm.mutator().sites.clone(),
        host_wall_secs,
    }
}

/// Calibrates and caches `Min = 2 × max-live` (bytes) per benchmark.
pub struct Calibration {
    scale: u32,
    min_bytes: HashMap<Benchmark, u64>,
}

impl Calibration {
    /// Creates an empty calibration for the given scale.
    pub fn new(scale: u32) -> Calibration {
        Calibration {
            scale,
            min_bytes: HashMap::new(),
        }
    }

    /// The scale this calibration was made for.
    pub fn scale(&self) -> u32 {
        self.scale
    }

    /// `Min` for `bench`: twice the max live bytes.
    ///
    /// Live size must be measured *exactly*: a generational collector
    /// with a generous heap never runs major collections, so tenured
    /// garbage masquerades as live data. The calibration therefore runs
    /// the semispace collector — every collection computes the precise
    /// live set — starting from a small budget and doubling on
    /// out-of-memory until the program fits.
    pub fn min_bytes(&mut self, bench: Benchmark) -> u64 {
        if let Some(&m) = self.min_bytes.get(&bench) {
            return m;
        }
        let mut budget: usize = 512 << 10;
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence expected OOM panics
        let max_live = loop {
            let config = GcConfig::new()
                .heap_budget_bytes(budget)
                .nursery_bytes(nursery_for_budget(budget));
            let scale = self.scale;
            let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_once(bench, CollectorKind::Semispace, &config, scale)
            }));
            match attempt {
                Ok(result) => break result.gc.max_live_bytes.max(8 << 10),
                Err(_) if budget < (1 << 30) => budget *= 2,
                Err(e) => {
                    std::panic::set_hook(prev_hook);
                    std::panic::resume_unwind(e)
                }
            }
        };
        std::panic::set_hook(prev_hook);
        let min = 2 * max_live;
        self.min_bytes.insert(bench, min);
        min
    }

    /// The heap budget for a given `k` (floored at 48 KB so even the
    /// tiniest benchmark has a functional heap).
    pub fn budget_for_k(&mut self, bench: Benchmark, k: f64) -> usize {
        let min = self.min_bytes(bench) as f64;
        ((k * min) as usize).max(48 << 10)
    }
}

/// Like [`run_once`] but returns `None` when the budget is genuinely too
/// tight — the paper's k = 1.5 column sails close to the minimum by
/// construction. "Too tight" means the run aborted (heap exhaustion) or
/// merely survived under pressure: a governor episode or a budget-share
/// overrun disqualifies the run, so every accepted measurement is
/// pressure-free and comparable across collectors.
pub fn run_or_oom(
    bench: Benchmark,
    kind: CollectorKind,
    config: &GcConfig,
    scale: u32,
) -> Option<RunResult> {
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let config = config.clone();
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_once(bench, kind, &config, scale)
    }))
    .ok();
    std::panic::set_hook(prev_hook);
    out.filter(|r| r.gc.pressure_episodes == 0 && r.gc.budget_overruns == 0)
}

/// Runs with the given budget, growing it by 25 % steps if the collector
/// genuinely cannot fit (semispace calibration samples live size only at
/// its own collection points, so tight budgets can undershoot a peak).
pub fn run_resilient(
    bench: Benchmark,
    kind: CollectorKind,
    mut budget: usize,
    scale: u32,
) -> RunResult {
    loop {
        let config = config_with_budget(budget);
        if let Some(r) = run_or_oom(bench, kind, &config, scale) {
            return r;
        }
        budget += budget / 4;
    }
}

/// The standard experiment configuration at budget `budget`. Large
/// arrays (≥ 4 KB — big relative to the scaled nurseries, as the paper's
/// were to its 512 KB nursery) go to the mark-sweep large-object space.
pub fn config_with_budget(budget: usize) -> GcConfig {
    GcConfig::new()
        .heap_budget_bytes(budget)
        .nursery_bytes(nursery_for_budget(budget))
        .large_object_bytes(4 << 10)
}

/// Derives the paper's pretenuring policy (old% ≥ 80) for `bench` from a
/// profiling run.
pub fn derive_pretenure_policy(bench: Benchmark, scale: u32) -> (PretenurePolicy, RunResult) {
    let config = GcConfig::new()
        .heap_budget_bytes(192 << 20)
        .nursery_bytes(EXPERIMENT_NURSERY)
        .profiling(true);
    let result = run_once(bench, CollectorKind::GenerationalStack, &config, scale);
    let profile = result.profile.as_ref().expect("profiling was enabled");
    let policy = tilgc_profile::derive_policy(profile, &tilgc_profile::PolicyOptions::default());
    (policy, result)
}

/// The paper's `k` sweep.
pub const K_VALUES: [f64; 3] = [1.5, 2.0, 4.0];

/// Formats a byte count the way the paper's tables do.
pub fn fmt_bytes(b: u64) -> String {
    if b >= 10 << 20 {
        format!("{:.0}MB", b as f64 / (1 << 20) as f64)
    } else if b >= 10 << 10 {
        format!("{}KB", b >> 10)
    } else {
        format!("{b}B")
    }
}

/// Formats simulated seconds with millisecond resolution.
pub fn fmt_secs(s: f64) -> String {
    format!("{s:.4}")
}

/// A marker-enabled configuration helper.
pub fn with_markers(mut config: GcConfig) -> GcConfig {
    config.marker_policy = MarkerPolicy::PAPER;
    config
}
