//! Regeneration of the paper's tables (1–7).

use tilgc_core::CollectorKind;
use tilgc_programs::Benchmark;

use crate::csv::CsvSink;
use crate::harness::{
    config_with_budget, derive_pretenure_policy, fmt_secs, run_or_oom, run_resilient, with_markers,
    Calibration, RunResult, K_VALUES,
};

/// Table 1: benchmark descriptions.
pub fn table1() {
    println!("Table 1: Benchmark programs");
    println!("{:-<90}", "");
    for b in Benchmark::ALL {
        println!("{:<14} {}", b.name(), b.description());
    }
}

/// Table 2: allocation characteristics.
pub fn table2(scale: u32) {
    println!("Table 2: Allocation characteristics of benchmarks (scale {scale})");
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>10} {:>16} {:>10} {:>10}",
        "Program",
        "TotalAlloc",
        "MaxLive",
        "Records",
        "Arrays",
        "Max(Avg) Frames",
        "NewFrames",
        "PtrUpdates"
    );
    println!("{:-<100}", "");
    let mut cal = Calibration::new(scale);
    for b in Benchmark::ALL {
        // A plain generous run for alloc stats + a marker run for the
        // new-frames column (without markers every frame is "new").
        let budget = cal.budget_for_k(b, 4.0);
        let mut budget = budget;
        let r = loop {
            let config = with_markers(config_with_budget(budget));
            if let Some(r) = run_or_oom(b, CollectorKind::GenerationalStack, &config, scale) {
                break r;
            }
            budget += budget / 4;
        };
        println!(
            "{:<14} {:>10} {:>10} {:>10} {:>10} {:>16} {:>10.1} {:>10}",
            b.name(),
            crate::harness::fmt_bytes(r.mutator.alloc_bytes),
            crate::harness::fmt_bytes(r.gc.max_live_bytes),
            crate::harness::fmt_bytes(r.mutator.record_bytes),
            crate::harness::fmt_bytes(r.mutator.array_bytes()),
            format!("{}({:.1})", r.stack.max_depth, r.gc.avg_depth_at_gc()),
            r.gc.avg_new_frames(),
            r.mutator.pointer_updates,
        );
    }
}

fn k_sweep(bench: Benchmark, kind: CollectorKind, cal: &mut Calibration) -> Vec<RunResult> {
    K_VALUES
        .iter()
        .map(|&k| {
            // k = 1.5 sails close to the minimum; grow the budget a notch
            // if a transient peak tips the collector over.
            let mut budget = cal.budget_for_k(bench, k);
            loop {
                let config = config_with_budget(budget);
                if let Some(r) = run_or_oom(bench, kind, &config, cal.scale()) {
                    break r;
                }
                budget += budget / 4;
            }
        })
        .collect()
}

fn csv_time_rows(rows: &[(Benchmark, Vec<RunResult>)]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|(b, results)| {
            let mut row = vec![b.name().to_string()];
            for r in results {
                row.push(format!("{:.6}", r.total_secs()));
            }
            for r in results {
                row.push(format!("{:.6}", r.gc_secs()));
            }
            for r in results {
                row.push(format!("{:.6}", r.client_secs()));
            }
            for r in results {
                row.push(r.gc.collections.to_string());
            }
            for r in results {
                row.push(r.gc.copied_bytes.to_string());
            }
            row
        })
        .collect()
}

const TIME_CSV_HEADER: [&str; 16] = [
    "program",
    "total_k1.5",
    "total_k2",
    "total_k4",
    "gc_k1.5",
    "gc_k2",
    "gc_k4",
    "client_k1.5",
    "client_k2",
    "client_k4",
    "gcs_k1.5",
    "gcs_k2",
    "gcs_k4",
    "copied_k1.5",
    "copied_k2",
    "copied_k4",
];

fn print_time_table(rows: &[(Benchmark, Vec<RunResult>)], with_depth: bool) {
    print!(
        "{:<14} {:>8} {:>8} {:>8}   {:>8} {:>8} {:>8}   {:>8} {:>8} {:>8}",
        "Program",
        "Tot k1.5",
        "Tot k2",
        "Tot k4",
        "GC k1.5",
        "GC k2",
        "GC k4",
        "Cl k1.5",
        "Cl k2",
        "Cl k4"
    );
    println!();
    println!("{:-<110}", "");
    for (b, results) in rows {
        print!("{:<14}", b.name());
        for r in results {
            print!(" {:>8}", fmt_secs(r.total_secs()));
        }
        print!("  ");
        for r in results {
            print!(" {:>8}", fmt_secs(r.gc_secs()));
        }
        print!("  ");
        for r in results {
            print!(" {:>8}", fmt_secs(r.client_secs()));
        }
        println!();
    }
    println!();
    print!(
        "{:<14} {:>8} {:>8} {:>8}   {:>12} {:>12} {:>12}",
        "Program", "GCs k1.5", "GCs k2", "GCs k4", "Copied k1.5", "Copied k2", "Copied k4"
    );
    if with_depth {
        print!(" {:>10}", "AvgFrames");
    }
    println!();
    println!("{:-<110}", "");
    for (b, results) in rows {
        print!("{:<14}", b.name());
        for r in results {
            print!(" {:>8}", r.gc.collections);
        }
        print!("  ");
        for r in results {
            print!(" {:>12}", r.gc.copied_bytes);
        }
        if with_depth {
            print!(" {:>10.1}", results[2].gc.avg_depth_at_gc());
        }
        println!();
    }
}

/// Table 3: the semispace collector across the `k` sweep.
pub fn table3(scale: u32, csv: &CsvSink) {
    println!("Table 3: Time and space usage for semispace collector (simulated seconds)");
    let mut cal = Calibration::new(scale);
    let rows: Vec<_> = Benchmark::ALL
        .into_iter()
        .map(|b| (b, k_sweep(b, CollectorKind::Semispace, &mut cal)))
        .collect();
    print_time_table(&rows, false);
    csv.write("table3_semispace", &TIME_CSV_HEADER, &csv_time_rows(&rows));
}

/// Table 4: the generational collector across the `k` sweep.
pub fn table4(scale: u32, csv: &CsvSink) {
    println!("Table 4: Time and space usage for generational collector (simulated seconds)");
    let mut cal = Calibration::new(scale);
    let rows: Vec<_> = Benchmark::ALL
        .into_iter()
        .map(|b| (b, k_sweep(b, CollectorKind::Generational, &mut cal)))
        .collect();
    print_time_table(&rows, true);
    csv.write(
        "table4_generational",
        &TIME_CSV_HEADER,
        &csv_time_rows(&rows),
    );
}

/// Table 5: GC cost breakdown without/with stack markers at k = 4.
pub fn table5(scale: u32, csv: &CsvSink) {
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    println!("Table 5: Breakdown of GC cost at k = 4 without and with stack markers");
    println!(
        "{:<14} | {:>8} {:>8} {:>8} {:>7} | {:>8} {:>8} {:>8} {:>7} | {:>9}",
        "Program", "GC", "stack", "copy", "stack%", "GC", "stack", "copy", "stack%", "GC% decr"
    );
    println!("{:-<110}", "");
    let mut cal = Calibration::new(scale);
    for b in Benchmark::ALL {
        let budget = cal.budget_for_k(b, 4.0);
        let without = run_resilient(b, CollectorKind::Generational, budget, scale);
        let with = run_resilient(b, CollectorKind::GenerationalStack, budget, scale);
        assert_eq!(
            without.checksum,
            with.checksum,
            "collector choice changed {}'s result",
            b.name()
        );
        let decr = if without.gc_secs() > 0.0 {
            100.0 * (without.gc_secs() - with.gc_secs()) / without.gc_secs()
        } else {
            0.0
        };
        println!(
            "{:<14} | {:>8} {:>8} {:>8} {:>6.1}% | {:>8} {:>8} {:>8} {:>6.1}% | {:>8.1}%",
            b.name(),
            fmt_secs(without.gc_secs()),
            fmt_secs(without.stack_secs()),
            fmt_secs(without.copy_secs()),
            100.0 * without.gc.stack_fraction(),
            fmt_secs(with.gc_secs()),
            fmt_secs(with.stack_secs()),
            fmt_secs(with.copy_secs()),
            100.0 * with.gc.stack_fraction(),
            decr,
        );
        csv_rows.push(vec![
            b.name().to_string(),
            format!("{:.6}", without.gc_secs()),
            format!("{:.6}", without.stack_secs()),
            format!("{:.6}", without.copy_secs()),
            format!("{:.6}", with.gc_secs()),
            format!("{:.6}", with.stack_secs()),
            format!("{:.6}", with.copy_secs()),
            format!("{decr:.2}"),
        ]);
    }
    csv.write(
        "table5_stack_markers",
        &[
            "program",
            "gc_plain",
            "stack_plain",
            "copy_plain",
            "gc_markers",
            "stack_markers",
            "copy_markers",
            "gc_pct_decrease",
        ],
        &csv_rows,
    );
}

/// The four programs the paper pretenures in Table 6.
pub const TABLE6_PROGRAMS: [Benchmark; 4] = [
    Benchmark::KnuthBendix,
    Benchmark::Lexgen,
    Benchmark::Nqueen,
    Benchmark::Simple,
];

/// Table 6: generational + stack markers + pretenuring.
pub fn table6(scale: u32, csv: &CsvSink) {
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    println!("Table 6: Generational collector with stack markers and pretenuring");
    println!(
        "{:<14} {:>9} {:>9} {:>9}  {:>8} {:>8} {:>8}  {:>7} {:>8} {:>7}",
        "Program",
        "GC k1.5",
        "GC k2",
        "GC k4",
        "GCs",
        "Copied4",
        "Preten4",
        "GC%dec",
        "Cl%dec",
        "Tot%dec"
    );
    println!("{:-<110}", "");
    let mut cal = Calibration::new(scale);
    for b in TABLE6_PROGRAMS {
        let (policy, _) = derive_pretenure_policy(b, scale);
        let mut gc_secs = Vec::new();
        let mut last: Option<(RunResult, RunResult)> = None;
        for &k in &K_VALUES {
            // Pretenuring needs tenured headroom; retry with a nudged
            // budget if a configuration genuinely cannot fit (both
            // configurations always use the same budget).
            let mut budget = cal.budget_for_k(b, k);
            let (baseline, pt) = loop {
                let base_cfg = config_with_budget(budget);
                let pt_cfg = base_cfg.clone().pretenure(policy.clone());
                let baseline = run_or_oom(b, CollectorKind::GenerationalStack, &base_cfg, scale);
                let pt = run_or_oom(b, CollectorKind::GenerationalStackPretenure, &pt_cfg, scale);
                match (baseline, pt) {
                    (Some(a), Some(b)) => break (a, b),
                    _ => budget += budget / 4,
                }
            };
            assert_eq!(
                baseline.checksum,
                pt.checksum,
                "pretenuring changed {}'s result",
                b.name()
            );
            gc_secs.push(pt.gc_secs());
            last = Some((baseline, pt));
        }
        let (baseline, pt) = last.expect("three k values ran");
        let pct = |base: f64, new: f64| {
            if base > 0.0 {
                100.0 * (base - new) / base
            } else {
                0.0
            }
        };
        println!(
            "{:<14} {:>9} {:>9} {:>9}  {:>8} {:>8} {:>8}  {:>6.0}% {:>7.1}% {:>6.1}%",
            b.name(),
            fmt_secs(gc_secs[0]),
            fmt_secs(gc_secs[1]),
            fmt_secs(gc_secs[2]),
            pt.gc.collections,
            pt.gc.copied_bytes,
            pt.gc.pretenured_bytes,
            pct(baseline.gc_secs(), pt.gc_secs()),
            pct(baseline.client_secs(), pt.client_secs()),
            pct(baseline.total_secs(), pt.total_secs()),
        );
        csv_rows.push(vec![
            b.name().to_string(),
            format!("{:.6}", gc_secs[0]),
            format!("{:.6}", gc_secs[1]),
            format!("{:.6}", gc_secs[2]),
            pt.gc.collections.to_string(),
            pt.gc.copied_bytes.to_string(),
            pt.gc.pretenured_bytes.to_string(),
            format!("{:.2}", pct(baseline.gc_secs(), pt.gc_secs())),
        ]);
    }
    println!("\n(pretenure policy: sites with old% >= 80 from a profiling run; %dec at k = 4)");
    csv.write(
        "table6_pretenure",
        &[
            "program",
            "gc_k1.5",
            "gc_k2",
            "gc_k4",
            "gcs_k4",
            "copied_k4",
            "pretenured_k4",
            "gc_pct_decrease_k4",
        ],
        &csv_rows,
    );
}

/// Table 7: relative GC time at k = 4 under the four configurations.
pub fn table7(scale: u32, csv: &CsvSink) {
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    println!("Table 7: Relative GC time at k = 4.0 (semispace = 100)");
    println!(
        "{:<14} {:>10} {:>13} {:>12} {:>15}",
        "Program", "semispace", "generational", "gen+markers", "gen+mark+pret"
    );
    println!("{:-<80}", "");
    let mut cal = Calibration::new(scale);
    for b in Benchmark::ALL {
        let budget = cal.budget_for_k(b, 4.0);
        let semi = run_resilient(b, CollectorKind::Semispace, budget, scale);
        let generational = run_resilient(b, CollectorKind::Generational, budget, scale);
        let markers = run_resilient(b, CollectorKind::GenerationalStack, budget, scale);
        let (policy, _) = derive_pretenure_policy(b, scale);
        let pt = {
            let mut budget = budget;
            loop {
                let pt_cfg = config_with_budget(budget).pretenure(policy.clone());
                if let Some(r) =
                    run_or_oom(b, CollectorKind::GenerationalStackPretenure, &pt_cfg, scale)
                {
                    break r;
                }
                budget += budget / 4;
            }
        };
        let base = semi.gc_secs().max(1e-12);
        let rel = |r: &RunResult| 100.0 * r.gc_secs() / base;
        println!(
            "{:<14} {:>10.0} {:>13.1} {:>12.1} {:>15.1}",
            b.name(),
            100.0,
            rel(&generational),
            rel(&markers),
            rel(&pt),
        );
        csv_rows.push(vec![
            b.name().to_string(),
            "100.0".to_string(),
            format!("{:.2}", rel(&generational)),
            format!("{:.2}", rel(&markers)),
            format!("{:.2}", rel(&pt)),
        ]);
    }
    csv.write(
        "table7_relative",
        &[
            "program",
            "semispace",
            "generational",
            "gen_markers",
            "gen_markers_pretenure",
        ],
        &csv_rows,
    );
    println!("\nBars (gen+markers+pretenure vs semispace):");
    for b in Benchmark::ALL {
        let budget = cal.budget_for_k(b, 4.0);
        let semi = run_resilient(b, CollectorKind::Semispace, budget, scale);
        let (policy, _) = derive_pretenure_policy(b, scale);
        let pt = {
            let mut budget = budget;
            loop {
                let pt_cfg = config_with_budget(budget).pretenure(policy.clone());
                if let Some(r) =
                    run_or_oom(b, CollectorKind::GenerationalStackPretenure, &pt_cfg, scale)
                {
                    break r;
                }
                budget += budget / 4;
            }
        };
        let rel = (100.0 * pt.gc_secs() / semi.gc_secs().max(1e-12)).min(160.0);
        println!(
            "{:<14} {}",
            b.name(),
            "#".repeat((rel / 2.0).ceil() as usize)
        );
    }
}

/// Figure 2: heap-profile reports for Knuth-Bendix and Nqueen.
pub fn figure2(scale: u32) {
    for b in [Benchmark::KnuthBendix, Benchmark::Nqueen] {
        let (_, result) = derive_pretenure_policy(b, scale);
        let profile = result.profile.as_ref().expect("profiling run");
        let opts = tilgc_profile::ReportOptions {
            show_names: true,
            ..Default::default()
        };
        println!(
            "{}",
            tilgc_profile::render_report(b.name(), profile, &result.sites, &opts)
        );
    }
}
