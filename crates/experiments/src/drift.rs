//! `experiments drift` — the drifting-workload benchmark: a program
//! whose allocation-site lifetimes flip mid-run, run twice under the
//! pretenuring collector.
//!
//! The *static* lane keeps the offline profile-derived policy for the
//! whole run — exactly what the paper's profile-driven flow would do
//! when the profile goes stale. The *adaptive* lane starts from the
//! same policy but lets the online estimator promote and demote sites
//! as the run's behaviour drifts. Both lanes are deterministic
//! (simulated cycles, forced collection points), so the ratio
//!
//! ```text
//! drift_adaptive_speedup_vs_static = static gc cycles / adaptive gc cycles
//! ```
//!
//! is a stable, gateable number: below 1.0 would mean adaptation made
//! the drifting workload *worse* than doing nothing.
//!
//! The workload has two sites. `drift::stable` allocates long-lived
//! records for the first half of the run (what an offline profile sees,
//! so the seed policy pretenures it) and pure garbage for the second
//! half. `drift::churn` is its mirror image: garbage first, survivors
//! after the flip. The static lane therefore spends the second half
//! tenuring garbage at birth while nursery-copying every survivor; the
//! adaptive lane demotes the stale site at the first post-flip major
//! and promotes the newly-hot one within a few minors.

use tilgc_core::{build_vm, AdaptiveConfig, CollectorKind, GcConfig, PretenurePolicy};
use tilgc_mem::SiteId;
use tilgc_runtime::{FrameDesc, GcStats, Trace, Value, Vm};

/// Site id of `drift::stable` (registered first; ids start at 1).
const STABLE_SITE: u16 = 1;

/// Rounds in the run; the lifetime flip happens halfway.
const ROUNDS: i64 = 64;
/// Survivor records chained per round by whichever site is long-lived.
const KEEP_PER_ROUND: i64 = 16;
/// Garbage records per round from whichever site is short-lived.
const JUNK_PER_ROUND: i64 = 96;

/// What one drift run measures.
pub struct DriftReport {
    /// GC cycles of the static-policy lane.
    pub static_cycles: u64,
    /// GC cycles of the adaptive lane.
    pub adaptive_cycles: u64,
    /// Program checksum (identical across lanes by construction).
    pub checksum: u64,
    /// Sites the adaptive lane promoted mid-run.
    pub promotions: u64,
    /// Sites the adaptive lane demoted mid-run.
    pub demotions: u64,
    /// `static_cycles / adaptive_cycles`.
    pub speedup: f64,
}

/// The phase-flipping program. Survivors chain onto a rooted list;
/// at the flip the old list is dropped (so the stale site's tenured
/// objects all die) and the other site starts chaining instead.
fn workload(vm: &mut Vm) -> u64 {
    let stable = vm.site("drift::stable");
    assert_eq!(stable.get(), STABLE_SITE, "site ids are registration order");
    let churn = vm.site("drift::churn");
    let d = vm.register_frame(FrameDesc::new("drift").slots(1, Trace::Pointer));
    vm.push_frame(d);
    vm.set_slot(0, Value::NULL);
    let mut checksum = 0u64;
    for round in 0..ROUNDS {
        let flipped = round >= ROUNDS / 2;
        let (keeper, junker) = if flipped {
            (churn, stable)
        } else {
            (stable, churn)
        };
        if round == ROUNDS / 2 {
            // The flip: everything the first half retained dies at once.
            vm.set_slot(0, Value::NULL);
        }
        for i in 0..KEEP_PER_ROUND {
            let tail = vm.slot_ptr(0);
            let c = vm
                .alloc_record(keeper, &[Value::Int(round * 1000 + i), Value::Ptr(tail)])
                .unwrap();
            vm.set_slot(0, Value::Ptr(c));
            checksum = checksum.rotate_left(5) ^ (round * 1000 + i) as u64;
        }
        for i in 0..JUNK_PER_ROUND {
            let j = vm
                .alloc_record(junker, &[Value::Int(-i), Value::NULL])
                .unwrap();
            checksum = checksum.rotate_left(3) ^ vm.load_int(j, 0) as u64;
        }
        vm.gc_now();
        if round % 4 == 3 {
            vm.gc_major();
        }
    }
    vm.pop_frame();
    checksum
}

/// The seed policy: what offline profiling of the *first half* derives.
fn seed_policy() -> PretenurePolicy {
    let mut policy = PretenurePolicy::new();
    policy.add_site(SiteId::new(STABLE_SITE));
    policy
}

fn lane_config() -> GcConfig {
    GcConfig::new()
        .heap_budget_bytes(512 << 10)
        .nursery_bytes(8 << 10)
        .pretenure(seed_policy())
}

fn run_lane(config: &GcConfig) -> (u64, GcStats) {
    let mut vm = build_vm(CollectorKind::GenerationalStackPretenure, config);
    vm.mutator_mut().check_shadows = false;
    let checksum = workload(&mut vm);
    vm.finish();
    (checksum, *vm.gc_stats())
}

/// Runs both lanes and returns the report. Panics if the lanes disagree
/// on the program checksum — placement must be invisible to the program.
pub fn measure() -> DriftReport {
    let (static_sum, static_gc) = run_lane(&lane_config());
    let (adaptive_sum, adaptive_gc) = run_lane(&lane_config().adaptive(AdaptiveConfig::default()));
    assert_eq!(
        static_sum, adaptive_sum,
        "adaptive placement changed the program's result"
    );
    let static_cycles = static_gc.gc_cycles();
    let adaptive_cycles = adaptive_gc.gc_cycles();
    DriftReport {
        static_cycles,
        adaptive_cycles,
        checksum: static_sum,
        promotions: adaptive_gc.sites_promoted,
        demotions: adaptive_gc.sites_demoted,
        speedup: static_cycles as f64 / adaptive_cycles as f64,
    }
}

/// Prints the human-readable drift report (the `experiments drift`
/// subcommand).
pub fn run() {
    let r = measure();
    println!(
        "drift: {ROUNDS}-round phase-flipping workload (lifetimes flip at round {})",
        ROUNDS / 2
    );
    println!(
        "  static lane   (stale offline policy): {:>12} gc cycles",
        r.static_cycles
    );
    println!(
        "  adaptive lane (online estimator):     {:>12} gc cycles  \
         ({} promotion(s), {} demotion(s))",
        r.adaptive_cycles, r.promotions, r.demotions
    );
    println!("  checksum: {:#018x} (identical across lanes)", r.checksum);
    println!("  drift_adaptive_speedup_vs_static: {:.3}", r.speedup);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_lane_flips_and_beats_static() {
        let r = measure();
        assert!(r.promotions > 0, "the newly-hot site never promoted");
        assert!(r.demotions > 0, "the stale seeded site never demoted");
        assert!(
            r.speedup >= 1.0,
            "adaptation lost to the stale policy: {:.3}",
            r.speedup
        );
    }

    #[test]
    fn measure_is_deterministic() {
        let a = measure();
        let b = measure();
        assert_eq!(a.static_cycles, b.static_cycles);
        assert_eq!(a.adaptive_cycles, b.adaptive_cycles);
        assert_eq!(a.checksum, b.checksum);
    }
}
