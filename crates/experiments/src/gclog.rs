//! `experiments gc-log` — runs one benchmark under one collector with
//! the telemetry recorder attached, renders an ASCII per-collection
//! timeline on stdout, and writes the full event stream as JSONL plus a
//! Chrome trace-event file (open it at <https://ui.perfetto.dev>).
//!
//! The recorder is host-side only: the run's simulated cycle counts and
//! `GcStats` are identical to an unrecorded run of the same program.

use std::collections::BTreeMap;
use std::process::ExitCode;

use tilgc_core::{build_vm_with_recorder, AdaptiveConfig, CollectorKind};
use tilgc_obs::metrics::PauseMetrics;
use tilgc_obs::{chrome, jsonl, schema, Event, GcPhase, RingRecorder};
use tilgc_programs::Benchmark;
use tilgc_runtime::CostModel;

use crate::harness::{config_with_budget, derive_pretenure_policy, Calibration};

/// Event capacity of the recording ring; enough for every collection the
/// scaled benchmarks perform with plenty of headroom. Overflow drops the
/// oldest events (and the tool reports it), never the run.
const RING_CAPACITY: usize = 1 << 20;

/// Width of the ASCII phase bar, in character cells.
const BAR_WIDTH: usize = 40;

/// Runs the gc-log experiment. `bench_name` / `plan_label` match
/// [`Benchmark::name`] and [`CollectorKind::label`] case-insensitively.
/// `adaptive` turns on the online pretenuring estimator (meaningful only
/// under the pretenure plan; the other plans ignore it), so its
/// promote/demote events appear in the timeline and JSONL.
pub fn run(
    bench_name: &str,
    plan_label: &str,
    out_dir: &str,
    validate: bool,
    adaptive: bool,
) -> ExitCode {
    let Some(bench) = Benchmark::ALL
        .iter()
        .copied()
        .find(|b| b.name().eq_ignore_ascii_case(bench_name))
    else {
        eprintln!(
            "unknown benchmark {bench_name:?}; expected one of: {}",
            Benchmark::ALL.map(|b| b.name()).join(", ")
        );
        return ExitCode::FAILURE;
    };
    let Some(kind) = CollectorKind::ALL
        .iter()
        .copied()
        .find(|k| k.label().eq_ignore_ascii_case(plan_label))
    else {
        eprintln!(
            "unknown plan {plan_label:?}; expected one of: {}",
            CollectorKind::ALL.map(|k| k.label()).join(", ")
        );
        return ExitCode::FAILURE;
    };

    let scale = 1;
    let mut cal = Calibration::new(scale);
    let budget = cal.budget_for_k(bench, 4.0);
    let mut config = config_with_budget(budget);
    if kind == CollectorKind::GenerationalStackPretenure {
        let (policy, _) = derive_pretenure_policy(bench, scale);
        config = config.pretenure(policy);
    }
    if adaptive {
        config = config.adaptive(AdaptiveConfig::default());
    }

    let recorder = Box::new(RingRecorder::with_capacity(RING_CAPACITY));
    let mut vm = build_vm_with_recorder(kind, &config, recorder);
    vm.mutator_mut().check_shadows = false;
    let checksum = bench.run(&mut vm, scale);
    vm.finish();

    let events = RingRecorder::drain_events_from(vm.recorder_mut())
        .expect("gc-log installed a RingRecorder");
    let dropped = match vm
        .recorder_mut()
        .as_any_mut()
        .downcast_mut::<RingRecorder>()
    {
        Some(r) => r.dropped(),
        None => 0,
    };
    let sites: Vec<(u16, String)> = vm
        .mutator()
        .sites
        .iter()
        .map(|(id, name)| (id.get(), name.to_string()))
        .collect();
    let clock_hz = CostModel::default().clock_hz;

    println!(
        "gc-log: {} on {} (budget {} bytes, checksum {checksum:#x})",
        bench.name(),
        kind.label(),
        budget
    );
    if dropped > 0 {
        println!("warning: ring overflow dropped {dropped} oldest events");
    }
    print_timeline(&events);
    print_pressure(&events);
    print_adaptive_flips(&events, &sites);
    print_site_table(&events, &sites);
    print_pause_summary(&events, events.len(), dropped, clock_hz);

    let jsonl_doc = jsonl::render(kind.label(), bench.name(), clock_hz, &sites, &events);
    let chrome_doc = chrome::render(kind.label(), bench.name(), clock_hz, &events);
    let stem = format!("gclog-{}-{}", bench.name(), kind.label());
    let jsonl_path = format!("{out_dir}/{stem}.jsonl");
    let chrome_path = format!("{out_dir}/{stem}.trace.json");
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("cannot create {out_dir}: {e}");
        return ExitCode::FAILURE;
    }
    for (path, doc) in [(&jsonl_path, &jsonl_doc), (&chrome_path, &chrome_doc)] {
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!("wrote {jsonl_path}");
    println!("wrote {chrome_path} (open at https://ui.perfetto.dev)");

    if validate {
        match schema::validate_jsonl(&jsonl_doc) {
            Ok(n) => println!("validate: {n} JSONL lines conform to the schema"),
            Err(e) => {
                eprintln!("validate: JSONL schema violation: {e}");
                return ExitCode::FAILURE;
            }
        }
        match schema::validate_chrome(&chrome_doc) {
            Ok(n) => println!("validate: Chrome trace OK ({n} trace events)"),
            Err(e) => {
                eprintln!("validate: Chrome trace violation: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// One collection's worth of events, regrouped from the flat stream.
#[derive(Default)]
struct CollectionRow {
    major: bool,
    reason: &'static str,
    depth: u64,
    phases: Vec<(GcPhase, u64)>,
    gc_cycles: u64,
    copied_bytes: u64,
    frames_scanned: u64,
    frames_reused: u64,
}

fn group_collections(events: &[Event]) -> BTreeMap<u64, CollectionRow> {
    let mut rows: BTreeMap<u64, CollectionRow> = BTreeMap::new();
    for e in events {
        match e {
            Event::CollectionBegin(b) => {
                let row = rows.entry(b.collection).or_default();
                row.major = b.major;
                row.reason = b.reason;
                row.depth = b.depth;
            }
            Event::Phase(p) => {
                rows.entry(p.collection)
                    .or_default()
                    .phases
                    .push((p.phase, p.cycles));
            }
            Event::CollectionEnd(c) => {
                let row = rows.entry(c.collection).or_default();
                row.gc_cycles = c.gc_cycles;
                row.copied_bytes = c.copied_bytes;
                row.frames_scanned = c.frames_scanned;
                row.frames_reused = c.frames_reused;
            }
            Event::SiteSample(_) => {}
            // Pressure episodes sit between collections; they get their
            // own section of the report rather than a timeline row.
            Event::PressureBegin(_) | Event::PressureRung(_) | Event::PressureEnd(_) => {}
            // Adaptive site flips likewise get their own section.
            Event::SitePromote(_) | Event::SiteDemote(_) => {}
            // Degradation episodes annotate a collection that already
            // has a timeline row; the row's cycles include the serial
            // drain, so the episode adds no separate entry.
            Event::DegradationBegin(_) | Event::DegradationEnd(_) => {}
            // Censuses feed the pause/occupancy footer, not the timeline.
            Event::HeapCensus(_) => {}
        }
    }
    rows
}

/// Prints the latency footer: pause percentiles from the streaming
/// histogram, the MMU at millisecond-equivalent windows, and the
/// recorder's event/drop accounting.
fn print_pause_summary(events: &[Event], event_count: usize, dropped: u64, clock_hz: u64) {
    let metrics = PauseMetrics::from_events(events);
    let h = metrics.histogram();
    println!();
    if h.count() > 0 {
        let model = CostModel {
            clock_hz,
            ..CostModel::default()
        };
        println!(
            "pauses (gc cycles): n={} p50={} p90={} p99={} p99.9={} max={}",
            h.count(),
            h.percentile(500),
            h.percentile(900),
            h.percentile(990),
            h.percentile(999),
            h.max()
        );
        let mmu: Vec<String> = [1u64, 10, 100]
            .iter()
            .map(|&ms| format!("{}ms={}‰", ms, metrics.mmu(model.cycles_per_ms(ms))))
            .collect();
        println!("MMU (min mutator utilization): {}", mmu.join(" "));
    }
    println!("recorder: {event_count} events, {dropped} dropped");
}

/// Prints the heap-pressure episodes: one line per episode with its
/// trigger, one indented line per governor rung climbed.
fn print_pressure(events: &[Event]) {
    let mut episode = 0u64;
    let mut open: Option<&tilgc_obs::PressureBegin> = None;
    let mut rungs: Vec<&tilgc_obs::PressureRung> = Vec::new();
    let mut printed_header = false;
    for e in events {
        match e {
            Event::PressureBegin(b) => {
                open = Some(b);
                rungs.clear();
            }
            Event::PressureRung(r) => rungs.push(r),
            Event::PressureEnd(end) => {
                episode += 1;
                if !printed_header {
                    printed_header = true;
                    println!();
                    println!("heap-pressure episodes:");
                }
                let trigger = match open.take() {
                    Some(b) => format!(
                        "site {} asked {} words of {} at cycle {}",
                        b.site, b.words, b.space, b.start_cycles
                    ),
                    None => "trigger dropped by the ring buffer".to_string(),
                };
                println!(
                    "  #{episode} {trigger} -> {} after {} rung(s), {} cycles",
                    end.outcome, end.rungs, end.cycles
                );
                for r in rungs.drain(..) {
                    println!(
                        "      {:<11} -> {} ({} cycles)",
                        r.rung, r.outcome, r.cycles
                    );
                }
            }
            _ => {}
        }
    }
}

/// Prints the adaptive pretenuring flips, one line per promote/demote
/// with the collection it happened at and the estimator's survival EWMA
/// at decision time. Silent when the run had none (adaptation off, or
/// nothing drifted).
fn print_adaptive_flips(events: &[Event], sites: &[(u16, String)]) {
    let name_of = |id: u16| {
        sites
            .iter()
            .find(|(sid, _)| *sid == id)
            .map(|(_, n)| n.as_str())
            .unwrap_or("?")
    };
    let mut printed_header = false;
    let mut header = || {
        if !printed_header {
            printed_header = true;
            println!();
            println!("adaptive site flips:");
        }
    };
    for e in events {
        match e {
            Event::SitePromote(p) => {
                header();
                println!(
                    "  gc#{:<4} promote {:<24} (survival {}‰)",
                    p.collection,
                    name_of(p.site),
                    p.survival_permille
                );
            }
            Event::SiteDemote(d) => {
                header();
                println!(
                    "  gc#{:<4} demote  {:<24} (survival {}‰, {})",
                    d.collection,
                    name_of(d.site),
                    d.survival_permille,
                    d.reason
                );
            }
            _ => {}
        }
    }
}

/// Renders a phase bar: each nonzero phase gets cells proportional to its
/// cycle share (at least one), drawn with the phase's letter code.
fn phase_bar(phases: &[(GcPhase, u64)], total: u64) -> String {
    let mut bar = String::new();
    if total == 0 {
        return bar;
    }
    for &(phase, cycles) in phases {
        if cycles == 0 {
            continue;
        }
        let cells = ((cycles as u128 * BAR_WIDTH as u128 / total as u128) as usize).max(1);
        for _ in 0..cells {
            bar.push(phase.letter());
        }
    }
    bar.truncate(BAR_WIDTH);
    bar
}

fn print_timeline(events: &[Event]) {
    let rows = group_collections(events);
    if rows.is_empty() {
        println!("no collections occurred");
        return;
    }
    let legend: Vec<String> = GcPhase::ALL
        .iter()
        .map(|p| format!("{}={}", p.letter(), p.wire_name()))
        .collect();
    println!("phases: {}", legend.join(" "));
    println!(
        "{:>5} {:>5} {:>9} {:>7} {:<bw$}  {:>11} {:>13}",
        "gc#",
        "kind",
        "reason",
        "depth",
        "phase mix (by gc cycles)",
        "copied",
        "frames",
        bw = BAR_WIDTH
    );
    for (n, row) in &rows {
        println!(
            "{:>5} {:>5} {:>9} {:>7} {:<bw$}  {:>10}B {:>6}/{:<6}",
            n,
            if row.major { "major" } else { "minor" },
            row.reason,
            row.depth,
            phase_bar(&row.phases, row.gc_cycles),
            row.copied_bytes,
            row.frames_reused,
            row.frames_scanned,
            bw = BAR_WIDTH
        );
    }
}

/// Cumulative per-site counters, summed over every collection's sample.
#[derive(Default)]
struct SiteRow {
    allocs: u64,
    alloc_bytes: u64,
    copied_objects: u64,
    copied_bytes: u64,
    survived: u64,
}

fn print_site_table(events: &[Event], sites: &[(u16, String)]) {
    let mut rows: BTreeMap<u16, SiteRow> = BTreeMap::new();
    for e in events {
        if let Event::SiteSample(s) = e {
            let row = rows.entry(s.site).or_default();
            row.allocs += s.allocs;
            row.alloc_bytes += s.alloc_bytes;
            row.copied_objects += s.copied_objects;
            row.copied_bytes += s.copied_bytes;
            row.survived += s.survived;
        }
    }
    if rows.is_empty() {
        return;
    }
    let name_of = |id: u16| {
        sites
            .iter()
            .find(|(sid, _)| *sid == id)
            .map(|(_, n)| n.as_str())
            .unwrap_or("?")
    };
    println!();
    println!(
        "{:<28} {:>10} {:>12} {:>10} {:>12} {:>9}",
        "site", "allocs", "alloc bytes", "copies", "copied bytes", "survive%"
    );
    let mut ordered: Vec<(&u16, &SiteRow)> = rows.iter().collect();
    ordered.sort_by(|a, b| b.1.alloc_bytes.cmp(&a.1.alloc_bytes).then(a.0.cmp(b.0)));
    for (id, row) in ordered {
        let pct = if row.allocs == 0 {
            0.0
        } else {
            100.0 * row.survived as f64 / row.allocs as f64
        };
        println!(
            "{:<28} {:>10} {:>12} {:>10} {:>12} {:>8.1}%",
            name_of(*id),
            row.allocs,
            row.alloc_bytes,
            row.copied_objects,
            row.copied_bytes,
            pct
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilgc_obs::PhaseSpan;

    #[test]
    fn bar_is_proportional_and_bounded() {
        let phases = vec![(GcPhase::StackDecode, 75), (GcPhase::CheneyCopy, 25)];
        let bar = phase_bar(&phases, 100);
        assert!(bar.len() <= BAR_WIDTH);
        let decode = bar.chars().filter(|&c| c == 'D').count();
        let copy = bar.chars().filter(|&c| c == 'C').count();
        assert!(decode > copy);
        assert!(copy >= 1);
    }

    #[test]
    fn grouping_collects_phases_per_collection() {
        let events = vec![
            Event::Phase(PhaseSpan {
                collection: 1,
                phase: GcPhase::RootScan,
                cycles: 10,
                wall_ns: 1,
            }),
            Event::Phase(PhaseSpan {
                collection: 2,
                phase: GcPhase::CheneyCopy,
                cycles: 20,
                wall_ns: 1,
            }),
        ];
        let rows = group_collections(&events);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[&1].phases, vec![(GcPhase::RootScan, 10)]);
    }
}
