//! `experiments bench-json` — a fixed GC-throughput suite emitting a
//! machine-readable baseline (`BENCH_pr10.json`).
//!
//! Seven wall-clock metric groups plus deterministic lanes (the
//! tables, by contrast, report only deterministic simulated cycles):
//!
//! * evacuation-scan throughput in heap words per second,
//! * stack-scan throughput in frames per second,
//! * store-buffer filter throughput in entries per second,
//! * write-barrier filter throughput in updates per second (the
//!   branch-free side-bitmap dedup plus bulk retire, against the scalar
//!   test-branch-set filter plus per-object clear walk),
//! * side-metadata bulk-clear throughput in heap megabytes retired per
//!   second,
//! * the end-to-end Table 5 workload (the four headline benchmarks
//!   under the generational collector with stack markers) in
//!   milliseconds, serial,
//! * the same workload with the work-packet scheduler at `--workers N`:
//!   parallel wall time, parallel-vs-serial speedup, and per-worker copy
//!   throughput (copied MB per second of copy-phase wall time, divided
//!   by the worker count),
//! * the drifting-workload ratio `drift_adaptive_speedup_vs_static` —
//!   simulated GC cycles of a stale static pretenure policy divided by
//!   the online-adaptive lane's, on the phase-flipping program (see the
//!   `drift` subcommand). Deterministic, so any value below 1.0 is a
//!   policy defect rather than noise,
//! * the pause/latency lane: for every collector plan, the headline
//!   workload runs once at the calibrated k = 4.0 heap budget with the
//!   telemetry recorder attached and the streaming pause histogram is
//!   merged across the four benchmarks.
//!   The baseline records each plan's p50/p99/p99.9 pause in simulated
//!   gc cycles plus the worst per-benchmark MMU at a 10 ms-equivalent
//!   window (`<plan>_pause_p50_cycles`, …, `<plan>_mmu_10ms_equiv`,
//!   with `+` in plan labels flattened to `_`). The same runs track
//!   time-to-safepoint — the client cycles between each collection and
//!   the mutator's last safepoint poll — and record per-plan
//!   `<plan>_ttsp_p50_cycles`/`<plan>_ttsp_p99_cycles` (TTSP tracking
//!   is observational, so it perturbs none of the pause numbers). All
//!   simulated-cycle numbers, so they are byte-deterministic and gate
//!   tightly.
//!
//! The kernel metrics also record the batched-vs-reference speedup
//! measured against the pre-batching scalar paths retained under
//! `tilgc-core`'s `kernel-ref` feature, so a regression in the rewrites
//! shows up as a ratio near (or below) 1.0.
//!
//! The baseline records `workers` and `host_cores` so the nightly gate
//! can tell an honest single-core measurement (parallel speedup near or
//! below 1.0 is expected — the lanes interleave on one CPU) from a real
//! scaling regression on a multi-core runner.

use std::time::Instant;

use tilgc_bench::kernels::{BarrierRig, BulkClearRig, EvacRig, SsbRig, StackRig};
use tilgc_bench::{bench_config, run_program, HEADLINERS};
use tilgc_core::{build_vm, build_vm_with_recorder, CollectorKind, GcConfig};
use tilgc_obs::metrics::{PauseHistogram, PauseMetrics, TtspMetrics};
use tilgc_obs::RingRecorder;
use tilgc_runtime::CostModel;

use crate::harness::{config_with_budget, derive_pretenure_policy, Calibration};

/// Iterations per kernel measurement (after warm-up).
const KERNEL_ITERS: usize = 200;
/// Iterations of the end-to-end workload (after warm-up).
const WORKLOAD_ITERS: usize = 5;
/// Ring capacity for the pause-lane recorder; far more than the headline
/// workload's collection count, so nothing is dropped.
const PAUSE_RING_CAPACITY: usize = 1 << 20;

/// One collector plan's deterministic pause/MMU numbers.
struct PauseLane {
    /// Plan label with `+` flattened to `_` for JSON keys.
    key: String,
    p50: u64,
    p99: u64,
    p999: u64,
    /// Worst per-benchmark MMU at the 10 ms-equivalent window, permille.
    mmu_10ms: u64,
    /// Time-to-safepoint percentiles over the same collections, in
    /// simulated client cycles since the mutator's last poll.
    ttsp_p50: u64,
    ttsp_p99: u64,
}

/// Runs the headline workload once per plan with the recorder attached
/// and reduces the event streams to pause percentiles and MMU. Purely
/// simulated cycles — deterministic across hosts and runs. The heap
/// budget is the calibrated k = 4.0 ratio (the `gc-log` rig), not the
/// huge wall-clock-suite budget: a budget so large that a plan never
/// collects would record a degenerate all-zero lane that gates nothing.
fn measure_pause_lanes() -> Vec<PauseLane> {
    let window = CostModel::default().cycles_per_ms(10);
    let scale = 1;
    let mut cal = Calibration::new(scale);
    CollectorKind::ALL
        .iter()
        .map(|&kind| {
            let mut hist = PauseHistogram::new();
            let mut ttsp = TtspMetrics::new();
            let mut mmu_10ms = 1000u64;
            for &bench in HEADLINERS.iter() {
                let budget = cal.budget_for_k(bench, 4.0);
                // TTSP tracking is observational: it charges no cycles,
                // so the pause lane's numbers are unchanged by it.
                let mut config = config_with_budget(budget).track_ttsp(true);
                if kind == CollectorKind::GenerationalStackPretenure {
                    let (policy, _) = derive_pretenure_policy(bench, scale);
                    config = config.pretenure(policy);
                }
                let recorder = Box::new(RingRecorder::with_capacity(PAUSE_RING_CAPACITY));
                let mut vm = build_vm_with_recorder(kind, &config, recorder);
                vm.mutator_mut().check_shadows = false;
                bench.run(&mut vm, scale);
                vm.finish();
                let gc_cycles = vm.gc_stats().gc_cycles();
                let client_cycles = vm.mutator_stats().client_cycles;
                let events = RingRecorder::drain_events_from(vm.recorder_mut())
                    .expect("bench-json installed a RingRecorder");
                let mut metrics = PauseMetrics::from_events(&events);
                metrics.set_horizon(client_cycles + gc_cycles);
                hist.merge(metrics.histogram());
                ttsp.merge(TtspMetrics::from_events(&events).histogram());
                mmu_10ms = mmu_10ms.min(metrics.mmu(window));
            }
            PauseLane {
                key: kind.label().replace('+', "_"),
                p50: hist.percentile(500),
                p99: hist.percentile(990),
                p999: hist.percentile(999),
                mmu_10ms,
                ttsp_p50: ttsp.histogram().percentile(500),
                ttsp_p99: ttsp.histogram().percentile(990),
            }
        })
        .collect()
}

/// Times `pass` over `iters` iterations and returns the median seconds
/// per iteration. A few warm-up passes are discarded first.
fn median_pass_secs<F: FnMut()>(mut pass: F, iters: usize) -> f64 {
    for _ in 0..3 {
        pass();
    }
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            pass();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_unstable_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    samples[samples.len() / 2]
}

/// One pass of the Table 5 workload under `config`, returning its
/// checksum plus the aggregate copied bytes and copy-phase wall time
/// across every collection of the pass.
fn workload_pass(config: &GcConfig) -> (u64, u64, u64) {
    let mut checksum = 0u64;
    let mut copied_bytes = 0u64;
    let mut copy_wall_ns = 0u64;
    for &bench in HEADLINERS.iter() {
        let mut vm = build_vm(CollectorKind::GenerationalStack, config);
        vm.mutator_mut().check_shadows = false;
        let c = bench.run(&mut vm, 1);
        vm.finish();
        copied_bytes += vm.gc_stats().copied_bytes;
        copy_wall_ns += vm.gc_stats().copy_wall_ns;
        checksum = checksum.rotate_left(7) ^ c;
    }
    (checksum, copied_bytes, copy_wall_ns)
}

/// Runs the suite, prints a human-readable summary, and writes the
/// JSON baseline to `path`. `workers` sizes the parallel lane of the
/// Table 5 workload.
pub fn run(path: &str, workers: usize) {
    println!(
        "GC throughput baseline ({KERNEL_ITERS} kernel iters, {WORKLOAD_ITERS} workload iters, \
         {workers} workers)"
    );
    println!("{}", "-".repeat(78));

    let mut rig = EvacRig::new();
    let evac_batched = median_pass_secs(
        || {
            std::hint::black_box(rig.scan_pass());
        },
        KERNEL_ITERS,
    );
    let mut rig_ref = EvacRig::new();
    let evac_reference = median_pass_secs(
        || {
            std::hint::black_box(rig_ref.scan_pass_reference());
        },
        KERNEL_ITERS,
    );
    let evac_words_per_sec = rig.words_per_pass as f64 / evac_batched;
    let evac_speedup = evac_reference / evac_batched;
    println!("evac scan:   {evac_words_per_sec:>14.0} words/s   {evac_speedup:.2}x vs reference");

    let mut rig = StackRig::new();
    let stack_batched = median_pass_secs(
        || {
            std::hint::black_box(rig.scan_pass());
        },
        KERNEL_ITERS,
    );
    let mut rig_ref = StackRig::new();
    let stack_reference = median_pass_secs(
        || {
            std::hint::black_box(rig_ref.scan_pass_reference());
        },
        KERNEL_ITERS,
    );
    let stack_frames_per_sec = rig.frames_per_pass as f64 / stack_batched;
    let stack_speedup = stack_reference / stack_batched;
    println!(
        "stack scan:  {stack_frames_per_sec:>14.0} frames/s  {stack_speedup:.2}x vs reference"
    );

    let mut rig = SsbRig::new();
    let ssb_batched = median_pass_secs(
        || {
            std::hint::black_box(rig.filter_pass());
        },
        KERNEL_ITERS,
    );
    let mut rig_ref = SsbRig::new();
    let ssb_reference = median_pass_secs(
        || {
            std::hint::black_box(rig_ref.filter_pass_reference());
        },
        KERNEL_ITERS,
    );
    let ssb_entries_per_sec = rig.entries_per_pass as f64 / ssb_batched;
    let ssb_speedup = ssb_reference / ssb_batched;
    println!("ssb filter:  {ssb_entries_per_sec:>14.0} entries/s {ssb_speedup:.2}x vs reference");

    let mut rig = BarrierRig::new();
    let mut barrier_recorded = 0u64;
    let barrier_batched = median_pass_secs(
        || {
            barrier_recorded = std::hint::black_box(rig.filter_pass());
        },
        KERNEL_ITERS,
    );
    let mut rig_ref = BarrierRig::new();
    let mut barrier_recorded_ref = 0u64;
    let barrier_reference = median_pass_secs(
        || {
            barrier_recorded_ref = std::hint::black_box(rig_ref.filter_pass_reference());
        },
        KERNEL_ITERS,
    );
    assert_eq!(
        barrier_recorded, barrier_recorded_ref,
        "branch-free barrier filter diverged from the scalar reference"
    );
    let barrier_updates_per_sec = rig.updates_per_pass as f64 / barrier_batched;
    let barrier_speedup = barrier_reference / barrier_batched;
    println!(
        "barrier:     {barrier_updates_per_sec:>14.0} updates/s {barrier_speedup:.2}x vs reference"
    );

    let mut rig = BulkClearRig::new();
    let bulk_clear_secs = median_pass_secs(
        || {
            std::hint::black_box(rig.clear_pass());
        },
        KERNEL_ITERS,
    );
    let bulk_clear_mb_per_sec = rig.heap_mb_per_pass / bulk_clear_secs;
    println!("bulk clear:  {bulk_clear_mb_per_sec:>14.0} MB/s      (heap MB of retired metadata)");

    // End-to-end: the Table 5 headline workload under the generational
    // collector with stack markers, at the standard benchmark scale.
    let config = bench_config(192 << 20);
    let mut workload_checksum = 0u64;
    let workload_secs = median_pass_secs(
        || {
            workload_checksum = HEADLINERS
                .iter()
                .map(|&b| run_program(b, CollectorKind::GenerationalStack, &config, 1))
                .fold(0u64, |acc, c| acc.rotate_left(7) ^ c);
        },
        WORKLOAD_ITERS,
    );
    let workload_ms = workload_secs * 1e3;
    println!("table5 e2e:  {workload_ms:>14.2} ms        checksum {workload_checksum:#018x}");

    // The same workload with the work-packet scheduler engaged. The
    // serial and parallel lanes are defined to produce identical
    // answers, so a checksum mismatch here is a correctness bug, not
    // noise.
    let par_config = bench_config(192 << 20).workers(workers);
    let mut par_checksum = 0u64;
    let mut par_copied_bytes = 0u64;
    let mut par_copy_wall_ns = 0u64;
    let par_secs = median_pass_secs(
        || {
            let (checksum, copied, copy_ns) = workload_pass(&par_config);
            par_checksum = checksum;
            par_copied_bytes = copied;
            par_copy_wall_ns = copy_ns;
        },
        WORKLOAD_ITERS,
    );
    assert_eq!(
        par_checksum, workload_checksum,
        "parallel Table 5 workload diverged from the serial oracle"
    );
    let par_ms = par_secs * 1e3;
    let par_speedup = workload_secs / par_secs;
    let par_copy_mb_per_sec_per_worker = if par_copy_wall_ns > 0 {
        (par_copied_bytes as f64 / (1u64 << 20) as f64)
            / (par_copy_wall_ns as f64 / 1e9)
            / workers as f64
    } else {
        0.0
    };
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "table5 par:  {par_ms:>14.2} ms        {par_speedup:.2}x vs serial, {workers} workers \
         on {host_cores} cores, {par_copy_mb_per_sec_per_worker:.1} MB/s/worker copy"
    );

    // Deterministic: the drifting workload under stale-static vs online
    // adaptive pretenuring, in simulated GC cycles.
    let drift = crate::drift::measure();
    let drift_speedup = drift.speedup;
    println!(
        "drift:       {drift_speedup:>14.3} x         adaptive vs static on the \
         phase-flipping workload"
    );

    // Deterministic: per-plan pause percentiles and MMU over the same
    // headline workload, in simulated gc cycles.
    let lanes = measure_pause_lanes();
    let mut pause_json = String::new();
    for lane in &lanes {
        println!(
            "pauses:      {:>14} p50={} p99={} p99.9={} gc-cycles, MMU@10ms {}‰, \
             TTSP p50={} p99={}",
            lane.key, lane.p50, lane.p99, lane.p999, lane.mmu_10ms, lane.ttsp_p50, lane.ttsp_p99
        );
        pause_json.push_str(&format!(
            ",\n    \"{k}_pause_p50_cycles\": {},\n    \"{k}_pause_p99_cycles\": {},\n    \
             \"{k}_pause_p999_cycles\": {},\n    \"{k}_mmu_10ms_equiv\": {},\n    \
             \"{k}_ttsp_p50_cycles\": {},\n    \"{k}_ttsp_p99_cycles\": {}",
            lane.p50,
            lane.p99,
            lane.p999,
            lane.mmu_10ms,
            lane.ttsp_p50,
            lane.ttsp_p99,
            k = lane.key
        ));
    }

    let json = format!(
        "{{\n  \"suite\": \"gc-throughput-baseline\",\n  \"kernel_iters\": {KERNEL_ITERS},\n  \"workload_iters\": {WORKLOAD_ITERS},\n  \"workers\": {workers},\n  \"host_cores\": {host_cores},\n  \"metrics\": {{\n    \"evac_words_per_sec\": {evac_words_per_sec:.0},\n    \"evac_speedup_vs_reference\": {evac_speedup:.3},\n    \"stack_scan_frames_per_sec\": {stack_frames_per_sec:.0},\n    \"stack_scan_speedup_vs_reference\": {stack_speedup:.3},\n    \"ssb_filter_entries_per_sec\": {ssb_entries_per_sec:.0},\n    \"ssb_filter_speedup_vs_reference\": {ssb_speedup:.3},\n    \"barrier_filter_updates_per_sec\": {barrier_updates_per_sec:.0},\n    \"barrier_filter_speedup_vs_reference\": {barrier_speedup:.3},\n    \"bulk_clear_mb_per_sec\": {bulk_clear_mb_per_sec:.0},\n    \"table5_workload_ms\": {workload_ms:.3},\n    \"table5_workload_checksum\": {workload_checksum},\n    \"table5_parallel_workload_ms\": {par_ms:.3},\n    \"table5_parallel_speedup\": {par_speedup:.3},\n    \"par_copy_mb_per_sec_per_worker\": {par_copy_mb_per_sec_per_worker:.1},\n    \"drift_adaptive_speedup_vs_static\": {drift_speedup:.3}{pause_json}\n  }}\n}}\n"
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
    }
}
