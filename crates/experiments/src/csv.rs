//! Minimal CSV writing for the experiment tables.
//!
//! `experiments <table> --csv <dir>` writes `<dir>/<table>.csv` alongside
//! the human-readable output, so results can be plotted or diffed without
//! parsing the text tables.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Where CSV output goes, if anywhere.
#[derive(Clone, Debug, Default)]
pub struct CsvSink {
    dir: Option<PathBuf>,
}

impl CsvSink {
    /// A sink that writes nothing.
    pub fn disabled() -> CsvSink {
        CsvSink::default()
    }

    /// A sink writing one file per table into `dir` (created if needed).
    pub fn into_dir(dir: &Path) -> std::io::Result<CsvSink> {
        fs::create_dir_all(dir)?;
        Ok(CsvSink {
            dir: Some(dir.to_path_buf()),
        })
    }

    /// Writes `name.csv` with the given header and rows. Fields are
    /// quoted only when they contain commas or quotes.
    pub fn write(&self, name: &str, header: &[&str], rows: &[Vec<String>]) {
        let Some(dir) = &self.dir else { return };
        let path = dir.join(format!("{name}.csv"));
        let mut out = match fs::File::create(&path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("csv: cannot create {}: {e}", path.display());
                return;
            }
        };
        let quote = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut text = header
            .iter()
            .map(|h| quote(h))
            .collect::<Vec<_>>()
            .join(",");
        text.push('\n');
        for row in rows {
            text.push_str(&row.iter().map(|f| quote(f)).collect::<Vec<_>>().join(","));
            text.push('\n');
        }
        if let Err(e) = out.write_all(text.as_bytes()) {
            eprintln!("csv: write to {} failed: {e}", path.display());
        } else {
            eprintln!("csv: wrote {}", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_writes_nothing() {
        CsvSink::disabled().write("x", &["a"], &[vec!["1".into()]]);
    }

    #[test]
    fn writes_and_quotes() {
        let dir = std::env::temp_dir().join("tilgc_csv_test");
        let sink = CsvSink::into_dir(&dir).expect("temp dir");
        sink.write(
            "t",
            &["name", "value"],
            &[
                vec!["plain".into(), "1".into()],
                vec!["with,comma".into(), "a\"b".into()],
            ],
        );
        let text = fs::read_to_string(dir.join("t.csv")).expect("file written");
        assert_eq!(text, "name,value\nplain,1\n\"with,comma\",\"a\"\"b\"\n");
        let _ = fs::remove_dir_all(&dir);
    }
}
