//! `experiments slo-report` — evaluates pause-time/MMU service-level
//! objectives over a telemetry event stream.
//!
//! Two sources: `--input FILE.jsonl` replays a stream previously written
//! by `gc-log` (or any producer of the documented schema), while the
//! default live mode runs one benchmark under one collector with the
//! recorder attached — the same rig as `gc-log` — and evaluates the
//! stream it just captured. Either way the report is computed entirely
//! in the deterministic cycle domain: the percentile table comes from
//! the streaming [`PauseHistogram`](tilgc_obs::metrics::PauseHistogram),
//! the MMU curve from the exact sliding-window minimum, and the verdict
//! from an [`SloSpec`] assembled out of `--max-p*`/`--min-mmu` bounds.
//! Any violated bound makes the process exit nonzero, which is what lets
//! CI gate on it.
//!
//! Time-to-safepoint is surfaced alongside the pauses whenever the
//! stream carries it: replayed files contribute their `ttsp_cycles`
//! fields, and `--ttsp` turns tracking on for live runs. The section is
//! omitted when every observation is zero, so untracked runs render
//! exactly as before.
//!
//! One caveat for replayed streams: the timeline horizon is the last
//! recorded event, so mutator time after the final collection is not
//! visible and whole-run MMU reads slightly low. Live mode extends the
//! horizon to the run's full `client + gc` cycle total.

use std::fmt::Write as _;
use std::process::ExitCode;

use tilgc_core::{build_vm_with_recorder, AdaptiveConfig, CollectorKind};
use tilgc_obs::json;
use tilgc_obs::metrics::{fmt_permille, PauseMetrics, SloSpec, TtspMetrics};
use tilgc_obs::{jsonl, schema, Event, RingRecorder};
use tilgc_programs::Benchmark;
use tilgc_runtime::CostModel;

use crate::harness::{config_with_budget, derive_pretenure_policy, Calibration};

/// Ring capacity for live runs; matches `gc-log`.
const RING_CAPACITY: usize = 1 << 20;

/// Width of the MMU bar, in character cells (one cell per 40‰).
const MMU_BAR_WIDTH: usize = 25;

/// The default MMU windows of the report, in milliseconds of the
/// stream's clock (the paper's latency story is told at these scales).
const MMU_WINDOWS_MS: [u64; 7] = [1, 2, 5, 10, 20, 50, 100];

/// Everything `slo-report` needs, assembled by `main`'s flag parser.
pub struct SloRequest {
    /// Replay this JSONL file instead of running a benchmark.
    pub input: Option<String>,
    /// Live mode: benchmark name (matched case-insensitively).
    pub bench: String,
    /// Live mode: collector plan label.
    pub plan: String,
    /// Live mode: enable the online pretenuring estimator.
    pub adaptive: bool,
    /// Live mode: track time-to-safepoint (observational; the replay
    /// path surfaces TTSP whenever the stream carries it).
    pub ttsp: bool,
    /// Schema-validate the stream before evaluating it.
    pub validate: bool,
    /// Also write the report text to this file (CI artifact).
    pub report: Option<String>,
    /// The bounds to enforce; empty means report-only (always exit 0).
    pub spec: SloSpec,
}

/// One space row of the most recent heap census, for the report footer.
struct CensusRow {
    space: String,
    used_words: u64,
    reserved_words: u64,
    chunks: u64,
}

/// The last heap census seen in the stream.
#[derive(Default)]
struct LastCensus {
    collection: u64,
    pretenured_sites: u64,
    rows: Vec<CensusRow>,
}

/// Everything extracted from a stream, whatever its source.
struct StreamSummary {
    source: String,
    plan: String,
    bench: String,
    clock_hz: u64,
    metrics: PauseMetrics,
    /// Time-to-safepoint observations, one per collection. All-zero
    /// when the stream was recorded without TTSP tracking (the JSONL
    /// sink omits the field for zero), so the report section is gated
    /// on a nonzero maximum.
    ttsp: TtspMetrics,
    census: Option<LastCensus>,
    event_count: usize,
    dropped: u64,
}

pub fn run(req: &SloRequest) -> ExitCode {
    let summary = match &req.input {
        Some(path) => match summarize_jsonl_file(path, req.validate) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("slo-report: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => match summarize_live_run(req) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("slo-report: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    let (text, violations) = render_report(&summary, &req.spec);
    print!("{text}");
    if let Some(path) = &req.report {
        if let Err(e) = std::fs::write(path, &text) {
            eprintln!("slo-report: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    if violations == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Replays a JSONL file into a [`StreamSummary`] without reconstructing
/// `Event` values: each line is parsed and only the fields the metrics
/// need are read.
fn summarize_jsonl_file(path: &str, validate: bool) -> Result<StreamSummary, String> {
    let doc = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if validate {
        let n = schema::validate_jsonl(&doc).map_err(|e| format!("{path}: schema: {e}"))?;
        println!("validate: {n} JSONL lines conform to the schema");
    }
    let mut metrics = PauseMetrics::new();
    let mut ttsp = TtspMetrics::new();
    let mut plan = String::from("?");
    let mut bench = String::from("?");
    let mut clock_hz = CostModel::default().clock_hz;
    let mut census: Option<LastCensus> = None;
    let mut open: Option<u64> = None;
    let mut event_count = 0usize;
    for (i, line) in doc.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("{path}:{}: {e}", i + 1))?;
        let kind = v
            .get("type")
            .and_then(|t| t.as_str())
            .ok_or_else(|| format!("{path}:{}: line without a type", i + 1))?;
        let num = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(|n| n.as_u64())
                .ok_or_else(|| format!("{path}:{}: {kind} missing {key}", i + 1))
        };
        match kind {
            "meta" => {
                clock_hz = num("clock_hz")?;
                if let Some(p) = v.get("plan").and_then(|p| p.as_str()) {
                    plan = p.to_string();
                }
                if let Some(b) = v.get("bench").and_then(|b| b.as_str()) {
                    bench = b.to_string();
                }
                continue; // not an event
            }
            "collection-begin" => {
                open = Some(num("start_cycles")?);
                // Optional: the sink omits it when zero (and always,
                // before TTSP tracking existed).
                ttsp.push(v.get("ttsp_cycles").and_then(|n| n.as_u64()).unwrap_or(0));
            }
            "collection-end" => {
                let gc_cycles = num("gc_cycles")?;
                let end_cycles = num("end_cycles")?;
                let start = open
                    .take()
                    .unwrap_or_else(|| end_cycles.saturating_sub(gc_cycles));
                metrics.push_pause(start, end_cycles, gc_cycles);
            }
            "heap-census" => {
                let mut last = LastCensus {
                    collection: num("collection")?,
                    pretenured_sites: num("pretenured_sites")?,
                    rows: Vec::new(),
                };
                let spaces = v
                    .get("spaces")
                    .and_then(|s| s.as_array())
                    .ok_or_else(|| format!("{path}:{}: census without spaces", i + 1))?;
                for s in spaces {
                    let field = |key: &str| s.get(key).and_then(|n| n.as_u64()).unwrap_or(0);
                    last.rows.push(CensusRow {
                        space: s
                            .get("space")
                            .and_then(|n| n.as_str())
                            .unwrap_or("?")
                            .to_string(),
                        used_words: field("used_words"),
                        reserved_words: field("reserved_words"),
                        chunks: field("chunks"),
                    });
                }
                census = Some(last);
            }
            _ => {}
        }
        event_count += 1;
    }
    Ok(StreamSummary {
        source: path.to_string(),
        plan,
        bench,
        clock_hz,
        metrics,
        ttsp,
        census,
        event_count,
        // A file has no ring; whatever was dropped at record time is
        // simply absent from it.
        dropped: 0,
    })
}

/// Runs one benchmark with the recorder attached — the `gc-log` rig —
/// and summarizes the captured stream.
fn summarize_live_run(req: &SloRequest) -> Result<StreamSummary, String> {
    let bench = Benchmark::ALL
        .iter()
        .copied()
        .find(|b| b.name().eq_ignore_ascii_case(&req.bench))
        .ok_or_else(|| {
            format!(
                "unknown benchmark {:?}; expected one of: {}",
                req.bench,
                Benchmark::ALL.map(|b| b.name()).join(", ")
            )
        })?;
    let kind = CollectorKind::ALL
        .iter()
        .copied()
        .find(|k| k.label().eq_ignore_ascii_case(&req.plan))
        .ok_or_else(|| {
            format!(
                "unknown plan {:?}; expected one of: {}",
                req.plan,
                CollectorKind::ALL.map(|k| k.label()).join(", ")
            )
        })?;

    let scale = 1;
    let mut cal = Calibration::new(scale);
    let budget = cal.budget_for_k(bench, 4.0);
    let mut config = config_with_budget(budget);
    if kind == CollectorKind::GenerationalStackPretenure {
        let (policy, _) = derive_pretenure_policy(bench, scale);
        config = config.pretenure(policy);
    }
    if req.adaptive {
        config = config.adaptive(AdaptiveConfig::default());
    }
    if req.ttsp {
        config = config.track_ttsp(true);
    }

    let recorder = Box::new(RingRecorder::with_capacity(RING_CAPACITY));
    let mut vm = build_vm_with_recorder(kind, &config, recorder);
    vm.mutator_mut().check_shadows = false;
    bench.run(&mut vm, scale);
    vm.finish();

    let stats = *vm.gc_stats();
    let client_cycles = vm.mutator_stats().client_cycles;
    let events = RingRecorder::drain_events_from(vm.recorder_mut())
        .expect("slo-report installed a RingRecorder");
    let dropped = match vm
        .recorder_mut()
        .as_any_mut()
        .downcast_mut::<RingRecorder>()
    {
        Some(r) => r.dropped(),
        None => 0,
    };
    let clock_hz = CostModel::default().clock_hz;

    if req.validate {
        let sites: Vec<(u16, String)> = vm
            .mutator()
            .sites
            .iter()
            .map(|(id, name)| (id.get(), name.to_string()))
            .collect();
        let doc = jsonl::render(kind.label(), bench.name(), clock_hz, &sites, &events);
        let n = schema::validate_jsonl(&doc).map_err(|e| format!("schema: {e}"))?;
        println!("validate: {n} JSONL lines conform to the schema");
    }

    let mut metrics = PauseMetrics::from_events(&events);
    metrics.set_horizon(client_cycles + stats.gc_cycles());
    let ttsp = TtspMetrics::from_events(&events);
    let census = events.iter().rev().find_map(|e| match e {
        Event::HeapCensus(c) => Some(LastCensus {
            collection: c.collection,
            pretenured_sites: c.pretenured_sites,
            rows: c
                .spaces
                .iter()
                .map(|s| CensusRow {
                    space: s.space.to_string(),
                    used_words: s.used_words,
                    reserved_words: s.reserved_words,
                    chunks: s.chunks,
                })
                .collect(),
        }),
        _ => None,
    });
    Ok(StreamSummary {
        source: format!("{} on {} (live)", bench.name(), kind.label()),
        plan: kind.label().to_string(),
        bench: bench.name().to_string(),
        clock_hz,
        metrics,
        ttsp,
        census,
        event_count: events.len(),
        dropped,
    })
}

/// Renders the full report and returns it with the violation count.
fn render_report(summary: &StreamSummary, spec: &SloSpec) -> (String, usize) {
    let mut out = String::new();
    let model = CostModel {
        clock_hz: summary.clock_hz,
        ..CostModel::default()
    };
    let h = summary.metrics.histogram();
    let _ = writeln!(out, "slo-report: {}", summary.source);
    let _ = writeln!(
        out,
        "plan {}, bench {}, clock {} Hz, horizon {} cycles",
        summary.plan,
        summary.bench,
        summary.clock_hz,
        summary.metrics.horizon()
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "pause percentiles ({} collections, {} gc cycles total):",
        h.count(),
        h.sum()
    );
    let _ = writeln!(out, "  {:>6} {:>14} {:>12}", "pctl", "cycles", "ms");
    for (name, value) in [
        ("p50", h.percentile(500)),
        ("p90", h.percentile(900)),
        ("p99", h.percentile(990)),
        ("p99.9", h.percentile(999)),
        ("max", h.max()),
    ] {
        let _ = writeln!(
            out,
            "  {name:>6} {value:>14} {:>12.3}",
            model.secs(value) * 1000.0
        );
    }

    // Time-to-safepoint: only rendered when the stream actually carries
    // nonzero observations (a run without `track_ttsp` — or any
    // pre-TTSP trace — reads as all zeros and keeps the report
    // byte-identical to what it printed before the section existed).
    let t = summary.ttsp.histogram();
    if t.max() > 0 {
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "time-to-safepoint ({} collections, client cycles since last poll):",
            t.count()
        );
        let _ = writeln!(out, "  {:>6} {:>14} {:>12}", "pctl", "cycles", "ms");
        for (name, value) in [
            ("p50", t.percentile(500)),
            ("p90", t.percentile(900)),
            ("p99", t.percentile(990)),
            ("max", t.max()),
        ] {
            let _ = writeln!(
                out,
                "  {name:>6} {value:>14} {:>12.3}",
                model.secs(value) * 1000.0
            );
        }
    }

    // The curve rows: the standard millisecond ladder plus every window
    // an SLO bound names, deduplicated and sorted.
    let mut windows: Vec<u64> = MMU_WINDOWS_MS
        .iter()
        .map(|&ms| model.cycles_per_ms(ms))
        .chain(spec.min_mmu.iter().map(|&(w, _)| w))
        .filter(|&w| w > 0)
        .collect();
    windows.sort_unstable();
    windows.dedup();
    let _ = writeln!(out);
    let _ = writeln!(out, "MMU curve (min mutator utilization):");
    let _ = writeln!(out, "  {:>14} {:>8}", "window(cycles)", "permille");
    for (window, mmu) in summary.metrics.mmu_curve(&windows) {
        let bar = "#".repeat((mmu as usize * MMU_BAR_WIDTH) / 1000);
        let _ = writeln!(out, "  {window:>14} {mmu:>8}  {bar}");
    }

    if let Some(census) = &summary.census {
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "heap census (after collection {}, {} pretenured site(s)):",
            census.collection, census.pretenured_sites
        );
        let _ = writeln!(
            out,
            "  {:<10} {:>12} {:>15} {:>7}",
            "space", "used_words", "reserved_words", "chunks"
        );
        for row in &census.rows {
            let _ = writeln!(
                out,
                "  {:<10} {:>12} {:>15} {:>7}",
                row.space, row.used_words, row.reserved_words, row.chunks
            );
        }
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "recorder: {} events, {} dropped",
        summary.event_count, summary.dropped
    );

    let _ = writeln!(out);
    if spec.is_empty() {
        let _ = writeln!(out, "slo: no bounds configured (report only)");
        return (out, 0);
    }
    let violations = spec.evaluate(&summary.metrics);
    for &(permille, bound) in &spec.max_pause {
        let actual = h.percentile(permille);
        let verdict = if actual > bound { "VIOLATED" } else { "ok" };
        let _ = writeln!(
            out,
            "slo: pause p{} <= {bound} cycles: actual {actual}  {verdict}",
            fmt_permille(permille)
        );
    }
    for &(window, floor) in &spec.min_mmu {
        let actual = summary.metrics.mmu(window);
        let verdict = if actual < floor { "VIOLATED" } else { "ok" };
        let _ = writeln!(
            out,
            "slo: MMU@{window} >= {floor}‰: actual {actual}‰  {verdict}"
        );
    }
    let _ = if violations.is_empty() {
        writeln!(out, "slo-report: ok")
    } else {
        writeln!(
            out,
            "slo-report: FAILED ({} violation(s))",
            violations.len()
        )
    };
    (out, violations.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal schema-shaped stream: the fields the summarizer reads
    /// are the documented ones, so these literals track the real schema.
    fn sample_doc() -> String {
        [
            r#"{"type":"meta","plan":"gen+markers","bench":"Checksum","clock_hz":100000,"sites":[]}"#,
            r#"{"type":"collection-begin","collection":1,"plan":"gen+markers","reason":"alloc-failure","major":false,"depth":2,"start_cycles":1000}"#,
            r#"{"type":"collection-end","collection":1,"gc_cycles":500,"end_cycles":1500}"#,
            r#"{"type":"heap-census","collection":1,"pretenured_sites":3,"spaces":[{"space":"nursery","used_words":10,"reserved_words":64,"chunks":1}]}"#,
            r#"{"type":"collection-end","collection":2,"gc_cycles":200,"end_cycles":4000}"#,
        ]
        .join("\n")
    }

    fn summary_of(doc: &str) -> StreamSummary {
        let dir = std::env::temp_dir().join("tilgc-slo-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("sample-{:x}.jsonl", doc.len()));
        std::fs::write(&path, doc).unwrap();
        summarize_jsonl_file(path.to_str().unwrap(), false).unwrap()
    }

    #[test]
    fn jsonl_replay_reconstructs_pauses_and_census() {
        let s = summary_of(&sample_doc());
        assert_eq!(s.plan, "gen+markers");
        assert_eq!(s.clock_hz, 100_000);
        assert_eq!(s.metrics.pause_count(), 2);
        assert_eq!(s.metrics.histogram().sum(), 700);
        // The second end had no begin: its start is end - gc_cycles.
        assert_eq!(s.metrics.horizon(), 4000);
        let census = s.census.as_ref().expect("census captured");
        assert_eq!(census.pretenured_sites, 3);
        assert_eq!(census.rows[0].space, "nursery");
        assert_eq!(census.rows[0].reserved_words, 64);
        // 4 event lines; meta is not an event.
        assert_eq!(s.event_count, 4);
    }

    #[test]
    fn report_flags_violations_and_passes_generous_bounds() {
        let s = summary_of(&sample_doc());
        // Generous bounds: pass.
        let ok = SloSpec {
            max_pause: vec![(990, 1_000_000)],
            min_mmu: vec![(4000, 100)],
        };
        let (text, violations) = render_report(&s, &ok);
        assert_eq!(violations, 0, "{text}");
        assert!(text.contains("slo-report: ok"));
        assert!(text.contains("pause percentiles (2 collections, 700 gc cycles total)"));
        assert!(text.contains("heap census (after collection 1, 3 pretenured site(s))"));
        // Impossible bounds: fail, and the verdict lines say which.
        let bad = SloSpec {
            max_pause: vec![(500, 1)],
            min_mmu: vec![(500, 1000)],
        };
        let (text, violations) = render_report(&s, &bad);
        assert_eq!(violations, 2, "{text}");
        assert!(text.contains("slo: pause p50 <= 1 cycles"));
        assert!(text.contains("VIOLATED"));
        assert!(text.contains("slo-report: FAILED (2 violation(s))"));
    }

    #[test]
    fn empty_spec_is_report_only() {
        let s = summary_of(&sample_doc());
        let (text, violations) = render_report(&s, &SloSpec::default());
        assert_eq!(violations, 0);
        assert!(text.contains("no bounds configured"));
    }

    #[test]
    fn ttsp_section_appears_only_when_the_stream_carries_it() {
        // The sample doc predates TTSP tracking: no section.
        let s = summary_of(&sample_doc());
        let (text, _) = render_report(&s, &SloSpec::default());
        assert!(
            !text.contains("time-to-safepoint"),
            "all-zero TTSP must not change the report: {text}"
        );
        // A tracked stream carries `ttsp_cycles` on collection-begin.
        let doc = sample_doc().replace(
            r#""start_cycles":1000}"#,
            r#""start_cycles":1000,"ttsp_cycles":40}"#,
        );
        let s = summary_of(&doc);
        assert_eq!(s.ttsp.histogram().count(), 1);
        assert_eq!(s.ttsp.histogram().max(), 40);
        let (text, _) = render_report(&s, &SloSpec::default());
        assert!(
            text.contains("time-to-safepoint (1 collections"),
            "tracked TTSP must be surfaced: {text}"
        );
    }

    /// The CI contract end to end: replaying a stream through `--input`
    /// with a bound it violates must exit nonzero, and with generous
    /// bounds must exit zero. `ExitCode` has no `PartialEq`, so the
    /// comparison goes through its `Debug` form.
    #[test]
    fn replayed_violations_exit_nonzero() {
        let dir = std::env::temp_dir().join("tilgc-slo-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("replay-gate.jsonl");
        std::fs::write(&path, sample_doc()).unwrap();
        let request = |spec: SloSpec| SloRequest {
            input: Some(path.to_str().unwrap().to_string()),
            bench: String::new(),
            plan: String::new(),
            adaptive: false,
            ttsp: false,
            validate: false,
            report: None,
            spec,
        };
        // 500/1500 cycles of GC inside the 1000..4000 window: MMU at
        // that window can never reach 1000‰, so this bound is violated.
        let violated = run(&request(SloSpec {
            max_pause: vec![],
            min_mmu: vec![(3000, 1000)],
        }));
        assert_eq!(
            format!("{violated:?}"),
            format!("{:?}", ExitCode::FAILURE),
            "a violated MMU floor must exit nonzero"
        );
        let ok = run(&request(SloSpec {
            max_pause: vec![(990, 1_000_000)],
            min_mmu: vec![(3000, 1)],
        }));
        assert_eq!(
            format!("{ok:?}"),
            format!("{:?}", ExitCode::SUCCESS),
            "generous bounds must exit zero"
        );
    }
}
