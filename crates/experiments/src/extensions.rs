//! Experiments beyond the paper's main tables: the §7.2 and §9
//! extensions and the design-choice ablations DESIGN.md calls out.

use tilgc_core::{build_collector, build_vm, CollectorKind, MarkerPolicy};
use tilgc_programs::Benchmark;
use tilgc_runtime::{CostModel, MutatorState, RaiseBookkeeping, Vm, WriteBarrier};

use crate::harness::{config_with_budget, fmt_secs, run_once, run_resilient, Calibration};

/// §7.2: no-scan pretenuring on Nqueen.
///
/// The paper manually analyzed Nqueen's allocation sites, split the
/// pretenured objects into a group that only references pretenured
/// objects (no scan needed) and the rest, and measured a further 80 %
/// GC-time reduction. Here the analysis is automatic: the profiler
/// records site→site pointer edges, and sites whose observed targets are
/// all pretenured become no-scan.
pub fn no_scan_pretenuring(scale: u32) {
    println!("Extension (§7.2): eliminating pretenured-region scans, Nqueen");
    let bench = Benchmark::Nqueen;
    // Profile with edges.
    let config = config_with_budget(192 << 20).profiling(true);
    let profiled = run_once(bench, CollectorKind::GenerationalStack, &config, scale);
    let profile = profiled.profile.as_ref().expect("profiling enabled");

    let mut cal = Calibration::new(scale);
    let budget = cal.budget_for_k(bench, 4.0);

    let mut rows = Vec::new();
    for (label, derive_no_scan, group) in [
        ("pretenure, scanned", false, false),
        ("pretenure, site-grouped scan", false, true),
        ("pretenure, no-scan analysis", true, true),
    ] {
        let opts = tilgc_profile::PolicyOptions {
            derive_no_scan,
            group_by_site: group,
            ..Default::default()
        };
        let policy = tilgc_profile::derive_policy(profile, &opts);
        let no_scan_sites = policy.sites().filter(|&s| policy.is_no_scan(s)).count();
        let config = config_with_budget(budget).pretenure(policy);
        let r = run_once(
            bench,
            CollectorKind::GenerationalStackPretenure,
            &config,
            scale,
        );
        assert_eq!(
            r.checksum, profiled.checksum,
            "policy changed the program result"
        );
        rows.push((label, r, no_scan_sites));
    }
    println!(
        "{:<30} {:>10} {:>16} {:>14}",
        "configuration", "GC time", "region words", "no-scan sites"
    );
    for (label, r, no_scan_sites) in &rows {
        println!(
            "{:<30} {:>10} {:>16} {:>14}",
            label,
            fmt_secs(r.gc_secs()),
            r.gc.pretenured_scanned_words,
            no_scan_sites,
        );
    }
    let base = &rows[0].1;
    let best = &rows[2].1;
    println!(
        "region-scan work eliminated: {:.0}%\n",
        100.0
            * (base
                .gc
                .pretenured_scanned_words
                .saturating_sub(best.gc.pretenured_scanned_words)) as f64
            / base.gc.pretenured_scanned_words.max(1) as f64
    );
}

/// §9: the adaptive major-collection strategy on PIA at k = 1.5 — the
/// configuration where the paper observes that a semispace collector can
/// beat a generational one because tenured data dies quickly.
pub fn adaptive_major(scale: u32) {
    println!("Extension (§9): adaptive full collections on dying-tenured PIA");
    let bench = Benchmark::Pia;
    let mut cal = Calibration::new(scale);
    println!(
        "{:<8} {:<24} {:>10} {:>12} {:>8}",
        "k", "collector", "GC time", "copied", "GCs"
    );
    for k in crate::harness::K_VALUES {
        let budget = cal.budget_for_k(bench, k);
        let semi = run_resilient(bench, CollectorKind::Semispace, budget, scale);
        let gen = run_resilient(bench, CollectorKind::Generational, budget, scale);
        let config = config_with_budget(budget).adaptive_major(true);
        let hybrid = run_once(bench, CollectorKind::Generational, &config, scale);
        assert_eq!(gen.checksum, hybrid.checksum);
        for (label, r) in [
            ("semispace", &semi),
            ("generational", &gen),
            ("gen+adaptive", &hybrid),
        ] {
            println!(
                "{:<8} {:<24} {:>10} {:>12} {:>8}",
                k,
                label,
                fmt_secs(r.gc_secs()),
                r.gc.copied_bytes,
                r.gc.collections
            );
        }
    }
    println!();
}

/// §7.1: marker-placement policies on Knuth-Bendix (simulated cycles).
pub fn marker_policies(scale: u32) {
    println!("Ablation (§7.1): marker placement policies, Knuth-Bendix, k = 4");
    let bench = Benchmark::KnuthBendix;
    let mut cal = Calibration::new(scale);
    let budget = cal.budget_for_k(bench, 4.0);
    println!(
        "{:<18} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "policy", "GC time", "stack", "scanned", "reused", "markers"
    );
    let policies: [(&str, MarkerPolicy); 5] = [
        ("disabled", MarkerPolicy::Disabled),
        ("every 5", MarkerPolicy::EveryN(5)),
        ("every 25", MarkerPolicy::EveryN(25)),
        ("every 25 + top", MarkerPolicy::EveryNPlusTop(25)),
        ("exponential", MarkerPolicy::Exponential),
    ];
    for (label, policy) in policies {
        let config = config_with_budget(budget).marker_policy(policy);
        let kind = if policy.is_enabled() {
            CollectorKind::GenerationalStack
        } else {
            CollectorKind::Generational
        };
        let r = run_once(bench, kind, &config, scale);
        println!(
            "{:<18} {:>10} {:>10} {:>12} {:>12} {:>10}",
            label,
            fmt_secs(r.gc_secs()),
            fmt_secs(r.stack_secs()),
            r.gc.frames_scanned,
            r.gc.frames_reused,
            r.gc.markers_placed,
        );
    }
    println!();
}

/// §4's suggestion: the sequential store buffer vs the deduplicating
/// object-marking barrier, on update-heavy Peg.
pub fn barrier_comparison(scale: u32) {
    println!("Ablation (§4): write barriers on update-heavy Peg, k = 4");
    let bench = Benchmark::Peg;
    let mut cal = Calibration::new(scale);
    let budget = cal.budget_for_k(bench, 4.0);
    println!(
        "{:<22} {:>10} {:>14} {:>14}",
        "barrier", "GC time", "entries drained", "updates"
    );
    let mut checksums = Vec::new();
    for (label, barrier) in [
        ("sequential store buf", WriteBarrier::ssb()),
        ("object marking", WriteBarrier::object_mark()),
    ] {
        let config = config_with_budget(budget);
        let mut m = MutatorState::new();
        m.barrier = barrier;
        m.check_shadows = false;
        let mut vm = Vm::with_mutator(m, build_collector(CollectorKind::Generational, &config));
        let h = bench.run(&mut vm, scale);
        vm.finish();
        checksums.push(h);
        let gc = vm.gc_stats();
        println!(
            "{:<22} {:>10} {:>14} {:>14}",
            label,
            fmt_secs(CostModel::default().secs(gc.gc_cycles())),
            gc.barrier_entries,
            vm.mutator_stats().pointer_updates,
        );
    }
    assert!(checksums.windows(2).all(|w| w[0] == w[1]));
    println!();
}

/// §5's two exception-bookkeeping strategies, on raise-using Peg.
pub fn raise_bookkeeping(scale: u32) {
    println!("Ablation (§5): exception bookkeeping variants, Peg, k = 4");
    let bench = Benchmark::Peg;
    let mut cal = Calibration::new(scale);
    let budget = cal.budget_for_k(bench, 4.0);
    println!(
        "{:<22} {:>12} {:>12} {:>10}",
        "variant", "client time", "GC time", "raises"
    );
    let mut checksums = Vec::new();
    for (label, mode) in [
        ("watermark at raise", RaiseBookkeeping::Watermark),
        ("deferred to GC", RaiseBookkeeping::Deferred),
    ] {
        let config = config_with_budget(budget);
        let mut vm = build_vm(CollectorKind::GenerationalStack, &config);
        vm.mutator_mut().raise_mode = mode;
        vm.mutator_mut().check_shadows = false;
        let h = bench.run(&mut vm, scale);
        vm.finish();
        checksums.push(h);
        println!(
            "{:<22} {:>12} {:>12} {:>10}",
            label,
            fmt_secs(CostModel::default().secs(vm.mutator_stats().client_cycles)),
            fmt_secs(CostModel::default().secs(vm.gc_stats().gc_cycles())),
            vm.mutator().stack.stats().raises,
        );
    }
    assert!(checksums.windows(2).all(|w| w[0] == w[1]));
    println!();
}

/// §7.2: the tenure-threshold collector family. The paper: "objects that
/// are tenured are copied several times before being promoted;
/// pretenuring in such systems is likely to yield an even greater
/// benefit than in the system we studied."
pub fn tenure_threshold(scale: u32) {
    println!("Extension (§7.2): tenure thresholds and pretenuring, Nqueen, k = 4");
    let bench = Benchmark::Nqueen;
    let (policy, profiled) = crate::harness::derive_pretenure_policy(bench, scale);
    let mut cal = Calibration::new(scale);
    let budget = cal.budget_for_k(bench, 4.0);
    println!(
        "{:<26} {:>10} {:>12} {:>10} | {:>10} {:>12} {:>10}",
        "", "plain GC", "copied", "GCs", "preten GC", "copied", "GC gain"
    );
    for threshold in [0u8, 2, 4] {
        let base_cfg = config_with_budget(budget).tenure_threshold(threshold);
        let base = run_once(bench, CollectorKind::GenerationalStack, &base_cfg, scale);
        let pt_cfg = base_cfg.clone().pretenure(policy.clone());
        let pt = run_once(
            bench,
            CollectorKind::GenerationalStackPretenure,
            &pt_cfg,
            scale,
        );
        assert_eq!(base.checksum, profiled.checksum);
        assert_eq!(pt.checksum, profiled.checksum);
        let gain = if base.gc_secs() > 0.0 {
            100.0 * (base.gc_secs() - pt.gc_secs()) / base.gc_secs()
        } else {
            0.0
        };
        println!(
            "{:<26} {:>10} {:>12} {:>10} | {:>10} {:>12} {:>9.0}%",
            format!("threshold {threshold}"),
            fmt_secs(base.gc_secs()),
            base.gc.copied_bytes,
            base.gc.collections,
            fmt_secs(pt.gc_secs()),
            pt.gc.copied_bytes,
            gain,
        );
    }
    println!();
}

/// Cost-model sensitivity: the headline Table 5 comparison under
/// perturbed per-operation costs. The *shape* (markers sharply cut
/// deep-stack GC cost) must survive halving/doubling the copy and
/// stack-decode costs, or the reproduction would be an artifact of the
/// chosen constants.
pub fn cost_sensitivity(scale: u32) {
    println!("Sensitivity: Table 5's Knuth-Bendix marker gain under perturbed cost models");
    let bench = Benchmark::KnuthBendix;
    let mut cal = Calibration::new(scale);
    let budget = cal.budget_for_k(bench, 4.0);
    let models: [(&str, CostModel); 4] = [
        ("default", CostModel::default()),
        (
            "cheap copy (÷2)",
            CostModel {
                copy_per_word: 3,
                scan_per_word: 1,
                ..Default::default()
            },
        ),
        (
            "dear copy (×2)",
            CostModel {
                copy_per_word: 12,
                scan_per_word: 6,
                ..Default::default()
            },
        ),
        (
            "cheap decode (÷2)",
            CostModel {
                frame_decode: 15,
                slot_trace: 3,
                ..Default::default()
            },
        ),
    ];
    println!(
        "{:<20} {:>12} {:>12} {:>10}",
        "cost model", "GC plain", "GC markers", "decrease"
    );
    for (label, model) in models {
        let run = |kind: CollectorKind| {
            let config = config_with_budget(budget);
            let mut vm = build_vm(kind, &config);
            vm.mutator_mut().cost = model;
            vm.mutator_mut().check_shadows = false;
            bench.run(&mut vm, scale);
            model.secs(vm.gc_stats().gc_cycles())
        };
        let plain = run(CollectorKind::Generational);
        let markers = run(CollectorKind::GenerationalStack);
        println!(
            "{:<20} {:>12.4} {:>12.4} {:>9.0}%",
            label,
            plain,
            markers,
            100.0 * (plain - markers) / plain.max(1e-12),
        );
    }
    println!();
}

/// Runs every extension experiment.
pub fn all(scale: u32) {
    no_scan_pretenuring(scale);
    tenure_threshold(scale);
    adaptive_major(scale);
    marker_policies(scale);
    barrier_comparison(scale);
    raise_bookkeeping(scale);
    cost_sensitivity(scale);
}
