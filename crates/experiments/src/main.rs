//! `experiments` — regenerates every table and figure of the PLDI'98
//! evaluation.
//!
//! ```text
//! experiments <table1..table7|figure2|extensions|all> [--scale N] [--csv DIR]
//! experiments bench-json [--out FILE] [--workers N]
//! experiments bench-compare [--baseline FILE] [--candidate FILE]
//!                           [--max-regress-pct N]
//! experiments gc-log [--bench NAME] [--plan LABEL] [--out-dir DIR]
//!                    [--validate] [--adaptive]
//! experiments slo-report [--input FILE.jsonl | --bench NAME --plan LABEL
//!                        [--adaptive] [--ttsp]] [--validate] [--report FILE]
//!                        [--max-p50 C] [--max-p90 C] [--max-p99 C]
//!                        [--max-p999 C] [--mmu-window C] [--min-mmu P]
//! experiments drift
//! ```
//!
//! `bench-json` runs the fixed wall-clock GC-throughput suite and
//! writes a machine-readable baseline (default `BENCH_pr10.json`); it is
//! not part of `all`, whose outputs are deterministic simulated cycles.
//! `--workers N` sizes the parallel lane of the Table 5 workload (and is
//! recorded in the baseline alongside the host's core count).
//! `bench-compare` gates a candidate baseline (default
//! `BENCH_nightly.json`) against a reference (default `BENCH_pr10.json`),
//! failing if any kernel throughput regressed more than the allowed
//! percentage (default 25), any batched kernel drifted below its scalar
//! reference path, the adaptive pretenurer drifted below the static
//! policy on the drifting workload, any pause percentile grew past the
//! allowance, any MMU floor fell below it, or any time-to-safepoint
//! percentile grew past it.
//! `gc-log` runs one benchmark (default `Checksum`) under one collector
//! (default `gen+markers`) with the telemetry recorder attached, prints
//! an ASCII per-collection phase timeline and per-site survival table,
//! and writes the event stream as JSONL plus a Chrome/Perfetto trace
//! into `--out-dir` (default `gclog`); `--validate` additionally checks
//! both files against the documented schema, and `--adaptive` turns the
//! online pretenuring estimator on so its site flips show up in the log.
//! `slo-report` evaluates pause-time service-level objectives: it reads
//! an event stream (a `gc-log` JSONL via `--input`, or a live run of
//! `--bench` under `--plan` — the gc-log rig), prints the pause
//! percentile table, the MMU curve, the last heap census, and the
//! recorder's drop accounting, then checks each configured bound —
//! `--max-p50/--max-p90/--max-p99/--max-p999 CYCLES` upper-bound pause
//! percentiles, and `--min-mmu PERMILLE` lower-bounds the MMU at the
//! preceding `--mmu-window CYCLES` (default 1500000, i.e. 10 ms at the
//! default clock; the flag pair may repeat for multiple windows) —
//! exiting nonzero on any violation. `--report FILE` additionally writes
//! the report text to a file for CI artifacts. `--ttsp` enables
//! time-to-safepoint tracking on live runs; replayed streams surface
//! TTSP automatically whenever they carry `ttsp_cycles` fields.
//! `drift` runs the phase-flipping workload under the pretenure plan
//! twice — stale static policy vs online adaptation — and reports the
//! deterministic `drift_adaptive_speedup_vs_static` ratio.
//!
//! Build with `--release`: the simulator is deterministic either way, but
//! debug builds are an order of magnitude slower.

mod bench_json;
mod compare;
mod csv;
mod drift;
mod extensions;
mod gclog;
mod harness;
mod slo;
mod tables;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Option<String> = None;
    let mut scale: u32 = 1;
    let mut out = "BENCH_pr10.json".to_string();
    let mut baseline = "BENCH_pr10.json".to_string();
    let mut candidate = "BENCH_nightly.json".to_string();
    let mut max_regress_pct = 25.0f64;
    let mut workers: usize = 4;
    let mut csv_sink = csv::CsvSink::disabled();
    let mut bench = "Checksum".to_string();
    let mut plan = "gen+markers".to_string();
    let mut out_dir = "gclog".to_string();
    let mut validate = false;
    let mut adaptive = false;
    let mut ttsp = false;
    let mut input: Option<String> = None;
    let mut report: Option<String> = None;
    let mut spec = tilgc_obs::metrics::SloSpec::default();
    // Window the next `--min-mmu` bound applies at: 10 ms at the default
    // 150 MHz clock.
    let mut mmu_window: u64 = 1_500_000;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--baseline" => {
                i += 1;
                let Some(path) = args.get(i) else {
                    eprintln!("--baseline needs a file path");
                    return ExitCode::FAILURE;
                };
                baseline = path.clone();
            }
            "--candidate" => {
                i += 1;
                let Some(path) = args.get(i) else {
                    eprintln!("--candidate needs a file path");
                    return ExitCode::FAILURE;
                };
                candidate = path.clone();
            }
            "--max-regress-pct" => {
                i += 1;
                max_regress_pct = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(p) if p >= 0.0 => p,
                    _ => {
                        eprintln!("--max-regress-pct needs a non-negative number");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--out" => {
                i += 1;
                let Some(path) = args.get(i) else {
                    eprintln!("--out needs a file path");
                    return ExitCode::FAILURE;
                };
                out = path.clone();
            }
            "--csv" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    eprintln!("--csv needs a directory");
                    return ExitCode::FAILURE;
                };
                csv_sink = match csv::CsvSink::into_dir(std::path::Path::new(dir)) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("--csv {dir}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--bench" => {
                i += 1;
                let Some(name) = args.get(i) else {
                    eprintln!("--bench needs a benchmark name");
                    return ExitCode::FAILURE;
                };
                bench = name.clone();
            }
            "--plan" => {
                i += 1;
                let Some(label) = args.get(i) else {
                    eprintln!("--plan needs a collector label");
                    return ExitCode::FAILURE;
                };
                plan = label.clone();
            }
            "--out-dir" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    eprintln!("--out-dir needs a directory");
                    return ExitCode::FAILURE;
                };
                out_dir = dir.clone();
            }
            "--validate" => validate = true,
            "--adaptive" => adaptive = true,
            "--ttsp" => ttsp = true,
            "--input" => {
                i += 1;
                let Some(path) = args.get(i) else {
                    eprintln!("--input needs a JSONL file path");
                    return ExitCode::FAILURE;
                };
                input = Some(path.clone());
            }
            "--report" => {
                i += 1;
                let Some(path) = args.get(i) else {
                    eprintln!("--report needs a file path");
                    return ExitCode::FAILURE;
                };
                report = Some(path.clone());
            }
            flag @ ("--max-p50" | "--max-p90" | "--max-p99" | "--max-p999") => {
                i += 1;
                let Some(bound) = args.get(i).and_then(|s| s.parse::<u64>().ok()) else {
                    eprintln!("{flag} needs a cycle count");
                    return ExitCode::FAILURE;
                };
                let permille = match flag {
                    "--max-p50" => 500,
                    "--max-p90" => 900,
                    "--max-p99" => 990,
                    _ => 999,
                };
                spec.max_pause.push((permille, bound));
            }
            "--mmu-window" => {
                i += 1;
                mmu_window = match args.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(w) if w > 0 => w,
                    _ => {
                        eprintln!("--mmu-window needs a positive cycle count");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--min-mmu" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<u64>().ok()) {
                    Some(p) if p <= 1000 => spec.min_mmu.push((mmu_window, p)),
                    _ => {
                        eprintln!("--min-mmu needs a permille value (0..=1000)");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--workers" => {
                i += 1;
                workers = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(w) if w >= 1 => w,
                    _ => {
                        eprintln!("--workers needs a positive integer");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--scale" => {
                i += 1;
                scale = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(s) => s,
                    None => {
                        eprintln!("--scale needs a positive integer");
                        return ExitCode::FAILURE;
                    }
                };
            }
            other if which.is_none() => which = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument: {other}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    let which = which.unwrap_or_else(|| "all".to_string());
    if which == "bench-compare" {
        return compare::run(&baseline, &candidate, max_regress_pct);
    }
    if which == "gc-log" {
        return gclog::run(&bench, &plan, &out_dir, validate, adaptive);
    }
    if which == "slo-report" {
        return slo::run(&slo::SloRequest {
            input,
            bench,
            plan,
            adaptive,
            ttsp,
            validate,
            report,
            spec,
        });
    }
    if which == "drift" {
        drift::run();
        return ExitCode::SUCCESS;
    }
    let run = |name: &str| match name {
        "table1" => tables::table1(),
        "table2" => tables::table2(scale),
        "table3" => tables::table3(scale, &csv_sink),
        "table4" => tables::table4(scale, &csv_sink),
        "table5" => tables::table5(scale, &csv_sink),
        "table6" => tables::table6(scale, &csv_sink),
        "table7" => tables::table7(scale, &csv_sink),
        "figure2" => tables::figure2(scale),
        "extensions" => extensions::all(scale),
        "bench-json" => bench_json::run(&out, workers),
        other => {
            eprintln!(
                "unknown experiment {other:?}; expected table1..table7, figure2, extensions, \
                 bench-json, bench-compare, gc-log, slo-report, drift, or all"
            );
            std::process::exit(2);
        }
    };
    if which == "all" {
        for name in [
            "table1",
            "table2",
            "table3",
            "table4",
            "table5",
            "table6",
            "table7",
            "figure2",
            "extensions",
        ] {
            run(name);
            println!();
        }
    } else {
        run(&which);
    }
    ExitCode::SUCCESS
}
