//! `experiments bench-compare` — regression gate over two `bench-json`
//! baselines.
//!
//! Reads the kernel-throughput metrics out of a baseline and a candidate
//! JSON file (the nightly CI tier produces `BENCH_nightly.json` and
//! compares it against the checked-in `BENCH_pr10.json`) and fails if
//! any throughput dropped by more than the allowed percentage, if any
//! per-plan pause or time-to-safepoint percentile grew (or MMU floor
//! fell) past the same allowance, or if any `*_speedup_vs_reference` or
//! `*_speedup_vs_static` ratio in the candidate sits below 1.0 — a
//! batched kernel slower than its scalar reference, or an adaptive
//! policy slower than the stale static one it exists to beat, is drift
//! no matter what the baseline recorded.
//! Wall-clock workload times are reported but not gated — they are too
//! noisy on shared runners; the per-second kernel throughputs are
//! medians and stable enough to gate on, and the drift ratio and
//! pause/MMU lanes are deterministic simulated cycles outright.
//!
//! No JSON dependency exists in the workspace, so a tiny `"key": number`
//! scanner (sufficient for `bench-json`'s flat output) does the reading.

use std::collections::HashMap;
use std::process::ExitCode;

/// The gated metrics: higher is better for all of them.
const GATED: [&str; 5] = [
    "evac_words_per_sec",
    "stack_scan_frames_per_sec",
    "ssb_filter_entries_per_sec",
    "barrier_filter_updates_per_sec",
    "bulk_clear_mb_per_sec",
];

/// Per-plan latency metrics gated by suffix (so a new collector plan
/// joins the gate the moment `bench-json` emits its lane): pause
/// percentiles in simulated gc cycles, where *lower* is better.
const GATED_PAUSE_SUFFIXES: [&str; 3] = [
    "_pause_p50_cycles",
    "_pause_p99_cycles",
    "_pause_p999_cycles",
];

/// Per-plan time-to-safepoint percentiles (simulated client cycles from
/// the mutator's last safepoint poll to the collection), also gated by
/// suffix and lower-is-better. Baselines recorded before TTSP tracking
/// existed simply contribute no such keys, so old baselines keep
/// gating what they always gated.
const GATED_TTSP_SUFFIXES: [&str; 2] = ["_ttsp_p50_cycles", "_ttsp_p99_cycles"];

/// Per-plan MMU floors (permille at the 10 ms-equivalent window), where
/// higher is better — also gated by suffix.
const GATED_MMU_SUFFIX: &str = "_mmu_10ms_equiv";

/// Every latency metric named by the baseline, paired with its
/// direction (`true` = lower is better). The *baseline* drives the list
/// so a candidate that silently stops emitting a lane fails rather than
/// slipping past the gate.
fn latency_metrics(baseline: &HashMap<String, f64>) -> Vec<(String, bool)> {
    let mut names: Vec<(String, bool)> = baseline
        .keys()
        .filter_map(|k| {
            if GATED_PAUSE_SUFFIXES
                .iter()
                .chain(GATED_TTSP_SUFFIXES.iter())
                .any(|s| k.ends_with(s))
            {
                Some((k.clone(), true))
            } else if k.ends_with(GATED_MMU_SUFFIX) {
                Some((k.clone(), false))
            } else {
                None
            }
        })
        .collect();
    names.sort();
    names
}

/// Extracts every `"key": <number>` pair from `text`. Nested objects
/// simply contribute their pairs — `bench-json`'s output has unique keys
/// throughout, which is all this needs.
fn parse_metrics(text: &str) -> HashMap<String, f64> {
    let mut map = HashMap::new();
    let mut rest = text;
    while let Some(q) = rest.find('"') {
        rest = &rest[q + 1..];
        let Some(endq) = rest.find('"') else { break };
        let key = &rest[..endq];
        rest = &rest[endq + 1..];
        let after = rest.trim_start();
        if let Some(value) = after.strip_prefix(':') {
            let value = value.trim_start();
            let end = value
                .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
                .unwrap_or(value.len());
            if let Ok(num) = value[..end].parse::<f64>() {
                map.insert(key.to_string(), num);
            }
        }
    }
    map
}

/// Any `*_speedup_vs_reference` metric below 1.0 means a batched kernel
/// has drifted slower than the scalar reference path it was supposed to
/// beat; any `*_speedup_vs_static` below 1.0 means the online adaptive
/// pretenurer lost to the stale static policy on the drifting workload.
/// Either is a defect in its own right, so the candidate is checked
/// absolutely — not relative to the baseline, which may share the drift.
fn speedup_drift(metrics: &HashMap<String, f64>) -> Vec<(String, f64)> {
    let mut drift: Vec<(String, f64)> = metrics
        .iter()
        .filter(|(k, v)| {
            (k.ends_with("_speedup_vs_reference") || k.ends_with("_speedup_vs_static")) && **v < 1.0
        })
        .map(|(k, v)| (k.clone(), *v))
        .collect();
    drift.sort_by(|a, b| a.0.cmp(&b.0));
    drift
}

fn load(path: &str) -> Result<HashMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let map = parse_metrics(&text);
    if map.is_empty() {
        return Err(format!("{path} contains no numeric metrics"));
    }
    Ok(map)
}

/// Compares `candidate` against `baseline`, failing (exit 1) if any
/// gated throughput is below `baseline * (1 - max_regress_pct / 100)`.
pub fn run(baseline_path: &str, candidate_path: &str, max_regress_pct: f64) -> ExitCode {
    let (baseline, candidate) = match (load(baseline_path), load(candidate_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench-compare: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "bench-compare: {candidate_path} vs {baseline_path} (allowed regression {max_regress_pct}%)"
    );
    let mut failed = false;
    for name in GATED {
        let (Some(&base), Some(&cand)) = (baseline.get(name), candidate.get(name)) else {
            eprintln!("bench-compare: metric {name} missing from one of the files");
            failed = true;
            continue;
        };
        let ratio = cand / base;
        let floor = 1.0 - max_regress_pct / 100.0;
        let verdict = if ratio < floor { "REGRESSED" } else { "ok" };
        println!(
            "  {name:>28}: {cand:>14.0} vs {base:>14.0}  ({:+6.1}%)  {verdict}",
            (ratio - 1.0) * 100.0
        );
        if ratio < floor {
            failed = true;
        }
    }
    // Latency lane: pause percentiles regress *upward*, MMU regresses
    // *downward*. Both are deterministic simulated-cycle numbers, so the
    // allowance mostly absorbs intentional collector changes that land
    // with a refreshed baseline anyway.
    for (name, lower_is_better) in latency_metrics(&baseline) {
        let (Some(&base), Some(&cand)) = (baseline.get(&name), candidate.get(&name)) else {
            eprintln!("bench-compare: metric {name} missing from one of the files");
            failed = true;
            continue;
        };
        let allow = max_regress_pct / 100.0;
        let regressed = if lower_is_better {
            cand > base * (1.0 + allow)
        } else {
            cand < base * (1.0 - allow)
        };
        let pct = if base > 0.0 {
            (cand / base - 1.0) * 100.0
        } else {
            0.0
        };
        let verdict = if regressed { "REGRESSED" } else { "ok" };
        println!("  {name:>28}: {cand:>14.0} vs {base:>14.0}  ({pct:+6.1}%)  {verdict}");
        if regressed {
            failed = true;
        }
    }
    for (name, value) in speedup_drift(&candidate) {
        let what = if name.ends_with("_speedup_vs_static") {
            "adaptive policy slower than the static one"
        } else {
            "batched kernel slower than its reference"
        };
        eprintln!("  {name:>28}: {value:>14.3}  DRIFT ({what})");
        failed = true;
    }
    // Context only — wall-clock workload time is not gated.
    if let (Some(&b), Some(&c)) = (
        baseline.get("table5_workload_ms"),
        candidate.get("table5_workload_ms"),
    ) {
        println!(
            "  {:>28}: {c:>14.1} vs {b:>14.1}  (not gated)",
            "table5_workload_ms"
        );
    }
    if failed {
        // Report the paths actually compared, not the default constants
        // — `--baseline`/`--candidate` may have overridden them, and a
        // CI log that names the wrong file sends the reader to the
        // wrong artifact.
        eprintln!(
            "bench-compare: FAILED — {candidate_path} vs {baseline_path} \
             (allowed regression {max_regress_pct}%)"
        );
        ExitCode::FAILURE
    } else {
        println!("bench-compare: ok");
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scanner_reads_nested_numeric_pairs() {
        let m =
            parse_metrics(r#"{"suite": "x", "metrics": {"a_per_sec": 1500, "b": 2.5, "c": -1e3}}"#);
        assert_eq!(m.get("a_per_sec"), Some(&1500.0));
        assert_eq!(m.get("b"), Some(&2.5));
        assert_eq!(m.get("c"), Some(&-1000.0));
        assert!(!m.contains_key("suite"), "string values are skipped");
    }

    #[test]
    fn speedup_ratios_below_one_are_drift() {
        let m = parse_metrics(
            r#"{"evac_speedup_vs_reference": 1.2, "ssb_filter_speedup_vs_reference": 0.980,
                "stack_scan_speedup_vs_reference": 1.0, "table5_parallel_speedup": 0.5}"#,
        );
        let drift = speedup_drift(&m);
        assert_eq!(drift.len(), 1, "only the sub-1.0 reference ratio drifts");
        assert_eq!(drift[0].0, "ssb_filter_speedup_vs_reference");
        assert!((drift[0].1 - 0.980).abs() < 1e-9);
    }

    #[test]
    fn adaptive_vs_static_below_one_is_drift() {
        let ok = parse_metrics(r#"{"drift_adaptive_speedup_vs_static": 1.042}"#);
        assert!(speedup_drift(&ok).is_empty());
        let bad = parse_metrics(r#"{"drift_adaptive_speedup_vs_static": 0.91}"#);
        let drift = speedup_drift(&bad);
        assert_eq!(drift.len(), 1);
        assert_eq!(drift[0].0, "drift_adaptive_speedup_vs_static");
    }

    #[test]
    fn latency_metrics_come_from_the_baseline_with_directions() {
        let base = parse_metrics(
            r#"{"semispace_pause_p50_cycles": 100, "gen_markers_pause_p999_cycles": 900,
                "semispace_mmu_10ms_equiv": 940, "gen_markers_ttsp_p99_cycles": 700,
                "evac_words_per_sec": 1e9, "table5_workload_ms": 120}"#,
        );
        let lanes = latency_metrics(&base);
        assert_eq!(
            lanes,
            vec![
                ("gen_markers_pause_p999_cycles".to_string(), true),
                ("gen_markers_ttsp_p99_cycles".to_string(), true),
                ("semispace_mmu_10ms_equiv".to_string(), false),
                ("semispace_pause_p50_cycles".to_string(), true),
            ],
            "sorted; pause and TTSP lower-is-better, MMU higher-is-better, others excluded"
        );
    }

    #[test]
    fn scanner_survives_malformed_tails() {
        assert!(parse_metrics("\"dangling").is_empty());
        assert!(parse_metrics("no quotes at all").is_empty());
    }
}
