//! The Chrome trace-event sink: renders an event stream as a
//! `{"traceEvents":[...]}` JSON document that loads directly in
//! Perfetto (ui.perfetto.dev) or `chrome://tracing`.
//!
//! Layout: one process (`tilgc <plan> · <bench>`) with two threads —
//! tid 0 carries one complete ("X") slice per collection spanning
//! `start_cycles..end_cycles` on the simulated timeline, tid 1 carries
//! the phase slices of each collection laid out consecutively inside
//! that span. Pressure-episode steps and adaptive site flips render as
//! instant ("i") marks on tid 0, and each heap census becomes counter
//! ("C") samples (per-space occupancy + pretenured-site count) Perfetto
//! draws as time-series tracks. Timestamps are microseconds of
//! *simulated* time: cycles divided by the cost model's clock rate.

use crate::{Event, GcPhase};

/// Microseconds (as f64) for `cycles` at `clock_hz`.
fn us(cycles: u64, clock_hz: u64) -> f64 {
    cycles as f64 * 1e6 / clock_hz as f64
}

fn push_f64(out: &mut String, v: f64) {
    // Trace viewers accept fractional µs; keep three decimals (≈ ns
    // resolution at the default 150 MHz clock).
    out.push_str(&format!("{v:.3}"));
}

struct TraceWriter {
    out: String,
    first: bool,
}

impl TraceWriter {
    fn new() -> TraceWriter {
        TraceWriter {
            out: String::from("{\"traceEvents\":["),
            first: true,
        }
    }

    fn raw(&mut self, event_json: &str) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        self.out.push_str(event_json);
    }

    fn metadata(&mut self, name: &str, tid: Option<u64>, value: &str) {
        let tid_field = match tid {
            Some(t) => format!(",\"tid\":{t}"),
            None => String::new(),
        };
        let mut escaped = String::new();
        crate::json::escape_into(&mut escaped, value);
        self.raw(&format!(
            "{{\"ph\":\"M\",\"pid\":0{tid_field},\"name\":\"{name}\",\"args\":{{\"name\":{escaped}}}}}"
        ));
    }

    fn complete(&mut self, tid: u64, name: &str, ts_us: f64, dur_us: f64, args: &[(&str, String)]) {
        let mut e = String::from("{\"ph\":\"X\",\"pid\":0,\"tid\":");
        e.push_str(&tid.to_string());
        e.push_str(",\"name\":");
        crate::json::escape_into(&mut e, name);
        e.push_str(",\"cat\":\"gc\",\"ts\":");
        push_f64(&mut e, ts_us);
        e.push_str(",\"dur\":");
        push_f64(&mut e, dur_us.max(0.001));
        if !args.is_empty() {
            e.push_str(",\"args\":{");
            for (i, (k, v)) in args.iter().enumerate() {
                if i > 0 {
                    e.push(',');
                }
                crate::json::escape_into(&mut e, k);
                e.push(':');
                e.push_str(v);
            }
            e.push('}');
        }
        e.push('}');
        self.raw(&e);
    }

    fn instant(&mut self, tid: u64, name: &str, ts_us: f64, args: &[(&str, String)]) {
        let mut e = String::from("{\"ph\":\"i\",\"pid\":0,\"tid\":");
        e.push_str(&tid.to_string());
        e.push_str(",\"name\":");
        crate::json::escape_into(&mut e, name);
        e.push_str(",\"cat\":\"gc\",\"s\":\"t\",\"ts\":");
        push_f64(&mut e, ts_us);
        if !args.is_empty() {
            e.push_str(",\"args\":{");
            for (i, (k, v)) in args.iter().enumerate() {
                if i > 0 {
                    e.push(',');
                }
                crate::json::escape_into(&mut e, k);
                e.push(':');
                e.push_str(v);
            }
            e.push('}');
        }
        e.push('}');
        self.raw(&e);
    }

    fn counter(&mut self, name: &str, ts_us: f64, series: &[(&str, u64)]) {
        let mut e = String::from("{\"ph\":\"C\",\"pid\":0,\"name\":");
        crate::json::escape_into(&mut e, name);
        e.push_str(",\"ts\":");
        push_f64(&mut e, ts_us);
        e.push_str(",\"args\":{");
        for (i, (k, v)) in series.iter().enumerate() {
            if i > 0 {
                e.push(',');
            }
            crate::json::escape_into(&mut e, k);
            e.push(':');
            e.push_str(&v.to_string());
        }
        e.push_str("}}");
        self.raw(&e);
    }

    fn finish(mut self) -> String {
        self.out.push_str("],\"displayTimeUnit\":\"ms\"}");
        self.out
    }
}

/// Renders the event stream as a Chrome trace-event JSON document.
///
/// Collections missing either endpoint (begin without end, or the ring
/// buffer dropped the begin) are skipped; phases without a surrounding
/// collection span are skipped too.
pub fn render(plan: &str, bench: &str, clock_hz: u64, events: &[Event]) -> String {
    let mut w = TraceWriter::new();
    w.metadata("process_name", None, &format!("tilgc {plan} · {bench}"));
    w.metadata("thread_name", Some(0), "collections");
    w.metadata("thread_name", Some(1), "gc phases");

    // Index begins by collection number so ends can find their span.
    let mut begins: Vec<(u64, &crate::CollectionBegin)> = Vec::new();
    let mut phases: Vec<&crate::PhaseSpan> = Vec::new();
    // Timeline cursor for events that carry no absolute position of
    // their own (pressure rungs advance it by their cycle charge; site
    // flips and censuses happen at the collection end it points at).
    let mut now = 0u64;
    for e in events {
        match e {
            Event::CollectionBegin(b) => {
                now = now.max(b.start_cycles);
                begins.push((b.collection, b));
            }
            Event::Phase(p) => phases.push(p),
            Event::CollectionEnd(end) => {
                now = now.max(end.end_cycles);
                let Some(&(_, begin)) = begins.iter().find(|(c, _)| *c == end.collection) else {
                    continue;
                };
                let ts = us(begin.start_cycles, clock_hz);
                let dur = us(end.end_cycles.saturating_sub(begin.start_cycles), clock_hz);
                let name = format!(
                    "GC {} ({})",
                    end.collection,
                    if end.major { "major" } else { "minor" }
                );
                w.complete(
                    0,
                    &name,
                    ts,
                    dur,
                    &[
                        ("reason", format!("\"{}\"", begin.reason)),
                        ("copied_bytes", end.copied_bytes.to_string()),
                        ("roots_found", end.roots_found.to_string()),
                        ("frames_reused", end.frames_reused.to_string()),
                        ("live_bytes_after", end.live_bytes_after.to_string()),
                    ],
                );
                // Phases of this collection, consecutively from the
                // span start, in canonical order.
                let mut cursor = begin.start_cycles;
                for phase in GcPhase::ALL {
                    for p in phases.iter().filter(|p| p.collection == end.collection) {
                        if p.phase != phase {
                            continue;
                        }
                        w.complete(
                            1,
                            p.phase.wire_name(),
                            us(cursor, clock_hz),
                            us(p.cycles, clock_hz),
                            &[("wall_ns", p.wall_ns.to_string())],
                        );
                        cursor += p.cycles;
                    }
                }
                phases.retain(|p| p.collection != end.collection);
                begins.retain(|(c, _)| *c != end.collection);
            }
            Event::SiteSample(_) => {}
            // Pressure episodes render as instant marks: the begin at its
            // recorded timeline position, each rung advancing the cursor
            // by its cycle charge (collections the ladder triggers nest
            // between them as ordinary slices).
            Event::PressureBegin(p) => {
                now = now.max(p.start_cycles);
                w.instant(
                    0,
                    "pressure-begin",
                    us(now, clock_hz),
                    &[
                        ("site", p.site.to_string()),
                        ("words", p.words.to_string()),
                        ("space", format!("\"{}\"", p.space)),
                    ],
                );
            }
            Event::PressureRung(r) => {
                now += r.cycles;
                w.instant(
                    0,
                    &format!("pressure-rung {}", r.rung),
                    us(now, clock_hz),
                    &[
                        ("site", r.site.to_string()),
                        ("outcome", format!("\"{}\"", r.outcome)),
                        ("cycles", r.cycles.to_string()),
                    ],
                );
            }
            Event::PressureEnd(p) => {
                w.instant(
                    0,
                    "pressure-end",
                    us(now, clock_hz),
                    &[
                        ("outcome", format!("\"{}\"", p.outcome)),
                        ("rungs", p.rungs.to_string()),
                    ],
                );
            }
            // Adaptive site flips are instant marks at the collection end
            // whose evidence triggered them.
            Event::SitePromote(s) => {
                w.instant(
                    0,
                    "site-promote",
                    us(now, clock_hz),
                    &[
                        ("site", s.site.to_string()),
                        ("survival_permille", s.survival_permille.to_string()),
                    ],
                );
            }
            Event::SiteDemote(s) => {
                w.instant(
                    0,
                    "site-demote",
                    us(now, clock_hz),
                    &[
                        ("site", s.site.to_string()),
                        ("survival_permille", s.survival_permille.to_string()),
                        ("reason", format!("\"{}\"", s.reason)),
                    ],
                );
            }
            // Degradation episodes render as instant marks at the
            // affected collection's end (the cursor already points
            // there — the plans emit them right after collection-end).
            Event::DegradationBegin(d) => {
                w.instant(
                    0,
                    "degradation-begin",
                    us(now, clock_hz),
                    &[
                        ("trigger", format!("\"{}\"", d.trigger)),
                        ("workers", d.workers.to_string()),
                        ("workers_lost", d.workers_lost.to_string()),
                    ],
                );
            }
            Event::DegradationEnd(d) => {
                w.instant(
                    0,
                    "degradation-end",
                    us(now, clock_hz),
                    &[
                        ("leftover_packets", d.leftover_packets.to_string()),
                        ("outcome", format!("\"{}\"", d.outcome)),
                    ],
                );
            }
            // Each census becomes counter samples Perfetto draws as
            // per-space occupancy tracks plus a pretenured-site count.
            Event::HeapCensus(c) => {
                let ts = us(now, clock_hz);
                let used: Vec<(&str, u64)> =
                    c.spaces.iter().map(|s| (s.space, s.used_words)).collect();
                w.counter("heap used (words)", ts, &used);
                let reserved: Vec<(&str, u64)> = c
                    .spaces
                    .iter()
                    .map(|s| (s.space, s.reserved_words))
                    .collect();
                w.counter("heap reserved (words)", ts, &reserved);
                w.counter("pretenured sites", ts, &[("sites", c.pretenured_sites)]);
            }
        }
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::{CollectionBegin, CollectionEnd, Hist, PhaseSpan};

    fn sample_events() -> Vec<Event> {
        vec![
            Event::CollectionBegin(CollectionBegin {
                collection: 1,
                plan: "generational",
                reason: "alloc-failure",
                major: false,
                depth: 4,
                start_cycles: 1_500_000,
                ttsp_cycles: 0,
            }),
            Event::Phase(PhaseSpan {
                collection: 1,
                phase: GcPhase::StackDecode,
                cycles: 300,
                wall_ns: 10,
            }),
            Event::Phase(PhaseSpan {
                collection: 1,
                phase: GcPhase::CheneyCopy,
                cycles: 700,
                wall_ns: 20,
            }),
            Event::CollectionEnd(Box::new(CollectionEnd {
                collection: 1,
                major: false,
                depth: 4,
                claimed_prefix: 0,
                oracle_prefix: 0,
                copied_bytes: 96,
                scanned_words: 12,
                pretenured_scanned_words: 0,
                roots_found: 7,
                frames_scanned: 4,
                frames_reused: 0,
                slots_scanned: 20,
                barrier_entries: 2,
                markers_placed: 0,
                gc_cycles: 1000,
                end_cycles: 1_501_000,
                live_bytes_after: 96,
                wall_ns: 30,
                chunks_owned: 2,
                side_cleared_words: 0,
                size_hist: Hist::default(),
                depth_hist: Hist::default(),
                workers: 1,
                worker_copied_bytes: Vec::new(),
            })),
        ]
    }

    #[test]
    fn render_produces_valid_trace_json() {
        let doc = render("generational", "Life", 150_000_000, &sample_events());
        let v = parse(&doc).expect("trace parses");
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        // 3 metadata + 1 collection slice + 2 phase slices.
        assert_eq!(events.len(), 6);
        let slice = events
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("GC 1 (minor)"))
            .expect("collection slice present");
        assert_eq!(slice.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(slice.get("tid").unwrap().as_u64(), Some(0));
        let phases: Vec<_> = events
            .iter()
            .filter(|e| e.get("tid").and_then(|t| t.as_u64()) == Some(1) && e.get("ts").is_some())
            .collect();
        assert_eq!(phases.len(), 2);
        // Phases tile the span consecutively.
        let ts0 = phases[0].get("ts").unwrap().as_f64().unwrap();
        let d0 = phases[0].get("dur").unwrap().as_f64().unwrap();
        let ts1 = phases[1].get("ts").unwrap().as_f64().unwrap();
        assert!((ts0 + d0 - ts1).abs() < 0.01, "consecutive layout");
    }

    #[test]
    fn all_event_kinds_round_trip_through_the_validator() {
        // One of every event kind, in a plausible stream order: a
        // pressure episode whose ladder triggers a collection, followed
        // by the census, a site sample, and adaptive flips.
        let mut events = vec![Event::PressureBegin(crate::PressureBegin {
            site: 3,
            words: 64,
            space: "nursery",
            start_cycles: 1_000_000,
        })];
        events.extend(sample_events());
        events.extend([
            Event::DegradationBegin(crate::DegradationBegin {
                collection: 1,
                trigger: "watchdog",
                workers: 4,
                workers_lost: 1,
            }),
            Event::DegradationEnd(crate::DegradationEnd {
                collection: 1,
                leftover_packets: 2,
                outcome: "drained",
            }),
            Event::SiteSample(crate::SiteSample {
                collection: 1,
                site: 3,
                allocs: 10,
                alloc_bytes: 160,
                copied_objects: 4,
                copied_bytes: 64,
                survived: 4,
            }),
            Event::HeapCensus(crate::HeapCensus {
                collection: 1,
                pretenured_sites: 1,
                spaces: vec![
                    crate::SpaceCensus {
                        space: "nursery",
                        used_words: 0,
                        reserved_words: 1024,
                        chunks: 2,
                    },
                    crate::SpaceCensus {
                        space: "tenured",
                        used_words: 12,
                        reserved_words: 2048,
                        chunks: 4,
                    },
                ],
            }),
            Event::PressureRung(crate::PressureRung {
                rung: "retry-minor",
                site: 3,
                words: 64,
                outcome: "recovered",
                cycles: 500,
            }),
            Event::PressureEnd(crate::PressureEnd {
                outcome: "recovered",
                rungs: 1,
                cycles: 500,
            }),
            Event::SitePromote(crate::SitePromote {
                collection: 1,
                site: 3,
                survival_permille: 940,
            }),
            Event::SiteDemote(crate::SiteDemote {
                collection: 1,
                site: 3,
                survival_permille: 80,
                reason: "adaptive",
            }),
        ]);
        let doc = render("gen+markers+pretenure", "Life", 150_000_000, &events);
        let n = crate::schema::validate_chrome(&doc).expect("trace validates");
        // 3 metadata + 1 slice + 2 phases + 7 instants + 3 counters.
        assert_eq!(n, 16);
        let v = parse(&doc).unwrap();
        let trace = v.get("traceEvents").unwrap().as_array().unwrap();
        let instants: Vec<_> = trace
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("i"))
            .collect();
        assert_eq!(instants.len(), 7);
        for name in [
            "pressure-begin",
            "pressure-rung retry-minor",
            "pressure-end",
            "site-promote",
            "site-demote",
            "degradation-begin",
            "degradation-end",
        ] {
            assert!(
                instants
                    .iter()
                    .any(|e| e.get("name").unwrap().as_str() == Some(name)),
                "instant {name} present"
            );
        }
        let counters: Vec<_> = trace
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("C"))
            .collect();
        assert_eq!(counters.len(), 3);
        let used = counters
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("heap used (words)"))
            .expect("used counter present");
        let args = used.get("args").unwrap();
        assert_eq!(args.get("tenured").unwrap().as_u64(), Some(12));
        // The census is stamped at the preceding collection's end.
        let end_ts = 1_501_000f64 * 1e6 / 150e6;
        let ts = used.get("ts").unwrap().as_f64().unwrap();
        assert!((ts - end_ts).abs() < 0.01, "census at collection end");
        // A rung advances the cursor by its cycle charge.
        let rung = instants
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("pressure-rung retry-minor"))
            .unwrap();
        let rung_ts = rung.get("ts").unwrap().as_f64().unwrap();
        assert!(
            (rung_ts - (1_501_500f64 * 1e6 / 150e6)).abs() < 0.01,
            "rung cursor advanced"
        );
    }

    #[test]
    fn orphan_events_are_skipped() {
        let events = vec![Event::Phase(PhaseSpan {
            collection: 9,
            phase: GcPhase::Setup,
            cycles: 5,
            wall_ns: 0,
        })];
        let doc = render("semispace", "FFT", 150_000_000, &events);
        let v = parse(&doc).unwrap();
        let slices = v
            .get("traceEvents")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .count();
        assert_eq!(slices, 0);
    }
}
