//! The JSONL sink: one hand-rolled JSON object per line, one line per
//! event, preceded by a `meta` line that resolves plan, benchmark, clock
//! rate, and allocation-site names.
//!
//! The full line schema is documented in DESIGN.md ("Telemetry") and
//! machine-checked by [`crate::schema::validate_line`].

use crate::json::escape_into;
use crate::{
    CollectionBegin, CollectionEnd, DegradationBegin, DegradationEnd, Event, HeapCensus, Hist,
    PhaseSpan, PressureBegin, PressureEnd, PressureRung, SiteDemote, SitePromote, SiteSample,
};

/// Builds JSONL object lines field by field.
struct Obj {
    out: String,
}

impl Obj {
    fn new(kind: &str) -> Obj {
        let mut out = String::with_capacity(256);
        out.push_str("{\"type\":");
        escape_into(&mut out, kind);
        Obj { out }
    }

    fn num(mut self, key: &str, value: u64) -> Obj {
        self.out.push(',');
        escape_into(&mut self.out, key);
        self.out.push(':');
        self.out.push_str(&value.to_string());
        self
    }

    fn str(mut self, key: &str, value: &str) -> Obj {
        self.out.push(',');
        escape_into(&mut self.out, key);
        self.out.push(':');
        escape_into(&mut self.out, value);
        self
    }

    fn bool(mut self, key: &str, value: bool) -> Obj {
        self.out.push(',');
        escape_into(&mut self.out, key);
        self.out.push(':');
        self.out.push_str(if value { "true" } else { "false" });
        self
    }

    fn nums(mut self, key: &str, values: &[u64]) -> Obj {
        self.out.push(',');
        escape_into(&mut self.out, key);
        self.out.push_str(":[");
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            self.out.push_str(&v.to_string());
        }
        self.out.push(']');
        self
    }

    fn hist(mut self, key: &str, hist: &Hist) -> Obj {
        self.out.push(',');
        escape_into(&mut self.out, key);
        self.out.push_str(":[");
        for (i, b) in hist.buckets.iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            self.out.push_str(&b.to_string());
        }
        self.out.push(']');
        self
    }

    fn finish(mut self) -> String {
        self.out.push('}');
        self.out
    }
}

/// Renders the leading `meta` line: run identity plus the site-id → name
/// table needed to interpret `site-sample` lines.
pub fn meta_line(plan: &str, bench: &str, clock_hz: u64, sites: &[(u16, String)]) -> String {
    let mut out = String::with_capacity(128 + 24 * sites.len());
    out.push_str("{\"type\":\"meta\",\"plan\":");
    escape_into(&mut out, plan);
    out.push_str(",\"bench\":");
    escape_into(&mut out, bench);
    out.push_str(",\"clock_hz\":");
    out.push_str(&clock_hz.to_string());
    out.push_str(",\"sites\":[");
    for (i, (id, name)) in sites.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"id\":");
        out.push_str(&id.to_string());
        out.push_str(",\"name\":");
        escape_into(&mut out, name);
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Renders one event as a JSONL line (no trailing newline).
pub fn event_line(event: &Event) -> String {
    match event {
        Event::CollectionBegin(e) => begin_line(e),
        Event::Phase(e) => phase_line(e),
        Event::CollectionEnd(e) => end_line(e),
        Event::SiteSample(e) => site_line(e),
        Event::PressureBegin(e) => pressure_begin_line(e),
        Event::PressureRung(e) => pressure_rung_line(e),
        Event::PressureEnd(e) => pressure_end_line(e),
        Event::SitePromote(e) => site_promote_line(e),
        Event::SiteDemote(e) => site_demote_line(e),
        Event::HeapCensus(e) => census_line(e),
        Event::DegradationBegin(e) => degradation_begin_line(e),
        Event::DegradationEnd(e) => degradation_end_line(e),
    }
}

/// Renders a whole event stream, meta line first, newline-terminated.
pub fn render(
    plan: &str,
    bench: &str,
    clock_hz: u64,
    sites: &[(u16, String)],
    events: &[Event],
) -> String {
    let mut out = meta_line(plan, bench, clock_hz, sites);
    out.push('\n');
    for e in events {
        out.push_str(&event_line(e));
        out.push('\n');
    }
    out
}

fn begin_line(e: &CollectionBegin) -> String {
    // `ttsp_cycles` appears only when TTSP tracking observed a nonzero
    // distance, so untracked traces stay byte-identical to older output.
    let mut obj = Obj::new("collection-begin")
        .num("collection", e.collection)
        .str("plan", e.plan)
        .str("reason", e.reason)
        .bool("major", e.major)
        .num("depth", e.depth)
        .num("start_cycles", e.start_cycles);
    if e.ttsp_cycles > 0 {
        obj = obj.num("ttsp_cycles", e.ttsp_cycles);
    }
    obj.finish()
}

fn phase_line(e: &PhaseSpan) -> String {
    Obj::new("phase")
        .num("collection", e.collection)
        .str("phase", e.phase.wire_name())
        .num("cycles", e.cycles)
        .num("wall_ns", e.wall_ns)
        .finish()
}

fn end_line(e: &CollectionEnd) -> String {
    // Worker fields appear only on parallel collections, so a serial
    // (workers = 1) trace stays byte-identical to pre-scheduler output.
    let mut obj = Obj::new("collection-end")
        .num("collection", e.collection)
        .bool("major", e.major)
        .num("depth", e.depth)
        .num("claimed_prefix", e.claimed_prefix)
        .num("oracle_prefix", e.oracle_prefix)
        .num("copied_bytes", e.copied_bytes)
        .num("scanned_words", e.scanned_words)
        .num("pretenured_scanned_words", e.pretenured_scanned_words)
        .num("roots_found", e.roots_found)
        .num("frames_scanned", e.frames_scanned)
        .num("frames_reused", e.frames_reused)
        .num("slots_scanned", e.slots_scanned)
        .num("barrier_entries", e.barrier_entries)
        .num("markers_placed", e.markers_placed)
        .num("gc_cycles", e.gc_cycles)
        .num("end_cycles", e.end_cycles)
        .num("live_bytes_after", e.live_bytes_after)
        .num("wall_ns", e.wall_ns)
        .num("chunks_owned", e.chunks_owned)
        .num("side_cleared_words", e.side_cleared_words)
        .hist("size_hist", &e.size_hist)
        .hist("depth_hist", &e.depth_hist);
    if e.workers > 1 {
        obj = obj
            .num("workers", e.workers)
            .nums("worker_copied_bytes", &e.worker_copied_bytes);
    }
    obj.finish()
}

fn pressure_begin_line(e: &PressureBegin) -> String {
    Obj::new("pressure-begin")
        .num("site", e.site as u64)
        .num("words", e.words)
        .str("space", e.space)
        .num("start_cycles", e.start_cycles)
        .finish()
}

fn pressure_rung_line(e: &PressureRung) -> String {
    Obj::new("pressure-rung")
        .str("rung", e.rung)
        .num("site", e.site as u64)
        .num("words", e.words)
        .str("outcome", e.outcome)
        .num("cycles", e.cycles)
        .finish()
}

fn pressure_end_line(e: &PressureEnd) -> String {
    Obj::new("pressure-end")
        .str("outcome", e.outcome)
        .num("rungs", e.rungs)
        .num("cycles", e.cycles)
        .finish()
}

fn site_promote_line(e: &SitePromote) -> String {
    Obj::new("site-promote")
        .num("collection", e.collection)
        .num("site", e.site as u64)
        .num("survival_permille", e.survival_permille)
        .finish()
}

fn site_demote_line(e: &SiteDemote) -> String {
    Obj::new("site-demote")
        .num("collection", e.collection)
        .num("site", e.site as u64)
        .num("survival_permille", e.survival_permille)
        .str("reason", e.reason)
        .finish()
}

fn census_line(e: &HeapCensus) -> String {
    // The spaces array is an object array like meta's sites, so it is
    // hand-built rather than going through Obj.
    let mut out = String::with_capacity(128 + 64 * e.spaces.len());
    out.push_str("{\"type\":\"heap-census\",\"collection\":");
    out.push_str(&e.collection.to_string());
    out.push_str(",\"pretenured_sites\":");
    out.push_str(&e.pretenured_sites.to_string());
    out.push_str(",\"spaces\":[");
    for (i, s) in e.spaces.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"space\":");
        escape_into(&mut out, s.space);
        out.push_str(",\"used_words\":");
        out.push_str(&s.used_words.to_string());
        out.push_str(",\"reserved_words\":");
        out.push_str(&s.reserved_words.to_string());
        out.push_str(",\"chunks\":");
        out.push_str(&s.chunks.to_string());
        out.push('}');
    }
    out.push_str("]}");
    out
}

fn degradation_begin_line(e: &DegradationBegin) -> String {
    Obj::new("degradation-begin")
        .num("collection", e.collection)
        .str("trigger", e.trigger)
        .num("workers", e.workers)
        .num("workers_lost", e.workers_lost)
        .finish()
}

fn degradation_end_line(e: &DegradationEnd) -> String {
    Obj::new("degradation-end")
        .num("collection", e.collection)
        .num("leftover_packets", e.leftover_packets)
        .str("outcome", e.outcome)
        .finish()
}

fn site_line(e: &SiteSample) -> String {
    Obj::new("site-sample")
        .num("collection", e.collection)
        .num("site", e.site as u64)
        .num("allocs", e.allocs)
        .num("alloc_bytes", e.alloc_bytes)
        .num("copied_objects", e.copied_objects)
        .num("copied_bytes", e.copied_bytes)
        .num("survived", e.survived)
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::GcPhase;

    #[test]
    fn lines_are_valid_json_with_expected_fields() {
        let events = [
            Event::CollectionBegin(CollectionBegin {
                collection: 1,
                plan: "gen+markers",
                reason: "alloc-failure",
                major: false,
                depth: 9,
                start_cycles: 1234,
                ttsp_cycles: 0,
            }),
            Event::Phase(PhaseSpan {
                collection: 1,
                phase: GcPhase::StackDecode,
                cycles: 77,
                wall_ns: 880,
            }),
            Event::SiteSample(SiteSample {
                collection: 1,
                site: 4,
                allocs: 10,
                alloc_bytes: 160,
                copied_objects: 2,
                copied_bytes: 32,
                survived: 2,
            }),
        ];
        for e in &events {
            let v = parse(&event_line(e)).expect("line parses");
            assert!(v.get("type").is_some());
            assert_eq!(v.get("collection").unwrap().as_u64(), Some(1));
        }
        let v = parse(&event_line(&events[1])).unwrap();
        assert_eq!(v.get("phase").unwrap().as_str(), Some("stack-decode"));
        assert_eq!(v.get("cycles").unwrap().as_u64(), Some(77));
    }

    #[test]
    fn site_flip_lines_round_trip() {
        let promote = Event::SitePromote(SitePromote {
            collection: 12,
            site: 7,
            survival_permille: 912,
        });
        let v = parse(&event_line(&promote)).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("site-promote"));
        assert_eq!(v.get("site").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("survival_permille").unwrap().as_u64(), Some(912));

        let demote = Event::SiteDemote(SiteDemote {
            collection: 19,
            site: 7,
            survival_permille: 120,
            reason: "adaptive",
        });
        let v = parse(&event_line(&demote)).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("site-demote"));
        assert_eq!(v.get("reason").unwrap().as_str(), Some("adaptive"));
        assert_eq!(v.get("collection").unwrap().as_u64(), Some(19));
    }

    #[test]
    fn begin_line_gates_ttsp_on_nonzero() {
        let mut e = CollectionBegin {
            collection: 3,
            plan: "semispace",
            reason: "alloc-failure",
            major: true,
            depth: 2,
            start_cycles: 500,
            ttsp_cycles: 0,
        };
        let v = parse(&begin_line(&e)).unwrap();
        assert!(
            v.get("ttsp_cycles").is_none(),
            "untracked begin line carries no ttsp field"
        );
        e.ttsp_cycles = 42;
        let v = parse(&begin_line(&e)).unwrap();
        assert_eq!(v.get("ttsp_cycles").unwrap().as_u64(), Some(42));
    }

    #[test]
    fn degradation_lines_round_trip() {
        let begin = Event::DegradationBegin(DegradationBegin {
            collection: 7,
            trigger: "panic",
            workers: 4,
            workers_lost: 1,
        });
        let v = parse(&event_line(&begin)).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("degradation-begin"));
        assert_eq!(v.get("trigger").unwrap().as_str(), Some("panic"));
        assert_eq!(v.get("workers").unwrap().as_u64(), Some(4));
        assert_eq!(v.get("workers_lost").unwrap().as_u64(), Some(1));

        let end = Event::DegradationEnd(DegradationEnd {
            collection: 7,
            leftover_packets: 3,
            outcome: "drained",
        });
        let v = parse(&event_line(&end)).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("degradation-end"));
        assert_eq!(v.get("leftover_packets").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("outcome").unwrap().as_str(), Some("drained"));
    }

    #[test]
    fn meta_line_resolves_sites() {
        let line = meta_line(
            "semispace",
            "Life",
            150_000_000,
            &[(0, "unknown".to_string()), (3, "rec\"3".to_string())],
        );
        let v = parse(&line).expect("meta parses");
        assert_eq!(v.get("type").unwrap().as_str(), Some("meta"));
        assert_eq!(v.get("clock_hz").unwrap().as_u64(), Some(150_000_000));
        let sites = v.get("sites").unwrap().as_array().unwrap();
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[1].get("name").unwrap().as_str(), Some("rec\"3"));
    }

    #[test]
    fn census_line_round_trips() {
        let e = Event::HeapCensus(HeapCensus {
            collection: 4,
            pretenured_sites: 2,
            spaces: vec![
                crate::SpaceCensus {
                    space: "nursery",
                    used_words: 0,
                    reserved_words: 1024,
                    chunks: 2,
                },
                crate::SpaceCensus {
                    space: "tenured",
                    used_words: 500,
                    reserved_words: 4096,
                    chunks: 8,
                },
            ],
        });
        let v = parse(&event_line(&e)).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("heap-census"));
        assert_eq!(v.get("collection").unwrap().as_u64(), Some(4));
        assert_eq!(v.get("pretenured_sites").unwrap().as_u64(), Some(2));
        let spaces = v.get("spaces").unwrap().as_array().unwrap();
        assert_eq!(spaces.len(), 2);
        assert_eq!(spaces[0].get("space").unwrap().as_str(), Some("nursery"));
        assert_eq!(spaces[1].get("used_words").unwrap().as_u64(), Some(500));
        assert_eq!(spaces[1].get("chunks").unwrap().as_u64(), Some(8));
    }

    #[test]
    fn end_line_carries_histograms() {
        let mut size_hist = Hist::default();
        size_hist.add(16);
        let e = CollectionEnd {
            collection: 2,
            major: true,
            depth: 3,
            claimed_prefix: 1,
            oracle_prefix: 2,
            copied_bytes: 64,
            scanned_words: 8,
            pretenured_scanned_words: 0,
            roots_found: 5,
            frames_scanned: 3,
            frames_reused: 0,
            slots_scanned: 12,
            barrier_entries: 0,
            markers_placed: 1,
            gc_cycles: 999,
            end_cycles: 5000,
            live_bytes_after: 64,
            wall_ns: 100,
            chunks_owned: 4,
            side_cleared_words: 32,
            size_hist,
            depth_hist: Hist::default(),
            workers: 1,
            worker_copied_bytes: Vec::new(),
        };
        let v = parse(&end_line(&e)).unwrap();
        let hist = v.get("size_hist").unwrap().as_array().unwrap();
        assert_eq!(hist.len(), crate::HIST_BUCKETS);
        assert_eq!(hist[5].as_u64(), Some(1), "16 lands in [16,32)");
        assert!(
            v.get("workers").is_none(),
            "serial end line carries no worker fields"
        );

        let mut par = e.clone();
        par.workers = 2;
        par.worker_copied_bytes = vec![48, 16];
        let v = parse(&end_line(&par)).unwrap();
        assert_eq!(v.get("workers").unwrap().as_u64(), Some(2));
        let per = v.get("worker_copied_bytes").unwrap().as_array().unwrap();
        assert_eq!(per.len(), 2);
        assert_eq!(per[0].as_u64(), Some(48));
    }
}
