//! Streaming pause-time metrics computed deterministically in the cycle
//! domain from the [`Event`] stream: an HDR-style
//! [`PauseHistogram`] with exact percentile extraction, an MMU (minimum
//! mutator utilization) curve over sliding cycle windows, and an
//! [`SloSpec`] that turns both into a pass/fail verdict.
//!
//! Everything here is integer arithmetic over simulated cycles — no
//! floats, no wall clock — so the same event stream always produces the
//! same report, byte for byte. Fractions are expressed in permille
//! (0..=1000) throughout.

use crate::Event;

/// Sub-bucket precision bits of the [`PauseHistogram`]: each power-of-two
/// octave is split into `2^SUB_BITS` equal sub-buckets, bounding the
/// relative quantization error at `2^-SUB_BITS` (6.25%).
pub const SUB_BITS: u32 = 4;

/// Sub-buckets per octave (`2^SUB_BITS`).
pub const SUB_BUCKETS: usize = 1 << SUB_BITS;

/// Total buckets in a [`PauseHistogram`]. Values below `SUB_BUCKETS` get
/// exact unit-width buckets; each of the remaining 60 octaves of the u64
/// range contributes `SUB_BUCKETS` log-spaced buckets.
pub const PAUSE_BUCKETS: usize = SUB_BUCKETS + (64 - SUB_BITS as usize) * SUB_BUCKETS;

/// A log-bucketed pause histogram in the style of HDR histograms, with a
/// fixed bucket layout so serialized output is byte-stable across runs.
///
/// Layout: values `0..16` land in exact unit buckets `0..16`; a value
/// with leading bit `e >= 4` lands in octave `g = e - 3`, sub-bucket
/// `(v >> (e - 4)) & 15`, i.e. index `g * 16 + sub`. Bucket widths double
/// every octave, so the relative quantization error never exceeds
/// 1/16 = 6.25%. Alongside the buckets the histogram tracks the *exact*
/// count, sum, min and max, which reconcile against `GcStats`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PauseHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for PauseHistogram {
    fn default() -> PauseHistogram {
        PauseHistogram::new()
    }
}

impl PauseHistogram {
    /// An empty histogram.
    pub fn new() -> PauseHistogram {
        PauseHistogram {
            buckets: vec![0; PAUSE_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index for `value` (fixed layout, see the type docs).
    pub fn bucket_index(value: u64) -> usize {
        if value < SUB_BUCKETS as u64 {
            return value as usize;
        }
        let exp = 63 - value.leading_zeros();
        let octave = (exp - (SUB_BITS - 1)) as usize;
        let sub = ((value >> (exp - SUB_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
        octave * SUB_BUCKETS + sub
    }

    /// Inclusive `[low, high]` value range covered by bucket `index`.
    pub fn bucket_range(index: usize) -> (u64, u64) {
        if index < SUB_BUCKETS {
            return (index as u64, index as u64);
        }
        let octave = (index / SUB_BUCKETS) as u32;
        let sub = (index % SUB_BUCKETS) as u64;
        let width = 1u64 << (octave - 1);
        let low = (SUB_BUCKETS as u64 + sub) << (octave - 1);
        // `low + width` overflows u64 in the very last bucket; adding
        // `width - 1` stays in range (the top bucket ends at u64::MAX).
        (low, low + (width - 1))
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[PauseHistogram::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Exact number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact minimum observation (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum observation.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at or below which `permille`/1000 of the observations
    /// fall, reported as the upper edge of the containing bucket (clamped
    /// to the exact max, so `percentile(1000) == max()`). Returns 0 on an
    /// empty histogram. Pure integer arithmetic: byte-stable.
    pub fn percentile(&self, permille: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // Rank of the target observation, 1-based, rounding up so p100.0
        // covers the last observation and p0.x at least the first.
        let rank = ((self.count * permille).div_ceil(1000)).max(1);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                let (_, high) = PauseHistogram::bucket_range(i);
                return high.min(self.max);
            }
        }
        self.max
    }

    /// Merges another histogram's observations into this one.
    pub fn merge(&mut self, other: &PauseHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Iterates the non-empty buckets as `(low, high, count)`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &b)| b > 0)
            .map(|(i, &b)| {
                let (low, high) = PauseHistogram::bucket_range(i);
                (low, high, b)
            })
    }
}

/// Streaming pause accumulator: feed it the event stream and it maintains
/// the pause histogram, the pause interval list for MMU, and the timeline
/// horizon.
///
/// A "pause" is one collection's `[start_cycles, end_cycles]` bracket on
/// the unified simulated timeline (client + GC cycles; client cycles do
/// not advance during a collection, so `end - start` equals the
/// collection's `gc_cycles`). Governor pressure rungs charge cycles
/// *outside* any collection bracket and are deliberately not pauses;
/// reconciliation against `GcStats::gc_cycles()` must add rung cycles
/// back (the same identity the telemetry tests check).
#[derive(Clone, Debug, Default)]
pub struct PauseMetrics {
    hist: PauseHistogram,
    /// Closed pause intervals `(start, end)` in timeline order.
    pauses: Vec<(u64, u64)>,
    open: Option<u64>,
    horizon: u64,
}

impl PauseMetrics {
    /// An empty accumulator.
    pub fn new() -> PauseMetrics {
        PauseMetrics::default()
    }

    /// Feeds one event. Only collection begin/end brackets matter; all
    /// other kinds are ignored.
    pub fn observe(&mut self, event: &Event) {
        match event {
            Event::CollectionBegin(b) => {
                self.open = Some(b.start_cycles);
                self.horizon = self.horizon.max(b.start_cycles);
            }
            Event::CollectionEnd(e) => {
                self.hist.record(e.gc_cycles);
                // If the begin bracket was dropped (ring overflow),
                // reconstruct the start from the end-side fields.
                let start = self
                    .open
                    .take()
                    .unwrap_or_else(|| e.end_cycles.saturating_sub(e.gc_cycles));
                self.pauses.push((start, e.end_cycles));
                self.horizon = self.horizon.max(e.end_cycles);
            }
            _ => {}
        }
    }

    /// Builds metrics from a complete event slice.
    pub fn from_events(events: &[Event]) -> PauseMetrics {
        let mut m = PauseMetrics::new();
        for e in events {
            m.observe(e);
        }
        m
    }

    /// Records a pause bracket directly (used by JSONL readers that parse
    /// lines without reconstructing `Event` values).
    pub fn push_pause(&mut self, start_cycles: u64, end_cycles: u64, gc_cycles: u64) {
        self.hist.record(gc_cycles);
        self.pauses.push((start_cycles, end_cycles));
        self.horizon = self.horizon.max(end_cycles);
    }

    /// Extends the timeline horizon past the last pause (e.g. to the
    /// run's final client+GC cycle total) so trailing mutator time counts
    /// toward utilization.
    pub fn set_horizon(&mut self, cycles: u64) {
        self.horizon = self.horizon.max(cycles);
    }

    /// The pause histogram.
    pub fn histogram(&self) -> &PauseHistogram {
        &self.hist
    }

    /// The timeline horizon (largest cycle position seen).
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// Number of recorded pauses.
    pub fn pause_count(&self) -> usize {
        self.pauses.len()
    }

    /// Minimum mutator utilization over every sliding window of `window`
    /// cycles, in permille (truncated). With no timeline at all (horizon
    /// 0) returns 1000. For windows at least as long as the whole
    /// timeline, this is the run's overall mutator fraction.
    ///
    /// The minimum over all window positions is attained at a window
    /// boundary touching a pause edge, so only `2n + 2` candidate
    /// positions need evaluating — exact, not sampled.
    pub fn mmu(&self, window: u64) -> u64 {
        if self.horizon == 0 || window == 0 {
            return 1000;
        }
        let total_pause: u64 = self.pauses.iter().map(|&(s, e)| e - s).sum();
        if window >= self.horizon {
            return (self.horizon - total_pause.min(self.horizon)) * 1000 / self.horizon;
        }
        let mut worst = 1000u64;
        let mut consider = |t0: u64| {
            let t0 = t0.min(self.horizon - window);
            let t1 = t0 + window;
            let pause = self.pause_overlap(t0, t1);
            worst = worst.min((window - pause.min(window)) * 1000 / window);
        };
        consider(0);
        consider(self.horizon - window);
        for &(s, e) in &self.pauses {
            consider(s);
            consider(e.saturating_sub(window));
        }
        worst
    }

    /// The MMU curve: `(window, mmu_permille)` for each requested window.
    pub fn mmu_curve(&self, windows: &[u64]) -> Vec<(u64, u64)> {
        windows.iter().map(|&w| (w, self.mmu(w))).collect()
    }

    /// Total pause cycles overlapping the half-open window `[t0, t1)`.
    fn pause_overlap(&self, t0: u64, t1: u64) -> u64 {
        self.pauses
            .iter()
            .map(|&(s, e)| e.min(t1).saturating_sub(s.max(t0)))
            .sum()
    }
}

/// Streaming time-to-safepoint accumulator: a [`PauseHistogram`] over
/// the `ttsp_cycles` field of `collection-begin` events.
///
/// TTSP is observational — it measures how far (in client cycles) each
/// collection landed from the mutator's last safepoint poll, and charges
/// nothing. Consumers construct this only when TTSP tracking was on for
/// the run; a zero observation is legitimate (the collection hit exactly
/// at a poll) and is recorded, even though the JSONL sink omits the
/// field for zero.
#[derive(Clone, Debug, Default)]
pub struct TtspMetrics {
    hist: PauseHistogram,
}

impl TtspMetrics {
    /// An empty accumulator.
    pub fn new() -> TtspMetrics {
        TtspMetrics::default()
    }

    /// Feeds one event. Only `collection-begin` matters.
    pub fn observe(&mut self, event: &Event) {
        if let Event::CollectionBegin(b) = event {
            self.hist.record(b.ttsp_cycles);
        }
    }

    /// Builds metrics from a complete event slice.
    pub fn from_events(events: &[Event]) -> TtspMetrics {
        let mut m = TtspMetrics::new();
        for e in events {
            m.observe(e);
        }
        m
    }

    /// Records one TTSP observation directly (used by JSONL readers; an
    /// omitted `ttsp_cycles` field reads as 0).
    pub fn push(&mut self, ttsp_cycles: u64) {
        self.hist.record(ttsp_cycles);
    }

    /// Folds another run's TTSP histogram into this one (multi-benchmark
    /// aggregation, mirroring [`PauseHistogram::merge`]).
    pub fn merge(&mut self, other: &PauseHistogram) {
        self.hist.merge(other);
    }

    /// The TTSP histogram.
    pub fn histogram(&self) -> &PauseHistogram {
        &self.hist
    }
}

/// One violated SLO bound.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SloViolation {
    /// Human-readable name of the violated bound, e.g. `"pause p99"` or
    /// `"MMU@1500000"`.
    pub metric: String,
    /// The observed value (cycles for pauses, permille for MMU).
    pub actual: u64,
    /// The configured bound it crossed.
    pub bound: u64,
}

impl std::fmt::Display for SloViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: actual {} violates bound {}",
            self.metric, self.actual, self.bound
        )
    }
}

/// A service-level objective over the pause metrics: upper bounds on
/// pause percentiles (in cycles) and lower bounds on MMU (in permille) at
/// given windows (in cycles).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SloSpec {
    /// `(percentile_permille, max_cycles)` pairs: the pause value at the
    /// given percentile must not exceed `max_cycles`.
    pub max_pause: Vec<(u64, u64)>,
    /// `(window_cycles, min_permille)` pairs: the MMU at the given window
    /// must not fall below `min_permille`.
    pub min_mmu: Vec<(u64, u64)>,
}

impl SloSpec {
    /// Whether any bound is configured at all.
    pub fn is_empty(&self) -> bool {
        self.max_pause.is_empty() && self.min_mmu.is_empty()
    }

    /// Evaluates the spec against measured metrics, returning every
    /// violated bound (empty = pass).
    pub fn evaluate(&self, metrics: &PauseMetrics) -> Vec<SloViolation> {
        let mut out = Vec::new();
        for &(permille, bound) in &self.max_pause {
            let actual = metrics.histogram().percentile(permille);
            if actual > bound {
                out.push(SloViolation {
                    metric: format!("pause p{}", fmt_permille(permille)),
                    actual,
                    bound,
                });
            }
        }
        for &(window, floor) in &self.min_mmu {
            let actual = metrics.mmu(window);
            if actual < floor {
                out.push(SloViolation {
                    metric: format!("MMU@{window}"),
                    actual,
                    bound: floor,
                });
            }
        }
        out
    }
}

/// Formats a permille percentile the conventional way: `500` → `"50"`,
/// `999` → `"99.9"`.
pub fn fmt_permille(permille: u64) -> String {
    if permille % 10 == 0 {
        format!("{}", permille / 10)
    } else {
        format!("{}.{}", permille / 10, permille % 10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CollectionBegin, CollectionEnd, Hist};

    fn end_event(collection: u64, gc_cycles: u64, end_cycles: u64) -> Event {
        Event::CollectionEnd(Box::new(CollectionEnd {
            collection,
            major: false,
            depth: 0,
            claimed_prefix: 0,
            oracle_prefix: 0,
            copied_bytes: 0,
            scanned_words: 0,
            pretenured_scanned_words: 0,
            roots_found: 0,
            frames_scanned: 0,
            frames_reused: 0,
            slots_scanned: 0,
            barrier_entries: 0,
            markers_placed: 0,
            gc_cycles,
            end_cycles,
            live_bytes_after: 0,
            wall_ns: 0,
            size_hist: Hist::default(),
            depth_hist: Hist::default(),
            workers: 1,
            worker_copied_bytes: Vec::new(),
            chunks_owned: 0,
            side_cleared_words: 0,
        }))
    }

    fn begin_event(collection: u64, start_cycles: u64) -> Event {
        Event::CollectionBegin(CollectionBegin {
            collection,
            plan: "semispace",
            reason: "alloc-failure",
            major: false,
            depth: 0,
            start_cycles,
            ttsp_cycles: 0,
        })
    }

    #[test]
    fn bucket_layout_is_exact_below_16_and_log_above() {
        for v in 0..16u64 {
            assert_eq!(PauseHistogram::bucket_index(v), v as usize);
            assert_eq!(PauseHistogram::bucket_range(v as usize), (v, v));
        }
        // [16, 32) is still exact: one value per sub-bucket.
        for v in 16..32u64 {
            let i = PauseHistogram::bucket_index(v);
            assert_eq!(PauseHistogram::bucket_range(i), (v, v));
        }
        // Octave boundaries.
        assert_eq!(PauseHistogram::bucket_index(32), 32);
        assert_eq!(PauseHistogram::bucket_range(32), (32, 33));
        assert_eq!(PauseHistogram::bucket_index(33), 32);
        assert_eq!(PauseHistogram::bucket_index(u64::MAX), PAUSE_BUCKETS - 1);
        // Every bucket's range round-trips through bucket_index.
        for i in 0..PAUSE_BUCKETS {
            let (low, high) = PauseHistogram::bucket_range(i);
            assert_eq!(PauseHistogram::bucket_index(low), i, "low of {i}");
            assert_eq!(PauseHistogram::bucket_index(high), i, "high of {i}");
        }
        // Relative error bound: bucket width <= low / 16.
        for i in SUB_BUCKETS..PAUSE_BUCKETS {
            let (low, high) = PauseHistogram::bucket_range(i);
            assert!((high - low) <= low / 16, "bucket {i} too wide");
        }
    }

    #[test]
    fn percentiles_are_exact_ranks() {
        let mut h = PauseHistogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        // p50 covers rank 50 → value 50; bucket [48,51] upper edge is 51.
        let p50 = h.percentile(500);
        assert!((50..=51).contains(&p50), "p50 = {p50}");
        assert_eq!(h.percentile(1000), 100, "p100 is the exact max");
        assert_eq!(h.percentile(10), 1, "p1 is the exact min");
        // Quantization error within the documented 6.25% bound.
        let p90 = h.percentile(900);
        assert!((90..=95).contains(&p90), "p90 = {p90}");
    }

    #[test]
    fn percentile_is_byte_stable_under_merge_order() {
        let mut a = PauseHistogram::new();
        let mut b = PauseHistogram::new();
        let mut whole = PauseHistogram::new();
        for v in [3u64, 17, 17, 400, 9000, 123_456, 3] {
            whole.record(v);
            if v % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab, whole);
        for p in [0, 10, 500, 900, 990, 999, 1000] {
            assert_eq!(ab.percentile(p), whole.percentile(p));
        }
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = PauseHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(500), 0);
        assert_eq!(h.nonzero_buckets().count(), 0);
    }

    #[test]
    fn pause_metrics_brackets_collections() {
        let events = [
            begin_event(1, 100),
            end_event(1, 50, 150),
            begin_event(2, 300),
            end_event(2, 100, 400),
        ];
        let m = PauseMetrics::from_events(&events);
        assert_eq!(m.pause_count(), 2);
        assert_eq!(m.histogram().count(), 2);
        assert_eq!(m.histogram().sum(), 150);
        assert_eq!(m.horizon(), 400);
        // Whole-run utilization: 150 pause cycles of 400 → 625 permille.
        assert_eq!(m.mmu(400), 625);
        assert_eq!(m.mmu(1000), 625, "window past horizon clamps");
    }

    #[test]
    fn pause_metrics_reconstructs_dropped_begin() {
        // End event with no preceding begin (ring dropped it).
        let m = PauseMetrics::from_events(&[end_event(5, 70, 1000)]);
        assert_eq!(m.pause_count(), 1);
        assert_eq!(m.mmu(1000), 930);
    }

    #[test]
    fn mmu_finds_worst_window() {
        // Timeline 0..1000, one pause [500, 600).
        let mut m = PauseMetrics::new();
        m.push_pause(500, 600, 100);
        m.set_horizon(1000);
        // A 100-cycle window inside the pause has zero utilization.
        assert_eq!(m.mmu(100), 0);
        // A 200-cycle window can at best avoid half the pause → worst is
        // the window exactly covering the pause: (200-100)/200 = 500.
        assert_eq!(m.mmu(200), 500);
        // Whole run: 900/1000.
        assert_eq!(m.mmu(1000), 900);
        let curve = m.mmu_curve(&[100, 200, 1000]);
        assert_eq!(curve, vec![(100, 0), (200, 500), (1000, 900)]);
    }

    #[test]
    fn mmu_two_pauses_clustered() {
        // Pauses [100,200) and [250,350) cluster inside [100,350).
        let mut m = PauseMetrics::new();
        m.push_pause(100, 200, 100);
        m.push_pause(250, 350, 100);
        m.set_horizon(1000);
        // 250-cycle window at t0=100 catches both pauses: 50/250 = 200.
        assert_eq!(m.mmu(250), 200);
        // Empty timeline edge cases.
        assert_eq!(PauseMetrics::new().mmu(100), 1000);
        assert_eq!(m.mmu(0), 1000);
    }

    #[test]
    fn ttsp_metrics_track_collection_begins() {
        let mut ttsp = Event::CollectionBegin(CollectionBegin {
            collection: 1,
            plan: "semispace",
            reason: "alloc-failure",
            major: false,
            depth: 0,
            start_cycles: 100,
            ttsp_cycles: 40,
        });
        let mut m = TtspMetrics::new();
        m.observe(&ttsp);
        if let Event::CollectionBegin(b) = &mut ttsp {
            b.collection = 2;
            b.ttsp_cycles = 0;
        }
        m.observe(&ttsp);
        m.push(10);
        assert_eq!(m.histogram().count(), 3);
        assert_eq!(m.histogram().sum(), 50);
        assert_eq!(m.histogram().max(), 40);
        assert_eq!(m.histogram().min(), 0, "zero TTSP is a real observation");
        // Non-begin events are ignored.
        m.observe(&end_event(2, 5, 200));
        assert_eq!(m.histogram().count(), 3);
    }

    #[test]
    fn slo_spec_evaluates_bounds() {
        let mut m = PauseMetrics::new();
        m.push_pause(100, 200, 100);
        m.set_horizon(1000);
        let spec = SloSpec {
            max_pause: vec![(500, 200), (999, 50)],
            min_mmu: vec![(200, 900), (1000, 500)],
        };
        let violations = spec.evaluate(&m);
        assert_eq!(violations.len(), 2);
        assert_eq!(violations[0].metric, "pause p99.9");
        assert!(violations[0].actual > 50);
        assert_eq!(violations[1].metric, "MMU@200");
        assert_eq!(violations[1].bound, 900);
        assert!(SloSpec::default().evaluate(&m).is_empty());
        assert!(SloSpec::default().is_empty());
        assert_eq!(fmt_permille(500), "50");
        assert_eq!(fmt_permille(999), "99.9");
        assert_eq!(
            violations[1].to_string(),
            format!(
                "MMU@200: actual {} violates bound 900",
                violations[1].actual
            )
        );
    }
}
