//! GC telemetry for the `tilgc` collectors: per-collection event traces,
//! phase timelines and per-site lifetime time-series.
//!
//! The paper's entire argument (Tables 2–6) is made through measurement,
//! yet end-of-run aggregates (`GcStats`) flatten every collection into one
//! sum. This crate turns each collection into an inspectable record, in
//! the spirit of MMTk's statistics/event-counter subsystem:
//!
//! * an [`Event`] stream — one [`CollectionBegin`] / per-phase
//!   [`PhaseSpan`]s / one [`CollectionEnd`] per collection, plus
//!   [`SiteSample`] rows carrying per-allocation-site survival counters
//!   sampled at *every* collection rather than only at run end;
//! * a [`Recorder`] trait with a no-op default ([`NullRecorder`]) so
//!   recording is zero-cost when disabled — emitters gate all telemetry
//!   work on [`Recorder::is_enabled`], never charge simulated cycles for
//!   it, and never touch `GcStats`, preserving byte-identity of every
//!   deterministic counter;
//! * a bounded [`RingRecorder`] sink (drop-oldest);
//! * serde-free writers: [`jsonl`] (one event per line) and [`chrome`]
//!   (Chrome trace-event format — a run opens directly in Perfetto);
//! * a [`schema`] validator (with its own minimal [`json`] parser) that
//!   checks every emitted JSONL line against the documented schema.
//!
//! This crate sits *below* `tilgc-runtime` in the dependency order
//! (`mem ← obs ← runtime ← core`) so the collectors can emit events
//! through the recorder installed in the mutator state. It is std-only:
//! allocation sites are identified by their raw `u16` ids here; name
//! resolution happens in the sinks' metadata line.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod json;
pub mod jsonl;
pub mod metrics;
pub mod schema;

use std::time::Instant;

/// Number of buckets in a [`Hist`].
pub const HIST_BUCKETS: usize = 16;

/// A log2-bucketed histogram: bucket 0 counts zeros, bucket `i ≥ 1`
/// counts values in `[2^(i-1), 2^i)`, and the last bucket absorbs
/// everything from `2^(HIST_BUCKETS-2)` up.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Hist {
    /// The bucket counters.
    pub buckets: [u64; HIST_BUCKETS],
}

impl Hist {
    /// Adds one observation.
    pub fn add(&mut self, value: u64) {
        let bucket = (64 - value.leading_zeros() as usize).min(HIST_BUCKETS - 1);
        self.buckets[bucket] += 1;
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Human-readable range label for bucket `i` (e.g. `"[8,16)"`).
    pub fn bucket_label(i: usize) -> String {
        match i {
            0 => "0".to_string(),
            _ if i == HIST_BUCKETS - 1 => format!("[{},inf)", 1u64 << (i - 1)),
            _ => format!("[{},{})", 1u64 << (i - 1), 1u64 << i),
        }
    }
}

/// The phase taxonomy of one collection, in canonical (emission) order.
///
/// Phase cycle spans are measured as deltas of the collector's total
/// simulated GC cycles at section boundaries, so per collection the
/// emitted [`PhaseSpan`] cycles sum *exactly* to the collection's
/// `GcStats` cycle delta.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GcPhase {
    /// Fixed per-collection overhead (the cost model's `gc_base`).
    Setup,
    /// Decoding stack frames via trace tables (fresh scans and marker
    /// bookkeeping).
    StackDecode,
    /// Examining and forwarding the discovered roots.
    RootScan,
    /// Write-barrier work: draining and filtering the sequential store
    /// buffer / dirty objects, remembered-set rescans, and the per-entry
    /// examination charge.
    BarrierFilter,
    /// Scanning freshly pretenured regions in place (§6/§7.2).
    PretenuredInPlaceScan,
    /// The Cheney transitive-closure copy/scan drain.
    CheneyCopy,
}

impl GcPhase {
    /// All phases in canonical order.
    pub const ALL: [GcPhase; 6] = [
        GcPhase::Setup,
        GcPhase::StackDecode,
        GcPhase::RootScan,
        GcPhase::BarrierFilter,
        GcPhase::PretenuredInPlaceScan,
        GcPhase::CheneyCopy,
    ];

    /// Wire name used in the JSONL and Chrome sinks.
    pub fn wire_name(self) -> &'static str {
        match self {
            GcPhase::Setup => "setup",
            GcPhase::StackDecode => "stack-decode",
            GcPhase::RootScan => "root-scan",
            GcPhase::BarrierFilter => "barrier-filter",
            GcPhase::PretenuredInPlaceScan => "pretenured-in-place-scan",
            GcPhase::CheneyCopy => "cheney-copy",
        }
    }

    /// One-letter tag for ASCII timelines.
    pub fn letter(self) -> char {
        match self {
            GcPhase::Setup => 's',
            GcPhase::StackDecode => 'D',
            GcPhase::RootScan => 'R',
            GcPhase::BarrierFilter => 'B',
            GcPhase::PretenuredInPlaceScan => 'P',
            GcPhase::CheneyCopy => 'C',
        }
    }

    fn index(self) -> usize {
        match self {
            GcPhase::Setup => 0,
            GcPhase::StackDecode => 1,
            GcPhase::RootScan => 2,
            GcPhase::BarrierFilter => 3,
            GcPhase::PretenuredInPlaceScan => 4,
            GcPhase::CheneyCopy => 5,
        }
    }
}

/// Start-of-collection event.
#[derive(Clone, Debug, PartialEq)]
pub struct CollectionBegin {
    /// 1-based collection number (matches `GcStats::collections`).
    pub collection: u64,
    /// The emitting plan's name (`"semispace"` / `"generational"`).
    pub plan: &'static str,
    /// Why the collection ran: `"alloc-failure"`, `"forced"` or
    /// `"forced-major"`.
    pub reason: &'static str,
    /// Whether this is a major (full) collection.
    pub major: bool,
    /// Stack depth (frames) at collection time.
    pub depth: u64,
    /// Position on the simulated timeline when the collection started:
    /// client cycles + GC cycles accumulated so far.
    pub start_cycles: u64,
    /// Time-to-safepoint: client cycles elapsed between the mutator's
    /// last safepoint poll and this collection. Zero when TTSP tracking
    /// is off (the default) — the JSONL sink omits the field then, so
    /// untracked traces stay byte-identical.
    pub ttsp_cycles: u64,
}

/// One phase's span within a collection.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseSpan {
    /// The collection this span belongs to.
    pub collection: u64,
    /// Which phase.
    pub phase: GcPhase,
    /// Simulated cycles attributed to the phase. Per collection, the
    /// emitted spans sum exactly to the collection's GC-cycle delta.
    pub cycles: u64,
    /// Wall-clock nanoseconds spent in the phase.
    pub wall_ns: u64,
}

/// End-of-collection event: the collection's `GcStats` deltas, the §5
/// reuse-depth snapshot, and cumulative histogram snapshots.
#[derive(Clone, Debug, PartialEq)]
pub struct CollectionEnd {
    /// 1-based collection number.
    pub collection: u64,
    /// Whether this was a major (full) collection.
    pub major: bool,
    /// Stack depth (frames) at collection time.
    pub depth: u64,
    /// Frames of cached scan results the collector claimed to reuse.
    pub claimed_prefix: u64,
    /// The §5 reuse bound `min(M, deepest intact marker)` the claim is
    /// checked against.
    pub oracle_prefix: u64,
    /// Bytes copied by this collection.
    pub copied_bytes: u64,
    /// Words Cheney-scanned by this collection.
    pub scanned_words: u64,
    /// Words of pretenured regions scanned in place by this collection.
    pub pretenured_scanned_words: u64,
    /// Roots examined by this collection.
    pub roots_found: u64,
    /// Stack frames decoded from scratch.
    pub frames_scanned: u64,
    /// Stack frames whose cached scan was reused.
    pub frames_reused: u64,
    /// Stack slots classified via trace-table decoding.
    pub slots_scanned: u64,
    /// Write-barrier entries filtered.
    pub barrier_entries: u64,
    /// Stack markers placed.
    pub markers_placed: u64,
    /// Simulated GC cycles this collection consumed (equals the sum of
    /// its phase spans).
    pub gc_cycles: u64,
    /// Position on the simulated timeline when the collection ended.
    pub end_cycles: u64,
    /// Live bytes after the collection.
    pub live_bytes_after: u64,
    /// Wall-clock nanoseconds for the whole collection.
    pub wall_ns: u64,
    /// Snapshot of the run-cumulative histogram of GC-processed object
    /// sizes in bytes (copied or scanned in place).
    pub size_hist: Hist,
    /// Snapshot of the run-cumulative histogram of stack depth at
    /// collection time.
    pub depth_hist: Hist,
    /// Number of GC workers that ran this collection (1 on the serial
    /// lane). The JSONL sink emits worker fields only when this is > 1,
    /// keeping serial traces byte-identical to pre-scheduler runs.
    pub workers: u64,
    /// Bytes copied by each worker, in worker-index order (empty on the
    /// serial lane). Sums exactly to `copied_bytes`; the schema
    /// validator checks the identity.
    pub worker_copied_bytes: Vec<u64>,
    /// Chunks of the heap's address space owned by spaces at collection
    /// end (constant per plan; a layout fingerprint for trace readers).
    pub chunks_owned: u64,
    /// Side-metadata words (dirty + mark bitmap words) retired by this
    /// collection's bulk clears.
    pub side_cleared_words: u64,
}

/// Per-allocation-site counters accumulated since the previous sample
/// (i.e. since the previous collection). Summing a site's samples over
/// the run reproduces its end-of-run totals; the sequence itself is the
/// site's lifetime time-series.
#[derive(Clone, Debug, PartialEq)]
pub struct SiteSample {
    /// The collection this sample was taken at.
    pub collection: u64,
    /// Raw 16-bit allocation-site id (resolved to a name by the sinks'
    /// metadata line).
    pub site: u16,
    /// Objects allocated from this site since the last sample.
    pub allocs: u64,
    /// Bytes allocated from this site since the last sample.
    pub alloc_bytes: u64,
    /// Objects from this site copied by the collector since the last
    /// sample (any copy, not just first promotion).
    pub copied_objects: u64,
    /// Bytes from this site copied since the last sample.
    pub copied_bytes: u64,
    /// Objects from this site that survived their *first* collection
    /// (copied out of the nursery) since the last sample — the numerator
    /// of the paper's per-site "% old" survival rate.
    pub survived: u64,
}

/// Start of a heap-pressure episode: an allocation that the ordinary
/// collect-and-retry path could not satisfy, handing control to the
/// escalation governor.
#[derive(Clone, Debug, PartialEq)]
pub struct PressureBegin {
    /// Raw allocation-site id of the request that hit pressure.
    pub site: u16,
    /// Words the request asked for.
    pub words: u64,
    /// Wire name of the space under pressure (`"nursery"`, `"tenured"`,
    /// `"los"`).
    pub space: &'static str,
    /// Position on the simulated timeline (client + GC cycles) when the
    /// episode started.
    pub start_cycles: u64,
}

/// One rung of the governor's escalation ladder taken during a pressure
/// episode.
#[derive(Clone, Debug, PartialEq)]
pub struct PressureRung {
    /// Wire name of the rung: `"retry-minor"`, `"retry-major"`,
    /// `"rebalance"` or `"demote"`.
    pub rung: &'static str,
    /// Allocation site the ladder is working for (for `"demote"` rungs,
    /// the site being demoted).
    pub site: u16,
    /// Words the triggering request asked for.
    pub words: u64,
    /// What the rung achieved: `"recovered"` (the retry fit),
    /// `"escalated"` (on to the next rung) or `"demoted"` (a pretenured
    /// site was flipped back to the nursery).
    pub outcome: &'static str,
    /// Simulated cycles charged for taking the rung (accumulated into
    /// `GcStats` outside any collection's phase spans).
    pub cycles: u64,
}

/// An online-adaptive policy promoted an allocation site: from this
/// point its allocations are placed directly in the tenured generation.
#[derive(Clone, Debug, PartialEq)]
pub struct SitePromote {
    /// The collection whose evidence triggered the flip.
    pub collection: u64,
    /// Raw 16-bit allocation-site id.
    pub site: u16,
    /// The estimator's survival EWMA (per-mille, 0..=1000) at flip time.
    pub survival_permille: u64,
}

/// An online-adaptive policy demoted an allocation site back to the
/// nursery path.
#[derive(Clone, Debug, PartialEq)]
pub struct SiteDemote {
    /// The collection whose evidence (or whose pressure episode)
    /// triggered the flip.
    pub collection: u64,
    /// Raw 16-bit allocation-site id.
    pub site: u16,
    /// The estimator's survival EWMA (per-mille, 0..=1000) at flip time.
    pub survival_permille: u64,
    /// Why the site was demoted: `"adaptive"` (the estimator's EWMA fell
    /// through the demote band) or `"pressure"` (the governor's demote
    /// rung forced it under heap pressure).
    pub reason: &'static str,
}

/// One space's row in a [`HeapCensus`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpaceCensus {
    /// Wire name of the space (`"nursery"`, `"tenured"`, `"los"`,
    /// `"semispace"` — the same labels the spaces reserve chunks under).
    pub space: &'static str,
    /// Words of live data held by the space after the collection.
    pub used_words: u64,
    /// Words of address space the space can currently allocate into
    /// (active-copy capacity; for the LOS, its whole range).
    pub reserved_words: u64,
    /// Chunks of the heap's address space owned by the space (from the
    /// chunk map's ownership labels).
    pub chunks: u64,
}

/// Per-collection heap census, emitted immediately after each
/// [`CollectionEnd`]: per-space occupancy plus the pretenuring route
/// table's current size. Gives trace readers the occupancy time-series
/// that end-of-run aggregates flatten away.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HeapCensus {
    /// The collection this census was taken after.
    pub collection: u64,
    /// Allocation sites currently routed tenured-at-birth (0 on plans
    /// without pretenuring).
    pub pretenured_sites: u64,
    /// One row per space, in the plan's canonical space order.
    pub spaces: Vec<SpaceCensus>,
}

/// Start of a mid-cycle degradation episode: a parallel collection lost
/// a worker (panic, watchdog expiry, or cycle-budget exhaustion) or
/// found orphaned packets at section close, and the coordinator drained
/// the remaining work on the exact serial path. Emitted right after the
/// affected collection's `collection-end` line, like a census.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DegradationBegin {
    /// The collection that degraded.
    pub collection: u64,
    /// What first triggered the degradation: `"panic"` (a worker
    /// unwound), `"watchdog"` (a worker blew its stall deadline),
    /// `"budget"` (a worker exhausted its cycle budget) or `"orphan"`
    /// (no worker was lost but a dropped packet surfaced at close).
    pub trigger: &'static str,
    /// Workers the collection started with.
    pub workers: u64,
    /// Workers lost by the time the section closed.
    pub workers_lost: u64,
}

/// End of a mid-cycle degradation episode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DegradationEnd {
    /// The collection that degraded (matches the episode's begin).
    pub collection: u64,
    /// Packets the coordinator drained serially (requeued in-flight
    /// work plus anything still unclaimed when the queue closed).
    pub leftover_packets: u64,
    /// How the episode ended — always `"drained"`: the serial oracle
    /// path completes unconditionally, so a degraded collection still
    /// terminates with the exact serial answer.
    pub outcome: &'static str,
}

/// End of a heap-pressure episode.
#[derive(Clone, Debug, PartialEq)]
pub struct PressureEnd {
    /// How the episode ended: `"recovered"` (the allocation eventually
    /// fit) or `"exhausted"` (a typed out-of-memory error was returned).
    pub outcome: &'static str,
    /// Number of ladder rungs taken.
    pub rungs: u64,
    /// Total simulated cycles charged for the episode's rungs (equals
    /// the sum of its [`PressureRung`] cycles).
    pub cycles: u64,
}

/// One telemetry event.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A collection started.
    CollectionBegin(CollectionBegin),
    /// A phase of a collection completed.
    Phase(PhaseSpan),
    /// A collection finished. Boxed: the end record (two inline
    /// histograms) is ~6× the size of the other variants, and most
    /// events in a stream are phases and site samples.
    CollectionEnd(Box<CollectionEnd>),
    /// Per-site survival counters sampled at a collection.
    SiteSample(SiteSample),
    /// A heap-pressure episode started.
    PressureBegin(PressureBegin),
    /// The governor took one escalation rung.
    PressureRung(PressureRung),
    /// A heap-pressure episode ended.
    PressureEnd(PressureEnd),
    /// An adaptive policy promoted a site to tenured-at-birth placement.
    SitePromote(SitePromote),
    /// An adaptive policy (or the pressure governor) demoted a site back
    /// to the nursery.
    SiteDemote(SiteDemote),
    /// Per-space occupancy census taken right after a collection.
    HeapCensus(HeapCensus),
    /// A parallel collection degraded mid-cycle to the serial drain.
    DegradationBegin(DegradationBegin),
    /// The degraded collection's serial drain completed.
    DegradationEnd(DegradationEnd),
}

/// An event sink installed in the mutator state.
///
/// Emitters must gate *all* telemetry work — event construction, phase
/// timing, per-site accumulation — on [`is_enabled`](Recorder::is_enabled),
/// and must never charge simulated cycles or touch `GcStats` for it, so a
/// disabled recorder leaves every deterministic counter byte-identical.
pub trait Recorder: std::fmt::Debug {
    /// Whether events should be produced at all.
    fn is_enabled(&self) -> bool;
    /// Consumes one event. Never called when [`is_enabled`](Recorder::is_enabled)
    /// is false.
    fn record(&mut self, event: Event);
    /// Downcast hook for retrieving a concrete recorder back out of a
    /// `Box<dyn Recorder>`.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// The default recorder: disabled, discards everything.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn is_enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _event: Event) {}

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// A bounded in-memory event buffer: keeps the most recent `capacity`
/// events, dropping the oldest on overflow (and counting the drops).
#[derive(Debug)]
pub struct RingRecorder {
    capacity: usize,
    buf: std::collections::VecDeque<Event>,
    dropped: u64,
}

impl RingRecorder {
    /// Creates a recorder holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> RingRecorder {
        assert!(capacity > 0, "ring capacity must be positive");
        RingRecorder {
            capacity,
            buf: std::collections::VecDeque::new(),
            dropped: 0,
        }
    }

    /// The buffered events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.buf.iter()
    }

    /// Takes the buffered events, oldest first, leaving the buffer empty.
    pub fn drain(&mut self) -> Vec<Event> {
        self.buf.drain(..).collect()
    }

    /// How many events were dropped to the ring bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Downcasts a `dyn Recorder` and drains its events, if it is a
    /// `RingRecorder`.
    pub fn drain_events_from(r: &mut dyn Recorder) -> Option<Vec<Event>> {
        r.as_any_mut()
            .downcast_mut::<RingRecorder>()
            .map(RingRecorder::drain)
    }
}

impl Recorder for RingRecorder {
    fn is_enabled(&self) -> bool {
        true
    }

    fn record(&mut self, event: Event) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event);
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Per-phase cycle/wall accumulator for one collection.
///
/// The plan marks each section boundary with the collector's *current
/// total* simulated GC cycles; the timer attributes the delta since the
/// previous mark to the named phase. Marking every boundary makes the
/// emitted spans sum exactly to the collection's total cycle delta.
/// Wall-clock time is split at the same boundaries.
#[derive(Debug)]
pub struct PhaseTimer {
    last_cycles: u64,
    last_wall: Instant,
    acc: [(u64, u64); GcPhase::ALL.len()],
}

impl PhaseTimer {
    /// Starts timing; `now_cycles` is the collector's total GC cycles at
    /// the start of the collection.
    pub fn start(now_cycles: u64) -> PhaseTimer {
        PhaseTimer {
            last_cycles: now_cycles,
            last_wall: Instant::now(),
            acc: [(0, 0); GcPhase::ALL.len()],
        }
    }

    /// Ends the current section, attributing the cycles and wall time
    /// since the previous mark (or [`start`](PhaseTimer::start)) to
    /// `phase`. A phase may be marked more than once; spans accumulate.
    pub fn mark(&mut self, phase: GcPhase, now_cycles: u64) {
        let wall = self.last_wall.elapsed().as_nanos() as u64;
        let slot = &mut self.acc[phase.index()];
        slot.0 += now_cycles.saturating_sub(self.last_cycles);
        slot.1 += wall;
        self.last_cycles = now_cycles;
        self.last_wall = Instant::now();
    }

    /// Emits the accumulated spans for `collection` in canonical phase
    /// order, skipping phases that saw no work at all.
    pub fn into_events(self, collection: u64) -> Vec<Event> {
        GcPhase::ALL
            .into_iter()
            .filter_map(|phase| {
                let (cycles, wall_ns) = self.acc[phase.index()];
                (cycles > 0 || wall_ns > 0).then_some(Event::Phase(PhaseSpan {
                    collection,
                    phase,
                    cycles,
                    wall_ns,
                }))
            })
            .collect()
    }
}

/// One site's counter deltas since the last sample.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct SiteDelta {
    allocs: u64,
    alloc_bytes: u64,
    copied_objects: u64,
    copied_bytes: u64,
    survived: u64,
}

impl SiteDelta {
    fn is_zero(&self) -> bool {
        *self == SiteDelta::default()
    }
}

/// A read-only view of one site's accumulated counter window — the same
/// deltas a [`SiteSample`] would carry, exposed *without* draining so an
/// online policy can read the evidence a collection produced before the
/// recorder's sample drain resets it (see
/// [`TelemetryAcc::windows`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SiteWindow {
    /// Raw 16-bit allocation-site id.
    pub site: u16,
    /// Objects allocated from this site since the last reset.
    pub allocs: u64,
    /// Bytes allocated from this site since the last reset.
    pub alloc_bytes: u64,
    /// Objects from this site copied since the last reset.
    pub copied_objects: u64,
    /// Bytes from this site copied since the last reset.
    pub copied_bytes: u64,
    /// Objects from this site copied out of the nursery (first
    /// survivals) since the last reset.
    pub survived: u64,
}

/// The plan-owned telemetry accumulator: per-site allocation/copy deltas
/// (drained into [`SiteSample`]s at each collection) and the
/// run-cumulative object-size and stack-depth histograms snapshotted into
/// each [`CollectionEnd`].
///
/// Plans feed the allocation side ([`note_alloc`](TelemetryAcc::note_alloc))
/// and lend the accumulator to the evacuation driver for the copy side
/// during a collection. Everything here is host-side bookkeeping: no
/// simulated cycles are ever charged for it.
#[derive(Debug, Default)]
pub struct TelemetryAcc {
    sites: Vec<SiteDelta>,
    /// Cumulative histogram of GC-processed object sizes in bytes.
    pub size_hist: Hist,
    /// Cumulative histogram of stack depth at collection time.
    pub depth_hist: Hist,
}

impl TelemetryAcc {
    fn site_mut(&mut self, site: u16) -> &mut SiteDelta {
        let i = site as usize;
        if i >= self.sites.len() {
            self.sites.resize(i + 1, SiteDelta::default());
        }
        &mut self.sites[i]
    }

    /// Counts one allocation from `site`.
    pub fn note_alloc(&mut self, site: u16, bytes: u64) {
        let d = self.site_mut(site);
        d.allocs += 1;
        d.alloc_bytes += bytes;
    }

    /// Counts one copied object from `site`; `from_nursery` marks a first
    /// survival (promotion out of the allocation area).
    pub fn note_copy(&mut self, site: u16, bytes: u64, from_nursery: bool) {
        self.size_hist.add(bytes);
        let d = self.site_mut(site);
        d.copied_objects += 1;
        d.copied_bytes += bytes;
        if from_nursery {
            d.survived += 1;
        }
    }

    /// Records the size of an object scanned in place (histogram only —
    /// in-place scans move nothing, so site copy counters are untouched).
    pub fn note_inplace_scan(&mut self, bytes: u64) {
        self.size_hist.add(bytes);
    }

    /// Records the stack depth at a collection.
    pub fn note_depth(&mut self, depth: u64) {
        self.depth_hist.add(depth);
    }

    /// Iterates the sites with activity since the last drain/clear, in
    /// site order, without resetting anything. An online policy reads
    /// these windows at each collection *before*
    /// [`drain_samples`](TelemetryAcc::drain_samples) (recorder
    /// installed) or [`clear_windows`](TelemetryAcc::clear_windows)
    /// (recorder absent) closes the window.
    pub fn windows(&self) -> impl Iterator<Item = SiteWindow> + '_ {
        self.sites
            .iter()
            .enumerate()
            .filter(|(_, d)| !d.is_zero())
            .map(|(site, d)| SiteWindow {
                site: site as u16,
                allocs: d.allocs,
                alloc_bytes: d.alloc_bytes,
                copied_objects: d.copied_objects,
                copied_bytes: d.copied_bytes,
                survived: d.survived,
            })
    }

    /// Resets every site window without emitting samples — the
    /// recorder-less counterpart of
    /// [`drain_samples`](TelemetryAcc::drain_samples), used when the
    /// accumulator exists only to feed an online policy.
    pub fn clear_windows(&mut self) {
        for d in &mut self.sites {
            *d = SiteDelta::default();
        }
    }

    /// Emits a [`SiteSample`] for every site with activity since the last
    /// drain, in site order, and resets the deltas.
    pub fn drain_samples(&mut self, collection: u64) -> Vec<Event> {
        let mut out = Vec::new();
        for (site, d) in self.sites.iter_mut().enumerate() {
            if d.is_zero() {
                continue;
            }
            out.push(Event::SiteSample(SiteSample {
                collection,
                site: site as u16,
                allocs: d.allocs,
                alloc_bytes: d.alloc_bytes,
                copied_objects: d.copied_objects,
                copied_bytes: d.copied_bytes,
                survived: d.survived,
            }));
            *d = SiteDelta::default();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hist_buckets_are_log2() {
        let mut h = Hist::default();
        for v in [0, 1, 2, 3, 4, 7, 8, 1 << 20] {
            h.add(v);
        }
        assert_eq!(h.buckets[0], 1, "zero bucket");
        assert_eq!(h.buckets[1], 1, "[1,2)");
        assert_eq!(h.buckets[2], 2, "[2,4)");
        assert_eq!(h.buckets[3], 2, "[4,8)");
        assert_eq!(h.buckets[4], 1, "[8,16)");
        assert_eq!(h.buckets[HIST_BUCKETS - 1], 1, "overflow bucket");
        assert_eq!(h.total(), 8);
        assert_eq!(Hist::bucket_label(0), "0");
        assert_eq!(Hist::bucket_label(4), "[8,16)");
        assert_eq!(Hist::bucket_label(HIST_BUCKETS - 1), "[16384,inf)");
    }

    #[test]
    fn ring_drops_oldest_past_capacity() {
        let mut r = RingRecorder::with_capacity(2);
        for c in 1..=3 {
            r.record(Event::Phase(PhaseSpan {
                collection: c,
                phase: GcPhase::CheneyCopy,
                cycles: 1,
                wall_ns: 0,
            }));
        }
        assert_eq!(r.dropped(), 1);
        let events = r.drain();
        assert_eq!(events.len(), 2);
        match &events[0] {
            Event::Phase(p) => assert_eq!(p.collection, 2, "oldest event was dropped"),
            other => panic!("unexpected event {other:?}"),
        }
        assert!(r.drain().is_empty());
    }

    #[test]
    fn null_recorder_is_disabled() {
        let mut n = NullRecorder;
        assert!(!n.is_enabled());
        n.record(Event::Phase(PhaseSpan {
            collection: 1,
            phase: GcPhase::Setup,
            cycles: 0,
            wall_ns: 0,
        }));
        assert!(RingRecorder::drain_events_from(&mut n).is_none());
    }

    #[test]
    fn phase_timer_attributes_deltas_and_sums_exactly() {
        let mut t = PhaseTimer::start(100);
        t.mark(GcPhase::Setup, 110);
        t.mark(GcPhase::StackDecode, 150);
        t.mark(GcPhase::BarrierFilter, 150); // zero-cycle section
        t.mark(GcPhase::CheneyCopy, 400);
        t.mark(GcPhase::BarrierFilter, 410); // accumulates onto the first
        let events = t.into_events(7);
        let mut total = 0;
        let mut saw_barrier = 0;
        for e in &events {
            let Event::Phase(p) = e else {
                panic!("unexpected event {e:?}")
            };
            assert_eq!(p.collection, 7);
            total += p.cycles;
            if p.phase == GcPhase::BarrierFilter {
                saw_barrier = p.cycles;
            }
        }
        assert_eq!(total, 310, "spans sum to the total delta");
        assert_eq!(saw_barrier, 10, "re-marked phase accumulated");
    }

    #[test]
    fn telemetry_acc_drains_site_deltas() {
        let mut acc = TelemetryAcc::default();
        acc.note_alloc(3, 16);
        acc.note_alloc(3, 24);
        acc.note_copy(3, 16, true);
        acc.note_copy(9, 40, false);
        acc.note_inplace_scan(64);
        acc.note_depth(5);
        let samples = acc.drain_samples(1);
        assert_eq!(samples.len(), 2);
        let Event::SiteSample(s3) = &samples[0] else {
            panic!("expected sample")
        };
        assert_eq!((s3.site, s3.allocs, s3.alloc_bytes), (3, 2, 40));
        assert_eq!(
            (s3.copied_objects, s3.copied_bytes, s3.survived),
            (1, 16, 1)
        );
        let Event::SiteSample(s9) = &samples[1] else {
            panic!("expected sample")
        };
        assert_eq!((s9.site, s9.allocs, s9.survived), (9, 0, 0));
        assert_eq!(s9.copied_bytes, 40);
        // Deltas reset; histograms are cumulative.
        assert!(acc.drain_samples(2).is_empty());
        assert_eq!(acc.size_hist.total(), 3);
        assert_eq!(acc.depth_hist.total(), 1);
    }

    #[test]
    fn windows_read_without_draining_and_clear_resets() {
        let mut acc = TelemetryAcc::default();
        acc.note_alloc(2, 8);
        acc.note_copy(2, 8, true);
        acc.note_alloc(5, 16);
        let windows: Vec<SiteWindow> = acc.windows().collect();
        assert_eq!(windows.len(), 2);
        assert_eq!(
            windows[0],
            SiteWindow {
                site: 2,
                allocs: 1,
                alloc_bytes: 8,
                copied_objects: 1,
                copied_bytes: 8,
                survived: 1,
            }
        );
        assert_eq!((windows[1].site, windows[1].allocs), (5, 1));
        // Reading is non-destructive: the drain still sees everything.
        assert_eq!(acc.windows().count(), 2);
        assert_eq!(acc.drain_samples(1).len(), 2);
        // clear_windows resets without emitting.
        acc.note_alloc(2, 8);
        acc.clear_windows();
        assert_eq!(acc.windows().count(), 0);
        assert!(acc.drain_samples(2).is_empty());
    }
}
