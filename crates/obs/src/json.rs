//! A minimal JSON parser, just enough to validate this crate's own
//! output (see [`crate::schema`]) without pulling serde into the
//! dependency tree.
//!
//! Supports the full JSON grammar except that numbers are parsed as
//! `f64` (exact for every integer the sinks emit below 2^53; the
//! validator's range checks tolerate this).

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number, as `f64`.
    Number(f64),
    /// A string (escapes decoded).
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order preserved, duplicate keys rejected.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a number with no
    /// fractional part.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object's fields, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Parses one complete JSON document; trailing non-whitespace is an
/// error.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Value)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key {key:?}"));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Decode surrogate pairs; lone surrogates
                            // become the replacement character.
                            if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&lo) {
                                        let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                        out.push(
                                            char::from_u32(c)
                                                .unwrap_or(char::REPLACEMENT_CHARACTER),
                                        );
                                    } else {
                                        out.push(char::REPLACEMENT_CHARACTER);
                                        out.push(
                                            char::from_u32(lo)
                                                .unwrap_or(char::REPLACEMENT_CHARACTER),
                                        );
                                    }
                                } else {
                                    out.push(char::REPLACEMENT_CHARACTER);
                                }
                            } else {
                                out.push(char::from_u32(cp).unwrap_or(char::REPLACEMENT_CHARACTER));
                            }
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so the
                    // byte stream is valid UTF-8).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or("truncated \\u escape")?;
        let s = std::str::from_utf8(chunk).map_err(|_| "bad \\u escape")?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape")?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| format!("bad number {text:?}"))
    }
}

/// Escapes `s` as a JSON string literal (including the quotes) into
/// `out`. Shared by the writers so emitted and parsed strings agree.
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let v = parse(r#"{"a": [1, -2.5, true, null], "b": {"c": "x\ny"}, "n": 1e3}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 4);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(1000.0));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "{",
            "[1,]",
            "{\"a\":1,}",
            "tru",
            "\"\\q\"",
            "1 2",
            "{\"a\":1,\"a\":2}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn escape_round_trips() {
        let s = "line1\nline2\t\"quoted\" \\ \u{1}";
        let mut lit = String::new();
        escape_into(&mut lit, s);
        assert_eq!(parse(&lit).unwrap().as_str(), Some(s));
    }

    #[test]
    fn decodes_surrogate_pairs() {
        assert_eq!(parse(r#""\ud83d\ude00""#).unwrap().as_str(), Some("😀"));
    }
}
