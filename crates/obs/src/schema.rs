//! Schema validation for the telemetry sinks' output, used by the
//! `experiments gc-log --validate` flag and by CI to check every emitted
//! JSONL line against the schema documented in DESIGN.md.

use crate::json::{parse, Value};
use crate::{GcPhase, HIST_BUCKETS};

/// Field-type shorthand for [`require`].
enum Ty {
    U64,
    Bool,
    Str,
    Hist,
    U64Array,
}

fn require(v: &Value, fields: &[(&str, Ty)]) -> Result<(), String> {
    for (key, ty) in fields {
        let field = v.get(key).ok_or_else(|| format!("missing field {key:?}"))?;
        let ok = match ty {
            Ty::U64 => field.as_u64().is_some(),
            Ty::Bool => field.as_bool().is_some(),
            Ty::Str => field.as_str().is_some(),
            Ty::Hist => field
                .as_array()
                .is_some_and(|a| a.len() == HIST_BUCKETS && a.iter().all(|b| b.as_u64().is_some())),
            Ty::U64Array => field
                .as_array()
                .is_some_and(|a| a.iter().all(|b| b.as_u64().is_some())),
        };
        if !ok {
            return Err(format!("field {key:?} has wrong type"));
        }
    }
    // Reject unknown fields so the documented schema stays authoritative.
    let known: Vec<&str> = fields.iter().map(|(k, _)| *k).chain(["type"]).collect();
    for (key, _) in v.as_object().unwrap_or(&[]) {
        if !known.contains(&key.as_str()) {
            return Err(format!("unknown field {key:?}"));
        }
    }
    Ok(())
}

/// Validates one JSONL line against the telemetry schema.
pub fn validate_line(line: &str) -> Result<(), String> {
    let v = parse(line)?;
    let kind = v
        .get("type")
        .and_then(Value::as_str)
        .ok_or("missing string field \"type\"")?;
    match kind {
        "meta" => {
            // `sites` is an object array, not a scalar, so this variant
            // is checked by hand rather than through `require`.
            for key in ["plan", "bench"] {
                if v.get(key).and_then(Value::as_str).is_none() {
                    return Err(format!("meta: missing string field {key:?}"));
                }
            }
            if v.get("clock_hz")
                .and_then(Value::as_u64)
                .is_none_or(|c| c == 0)
            {
                return Err("meta: clock_hz must be a positive integer".to_string());
            }
            let sites = v
                .get("sites")
                .and_then(Value::as_array)
                .ok_or("meta: missing array field \"sites\"")?;
            for s in sites {
                if s.get("id")
                    .and_then(Value::as_u64)
                    .is_none_or(|id| id > u16::MAX as u64)
                    || s.get("name").and_then(Value::as_str).is_none()
                {
                    return Err("meta: bad site entry".to_string());
                }
            }
            for (key, _) in v.as_object().unwrap_or(&[]) {
                if !["type", "plan", "bench", "clock_hz", "sites"].contains(&key.as_str()) {
                    return Err(format!("meta: unknown field {key:?}"));
                }
            }
            Ok(())
        }
        "collection-begin" => {
            // `ttsp_cycles` is optional: the sink omits it when the
            // observed time-to-safepoint is zero (or tracking is off),
            // so when present it must be nonzero.
            let mut fields = vec![
                ("collection", Ty::U64),
                ("plan", Ty::Str),
                ("reason", Ty::Str),
                ("major", Ty::Bool),
                ("depth", Ty::U64),
                ("start_cycles", Ty::U64),
            ];
            let has_ttsp = v.get("ttsp_cycles").is_some();
            if has_ttsp {
                fields.push(("ttsp_cycles", Ty::U64));
            }
            require(&v, &fields).and_then(|()| {
                let reason = v.get("reason").unwrap().as_str().unwrap();
                if !["alloc-failure", "forced", "forced-major"].contains(&reason) {
                    return Err(format!("unknown reason {reason:?}"));
                }
                if has_ttsp && v.get("ttsp_cycles").unwrap().as_u64() == Some(0) {
                    return Err("ttsp_cycles present but zero (should be omitted)".to_string());
                }
                Ok(())
            })
        }
        "phase" => require(
            &v,
            &[
                ("collection", Ty::U64),
                ("phase", Ty::Str),
                ("cycles", Ty::U64),
                ("wall_ns", Ty::U64),
            ],
        )
        .and_then(|()| {
            let name = v.get("phase").unwrap().as_str().unwrap();
            if GcPhase::ALL.iter().any(|p| p.wire_name() == name) {
                Ok(())
            } else {
                Err(format!("unknown phase {name:?}"))
            }
        }),
        "collection-end" => {
            // Worker fields are optional-together: serial collections
            // omit both, parallel collections carry both plus the
            // copied-bytes reconciliation identity.
            let parallel = v.get("workers").is_some() || v.get("worker_copied_bytes").is_some();
            let mut fields = vec![
                ("collection", Ty::U64),
                ("major", Ty::Bool),
                ("depth", Ty::U64),
                ("claimed_prefix", Ty::U64),
                ("oracle_prefix", Ty::U64),
                ("copied_bytes", Ty::U64),
                ("scanned_words", Ty::U64),
                ("pretenured_scanned_words", Ty::U64),
                ("roots_found", Ty::U64),
                ("frames_scanned", Ty::U64),
                ("frames_reused", Ty::U64),
                ("slots_scanned", Ty::U64),
                ("barrier_entries", Ty::U64),
                ("markers_placed", Ty::U64),
                ("gc_cycles", Ty::U64),
                ("end_cycles", Ty::U64),
                ("live_bytes_after", Ty::U64),
                ("wall_ns", Ty::U64),
                ("chunks_owned", Ty::U64),
                ("side_cleared_words", Ty::U64),
                ("size_hist", Ty::Hist),
                ("depth_hist", Ty::Hist),
            ];
            if parallel {
                fields.push(("workers", Ty::U64));
                fields.push(("worker_copied_bytes", Ty::U64Array));
            }
            require(&v, &fields).and_then(|()| {
                let claimed = v.get("claimed_prefix").unwrap().as_u64().unwrap();
                let oracle = v.get("oracle_prefix").unwrap().as_u64().unwrap();
                if claimed > oracle {
                    return Err(format!(
                        "claimed_prefix {claimed} exceeds oracle bound {oracle}"
                    ));
                }
                if parallel {
                    let workers = v.get("workers").unwrap().as_u64().unwrap();
                    if workers < 2 {
                        return Err(format!(
                            "worker fields present but workers is {workers} (< 2)"
                        ));
                    }
                    let per = v.get("worker_copied_bytes").unwrap().as_array().unwrap();
                    if per.len() as u64 != workers {
                        return Err(format!(
                            "worker_copied_bytes has {} entries for {workers} workers",
                            per.len()
                        ));
                    }
                    let sum: u64 = per.iter().map(|b| b.as_u64().unwrap()).sum();
                    let copied = v.get("copied_bytes").unwrap().as_u64().unwrap();
                    if sum != copied {
                        return Err(format!(
                            "worker_copied_bytes sum {sum} != copied_bytes {copied}"
                        ));
                    }
                }
                Ok(())
            })
        }
        "heap-census" => {
            // `spaces` is an object array like meta's `sites`, so this
            // variant is checked by hand rather than through `require`.
            for key in ["collection", "pretenured_sites"] {
                if v.get(key).and_then(Value::as_u64).is_none() {
                    return Err(format!("heap-census: missing integer field {key:?}"));
                }
            }
            let spaces = v
                .get("spaces")
                .and_then(Value::as_array)
                .ok_or("heap-census: missing array field \"spaces\"")?;
            if spaces.is_empty() {
                return Err("heap-census: spaces array is empty".to_string());
            }
            for s in spaces {
                let name = s
                    .get("space")
                    .and_then(Value::as_str)
                    .ok_or("heap-census: space row missing name")?;
                if !["semispace", "nursery", "tenured", "los"].contains(&name) {
                    return Err(format!("heap-census: unknown space {name:?}"));
                }
                for key in ["used_words", "reserved_words", "chunks"] {
                    if s.get(key).and_then(Value::as_u64).is_none() {
                        return Err(format!("heap-census: space row missing {key:?}"));
                    }
                }
                let used = s.get("used_words").unwrap().as_u64().unwrap();
                let reserved = s.get("reserved_words").unwrap().as_u64().unwrap();
                if used > reserved {
                    return Err(format!(
                        "heap-census: {name} used_words {used} exceeds reserved_words {reserved}"
                    ));
                }
            }
            for (key, _) in v.as_object().unwrap_or(&[]) {
                if !["type", "collection", "pretenured_sites", "spaces"].contains(&key.as_str()) {
                    return Err(format!("heap-census: unknown field {key:?}"));
                }
            }
            Ok(())
        }
        "site-sample" => require(
            &v,
            &[
                ("collection", Ty::U64),
                ("site", Ty::U64),
                ("allocs", Ty::U64),
                ("alloc_bytes", Ty::U64),
                ("copied_objects", Ty::U64),
                ("copied_bytes", Ty::U64),
                ("survived", Ty::U64),
            ],
        )
        .and_then(|()| {
            let site = v.get("site").unwrap().as_u64().unwrap();
            if site > u16::MAX as u64 {
                return Err(format!("site id {site} out of range"));
            }
            let survived = v.get("survived").unwrap().as_u64().unwrap();
            let copied = v.get("copied_objects").unwrap().as_u64().unwrap();
            if survived > copied {
                return Err(format!(
                    "survived {survived} exceeds copied_objects {copied}"
                ));
            }
            Ok(())
        }),
        "pressure-begin" => require(
            &v,
            &[
                ("site", Ty::U64),
                ("words", Ty::U64),
                ("space", Ty::Str),
                ("start_cycles", Ty::U64),
            ],
        )
        .and_then(|()| {
            let space = v.get("space").unwrap().as_str().unwrap();
            if ["nursery", "tenured", "los"].contains(&space) {
                Ok(())
            } else {
                Err(format!("unknown pressure space {space:?}"))
            }
        }),
        "pressure-rung" => require(
            &v,
            &[
                ("rung", Ty::Str),
                ("site", Ty::U64),
                ("words", Ty::U64),
                ("outcome", Ty::Str),
                ("cycles", Ty::U64),
            ],
        )
        .and_then(|()| {
            let rung = v.get("rung").unwrap().as_str().unwrap();
            if !["retry-minor", "retry-major", "rebalance", "demote"].contains(&rung) {
                return Err(format!("unknown pressure rung {rung:?}"));
            }
            let outcome = v.get("outcome").unwrap().as_str().unwrap();
            if !["recovered", "escalated", "demoted"].contains(&outcome) {
                return Err(format!("unknown rung outcome {outcome:?}"));
            }
            Ok(())
        }),
        "pressure-end" => require(
            &v,
            &[
                ("outcome", Ty::Str),
                ("rungs", Ty::U64),
                ("cycles", Ty::U64),
            ],
        )
        .and_then(|()| {
            let outcome = v.get("outcome").unwrap().as_str().unwrap();
            if ["recovered", "exhausted"].contains(&outcome) {
                Ok(())
            } else {
                Err(format!("unknown pressure outcome {outcome:?}"))
            }
        }),
        "site-promote" => require(
            &v,
            &[
                ("collection", Ty::U64),
                ("site", Ty::U64),
                ("survival_permille", Ty::U64),
            ],
        )
        .and_then(|()| check_site_flip(&v)),
        "site-demote" => require(
            &v,
            &[
                ("collection", Ty::U64),
                ("site", Ty::U64),
                ("survival_permille", Ty::U64),
                ("reason", Ty::Str),
            ],
        )
        .and_then(|()| {
            check_site_flip(&v)?;
            let reason = v.get("reason").unwrap().as_str().unwrap();
            if ["adaptive", "pressure"].contains(&reason) {
                Ok(())
            } else {
                Err(format!("unknown demote reason {reason:?}"))
            }
        }),
        "degradation-begin" => require(
            &v,
            &[
                ("collection", Ty::U64),
                ("trigger", Ty::Str),
                ("workers", Ty::U64),
                ("workers_lost", Ty::U64),
            ],
        )
        .and_then(|()| {
            let trigger = v.get("trigger").unwrap().as_str().unwrap();
            if !["panic", "watchdog", "budget", "orphan"].contains(&trigger) {
                return Err(format!("unknown degradation trigger {trigger:?}"));
            }
            let workers = v.get("workers").unwrap().as_u64().unwrap();
            if workers < 2 {
                return Err(format!("degradation on {workers} workers (< 2)"));
            }
            let lost = v.get("workers_lost").unwrap().as_u64().unwrap();
            if lost > workers {
                return Err(format!("workers_lost {lost} exceeds workers {workers}"));
            }
            Ok(())
        }),
        "degradation-end" => require(
            &v,
            &[
                ("collection", Ty::U64),
                ("leftover_packets", Ty::U64),
                ("outcome", Ty::Str),
            ],
        )
        .and_then(|()| {
            let outcome = v.get("outcome").unwrap().as_str().unwrap();
            if outcome == "drained" {
                Ok(())
            } else {
                Err(format!("unknown degradation outcome {outcome:?}"))
            }
        }),
        other => Err(format!("unknown event type {other:?}")),
    }
}

/// Range checks shared by the `site-promote` / `site-demote` variants.
fn check_site_flip(v: &Value) -> Result<(), String> {
    let site = v.get("site").unwrap().as_u64().unwrap();
    if site > u16::MAX as u64 {
        return Err(format!("site id {site} out of range"));
    }
    let permille = v.get("survival_permille").unwrap().as_u64().unwrap();
    if permille > 1000 {
        return Err(format!("survival_permille {permille} exceeds 1000"));
    }
    Ok(())
}

/// Validates a whole JSONL document: first line must be `meta`, every
/// line must validate, collection numbers must be properly bracketed
/// (begin before end, strictly increasing), and per-collection phase
/// cycles must sum exactly to the reported `gc_cycles`.
///
/// Pressure episodes are bracketed too: a `pressure-begin` opens an
/// episode on the allocation path (so it cannot appear inside a
/// collection span, though collections triggered by the ladder may nest
/// *inside* the episode), `pressure-rung` lines may only appear inside
/// an open episode, and the closing `pressure-end` must report exactly
/// the number of rungs taken and the sum of their cycle charges.
///
/// Degradation episodes are bracketed like censuses: both lines sit
/// *outside* any collection span, reference the collection that just
/// ended, and the `degradation-end` must name the same collection as
/// its begin with no nesting.
pub fn validate_jsonl(doc: &str) -> Result<usize, String> {
    let mut lines = 0usize;
    let mut open: Option<u64> = None;
    let mut last_ended = 0u64;
    let mut phase_sum = 0u64;
    let mut pressure_open = false;
    let mut rung_sum = 0u64;
    let mut rung_count = 0u64;
    let mut degradation_open: Option<u64> = None;
    for (i, line) in doc.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        validate_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let v = parse(line).unwrap();
        let kind = v.get("type").unwrap().as_str().unwrap();
        if i == 0 && kind != "meta" {
            return Err("line 1: expected meta line".to_string());
        }
        match kind {
            "collection-begin" => {
                let c = v.get("collection").unwrap().as_u64().unwrap();
                if open.is_some() {
                    return Err(format!("line {}: nested collection {c}", i + 1));
                }
                if degradation_open.is_some() {
                    return Err(format!(
                        "line {}: collection {c} began inside a degradation episode",
                        i + 1
                    ));
                }
                if c <= last_ended {
                    return Err(format!("line {}: collection {c} out of order", i + 1));
                }
                open = Some(c);
                phase_sum = 0;
            }
            "phase" => {
                let c = v.get("collection").unwrap().as_u64().unwrap();
                if open != Some(c) {
                    return Err(format!("line {}: phase outside collection {c}", i + 1));
                }
                phase_sum += v.get("cycles").unwrap().as_u64().unwrap();
            }
            "collection-end" => {
                let c = v.get("collection").unwrap().as_u64().unwrap();
                if open != Some(c) {
                    return Err(format!("line {}: end without begin for {c}", i + 1));
                }
                let gc_cycles = v.get("gc_cycles").unwrap().as_u64().unwrap();
                if phase_sum != gc_cycles {
                    return Err(format!(
                        "line {}: phase cycles {phase_sum} != gc_cycles {gc_cycles}",
                        i + 1
                    ));
                }
                open = None;
                last_ended = c;
            }
            "heap-census" => {
                let c = v.get("collection").unwrap().as_u64().unwrap();
                if open.is_some() {
                    return Err(format!("line {}: census inside a collection span", i + 1));
                }
                if c != last_ended {
                    return Err(format!(
                        "line {}: census for collection {c} but last ended is {last_ended}",
                        i + 1
                    ));
                }
            }
            "degradation-begin" => {
                let c = v.get("collection").unwrap().as_u64().unwrap();
                if open.is_some() {
                    return Err(format!(
                        "line {}: degradation inside a collection span",
                        i + 1
                    ));
                }
                if degradation_open.is_some() {
                    return Err(format!("line {}: nested degradation episode", i + 1));
                }
                if c != last_ended {
                    return Err(format!(
                        "line {}: degradation for collection {c} but last ended is {last_ended}",
                        i + 1
                    ));
                }
                degradation_open = Some(c);
            }
            "degradation-end" => {
                let c = v.get("collection").unwrap().as_u64().unwrap();
                if degradation_open != Some(c) {
                    return Err(format!(
                        "line {}: degradation end without begin for {c}",
                        i + 1
                    ));
                }
                degradation_open = None;
            }
            "pressure-begin" => {
                if pressure_open {
                    return Err(format!("line {}: nested pressure episode", i + 1));
                }
                if open.is_some() {
                    return Err(format!(
                        "line {}: pressure episode opened inside a collection",
                        i + 1
                    ));
                }
                pressure_open = true;
                rung_sum = 0;
                rung_count = 0;
            }
            "pressure-rung" => {
                if !pressure_open {
                    return Err(format!("line {}: rung outside a pressure episode", i + 1));
                }
                if open.is_some() {
                    return Err(format!("line {}: rung inside a collection span", i + 1));
                }
                rung_sum += v.get("cycles").unwrap().as_u64().unwrap();
                rung_count += 1;
            }
            "pressure-end" => {
                if !pressure_open {
                    return Err(format!("line {}: pressure end without begin", i + 1));
                }
                if open.is_some() {
                    return Err(format!(
                        "line {}: pressure episode ended inside a collection",
                        i + 1
                    ));
                }
                let cycles = v.get("cycles").unwrap().as_u64().unwrap();
                if cycles != rung_sum {
                    return Err(format!(
                        "line {}: episode cycles {cycles} != rung sum {rung_sum}",
                        i + 1
                    ));
                }
                let rungs = v.get("rungs").unwrap().as_u64().unwrap();
                if rungs != rung_count {
                    return Err(format!(
                        "line {}: episode rungs {rungs} != rung count {rung_count}",
                        i + 1
                    ));
                }
                pressure_open = false;
            }
            _ => {}
        }
        lines += 1;
    }
    if let Some(c) = open {
        return Err(format!("collection {c} never ended"));
    }
    if pressure_open {
        return Err("pressure episode never ended".to_string());
    }
    if let Some(c) = degradation_open {
        return Err(format!("degradation episode for {c} never ended"));
    }
    if lines == 0 {
        return Err("empty document".to_string());
    }
    Ok(lines)
}

/// Validates a Chrome trace document: parses as JSON, requires a
/// `traceEvents` array whose entries all carry a `ph` string, and checks
/// the fields of "X" (complete), "i" (instant) and "C" (counter) events.
pub fn validate_chrome(doc: &str) -> Result<usize, String> {
    let v = parse(doc)?;
    let events = v
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or("missing traceEvents array")?;
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        match ph {
            "X" => {
                for key in ["name", "cat"] {
                    if e.get(key).and_then(Value::as_str).is_none() {
                        return Err(format!("event {i}: missing string {key:?}"));
                    }
                }
                for key in ["ts", "dur"] {
                    if e.get(key).and_then(Value::as_f64).is_none_or(|x| x < 0.0) {
                        return Err(format!("event {i}: bad {key:?}"));
                    }
                }
                for key in ["pid", "tid"] {
                    if e.get(key).and_then(Value::as_u64).is_none() {
                        return Err(format!("event {i}: missing {key:?}"));
                    }
                }
            }
            "i" => {
                for key in ["name", "cat", "s"] {
                    if e.get(key).and_then(Value::as_str).is_none() {
                        return Err(format!("event {i}: instant missing string {key:?}"));
                    }
                }
                if e.get("ts").and_then(Value::as_f64).is_none_or(|x| x < 0.0) {
                    return Err(format!("event {i}: instant has bad \"ts\""));
                }
                for key in ["pid", "tid"] {
                    if e.get(key).and_then(Value::as_u64).is_none() {
                        return Err(format!("event {i}: instant missing {key:?}"));
                    }
                }
            }
            "C" => {
                if e.get("name").and_then(Value::as_str).is_none() {
                    return Err(format!("event {i}: counter missing name"));
                }
                if e.get("ts").and_then(Value::as_f64).is_none_or(|x| x < 0.0) {
                    return Err(format!("event {i}: counter has bad \"ts\""));
                }
                if e.get("pid").and_then(Value::as_u64).is_none() {
                    return Err(format!("event {i}: counter missing \"pid\""));
                }
                let args = e
                    .get("args")
                    .ok_or_else(|| format!("event {i}: counter missing args"))?;
                let series = args
                    .as_object()
                    .ok_or_else(|| format!("event {i}: counter args not an object"))?;
                if series.is_empty() || series.iter().any(|(_, v)| v.as_u64().is_none()) {
                    return Err(format!("event {i}: counter args need integer series"));
                }
            }
            "M" => {
                if e.get("name").and_then(Value::as_str).is_none() {
                    return Err(format!("event {i}: metadata missing name"));
                }
            }
            other => return Err(format!("event {i}: unexpected ph {other:?}")),
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_documented_lines() {
        let lines = [
            r#"{"type":"meta","plan":"semispace","bench":"Life","clock_hz":150000000,"sites":[{"id":0,"name":"unknown"}]}"#,
            r#"{"type":"collection-begin","collection":1,"plan":"semispace","reason":"forced","major":true,"depth":0,"start_cycles":10}"#,
            r#"{"type":"phase","collection":1,"phase":"cheney-copy","cycles":5,"wall_ns":10}"#,
            r#"{"type":"site-sample","collection":1,"site":2,"allocs":3,"alloc_bytes":48,"copied_objects":1,"copied_bytes":16,"survived":1}"#,
            r#"{"type":"pressure-begin","site":4,"words":18,"space":"nursery","start_cycles":900}"#,
            r#"{"type":"pressure-rung","rung":"retry-major","site":4,"words":18,"outcome":"recovered","cycles":20}"#,
            r#"{"type":"pressure-end","outcome":"recovered","rungs":1,"cycles":20}"#,
            r#"{"type":"site-promote","collection":3,"site":9,"survival_permille":903}"#,
            r#"{"type":"heap-census","collection":1,"pretenured_sites":0,"spaces":[{"space":"nursery","used_words":0,"reserved_words":1024,"chunks":2},{"space":"tenured","used_words":12,"reserved_words":2048,"chunks":4}]}"#,
            r#"{"type":"site-demote","collection":8,"site":9,"survival_permille":105,"reason":"adaptive"}"#,
            r#"{"type":"site-demote","collection":9,"site":2,"survival_permille":640,"reason":"pressure"}"#,
            r#"{"type":"collection-begin","collection":2,"plan":"semispace","reason":"alloc-failure","major":false,"depth":1,"start_cycles":99,"ttsp_cycles":12}"#,
            r#"{"type":"degradation-begin","collection":1,"trigger":"panic","workers":4,"workers_lost":1}"#,
            r#"{"type":"degradation-begin","collection":1,"trigger":"orphan","workers":2,"workers_lost":0}"#,
            r#"{"type":"degradation-end","collection":1,"leftover_packets":3,"outcome":"drained"}"#,
        ];
        for line in lines {
            validate_line(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
    }

    #[test]
    fn rejects_bad_lines() {
        let bad = [
            ("not json", "{oops"),
            ("unknown type", r#"{"type":"mystery"}"#),
            (
                "unknown phase",
                r#"{"type":"phase","collection":1,"phase":"mark-sweep","cycles":1,"wall_ns":0}"#,
            ),
            (
                "unknown reason",
                r#"{"type":"collection-begin","collection":1,"plan":"x","reason":"bored","major":false,"depth":0,"start_cycles":0}"#,
            ),
            (
                "survived > copied",
                r#"{"type":"site-sample","collection":1,"site":1,"allocs":0,"alloc_bytes":0,"copied_objects":1,"copied_bytes":16,"survived":2}"#,
            ),
            (
                "extra field",
                r#"{"type":"phase","collection":1,"phase":"setup","cycles":1,"wall_ns":0,"bogus":1}"#,
            ),
            (
                "missing field",
                r#"{"type":"phase","collection":1,"phase":"setup","cycles":1}"#,
            ),
            (
                "unknown pressure rung",
                r#"{"type":"pressure-rung","rung":"pray","site":0,"words":1,"outcome":"recovered","cycles":1}"#,
            ),
            (
                "unknown pressure space",
                r#"{"type":"pressure-begin","site":0,"words":1,"space":"attic","start_cycles":0}"#,
            ),
            (
                "unknown pressure outcome",
                r#"{"type":"pressure-end","outcome":"shrug","rungs":1,"cycles":1}"#,
            ),
            (
                "promote permille out of range",
                r#"{"type":"site-promote","collection":1,"site":1,"survival_permille":1001}"#,
            ),
            (
                "promote site out of range",
                r#"{"type":"site-promote","collection":1,"site":70000,"survival_permille":900}"#,
            ),
            (
                "unknown demote reason",
                r#"{"type":"site-demote","collection":1,"site":1,"survival_permille":100,"reason":"whim"}"#,
            ),
            (
                "demote without reason",
                r#"{"type":"site-demote","collection":1,"site":1,"survival_permille":100}"#,
            ),
            (
                "census with unknown space",
                r#"{"type":"heap-census","collection":1,"pretenured_sites":0,"spaces":[{"space":"attic","used_words":0,"reserved_words":1,"chunks":0}]}"#,
            ),
            (
                "census with empty spaces",
                r#"{"type":"heap-census","collection":1,"pretenured_sites":0,"spaces":[]}"#,
            ),
            (
                "census used exceeds reserved",
                r#"{"type":"heap-census","collection":1,"pretenured_sites":0,"spaces":[{"space":"nursery","used_words":9,"reserved_words":8,"chunks":1}]}"#,
            ),
            (
                "census with unknown field",
                r#"{"type":"heap-census","collection":1,"pretenured_sites":0,"bogus":1,"spaces":[{"space":"nursery","used_words":0,"reserved_words":8,"chunks":1}]}"#,
            ),
            (
                "census row missing chunks",
                r#"{"type":"heap-census","collection":1,"pretenured_sites":0,"spaces":[{"space":"nursery","used_words":0,"reserved_words":8}]}"#,
            ),
            (
                "zero ttsp should be omitted",
                r#"{"type":"collection-begin","collection":1,"plan":"x","reason":"forced","major":false,"depth":0,"start_cycles":0,"ttsp_cycles":0}"#,
            ),
            (
                "unknown degradation trigger",
                r#"{"type":"degradation-begin","collection":1,"trigger":"gremlins","workers":4,"workers_lost":1}"#,
            ),
            (
                "degradation on a serial collection",
                r#"{"type":"degradation-begin","collection":1,"trigger":"panic","workers":1,"workers_lost":1}"#,
            ),
            (
                "workers_lost exceeds workers",
                r#"{"type":"degradation-begin","collection":1,"trigger":"panic","workers":2,"workers_lost":3}"#,
            ),
            (
                "unknown degradation outcome",
                r#"{"type":"degradation-end","collection":1,"leftover_packets":0,"outcome":"gave-up"}"#,
            ),
        ];
        for (what, line) in bad {
            assert!(validate_line(line).is_err(), "{what} should be rejected");
        }
    }

    #[test]
    fn collection_end_worker_fields_are_optional_together_and_reconciled() {
        let base = "{\"type\":\"collection-end\",\"collection\":1,\"major\":false,\"depth\":0,\"claimed_prefix\":0,\"oracle_prefix\":0,\"copied_bytes\":64,\"scanned_words\":0,\"pretenured_scanned_words\":0,\"roots_found\":0,\"frames_scanned\":0,\"frames_reused\":0,\"slots_scanned\":0,\"barrier_entries\":0,\"markers_placed\":0,\"gc_cycles\":5,\"end_cycles\":5,\"live_bytes_after\":0,\"wall_ns\":0,\"chunks_owned\":0,\"side_cleared_words\":0,\"size_hist\":[0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0],\"depth_hist\":[0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0]";
        let serial = format!("{base}}}");
        validate_line(&serial).expect("serial end line valid without worker fields");

        let parallel = format!("{base},\"workers\":2,\"worker_copied_bytes\":[48,16]}}");
        validate_line(&parallel).expect("parallel end line valid");

        let bad = [
            (
                "workers without per-worker array",
                format!("{base},\"workers\":2}}"),
            ),
            (
                "per-worker array without workers",
                format!("{base},\"worker_copied_bytes\":[64]}}"),
            ),
            (
                "workers below 2",
                format!("{base},\"workers\":1,\"worker_copied_bytes\":[64]}}"),
            ),
            (
                "array length mismatch",
                format!("{base},\"workers\":3,\"worker_copied_bytes\":[48,16]}}"),
            ),
            (
                "sum mismatch",
                format!("{base},\"workers\":2,\"worker_copied_bytes\":[48,17]}}"),
            ),
        ];
        for (what, line) in bad {
            assert!(validate_line(&line).is_err(), "{what} should be rejected");
        }
    }

    #[test]
    fn jsonl_document_checks_bracketing_and_phase_sums() {
        let ok = "\
{\"type\":\"meta\",\"plan\":\"p\",\"bench\":\"b\",\"clock_hz\":1,\"sites\":[]}\n\
{\"type\":\"collection-begin\",\"collection\":1,\"plan\":\"p\",\"reason\":\"forced\",\"major\":false,\"depth\":0,\"start_cycles\":0}\n\
{\"type\":\"phase\",\"collection\":1,\"phase\":\"setup\",\"cycles\":2,\"wall_ns\":0}\n\
{\"type\":\"phase\",\"collection\":1,\"phase\":\"cheney-copy\",\"cycles\":3,\"wall_ns\":0}\n\
{\"type\":\"collection-end\",\"collection\":1,\"major\":false,\"depth\":0,\"claimed_prefix\":0,\"oracle_prefix\":0,\"copied_bytes\":0,\"scanned_words\":0,\"pretenured_scanned_words\":0,\"roots_found\":0,\"frames_scanned\":0,\"frames_reused\":0,\"slots_scanned\":0,\"barrier_entries\":0,\"markers_placed\":0,\"gc_cycles\":5,\"end_cycles\":5,\"live_bytes_after\":0,\"wall_ns\":0,\"chunks_owned\":0,\"side_cleared_words\":0,\"size_hist\":[0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0],\"depth_hist\":[0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0]}\n";
        assert_eq!(validate_jsonl(ok).unwrap(), 5);
        let mismatched = ok.replace("\"gc_cycles\":5", "\"gc_cycles\":6");
        assert!(validate_jsonl(&mismatched)
            .unwrap_err()
            .contains("phase cycles"));
        let unclosed = ok.lines().take(3).collect::<Vec<_>>().join("\n");
        assert!(validate_jsonl(&unclosed)
            .unwrap_err()
            .contains("never ended"));
    }

    #[test]
    fn jsonl_document_checks_census_placement() {
        let meta =
            "{\"type\":\"meta\",\"plan\":\"p\",\"bench\":\"b\",\"clock_hz\":1,\"sites\":[]}\n";
        let gc_begin = "{\"type\":\"collection-begin\",\"collection\":1,\"plan\":\"p\",\"reason\":\"forced\",\"major\":false,\"depth\":0,\"start_cycles\":0}\n";
        let gc_phase = "{\"type\":\"phase\",\"collection\":1,\"phase\":\"setup\",\"cycles\":5,\"wall_ns\":0}\n";
        let gc_end = "{\"type\":\"collection-end\",\"collection\":1,\"major\":false,\"depth\":0,\"claimed_prefix\":0,\"oracle_prefix\":0,\"copied_bytes\":0,\"scanned_words\":0,\"pretenured_scanned_words\":0,\"roots_found\":0,\"frames_scanned\":0,\"frames_reused\":0,\"slots_scanned\":0,\"barrier_entries\":0,\"markers_placed\":0,\"gc_cycles\":5,\"end_cycles\":5,\"live_bytes_after\":0,\"wall_ns\":0,\"chunks_owned\":0,\"side_cleared_words\":0,\"size_hist\":[0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0],\"depth_hist\":[0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0]}\n";
        let census = "{\"type\":\"heap-census\",\"collection\":1,\"pretenured_sites\":0,\"spaces\":[{\"space\":\"semispace\",\"used_words\":0,\"reserved_words\":64,\"chunks\":1}]}\n";
        let ok = format!("{meta}{gc_begin}{gc_phase}{gc_end}{census}");
        assert_eq!(validate_jsonl(&ok).unwrap(), 5);

        let inside = format!("{meta}{gc_begin}{census}");
        assert!(validate_jsonl(&inside)
            .unwrap_err()
            .contains("inside a collection"));
        let wrong_collection = format!(
            "{meta}{gc_begin}{gc_phase}{gc_end}{}",
            census.replace("\"collection\":1", "\"collection\":2")
        );
        assert!(validate_jsonl(&wrong_collection)
            .unwrap_err()
            .contains("last ended"));
    }

    #[test]
    fn jsonl_document_checks_degradation_bracketing() {
        let meta =
            "{\"type\":\"meta\",\"plan\":\"p\",\"bench\":\"b\",\"clock_hz\":1,\"sites\":[]}\n";
        let gc_begin = "{\"type\":\"collection-begin\",\"collection\":1,\"plan\":\"p\",\"reason\":\"forced\",\"major\":false,\"depth\":0,\"start_cycles\":0}\n";
        let gc_phase = "{\"type\":\"phase\",\"collection\":1,\"phase\":\"setup\",\"cycles\":5,\"wall_ns\":0}\n";
        let gc_end = "{\"type\":\"collection-end\",\"collection\":1,\"major\":false,\"depth\":0,\"claimed_prefix\":0,\"oracle_prefix\":0,\"copied_bytes\":0,\"scanned_words\":0,\"pretenured_scanned_words\":0,\"roots_found\":0,\"frames_scanned\":0,\"frames_reused\":0,\"slots_scanned\":0,\"barrier_entries\":0,\"markers_placed\":0,\"gc_cycles\":5,\"end_cycles\":5,\"live_bytes_after\":0,\"wall_ns\":0,\"chunks_owned\":0,\"side_cleared_words\":0,\"size_hist\":[0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0],\"depth_hist\":[0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0]}\n";
        let deg_begin = "{\"type\":\"degradation-begin\",\"collection\":1,\"trigger\":\"watchdog\",\"workers\":4,\"workers_lost\":1}\n";
        let deg_end = "{\"type\":\"degradation-end\",\"collection\":1,\"leftover_packets\":2,\"outcome\":\"drained\"}\n";
        let ok = format!("{meta}{gc_begin}{gc_phase}{gc_end}{deg_begin}{deg_end}");
        assert_eq!(validate_jsonl(&ok).unwrap(), 6);

        let inside = format!("{meta}{gc_begin}{deg_begin}");
        assert!(validate_jsonl(&inside)
            .unwrap_err()
            .contains("inside a collection"));
        let wrong_collection = format!(
            "{meta}{gc_begin}{gc_phase}{gc_end}{}",
            deg_begin.replace("\"collection\":1", "\"collection\":2")
        );
        assert!(validate_jsonl(&wrong_collection)
            .unwrap_err()
            .contains("last ended"));
        let orphan_end = format!("{meta}{gc_begin}{gc_phase}{gc_end}{deg_end}");
        assert!(validate_jsonl(&orphan_end)
            .unwrap_err()
            .contains("without begin"));
        let unclosed = format!("{meta}{gc_begin}{gc_phase}{gc_end}{deg_begin}");
        assert!(validate_jsonl(&unclosed)
            .unwrap_err()
            .contains("never ended"));
        let nested = format!("{meta}{gc_begin}{gc_phase}{gc_end}{deg_begin}{deg_begin}");
        assert!(validate_jsonl(&nested)
            .unwrap_err()
            .contains("nested degradation"));
    }

    #[test]
    fn jsonl_document_checks_pressure_bracketing() {
        let meta =
            "{\"type\":\"meta\",\"plan\":\"p\",\"bench\":\"b\",\"clock_hz\":1,\"sites\":[]}\n";
        let begin = "{\"type\":\"pressure-begin\",\"site\":1,\"words\":8,\"space\":\"tenured\",\"start_cycles\":0}\n";
        let rung = "{\"type\":\"pressure-rung\",\"rung\":\"retry-major\",\"site\":1,\"words\":8,\"outcome\":\"escalated\",\"cycles\":20}\n";
        let rung2 = "{\"type\":\"pressure-rung\",\"rung\":\"rebalance\",\"site\":1,\"words\":8,\"outcome\":\"recovered\",\"cycles\":200}\n";
        let end =
            "{\"type\":\"pressure-end\",\"outcome\":\"recovered\",\"rungs\":2,\"cycles\":220}\n";
        let ok = format!("{meta}{begin}{rung}{rung2}{end}");
        assert_eq!(validate_jsonl(&ok).unwrap(), 5);

        // A collection triggered by the ladder nests inside the episode.
        let gc_begin = "{\"type\":\"collection-begin\",\"collection\":1,\"plan\":\"p\",\"reason\":\"alloc-failure\",\"major\":true,\"depth\":0,\"start_cycles\":0}\n";
        let gc_phase = "{\"type\":\"phase\",\"collection\":1,\"phase\":\"setup\",\"cycles\":5,\"wall_ns\":0}\n";
        let gc_end = "{\"type\":\"collection-end\",\"collection\":1,\"major\":true,\"depth\":0,\"claimed_prefix\":0,\"oracle_prefix\":0,\"copied_bytes\":0,\"scanned_words\":0,\"pretenured_scanned_words\":0,\"roots_found\":0,\"frames_scanned\":0,\"frames_reused\":0,\"slots_scanned\":0,\"barrier_entries\":0,\"markers_placed\":0,\"gc_cycles\":5,\"end_cycles\":5,\"live_bytes_after\":0,\"wall_ns\":0,\"chunks_owned\":0,\"side_cleared_words\":0,\"size_hist\":[0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0],\"depth_hist\":[0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0]}\n";
        let nested = format!("{meta}{begin}{gc_begin}{gc_phase}{gc_end}{rung}{rung2}{end}");
        assert_eq!(validate_jsonl(&nested).unwrap(), 8);

        let orphan_rung = format!("{meta}{rung}");
        assert!(validate_jsonl(&orphan_rung)
            .unwrap_err()
            .contains("outside a pressure episode"));
        let bad_sum = format!("{meta}{begin}{rung}{end}");
        assert!(validate_jsonl(&bad_sum).unwrap_err().contains("rung"));
        let unclosed = format!("{meta}{begin}{rung}");
        assert!(validate_jsonl(&unclosed)
            .unwrap_err()
            .contains("pressure episode never ended"));
        let inside_gc = format!("{meta}{gc_begin}{begin}");
        assert!(validate_jsonl(&inside_gc)
            .unwrap_err()
            .contains("inside a collection"));
    }

    #[test]
    fn chrome_validator_accepts_rendered_trace() {
        let events = [crate::Event::CollectionBegin(crate::CollectionBegin {
            collection: 1,
            plan: "p",
            reason: "forced",
            major: false,
            depth: 0,
            start_cycles: 0,
            ttsp_cycles: 0,
        })];
        let doc = crate::chrome::render("p", "b", 150_000_000, &events);
        assert!(
            validate_chrome(&doc).unwrap() >= 3,
            "metadata events present"
        );
        assert!(validate_chrome("{}").is_err());
        assert!(validate_chrome("{\"traceEvents\":[{\"ph\":\"Q\"}]}").is_err());
    }
}
