//! A shared, atomic view of the simulated address space for parallel
//! collection.
//!
//! Parallel tracing workers race to *claim* from-space objects: the
//! winner installs a busy sentinel in the object's header with a CAS,
//! copies the payload, then publishes the forwarding pointer with a
//! release store. Losers spin until the forwarding pointer appears. That
//! protocol needs atomic access to the word array, which the safe
//! [`Memory`](crate::Memory) accessors cannot provide — so this module
//! reinterprets the exclusively borrowed `&mut [u64]` as `&[AtomicU64]`.
//!
//! This is the only `unsafe` code in the workspace. It is sound because:
//!
//! * `AtomicU64` is `repr(transparent)` over `u64` with identical size
//!   and alignment (checked at compile time below), and
//! * the view is constructed from a `&mut` borrow, so for its lifetime
//!   no non-atomic access to the same words can exist.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::{Addr, Header};

const _: () = assert!(std::mem::size_of::<u64>() == std::mem::size_of::<AtomicU64>());
const _: () = assert!(std::mem::align_of::<u64>() == std::mem::align_of::<AtomicU64>());

/// An atomic window over the whole simulated address space.
///
/// Copyable and `Sync`: every parallel worker holds the same view. All
/// accessors take absolute [`Addr`]s, like the `Memory` equivalents.
///
/// Plain data words use relaxed ordering — each is written by exactly
/// one worker (the claim winner for a copy, the sole scanner of a gray
/// object for a field update). Headers of from-space objects are the
/// contended words and use the claim/publish protocol:
/// [`try_claim`](SharedMemView::try_claim) (acquire-release CAS to the
/// [`BUSY`](SharedMemView::BUSY) sentinel) and
/// [`publish`](SharedMemView::publish) (release store of the forwarding
/// header), observed via
/// [`load_header_acquire`](SharedMemView::load_header_acquire).
#[derive(Clone, Copy, Debug)]
pub struct SharedMemView<'m> {
    words: &'m [AtomicU64],
}

impl<'m> SharedMemView<'m> {
    /// The busy sentinel a claiming worker installs between winning the
    /// CAS and publishing the real forwarding pointer: a forwarding
    /// header whose target is null. No real forwarding header ever
    /// points at null, so readers can distinguish "claimed, copy in
    /// flight" from "forwarded".
    pub const BUSY: u64 = Header::forward(Addr::NULL).raw();

    /// Builds the view over an exclusively borrowed word array.
    #[allow(unsafe_code)]
    pub(crate) fn new(words: &'m mut [u64]) -> SharedMemView<'m> {
        let len = words.len();
        let ptr = words.as_mut_ptr().cast::<AtomicU64>();
        // SAFETY: AtomicU64 has the same size and alignment as u64
        // (compile-time asserts above), and `words` is a unique `&mut`
        // borrow, so handing the range out as shared atomics cannot
        // race with any non-atomic access for the view's lifetime.
        let atoms = unsafe { std::slice::from_raw_parts(ptr, len) };
        SharedMemView { words: atoms }
    }

    /// Number of words in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Reads the word at `addr` (relaxed).
    #[inline]
    pub fn load(&self, addr: Addr) -> u64 {
        debug_assert!(!addr.is_null(), "read through null address");
        self.words[addr.index()].load(Ordering::Relaxed)
    }

    /// Writes the word at `addr` (relaxed).
    #[inline]
    pub fn store(&self, addr: Addr, value: u64) {
        debug_assert!(!addr.is_null(), "write through null address");
        self.words[addr.index()].store(value, Ordering::Relaxed);
    }

    /// Reads the raw header word at `addr` with acquire ordering, so a
    /// forwarding header observed here makes the copied payload behind
    /// it visible too.
    #[inline]
    pub fn load_header_acquire(&self, addr: Addr) -> u64 {
        debug_assert!(!addr.is_null(), "read through null address");
        self.words[addr.index()].load(Ordering::Acquire)
    }

    /// Attempts to claim the object at `addr` for forwarding: CAS its
    /// header from `expected` to [`BUSY`](SharedMemView::BUSY).
    ///
    /// # Errors
    ///
    /// On failure returns the header word actually present — either
    /// `BUSY` (another worker is mid-copy; spin on
    /// [`load_header_acquire`](SharedMemView::load_header_acquire)) or
    /// a published forwarding header.
    #[inline]
    pub fn try_claim(&self, addr: Addr, expected: u64) -> Result<(), u64> {
        debug_assert!(!addr.is_null(), "claim through null address");
        self.words[addr.index()]
            .compare_exchange(expected, Self::BUSY, Ordering::AcqRel, Ordering::Acquire)
            .map(|_| ())
    }

    /// Publishes a header word at `addr` with release ordering. The
    /// claim winner calls this with the forwarding header once the
    /// payload copy is complete.
    #[inline]
    pub fn publish(&self, addr: Addr, header: u64) {
        debug_assert!(!addr.is_null(), "publish through null address");
        self.words[addr.index()].store(header, Ordering::Release);
    }

    /// Copies `len` words from `src` to `dst` (relaxed element-wise).
    /// Used by the parallel copy step: the destination is private to
    /// the claiming worker until [`publish`](SharedMemView::publish).
    pub fn copy_words(&self, src: Addr, dst: Addr, len: usize) {
        debug_assert!(len == 0 || (!src.is_null() && !dst.is_null()));
        let (s, d) = (src.index(), dst.index());
        for i in 0..len {
            self.words[d + i].store(self.words[s + i].load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_sentinel_is_a_null_forward() {
        let h = Header::from_raw(SharedMemView::BUSY);
        assert!(h.is_forward());
        assert!(h.forward_addr().unwrap().is_null());
    }

    #[test]
    fn load_store_round_trip() {
        let mut words = vec![0u64; 8];
        let view = SharedMemView::new(&mut words);
        assert_eq!(view.len(), 8);
        assert!(!view.is_empty());
        view.store(Addr::new(3), 0xfeed);
        assert_eq!(view.load(Addr::new(3)), 0xfeed);
        assert_eq!(words[3], 0xfeed, "writes land in the backing array");
    }

    #[test]
    fn claim_then_publish_protocol() {
        let mut words = vec![0u64; 8];
        let h = Header::record(2, 0b01).unwrap().raw();
        words[2] = h;
        let view = SharedMemView::new(&mut words);
        view.try_claim(Addr::new(2), h).expect("first claim wins");
        assert_eq!(
            view.try_claim(Addr::new(2), h),
            Err(SharedMemView::BUSY),
            "second claim sees the busy sentinel"
        );
        let fwd = Header::forward(Addr::new(5)).raw();
        view.publish(Addr::new(2), fwd);
        assert_eq!(view.load_header_acquire(Addr::new(2)), fwd);
    }

    #[test]
    fn copy_words_moves_payload() {
        let mut words = vec![0u64; 16];
        for (i, w) in words.iter_mut().enumerate().take(5).skip(1) {
            *w = 10 + i as u64;
        }
        let view = SharedMemView::new(&mut words);
        view.copy_words(Addr::new(1), Addr::new(9), 4);
        assert_eq!(view.load(Addr::new(9)), 11);
        assert_eq!(view.load(Addr::new(12)), 14);
    }

    #[test]
    fn concurrent_claims_elect_one_winner() {
        let mut words = vec![0u64; 64];
        let h = Header::record(1, 0).unwrap().raw();
        for w in words.iter_mut().skip(1) {
            *w = h;
        }
        let view = SharedMemView::new(&mut words);
        let wins: Vec<usize> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(move || {
                        let mut won = 0usize;
                        for i in 1..64u32 {
                            if view.try_claim(Addr::new(i), h).is_ok() {
                                won += 1;
                            }
                        }
                        won
                    })
                })
                .collect();
            handles.into_iter().map(|t| t.join().unwrap()).collect()
        });
        assert_eq!(wins.iter().sum::<usize>(), 63, "each word claimed once");
    }
}
