//! Chunked address-space bookkeeping and side metadata.
//!
//! The backing store stays one flat word array (objects may straddle
//! chunk boundaries and the copy kernels want contiguous slices), but
//! bookkeeping is chunked: the address space is divided into fixed
//! [`CHUNK_WORDS`]-sized chunks, each optionally *owned* by the space
//! whose reservation covers it, and a side-metadata layer hosts the
//! per-word metadata that used to live in object headers:
//!
//! * a **dirty bitmap** (1 bit per word) backing the object-marking
//!   write barrier's deduplication filter,
//! * a **mark bitmap** (1 bit per word) for large-object marking,
//! * a **scratch bitmap** (1 bit per word) the SSB dense filter borrows
//!   transiently,
//! * a **site table** (16 bits per word) carrying the allocation-site
//!   id of the object whose header sits at that word.
//!
//! Keeping metadata out of headers makes the barrier filter a single
//! branch-free test-and-set, makes clearing a `memset`-style word sweep
//! ([`SideBitmap::bulk_clear`]) instead of a per-object header walk, and
//! lets parallel workers mark through shared atomic views
//! ([`SideMetaView`]) without touching object headers. This follows the
//! chunked-heap + side-metadata idiom of production collectors
//! (mmtk-core's `util/heap` and `util/metadata/side_metadata`).
//!
//! Storage is `Vec<AtomicU64>` / `Vec<AtomicU16>` throughout: exclusive
//! (`&mut`) fast paths go through `get_mut` and compile to plain loads
//! and stores, while the shared parallel paths use atomic operations —
//! no new `unsafe` anywhere.

use std::sync::atomic::{AtomicU16, AtomicU64, Ordering};

use crate::{Addr, SiteId, SpaceRange};

/// Words per chunk (2¹⁵ words = 256 KiB of simulated heap).
pub const CHUNK_WORDS: usize = 1 << 15;

/// Bytes of simulated heap covered by one chunk.
pub const CHUNK_BYTES: usize = CHUNK_WORDS * crate::WORD_BYTES;

/// Ownership map of the chunked address space.
///
/// Each chunk is either unowned or tagged with the label of the space
/// whose reservation first covered any of its words. Ownership is
/// bookkeeping at chunk granularity: a boundary chunk shared by two
/// reservations keeps the first owner. Spaces tag their reservations
/// via [`Memory::reserve_owned`](crate::Memory::reserve_owned).
#[derive(Debug, Clone)]
pub struct ChunkMap {
    owners: Vec<Option<&'static str>>,
}

impl ChunkMap {
    /// Builds the map for an address space of `capacity_words` words.
    /// The last chunk may be partial.
    pub(crate) fn new(capacity_words: usize) -> ChunkMap {
        ChunkMap {
            owners: vec![None; capacity_words.div_ceil(CHUNK_WORDS)],
        }
    }

    /// The chunk index covering `addr`.
    #[inline]
    pub fn chunk_of(addr: Addr) -> usize {
        addr.index() / CHUNK_WORDS
    }

    /// Total number of chunks (owned or not).
    #[inline]
    pub fn len(&self) -> usize {
        self.owners.len()
    }

    /// Whether the map covers no chunks.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.owners.is_empty()
    }

    /// The owner label of the chunk covering `addr`, if any.
    #[inline]
    pub fn owner_of(&self, addr: Addr) -> Option<&'static str> {
        self.owners[Self::chunk_of(addr)]
    }

    /// Number of chunks currently owned by some space.
    pub fn owned_chunks(&self) -> usize {
        self.owners.iter().filter(|o| o.is_some()).count()
    }

    /// Number of chunks owned by the space labelled `owner`.
    pub fn owned_chunks_by(&self, owner: &str) -> usize {
        self.owners.iter().filter(|o| **o == Some(owner)).count()
    }

    /// Tags every chunk overlapping `range` with `owner`. Chunks that
    /// already have an owner keep it (first reservation wins).
    pub(crate) fn assign(&mut self, range: SpaceRange, owner: &'static str) {
        if range.end <= range.start {
            return;
        }
        let first = range.start.index() / CHUNK_WORDS;
        let last = (range.end.index() - 1) / CHUNK_WORDS;
        for slot in &mut self.owners[first..=last] {
            slot.get_or_insert(owner);
        }
    }
}

/// A side bitmap holding one metadata bit per heap word.
///
/// One bitmap word covers 64 consecutive heap words, so adjacent
/// reservations can share edge bitmap words;
/// [`bulk_clear`](SideBitmap::bulk_clear) mask-edits those partial edge
/// words and only `memset`s the fully covered interior.
#[derive(Debug)]
pub struct SideBitmap {
    words: Vec<AtomicU64>,
}

impl Clone for SideBitmap {
    fn clone(&self) -> SideBitmap {
        SideBitmap {
            words: self
                .words
                .iter()
                .map(|w| AtomicU64::new(w.load(Ordering::Relaxed)))
                .collect(),
        }
    }
}

impl SideBitmap {
    /// Builds an all-clear bitmap covering `capacity_words` heap words.
    pub(crate) fn new(capacity_words: usize) -> SideBitmap {
        SideBitmap {
            words: (0..capacity_words.div_ceil(64))
                .map(|_| AtomicU64::new(0))
                .collect(),
        }
    }

    #[inline]
    fn locate(addr: Addr) -> (usize, u64) {
        let i = addr.index();
        (i / 64, 1u64 << (i % 64))
    }

    /// Number of addressable bits (addresses `0..bit_capacity()` are in
    /// range for every accessor). A multiple of 64, so it may exceed the
    /// heap's word capacity by up to 63 slack bits.
    #[inline]
    pub fn bit_capacity(&self) -> usize {
        self.words.len() * 64
    }

    /// Reads the bit for `addr`.
    #[inline]
    pub fn get(&self, addr: Addr) -> bool {
        let (w, m) = Self::locate(addr);
        self.words[w].load(Ordering::Relaxed) & m != 0
    }

    /// Sets the bit for `addr`.
    #[inline]
    pub fn set(&mut self, addr: Addr) {
        let (w, m) = Self::locate(addr);
        *self.words[w].get_mut() |= m;
    }

    /// Clears the bit for `addr`.
    #[inline]
    pub fn clear(&mut self, addr: Addr) {
        let (w, m) = Self::locate(addr);
        *self.words[w].get_mut() &= !m;
    }

    /// Sets the bit for `addr` and reports whether it was already set.
    ///
    /// This is the branch-free barrier filter: one load, an OR, a
    /// store and a bit test — no conditional anywhere.
    #[inline]
    pub fn set_returning_old(&mut self, addr: Addr) -> bool {
        let (w, m) = Self::locate(addr);
        let word = self.words[w].get_mut();
        let old = *word;
        *word = old | m;
        old & m != 0
    }

    /// Clears every bit for addresses in `range` and returns the number
    /// of heap words covered.
    ///
    /// Fully covered bitmap words are zeroed wholesale (the
    /// `memset`-style sweep); the partial first and last words are
    /// mask-edited so bits belonging to neighbouring reservations
    /// survive.
    pub fn bulk_clear(&mut self, range: SpaceRange) -> u64 {
        if range.end <= range.start {
            return 0;
        }
        let (s, e) = (range.start.index(), range.end.index());
        let (sw, ew) = (s / 64, (e - 1) / 64);
        let head = !0u64 << (s % 64);
        let tail = !0u64 >> (63 - (e - 1) % 64);
        if sw == ew {
            *self.words[sw].get_mut() &= !(head & tail);
        } else {
            *self.words[sw].get_mut() &= !head;
            for word in &mut self.words[sw + 1..ew] {
                *word.get_mut() = 0;
            }
            *self.words[ew].get_mut() &= !tail;
        }
        (e - s) as u64
    }

    /// Drains the set bits in `[lo, hi]` into `out` in ascending
    /// address order, clearing them as it goes.
    ///
    /// Scratch-only: the full bitmap words covering the span are zeroed
    /// wholesale, so the caller must own every bit in the edge words —
    /// which the SSB filter does, because the scratch bitmap is empty
    /// outside the span it just populated.
    pub fn drain_sorted(&mut self, lo: Addr, hi: Addr, out: &mut Vec<Addr>) {
        debug_assert!(lo <= hi);
        for w in lo.index() / 64..=hi.index() / 64 {
            let mut bits = std::mem::take(self.words[w].get_mut());
            while bits != 0 {
                let bit = bits.trailing_zeros() as usize;
                out.push(Addr::new((w * 64 + bit) as u32));
                bits &= bits - 1;
            }
        }
    }

    /// An atomic borrow of the backing words for shared views.
    #[inline]
    pub(crate) fn atoms(&self) -> &[AtomicU64] {
        &self.words
    }
}

/// The per-word allocation-site table (16 bits per heap word).
///
/// The entry at an object's header address carries its [`SiteId`]; the
/// tag is written at allocation, copied alongside the object when it is
/// forwarded, and never cleared — so death profiling can still read the
/// site of a from-space corpse after the collection that killed it.
#[derive(Debug)]
pub struct SiteTable {
    tags: Vec<AtomicU16>,
}

impl Clone for SiteTable {
    fn clone(&self) -> SiteTable {
        SiteTable {
            tags: self
                .tags
                .iter()
                .map(|t| AtomicU16::new(t.load(Ordering::Relaxed)))
                .collect(),
        }
    }
}

impl SiteTable {
    pub(crate) fn new(capacity_words: usize) -> SiteTable {
        SiteTable {
            tags: (0..capacity_words).map(|_| AtomicU16::new(0)).collect(),
        }
    }

    /// The site tag for the object whose header is at `addr`.
    #[inline]
    pub fn get(&self, addr: Addr) -> SiteId {
        SiteId::new(self.tags[addr.index()].load(Ordering::Relaxed))
    }

    /// Writes the site tag for the object whose header is at `addr`.
    #[inline]
    pub fn set(&mut self, addr: Addr, site: SiteId) {
        *self.tags[addr.index()].get_mut() = site.get();
    }

    #[inline]
    pub(crate) fn atoms(&self) -> &[AtomicU16] {
        &self.tags
    }
}

/// The full side-metadata layer owned by a
/// [`Memory`](crate::Memory).
#[derive(Debug, Clone)]
pub(crate) struct SideMetadata {
    /// Write-barrier dedup bits, bulk-cleared when a space is vacated.
    pub(crate) dirty: SideBitmap,
    /// Large-object mark bits, bulk-cleared when marking begins.
    pub(crate) mark: SideBitmap,
    /// SSB dense-filter scratch, cleared by the filter after each use.
    pub(crate) scratch: SideBitmap,
    /// Allocation-site tags, written at allocation and never cleared.
    pub(crate) sites: SiteTable,
    /// Running total of heap words covered by dirty/mark bulk clears.
    pub(crate) cleared_words: u64,
}

impl SideMetadata {
    pub(crate) fn new(capacity_words: usize) -> SideMetadata {
        SideMetadata {
            dirty: SideBitmap::new(capacity_words),
            mark: SideBitmap::new(capacity_words),
            scratch: SideBitmap::new(capacity_words),
            sites: SiteTable::new(capacity_words),
            cleared_words: 0,
        }
    }

    pub(crate) fn view(&self) -> SideMetaView<'_> {
        SideMetaView {
            marks: self.mark.atoms(),
            sites: self.sites.atoms(),
        }
    }
}

/// A shared, atomic view of the side metadata for parallel collection
/// workers.
///
/// Copyable and `Sync`, like
/// [`SharedMemView`](crate::SharedMemView): every worker holds the same
/// view. Mark bits are claimed with an acquire-release `fetch_or`; site
/// tags use relaxed loads and stores, which is sound because a copied
/// object's site tag is written by the claim winner *before* the
/// release-publish of its forwarding header, and only read through
/// addresses obtained after that publish (or after the collection).
#[derive(Clone, Copy, Debug)]
pub struct SideMetaView<'m> {
    marks: &'m [AtomicU64],
    sites: &'m [AtomicU16],
}

impl SideMetaView<'_> {
    /// Atomically sets the mark bit for `addr`, returning `true` if
    /// this call claimed it (the bit was previously clear).
    #[inline]
    pub fn mark_test_and_set(&self, addr: Addr) -> bool {
        let (w, m) = SideBitmap::locate(addr);
        self.marks[w].fetch_or(m, Ordering::AcqRel) & m == 0
    }

    /// Reads the mark bit for `addr`.
    #[inline]
    pub fn is_marked(&self, addr: Addr) -> bool {
        let (w, m) = SideBitmap::locate(addr);
        self.marks[w].load(Ordering::Acquire) & m != 0
    }

    /// The site tag for the object whose header is at `addr`.
    #[inline]
    pub fn site_of(&self, addr: Addr) -> SiteId {
        SiteId::new(self.sites[addr.index()].load(Ordering::Relaxed))
    }

    /// Copies the site tag from `from` to `to` (the side-metadata half
    /// of forwarding an object).
    #[inline]
    pub fn copy_site(&self, from: Addr, to: Addr) {
        let tag = self.sites[from.index()].load(Ordering::Relaxed);
        self.sites[to.index()].store(tag, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn range(start: u32, end: u32) -> SpaceRange {
        SpaceRange {
            start: Addr::new(start),
            end: Addr::new(end),
        }
    }

    #[test]
    fn chunk_map_tags_overlapping_chunks_first_wins() {
        let mut map = ChunkMap::new(3 * CHUNK_WORDS + 10);
        assert_eq!(map.len(), 4, "partial last chunk still counts");
        assert_eq!(map.owned_chunks(), 0);
        map.assign(range(1, CHUNK_WORDS as u32 / 2), "nursery");
        map.assign(
            range(CHUNK_WORDS as u32 / 2, 3 * CHUNK_WORDS as u32),
            "tenured",
        );
        assert_eq!(map.owner_of(Addr::new(1)), Some("nursery"));
        assert_eq!(
            map.owner_of(Addr::new(CHUNK_WORDS as u32 - 1)),
            Some("nursery"),
            "boundary chunk keeps its first owner"
        );
        assert_eq!(map.owner_of(Addr::new(CHUNK_WORDS as u32)), Some("tenured"));
        assert_eq!(map.owned_chunks(), 3);
        assert_eq!(map.owned_chunks_by("nursery"), 1);
        assert_eq!(map.owned_chunks_by("tenured"), 2);
        assert_eq!(map.owned_chunks_by("los"), 0);
        assert_eq!(map.owner_of(Addr::new(3 * CHUNK_WORDS as u32 + 5)), None);
    }

    #[test]
    fn bitmap_round_trip_across_chunk_boundary() {
        let mut bm = SideBitmap::new(2 * CHUNK_WORDS);
        let edge = CHUNK_WORDS as u32;
        for a in [edge - 1, edge, edge + 1] {
            let a = Addr::new(a);
            assert!(!bm.get(a));
            bm.set(a);
            assert!(bm.get(a));
        }
        bm.clear(Addr::new(edge));
        assert!(!bm.get(Addr::new(edge)));
        assert!(bm.get(Addr::new(edge - 1)) && bm.get(Addr::new(edge + 1)));
    }

    #[test]
    fn set_returning_old_reports_prior_state() {
        let mut bm = SideBitmap::new(256);
        assert!(!bm.set_returning_old(Addr::new(77)));
        assert!(bm.set_returning_old(Addr::new(77)));
        assert!(bm.get(Addr::new(77)));
    }

    #[test]
    fn bulk_clear_mask_edits_shared_edge_words() {
        let mut bm = SideBitmap::new(512);
        // Bits on both sides of a range whose edges split bitmap words.
        for i in 60..200u32 {
            bm.set(Addr::new(i));
        }
        let cleared = bm.bulk_clear(range(70, 190));
        assert_eq!(cleared, 120);
        for i in 60..70u32 {
            assert!(bm.get(Addr::new(i)), "bit {i} below the range survives");
        }
        for i in 70..190u32 {
            assert!(!bm.get(Addr::new(i)), "bit {i} inside the range cleared");
        }
        for i in 190..200u32 {
            assert!(bm.get(Addr::new(i)), "bit {i} above the range survives");
        }
    }

    #[test]
    fn bulk_clear_within_one_bitmap_word() {
        let mut bm = SideBitmap::new(128);
        for i in 64..80u32 {
            bm.set(Addr::new(i));
        }
        assert_eq!(bm.bulk_clear(range(68, 72)), 4);
        assert!(bm.get(Addr::new(67)) && bm.get(Addr::new(72)));
        assert!(!bm.get(Addr::new(68)) && !bm.get(Addr::new(71)));
        assert_eq!(bm.bulk_clear(range(5, 5)), 0, "empty range is a no-op");
    }

    #[test]
    fn drain_sorted_emits_ascending_and_clears() {
        let mut bm = SideBitmap::new(1024);
        for a in [900u32, 3, 64, 65, 700] {
            bm.set(Addr::new(a));
        }
        let mut out = Vec::new();
        bm.drain_sorted(Addr::new(3), Addr::new(900), &mut out);
        let got: Vec<u32> = out.iter().map(|a| a.raw()).collect();
        assert_eq!(got, vec![3, 64, 65, 700, 900]);
        assert!(!bm.get(Addr::new(64)), "drain clears the bits");
    }

    #[test]
    fn site_table_round_trip() {
        let mut t = SiteTable::new(64);
        assert_eq!(t.get(Addr::new(9)), SiteId::UNKNOWN);
        t.set(Addr::new(9), SiteId::new(777));
        assert_eq!(t.get(Addr::new(9)), SiteId::new(777));
    }

    #[test]
    fn atomic_view_claims_marks_and_copies_sites() {
        let mut side = SideMetadata::new(256);
        side.sites.set(Addr::new(10), SiteId::new(42));
        let view = side.view();
        assert!(view.mark_test_and_set(Addr::new(10)), "first claim wins");
        assert!(!view.mark_test_and_set(Addr::new(10)), "second claim loses");
        assert!(view.is_marked(Addr::new(10)));
        view.copy_site(Addr::new(10), Addr::new(20));
        assert_eq!(view.site_of(Addr::new(20)), SiteId::new(42));
        let _ = view;
        assert!(side.mark.get(Addr::new(10)), "claim lands in the bitmap");
    }
}
