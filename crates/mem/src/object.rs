//! Allocation and inspection of heap objects.
//!
//! Objects are laid out as a single [`Header`] word followed by the
//! payload. Free functions cover the mutating paths (allocation, field
//! writes, header overwrites during collection); [`Obj`] is a cheap
//! read-only view used by collectors, the profiler and the verifier.

use crate::{Addr, Header, MemError, Memory, ObjectKind, SiteId, Space};

/// Allocates a record with the given field words and pointer `mask`.
///
/// Bit *i* of `mask` set means `fields[i]` is a pointer. This mirrors the
/// tag word TIL attaches to records so that the collector can trace them
/// without per-value tags.
///
/// # Errors
///
/// Returns [`MemError::SpaceFull`] if the space cannot fit the object
/// (trigger a collection and retry), or [`MemError::ObjectTooLarge`] if the
/// record exceeds [`MAX_RECORD_FIELDS`](crate::MAX_RECORD_FIELDS).
pub fn alloc_record(
    mem: &mut Memory,
    space: &mut Space,
    site: SiteId,
    fields: &[u64],
    mask: u32,
) -> Result<Addr, MemError> {
    let header = Header::record(fields.len(), mask)?;
    let addr = space.alloc(header.size_words())?;
    let words = mem.words_at_mut(addr, header.size_words());
    words[0] = header.raw();
    words[1..].copy_from_slice(fields);
    mem.set_site(addr, site);
    Ok(addr)
}

/// Allocates a pointer array of `len` elements, all initialized to `init`.
///
/// # Errors
///
/// Returns [`MemError::SpaceFull`] if the space cannot fit the object, or
/// [`MemError::ObjectTooLarge`] for lengths beyond the header encoding.
pub fn alloc_ptr_array(
    mem: &mut Memory,
    space: &mut Space,
    site: SiteId,
    len: usize,
    init: Addr,
) -> Result<Addr, MemError> {
    let header = Header::ptr_array(len)?;
    let addr = space.alloc(header.size_words())?;
    let words = mem.words_at_mut(addr, header.size_words());
    words[0] = header.raw();
    words[1..].fill(u64::from(init.raw()));
    mem.set_site(addr, site);
    Ok(addr)
}

/// Allocates a zero-filled raw (unscanned) array of `len_bytes` bytes.
///
/// Raw arrays hold unboxed floats, character data and other non-pointer
/// payloads; the collector copies but never traces them.
///
/// # Errors
///
/// Returns [`MemError::SpaceFull`] if the space cannot fit the object, or
/// [`MemError::ObjectTooLarge`] for lengths beyond the header encoding.
pub fn alloc_raw_array(
    mem: &mut Memory,
    space: &mut Space,
    site: SiteId,
    len_bytes: usize,
) -> Result<Addr, MemError> {
    let header = Header::raw_array(len_bytes)?;
    let addr = space.alloc(header.size_words())?;
    let words = mem.words_at_mut(addr, header.size_words());
    words[0] = header.raw();
    words[1..].fill(0);
    mem.set_site(addr, site);
    Ok(addr)
}

/// Reads the header of the object at `addr`.
#[inline]
pub fn header(mem: &Memory, addr: Addr) -> Header {
    Header::from_raw(mem.word(addr))
}

/// Overwrites the header of the object at `addr` (installing a forwarding
/// pointer, bumping the age, ...).
#[inline]
pub fn set_header(mem: &mut Memory, addr: Addr, h: Header) {
    mem.set_word(addr, h.raw());
}

/// Address of field `i` of the object at `addr`.
#[inline]
pub fn field_addr(addr: Addr, i: usize) -> Addr {
    addr + (1 + i)
}

/// Reads field `i` (a raw word) of the object at `addr`.
#[inline]
pub fn field(mem: &Memory, addr: Addr, i: usize) -> u64 {
    mem.word(field_addr(addr, i))
}

/// Writes field `i` (a raw word) of the object at `addr`.
///
/// This is the *raw* store; intergenerational write-barrier bookkeeping
/// lives in the runtime crate, which calls down to this.
#[inline]
pub fn set_field(mem: &mut Memory, addr: Addr, i: usize, value: u64) {
    mem.set_word(field_addr(addr, i), value);
}

/// Reads field `i` of the object at `addr` as a pointer.
#[inline]
pub fn ptr_field(mem: &Memory, addr: Addr, i: usize) -> Addr {
    Addr::new(field(mem, addr, i) as u32)
}

/// Reads byte `i` of the raw array at `addr`.
///
/// # Panics
///
/// Panics in debug builds if the object is not a raw array or `i` is out of
/// range.
#[inline]
pub fn byte(mem: &Memory, addr: Addr, i: usize) -> u8 {
    debug_assert_eq!(header(mem, addr).kind(), ObjectKind::RawArray);
    debug_assert!(i < header(mem, addr).len(), "byte index {i} out of range");
    let w = field(mem, addr, i / crate::WORD_BYTES);
    (w >> ((i % crate::WORD_BYTES) * 8)) as u8
}

/// Writes byte `i` of the raw array at `addr`.
///
/// # Panics
///
/// Panics in debug builds if the object is not a raw array or `i` is out of
/// range.
#[inline]
pub fn set_byte(mem: &mut Memory, addr: Addr, i: usize, value: u8) {
    debug_assert_eq!(header(mem, addr).kind(), ObjectKind::RawArray);
    debug_assert!(i < header(mem, addr).len(), "byte index {i} out of range");
    let word_index = i / crate::WORD_BYTES;
    let shift = (i % crate::WORD_BYTES) * 8;
    let old = field(mem, addr, word_index);
    let new = (old & !(0xffu64 << shift)) | (u64::from(value) << shift);
    set_field(mem, addr, word_index, new);
}

/// Reads element `i` of a raw array as an unboxed double.
#[inline]
pub fn f64_elem(mem: &Memory, addr: Addr, i: usize) -> f64 {
    f64::from_bits(field(mem, addr, i))
}

/// Writes element `i` of a raw array as an unboxed double.
#[inline]
pub fn set_f64_elem(mem: &mut Memory, addr: Addr, i: usize, value: f64) {
    set_field(mem, addr, i, value.to_bits());
}

/// Creates a read-only view of the object at `addr`.
#[inline]
pub fn view(mem: &Memory, addr: Addr) -> Obj<'_> {
    Obj {
        mem,
        addr,
        header: header(mem, addr),
    }
}

/// A read-only view of a heap object.
///
/// # Example
///
/// ```
/// use tilgc_mem::{Memory, Space, SiteId, object};
///
/// let mut mem = Memory::with_capacity_words(64);
/// let mut s = Space::new(mem.reserve(32)?);
/// let inner = object::alloc_record(&mut mem, &mut s, SiteId::new(1), &[5], 0)?;
/// let outer = object::alloc_record(
///     &mut mem, &mut s, SiteId::new(2), &[inner.raw().into(), 9], 0b01)?;
/// let obj = object::view(&mem, outer);
/// assert_eq!(obj.pointer_fields().collect::<Vec<_>>(), vec![(0, inner)]);
/// # Ok::<(), tilgc_mem::MemError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Obj<'m> {
    mem: &'m Memory,
    addr: Addr,
    header: Header,
}

impl<'m> Obj<'m> {
    /// The object's address.
    #[inline]
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// The object's header.
    #[inline]
    pub fn header(&self) -> Header {
        self.header
    }

    /// The object kind.
    ///
    /// # Panics
    ///
    /// Panics if the header is a forwarding header.
    #[inline]
    pub fn kind(&self) -> ObjectKind {
        self.header.kind()
    }

    /// Payload length (see [`Header::len`] for the per-kind meaning).
    #[inline]
    pub fn len(&self) -> usize {
        self.header.len()
    }

    /// Whether the payload is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.header.is_empty()
    }

    /// The allocation site stamped on the object (read from the side
    /// site table, not the header).
    #[inline]
    pub fn site(&self) -> SiteId {
        self.mem.site_of(self.addr)
    }

    /// Raw word of field `i`.
    #[inline]
    pub fn field(&self, i: usize) -> u64 {
        field(self.mem, self.addr, i)
    }

    /// Field `i` interpreted as a pointer.
    #[inline]
    pub fn ptr(&self, i: usize) -> Addr {
        ptr_field(self.mem, self.addr, i)
    }

    /// Whether field `i` is a pointer according to the header.
    #[inline]
    pub fn field_is_pointer(&self, i: usize) -> bool {
        self.header.field_is_pointer(i)
    }

    /// Iterates over the `(index, target)` pairs of all pointer fields,
    /// including null ones.
    pub fn pointer_fields(&self) -> impl Iterator<Item = (usize, Addr)> + 'm {
        let mem = self.mem;
        let addr = self.addr;
        let header = self.header;
        let len = match header.kind() {
            ObjectKind::Record | ObjectKind::PtrArray => header.len(),
            ObjectKind::RawArray => 0,
        };
        (0..len)
            .filter(move |&i| header.field_is_pointer(i))
            .map(move |i| (i, ptr_field(mem, addr, i)))
    }
}

/// One object encountered by [`walk`].
#[derive(Debug, Clone, Copy)]
pub struct WalkEntry {
    /// Address of the object (its header word).
    pub addr: Addr,
    /// The object's true header. For forwarded objects this is fetched
    /// from the to-space copy, since the forwarding pointer overwrote the
    /// original.
    pub header: Header,
    /// Where the object was copied to, if it was forwarded.
    pub forwarded: Option<Addr>,
}

/// Walks the objects laid out contiguously in `[from, to)`.
///
/// Works on live spaces and on evacuated from-spaces: when a header has
/// been replaced by a forwarding pointer, the walker recovers the size from
/// the to-space copy. This is exactly what the paper's profiler does when
/// it "scans the allocation area after each collection to locate dead
/// objects" (§6).
pub fn walk(mem: &Memory, from: Addr, to: Addr) -> Walk<'_> {
    Walk {
        mem,
        cursor: from,
        end: to,
    }
}

/// Iterator produced by [`walk`].
#[derive(Debug)]
pub struct Walk<'m> {
    mem: &'m Memory,
    cursor: Addr,
    end: Addr,
}

impl Iterator for Walk<'_> {
    type Item = WalkEntry;

    fn next(&mut self) -> Option<WalkEntry> {
        if self.cursor >= self.end {
            return None;
        }
        let addr = self.cursor;
        let raw = header(self.mem, addr);
        let (true_header, forwarded) = match raw.forward_addr() {
            Some(to) => (header(self.mem, to), Some(to)),
            None => (raw, None),
        };
        self.cursor = addr + true_header.size_words();
        Some(WalkEntry {
            addr,
            header: true_header,
            forwarded,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(words: usize) -> (Memory, Space) {
        let mut mem = Memory::with_capacity_words(words + 1);
        let space = Space::new(mem.reserve(words).unwrap());
        (mem, space)
    }

    #[test]
    fn record_fields_round_trip() {
        let (mut mem, mut s) = setup(64);
        let a = alloc_record(&mut mem, &mut s, SiteId::new(1), &[1, 2, 3], 0b010).unwrap();
        assert_eq!(field(&mem, a, 0), 1);
        set_field(&mut mem, a, 0, 99);
        assert_eq!(field(&mem, a, 0), 99);
        let o = view(&mem, a);
        assert_eq!(o.kind(), ObjectKind::Record);
        assert!(o.field_is_pointer(1));
        assert!(!o.field_is_pointer(0));
    }

    #[test]
    fn ptr_array_init() {
        let (mut mem, mut s) = setup(64);
        let target = alloc_record(&mut mem, &mut s, SiteId::new(1), &[], 0).unwrap();
        let arr = alloc_ptr_array(&mut mem, &mut s, SiteId::new(2), 5, target).unwrap();
        let o = view(&mem, arr);
        assert_eq!(o.len(), 5);
        for i in 0..5 {
            assert_eq!(o.ptr(i), target);
        }
        assert_eq!(o.pointer_fields().count(), 5);
    }

    #[test]
    fn raw_array_bytes() {
        let (mut mem, mut s) = setup(64);
        let a = alloc_raw_array(&mut mem, &mut s, SiteId::new(3), 19).unwrap();
        set_byte(&mut mem, a, 0, 0xab);
        set_byte(&mut mem, a, 18, 0xcd);
        assert_eq!(byte(&mem, a, 0), 0xab);
        assert_eq!(byte(&mem, a, 18), 0xcd);
        assert_eq!(byte(&mem, a, 1), 0);
        assert_eq!(view(&mem, a).pointer_fields().count(), 0);
    }

    #[test]
    fn raw_array_doubles() {
        let (mut mem, mut s) = setup(64);
        let a = alloc_raw_array(&mut mem, &mut s, SiteId::new(3), 4 * 8).unwrap();
        set_f64_elem(&mut mem, a, 2, 2.75);
        assert_eq!(f64_elem(&mem, a, 2), 2.75);
        assert_eq!(f64_elem(&mem, a, 0), 0.0);
    }

    #[test]
    fn alloc_fails_when_space_full() {
        let (mut mem, mut s) = setup(4);
        assert!(alloc_record(&mut mem, &mut s, SiteId::UNKNOWN, &[0, 0, 0], 0).is_ok());
        assert!(matches!(
            alloc_record(&mut mem, &mut s, SiteId::UNKNOWN, &[0], 0),
            Err(MemError::SpaceFull { .. })
        ));
    }

    #[test]
    fn walk_visits_every_object_in_order() {
        let (mut mem, mut s) = setup(128);
        let start = s.frontier();
        let a = alloc_record(&mut mem, &mut s, SiteId::new(1), &[0, 0], 0).unwrap();
        let b = alloc_raw_array(&mut mem, &mut s, SiteId::new(2), 9).unwrap();
        let c = alloc_ptr_array(&mut mem, &mut s, SiteId::new(3), 1, Addr::NULL).unwrap();
        let seen: Vec<_> = walk(&mem, start, s.frontier()).map(|e| e.addr).collect();
        assert_eq!(seen, vec![a, b, c]);
    }

    #[test]
    fn walk_recovers_size_of_forwarded_objects() {
        let mut mem = Memory::with_capacity_words(512);
        let mut s = Space::new(mem.reserve(256).unwrap());
        let start = s.frontier();
        let a = alloc_record(&mut mem, &mut s, SiteId::new(1), &[7, 8, 9], 0).unwrap();
        let b = alloc_record(&mut mem, &mut s, SiteId::new(2), &[1], 0).unwrap();
        let end = s.frontier();
        // Simulate a's evacuation to a second space.
        let mut to = Space::new(mem.reserve(32).unwrap());
        let h = header(&mem, a);
        let copy = to.alloc(h.size_words()).unwrap();
        mem.copy_words(a, copy, h.size_words());
        set_header(&mut mem, a, Header::forward(copy));

        let entries: Vec<_> = walk(&mem, start, end).collect();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].forwarded, Some(copy));
        assert_eq!(entries[0].header.len(), 3);
        // The site tag at the original address survives forwarding.
        assert_eq!(mem.site_of(entries[0].addr), SiteId::new(1));
        assert_eq!(entries[1].addr, b);
        assert_eq!(entries[1].forwarded, None);
    }
}
