use std::error::Error;
use std::fmt;

use crate::Addr;

/// Errors produced by the memory substrate.
///
/// Most accessor paths in this crate treat malformed addresses as collector
/// bugs and panic; `MemError` is reserved for conditions a caller can
/// legitimately react to, such as running out of reserved address space or
/// a space being too full to satisfy an allocation (the signal that a
/// garbage collection is required).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum MemError {
    /// The address space has no room left for another reservation.
    AddressSpaceExhausted {
        /// Words requested by the reservation.
        requested: usize,
        /// Words still unreserved.
        available: usize,
    },
    /// A bump allocation did not fit in the remaining part of its space.
    SpaceFull {
        /// Words requested by the allocation.
        requested: usize,
        /// Words still free in the space.
        available: usize,
    },
    /// An object was too large for the object-header encoding.
    ObjectTooLarge {
        /// Size of the rejected object, in words.
        words: usize,
    },
    /// An access touched memory outside the simulated address space.
    OutOfBounds {
        /// First address of the faulting access.
        addr: Addr,
        /// Length of the faulting access, in words.
        words: usize,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            MemError::AddressSpaceExhausted {
                requested,
                available,
            } => write!(
                f,
                "address space exhausted: requested {requested} words, {available} available"
            ),
            MemError::SpaceFull {
                requested,
                available,
            } => {
                write!(
                    f,
                    "space full: requested {requested} words, {available} available"
                )
            }
            MemError::ObjectTooLarge { words } => {
                write!(
                    f,
                    "object of {words} words exceeds the header encoding limits"
                )
            }
            MemError::OutOfBounds { addr, words } => {
                write!(f, "access of {words} words at {addr} is out of bounds")
            }
        }
    }
}

impl Error for MemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            MemError::AddressSpaceExhausted {
                requested: 8,
                available: 4,
            },
            MemError::SpaceFull {
                requested: 8,
                available: 4,
            },
            MemError::ObjectTooLarge { words: 1 << 40 },
            MemError::OutOfBounds {
                addr: Addr::new(9),
                words: 2,
            },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MemError>();
    }
}
