use std::error::Error;
use std::fmt;

use crate::Addr;

/// Errors produced by the memory substrate.
///
/// Most accessor paths in this crate treat malformed addresses as collector
/// bugs and panic; `MemError` is reserved for conditions a caller can
/// legitimately react to, such as running out of reserved address space or
/// a space being too full to satisfy an allocation (the signal that a
/// garbage collection is required).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum MemError {
    /// The address space has no room left for another reservation.
    AddressSpaceExhausted {
        /// Words requested by the reservation.
        requested: usize,
        /// Words still unreserved.
        available: usize,
    },
    /// A bump allocation did not fit in the remaining part of its space.
    SpaceFull {
        /// Words requested by the allocation.
        requested: usize,
        /// Words still free in the space.
        available: usize,
    },
    /// An object was too large for the object-header encoding.
    ObjectTooLarge {
        /// Size of the rejected object, in words.
        words: usize,
    },
    /// An access touched memory outside the simulated address space.
    OutOfBounds {
        /// First address of the faulting access.
        addr: Addr,
        /// Length of the faulting access, in words.
        words: usize,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            MemError::AddressSpaceExhausted {
                requested,
                available,
            } => write!(
                f,
                "address space exhausted: requested {requested} words, {available} available"
            ),
            MemError::SpaceFull {
                requested,
                available,
            } => {
                write!(
                    f,
                    "space full: requested {requested} words, {available} available"
                )
            }
            MemError::ObjectTooLarge { words } => {
                write!(
                    f,
                    "object of {words} words exceeds the header encoding limits"
                )
            }
            MemError::OutOfBounds { addr, words } => {
                write!(f, "access of {words} words at {addr} is out of bounds")
            }
        }
    }
}

impl Error for MemError {}

/// The broad shape class of a failed allocation request.
///
/// Carried inside [`GcError`] so diagnostics can say *what kind* of object
/// the guest asked for without dragging the full shape (mask, site table)
/// across the error path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocKind {
    /// A fixed-shape record with a pointer mask.
    Record,
    /// An array of guest pointers.
    PtrArray,
    /// An array of raw (pointer-free) bytes.
    RawArray,
}

impl fmt::Display for AllocKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AllocKind::Record => "record",
            AllocKind::PtrArray => "pointer array",
            AllocKind::RawArray => "raw array",
        })
    }
}

/// A point-in-time picture of the heap budget when an allocation failed.
///
/// All figures are in words. `free_words` is the room left in the space
/// that rejected the request *after* the collector ran its full escalation
/// ladder, so `requested > free` explains the failure directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BudgetSnapshot {
    /// The fixed global heap budget the collector operates within.
    pub budget_words: usize,
    /// Words still allocatable in the space that rejected the request.
    pub free_words: usize,
    /// Words known live (retained by the last collection).
    pub live_words: usize,
}

/// A typed out-of-memory verdict from a collector plan.
///
/// Returned by `Plan::alloc` / `Collector::alloc` after the heap-pressure
/// governor has exhausted its escalation ladder (retry after minor, retry
/// after major, budget rebalance, pretenuring demotion). It names the
/// space that could not be grown any further; the runtime converts it into
/// a catchable `HeapOverflow` raise through the guest handler chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum GcError {
    /// The nursery cannot hold the request even when empty.
    NurseryExhausted {
        /// Shape class of the failed request.
        kind: AllocKind,
        /// Words requested by the allocation.
        requested_words: usize,
        /// Budget picture at the point of failure.
        budget: BudgetSnapshot,
    },
    /// The tenured arena (or the whole heap, for single-space plans)
    /// cannot absorb the request within the global budget.
    TenuredExhausted {
        /// Shape class of the failed request.
        kind: AllocKind,
        /// Words requested by the allocation.
        requested_words: usize,
        /// Budget picture at the point of failure.
        budget: BudgetSnapshot,
    },
    /// The large-object space has no run of free words big enough.
    LargeObjectExhausted {
        /// Shape class of the failed request.
        kind: AllocKind,
        /// Words requested by the allocation.
        requested_words: usize,
        /// Budget picture at the point of failure.
        budget: BudgetSnapshot,
    },
}

impl GcError {
    /// The shape class of the failed request.
    pub fn kind(&self) -> AllocKind {
        match *self {
            GcError::NurseryExhausted { kind, .. }
            | GcError::TenuredExhausted { kind, .. }
            | GcError::LargeObjectExhausted { kind, .. } => kind,
        }
    }

    /// Words the failed allocation asked for.
    pub fn requested_words(&self) -> usize {
        match *self {
            GcError::NurseryExhausted {
                requested_words, ..
            }
            | GcError::TenuredExhausted {
                requested_words, ..
            }
            | GcError::LargeObjectExhausted {
                requested_words, ..
            } => requested_words,
        }
    }

    /// The budget picture captured when the ladder gave up.
    pub fn budget(&self) -> BudgetSnapshot {
        match *self {
            GcError::NurseryExhausted { budget, .. }
            | GcError::TenuredExhausted { budget, .. }
            | GcError::LargeObjectExhausted { budget, .. } => budget,
        }
    }

    /// The wire name of the exhausted space ("nursery", "tenured", "los").
    pub fn space(&self) -> &'static str {
        match self {
            GcError::NurseryExhausted { .. } => "nursery",
            GcError::TenuredExhausted { .. } => "tenured",
            GcError::LargeObjectExhausted { .. } => "los",
        }
    }
}

impl fmt::Display for GcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} space exhausted: {} of {} words does not fit \
             ({} words free, {} live, budget {} words)",
            self.space(),
            self.kind(),
            self.requested_words(),
            self.budget().free_words,
            self.budget().live_words,
            self.budget().budget_words,
        )
    }
}

impl Error for GcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            MemError::AddressSpaceExhausted {
                requested: 8,
                available: 4,
            },
            MemError::SpaceFull {
                requested: 8,
                available: 4,
            },
            MemError::ObjectTooLarge { words: 1 << 40 },
            MemError::OutOfBounds {
                addr: Addr::new(9),
                words: 2,
            },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MemError>();
        assert_send_sync::<GcError>();
    }

    #[test]
    fn gc_error_display_is_nonempty_and_lowercase() {
        let budget = BudgetSnapshot {
            budget_words: 1024,
            free_words: 3,
            live_words: 900,
        };
        let errors = [
            GcError::NurseryExhausted {
                kind: AllocKind::Record,
                requested_words: 8,
                budget,
            },
            GcError::TenuredExhausted {
                kind: AllocKind::PtrArray,
                requested_words: 64,
                budget,
            },
            GcError::LargeObjectExhausted {
                kind: AllocKind::RawArray,
                requested_words: 512,
                budget,
            },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
            assert!(s.contains(e.space()));
        }
    }

    #[test]
    fn gc_error_accessors_round_trip() {
        let e = GcError::LargeObjectExhausted {
            kind: AllocKind::PtrArray,
            requested_words: 4096,
            budget: BudgetSnapshot {
                budget_words: 8192,
                free_words: 100,
                live_words: 8000,
            },
        };
        assert_eq!(e.kind(), AllocKind::PtrArray);
        assert_eq!(e.requested_words(), 4096);
        assert_eq!(e.budget().free_words, 100);
        assert_eq!(e.space(), "los");
    }
}
