use std::fmt;

/// Identifier of a program allocation site.
///
/// The paper's profiler classifies every heap object by the static program
/// point that allocated it ("we speculate that objects allocated from the
/// same point in the program would tend to have similar lifetimes", §6).
/// TIL's profiling mode prepends the site id to each object; we instead
/// carry 16 bits of site id in every object header, which is equivalent for
/// the profiler and costs nothing extra in the simulation.
///
/// Site 0 is [`SiteId::UNKNOWN`], used for runtime-internal allocations.
///
/// # Example
///
/// ```
/// use tilgc_mem::SiteId;
///
/// let s = SiteId::new(10897);
/// assert_eq!(s.get(), 10897);
/// assert_eq!(s.to_string(), "site#10897");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct SiteId(u16);

impl SiteId {
    /// The site used for objects whose allocation point is not tracked.
    pub const UNKNOWN: SiteId = SiteId(0);

    /// Largest representable site id (the header field is 16 bits wide).
    pub const MAX: SiteId = SiteId(u16::MAX);

    /// Creates a site id from its raw 16-bit representation.
    #[inline]
    pub const fn new(id: u16) -> Self {
        SiteId(id)
    }

    /// The raw 16-bit representation.
    #[inline]
    pub const fn get(self) -> u16 {
        self.0
    }

    /// Index form, convenient for dense per-site statistics tables.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u16> for SiteId {
    fn from(id: u16) -> Self {
        SiteId(id)
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_is_zero_and_default() {
        assert_eq!(SiteId::UNKNOWN.get(), 0);
        assert_eq!(SiteId::default(), SiteId::UNKNOWN);
    }

    #[test]
    fn round_trip() {
        let s = SiteId::new(42);
        assert_eq!(SiteId::from(42u16), s);
        assert_eq!(s.index(), 42);
    }
}
