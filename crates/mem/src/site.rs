use std::fmt;

/// Identifier of a program allocation site.
///
/// The paper's profiler classifies every heap object by the static program
/// point that allocated it ("we speculate that objects allocated from the
/// same point in the program would tend to have similar lifetimes", §6).
/// TIL's profiling mode prepends the site id to each object; we instead
/// carry 16 bits of site id in every object header, which is equivalent for
/// the profiler and costs nothing extra in the simulation.
///
/// Site 0 is [`SiteId::UNKNOWN`], used for runtime-internal allocations.
///
/// # Example
///
/// ```
/// use tilgc_mem::SiteId;
///
/// let s = SiteId::new(10897);
/// assert_eq!(s.get(), 10897);
/// assert_eq!(s.to_string(), "site#10897");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct SiteId(u16);

impl SiteId {
    /// The site used for objects whose allocation point is not tracked.
    pub const UNKNOWN: SiteId = SiteId(0);

    /// Largest representable site id (the header field is 16 bits wide).
    pub const MAX: SiteId = SiteId(u16::MAX);

    /// Creates a site id from its raw 16-bit representation.
    #[inline]
    pub const fn new(id: u16) -> Self {
        SiteId(id)
    }

    /// The raw 16-bit representation.
    #[inline]
    pub const fn get(self) -> u16 {
        self.0
    }

    /// Index form, convenient for dense per-site statistics tables.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u16> for SiteId {
    fn from(id: u16) -> Self {
        SiteId(id)
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site#{}", self.0)
    }
}

/// Number of `u64` words covering the full 16-bit site id space.
const ROUTE_WORDS: usize = (u16::MAX as usize + 1) / 64;

/// Branch-free site→target routing bitmap for the allocation fast path.
///
/// One bit per possible [`SiteId`]: set means "route this site to the
/// pretenured (tenured-at-birth) target", clear means the ordinary
/// nursery path. The lookup is a constant-time word index + bit test
/// with no data-dependent branch, so the alloc fast path pays the same
/// cost whether zero or thousands of sites are pretenured — and an
/// online policy can flip sites mid-run by toggling single bits.
///
/// The table is a fixed 8 KB (`1024 × u64`), covering every id without
/// resizing; membership semantics mirror the policy's site set exactly.
///
/// # Example
///
/// ```
/// use tilgc_mem::{SiteId, SiteRouteTable};
///
/// let mut t = SiteRouteTable::new();
/// t.set(SiteId::new(7));
/// assert!(t.route(SiteId::new(7)));
/// assert!(!t.route(SiteId::new(8)));
/// t.clear(SiteId::new(7));
/// assert!(!t.route(SiteId::new(7)));
/// ```
#[derive(Clone)]
pub struct SiteRouteTable {
    bits: Box<[u64; ROUTE_WORDS]>,
}

impl SiteRouteTable {
    /// An empty table: every site routes to the default (nursery) path.
    pub fn new() -> SiteRouteTable {
        SiteRouteTable {
            bits: Box::new([0u64; ROUTE_WORDS]),
        }
    }

    /// Branch-free membership test: does `site` route to the pretenured
    /// target?
    #[inline]
    pub fn route(&self, site: SiteId) -> bool {
        let id = site.index();
        (self.bits[id >> 6] >> (id & 63)) & 1 != 0
    }

    /// Routes `site` to the pretenured target.
    #[inline]
    pub fn set(&mut self, site: SiteId) {
        let id = site.index();
        self.bits[id >> 6] |= 1u64 << (id & 63);
    }

    /// Restores `site` to the default (nursery) path.
    #[inline]
    pub fn clear(&mut self, site: SiteId) {
        let id = site.index();
        self.bits[id >> 6] &= !(1u64 << (id & 63));
    }

    /// Number of routed sites (population count over the bitmap).
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no site is routed.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }
}

impl Default for SiteRouteTable {
    fn default() -> SiteRouteTable {
        SiteRouteTable::new()
    }
}

impl fmt::Debug for SiteRouteTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SiteRouteTable({} routed)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_is_zero_and_default() {
        assert_eq!(SiteId::UNKNOWN.get(), 0);
        assert_eq!(SiteId::default(), SiteId::UNKNOWN);
    }

    #[test]
    fn round_trip() {
        let s = SiteId::new(42);
        assert_eq!(SiteId::from(42u16), s);
        assert_eq!(s.index(), 42);
    }

    #[test]
    fn route_table_covers_boundary_ids() {
        let mut t = SiteRouteTable::new();
        assert!(t.is_empty());
        for id in [0u16, 63, 64, 65, 1023, u16::MAX] {
            let s = SiteId::new(id);
            assert!(!t.route(s));
            t.set(s);
            assert!(t.route(s), "site {id} routes after set");
        }
        assert_eq!(t.len(), 6);
        // Neighbouring ids stay untouched.
        assert!(!t.route(SiteId::new(62)));
        assert!(!t.route(SiteId::new(66)));
        for id in [0u16, 63, 64, 65, 1023, u16::MAX] {
            t.clear(SiteId::new(id));
            assert!(!t.route(SiteId::new(id)));
        }
        assert!(t.is_empty());
    }

    #[test]
    fn route_table_set_is_idempotent() {
        let mut t = SiteRouteTable::new();
        t.set(SiteId::new(100));
        t.set(SiteId::new(100));
        assert_eq!(t.len(), 1);
        t.clear(SiteId::new(100));
        t.clear(SiteId::new(100));
        assert!(t.is_empty());
    }
}
