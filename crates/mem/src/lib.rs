//! Word-addressed simulated memory and object model for the `tilgc`
//! collectors.
//!
//! This crate is the lowest substrate of the reproduction of *Generational
//! Stack Collection and Profile-Driven Pretenuring* (Cheng, Harper, Lee;
//! PLDI 1998). It models the memory system of the TIL runtime:
//!
//! * a chunked, word-addressed address space ([`Memory`]) in which all
//!   heap spaces live — words are 64 bits, matching the DEC Alpha the
//!   paper measured on; bookkeeping is chunked ([`CHUNK_WORDS`]-sized
//!   chunks owned by spaces) while the backing store stays contiguous;
//! * a [`side`]-metadata layer hosting the per-word dirty bits, mark
//!   bits and allocation-site tags that used to live in object headers,
//!   with `memset`-style bulk clears and atomic views for parallel
//!   marking;
//! * *nearly tag-free* heap objects in the TIL style: [`records`] whose
//!   single header word carries a pointer mask, pointer arrays, and raw
//!   (non-pointer) byte arrays ([`ObjectKind`]), each tagged in the side
//!   site table with the [`SiteId`] of the allocation site that created
//!   it;
//! * bump-allocated [`Space`]s out of which collectors carve semispaces,
//!   nurseries, tenured areas and pretenured regions.
//!
//! Addresses are indices, not machine pointers, so the simulation is
//! safe Rust and fully deterministic — with one audited exception: the
//! [`SharedMemView`] module reinterprets the word array as atomics so
//! parallel collection workers can claim and forward objects with CAS.
//! That cast is the only `unsafe` in the workspace and is confined to a
//! single function with compile-time layout guards; the side-metadata
//! layer needs no `unsafe` at all, because it stores atomics directly.
//!
//! [`records`]: ObjectKind::Record
//!
//! # Example
//!
//! ```
//! use tilgc_mem::{Memory, Space, SiteId, object};
//!
//! let mut mem = Memory::with_capacity_words(1024);
//! let mut space = Space::new(mem.reserve(512).unwrap());
//! // Allocate a two-field record whose first field is a pointer.
//! let site = SiteId::new(7);
//! let addr = object::alloc_record(&mut mem, &mut space, site, &[0, 42], 0b01).unwrap();
//! let obj = object::view(&mem, addr);
//! assert_eq!(obj.len(), 2);
//! assert_eq!(obj.field(1), 42);
//! assert!(obj.field_is_pointer(0));
//! assert_eq!(obj.site(), site);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod error;
mod header;
mod memory;
pub mod object;
mod shared;
pub mod side;
mod site;
mod space;

pub use addr::Addr;
pub use error::{AllocKind, BudgetSnapshot, GcError, MemError};
pub use header::{Header, ObjectKind, MAX_PTR_MASK_FIELDS, MAX_RECORD_FIELDS};
pub use memory::{Memory, WordWindow, WORD_BYTES};
pub use object::Obj;
pub use shared::SharedMemView;
pub use side::{ChunkMap, SideBitmap, SideMetaView, CHUNK_BYTES, CHUNK_WORDS};
pub use site::{SiteId, SiteRouteTable};
pub use space::{Space, SpaceRange};

/// Number of bytes occupied by `words` machine words.
#[inline]
pub const fn words_to_bytes(words: usize) -> usize {
    words * WORD_BYTES
}

/// Number of whole words needed to hold `bytes` bytes (rounded up).
#[inline]
pub const fn bytes_to_words(bytes: usize) -> usize {
    bytes.div_ceil(WORD_BYTES)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_word_round_trip() {
        assert_eq!(words_to_bytes(3), 24);
        assert_eq!(bytes_to_words(0), 0);
        assert_eq!(bytes_to_words(1), 1);
        assert_eq!(bytes_to_words(8), 1);
        assert_eq!(bytes_to_words(9), 2);
        assert_eq!(bytes_to_words(words_to_bytes(17)), 17);
    }
}
