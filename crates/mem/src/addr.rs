use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A word address in the simulated address space.
///
/// Addresses index 64-bit words in a [`Memory`](crate::Memory). Word 0 is
/// reserved so that `Addr::NULL` can stand for the absent pointer, exactly
/// as a machine null pointer would.
///
/// # Example
///
/// ```
/// use tilgc_mem::Addr;
///
/// let a = Addr::new(16);
/// assert_eq!(a + 4, Addr::new(20));
/// assert_eq!((a + 4) - a, 4);
/// assert!(!a.is_null());
/// assert!(Addr::NULL.is_null());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u32);

impl Addr {
    /// The null address. No object ever lives here.
    pub const NULL: Addr = Addr(0);

    /// Creates an address from a raw word index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        Addr(index)
    }

    /// The raw word index of this address.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw word index as `u32` (the representation stored in headers).
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Returns `true` if this is [`Addr::NULL`].
    #[inline]
    pub const fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Byte offset of this address from the start of memory.
    #[inline]
    pub const fn byte_offset(self) -> usize {
        self.0 as usize * crate::WORD_BYTES
    }

    /// The address `words` words past `self`, checking for overflow.
    ///
    /// # Panics
    ///
    /// Panics if the resulting index does not fit in 32 bits.
    #[inline]
    pub fn offset(self, words: usize) -> Addr {
        let idx = u64::from(self.0) + words as u64;
        assert!(
            idx <= u64::from(u32::MAX),
            "address overflow: {self:?} + {words}"
        );
        Addr(idx as u32)
    }
}

impl Add<usize> for Addr {
    type Output = Addr;

    #[inline]
    fn add(self, rhs: usize) -> Addr {
        self.offset(rhs)
    }
}

impl AddAssign<usize> for Addr {
    #[inline]
    fn add_assign(&mut self, rhs: usize) {
        *self = *self + rhs;
    }
}

impl Sub<Addr> for Addr {
    type Output = usize;

    /// Distance in words between two addresses.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is past `self`.
    #[inline]
    fn sub(self, rhs: Addr) -> usize {
        assert!(self.0 >= rhs.0, "address underflow: {self:?} - {rhs:?}");
        (self.0 - rhs.0) as usize
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "Addr(NULL)")
        } else {
            write!(f, "Addr({:#x})", self.0)
        }
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_zero_and_default() {
        assert_eq!(Addr::NULL, Addr::new(0));
        assert_eq!(Addr::default(), Addr::NULL);
        assert!(Addr::NULL.is_null());
        assert!(!Addr::new(1).is_null());
    }

    #[test]
    fn arithmetic() {
        let a = Addr::new(100);
        assert_eq!(a + 28, Addr::new(128));
        assert_eq!(Addr::new(128) - a, 28);
        let mut b = a;
        b += 1;
        assert_eq!(b.index(), 101);
    }

    #[test]
    fn byte_offset_matches_word_size() {
        assert_eq!(Addr::new(3).byte_offset(), 24);
    }

    #[test]
    #[should_panic(expected = "address underflow")]
    fn sub_underflow_panics() {
        let _ = Addr::new(1) - Addr::new(2);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(Addr::new(1) < Addr::new(2));
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", Addr::NULL), "Addr(NULL)");
        assert_eq!(format!("{:?}", Addr::new(16)), "Addr(0x10)");
    }
}
