use crate::{Addr, MemError};

/// A contiguous, exclusively owned range of the address space.
///
/// Produced by [`Memory::reserve`](crate::Memory::reserve).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpaceRange {
    /// First word of the range.
    pub start: Addr,
    /// One past the last word of the range.
    pub end: Addr,
}

impl SpaceRange {
    /// Length of the range, in words.
    #[inline]
    pub fn words(&self) -> usize {
        self.end - self.start
    }

    /// Whether `addr` falls inside the range.
    #[inline]
    pub fn contains(&self, addr: Addr) -> bool {
        self.start <= addr && addr < self.end
    }

    /// Splits the range at `offset` words, returning `(low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `offset` exceeds the range length.
    pub fn split_at(&self, offset: usize) -> (SpaceRange, SpaceRange) {
        assert!(offset <= self.words(), "split offset {offset} beyond range");
        let mid = self.start + offset;
        (
            SpaceRange {
                start: self.start,
                end: mid,
            },
            SpaceRange {
                start: mid,
                end: self.end,
            },
        )
    }
}

/// A bump-allocated heap space.
///
/// Every area the paper's collectors manage — the two semispaces, the
/// nursery, the tenured generation, pretenured regions — is a `Space`: a
/// range of the address space with an allocation frontier and a *logical
/// limit*. Collectors model the paper's heap-resizing policies (target
/// liveness ratios of 0.10 and 0.3, §2.1) by moving the logical limit
/// within the reserved range, which is how a runtime would grow or shrink a
/// space without remapping it.
///
/// # Example
///
/// ```
/// use tilgc_mem::{Memory, Space};
///
/// let mut mem = Memory::with_capacity_words(128);
/// let mut s = Space::new(mem.reserve(64)?);
/// let a = s.alloc(10)?;
/// let b = s.alloc(10)?;
/// assert_eq!(b - a, 10);
/// assert_eq!(s.used_words(), 20);
/// assert!(s.contains(a));
/// # Ok::<(), tilgc_mem::MemError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Space {
    range: SpaceRange,
    limit: Addr,
    next: Addr,
    /// Words below the frontier that hold no live data: tails of
    /// per-worker bump chunks abandoned by a parallel collection.
    /// Subtracted from [`used_words`](Space::used_words) so live-size
    /// accounting matches a serial collection of the same heap.
    slack: usize,
}

impl Space {
    /// Creates a space spanning `range`, with the logical limit at the end
    /// of the range.
    pub fn new(range: SpaceRange) -> Space {
        Space {
            range,
            limit: range.end,
            next: range.start,
            slack: 0,
        }
    }

    /// Creates a space spanning `range` but logically limited to
    /// `limit_words` words.
    ///
    /// # Panics
    ///
    /// Panics if `limit_words` exceeds the range length.
    pub fn with_limit(range: SpaceRange, limit_words: usize) -> Space {
        let mut s = Space::new(range);
        s.set_limit_words(limit_words);
        s
    }

    /// The reserved range backing this space.
    #[inline]
    pub fn range(&self) -> SpaceRange {
        self.range
    }

    /// First word of the space.
    #[inline]
    pub fn start(&self) -> Addr {
        self.range.start
    }

    /// Current allocation frontier: the address the next allocation will
    /// return.
    #[inline]
    pub fn frontier(&self) -> Addr {
        self.next
    }

    /// Bump-allocates `words` words.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::SpaceFull`] if the allocation would pass the
    /// logical limit — for a nursery this is the signal to run a minor
    /// collection.
    #[inline]
    pub fn alloc(&mut self, words: usize) -> Result<Addr, MemError> {
        if self.free_words() < words {
            return Err(MemError::SpaceFull {
                requested: words,
                available: self.free_words(),
            });
        }
        let addr = self.next;
        self.next += words;
        Ok(addr)
    }

    /// Whether an allocation of `words` words would fit.
    #[inline]
    pub fn fits(&self, words: usize) -> bool {
        self.free_words() >= words
    }

    /// Whether `addr` lies in the *reserved range* of this space.
    ///
    /// Collectors use this for the "is this pointer into from-space?"
    /// test, so it covers the whole range, not just the allocated prefix.
    #[inline]
    pub fn contains(&self, addr: Addr) -> bool {
        self.range.contains(addr)
    }

    /// Words of live data allocated since the last
    /// [`reset`](Space::reset): the distance to the frontier minus any
    /// parallel-collection [slack](Space::note_slack).
    #[inline]
    pub fn used_words(&self) -> usize {
        (self.next - self.range.start) - self.slack
    }

    /// Words physically consumed up to the frontier, counting abandoned
    /// chunk tails. This is what the limit clamp and occupancy checks
    /// must use; resize policy uses the live [`used_words`](Space::used_words).
    #[inline]
    fn physical_used_words(&self) -> usize {
        self.next - self.range.start
    }

    /// Words still available below the logical limit.
    #[inline]
    pub fn free_words(&self) -> usize {
        self.limit - self.next
    }

    /// The logical capacity (words between start and limit).
    #[inline]
    pub fn capacity_words(&self) -> usize {
        self.limit - self.range.start
    }

    /// Largest capacity this space can be grown to.
    #[inline]
    pub fn max_capacity_words(&self) -> usize {
        self.range.words()
    }

    /// Moves the logical limit to `words` words past the start, clamped to
    /// the reserved range and never below the current frontier.
    pub fn set_limit_words(&mut self, words: usize) {
        let clamped = words
            .min(self.range.words())
            .max(self.physical_used_words());
        self.limit = self.range.start + clamped;
    }

    /// Empties the space: the frontier returns to the start. The contents
    /// become logically dead (collectors poison them in debug builds).
    pub fn reset(&mut self) {
        self.next = self.range.start;
        self.slack = 0;
    }

    /// Records `words` of dead space below the frontier — the abandoned
    /// tail of a parallel worker's bump chunk. Excluded from
    /// [`used_words`](Space::used_words) so live-size accounting stays
    /// identical to a serial collection.
    pub fn note_slack(&mut self, words: usize) {
        debug_assert!(
            self.slack + words <= self.physical_used_words(),
            "slack {} + {words} exceeds physical use {}",
            self.slack,
            self.physical_used_words()
        );
        self.slack += words;
    }

    /// Slack words recorded since the last [`reset`](Space::reset).
    #[inline]
    pub fn slack_words(&self) -> usize {
        self.slack
    }

    /// Advances the allocation frontier to `addr` — how a parallel
    /// collection syncs a shared atomic cursor back into the space after
    /// its workers join.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is behind the current frontier or past the
    /// logical limit.
    pub fn advance_frontier(&mut self, addr: Addr) {
        assert!(
            addr >= self.next && addr <= self.limit,
            "frontier {addr} outside [{}, {}]",
            self.next,
            self.limit
        );
        self.next = addr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Memory;

    fn space(words: usize) -> Space {
        let mut mem = Memory::with_capacity_words(words + 1);
        Space::new(mem.reserve(words).unwrap())
    }

    #[test]
    fn bump_allocation_is_contiguous() {
        let mut s = space(32);
        let a = s.alloc(4).unwrap();
        let b = s.alloc(8).unwrap();
        assert_eq!(b - a, 4);
        assert_eq!(s.used_words(), 12);
        assert_eq!(s.free_words(), 20);
    }

    #[test]
    fn alloc_past_limit_fails() {
        let mut s = space(8);
        assert!(s.alloc(8).is_ok());
        assert_eq!(
            s.alloc(1),
            Err(MemError::SpaceFull {
                requested: 1,
                available: 0
            })
        );
    }

    #[test]
    fn zero_sized_alloc_always_fits() {
        let mut s = space(1);
        s.alloc(1).unwrap();
        assert!(s.alloc(0).is_ok());
    }

    #[test]
    fn logical_limit_shrinks_and_grows() {
        let mut s = space(100);
        s.set_limit_words(10);
        assert_eq!(s.capacity_words(), 10);
        assert!(!s.fits(11));
        s.set_limit_words(1000); // clamped to reservation
        assert_eq!(s.capacity_words(), 100);
    }

    #[test]
    fn limit_never_truncates_live_allocations() {
        let mut s = space(100);
        s.alloc(50).unwrap();
        s.set_limit_words(10);
        assert_eq!(s.capacity_words(), 50);
        assert_eq!(s.free_words(), 0);
    }

    #[test]
    fn reset_reclaims_everything() {
        let mut s = space(16);
        s.alloc(16).unwrap();
        s.reset();
        assert_eq!(s.used_words(), 0);
        assert!(s.fits(16));
    }

    #[test]
    fn contains_covers_whole_reservation() {
        let mut s = space(16);
        let a = s.alloc(1).unwrap();
        assert!(s.contains(a));
        assert!(s.contains(a + 15)); // unallocated but reserved
        assert!(!s.contains(a + 16));
    }

    #[test]
    fn slack_is_excluded_from_used_but_not_free() {
        let mut s = space(100);
        s.alloc(40).unwrap();
        s.note_slack(10);
        assert_eq!(s.used_words(), 30, "live size excludes chunk tails");
        assert_eq!(s.slack_words(), 10);
        assert_eq!(s.free_words(), 60, "free space is physical");
        // The limit clamp must respect the physical frontier, not the
        // slack-adjusted live size.
        s.set_limit_words(35);
        assert_eq!(s.capacity_words(), 40);
        s.reset();
        assert_eq!(s.slack_words(), 0);
        assert_eq!(s.used_words(), 0);
    }

    #[test]
    fn advance_frontier_syncs_parallel_cursor() {
        let mut s = space(64);
        let a = s.alloc(4).unwrap();
        s.advance_frontier(a + 20);
        assert_eq!(s.used_words(), 20);
        assert_eq!(s.alloc(1).unwrap(), a + 20);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn advance_frontier_rejects_retreat() {
        let mut s = space(64);
        let a = s.alloc(8).unwrap();
        s.advance_frontier(a + 4);
    }

    #[test]
    fn split_range() {
        let mut mem = Memory::with_capacity_words(65);
        let r = mem.reserve(64).unwrap();
        let (lo, hi) = r.split_at(16);
        assert_eq!(lo.words(), 16);
        assert_eq!(hi.words(), 48);
        assert_eq!(lo.end, hi.start);
    }
}
