use std::fmt;

use crate::{Addr, MemError};

/// Maximum number of fields in a record (bounded by the header pointer-mask
/// width).
pub const MAX_RECORD_FIELDS: usize = 24;

/// Width of the record pointer mask, in bits. Equal to
/// [`MAX_RECORD_FIELDS`].
pub const MAX_PTR_MASK_FIELDS: usize = MAX_RECORD_FIELDS;

/// Maximum payload length an array header can encode: 2³⁰ − 1 words for
/// pointer arrays, 2³⁰ − 1 bytes for raw arrays.
const MAX_ARRAY_LEN: usize = (1 << 30) - 1;

const KIND_RECORD: u64 = 0;
const KIND_PTR_ARRAY: u64 = 1;
const KIND_RAW_ARRAY: u64 = 2;
const KIND_FORWARD: u64 = 3;

/// The runtime category of a heap object.
///
/// TIL's *nearly tag-free* representation means these three categories are
/// the only ones the collector ever sees (§2.2 of the paper): word-sized
/// integers are unboxed and indistinguishable from pointers except through
/// the header mask or the stack trace tables, and floating-point arrays are
/// unboxed raw arrays.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ObjectKind {
    /// A record of up to [`MAX_RECORD_FIELDS`] word-sized fields; the header
    /// carries a bitmask saying which fields are pointers.
    Record,
    /// An array whose every element is a (possibly null) pointer.
    PtrArray,
    /// An array of raw bytes — never scanned (holds unboxed floats, string
    /// data, bignum limbs, ...).
    RawArray,
}

impl fmt::Display for ObjectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ObjectKind::Record => "record",
            ObjectKind::PtrArray => "pointer array",
            ObjectKind::RawArray => "raw array",
        };
        f.write_str(s)
    }
}

/// The single tag word that precedes every heap object.
///
/// Bit layout (LSB first):
///
/// ```text
/// kind = record:     | kind:2 | len:5 | mask:24 | pad:1 | pad:16 | age:8 | pad:8 |
/// kind = ptr array:  | kind:2 | len(words):30   |        pad:16 | age:8 | pad:8 |
/// kind = raw array:  | kind:2 | len(bytes):30   |        pad:16 | age:8 | pad:8 |
/// kind = forward:    | kind:2 | to:32                                  | pad:30 |
/// ```
///
/// `age` counts minor collections survived (used by the tenure-threshold
/// collector variant, §7.2). The allocation-site id the profiler keys on
/// and the write barrier's dirty bit do **not** live here: they are side
/// metadata, read through [`Memory::site_of`](crate::Memory::site_of)
/// and the dirty bitmap (see [`crate::side`]). During collection the
/// header of a copied object is overwritten with a *forwarding* header
/// pointing at the new copy, exactly as in Cheney's algorithm.
///
/// # Example
///
/// ```
/// use tilgc_mem::{Header, ObjectKind, Addr};
///
/// let h = Header::record(3, 0b101).unwrap();
/// assert_eq!(h.kind(), ObjectKind::Record);
/// assert_eq!(h.len(), 3);
/// assert!(h.field_is_pointer(0) && !h.field_is_pointer(1));
/// assert_eq!(h.size_words(), 4); // header + 3 fields
///
/// let f = Header::forward(Addr::new(64));
/// assert_eq!(f.forward_addr(), Some(Addr::new(64)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Header(u64);

impl Header {
    /// Builds a record header.
    ///
    /// `mask` bit *i* set means field *i* is a pointer.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::ObjectTooLarge`] if `len > MAX_RECORD_FIELDS`.
    ///
    /// # Panics
    ///
    /// Panics if `mask` has bits set at or above `len` — that is a
    /// compiler-side bug, not a runtime condition.
    pub fn record(len: usize, mask: u32) -> Result<Header, MemError> {
        if len > MAX_RECORD_FIELDS {
            return Err(MemError::ObjectTooLarge { words: len });
        }
        assert!(
            len == 32 || mask < (1u32 << len),
            "pointer mask {mask:#b} wider than record length {len}"
        );
        Ok(Header(
            KIND_RECORD | ((len as u64) << 2) | (u64::from(mask) << 7),
        ))
    }

    /// Builds a pointer-array header for `len` pointer elements.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::ObjectTooLarge`] if `len` exceeds the 30-bit
    /// length field.
    pub fn ptr_array(len: usize) -> Result<Header, MemError> {
        if len > MAX_ARRAY_LEN {
            return Err(MemError::ObjectTooLarge { words: len });
        }
        Ok(Header(KIND_PTR_ARRAY | ((len as u64) << 2)))
    }

    /// Builds a raw-array header for `len_bytes` bytes of unscanned data.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::ObjectTooLarge`] if `len_bytes` exceeds the
    /// 30-bit length field.
    pub fn raw_array(len_bytes: usize) -> Result<Header, MemError> {
        if len_bytes > MAX_ARRAY_LEN {
            return Err(MemError::ObjectTooLarge {
                words: crate::bytes_to_words(len_bytes),
            });
        }
        Ok(Header(KIND_RAW_ARRAY | ((len_bytes as u64) << 2)))
    }

    /// Builds a forwarding header pointing at the copied object.
    #[inline]
    pub const fn forward(to: Addr) -> Header {
        Header(KIND_FORWARD | ((to.raw() as u64) << 2))
    }

    /// Reinterprets a raw memory word as a header.
    #[inline]
    pub const fn from_raw(word: u64) -> Header {
        Header(word)
    }

    /// The raw word representation, as stored in memory.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns `true` if this is a forwarding header.
    #[inline]
    pub const fn is_forward(self) -> bool {
        self.0 & 0b11 == KIND_FORWARD
    }

    /// The forwarding destination, if this is a forwarding header.
    #[inline]
    pub fn forward_addr(self) -> Option<Addr> {
        if self.is_forward() {
            Some(Addr::new((self.0 >> 2) as u32))
        } else {
            None
        }
    }

    /// The object kind.
    ///
    /// # Panics
    ///
    /// Panics if the header is a forwarding header; check
    /// [`is_forward`](Self::is_forward) first when scanning during a
    /// collection.
    #[inline]
    pub fn kind(self) -> ObjectKind {
        match self.0 & 0b11 {
            KIND_RECORD => ObjectKind::Record,
            KIND_PTR_ARRAY => ObjectKind::PtrArray,
            KIND_RAW_ARRAY => ObjectKind::RawArray,
            _ => panic!("kind() called on forwarding header {:#x}", self.0),
        }
    }

    /// The payload length: field count for records, element count for
    /// pointer arrays, byte count for raw arrays.
    #[inline]
    pub fn len(self) -> usize {
        debug_assert!(!self.is_forward());
        if self.0 & 0b11 == KIND_RECORD {
            ((self.0 >> 2) & 0x1f) as usize
        } else {
            ((self.0 >> 2) & 0x3fff_ffff) as usize
        }
    }

    /// Returns `true` if the payload is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.len() == 0
    }

    /// The record pointer mask. Zero for arrays.
    #[inline]
    pub fn ptr_mask(self) -> u32 {
        if self.0 & 0b11 == KIND_RECORD {
            ((self.0 >> 7) & 0xff_ffff) as u32
        } else {
            0
        }
    }

    /// Whether field `i` of this object is a pointer.
    ///
    /// Records consult the mask; every pointer-array element is a pointer;
    /// raw-array bytes never are.
    #[inline]
    pub fn field_is_pointer(self, i: usize) -> bool {
        match self.0 & 0b11 {
            KIND_RECORD => (self.ptr_mask() >> i) & 1 == 1,
            KIND_PTR_ARRAY => true,
            _ => false,
        }
    }

    /// Number of minor collections this object has survived (saturating at
    /// 255).
    #[inline]
    pub fn age(self) -> u8 {
        debug_assert!(!self.is_forward());
        ((self.0 >> 48) & 0xff) as u8
    }

    /// A copy of this header with the age replaced.
    #[inline]
    pub fn with_age(self, age: u8) -> Header {
        debug_assert!(!self.is_forward());
        Header((self.0 & !(0xffu64 << 48)) | (u64::from(age) << 48))
    }

    /// Payload size in whole words (excluding the header word).
    #[inline]
    pub fn payload_words(self) -> usize {
        match self.0 & 0b11 {
            KIND_RAW_ARRAY => crate::bytes_to_words(self.len()),
            _ => self.len(),
        }
    }

    /// Total object size in words, including the header word.
    #[inline]
    pub fn size_words(self) -> usize {
        1 + self.payload_words()
    }

    /// Total object size in bytes, including the header word. This is the
    /// quantity the paper's "Data copied (bytes)" columns count.
    #[inline]
    pub fn size_bytes(self) -> usize {
        crate::words_to_bytes(self.size_words())
    }
}

impl fmt::Debug for Header {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(to) = self.forward_addr() {
            return write!(f, "Header(forward -> {to})");
        }
        write!(
            f,
            "Header({} len={} mask={:#b} age={})",
            self.kind(),
            self.len(),
            self.ptr_mask(),
            self.age()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_trip() {
        let h = Header::record(24, 0xaa_aaaa & ((1 << 24) - 1)).unwrap();
        assert_eq!(h.kind(), ObjectKind::Record);
        assert_eq!(h.len(), 24);
        assert_eq!(h.ptr_mask(), 0xaa_aaaa);
        assert_eq!(h.age(), 0);
        assert_eq!(h.size_words(), 25);
        assert!(!h.is_forward());
    }

    #[test]
    fn record_too_long_is_rejected() {
        assert_eq!(
            Header::record(25, 0),
            Err(MemError::ObjectTooLarge { words: 25 })
        );
    }

    #[test]
    #[should_panic(expected = "pointer mask")]
    fn record_mask_wider_than_len_panics() {
        let _ = Header::record(2, 0b100);
    }

    #[test]
    fn ptr_array_round_trip() {
        let h = Header::ptr_array(1000).unwrap();
        assert_eq!(h.kind(), ObjectKind::PtrArray);
        assert_eq!(h.len(), 1000);
        assert!(h.field_is_pointer(999));
        assert_eq!(h.size_words(), 1001);
    }

    #[test]
    fn raw_array_rounds_bytes_up_to_words() {
        let h = Header::raw_array(17).unwrap();
        assert_eq!(h.kind(), ObjectKind::RawArray);
        assert_eq!(h.len(), 17);
        assert_eq!(h.payload_words(), 3);
        assert_eq!(h.size_words(), 4);
        assert!(!h.field_is_pointer(0));
    }

    #[test]
    fn empty_objects() {
        let h = Header::record(0, 0).unwrap();
        assert!(h.is_empty());
        assert_eq!(h.size_words(), 1);
        let h = Header::raw_array(0).unwrap();
        assert!(h.is_empty());
        assert_eq!(h.size_words(), 1);
    }

    #[test]
    fn oversized_arrays_are_rejected() {
        assert!(Header::ptr_array(1 << 30).is_err());
        assert!(Header::raw_array(1 << 30).is_err());
        assert!(Header::ptr_array((1 << 30) - 1).is_ok());
    }

    #[test]
    fn forwarding() {
        let h = Header::forward(Addr::new(0xdead));
        assert!(h.is_forward());
        assert_eq!(h.forward_addr(), Some(Addr::new(0xdead)));
        let n = Header::ptr_array(1).unwrap();
        assert_eq!(n.forward_addr(), None);
    }

    #[test]
    fn age_is_independent_of_other_fields() {
        let h = Header::record(3, 0b111).unwrap();
        let aged = h.with_age(9);
        assert_eq!(aged.age(), 9);
        assert_eq!(aged.len(), h.len());
        assert_eq!(aged.ptr_mask(), h.ptr_mask());
        assert_eq!(aged.with_age(0), h);
    }

    #[test]
    fn dirty_bit_lives_in_side_metadata_not_the_header() {
        // Re-homed from the old `Header::is_dirty`/`with_dirty` API: the
        // dirty bit is per-address side metadata now, orthogonal to
        // everything the header encodes.
        let mut mem = crate::Memory::with_capacity_words(64);
        let a = Addr::new(9);
        assert!(!mem.is_dirty(a));
        mem.set_dirty(a);
        assert!(mem.is_dirty(a));
        // Independent of the header stored at the same address.
        mem.set_word(a, Header::ptr_array(4).unwrap().raw());
        assert!(mem.is_dirty(a));
        assert_eq!(Header::from_raw(mem.word(a)).len(), 4);
        mem.clear_dirty(a);
        assert!(!mem.is_dirty(a));
        assert_eq!(Header::from_raw(mem.word(a)).len(), 4);
    }

    #[test]
    fn raw_word_round_trip() {
        let h = Header::ptr_array(5).unwrap();
        assert_eq!(Header::from_raw(h.raw()), h);
    }

    #[test]
    #[should_panic(expected = "kind() called on forwarding header")]
    fn kind_of_forward_panics() {
        let _ = Header::forward(Addr::new(1)).kind();
    }
}
