use crate::side::{ChunkMap, SideBitmap, SideMetaView, SideMetadata};
use crate::{Addr, MemError, SiteId, SpaceRange};

/// Size of a machine word, in bytes. The simulation models a 64-bit machine
/// (the paper's DEC Alpha 21064 is 64-bit).
pub const WORD_BYTES: usize = 8;

/// The chunked simulated address space.
///
/// All heap spaces — semispaces, nursery, tenured area, large-object space,
/// pretenured regions — are carved out of one `Memory` with
/// [`reserve`](Memory::reserve) or [`reserve_owned`](Memory::reserve_owned),
/// so that a heap pointer is a plain word index valid anywhere, exactly
/// like a machine address. Word 0 is reserved for the null pointer.
///
/// The backing store is one contiguous word array (objects may straddle
/// chunk boundaries and the copy kernels want contiguous slices), but the
/// bookkeeping on top is chunked: a [`ChunkMap`] records which space owns
/// each [`CHUNK_WORDS`](crate::CHUNK_WORDS)-sized chunk, and a side-metadata
/// layer carries the per-word dirty bits, mark bits and allocation-site
/// tags that used to live in object headers (see [`crate::side`]).
///
/// Accessors panic on out-of-bounds addresses: in this simulator an invalid
/// address is a collector bug, never a recoverable runtime condition.
/// Checked variants ([`try_word`](Memory::try_word)) exist for verifiers
/// that probe arbitrary words.
///
/// # Example
///
/// ```
/// use tilgc_mem::{Memory, Addr};
///
/// let mut mem = Memory::with_capacity_words(64);
/// let range = mem.reserve(16)?;
/// mem.set_word(range.start, 0xfeed);
/// assert_eq!(mem.word(range.start), 0xfeed);
/// # Ok::<(), tilgc_mem::MemError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Memory {
    words: Vec<u64>,
    reserved: usize,
    chunks: ChunkMap,
    side: SideMetadata,
}

impl Memory {
    /// Creates an address space of `capacity` words, all zeroed.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0 or exceeds `u32::MAX` (addresses are 32-bit
    /// word indices).
    pub fn with_capacity_words(capacity: usize) -> Memory {
        assert!(capacity > 0, "memory capacity must be positive");
        assert!(
            capacity <= u32::MAX as usize,
            "memory capacity exceeds 32-bit addressing"
        );
        Memory {
            words: vec![0; capacity],
            reserved: 1,
            chunks: ChunkMap::new(capacity),
            side: SideMetadata::new(capacity),
        }
    }

    /// Creates an address space sized in bytes, rounded **up** to whole
    /// words: a non-word-multiple request still yields enough memory to
    /// hold `capacity` bytes. (It used to round down, silently shrinking
    /// the heap below the requested budget.)
    pub fn with_capacity_bytes(capacity: usize) -> Memory {
        Memory::with_capacity_words(crate::bytes_to_words(capacity))
    }

    /// Total capacity in words.
    #[inline]
    pub fn capacity_words(&self) -> usize {
        self.words.len()
    }

    /// Words not yet handed out by [`reserve`](Memory::reserve).
    #[inline]
    pub fn unreserved_words(&self) -> usize {
        self.words.len() - self.reserved
    }

    /// Reserves the next `words` words as a fresh, exclusively owned range.
    ///
    /// Reservations never overlap and are never reclaimed; collectors size
    /// the address space up-front and move logical space boundaries instead
    /// (heap "resizing" in the paper's sense changes a space's *limit*, not
    /// its reservation).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::AddressSpaceExhausted`] if fewer than `words`
    /// words remain unreserved.
    pub fn reserve(&mut self, words: usize) -> Result<SpaceRange, MemError> {
        if words > self.unreserved_words() {
            return Err(MemError::AddressSpaceExhausted {
                requested: words,
                available: self.unreserved_words(),
            });
        }
        let start = Addr::new(self.reserved as u32);
        self.reserved += words;
        Ok(SpaceRange {
            start,
            end: start + words,
        })
    }

    /// Like [`reserve`](Memory::reserve), but also tags every chunk the
    /// new range overlaps with `owner` in the chunk map. Collectors use
    /// this for their spaces ("nursery", "tenured", "los", ...) so
    /// verifiers and telemetry can attribute any address to a space at
    /// chunk granularity.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::AddressSpaceExhausted`] if fewer than `words`
    /// words remain unreserved.
    pub fn reserve_owned(
        &mut self,
        words: usize,
        owner: &'static str,
    ) -> Result<SpaceRange, MemError> {
        let range = self.reserve(words)?;
        self.chunks.assign(range, owner);
        Ok(range)
    }

    /// The owner label of the chunk covering `addr`, if any.
    #[inline]
    pub fn chunk_owner(&self, addr: Addr) -> Option<&'static str> {
        self.chunks.owner_of(addr)
    }

    /// Number of chunks currently owned by some space.
    #[inline]
    pub fn owned_chunks(&self) -> usize {
        self.chunks.owned_chunks()
    }

    /// Number of chunks owned by the space labelled `owner`.
    #[inline]
    pub fn owned_chunks_by(&self, owner: &str) -> usize {
        self.chunks.owned_chunks_by(owner)
    }

    /// Total number of chunks in the address space.
    #[inline]
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// The allocation-site tag for the object whose header is at `addr`.
    #[inline]
    pub fn site_of(&self, addr: Addr) -> SiteId {
        self.side.sites.get(addr)
    }

    /// Writes the allocation-site tag for the object headed at `addr`.
    #[inline]
    pub fn set_site(&mut self, addr: Addr, site: SiteId) {
        self.side.sites.set(addr, site);
    }

    /// Whether the write-barrier dirty bit for `addr` is set.
    #[inline]
    pub fn is_dirty(&self, addr: Addr) -> bool {
        self.side.dirty.get(addr)
    }

    /// Sets the dirty bit for `addr`.
    #[inline]
    pub fn set_dirty(&mut self, addr: Addr) {
        self.side.dirty.set(addr);
    }

    /// Clears the dirty bit for `addr`.
    #[inline]
    pub fn clear_dirty(&mut self, addr: Addr) {
        self.side.dirty.clear(addr);
    }

    /// Sets the dirty bit for `addr` and reports whether it was already
    /// set — the branch-free write-barrier dedup filter (one load, an
    /// OR, a store and a bit test).
    #[inline]
    pub fn dirty_test_and_set(&mut self, addr: Addr) -> bool {
        self.side.dirty.set_returning_old(addr)
    }

    /// Scalar reference implementation of
    /// [`dirty_test_and_set`](Memory::dirty_test_and_set): explicit
    /// test, branch and conditional set, modelling the old per-object
    /// header check. Kept under `kernel-ref` as the A/B oracle for the
    /// barrier-filter benchmark.
    #[cfg(any(test, feature = "kernel-ref"))]
    pub fn dirty_test_and_set_reference(&mut self, addr: Addr) -> bool {
        let was = self.is_dirty(addr);
        if !was {
            self.set_dirty(addr);
        }
        was
    }

    /// Bulk-clears the dirty bits over `range` — the `memset`-style
    /// sweep collectors run when a space is vacated, replacing the old
    /// per-object header-rewrite walk. Returns the heap words covered.
    pub fn bulk_clear_dirty(&mut self, range: SpaceRange) -> u64 {
        let covered = self.side.dirty.bulk_clear(range);
        self.side.cleared_words += covered;
        covered
    }

    /// Whether the large-object mark bit for `addr` is set.
    #[inline]
    pub fn is_marked(&self, addr: Addr) -> bool {
        self.side.mark.get(addr)
    }

    /// Sets the mark bit for `addr`, returning `true` if this call
    /// claimed it (serial marking path; parallel workers use
    /// [`SideMetaView::mark_test_and_set`]).
    #[inline]
    pub fn mark_test_and_set(&mut self, addr: Addr) -> bool {
        !self.side.mark.set_returning_old(addr)
    }

    /// Bulk-clears the mark bits over `range` (start of a marking
    /// cycle). Returns the heap words covered.
    pub fn bulk_clear_marks(&mut self, range: SpaceRange) -> u64 {
        let covered = self.side.mark.bulk_clear(range);
        self.side.cleared_words += covered;
        covered
    }

    /// Running total of heap words covered by dirty/mark bulk clears
    /// since this memory was created. Collection-end telemetry reports
    /// the per-collection delta.
    #[inline]
    pub fn side_cleared_words(&self) -> u64 {
        self.side.cleared_words
    }

    /// The SSB dense filter's scratch bitmap. Callers must leave it
    /// all-clear between uses.
    #[inline]
    pub fn ssb_scratch_mut(&mut self) -> &mut SideBitmap {
        &mut self.side.scratch
    }

    /// Reads the word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is null or out of bounds.
    #[inline]
    pub fn word(&self, addr: Addr) -> u64 {
        debug_assert!(!addr.is_null(), "read through null address");
        self.words[addr.index()]
    }

    /// Reads the word at `addr`, or `None` if out of bounds or null.
    #[inline]
    pub fn try_word(&self, addr: Addr) -> Option<u64> {
        if addr.is_null() {
            return None;
        }
        self.words.get(addr.index()).copied()
    }

    /// Writes the word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is null or out of bounds.
    #[inline]
    pub fn set_word(&mut self, addr: Addr, value: u64) {
        debug_assert!(!addr.is_null(), "write through null address");
        self.words[addr.index()] = value;
    }

    /// Reads the word at `addr` as an IEEE-754 double (TIL stores unboxed
    /// floats directly in raw arrays).
    #[inline]
    pub fn f64_at(&self, addr: Addr) -> f64 {
        f64::from_bits(self.word(addr))
    }

    /// Writes an IEEE-754 double into the word at `addr`.
    #[inline]
    pub fn set_f64(&mut self, addr: Addr, value: f64) {
        self.set_word(addr, value.to_bits());
    }

    /// Borrows `len` consecutive words starting at `addr` as a slice.
    ///
    /// This is the batched read path of the copy/scan kernels: one bounds
    /// check for a whole object payload instead of one per
    /// [`word`](Memory::word) call.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds, or (in debug builds) if
    /// `addr` is null and `len` is nonzero.
    #[inline]
    pub fn words_at(&self, addr: Addr, len: usize) -> &[u64] {
        debug_assert!(len == 0 || !addr.is_null(), "read through null address");
        let i = addr.index();
        &self.words[i..i + len]
    }

    /// Borrows `len` consecutive words starting at `addr` mutably.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds, or (in debug builds) if
    /// `addr` is null and `len` is nonzero.
    #[inline]
    pub fn words_at_mut(&mut self, addr: Addr, len: usize) -> &mut [u64] {
        debug_assert!(len == 0 || !addr.is_null(), "write through null address");
        let i = addr.index();
        &mut self.words[i..i + len]
    }

    /// Opens a mutable window over `range` with a single up-front bounds
    /// check; every access through the window is then a plain offset.
    ///
    /// # Panics
    ///
    /// Panics if `range` is out of bounds.
    #[inline]
    pub fn window_mut(&mut self, range: SpaceRange) -> WordWindow<'_> {
        let len = range.end - range.start;
        WordWindow {
            words: self.words_at_mut(range.start, len),
            base: range.start,
        }
    }

    /// Copies `len` words from `src` to `dst` (the Cheney copy step).
    ///
    /// The ranges may not overlap — collectors only ever copy between
    /// distinct spaces.
    ///
    /// # Panics
    ///
    /// Panics if either range is out of bounds or if the ranges overlap.
    pub fn copy_words(&mut self, src: Addr, dst: Addr, len: usize) {
        if len == 0 {
            return;
        }
        let (s, d) = (src.index(), dst.index());
        assert!(
            s + len <= d || d + len <= s,
            "overlapping copy: src={src} dst={dst} len={len}"
        );
        let (lo, hi, src_is_lo) = if s < d { (s, d, true) } else { (d, s, false) };
        let (a, b) = self.words.split_at_mut(hi);
        if src_is_lo {
            b[..len].copy_from_slice(&a[lo..lo + len]);
        } else {
            a[lo..lo + len].copy_from_slice(&b[..len]);
        }
    }

    /// Fills `len` words starting at `addr` with `value`. Used to poison
    /// vacated semispaces in debug builds so stale reads fail loudly.
    pub fn fill(&mut self, addr: Addr, len: usize, value: u64) {
        let i = addr.index();
        self.words[i..i + len].fill(value);
    }

    /// Opens a shared, atomic view over the whole address space for
    /// parallel collection workers. The `&mut` receiver guarantees no
    /// non-atomic access can alias the view for its lifetime.
    #[inline]
    pub fn shared_view(&mut self) -> crate::SharedMemView<'_> {
        crate::SharedMemView::new(&mut self.words)
    }

    /// Opens the word view and the side-metadata view together, so
    /// parallel workers can forward objects (word view) and mark / tag
    /// sites (side view) through one pair of shared handles.
    #[inline]
    pub fn shared_views(&mut self) -> (crate::SharedMemView<'_>, SideMetaView<'_>) {
        (crate::SharedMemView::new(&mut self.words), self.side.view())
    }
}

/// A mutable view of a contiguous word range, bounds-checked once at
/// [`Memory::window_mut`] time.
///
/// Accessors take absolute [`Addr`]s (so call sites read the same as the
/// `Memory` equivalents) but resolve them with a plain subtraction; in
/// debug builds an address outside the window still panics.
#[derive(Debug)]
pub struct WordWindow<'m> {
    words: &'m mut [u64],
    base: Addr,
}

impl WordWindow<'_> {
    /// The absolute address of the first word in the window.
    #[inline]
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Number of words in the window.
    #[inline]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the window is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    #[inline]
    fn offset(&self, addr: Addr) -> usize {
        debug_assert!(
            addr >= self.base && addr.index() - self.base.index() < self.words.len(),
            "address {addr} outside window [{}, {})",
            self.base,
            self.base + self.words.len(),
        );
        addr.index() - self.base.index()
    }

    /// Reads the word at absolute address `addr`.
    #[inline]
    pub fn word(&self, addr: Addr) -> u64 {
        self.words[self.offset(addr)]
    }

    /// Writes the word at absolute address `addr`.
    #[inline]
    pub fn set_word(&mut self, addr: Addr, value: u64) {
        let i = self.offset(addr);
        self.words[i] = value;
    }

    /// The whole window as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[u64] {
        self.words
    }

    /// The whole window as a mutable slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [u64] {
        self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_is_disjoint_and_skips_null() {
        let mut mem = Memory::with_capacity_words(100);
        let a = mem.reserve(10).unwrap();
        let b = mem.reserve(10).unwrap();
        assert_eq!(a.start, Addr::new(1), "word 0 must stay reserved for null");
        assert_eq!(a.end, b.start);
        assert_eq!(mem.unreserved_words(), 79);
    }

    #[test]
    fn reserve_exhaustion() {
        let mut mem = Memory::with_capacity_words(16);
        assert!(mem.reserve(15).is_ok());
        assert_eq!(
            mem.reserve(1),
            Err(MemError::AddressSpaceExhausted {
                requested: 1,
                available: 0
            })
        );
    }

    #[test]
    fn capacity_bytes_rounds_up_to_whole_words() {
        // Regression: a non-word-multiple byte capacity used to round
        // *down*, silently shrinking the heap below the requested budget.
        assert_eq!(Memory::with_capacity_bytes(17).capacity_words(), 3);
        assert_eq!(Memory::with_capacity_bytes(24).capacity_words(), 3);
        assert_eq!(Memory::with_capacity_bytes(25).capacity_words(), 4);
        assert_eq!(Memory::with_capacity_bytes(1).capacity_words(), 1);
    }

    #[test]
    fn reserve_owned_tags_chunks() {
        let mut mem = Memory::with_capacity_words(3 * crate::CHUNK_WORDS);
        let a = mem
            .reserve_owned(2 * crate::CHUNK_WORDS, "nursery")
            .unwrap();
        let b = mem.reserve_owned(100, "tenured").unwrap();
        let anon = mem.reserve(100).unwrap();
        assert_eq!(mem.chunk_owner(a.start), Some("nursery"));
        assert_eq!(
            mem.chunk_owner(a.end + 1),
            Some("nursery") /* shared */
        );
        assert_eq!(
            mem.chunk_owner(b.start),
            Some("nursery"),
            "first owner wins"
        );
        assert_eq!(mem.chunk_count(), 3);
        assert_eq!(mem.owned_chunks(), 3);
        assert_eq!(mem.chunk_owner(anon.start), Some("nursery"));
    }

    #[test]
    fn plain_reserve_leaves_chunks_unowned() {
        let mut mem = Memory::with_capacity_words(64);
        let r = mem.reserve(16).unwrap();
        assert_eq!(mem.chunk_owner(r.start), None);
        assert_eq!(mem.owned_chunks(), 0);
    }

    #[test]
    fn dirty_filter_matches_scalar_reference() {
        let mut fast = Memory::with_capacity_words(256);
        let mut slow = Memory::with_capacity_words(256);
        let addrs = [3u32, 9, 3, 200, 9, 9, 3];
        for &a in &addrs {
            assert_eq!(
                fast.dirty_test_and_set(Addr::new(a)),
                slow.dirty_test_and_set_reference(Addr::new(a)),
            );
        }
        let range = SpaceRange {
            start: Addr::new(1),
            end: Addr::new(256),
        };
        assert_eq!(fast.bulk_clear_dirty(range), 255);
        assert!(!fast.is_dirty(Addr::new(3)));
        assert_eq!(fast.side_cleared_words(), 255);
    }

    #[test]
    fn mark_bits_claim_once_until_cleared() {
        let mut mem = Memory::with_capacity_words(128);
        assert!(mem.mark_test_and_set(Addr::new(40)));
        assert!(!mem.mark_test_and_set(Addr::new(40)));
        assert!(mem.is_marked(Addr::new(40)));
        let range = SpaceRange {
            start: Addr::new(32),
            end: Addr::new(64),
        };
        mem.bulk_clear_marks(range);
        assert!(!mem.is_marked(Addr::new(40)));
        assert!(mem.mark_test_and_set(Addr::new(40)));
    }

    #[test]
    fn site_tags_survive_clone() {
        let mut mem = Memory::with_capacity_words(64);
        mem.set_site(Addr::new(5), crate::SiteId::new(9));
        mem.set_dirty(Addr::new(5));
        let copy = mem.clone();
        assert_eq!(copy.site_of(Addr::new(5)), crate::SiteId::new(9));
        assert!(copy.is_dirty(Addr::new(5)));
    }

    #[test]
    fn word_round_trip() {
        let mut mem = Memory::with_capacity_words(8);
        mem.set_word(Addr::new(3), u64::MAX);
        assert_eq!(mem.word(Addr::new(3)), u64::MAX);
        assert_eq!(mem.try_word(Addr::new(3)), Some(u64::MAX));
        assert_eq!(mem.try_word(Addr::new(99)), None);
        assert_eq!(mem.try_word(Addr::NULL), None);
    }

    #[test]
    fn f64_round_trip() {
        let mut mem = Memory::with_capacity_words(8);
        mem.set_f64(Addr::new(1), -1.5e300);
        assert_eq!(mem.f64_at(Addr::new(1)), -1.5e300);
    }

    #[test]
    fn copy_words_both_directions() {
        let mut mem = Memory::with_capacity_words(32);
        for i in 0..4 {
            mem.set_word(Addr::new(1 + i), u64::from(10 + i));
        }
        mem.copy_words(Addr::new(1), Addr::new(16), 4);
        for i in 0..4 {
            assert_eq!(mem.word(Addr::new(16 + i)), u64::from(10 + i));
        }
        mem.copy_words(Addr::new(16), Addr::new(8), 4);
        assert_eq!(mem.word(Addr::new(8)), 10);
    }

    #[test]
    #[should_panic(expected = "overlapping copy")]
    fn overlapping_copy_panics() {
        let mut mem = Memory::with_capacity_words(32);
        mem.copy_words(Addr::new(1), Addr::new(2), 4);
    }

    #[test]
    fn fill_poisons_range() {
        let mut mem = Memory::with_capacity_words(16);
        mem.fill(Addr::new(4), 4, 0xdead_beef);
        assert_eq!(mem.word(Addr::new(7)), 0xdead_beef);
        assert_eq!(mem.word(Addr::new(8)), 0);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        let _ = Memory::with_capacity_words(0);
    }

    #[test]
    fn words_at_matches_scalar_reads() {
        let mut mem = Memory::with_capacity_words(16);
        for i in 0..4 {
            mem.set_word(Addr::new(2 + i), u64::from(7 * (i + 1)));
        }
        assert_eq!(mem.words_at(Addr::new(2), 4), &[7, 14, 21, 28]);
        mem.words_at_mut(Addr::new(2), 4)
            .copy_from_slice(&[1, 2, 3, 4]);
        assert_eq!(mem.word(Addr::new(3)), 2);
        assert!(mem.words_at(Addr::new(5), 0).is_empty());
    }

    #[test]
    #[should_panic]
    fn words_at_out_of_bounds_panics() {
        let mem = Memory::with_capacity_words(8);
        let _ = mem.words_at(Addr::new(6), 4);
    }

    #[test]
    fn window_round_trips_absolute_addresses() {
        let mut mem = Memory::with_capacity_words(32);
        let range = mem.reserve(8).unwrap();
        let mut w = mem.window_mut(range);
        assert_eq!(w.base(), range.start);
        assert_eq!(w.len(), 8);
        assert!(!w.is_empty());
        w.set_word(range.start + 3, 99);
        assert_eq!(w.word(range.start + 3), 99);
        w.as_mut_slice().fill(5);
        assert_eq!(w.as_slice(), &[5; 8]);
        assert_eq!(mem.word(range.start + 3), 5);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "outside window")]
    fn window_rejects_foreign_address() {
        let mut mem = Memory::with_capacity_words(32);
        let range = mem.reserve(8).unwrap();
        let other = mem.reserve(8).unwrap();
        let w = mem.window_mut(range);
        let _ = w.word(other.start);
    }
}
