//! Property tests for the memory substrate: header encodings round-trip
//! for every legal input, and the object walker tiles spaces exactly.

use proptest::prelude::*;
use tilgc_mem::{object, Addr, Header, Memory, ObjectKind, SiteId, Space};

proptest! {
    /// Record headers round-trip every legal (len, mask, site, age)
    /// combination through the packed word.
    #[test]
    fn record_header_round_trip(
        len in 0usize..=24,
        mask_bits in any::<u32>(),
        site in any::<u16>(),
        age in any::<u8>(),
        dirty in any::<bool>(),
    ) {
        let mask = if len == 0 { 0 } else { mask_bits & ((1u32 << len) - 1) };
        let h = Header::record(len, mask, SiteId::new(site))
            .expect("len <= 24 is valid")
            .with_age(age)
            .with_dirty(dirty);
        prop_assert_eq!(h.kind(), ObjectKind::Record);
        prop_assert_eq!(h.len(), len);
        prop_assert_eq!(h.ptr_mask(), mask);
        prop_assert_eq!(h.site(), SiteId::new(site));
        prop_assert_eq!(h.age(), age);
        prop_assert_eq!(h.is_dirty(), dirty);
        prop_assert_eq!(h.size_words(), 1 + len);
        prop_assert!(!h.is_forward());
        prop_assert_eq!(Header::from_raw(h.raw()), h);
        for i in 0..len {
            prop_assert_eq!(h.field_is_pointer(i), (mask >> i) & 1 == 1);
        }
    }

    /// Array headers round-trip lengths across the full 30-bit range.
    #[test]
    fn array_header_round_trip(
        len in 0usize..(1 << 30),
        site in any::<u16>(),
        raw in any::<bool>(),
    ) {
        let h = if raw {
            Header::raw_array(len, SiteId::new(site)).expect("30-bit length")
        } else {
            Header::ptr_array(len, SiteId::new(site)).expect("30-bit length")
        };
        prop_assert_eq!(h.len(), len);
        prop_assert_eq!(h.site(), SiteId::new(site));
        if raw {
            prop_assert_eq!(h.kind(), ObjectKind::RawArray);
            prop_assert_eq!(h.payload_words(), len.div_ceil(8));
            prop_assert!(!h.field_is_pointer(0));
        } else {
            prop_assert_eq!(h.kind(), ObjectKind::PtrArray);
            prop_assert_eq!(h.payload_words(), len);
            if len > 0 {
                prop_assert!(h.field_is_pointer(len - 1));
            }
        }
    }

    /// Forwarding headers preserve the full 32-bit address space.
    #[test]
    fn forward_header_round_trip(addr in any::<u32>()) {
        let h = Header::forward(Addr::new(addr));
        prop_assert!(h.is_forward());
        prop_assert_eq!(h.forward_addr(), Some(Addr::new(addr)));
    }

    /// The walker visits exactly the objects allocated, in order, with
    /// the right headers — for arbitrary allocation sequences.
    #[test]
    fn walk_tiles_arbitrary_allocation_sequences(
        objs in proptest::collection::vec(
            (0usize..=8, any::<u16>(), prop_oneof![Just(0u8), Just(1), Just(2)]),
            0..40,
        )
    ) {
        let mut mem = Memory::with_capacity_words(1 << 16);
        let mut space = Space::new(mem.reserve(1 << 15).expect("reserve"));
        let start = space.frontier();
        let mut expected = Vec::new();
        for (len, site, kind) in objs {
            let site = SiteId::new(site);
            let addr = match kind {
                0 => object::alloc_record(
                    &mut mem,
                    &mut space,
                    site,
                    &vec![7u64; len],
                    0,
                )
                .expect("fits"),
                1 => object::alloc_ptr_array(&mut mem, &mut space, site, len, Addr::NULL)
                    .expect("fits"),
                _ => object::alloc_raw_array(&mut mem, &mut space, site, len * 8)
                    .expect("fits"),
            };
            expected.push((addr, site, len));
        }
        let walked: Vec<_> = object::walk(&mem, start, space.frontier())
            .map(|e| (e.addr, e.header.site(), e.header.payload_words()))
            .collect();
        prop_assert_eq!(walked.len(), expected.len());
        for ((wa, ws, wp), (ea, es, el)) in walked.iter().zip(&expected) {
            prop_assert_eq!(wa, ea);
            prop_assert_eq!(ws, es);
            prop_assert_eq!(wp, el);
        }
    }

    /// Byte accessors on raw arrays behave like a plain byte buffer.
    #[test]
    fn raw_array_bytes_behave_like_a_buffer(
        len in 1usize..100,
        writes in proptest::collection::vec((any::<u16>(), any::<u8>()), 0..50),
    ) {
        let mut mem = Memory::with_capacity_words(1 << 12);
        let mut space = Space::new(mem.reserve(1 << 11).expect("reserve"));
        let arr = object::alloc_raw_array(&mut mem, &mut space, SiteId::UNKNOWN, len)
            .expect("fits");
        let mut model = vec![0u8; len];
        for (i, v) in writes {
            let i = (i as usize) % len;
            object::set_byte(&mut mem, arr, i, v);
            model[i] = v;
        }
        for (i, &m) in model.iter().enumerate() {
            prop_assert_eq!(object::byte(&mem, arr, i), m);
        }
    }
}
