//! Property tests for the memory substrate: header encodings round-trip
//! for every legal input, the object walker tiles spaces exactly, and
//! the side-metadata layer (bitmaps, bulk clears, atomic mark claims)
//! agrees with a naive model at and across chunk boundaries.

use proptest::prelude::*;
use tilgc_mem::{object, Addr, Header, Memory, ObjectKind, SiteId, Space, SpaceRange, CHUNK_WORDS};

/// The workspace's deterministic xorshift64* generator (same recurrence
/// the torture harness and benchmark inputs use).
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

proptest! {
    /// Record headers round-trip every legal (len, mask, age)
    /// combination through the packed word.
    #[test]
    fn record_header_round_trip(
        len in 0usize..=24,
        mask_bits in any::<u32>(),
        age in any::<u8>(),
    ) {
        let mask = if len == 0 { 0 } else { mask_bits & ((1u32 << len) - 1) };
        let h = Header::record(len, mask)
            .expect("len <= 24 is valid")
            .with_age(age);
        prop_assert_eq!(h.kind(), ObjectKind::Record);
        prop_assert_eq!(h.len(), len);
        prop_assert_eq!(h.ptr_mask(), mask);
        prop_assert_eq!(h.age(), age);
        prop_assert_eq!(h.size_words(), 1 + len);
        prop_assert!(!h.is_forward());
        prop_assert_eq!(Header::from_raw(h.raw()), h);
        for i in 0..len {
            prop_assert_eq!(h.field_is_pointer(i), (mask >> i) & 1 == 1);
        }
    }

    /// Array headers round-trip lengths across the full 30-bit range.
    #[test]
    fn array_header_round_trip(
        len in 0usize..(1 << 30),
        raw in any::<bool>(),
    ) {
        let h = if raw {
            Header::raw_array(len).expect("30-bit length")
        } else {
            Header::ptr_array(len).expect("30-bit length")
        };
        prop_assert_eq!(h.len(), len);
        if raw {
            prop_assert_eq!(h.kind(), ObjectKind::RawArray);
            prop_assert_eq!(h.payload_words(), len.div_ceil(8));
            prop_assert!(!h.field_is_pointer(0));
        } else {
            prop_assert_eq!(h.kind(), ObjectKind::PtrArray);
            prop_assert_eq!(h.payload_words(), len);
            if len > 0 {
                prop_assert!(h.field_is_pointer(len - 1));
            }
        }
    }

    /// Forwarding headers preserve the full 32-bit address space.
    #[test]
    fn forward_header_round_trip(addr in any::<u32>()) {
        let h = Header::forward(Addr::new(addr));
        prop_assert!(h.is_forward());
        prop_assert_eq!(h.forward_addr(), Some(Addr::new(addr)));
    }

    /// The walker visits exactly the objects allocated, in order, with
    /// the right headers and side site tags — for arbitrary allocation
    /// sequences.
    #[test]
    fn walk_tiles_arbitrary_allocation_sequences(
        objs in proptest::collection::vec(
            (0usize..=8, any::<u16>(), prop_oneof![Just(0u8), Just(1), Just(2)]),
            0..40,
        )
    ) {
        let mut mem = Memory::with_capacity_words(1 << 16);
        let mut space = Space::new(mem.reserve(1 << 15).expect("reserve"));
        let start = space.frontier();
        let mut expected = Vec::new();
        for (len, site, kind) in objs {
            let site = SiteId::new(site);
            let addr = match kind {
                0 => object::alloc_record(
                    &mut mem,
                    &mut space,
                    site,
                    &vec![7u64; len],
                    0,
                )
                .expect("fits"),
                1 => object::alloc_ptr_array(&mut mem, &mut space, site, len, Addr::NULL)
                    .expect("fits"),
                _ => object::alloc_raw_array(&mut mem, &mut space, site, len * 8)
                    .expect("fits"),
            };
            expected.push((addr, site, len));
        }
        let walked: Vec<_> = object::walk(&mem, start, space.frontier())
            .map(|e| (e.addr, mem.site_of(e.addr), e.header.payload_words()))
            .collect();
        prop_assert_eq!(walked.len(), expected.len());
        for ((wa, ws, wp), (ea, es, el)) in walked.iter().zip(&expected) {
            prop_assert_eq!(wa, ea);
            prop_assert_eq!(ws, es);
            prop_assert_eq!(wp, el);
        }
    }

    /// Byte accessors on raw arrays behave like a plain byte buffer.
    #[test]
    fn raw_array_bytes_behave_like_a_buffer(
        len in 1usize..100,
        writes in proptest::collection::vec((any::<u16>(), any::<u8>()), 0..50),
    ) {
        let mut mem = Memory::with_capacity_words(1 << 12);
        let mut space = Space::new(mem.reserve(1 << 11).expect("reserve"));
        let arr = object::alloc_raw_array(&mut mem, &mut space, SiteId::UNKNOWN, len)
            .expect("fits");
        let mut model = vec![0u8; len];
        for (i, v) in writes {
            let i = (i as usize) % len;
            object::set_byte(&mut mem, arr, i, v);
            model[i] = v;
        }
        for (i, &m) in model.iter().enumerate() {
            prop_assert_eq!(object::byte(&mem, arr, i), m);
        }
    }

    /// Dirty bits round-trip through the side bitmap at and around
    /// chunk boundaries, agreeing with a naive per-address model.
    #[test]
    fn side_bitmap_round_trips_at_chunk_boundaries(seed in any::<u64>()) {
        let mut mem = Memory::with_capacity_words(2 * CHUNK_WORDS + 100);
        let mut model = std::collections::HashSet::new();
        let mut state = seed | 1;
        for _ in 0..300 {
            // Cluster addresses tightly around the two chunk edges so
            // the boundary bitmap words get heavy traffic.
            let edge = if xorshift(&mut state) % 2 == 0 { CHUNK_WORDS } else { 2 * CHUNK_WORDS };
            let a = Addr::new((edge as u32).wrapping_add((xorshift(&mut state) % 129) as u32) - 64);
            match xorshift(&mut state) % 3 {
                0 => {
                    mem.set_dirty(a);
                    model.insert(a);
                }
                1 => {
                    mem.clear_dirty(a);
                    model.remove(&a);
                }
                _ => prop_assert_eq!(mem.is_dirty(a), model.contains(&a)),
            }
        }
        for chunk_edge in [CHUNK_WORDS, 2 * CHUNK_WORDS] {
            for delta in -64i64..=64 {
                let a = Addr::new((chunk_edge as i64 + delta) as u32);
                prop_assert_eq!(mem.is_dirty(a), model.contains(&a));
            }
        }
    }

    /// Bulk-clearing one reservation's range never disturbs bits owned
    /// by its neighbours, even when they share edge bitmap words and
    /// chunk boundaries.
    #[test]
    fn bulk_clear_leaves_neighbouring_chunks_untouched(
        left_len in 1usize..200,
        mid_len in 1usize..(2 * CHUNK_WORDS),
        right_len in 1usize..200,
        seed in any::<u64>(),
    ) {
        let mut mem = Memory::with_capacity_words(3 * CHUNK_WORDS);
        let left = mem.reserve(left_len).expect("reserve");
        let mid = mem.reserve(mid_len).expect("reserve");
        let right = mem.reserve(right_len).expect("reserve");
        let mut state = seed | 1;
        let pick = |r: SpaceRange, state: &mut u64| {
            r.start + (xorshift(state) as usize % (r.end - r.start))
        };
        let mut outside = Vec::new();
        for _ in 0..40 {
            let a = pick(left, &mut state);
            mem.set_dirty(a);
            outside.push(a);
            let a = pick(right, &mut state);
            mem.set_dirty(a);
            outside.push(a);
            mem.set_dirty(pick(mid, &mut state));
        }
        let covered = mem.bulk_clear_dirty(mid);
        prop_assert_eq!(covered, (mid.end - mid.start) as u64);
        for a in (mid.start.index()..mid.end.index()).map(|i| Addr::new(i as u32)) {
            prop_assert!(!mem.is_dirty(a), "bit inside the cleared range at {a}");
        }
        for a in outside {
            prop_assert!(mem.is_dirty(a), "neighbour bit at {a} was clobbered");
        }
    }

    /// An atomic mark-bit claim is idempotent: across any xorshift-driven
    /// sequence of duplicated addresses, each distinct address is claimed
    /// exactly once, no matter how claims interleave with re-claims.
    #[test]
    fn atomic_mark_claim_is_idempotent(seed in any::<u64>(), n in 1usize..400) {
        let mut mem = Memory::with_capacity_words(4096);
        let mut state = seed | 1;
        let addrs: Vec<Addr> = (0..n)
            .map(|_| Addr::new(1 + (xorshift(&mut state) % 4095) as u32))
            .collect();
        let distinct: std::collections::HashSet<Addr> = addrs.iter().copied().collect();
        let (_, side) = mem.shared_views();
        let claims = addrs
            .iter()
            .filter(|&&a| side.mark_test_and_set(a))
            .count();
        prop_assert_eq!(claims, distinct.len(), "each address claimed exactly once");
        for &a in &distinct {
            prop_assert!(side.is_marked(a));
            prop_assert!(!side.mark_test_and_set(a), "re-claim must lose");
        }
        let _ = side;
        // The serial path observes exactly the same bits.
        for &a in &distinct {
            prop_assert!(mem.is_marked(a));
        }
    }
}
