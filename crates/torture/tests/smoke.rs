//! PR-tier torture smoke: a handful of fixed seeds must run clean on
//! every plan, and the harness must actually catch the defects it is
//! built to catch (validated by injecting them).

use tilgc_torture::{failure_telemetry, run_seed, Fault, TortureConfig};

fn smoke_config() -> TortureConfig {
    TortureConfig {
        ops: 256,
        ..TortureConfig::default()
    }
}

#[test]
fn fixed_seeds_run_clean_on_all_plans() {
    let cfg = smoke_config();
    for seed in [0, 1, 2, 3, 17, 42] {
        if let Some(d) = run_seed(seed, &cfg) {
            panic!("unexpected divergence:\n{d}");
        }
    }
}

#[test]
fn fixed_seeds_run_clean_with_a_tiny_nursery() {
    let cfg = TortureConfig {
        nursery_bytes: 2 << 10,
        ..smoke_config()
    };
    for seed in [5, 23] {
        if let Some(d) = run_seed(seed, &cfg) {
            panic!("unexpected divergence:\n{d}");
        }
    }
}

/// Serial-vs-parallel lockstep: with `workers = 4`, every plan runs a
/// serial-oracle lane and a 4-worker lane side by side; the graph diff
/// must stay silent, with and without the packet-reorder perturbation.
#[test]
fn parallel_lanes_match_serial_oracle() {
    let cfg = TortureConfig {
        workers: 4,
        ..smoke_config()
    };
    for seed in [0, 1, 2, 17, 42] {
        if let Some(d) = run_seed(seed, &cfg) {
            panic!("serial/parallel divergence:\n{d}");
        }
    }
    let reordered = TortureConfig {
        fault: Some(Fault::PacketReorder),
        ..cfg
    };
    for seed in [3, 23] {
        if let Some(d) = run_seed(seed, &reordered) {
            panic!("packet reorder broke lockstep:\n{d}");
        }
    }
}

/// Disabling the write barrier on the generational lanes loses
/// old-to-young pointers: the oracle (or the cross-plan diff) must
/// report it, and the shrinker must hand back a reduced trace.
#[test]
fn dropped_write_barrier_is_caught_and_minimized() {
    // Longer programs than the clean smoke: exposing the lost pointer
    // needs a promotion, an unbarriered old-to-young store, and a second
    // minor collection to line up.
    let cfg = TortureConfig {
        fault: Some(Fault::DropBarrier),
        ops: 512,
        ..smoke_config()
    };
    let mut caught = None;
    for seed in 0..24 {
        if let Some(d) = run_seed(seed, &cfg) {
            caught = Some(d);
            break;
        }
    }
    let d = caught.expect("no seed exposed the dropped write barrier");
    assert!(!d.trace.is_empty());
    assert!(
        d.trace.len() < cfg.ops,
        "trace was not minimized: {} ops",
        d.trace.len()
    );
}

/// Corrupting the copied-bytes accounting must trip the
/// `check_inspection` copy/scan invariant at the first collection.
#[test]
fn skewed_copied_accounting_is_caught() {
    let cfg = TortureConfig {
        fault: Some(Fault::SkewCopied),
        ..smoke_config()
    };
    let mut caught = None;
    for seed in 0..8 {
        if let Some(d) = run_seed(seed, &cfg) {
            caught = Some(d);
            break;
        }
    }
    let d = caught.expect("no seed reached a collection");
    assert!(
        d.detail.contains("copy/scan accounting"),
        "unexpected detail: {}",
        d.detail
    );
    assert!(
        d.trace.len() < cfg.ops,
        "trace was not minimized: {} ops",
        d.trace.len()
    );

    // The failure report's telemetry replay: re-running the minimized
    // trace on the failing lane with the recorder attached must yield a
    // schema-valid JSONL event stream under the replay header, whose
    // event/drop accounting makes ring truncation detectable.
    let replay = failure_telemetry(&d, &cfg);
    let (header, jsonl) = replay
        .split_once('\n')
        .expect("replay has a header line and a body");
    assert!(
        header.starts_with("--- telemetry replay (") && header.ends_with(" dropped) ---"),
        "unexpected replay header: {header}"
    );
    let counts = header
        .trim_start_matches("--- telemetry replay (")
        .trim_end_matches(" dropped) ---")
        .split_once(" events, ")
        .expect("header carries `N events, M dropped`");
    let events: usize = counts.0.parse().expect("event count is a number");
    let dropped: u64 = counts.1.parse().expect("drop count is a number");
    assert_eq!(dropped, 0, "the smoke trace cannot overflow a 64K ring");
    let lines = tilgc_obs::schema::validate_jsonl(jsonl).expect("replay JSONL validates");
    assert!(lines >= 1, "replay is at least a meta line");
    assert_eq!(lines, events + 1, "JSONL body is the events plus meta");
}

/// The fault-tolerance injections: a seed-derived worker panic, stall,
/// or packet drop on every parallel lane must be absorbed — packet
/// requeued or section degraded to the serial drain — leaving the
/// lockstep graph diff against the serial oracle silent.
#[test]
fn worker_faults_are_absorbed_in_lockstep() {
    for fault in [Fault::WorkerPanic, Fault::WorkerStall, Fault::PacketDrop] {
        let cfg = TortureConfig {
            workers: 4,
            fault: Some(fault),
            ..smoke_config()
        };
        for seed in [0, 1, 2, 17, 42] {
            if let Some(d) = run_seed(seed, &cfg) {
                panic!("{fault:?} was not absorbed:\n{d}");
            }
        }
    }
}

/// Worker faults on a serial configuration are inert by definition
/// (`workers = 1` never takes the parallel lane): the sweep must be
/// exactly as clean as a fault-free one.
#[test]
fn worker_faults_are_inert_on_serial_lanes() {
    let cfg = TortureConfig {
        fault: Some(Fault::WorkerPanic),
        ..smoke_config()
    };
    for seed in [0, 3] {
        if let Some(d) = run_seed(seed, &cfg) {
            panic!("inert fault produced a divergence:\n{d}");
        }
    }
}
