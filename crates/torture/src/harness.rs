//! The differential lockstep executor.
//!
//! One seeded [`VmOp`] program is stepped, op by op, against a VM per
//! collector plan. After every op:
//!
//! * any lane whose collection counter advanced is verified — the
//!   shadow-tag graph walk ([`verify_collection`]) checks every reachable
//!   pointer and cross-checks the plan's [`CollectionInspection`] record
//!   (reuse bound, frame accounting, copy/scan accounting, live-size
//!   bound);
//! * periodically (and always after a collection, and at program end)
//!   the mutator-visible reachable graph of every lane is canonicalized
//!   ([`vm_snapshot`]) and diffed against the first lane's.
//!
//! Any mismatch or oracle panic becomes a [`Divergence`] carrying the
//! seed, the op index and the trace; [`run_seed`] then minimizes the
//! trace with the greedy deletion shrinker before reporting.
//!
//! [`CollectionInspection`]: tilgc_runtime::CollectionInspection

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

use tilgc_core::{
    build_vm, check_inspection, verify_collection, verify_vm, vm_snapshot, AdaptiveConfig,
    CollectorKind, GcConfig, PretenurePolicy, WorkerFaultKind, WorkerFaultSpec,
};
use tilgc_mem::WORD_BYTES;
use tilgc_runtime::driver::{arr_site_id, raw_site_id, rec_site_id, PTR_FREE_REC_INDEX};
use tilgc_runtime::{OpDriver, StepOutcome, Vm, VmOp, WriteBarrier};

use crate::program::generate;
use crate::shrink::minimize;

/// A deliberately injected defect, for validating that the harness
/// actually catches what it claims to catch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Disable the write barrier on every generational lane: old-to-young
    /// stores go unrecorded, so a minor collection loses reachable young
    /// objects — the shadow-tag oracle or the cross-plan diff must trip.
    DropBarrier,
    /// Corrupt the copied-bytes accounting of each collection's
    /// inspection record before cross-checking it — the copy/scan
    /// accounting invariant must trip.
    SkewCopied,
    /// Force allocation attempts to fail at a seed-derived op index (two
    /// forced failures per lane, enough to exhaust the ordinary slow
    /// path and drive the heap-pressure ladder). The run must end in a
    /// typed outcome — a caught `HeapOverflow` or a clean
    /// `VmExit::OutOfMemory` — never a panic.
    OomAlloc,
    /// Perturb the parallel scheduler: packets are deterministically
    /// permuted and odd-numbered workers drain the shared queue LIFO.
    /// Unlike the other faults this is *not* a defect — the scheduler
    /// contract says packet order is invisible, so the expected outcome
    /// is a clean run; any divergence it surfaces is a real scheduler
    /// bug (hidden ordering dependence). No-op on serial lanes.
    PacketReorder,
    /// Arm a seed-derived single-shot worker panic on every parallel
    /// lane (the targeted worker panics inside the packet loop). The
    /// fault-tolerance contract says the panic must be isolated — the
    /// packet requeued, the section degraded to the serial drain — so
    /// the expected outcome is a clean run whose graphs still match the
    /// serial oracle's. No-op on serial lanes.
    WorkerPanic,
    /// Arm a seed-derived single-shot worker stall: the targeted worker
    /// parks and stops responding until the watchdog's wall-clock
    /// backstop marks it lost. Expected outcome: clean, oracle-matching
    /// run (via requeue + degradation). No-op on serial lanes.
    WorkerStall,
    /// Arm a seed-derived single-shot packet drop: the targeted worker
    /// silently skips one packet, which must resurface as an orphan and
    /// drain on the serial path. Expected outcome: clean,
    /// oracle-matching run. No-op on serial lanes.
    PacketDrop,
}

impl Fault {
    /// The worker-fault kind this injection arms in [`GcConfig`], if it
    /// is one of the fault-tolerance injections.
    fn worker_fault_kind(self) -> Option<WorkerFaultKind> {
        match self {
            Fault::WorkerPanic => Some(WorkerFaultKind::Panic),
            Fault::WorkerStall => Some(WorkerFaultKind::Stall),
            Fault::PacketDrop => Some(WorkerFaultKind::Drop),
            _ => None,
        }
    }
}

/// One torture run's parameters.
#[derive(Clone, Debug)]
pub struct TortureConfig {
    /// Program length in ops.
    pub ops: usize,
    /// Total heap budget per lane.
    pub heap_budget_bytes: usize,
    /// Nursery size — small values force frequent minor collections.
    pub nursery_bytes: usize,
    /// Large-object threshold — small values route the bigger pointer
    /// and raw arrays through the mark-sweep space.
    pub large_object_bytes: usize,
    /// The plans to run in lockstep (first is the diff baseline).
    pub plans: Vec<CollectorKind>,
    /// Diff the cross-plan snapshots every this many ops (collections
    /// and program end always trigger a diff).
    pub check_stride: usize,
    /// Optional injected defect.
    pub fault: Option<Fault>,
    /// Parallel GC worker count. With `workers > 1` every plan runs
    /// *two* lanes in lockstep — the serial oracle and an N-worker lane
    /// — and the cross-lane graph diff covers both.
    pub workers: usize,
    /// Run extra pretenure lanes with the online adaptive policy
    /// enabled, in lockstep with the static-policy oracle lanes. Sites
    /// flip placement mid-run; the reachable graph must not care.
    pub adaptive: bool,
    /// Pinned op index for the [`Fault::OomAlloc`] injection. `None`
    /// (the default) derives it from the seed and the *current* program
    /// length; the shrinker pins it to the index derived from the
    /// original program so chunk-halving cannot move the fault out from
    /// under the failure it is minimizing. The worker-fault injections
    /// need no pin — their `(worker, packet)` coordinates are derived
    /// from the seed alone, independent of trace length.
    pub fault_pin: Option<usize>,
}

impl Default for TortureConfig {
    fn default() -> TortureConfig {
        TortureConfig {
            ops: 512,
            heap_budget_bytes: 1 << 20,
            nursery_bytes: 4 << 10,
            large_object_bytes: 48,
            plans: CollectorKind::ALL.to_vec(),
            check_stride: 16,
            fault: None,
            workers: 1,
            adaptive: false,
            fault_pin: None,
        }
    }
}

/// A reproduced cross-plan divergence or oracle failure.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// The program seed.
    pub seed: u64,
    /// Index of the op being (or just) executed when the failure fired.
    pub op_index: usize,
    /// Label of the plan that failed or diverged.
    pub plan: &'static str,
    /// Worker count of the failing lane (1 = the serial oracle).
    pub workers: usize,
    /// Whether the failing lane ran the online adaptive policy.
    pub adaptive: bool,
    /// What went wrong.
    pub detail: String,
    /// The trace that reproduces the failure (minimized by
    /// [`run_seed`], full-length from [`run_ops`]).
    pub trace: Vec<VmOp>,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "seed {}: plan {}{} (workers {}) failed at op {}: {}",
            self.seed,
            self.plan,
            if self.adaptive { " (adaptive)" } else { "" },
            self.workers,
            self.op_index,
            self.detail
        )?;
        writeln!(f, "reproducing trace ({} ops):", self.trace.len())?;
        for (i, op) in self.trace.iter().enumerate() {
            writeln!(f, "  [{i:4}] {op:?}")?;
        }
        Ok(())
    }
}

/// One plan's VM plus its driver state.
struct Lane {
    kind: CollectorKind,
    workers: usize,
    adaptive: bool,
    vm: Vm,
    driver: OpDriver,
}

fn build_lane(
    seed: u64,
    kind: CollectorKind,
    workers: usize,
    adaptive: bool,
    cfg: &TortureConfig,
) -> Lane {
    let mut gc = GcConfig::new()
        .heap_budget_bytes(cfg.heap_budget_bytes)
        .nursery_bytes(cfg.nursery_bytes)
        .large_object_bytes(cfg.large_object_bytes)
        .workers(workers);
    if cfg.fault == Some(Fault::PacketReorder) {
        gc = gc.packet_reorder(true);
    }
    if workers > 1 {
        if let Some(fault_kind) = cfg.fault.and_then(Fault::worker_fault_kind) {
            gc = gc.worker_fault(worker_fault_spec(seed, workers, fault_kind));
            if fault_kind == WorkerFaultKind::Stall {
                // A short wall-clock deadline keeps the one-shot stall
                // cheap across a wide seed sweep; correctness does not
                // depend on the value.
                gc = gc.watchdog_ms(5);
            }
        }
    }
    if kind == CollectorKind::GenerationalStackPretenure {
        // Pretenure a spread of the driver's sites: two pointer-carrying
        // record sites, the pointer-free record site (the §7.2 no-scan
        // candidate), one pointer-array site and one raw-array site.
        let mut policy = PretenurePolicy::new();
        policy.add_site(rec_site_id(1));
        policy.add_site(rec_site_id(3));
        policy.add_site(rec_site_id(PTR_FREE_REC_INDEX));
        policy.add_no_scan_site(rec_site_id(PTR_FREE_REC_INDEX));
        policy.add_site(arr_site_id(1));
        policy.add_site(raw_site_id(1));
        gc = gc.pretenure(policy);
        if adaptive {
            // The online policy starts from the same static seed the
            // oracle lane keeps, then flips sites as survival evidence
            // accumulates — exercising mid-run placement changes under
            // the full op mix.
            gc = gc.adaptive(AdaptiveConfig::default());
        }
    }
    let mut vm = build_vm(kind, &gc);
    if cfg.fault == Some(Fault::DropBarrier) && kind != CollectorKind::Semispace {
        vm.mutator_mut().barrier = WriteBarrier::None;
    }
    let driver = OpDriver::install(&mut vm);
    Lane {
        kind,
        workers,
        adaptive,
        vm,
        driver,
    }
}

fn panic_msg(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Silences the default panic hook for the guard's lifetime: the harness
/// converts oracle panics into [`Divergence`]s via `catch_unwind`, and a
/// shrink run replays hundreds of expected failures.
struct QuietPanics {
    prev: Option<PanicHook>,
}

/// The boxed hook type `std::panic::take_hook` returns.
type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send + 'static>;

impl QuietPanics {
    fn new() -> QuietPanics {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        QuietPanics { prev: Some(prev) }
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            std::panic::set_hook(prev);
        }
    }
}

fn diverge(seed: u64, op_index: usize, lane: &Lane, detail: String, ops: &[VmOp]) -> Divergence {
    Divergence {
        seed,
        op_index,
        plan: lane.kind.label(),
        workers: lane.workers,
        adaptive: lane.adaptive,
        detail,
        trace: ops.to_vec(),
    }
}

/// Snapshot every lane and diff against the first; `None` means all
/// lanes agree on the reachable graph.
fn diff_lanes(seed: u64, op_index: usize, lanes: &[Lane], ops: &[VmOp]) -> Option<Divergence> {
    let mut base: Option<(&'static str, Vec<u64>)> = None;
    for lane in lanes {
        let snap = match catch_unwind(AssertUnwindSafe(|| vm_snapshot(&lane.vm))) {
            Ok(snap) => snap,
            Err(p) => {
                return Some(diverge(
                    seed,
                    op_index,
                    lane,
                    format!("snapshot walk panicked: {}", panic_msg(&*p)),
                    ops,
                ))
            }
        };
        match &base {
            None => base = Some((lane.kind.label(), snap)),
            Some((base_label, base_snap)) => {
                if snap != *base_snap {
                    return Some(diverge(
                        seed,
                        op_index,
                        lane,
                        format!(
                            "reachable graph diverged from {} ({} vs {} snapshot words)",
                            base_label,
                            snap.len(),
                            base_snap.len()
                        ),
                        ops,
                    ));
                }
            }
        }
    }
    None
}

/// SplitMix64 finalizer — derives the [`Fault::OomAlloc`] injection
/// point and the worker-fault coordinates from the seed, independent of
/// the program generator's stream.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Seed-derived `(worker, packet)` coordinates for the fault-tolerance
/// injections. Depends only on the seed and the worker count — never on
/// the trace — so the spec survives trace minimization unchanged. The
/// packet ordinal is kept small (a worker's first few pops) so the
/// fault actually fires on the short packet queues the tiny torture
/// nurseries produce; a seed whose targeted worker never pops simply
/// leaves the spec armed and inert, which must also be clean.
fn worker_fault_spec(seed: u64, workers: usize, kind: WorkerFaultKind) -> WorkerFaultSpec {
    let h = splitmix(seed ^ 0xFA17_u64);
    WorkerFaultSpec {
        kind,
        worker: (h % workers as u64) as usize,
        packet: (splitmix(h) % 3) as usize,
    }
}

/// How a lockstep replay ended.
#[derive(Clone, Debug)]
pub enum RunOutcome {
    /// Every op ran; no lane saw heap exhaustion.
    Clean,
    /// A lane hit heap exhaustion but stayed panic-free: either the
    /// guest caught the `HeapOverflow` (`fatal: false`) or the VM exited
    /// with a typed `VmExit::OutOfMemory` (`fatal: true`). Cross-plan
    /// diffing stops at the first exhaustion — an out-of-memory lane's
    /// graph legitimately differs from the others'.
    Oom {
        /// Label of the first lane that exhausted.
        plan: &'static str,
        /// Op index at which it exhausted.
        op_index: usize,
        /// Whether the exhaustion terminated the VM (uncaught raise).
        fatal: bool,
    },
    /// A panic, oracle failure, or cross-plan divergence.
    Diverged(Divergence),
}

/// Replays `ops` against every configured plan in lockstep and reports
/// how the run ended. The trace inside a [`RunOutcome::Diverged`] is
/// `ops` itself (unminimized).
pub fn run_ops_outcome(seed: u64, ops: &[VmOp], cfg: &TortureConfig) -> RunOutcome {
    assert!(!cfg.plans.is_empty(), "at least one plan required");
    assert!(cfg.workers >= 1, "worker count must be positive");
    // With workers > 1, every plan contributes a serial-oracle lane AND
    // an N-worker lane; the graph diff then covers serial-vs-parallel
    // within each plan as well as the cross-plan comparison.
    let mut lanes: Vec<Lane> = Vec::new();
    for &k in &cfg.plans {
        lanes.push(build_lane(seed, k, 1, false, cfg));
        if cfg.workers > 1 {
            lanes.push(build_lane(seed, k, cfg.workers, false, cfg));
        }
        // Adaptive lanes run alongside the static-policy oracle lanes
        // (serial, plus parallel when configured): placement flips must
        // be invisible to the reachable graph, so the same cross-lane
        // diff covers them.
        if cfg.adaptive && k == CollectorKind::GenerationalStackPretenure {
            lanes.push(build_lane(seed, k, 1, true, cfg));
            if cfg.workers > 1 {
                lanes.push(build_lane(seed, k, cfg.workers, true, cfg));
            }
        }
    }
    let stride = cfg.check_stride.max(1);
    let inject_at = (cfg.fault == Some(Fault::OomAlloc) && !ops.is_empty()).then(|| {
        cfg.fault_pin
            .unwrap_or_else(|| (splitmix(seed) % ops.len() as u64) as usize)
    });
    let mut oom: Option<(&'static str, usize, bool)> = None;
    'program: for (i, &op) in ops.iter().enumerate() {
        if Some(i) == inject_at {
            for lane in &mut lanes {
                // Two forced failures: one for the fast path, one for
                // the ordinary slow-path retry — the third attempt is
                // real, so the pressure ladder decides the outcome.
                lane.vm.mutator_mut().force_alloc_failures = 2;
            }
        }
        let mut collected = false;
        for lane in &mut lanes {
            let collections_before = lane.vm.gc_stats().collections;
            let alloc_before = lane.vm.mutator_stats().alloc_bytes;
            let stepped = catch_unwind(AssertUnwindSafe(|| lane.driver.step(&mut lane.vm, op)));
            match stepped {
                Err(p) => {
                    return RunOutcome::Diverged(diverge(
                        seed,
                        i,
                        lane,
                        format!("panic executing {op:?}: {}", panic_msg(&*p)),
                        ops,
                    ));
                }
                Ok(Err(_exit)) => {
                    // Typed out-of-memory termination: the graceful end
                    // state the governor guarantees. The lane's VM is
                    // done; end the seed for every lane.
                    oom.get_or_insert((lane.kind.label(), i, true));
                    break 'program;
                }
                Ok(Ok(StepOutcome::OomCaught)) => {
                    // The guest's handler caught the overflow and the
                    // lane keeps running — but its graph now (correctly)
                    // differs from lanes that did not exhaust, so stop
                    // cross-plan diffing.
                    oom.get_or_insert((lane.kind.label(), i, false));
                }
                Ok(Ok(StepOutcome::Ran)) => {}
            }
            if lane.vm.gc_stats().collections == collections_before {
                continue;
            }
            collected = true;
            // An op performs at most one allocation, and an
            // allocation-triggered collection runs before the object is
            // materialized — so this op's whole allocation delta postdates
            // the collection and bounds the oracle's slack.
            let slack = lane.vm.mutator_stats().alloc_bytes - alloc_before;
            let verified = catch_unwind(AssertUnwindSafe(|| {
                verify_collection(&lane.vm, slack);
            }));
            if let Err(p) = verified {
                return RunOutcome::Diverged(diverge(
                    seed,
                    i,
                    lane,
                    format!("oracle check failed after collection: {}", panic_msg(&*p)),
                    ops,
                ));
            }
            if cfg.fault == Some(Fault::SkewCopied) {
                if let Some(d) = skewed_accounting_check(seed, i, lane, slack, ops) {
                    return RunOutcome::Diverged(d);
                }
            }
        }
        if oom.is_none() && (collected || (i + 1) % stride == 0 || i + 1 == ops.len()) {
            if let Some(d) = diff_lanes(seed, i, &lanes, ops) {
                return RunOutcome::Diverged(d);
            }
        }
    }
    match oom {
        Some((plan, op_index, fatal)) => RunOutcome::Oom {
            plan,
            op_index,
            fatal,
        },
        None => RunOutcome::Clean,
    }
}

/// Replays `ops` against every configured plan in lockstep and returns
/// the first failure, if any. Heap exhaustion (caught or typed-fatal) is
/// not a failure — see [`run_ops_outcome`] for the full report.
pub fn run_ops(seed: u64, ops: &[VmOp], cfg: &TortureConfig) -> Option<Divergence> {
    match run_ops_outcome(seed, ops, cfg) {
        RunOutcome::Diverged(d) => Some(d),
        RunOutcome::Clean | RunOutcome::Oom { .. } => None,
    }
}

/// The [`Fault::SkewCopied`] injection: re-run the inspection cross-check
/// with the copied-bytes figure corrupted past what the scan accounting
/// can justify. [`check_inspection`] MUST panic; the "divergence" it
/// reports is the harness catching the planted bug (so the shrinker has
/// a failure to minimize). Not panicking means the oracle is toothless —
/// reported as a divergence too, with a distinct detail.
fn skewed_accounting_check(
    seed: u64,
    op_index: usize,
    lane: &Lane,
    slack: u64,
    ops: &[VmOp],
) -> Option<Divergence> {
    let insp = lane.vm.collector().last_inspection()?;
    let mut bad = *insp;
    bad.copied_bytes = bad.scanned_words * WORD_BYTES as u64 + WORD_BYTES as u64;
    let report = verify_vm(&lane.vm);
    match catch_unwind(AssertUnwindSafe(|| check_inspection(&report, &bad, slack))) {
        Err(p) => Some(diverge(
            seed,
            op_index,
            lane,
            format!("injected accounting skew caught: {}", panic_msg(&*p)),
            ops,
        )),
        Ok(()) => Some(diverge(
            seed,
            op_index,
            lane,
            "injected accounting skew NOT caught by check_inspection".to_string(),
            ops,
        )),
    }
}

/// Replays a divergence's trace on the failing plan alone with the
/// telemetry recorder attached and returns the collection event stream
/// as JSONL, ready to append to a failure report. The replay stops where
/// the original failure panics (expected — the trace reproduces a
/// defect), keeping every event recorded up to that point.
///
/// Telemetry is recorded host-side only and charges no simulated cycles,
/// so the replayed lane's collection timeline is exactly the failing
/// run's.
pub fn failure_telemetry(d: &Divergence, cfg: &TortureConfig) -> String {
    let Some(kind) = CollectorKind::ALL
        .iter()
        .copied()
        .find(|k| k.label() == d.plan)
    else {
        return format!(
            "--- telemetry replay (0 events, 0 dropped) ---\nunknown plan {:?}\n",
            d.plan
        );
    };
    let _quiet = QuietPanics::new();
    let mut lane = build_lane(d.seed, kind, d.workers.max(1), d.adaptive, cfg);
    lane.vm
        .set_recorder(Box::new(tilgc_obs::RingRecorder::with_capacity(1 << 16)));
    for &op in &d.trace {
        let stepped = catch_unwind(AssertUnwindSafe(|| lane.driver.step(&mut lane.vm, op)));
        match stepped {
            Ok(Ok(_)) => {}
            // A panic or a typed out-of-memory exit both end the replay;
            // everything recorded so far is kept.
            Ok(Err(_)) | Err(_) => break,
        }
    }
    let events =
        tilgc_obs::RingRecorder::drain_events_from(lane.vm.recorder_mut()).unwrap_or_default();
    // The drop count makes a truncated replay detectable: a nonzero
    // figure means the ring wrapped and the JSONL below starts mid-run.
    let dropped = match lane
        .vm
        .recorder_mut()
        .as_any_mut()
        .downcast_mut::<tilgc_obs::RingRecorder>()
    {
        Some(r) => r.dropped(),
        None => 0,
    };
    let sites: Vec<(u16, String)> = lane
        .vm
        .mutator()
        .sites
        .iter()
        .map(|(id, name)| (id.get(), name.to_string()))
        .collect();
    let clock_hz = tilgc_runtime::CostModel::default().clock_hz;
    let mut out = format!(
        "--- telemetry replay ({} events, {dropped} dropped) ---\n",
        events.len()
    );
    out.push_str(&tilgc_obs::jsonl::render(
        kind.label(),
        "torture",
        clock_hz,
        &sites,
        &events,
    ));
    out
}

/// Result of a [`budget_sweep`]: the smallest heap budget (within the
/// probed range) under which the seed's program runs to completion with
/// no lane exhausting.
#[derive(Clone, Copy, Debug)]
pub struct SweepReport {
    /// The program seed swept.
    pub seed: u64,
    /// Smallest surviving budget found by the binary search, or `None`
    /// if even the configured ceiling (`cfg.heap_budget_bytes`)
    /// exhausts.
    pub minimal_budget_bytes: Option<usize>,
    /// How many lockstep replays the search spent.
    pub probes: usize,
}

/// Smallest budget the sweep will probe. Below this the nursery clamp
/// dominates and every plan exhausts on the first bursts.
pub const SWEEP_FLOOR_BYTES: usize = 8 << 10;

/// Binary-searches the minimal heap budget (in `SWEEP_FLOOR_BYTES ..=
/// cfg.heap_budget_bytes`) under which seed `seed`'s program survives on
/// every plan — mapping the graceful-degradation frontier rather than
/// assuming one budget fits all seeds. Survival is monotone in the
/// budget for these append-mostly programs, which is what makes the
/// bisection sound. A cross-plan divergence or oracle panic during any
/// probe is a real bug and aborts the sweep.
pub fn budget_sweep(seed: u64, cfg: &TortureConfig) -> Result<SweepReport, Divergence> {
    let _quiet = QuietPanics::new();
    let ops = generate(seed, cfg.ops);
    let mut probes = 0usize;
    let mut probe = |budget: usize| -> Result<bool, Divergence> {
        probes += 1;
        let mut probe_cfg = cfg.clone();
        probe_cfg.heap_budget_bytes = budget;
        probe_cfg.fault = None;
        match run_ops_outcome(seed, &ops, &probe_cfg) {
            RunOutcome::Clean => Ok(true),
            RunOutcome::Oom { .. } => Ok(false),
            RunOutcome::Diverged(d) => Err(d),
        }
    };
    let ceiling = cfg.heap_budget_bytes.max(SWEEP_FLOOR_BYTES);
    if !probe(ceiling)? {
        return Ok(SweepReport {
            seed,
            minimal_budget_bytes: None,
            probes,
        });
    }
    let (mut lo, mut hi) = (SWEEP_FLOOR_BYTES, ceiling);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if probe(mid)? {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Ok(SweepReport {
        seed,
        minimal_budget_bytes: Some(lo),
        probes,
    })
}

/// Generates, runs, and — on failure — minimizes one seed. Returns the
/// divergence with its minimized reproducing trace, or `None` for a
/// clean run.
pub fn run_seed(seed: u64, cfg: &TortureConfig) -> Option<Divergence> {
    let _quiet = QuietPanics::new();
    let ops = generate(seed, cfg.ops);
    let full = run_ops(seed, &ops, cfg)?;
    // Pin the seed-derived injection point to the *original* program
    // length before shrinking: without the pin, every chunk deletion
    // would recompute `splitmix(seed) % len` against the shorter
    // candidate and the fault would wander — the shrinker would then be
    // minimizing a different failure each probe (or none at all). The
    // worker-fault specs are trace-length-independent and need no pin.
    let mut shrink_cfg = cfg.clone();
    if cfg.fault == Some(Fault::OomAlloc) && cfg.fault_pin.is_none() && !ops.is_empty() {
        shrink_cfg.fault_pin = Some((splitmix(seed) % ops.len() as u64) as usize);
    }
    let min = minimize(&ops, |cand| run_ops(seed, cand, &shrink_cfg).is_some());
    // Re-run the minimized trace so op index and detail describe it, not
    // the original program.
    Some(run_ops(seed, &min, &shrink_cfg).unwrap_or(full))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_start_identical() {
        let cfg = TortureConfig::default();
        let lanes: Vec<Lane> = cfg
            .plans
            .iter()
            .map(|&k| build_lane(0, k, 1, false, &cfg))
            .collect();
        assert!(diff_lanes(0, 0, &lanes, &[]).is_none());
    }

    #[test]
    fn divergence_display_includes_trace() {
        let d = Divergence {
            seed: 9,
            op_index: 1,
            plan: "semispace",
            workers: 4,
            adaptive: true,
            detail: "boom".into(),
            trace: vec![VmOp::Gc, VmOp::Pop],
        };
        let s = d.to_string();
        assert!(s.contains("seed 9"));
        assert!(s.contains("(adaptive)"));
        assert!(s.contains("workers 4"));
        assert!(s.contains("Gc"));
        assert!(s.contains("Pop"));
    }

    #[test]
    fn adaptive_config_adds_pretenure_lanes() {
        let cfg = TortureConfig {
            adaptive: true,
            workers: 2,
            ops: 64,
            ..TortureConfig::default()
        };
        // 4 plans × (serial + parallel) + pretenure × (serial + parallel)
        // adaptive lanes. A short clean run proves the lanes coexist.
        let ops = crate::program::generate(7, cfg.ops);
        assert!(matches!(
            run_ops_outcome(7, &ops, &cfg),
            RunOutcome::Clean | RunOutcome::Oom { .. }
        ));
    }
}
