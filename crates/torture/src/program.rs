//! Seeded random-program generation over the runtime's [`VmOp`]
//! instruction set.
//!
//! The weights skew toward allocation and pointer traffic (the
//! collector-stressing ops) while keeping every instruction reachable:
//! deep push/pop bursts cross the paper's every-25th-frame markers,
//! handler installs plus raises drive the watermark below intact markers,
//! and register ops force scans to thread pointerness through
//! callee-save frame effects.

use tilgc_runtime::VmOp;

use crate::rng::Rng;

/// Generates the `len`-op program for `seed`. Pure function of its
/// arguments — the same seed always yields the same program.
pub fn generate(seed: u64, len: usize) -> Vec<VmOp> {
    let mut rng = Rng::new(seed);
    (0..len).map(|_| random_op(&mut rng)).collect()
}

fn random_op(rng: &mut Rng) -> VmOp {
    match rng.below(40) {
        0..=7 => VmOp::AllocRecord {
            site: rng.byte(),
            dst: rng.byte(),
            src_a: rng.byte(),
            src_b: rng.byte(),
            tag: rng.byte() as i8,
        },
        8..=10 => VmOp::AllocPtrArray {
            site: rng.byte(),
            dst: rng.byte(),
            init: rng.byte(),
            len: rng.byte(),
        },
        11..=12 => VmOp::AllocRawArray {
            site: rng.byte(),
            dst: rng.byte(),
            len: rng.byte(),
        },
        13..=16 => VmOp::StorePtr {
            obj: rng.byte(),
            field: rng.byte(),
            val: rng.byte(),
        },
        17..=18 => VmOp::StoreInt {
            obj: rng.byte(),
            field: rng.byte(),
            val: rng.byte() as i8,
        },
        19..=21 => VmOp::LoadPtr {
            obj: rng.byte(),
            field: rng.byte(),
            dst: rng.byte(),
        },
        22..=23 => VmOp::RegSet {
            reg: rng.byte(),
            src: rng.byte(),
        },
        24..=25 => VmOp::RegGet {
            reg: rng.byte(),
            dst: rng.byte(),
        },
        26..=28 => VmOp::Push { kind: rng.byte() },
        29..=30 => VmOp::PushMany {
            kind: rng.byte(),
            n: rng.byte(),
        },
        31..=33 => VmOp::Pop,
        34..=35 => VmOp::PopMany { n: rng.byte() },
        36 => VmOp::PushHandler,
        37 => VmOp::Raise,
        38 => VmOp::Gc,
        _ => VmOp::GcMajor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate(3, 128), generate(3, 128));
        assert_ne!(generate(3, 128), generate(4, 128));
    }

    #[test]
    fn every_op_kind_appears_across_seeds() {
        let mut seen = [false; 16];
        for seed in 0..32 {
            for op in generate(seed, 256) {
                let idx = match op {
                    VmOp::AllocRecord { .. } => 0,
                    VmOp::AllocPtrArray { .. } => 1,
                    VmOp::AllocRawArray { .. } => 2,
                    VmOp::StorePtr { .. } => 3,
                    VmOp::StoreInt { .. } => 4,
                    VmOp::LoadPtr { .. } => 5,
                    VmOp::RegSet { .. } => 6,
                    VmOp::RegGet { .. } => 7,
                    VmOp::Push { .. } => 8,
                    VmOp::PushMany { .. } => 9,
                    VmOp::Pop => 10,
                    VmOp::PopMany { .. } => 11,
                    VmOp::PushHandler => 12,
                    VmOp::Raise => 13,
                    VmOp::Gc => 14,
                    VmOp::GcMajor => 15,
                };
                seen[idx] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "op kinds missing: {seen:?}");
    }
}
