//! The `torture` binary: wide-sweep driver for the differential GC
//! torture harness.
//!
//! ```text
//! torture [--seeds A..B|N] [--ops N] [--plans L,L,...] [--stride N]
//!         [--nursery-sweep] [--inject drop-barrier|skew-copied]
//!         [--failure-out PATH]
//! ```
//!
//! Exit status: 0 all runs clean, 1 a divergence was found (printed,
//! minimized, and optionally written to `--failure-out`), 2 usage error.
//! The failure report carries a telemetry replay of the failing lane —
//! the minimized trace re-run with the event recorder attached, its
//! per-collection event stream appended as JSONL.

use std::ops::Range;
use std::path::PathBuf;
use std::process::ExitCode;

use tilgc_core::CollectorKind;
use tilgc_torture::{failure_telemetry, run_seed, Fault, TortureConfig};

const USAGE: &str = "usage: torture [options]
  --seeds A..B | N     seed range (default 0..50; N means 0..N)
  --ops N              ops per generated program (default 512)
  --plans L,L,...      plan labels to run in lockstep (default all four:
                       semispace,generational,gen+markers,gen+markers+pretenure)
  --stride N           diff cross-plan snapshots every N ops (default 16)
  --nursery-sweep      repeat the sweep at 2 KB, 4 KB and 16 KB nurseries
  --inject FAULT       plant a defect the harness must catch:
                       drop-barrier | skew-copied
  --failure-out PATH   write the minimized failure report to PATH
  --help               this text";

struct Args {
    seeds: Range<u64>,
    ops: usize,
    plans: Vec<CollectorKind>,
    stride: usize,
    nursery_sweep: bool,
    inject: Option<Fault>,
    failure_out: Option<PathBuf>,
}

fn parse_seeds(s: &str) -> Result<Range<u64>, String> {
    if let Some((a, b)) = s.split_once("..") {
        let start: u64 = a.parse().map_err(|_| format!("bad seed range: {s}"))?;
        let end: u64 = b.parse().map_err(|_| format!("bad seed range: {s}"))?;
        if start >= end {
            return Err(format!("empty seed range: {s}"));
        }
        Ok(start..end)
    } else {
        let n: u64 = s.parse().map_err(|_| format!("bad seed count: {s}"))?;
        if n == 0 {
            return Err("seed count must be positive".to_string());
        }
        Ok(0..n)
    }
}

fn parse_plans(s: &str) -> Result<Vec<CollectorKind>, String> {
    let mut plans = Vec::new();
    for label in s.split(',') {
        let kind = CollectorKind::ALL
            .into_iter()
            .find(|k| k.label() == label.trim())
            .ok_or_else(|| format!("unknown plan label: {label}"))?;
        if !plans.contains(&kind) {
            plans.push(kind);
        }
    }
    if plans.is_empty() {
        return Err("no plans selected".to_string());
    }
    Ok(plans)
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seeds: 0..50,
        ops: 512,
        plans: CollectorKind::ALL.to_vec(),
        stride: 16,
        nursery_sweep: false,
        inject: None,
        failure_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} requires a value"));
        match flag.as_str() {
            "--seeds" => args.seeds = parse_seeds(&value("--seeds")?)?,
            "--ops" => {
                args.ops = value("--ops")?
                    .parse()
                    .map_err(|_| "bad --ops value".to_string())?;
            }
            "--plans" => args.plans = parse_plans(&value("--plans")?)?,
            "--stride" => {
                args.stride = value("--stride")?
                    .parse()
                    .map_err(|_| "bad --stride value".to_string())?;
            }
            "--nursery-sweep" => args.nursery_sweep = true,
            "--inject" => {
                args.inject = Some(match value("--inject")?.as_str() {
                    "drop-barrier" => Fault::DropBarrier,
                    "skew-copied" => Fault::SkewCopied,
                    other => return Err(format!("unknown fault: {other}")),
                });
            }
            "--failure-out" => args.failure_out = Some(PathBuf::from(value("--failure-out")?)),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("torture: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let nurseries: &[usize] = if args.nursery_sweep {
        &[2 << 10, 4 << 10, 16 << 10]
    } else {
        &[4 << 10]
    };
    let n_seeds = args.seeds.end - args.seeds.start;
    let mut runs = 0u64;
    for &nursery in nurseries {
        let cfg = TortureConfig {
            ops: args.ops,
            nursery_bytes: nursery,
            plans: args.plans.clone(),
            check_stride: args.stride,
            fault: args.inject,
            ..TortureConfig::default()
        };
        eprintln!(
            "torture: nursery {} KB, seeds {}..{}, {} ops, plans [{}]{}",
            nursery >> 10,
            args.seeds.start,
            args.seeds.end,
            cfg.ops,
            cfg.plans
                .iter()
                .map(|k| k.label())
                .collect::<Vec<_>>()
                .join(", "),
            match cfg.fault {
                Some(f) => format!(", injected fault {f:?}"),
                None => String::new(),
            }
        );
        for (done, seed) in args.seeds.clone().enumerate() {
            if let Some(d) = run_seed(seed, &cfg) {
                let mut report = format!("nursery {nursery} bytes\n{d}");
                report.push_str(&failure_telemetry(&d, &cfg));
                eprintln!("torture: FAILED\n{report}");
                if let Some(path) = &args.failure_out {
                    if let Err(e) = std::fs::write(path, &report) {
                        eprintln!("torture: could not write {}: {e}", path.display());
                    } else {
                        eprintln!("torture: failure report written to {}", path.display());
                    }
                }
                return ExitCode::from(1);
            }
            runs += 1;
            if (done + 1) % 25 == 0 {
                eprintln!("torture:   {}/{} seeds clean", done + 1, n_seeds);
            }
        }
    }
    println!(
        "torture: {} runs clean ({} seeds x {} nursery sizes, {} ops each)",
        runs,
        n_seeds,
        nurseries.len(),
        args.ops
    );
    ExitCode::SUCCESS
}
