//! The `torture` binary: wide-sweep driver for the differential GC
//! torture harness.
//!
//! ```text
//! torture [--seeds A..B|N] [--ops N] [--plans L,L,...] [--stride N]
//!         [--workers N] [--nursery-sweep] [--heap-budget BYTES]
//!         [--heap-sweep]
//!         [--inject drop-barrier|skew-copied|oom-alloc|packet-reorder
//!                  |worker-panic|worker-stall|packet-drop]
//!         [--budget-sweep] [--failure-out PATH]
//! ```
//!
//! Exit status: 0 all runs clean, 1 a divergence was found (printed,
//! minimized, and optionally written to `--failure-out`), 2 usage error.
//! The failure report carries a telemetry replay of the failing lane —
//! the minimized trace re-run with the event recorder attached, its
//! per-collection event stream appended as JSONL.
//!
//! With `--inject oom-alloc`, heap exhaustion is the *expected* outcome;
//! the sweep counts clean / caught / typed-fatal endings per seed and
//! fails only on a panic or divergence. With `--budget-sweep`, each seed
//! is instead binary-searched for its minimal surviving heap budget and
//! the frontier is printed (one line per seed plus a summary).

use std::ops::Range;
use std::path::PathBuf;
use std::process::ExitCode;

use tilgc_core::CollectorKind;
use tilgc_mem::CHUNK_BYTES;
use tilgc_torture::{
    budget_sweep, failure_telemetry, generate, run_ops_outcome, run_seed, Fault, RunOutcome,
    TortureConfig,
};

const USAGE: &str = "usage: torture [options]
  --seeds A..B | N     seed range (default 0..50; N means 0..N)
  --ops N              ops per generated program (default 512)
  --plans L,L,...      plan labels to run in lockstep (default all four:
                       semispace,generational,gen+markers,gen+markers+pretenure)
  --stride N           diff cross-plan snapshots every N ops (default 16)
  --workers N          run each plan twice in lockstep: the serial oracle
                       and an N-worker parallel lane (default 1: serial only)
  --adaptive           add pretenure lanes with the online adaptive policy
                       (sites promote/demote mid-run), diffed in lockstep
                       against the static-policy oracle lanes
  --nursery-sweep      repeat the sweep at 2 KB, 4 KB and 16 KB nurseries
  --heap-budget BYTES  total heap budget per lane (default 1 MiB)
  --heap-sweep         repeat the sweep at heap budgets of 1, 2, 4 and
                       8 chunks, each one word under, exactly at, and one
                       word over the chunk boundary (side-metadata edge
                       cases); overrides --heap-budget
  --inject FAULT       plant a defect the harness must catch:
                       drop-barrier | skew-copied | oom-alloc
                       or a perturbation that must stay invisible:
                       packet-reorder | worker-panic | worker-stall |
                       packet-drop (all need --workers > 1 to bite; the
                       worker faults must be absorbed by requeue or
                       mid-cycle degradation to the serial path)
  --budget-sweep       binary-search each seed's minimal surviving heap
                       budget and print the frontier
  --failure-out PATH   write the minimized failure report to PATH
  --help               this text";

struct Args {
    seeds: Range<u64>,
    ops: usize,
    plans: Vec<CollectorKind>,
    stride: usize,
    workers: usize,
    adaptive: bool,
    nursery_sweep: bool,
    heap_budget: Option<usize>,
    heap_sweep: bool,
    inject: Option<Fault>,
    budget_sweep: bool,
    failure_out: Option<PathBuf>,
}

fn parse_seeds(s: &str) -> Result<Range<u64>, String> {
    if let Some((a, b)) = s.split_once("..") {
        let start: u64 = a.parse().map_err(|_| format!("bad seed range: {s}"))?;
        let end: u64 = b.parse().map_err(|_| format!("bad seed range: {s}"))?;
        if start >= end {
            return Err(format!("empty seed range: {s}"));
        }
        Ok(start..end)
    } else {
        let n: u64 = s.parse().map_err(|_| format!("bad seed count: {s}"))?;
        if n == 0 {
            return Err("seed count must be positive".to_string());
        }
        Ok(0..n)
    }
}

fn parse_plans(s: &str) -> Result<Vec<CollectorKind>, String> {
    let mut plans = Vec::new();
    for label in s.split(',') {
        let kind = CollectorKind::ALL
            .into_iter()
            .find(|k| k.label() == label.trim())
            .ok_or_else(|| format!("unknown plan label: {label}"))?;
        if !plans.contains(&kind) {
            plans.push(kind);
        }
    }
    if plans.is_empty() {
        return Err("no plans selected".to_string());
    }
    Ok(plans)
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seeds: 0..50,
        ops: 512,
        plans: CollectorKind::ALL.to_vec(),
        stride: 16,
        workers: 1,
        adaptive: false,
        nursery_sweep: false,
        heap_budget: None,
        heap_sweep: false,
        inject: None,
        budget_sweep: false,
        failure_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} requires a value"));
        match flag.as_str() {
            "--seeds" => args.seeds = parse_seeds(&value("--seeds")?)?,
            "--ops" => {
                args.ops = value("--ops")?
                    .parse()
                    .map_err(|_| "bad --ops value".to_string())?;
            }
            "--plans" => args.plans = parse_plans(&value("--plans")?)?,
            "--stride" => {
                args.stride = value("--stride")?
                    .parse()
                    .map_err(|_| "bad --stride value".to_string())?;
            }
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "bad --workers value".to_string())?;
                if args.workers == 0 {
                    return Err("--workers must be positive".to_string());
                }
            }
            "--adaptive" => args.adaptive = true,
            "--nursery-sweep" => args.nursery_sweep = true,
            "--heap-budget" => {
                args.heap_budget = Some(
                    value("--heap-budget")?
                        .parse()
                        .map_err(|_| "bad --heap-budget value".to_string())?,
                );
                if args.heap_budget == Some(0) {
                    return Err("--heap-budget must be positive".to_string());
                }
            }
            "--heap-sweep" => args.heap_sweep = true,
            "--inject" => {
                args.inject = Some(match value("--inject")?.as_str() {
                    "drop-barrier" => Fault::DropBarrier,
                    "skew-copied" => Fault::SkewCopied,
                    "oom-alloc" => Fault::OomAlloc,
                    "packet-reorder" => Fault::PacketReorder,
                    "worker-panic" => Fault::WorkerPanic,
                    "worker-stall" => Fault::WorkerStall,
                    "packet-drop" => Fault::PacketDrop,
                    other => return Err(format!("unknown fault: {other}")),
                });
            }
            "--budget-sweep" => args.budget_sweep = true,
            "--failure-out" => args.failure_out = Some(PathBuf::from(value("--failure-out")?)),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("torture: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let nurseries: &[usize] = if args.nursery_sweep {
        &[2 << 10, 4 << 10, 16 << 10]
    } else {
        &[4 << 10]
    };
    let heap_budgets: Vec<usize> = if args.heap_sweep {
        // 1, 2, 4 and 8 chunks, probed one word under, exactly at, and
        // one word over each boundary — the shapes that land space ends
        // on (and just past) side-metadata bitmap word edges.
        [1usize, 2, 4, 8]
            .iter()
            .flat_map(|&m| {
                let base = m * CHUNK_BYTES;
                [base - 8, base, base + 8]
            })
            .collect()
    } else {
        vec![args
            .heap_budget
            .unwrap_or(TortureConfig::default().heap_budget_bytes)]
    };
    let n_seeds = args.seeds.end - args.seeds.start;
    let mut runs = 0u64;
    for (&nursery, &heap_budget) in nurseries
        .iter()
        .flat_map(|n| heap_budgets.iter().map(move |b| (n, b)))
    {
        let cfg = TortureConfig {
            ops: args.ops,
            heap_budget_bytes: heap_budget,
            nursery_bytes: nursery,
            plans: args.plans.clone(),
            check_stride: args.stride,
            fault: args.inject,
            workers: args.workers,
            adaptive: args.adaptive,
            ..TortureConfig::default()
        };
        eprintln!(
            "torture: nursery {} KB, heap {} KB, seeds {}..{}, {} ops, plans [{}]{}{}{}",
            nursery >> 10,
            heap_budget >> 10,
            args.seeds.start,
            args.seeds.end,
            cfg.ops,
            cfg.plans
                .iter()
                .map(|k| k.label())
                .collect::<Vec<_>>()
                .join(", "),
            if cfg.workers > 1 {
                format!(", serial + {}-worker lanes", cfg.workers)
            } else {
                String::new()
            },
            if cfg.adaptive {
                ", adaptive pretenure lanes"
            } else {
                ""
            },
            match cfg.fault {
                Some(f) => format!(", injected fault {f:?}"),
                None => String::new(),
            }
        );
        if args.budget_sweep {
            match sweep_budgets(&args, &cfg) {
                Ok(()) => {
                    runs += n_seeds;
                    continue;
                }
                Err(d) => return report_failure(&args, &cfg, nursery, &d),
            }
        }
        let mut oom_clean = 0u64;
        let mut oom_caught = 0u64;
        let mut oom_fatal = 0u64;
        for (done, seed) in args.seeds.clone().enumerate() {
            // Under oom-alloc injection exhaustion is the expected
            // outcome; classify it instead of just passing the seed.
            if args.inject == Some(Fault::OomAlloc) {
                let ops = generate(seed, cfg.ops);
                match run_ops_outcome(seed, &ops, &cfg) {
                    RunOutcome::Clean => oom_clean += 1,
                    RunOutcome::Oom { fatal: false, .. } => oom_caught += 1,
                    RunOutcome::Oom { fatal: true, .. } => oom_fatal += 1,
                    RunOutcome::Diverged(full) => {
                        let d = run_seed(seed, &cfg).unwrap_or(full);
                        return report_failure(&args, &cfg, nursery, &d);
                    }
                }
            } else if let Some(d) = run_seed(seed, &cfg) {
                return report_failure(&args, &cfg, nursery, &d);
            }
            runs += 1;
            if (done + 1) % 25 == 0 {
                eprintln!("torture:   {}/{} seeds clean", done + 1, n_seeds);
            }
        }
        if args.inject == Some(Fault::OomAlloc) {
            eprintln!(
                "torture:   oom-alloc outcomes: {oom_clean} recovered clean, \
                 {oom_caught} caught by a handler, {oom_fatal} typed-fatal exits"
            );
        }
    }
    println!(
        "torture: {} runs clean ({} seeds x {} nursery sizes x {} heap budgets, {} ops each)",
        runs,
        n_seeds,
        nurseries.len(),
        heap_budgets.len(),
        args.ops
    );
    ExitCode::SUCCESS
}

/// Prints a minimized failure (with its telemetry replay), optionally
/// writes it to `--failure-out`, and returns the failing exit code.
fn report_failure(
    args: &Args,
    cfg: &TortureConfig,
    nursery: usize,
    d: &tilgc_torture::Divergence,
) -> ExitCode {
    let mut report = format!(
        "nursery {nursery} bytes, heap budget {} bytes\n{d}",
        cfg.heap_budget_bytes
    );
    report.push_str(&failure_telemetry(d, cfg));
    eprintln!("torture: FAILED\n{report}");
    if let Some(path) = &args.failure_out {
        if let Err(e) = std::fs::write(path, &report) {
            eprintln!("torture: could not write {}: {e}", path.display());
        } else {
            eprintln!("torture: failure report written to {}", path.display());
        }
    }
    ExitCode::from(1)
}

/// The `--budget-sweep` mode: per-seed minimal-surviving-budget frontier
/// (one line per seed to stdout, so CI can archive it) plus a summary.
fn sweep_budgets(args: &Args, cfg: &TortureConfig) -> Result<(), tilgc_torture::Divergence> {
    let mut min = usize::MAX;
    let mut max = 0usize;
    let mut unsurvivable = 0u64;
    let mut probes = 0usize;
    for seed in args.seeds.clone() {
        let report = budget_sweep(seed, cfg)?;
        probes += report.probes;
        match report.minimal_budget_bytes {
            Some(b) => {
                min = min.min(b);
                max = max.max(b);
                println!("budget-sweep: seed {seed}: minimal budget {b} bytes");
            }
            None => {
                unsurvivable += 1;
                println!(
                    "budget-sweep: seed {seed}: no surviving budget <= {} bytes",
                    cfg.heap_budget_bytes
                );
            }
        }
    }
    if max == 0 {
        println!("budget-sweep: no seed survives at any probed budget");
    } else {
        println!(
            "budget-sweep: frontier {min}..{max} bytes across {} seeds \
             ({unsurvivable} unsurvivable, {probes} probes)",
            args.seeds.end - args.seeds.start
        );
    }
    Ok(())
}
