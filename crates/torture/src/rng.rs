//! A tiny deterministic PRNG (splitmix64) — the harness must be
//! reproducible from a single `u64` seed and may not depend on external
//! randomness crates.

/// Splitmix64 generator. The whole torture run for a seed is a pure
/// function of this stream.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator for `seed`. Distinct small seeds (0, 1, 2, …)
    /// produce well-mixed, uncorrelated streams — splitmix64 is designed
    /// to be seeded with a counter.
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// The next 64 pseudorandom bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A pseudorandom byte.
    pub fn byte(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    /// A pseudorandom value in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        self.next_u64() % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = Rng::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = Rng::new(8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = Rng::new(0);
        for _ in 0..1000 {
            assert!(r.below(40) < 40);
        }
    }
}
