//! Greedy op-deletion trace minimization (delta-debugging style).
//!
//! Starting from the full failing program, repeatedly try deleting
//! contiguous chunks — large chunks first, halving down to single ops —
//! keeping each deletion that still reproduces the failure. The driver's
//! instruction set makes every subsequence of a valid program valid, so
//! deletion is the only shrinking operator needed.

use tilgc_runtime::VmOp;

/// Upper bound on reproduction attempts during one minimization — each
/// attempt replays the candidate against every plan, so the budget keeps
/// worst-case shrink time proportional to one torture run.
const SHRINK_BUDGET: usize = 2000;

/// Minimizes `ops` under `fails` (a predicate that replays a candidate
/// trace and reports whether the failure still reproduces). Returns a
/// subsequence of `ops` that still fails; `ops` itself is assumed to
/// fail.
pub fn minimize(ops: &[VmOp], mut fails: impl FnMut(&[VmOp]) -> bool) -> Vec<VmOp> {
    let mut cur = ops.to_vec();
    let mut budget = SHRINK_BUDGET;
    let mut chunk = (cur.len() / 2).max(1);
    loop {
        let mut progress = false;
        let mut start = 0;
        while start < cur.len() && budget > 0 {
            let end = (start + chunk).min(cur.len());
            let mut cand = Vec::with_capacity(cur.len() - (end - start));
            cand.extend_from_slice(&cur[..start]);
            cand.extend_from_slice(&cur[end..]);
            if !cand.is_empty() && {
                budget -= 1;
                fails(&cand)
            } {
                // The deletion reproduces: commit it and retry the same
                // window (which now holds different ops).
                cur = cand;
                progress = true;
            } else {
                start += chunk;
            }
        }
        if budget == 0 || (chunk == 1 && !progress) {
            return cur;
        }
        if !progress {
            chunk = (chunk / 2).max(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(tag: i8) -> VmOp {
        VmOp::AllocRecord {
            site: 0,
            dst: 0,
            src_a: 0,
            src_b: 0,
            tag,
        }
    }

    #[test]
    fn shrinks_to_the_single_culprit() {
        let ops: Vec<VmOp> = (0..100).map(|i| op(i as i8)).collect();
        // The failure "reproduces" whenever op 37 is present.
        let min = minimize(&ops, |cand| cand.contains(&op(37)));
        assert_eq!(min, vec![op(37)]);
    }

    #[test]
    fn keeps_an_interacting_pair() {
        let ops: Vec<VmOp> = (0..64).map(|i| op(i as i8)).collect();
        let min = minimize(&ops, |cand| cand.contains(&op(3)) && cand.contains(&op(60)));
        assert_eq!(min, vec![op(3), op(60)]);
    }

    #[test]
    fn preserves_order() {
        let ops: Vec<VmOp> = (0..32).map(|i| op(i as i8)).collect();
        let min = minimize(&ops, |cand| {
            let a = cand.iter().position(|&o| o == op(5));
            let b = cand.iter().position(|&o| o == op(20));
            matches!((a, b), (Some(a), Some(b)) if a < b)
        });
        assert_eq!(min, vec![op(5), op(20)]);
    }
}
