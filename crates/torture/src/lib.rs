//! Differential GC torture harness.
//!
//! Seeded random mutator programs (over the runtime's op-level
//! [`driver`](tilgc_runtime::driver)) are executed in lockstep against
//! every collector plan the paper compares. After each collection the
//! shadow-tag heap oracle verifies the reachable graph and cross-checks
//! the plan's own accounting ([`CollectionInspection`]); between ops the
//! mutator-visible heap contents of all plans are diffed. Failures are
//! minimized by greedy op deletion and reported with the seed, op index
//! and reproducing trace.
//!
//! Two entry points:
//!
//! * the `torture` binary (`cargo run -p tilgc-torture -- --seeds 0..200`)
//!   for wide sweeps — see `--help`;
//! * fixed-seed smoke tests in `tests/smoke.rs` that run on every PR.
//!
//! [`CollectionInspection`]: tilgc_runtime::CollectionInspection

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod program;
pub mod rng;
pub mod shrink;

pub use harness::{
    budget_sweep, failure_telemetry, run_ops, run_ops_outcome, run_seed, Divergence, Fault,
    RunOutcome, SweepReport, TortureConfig, SWEEP_FLOOR_BYTES,
};
pub use program::generate;
pub use rng::Rng;
pub use shrink::minimize;
