//! Figure-2-style heap-profile reports.
//!
//! Reproduces the format of the paper's Figure 2: one row per allocation
//! site (filtered to sites contributing > 1 % of allocation or copying),
//! columns for allocation volume, survival rate, average age and copying,
//! `<--` markers on rows past the `old%` cutoff, and the summary footer
//! with the targeted-site coverage.

use std::fmt::Write as _;

use tilgc_runtime::{HeapProfile, SiteRegistry};

use crate::policy::{coverage, derive_policy, PolicyOptions};

/// Options controlling the report.
#[derive(Clone, Debug, PartialEq)]
pub struct ReportOptions {
    /// Only show rows with at least this percentage of total allocation…
    pub min_alloc_percent: f64,
    /// …or at least this percentage of total copying.
    pub min_copied_percent: f64,
    /// The `old%` cutoff whose coverage the footer reports (and whose
    /// rows get the `<--` marker).
    pub old_percent_cutoff: f64,
    /// Resolve site names instead of printing bare ids.
    pub show_names: bool,
}

impl Default for ReportOptions {
    fn default() -> ReportOptions {
        ReportOptions {
            min_alloc_percent: 1.0,
            min_copied_percent: 1.0,
            old_percent_cutoff: 80.0,
            show_names: false,
        }
    }
}

/// Renders a Figure-2-style report for `profile`.
///
/// Rows are sorted like the paper's: descending allocation volume for the
/// high-allocation sites, with the surviving (`<--`) sites grouped after.
pub fn render_report(
    title: &str,
    profile: &HeapProfile,
    sites: &SiteRegistry,
    opts: &ReportOptions,
) -> String {
    let mut out = String::new();
    let total_alloc: u64 = profile.iter().map(|(_, r)| r.alloc_bytes).sum();
    let total_copied: u64 = profile.iter().map(|(_, r)| r.copied_bytes).sum();
    let pct = |num: u64, den: u64| {
        if den == 0 {
            0.0
        } else {
            100.0 * num as f64 / den as f64
        }
    };

    let _ = writeln!(out, "{:=^78}", format!(" {title} "));
    let _ = writeln!(
        out,
        "{:<18} {:>7} {:>11} {:>9} {:>6} {:>8} {:>10} {:>7}  copied/alloc",
        "site", "alloc%", "alloc size", "count", "%old", "avg age", "copied", "copied%"
    );
    let _ = writeln!(out, "{:-<100}", "");

    let mut rows: Vec<_> = profile.iter().collect();
    // Dying sites by allocation volume first, then surviving sites — the
    // visual bimodality of Figure 2.
    rows.sort_by(|(_, a), (_, b)| {
        let a_old = a.old_percent() >= opts.old_percent_cutoff;
        let b_old = b.old_percent() >= opts.old_percent_cutoff;
        a_old.cmp(&b_old).then(b.alloc_bytes.cmp(&a.alloc_bytes))
    });

    let total_entries = rows.len();
    let mut shown = 0;
    for (site, row) in rows {
        let alloc_pct = pct(row.alloc_bytes, total_alloc);
        let copied_pct = pct(row.copied_bytes, total_copied);
        if alloc_pct < opts.min_alloc_percent && copied_pct < opts.min_copied_percent {
            continue;
        }
        shown += 1;
        let marker = if row.old_percent() >= opts.old_percent_cutoff {
            "  <--"
        } else {
            ""
        };
        let label = if opts.show_names {
            sites.name(site).to_string()
        } else {
            format!("{}", site.get())
        };
        let _ = writeln!(
            out,
            "{:<18} {:>6.2}% {:>11} {:>9} {:>6.2} {:>8.1} {:>10} {:>6.2}% {:>11.2}{}",
            label,
            alloc_pct,
            row.alloc_bytes,
            row.alloc_objects,
            row.old_percent(),
            row.avg_age_kb(),
            row.copied_bytes,
            copied_pct,
            row.copy_ratio(),
            marker
        );
    }

    let _ = writeln!(out, "{:-<28} heap profile end : short {:-<28}", "", "");
    let _ = writeln!(
        out,
        "Showing only entries with alloc % > {:.2}",
        opts.min_alloc_percent
    );
    let _ = writeln!(
        out,
        "             or with copy  % > {:.2}",
        opts.min_copied_percent
    );
    let _ = writeln!(out, "{shown} of {total_entries} entries displayed.");

    let policy = derive_policy(
        profile,
        &PolicyOptions {
            old_percent_cutoff: opts.old_percent_cutoff,
            min_alloc_objects: 1,
            ..Default::default()
        },
    );
    let cov = coverage(profile, &policy);
    let _ = writeln!(
        out,
        "Using a (% old) cutoff of {:.0}%,\ntargeted sites comprise {:.2}% copied and {:.2}% \
         allocated.",
        opts.old_percent_cutoff, cov.copied_percent, cov.alloc_percent
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilgc_mem::Addr;

    fn sample() -> (HeapProfile, SiteRegistry) {
        let mut sites = SiteRegistry::new();
        let hot = sites.register("kb::subst");
        let cold = sites.register("kb::rules");
        let noise = sites.register("kb::tiny");
        let mut p = HeapProfile::new();
        let mut next = 100u32;
        for _ in 0..100 {
            let a = Addr::new(next);
            next += 10;
            p.on_alloc(a, hot, 64);
            p.on_death(a);
        }
        for _ in 0..10 {
            let a = Addr::new(next);
            next += 10;
            p.on_alloc(a, cold, 32);
            p.on_copy(a, Addr::new(next), 32, true);
            next += 10;
        }
        // One allocation from a site contributing < 1 % either way.
        p.on_alloc(Addr::new(next), noise, 8);
        (p, sites)
    }

    #[test]
    fn report_filters_marks_and_summarizes() {
        let (p, sites) = sample();
        let opts = ReportOptions {
            show_names: true,
            ..Default::default()
        };
        let report = render_report("Knuth-Bendix", &p, &sites, &opts);
        assert!(report.contains("Knuth-Bendix"));
        assert!(report.contains("kb::subst"));
        assert!(report.contains("kb::rules"));
        assert!(
            !report.contains("kb::tiny"),
            "sub-1% site filtered: {report}"
        );
        assert!(report.contains("<--"), "surviving site marked");
        assert!(report.contains("2 of 3 entries displayed."));
        assert!(report.contains("cutoff of 80%"));
        // The surviving site accounts for all copying.
        assert!(report.contains("100.00% copied"));
    }

    #[test]
    fn dying_rows_precede_surviving_rows() {
        let (p, sites) = sample();
        let opts = ReportOptions {
            show_names: true,
            ..Default::default()
        };
        let report = render_report("x", &p, &sites, &opts);
        let subst = report.find("kb::subst").unwrap();
        let rules = report.find("kb::rules").unwrap();
        assert!(subst < rules, "bimodal layout: dying sites first");
    }

    #[test]
    fn empty_profile_renders() {
        let p = HeapProfile::new();
        let sites = SiteRegistry::new();
        let report = render_report("empty", &p, &sites, &ReportOptions::default());
        assert!(report.contains("0 of 0 entries displayed."));
    }
}
