//! Deriving pretenuring policies from heap profiles (§6, §7.2).
//!
//! The paper's rule: pretenure every allocation site whose survival rate
//! (`old%`) is at least 80 %. "Considering the bimodality of the data,
//! this pretenuring policy is relatively insensitive to the particular
//! cutoff chosen." The §7.2 extension additionally classifies pretenured
//! sites whose objects were only ever observed to reference other
//! pretenured objects as *no-scan*: the pretenured-region scan can skip
//! them.

use tilgc_core::PretenurePolicy;
use tilgc_mem::SiteId;
use tilgc_runtime::HeapProfile;

/// Options for [`derive_policy`].
#[derive(Clone, Debug, PartialEq)]
pub struct PolicyOptions {
    /// Minimum `old%` for a site to be pretenured (the paper uses 80).
    pub old_percent_cutoff: f64,
    /// Ignore sites with fewer allocations than this — a site seen twice
    /// is not a statistic.
    pub min_alloc_objects: u64,
    /// Run the §7.2 analysis: mark pretenured sites whose observed
    /// outgoing edges all target pretenured sites as no-scan.
    pub derive_no_scan: bool,
    /// Group pretenured objects into per-site regions (specialized
    /// scans).
    pub group_by_site: bool,
}

impl Default for PolicyOptions {
    fn default() -> PolicyOptions {
        PolicyOptions {
            old_percent_cutoff: 80.0,
            min_alloc_objects: 4,
            derive_no_scan: false,
            group_by_site: false,
        }
    }
}

/// Derives a pretenuring policy from a heap profile.
///
/// # Example
///
/// ```
/// use tilgc_profile::{derive_policy, PolicyOptions};
/// use tilgc_runtime::HeapProfile;
/// use tilgc_mem::{Addr, SiteId};
///
/// let mut profile = HeapProfile::new();
/// // Site 1: ten objects, all survive their first collection.
/// for i in 0..10 {
///     let a = Addr::new(100 + i);
///     profile.on_alloc(a, SiteId::new(1), 16);
///     profile.on_copy(a, Addr::new(200 + i), 16, true);
/// }
/// let policy = derive_policy(&profile, &PolicyOptions::default());
/// assert!(policy.should_pretenure(SiteId::new(1)));
/// ```
pub fn derive_policy(profile: &HeapProfile, opts: &PolicyOptions) -> PretenurePolicy {
    let mut policy = PretenurePolicy::new();
    policy.group_by_site = opts.group_by_site;
    for (site, row) in profile.iter() {
        if row.alloc_objects >= opts.min_alloc_objects
            && row.old_percent() >= opts.old_percent_cutoff
        {
            policy.add_site(site);
        }
    }
    if opts.derive_no_scan {
        let no_scan: Vec<SiteId> = profile
            .iter()
            .filter(|(site, _)| policy.should_pretenure(*site))
            .filter(|(_, row)| {
                row.edges_to
                    .keys()
                    .all(|target| policy.should_pretenure(*target))
            })
            .map(|(site, _)| site)
            .collect();
        for site in no_scan {
            policy.add_no_scan_site(site);
        }
    }
    policy
}

/// What fraction of the program's copying and allocation the policy's
/// sites account for — the summary lines under each Figure 2 profile
/// ("targeted sites comprise 96.02% copied and 2.48% allocated").
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Coverage {
    /// Percentage of all copied bytes coming from targeted sites.
    pub copied_percent: f64,
    /// Percentage of all allocated bytes coming from targeted sites.
    pub alloc_percent: f64,
}

/// Computes the copied/allocated coverage of `policy` under `profile`.
pub fn coverage(profile: &HeapProfile, policy: &PretenurePolicy) -> Coverage {
    let mut total_alloc = 0u64;
    let mut total_copied = 0u64;
    let mut hit_alloc = 0u64;
    let mut hit_copied = 0u64;
    for (site, row) in profile.iter() {
        total_alloc += row.alloc_bytes;
        total_copied += row.copied_bytes;
        if policy.should_pretenure(site) {
            hit_alloc += row.alloc_bytes;
            hit_copied += row.copied_bytes;
        }
    }
    let pct = |num: u64, den: u64| {
        if den == 0 {
            0.0
        } else {
            100.0 * num as f64 / den as f64
        }
    };
    Coverage {
        copied_percent: pct(hit_copied, total_copied),
        alloc_percent: pct(hit_alloc, total_alloc),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilgc_mem::Addr;

    const LONG: SiteId = SiteId::new(1);
    const SHORT: SiteId = SiteId::new(2);
    const TINY: SiteId = SiteId::new(3);

    fn bimodal_profile() -> HeapProfile {
        let mut p = HeapProfile::new();
        let mut next = 100u32;
        // 20 long-lived objects (100 % old), edges only to LONG.
        for _ in 0..20 {
            let a = Addr::new(next);
            next += 10;
            p.on_alloc(a, LONG, 32);
            p.on_copy(a, Addr::new(next), 32, true);
            next += 10;
        }
        p.on_edge(LONG, LONG);
        // 200 short-lived objects (0 % old), edges to LONG and SHORT.
        for _ in 0..200 {
            let a = Addr::new(next);
            next += 10;
            p.on_alloc(a, SHORT, 16);
            p.on_death(a);
        }
        p.on_edge(SHORT, LONG);
        p.on_edge(SHORT, SHORT);
        // 2 objects from a tiny site that happen to survive — noise.
        for _ in 0..2 {
            let a = Addr::new(next);
            next += 10;
            p.on_alloc(a, TINY, 16);
            p.on_copy(a, Addr::new(next), 16, true);
            next += 10;
        }
        p
    }

    #[test]
    fn cutoff_selects_the_long_lived_site_only() {
        let p = bimodal_profile();
        let policy = derive_policy(&p, &PolicyOptions::default());
        assert!(policy.should_pretenure(LONG));
        assert!(!policy.should_pretenure(SHORT));
        assert!(!policy.should_pretenure(TINY), "below min_alloc_objects");
        assert_eq!(policy.len(), 1);
    }

    #[test]
    fn no_scan_requires_closed_edges() {
        let p = bimodal_profile();
        let opts = PolicyOptions {
            derive_no_scan: true,
            ..Default::default()
        };
        let policy = derive_policy(&p, &opts);
        // LONG's only observed edges target LONG itself — closed under
        // the pretenured set, so no scan is needed.
        assert!(policy.is_no_scan(LONG));
    }

    #[test]
    fn no_scan_denied_when_edges_escape() {
        let mut p = bimodal_profile();
        p.on_edge(LONG, SHORT); // now LONG references un-pretenured data
        let opts = PolicyOptions {
            derive_no_scan: true,
            ..Default::default()
        };
        let policy = derive_policy(&p, &opts);
        assert!(policy.should_pretenure(LONG));
        assert!(!policy.is_no_scan(LONG));
    }

    #[test]
    fn coverage_matches_figure_2_summary_semantics() {
        let p = bimodal_profile();
        let policy = derive_policy(&p, &PolicyOptions::default());
        let c = coverage(&p, &policy);
        // LONG: 640 alloc bytes of 640+3200+32 total; all 640 copied bytes
        // of 640+32 total.
        assert!((c.alloc_percent - 100.0 * 640.0 / 3872.0).abs() < 1e-9);
        assert!((c.copied_percent - 100.0 * 640.0 / 672.0).abs() < 1e-9);
    }

    #[test]
    fn empty_profile_yields_empty_policy() {
        let p = HeapProfile::new();
        let policy = derive_policy(&p, &PolicyOptions::default());
        assert!(policy.is_empty());
        let c = coverage(&p, &policy);
        assert_eq!(c.alloc_percent, 0.0);
        assert_eq!(c.copied_percent, 0.0);
    }
}
