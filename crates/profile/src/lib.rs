//! Heap-profile analysis for profile-driven pretenuring (§6 of Cheng,
//! Harper, Lee; PLDI 1998).
//!
//! The collectors in `tilgc-core` gather a raw
//! [`HeapProfile`](tilgc_runtime::HeapProfile) when profiling is enabled;
//! this crate turns it into:
//!
//! * the paper's **Figure-2 report** — per-site allocation volume,
//!   survival rate (`old%`), average age and copy volume, with the
//!   bimodal layout and the targeted-coverage footer ([`render_report`]);
//! * a **pretenuring policy** — sites with `old%` above the cutoff
//!   (80 % in the paper) are tenured at birth ([`derive_policy`]),
//!   optionally extended with the §7.2 *no-scan* analysis
//!   (`P(s) ⊆ S` over observed pointer edges).
//!
//! # Typical workflow
//!
//! ```no_run
//! use tilgc_core::{build_vm, CollectorKind, GcConfig};
//! use tilgc_profile::{derive_policy, render_report, PolicyOptions, ReportOptions};
//!
//! // 1. Profiling run.
//! let config = GcConfig::new().profiling(true);
//! let mut vm = build_vm(CollectorKind::GenerationalStack, &config);
//! // ... run the program ...
//! vm.finish();
//! let profile = vm.take_profile().expect("profiling enabled");
//! println!("{}", render_report("myprog", &profile, &vm.mutator().sites,
//!                              &ReportOptions::default()));
//!
//! // 2. Production run with the derived policy.
//! let policy = derive_policy(&profile, &PolicyOptions::default());
//! let config = GcConfig::new().pretenure(policy);
//! let vm = build_vm(CollectorKind::GenerationalStackPretenure, &config);
//! // ... run the program again, now with pretenuring ...
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod policy;
mod report;

pub use policy::{coverage, derive_policy, Coverage, PolicyOptions};
pub use report::{render_report, ReportOptions};
