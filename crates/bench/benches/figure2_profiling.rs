//! Figure 2 (wall-clock): the cost of gathering heap profiles. The paper
//! reports profiled programs running 50–200 % slower.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tilgc_bench::bench_config;
use tilgc_core::{build_vm, CollectorKind};
use tilgc_programs::Benchmark;

fn profiling_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure2_profiling");
    group.sample_size(10);
    for bench in [Benchmark::Nqueen, Benchmark::KnuthBendix] {
        for (label, profiling) in [("plain", false), ("profiling", true)] {
            group.bench_with_input(
                BenchmarkId::new(bench.name(), label),
                &profiling,
                |b, &profiling| {
                    b.iter(|| {
                        let config = bench_config(16 << 20).profiling(profiling);
                        let mut vm = build_vm(CollectorKind::GenerationalStack, &config);
                        vm.mutator_mut().check_shadows = false;
                        let h = bench.run(&mut vm, 1);
                        vm.finish();
                        black_box(h)
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, profiling_overhead);
criterion_main!(benches);
