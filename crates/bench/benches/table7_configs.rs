//! Table 7 (wall-clock): the four collector configurations side by side.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tilgc_bench::{bench_config, pretenure_policy_for, run_program, HEADLINERS};
use tilgc_core::CollectorKind;

fn four_configurations(c: &mut Criterion) {
    let mut group = c.benchmark_group("table7_configs");
    group.sample_size(10);
    for bench in HEADLINERS {
        let policy = pretenure_policy_for(bench, 1);
        for kind in CollectorKind::ALL {
            let config = if kind == CollectorKind::GenerationalStackPretenure {
                bench_config(24 << 20).pretenure(policy.clone())
            } else {
                bench_config(24 << 20)
            };
            group.bench_with_input(
                BenchmarkId::new(bench.name(), kind.label()),
                &kind,
                |b, &kind| {
                    b.iter(|| black_box(run_program(bench, kind, &config, 1)));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, four_configurations);
criterion_main!(benches);
