//! A/B microbenchmarks for the GC hot-path kernels: the batched shipping
//! code against the pre-batching reference paths retained under
//! `tilgc-core`'s `kernel-ref` feature.
//!
//! Five groups, one per kernel:
//!
//! * `evac_kernel` — batched field scan (slice snapshot + pointer-mask
//!   bit walk) vs the per-field header-decode loop;
//! * `stack_scan_kernel` — precompiled trace bitmaps vs the per-slot
//!   `Trace` match;
//! * `ssb_filter` — sort/dedup store-buffer filtering vs forwarding every
//!   recorded entry;
//! * `barrier_filter` — branch-free side-bitmap dirty test-and-set plus
//!   bulk retire vs the scalar test-branch-set filter plus per-object
//!   clear walk;
//! * `bulk_clear` — the memset-style side-metadata word sweep over a
//!   64 MB heap range.
//!
//! Both sides of each pair perform identical simulated-cost bookkeeping,
//! so the wall-clock ratio isolates the kernel change.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tilgc_bench::kernels::{BarrierRig, BulkClearRig, EvacRig, SsbRig, StackRig};

fn evac_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("evac_kernel");
    let mut rig = EvacRig::new();
    group.bench_function("batched", |b| b.iter(|| black_box(rig.scan_pass())));
    let mut rig = EvacRig::new();
    group.bench_function("reference", |b| {
        b.iter(|| black_box(rig.scan_pass_reference()))
    });
    group.finish();
}

fn stack_scan_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("stack_scan_kernel");
    let mut rig = StackRig::new();
    group.bench_function("batched", |b| b.iter(|| black_box(rig.scan_pass())));
    let mut rig = StackRig::new();
    group.bench_function("reference", |b| {
        b.iter(|| black_box(rig.scan_pass_reference()))
    });
    group.finish();
}

fn ssb_filter(c: &mut Criterion) {
    let mut group = c.benchmark_group("ssb_filter");
    let mut rig = SsbRig::new();
    group.bench_function("batched", |b| b.iter(|| black_box(rig.filter_pass())));
    let mut rig = SsbRig::new();
    group.bench_function("reference", |b| {
        b.iter(|| black_box(rig.filter_pass_reference()))
    });
    group.finish();
}

fn barrier_filter(c: &mut Criterion) {
    let mut group = c.benchmark_group("barrier_filter");
    let mut rig = BarrierRig::new();
    group.bench_function("batched", |b| b.iter(|| black_box(rig.filter_pass())));
    let mut rig = BarrierRig::new();
    group.bench_function("reference", |b| {
        b.iter(|| black_box(rig.filter_pass_reference()))
    });
    group.finish();
}

fn bulk_clear(c: &mut Criterion) {
    let mut group = c.benchmark_group("bulk_clear");
    let mut rig = BulkClearRig::new();
    group.bench_function("sweep_64mb", |b| b.iter(|| black_box(rig.clear_pass())));
    group.finish();
}

criterion_group!(
    kernels,
    evac_kernel,
    stack_scan_kernel,
    ssb_filter,
    barrier_filter,
    bulk_clear
);
criterion_main!(kernels);
