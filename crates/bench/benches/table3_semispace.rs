//! Table 3 (wall-clock): the semispace collector across the paper's
//! memory-budget sweep. GC work — and therefore host time — should fall
//! as k grows, most steeply for programs with long-lived data
//! (Gröbner-like), least for pure-garbage programs (Checksum-like).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tilgc_bench::{bench_config, run_program};
use tilgc_core::CollectorKind;
use tilgc_programs::Benchmark;

fn semispace_k_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_semispace");
    group.sample_size(10);
    // Per-program budgets approximating k = 1.5 and k = 4 of each
    // program's Min (live sets differ by an order of magnitude).
    let budgets = [
        (Benchmark::Checksum, 96 << 10, 256 << 10),
        (Benchmark::Nqueen, 512 << 10, 1536 << 10),
        (Benchmark::Pia, 384 << 10, 1024 << 10),
    ];
    for (bench, tight, roomy) in budgets {
        for (label, budget) in [("k1.5", tight), ("k4", roomy)] {
            group.bench_with_input(
                BenchmarkId::new(bench.name(), label),
                &budget,
                |b, &budget| {
                    let config = bench_config(budget);
                    b.iter(|| black_box(run_program(bench, CollectorKind::Semispace, &config, 1)));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, semispace_k_sweep);
criterion_main!(benches);
