//! Table 5 (wall-clock): generational stack collection on the deep-stack
//! programs. Two views: the end-to-end programs (Color, Knuth-Bendix) and
//! a microbenchmark of the scan itself at a fixed depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tilgc_bench::{bench_config, run_program};
use tilgc_core::{roots::scan_stack, roots::ScanCache, CollectorKind, MarkerPolicy};
use tilgc_programs::Benchmark;
use tilgc_runtime::{FrameDesc, GcStats, MutatorState, Trace, Value};

fn programs_with_and_without_markers(c: &mut Criterion) {
    let mut group = c.benchmark_group("table5_programs");
    group.sample_size(10);
    for bench in [Benchmark::Color, Benchmark::KnuthBendix] {
        for (label, kind) in [
            ("no_markers", CollectorKind::Generational),
            ("markers", CollectorKind::GenerationalStack),
        ] {
            group.bench_with_input(BenchmarkId::new(bench.name(), label), &kind, |b, &kind| {
                let config = bench_config(16 << 20);
                b.iter(|| black_box(run_program(bench, kind, &config, 1)));
            });
        }
    }
    group.finish();
}

/// Builds a mutator with a deep stack of pointer-bearing frames.
fn deep_mutator(depth: usize) -> MutatorState {
    let mut m = MutatorState::new();
    let d = m.traces.register(
        FrameDesc::new("deep")
            .slots(4, Trace::Pointer)
            .slots(2, Trace::NonPointer),
    );
    for _ in 0..depth {
        m.stack.push(d, 6);
        m.stack.top_mut().set(0, Value::NULL);
    }
    m
}

fn scan_microbench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table5_scan_micro");
    for depth in [100usize, 1000, 4000] {
        group.bench_with_input(BenchmarkId::new("full_scan", depth), &depth, |b, &depth| {
            let mut m = deep_mutator(depth);
            m.check_shadows = false;
            let mut stats = GcStats::default();
            b.iter(|| {
                black_box(scan_stack(&mut m, None, MarkerPolicy::Disabled, &mut stats));
            });
        });
        group.bench_with_input(
            BenchmarkId::new("cached_scan", depth),
            &depth,
            |b, &depth| {
                let mut m = deep_mutator(depth);
                m.check_shadows = false;
                let mut stats = GcStats::default();
                let mut cache = ScanCache::default();
                // Prime the cache; subsequent scans reuse everything but the top.
                scan_stack(&mut m, Some(&mut cache), MarkerPolicy::PAPER, &mut stats);
                b.iter(|| {
                    black_box(scan_stack(
                        &mut m,
                        Some(&mut cache),
                        MarkerPolicy::PAPER,
                        &mut stats,
                    ));
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, programs_with_and_without_markers, scan_microbench);
criterion_main!(benches);
