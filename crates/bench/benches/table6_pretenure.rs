//! Table 6 (wall-clock): profile-driven pretenuring on the four programs
//! the paper pretenures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tilgc_bench::{bench_config, pretenure_policy_for, run_program};
use tilgc_core::CollectorKind;
use tilgc_programs::Benchmark;

fn pretenure_programs(c: &mut Criterion) {
    let mut group = c.benchmark_group("table6_pretenure");
    group.sample_size(10);
    for bench in [
        Benchmark::KnuthBendix,
        Benchmark::Lexgen,
        Benchmark::Nqueen,
        Benchmark::Simple,
    ] {
        let policy = pretenure_policy_for(bench, 1);
        group.bench_function(BenchmarkId::new(bench.name(), "markers_only"), |b| {
            let config = bench_config(16 << 20);
            b.iter(|| {
                black_box(run_program(
                    bench,
                    CollectorKind::GenerationalStack,
                    &config,
                    1,
                ))
            });
        });
        group.bench_function(BenchmarkId::new(bench.name(), "pretenure"), |b| {
            let config = bench_config(16 << 20).pretenure(policy.clone());
            b.iter(|| {
                black_box(run_program(
                    bench,
                    CollectorKind::GenerationalStackPretenure,
                    &config,
                    1,
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, pretenure_programs);
criterion_main!(benches);
