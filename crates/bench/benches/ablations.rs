//! Ablations over the design choices DESIGN.md calls out:
//!
//! * marker-placement policy (§7.1: "a more dynamic policy of marker
//!   placement may achieve better performance with fewer markers");
//! * write barrier: sequential store buffer vs the deduplicating
//!   object-marking barrier, on update-heavy Peg (§4 suggests card
//!   marking for exactly this case);
//! * exception bookkeeping: watermark-at-raise vs deferred handler walk
//!   (§5's two implementation strategies).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tilgc_bench::bench_config;
use tilgc_core::{build_collector, build_vm, CollectorKind, GcConfig, MarkerPolicy};
use tilgc_programs::Benchmark;
use tilgc_runtime::{MutatorState, RaiseBookkeeping, Vm, WriteBarrier};

fn marker_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_marker_policy");
    group.sample_size(10);
    let policies: [(&str, MarkerPolicy); 4] = [
        ("every5", MarkerPolicy::EveryN(5)),
        ("every25", MarkerPolicy::EveryN(25)),
        ("every25_top", MarkerPolicy::EveryNPlusTop(25)),
        ("exponential", MarkerPolicy::Exponential),
    ];
    for (label, policy) in policies {
        group.bench_function(BenchmarkId::new("knuth_bendix", label), |b| {
            let config = bench_config(16 << 20).marker_policy(policy);
            b.iter(|| {
                black_box(tilgc_bench::run_program(
                    Benchmark::KnuthBendix,
                    CollectorKind::GenerationalStack,
                    &config,
                    1,
                ))
            });
        });
    }
    group.finish();
}

fn barrier_kinds(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_write_barrier");
    group.sample_size(10);
    let run = |barrier: WriteBarrier, config: &GcConfig| -> u64 {
        let mut m = MutatorState::new();
        m.barrier = barrier;
        m.check_shadows = false;
        let mut vm = Vm::with_mutator(m, build_collector(CollectorKind::Generational, config));
        let h = Benchmark::Peg.run(&mut vm, 1);
        vm.finish();
        h
    };
    group.bench_function("peg/ssb", |b| {
        let config = bench_config(4 << 20);
        b.iter(|| black_box(run(WriteBarrier::ssb(), &config)));
    });
    group.bench_function("peg/object_mark", |b| {
        let config = bench_config(4 << 20);
        b.iter(|| black_box(run(WriteBarrier::object_mark(), &config)));
    });
    group.finish();
}

fn raise_bookkeeping(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_raise_bookkeeping");
    group.sample_size(10);
    for (label, mode) in [
        ("watermark", RaiseBookkeeping::Watermark),
        ("deferred", RaiseBookkeeping::Deferred),
    ] {
        group.bench_with_input(BenchmarkId::new("peg", label), &mode, |b, &mode| {
            let config = bench_config(4 << 20);
            b.iter(|| {
                let mut vm = build_vm(CollectorKind::GenerationalStack, &config);
                vm.mutator_mut().raise_mode = mode;
                vm.mutator_mut().check_shadows = false;
                let h = Benchmark::Peg.run(&mut vm, 1);
                vm.finish();
                black_box(h)
            });
        });
    }
    group.finish();
}

fn tenure_thresholds(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_tenure_threshold");
    group.sample_size(10);
    for threshold in [0u8, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("nqueen", threshold),
            &threshold,
            |b, &threshold| {
                let config = bench_config(4 << 20).tenure_threshold(threshold);
                b.iter(|| {
                    black_box(tilgc_bench::run_program(
                        Benchmark::Nqueen,
                        CollectorKind::GenerationalStack,
                        &config,
                        1,
                    ))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    marker_policies,
    barrier_kinds,
    raise_bookkeeping,
    tenure_thresholds
);
criterion_main!(benches);
