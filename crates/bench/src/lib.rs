//! Shared helpers for the Criterion benchmark harness.
//!
//! Each bench target regenerates one of the paper's tables or figures as
//! *wall-clock* measurements (the `tilgc-experiments` binary reports the
//! deterministic simulated-cycle versions of the same comparisons). The
//! shapes should agree: configurations that reduce simulated GC work also
//! do proportionally less host work.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use tilgc_core::{build_vm, CollectorKind, GcConfig, PretenurePolicy};
use tilgc_programs::Benchmark;

pub mod kernels;

/// The standard benchmark configuration: a heap budget generous enough
/// for every program at the benchmark scale, a 32 KB nursery (the scaled
/// stand-in for the paper's 512 KB cache bound), and a 4 KB large-object
/// threshold.
pub fn bench_config(budget: usize) -> GcConfig {
    GcConfig::new()
        .heap_budget_bytes(budget)
        .nursery_bytes(32 << 10)
        .large_object_bytes(4 << 10)
}

/// Runs `bench` once under `kind`, returning its checksum (used as the
/// benchmark's black-box output).
pub fn run_program(bench: Benchmark, kind: CollectorKind, config: &GcConfig, scale: u32) -> u64 {
    let mut vm = build_vm(kind, config);
    vm.mutator_mut().check_shadows = false;
    let checksum = bench.run(&mut vm, scale);
    vm.finish();
    checksum
}

/// Derives the old%-cutoff pretenuring policy for `bench` from a
/// profiling run, as Table 6 prescribes.
pub fn pretenure_policy_for(bench: Benchmark, scale: u32) -> PretenurePolicy {
    let config = bench_config(192 << 20).profiling(true);
    let mut vm = build_vm(CollectorKind::GenerationalStack, &config);
    vm.mutator_mut().check_shadows = false;
    bench.run(&mut vm, scale);
    vm.finish();
    let profile = vm.take_profile().expect("profiling enabled");
    tilgc_profile::derive_policy(&profile, &tilgc_profile::PolicyOptions::default())
}

/// The benchmarks whose behaviour distinguishes the collectors most
/// sharply — used where running all eleven would make `cargo bench`
/// take too long.
pub const HEADLINERS: [Benchmark; 4] = [
    Benchmark::Color,
    Benchmark::KnuthBendix,
    Benchmark::Nqueen,
    Benchmark::Pia,
];
