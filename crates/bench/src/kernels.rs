//! Fixed workloads for the GC hot-path kernels, shared by the
//! `kernels` Criterion bench (A/B wall-clock comparison) and the
//! `experiments bench-json` throughput baseline.
//!
//! Each rig owns a deterministic heap or stack and exposes a *batched*
//! pass (the shipping kernel) and a *reference* pass (the pre-batching
//! scalar code, compiled via `tilgc-core`'s `kernel-ref` feature). The
//! passes are idempotent — no object is ever in from-space, so a pass
//! forwards nothing and can be repeated for timing — and both variants
//! perform the same simulated-cost bookkeeping, so the wall-clock delta
//! is purely the kernel difference.
//!
//! The evacuation rig drives `tilgc-core`'s `Evacuator` directly — the
//! shared tracing driver underneath every plan — so the numbers here
//! measure the hot loop all three collector plans execute.

use tilgc_core::roots::{scan_stack, scan_stack_reference};
use tilgc_core::{Evacuator, MarkerPolicy};
use tilgc_mem::{object, Addr, Memory, SiteId, Space, SpaceRange};
use tilgc_runtime::{CostModel, FrameDesc, GcStats, MutatorState, Trace, Value};

/// Evacuation-scan workload: an even mix of pure-data records (no
/// pointer fields) and records whose pointer fields are sparse (4 of
/// 20) — the two shapes the batched mask walk exploits.
pub struct EvacRig {
    mem: Memory,
    from: [SpaceRange; 1],
    to: Space,
    owners: Vec<Addr>,
    stats: GcStats,
    /// Heap words visited by one full pass.
    pub words_per_pass: u64,
}

impl EvacRig {
    /// Builds the fixed workload: 4096 twenty-field records. Odd-indexed
    /// records are raw data (empty pointer mask); even-indexed ones have
    /// four pointer fields aimed at a pool of old-generation targets.
    pub fn new() -> EvacRig {
        let mut mem = Memory::with_capacity_words(1 << 20);
        let from = [mem.reserve(1 << 10).expect("reserve from")];
        let to = Space::new(mem.reserve(1 << 10).expect("reserve to"));
        let mut old = Space::new(mem.reserve(256 << 10).expect("reserve old"));

        let targets: Vec<Addr> = (0..512)
            .map(|i| {
                object::alloc_record(&mut mem, &mut old, SiteId::new(1), &[i], 0)
                    .expect("target alloc")
            })
            .collect();
        let ptr_mask = 1 | (1 << 7) | (1 << 13) | (1 << 19);
        let mut words_per_pass = 0u64;
        let owners: Vec<Addr> = (0..4096u64)
            .map(|n| {
                let mut fields = [0u64; 20];
                for (j, f) in fields.iter_mut().enumerate() {
                    *f = n * 31 + j as u64;
                }
                let mask = if n % 2 == 0 {
                    for (k, i) in [0usize, 7, 13, 19].into_iter().enumerate() {
                        let t = targets[((n as usize) * 4 + k) % targets.len()];
                        fields[i] = u64::from(t.raw());
                    }
                    ptr_mask
                } else {
                    0
                };
                words_per_pass += 21;
                object::alloc_record(&mut mem, &mut old, SiteId::new(2), &fields, mask)
                    .expect("owner alloc")
            })
            .collect();
        EvacRig {
            mem,
            from,
            to,
            owners,
            stats: GcStats::default(),
            words_per_pass,
        }
    }

    /// One batched scan pass over every owner; returns words visited.
    pub fn scan_pass(&mut self) -> u64 {
        let mut ev = Evacuator::new(
            &mut self.mem,
            &self.from,
            &mut self.to,
            None,
            None,
            None,
            &mut self.stats,
            CostModel::default(),
        );
        for &o in &self.owners {
            ev.scan_in_place(o, false);
        }
        self.words_per_pass
    }

    /// One reference (pre-batching) scan pass; returns words visited.
    pub fn scan_pass_reference(&mut self) -> u64 {
        let mut ev = Evacuator::new(
            &mut self.mem,
            &self.from,
            &mut self.to,
            None,
            None,
            None,
            &mut self.stats,
            CostModel::default(),
        );
        for &o in &self.owners {
            ev.scan_in_place_reference(o, false);
        }
        self.words_per_pass
    }
}

impl Default for EvacRig {
    fn default() -> Self {
        EvacRig::new()
    }
}

/// Stack-scan workload: a 256-frame stack of fully static frames
/// (4 pointer slots of 16), the shape the precompiled bitmaps serve.
pub struct StackRig {
    m: MutatorState,
    stats: GcStats,
    /// Frames decoded by one full scan.
    pub frames_per_pass: u64,
}

impl StackRig {
    /// Builds the fixed stack. Shadow checking is off, as in every
    /// measured configuration, which enables the bitmap fast path.
    pub fn new() -> StackRig {
        let mut m = MutatorState::new();
        m.check_shadows = false;
        let mut d = FrameDesc::new("kernels::static_frame");
        for _ in 0..4 {
            d = d.slots(3, Trace::NonPointer).slot(Trace::Pointer);
        }
        let desc = m.traces.register(d);
        for n in 0..256u32 {
            m.stack.push(desc, 16);
            for i in [3usize, 7, 11, 15] {
                m.stack.top_mut().set(i, Value::Ptr(Addr::new(64 + n)));
            }
        }
        let frames_per_pass = m.stack.depth() as u64;
        StackRig {
            m,
            stats: GcStats::default(),
            frames_per_pass,
        }
    }

    /// One full bitmap-path scan; returns frames decoded.
    pub fn scan_pass(&mut self) -> u64 {
        let out = scan_stack(&mut self.m, None, MarkerPolicy::Disabled, &mut self.stats);
        debug_assert_eq!(out.new_roots.len(), 256 * 4);
        self.frames_per_pass
    }

    /// One full reference (per-slot decode) scan; returns frames decoded.
    pub fn scan_pass_reference(&mut self) -> u64 {
        let out = scan_stack_reference(&mut self.m, None, MarkerPolicy::Disabled, &mut self.stats);
        debug_assert_eq!(out.new_roots.len(), 256 * 4);
        self.frames_per_pass
    }
}

impl Default for StackRig {
    fn default() -> Self {
        StackRig::new()
    }
}

/// Store-buffer workload: 200k recorded pointer updates over 512 distinct
/// fields — the "mutated site recorded repeatedly" pathology of §4.
pub struct SsbRig {
    mem: Memory,
    from: [SpaceRange; 1],
    to: Space,
    stats: GcStats,
    locs: Vec<Addr>,
    /// Reused batch buffer: minor collections drain the store buffer
    /// into a long-lived vector rather than allocating one per GC.
    scratch: Vec<Addr>,
    /// Recorded entries filtered by one pass.
    pub entries_per_pass: u64,
}

impl SsbRig {
    /// Builds the fixed store buffer.
    pub fn new() -> SsbRig {
        let mut mem = Memory::with_capacity_words(64 << 10);
        let from = [mem.reserve(1 << 10).expect("reserve from")];
        let to = Space::new(mem.reserve(1 << 10).expect("reserve to"));
        let mut old = Space::new(mem.reserve(16 << 10).expect("reserve old"));
        let target =
            object::alloc_record(&mut mem, &mut old, SiteId::new(1), &[9], 0).expect("target");
        let fields: Vec<Addr> = (0..512)
            .map(|_| {
                let r = object::alloc_record(
                    &mut mem,
                    &mut old,
                    SiteId::new(2),
                    &[u64::from(target.raw())],
                    0b1,
                )
                .expect("record");
                object::field_addr(r, 0)
            })
            .collect();
        // Scatter duplicates in a fixed pseudo-random order (Knuth's
        // multiplicative hash) so the batched pass really sorts.
        let locs: Vec<Addr> = (0..200_000usize)
            .map(|i| fields[(i.wrapping_mul(2654435761)) % fields.len()])
            .collect();
        let entries_per_pass = locs.len() as u64;
        let scratch = Vec::with_capacity(locs.len());
        SsbRig {
            mem,
            from,
            to,
            stats: GcStats::default(),
            locs,
            scratch,
            entries_per_pass,
        }
    }

    /// One batched filter pass (sort + dedup + forward); returns entries.
    pub fn filter_pass(&mut self) -> u64 {
        self.scratch.clear();
        self.scratch.extend_from_slice(&self.locs);
        let mut ev = Evacuator::new(
            &mut self.mem,
            &self.from,
            &mut self.to,
            None,
            None,
            None,
            &mut self.stats,
            CostModel::default(),
        );
        ev.forward_field_locs(&mut self.scratch);
        self.entries_per_pass
    }

    /// One reference pass (forward every recorded entry); returns entries.
    pub fn filter_pass_reference(&mut self) -> u64 {
        let mut ev = Evacuator::new(
            &mut self.mem,
            &self.from,
            &mut self.to,
            None,
            None,
            None,
            &mut self.stats,
            CostModel::default(),
        );
        ev.forward_field_locs_reference(&self.locs);
        self.entries_per_pass
    }
}

impl Default for SsbRig {
    fn default() -> Self {
        SsbRig::new()
    }
}

/// Write-barrier filter workload: 200k pointer updates over 4096
/// distinct objects — the dedup filter the object-marking barrier runs
/// on every mutator store. The batched pass is the shipping branch-free
/// side-bitmap test-and-set plus one bulk sweep to retire the bits; the
/// reference pass is the scalar test-branch-set filter plus the old
/// per-object clear walk.
pub struct BarrierRig {
    mem: Memory,
    range: SpaceRange,
    updates: Vec<Addr>,
    objs: Vec<Addr>,
    /// Recorded updates filtered by one pass.
    pub updates_per_pass: u64,
}

impl BarrierRig {
    /// Builds the fixed update stream (Knuth multiplicative scatter, as
    /// in [`SsbRig`], so consecutive updates rarely hit the same word of
    /// the bitmap).
    pub fn new() -> BarrierRig {
        let mut mem = Memory::with_capacity_words(64 << 10);
        let range = mem.reserve(32 << 10).expect("reserve old");
        let mut old = Space::new(range);
        let objs: Vec<Addr> = (0..4096)
            .map(|i| {
                object::alloc_record(&mut mem, &mut old, SiteId::new(1), &[i], 0).expect("record")
            })
            .collect();
        let updates: Vec<Addr> = (0..200_000usize)
            .map(|i| objs[(i.wrapping_mul(2654435761)) % objs.len()])
            .collect();
        let updates_per_pass = updates.len() as u64;
        BarrierRig {
            mem,
            range,
            updates,
            objs,
            updates_per_pass,
        }
    }

    /// One branch-free filter pass over the update stream, then one bulk
    /// sweep to retire the dirty bits; returns the updates that would
    /// have been recorded (first touch of each object).
    pub fn filter_pass(&mut self) -> u64 {
        let mut recorded = 0u64;
        for &obj in &self.updates {
            recorded += u64::from(!self.mem.dirty_test_and_set(obj));
        }
        self.mem.bulk_clear_dirty(self.range);
        recorded
    }

    /// One scalar (test, branch, conditional set) filter pass, then the
    /// old per-object clear walk; returns the recorded count.
    pub fn filter_pass_reference(&mut self) -> u64 {
        let mut recorded = 0u64;
        for &obj in &self.updates {
            recorded += u64::from(!self.mem.dirty_test_and_set_reference(obj));
        }
        for &obj in &self.objs {
            self.mem.clear_dirty(obj);
        }
        recorded
    }
}

impl Default for BarrierRig {
    fn default() -> Self {
        BarrierRig::new()
    }
}

/// Bulk-clear workload: the `memset`-style word sweep collectors run
/// over a vacated space's dirty bits, measured over a 64 MB heap range
/// (8 Mi words — a bitmap sweep of 1 MB per pass). Throughput is
/// reported as *heap* megabytes retired per second, the unit the
/// collector reasons in.
pub struct BulkClearRig {
    mem: Memory,
    range: SpaceRange,
    /// Heap megabytes whose metadata one pass retires.
    pub heap_mb_per_pass: f64,
}

impl BulkClearRig {
    /// Builds the 64 MB range with a scattering of set bits (the sweep
    /// is word-wise, so the bit population does not affect its cost).
    pub fn new() -> BulkClearRig {
        let mut mem = Memory::with_capacity_bytes(64 << 20);
        let words = mem.capacity_words() - 8;
        let range = mem.reserve(words).expect("reserve range");
        for i in 0..words / 4096 {
            mem.set_dirty(range.start + i * 4096 + 1);
        }
        let heap_mb_per_pass = (words as f64) * 8.0 / (1u64 << 20) as f64;
        BulkClearRig {
            mem,
            range,
            heap_mb_per_pass,
        }
    }

    /// One bulk sweep over the whole range; returns heap words covered.
    pub fn clear_pass(&mut self) -> u64 {
        self.mem.bulk_clear_dirty(self.range)
    }
}

impl Default for BulkClearRig {
    fn default() -> Self {
        BulkClearRig::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evac_passes_agree_and_are_idempotent() {
        let mut rig = EvacRig::new();
        let w1 = rig.scan_pass();
        let w2 = rig.scan_pass_reference();
        assert_eq!(w1, w2);
        assert_eq!(w1, 4096 * 21);
        assert_eq!(rig.stats.copied_bytes, 0, "nothing is ever in from-space");
    }

    #[test]
    fn stack_passes_agree() {
        let mut rig = StackRig::new();
        assert_eq!(rig.scan_pass(), 256);
        assert_eq!(rig.scan_pass_reference(), 256);
        assert_eq!(rig.stats.frames_scanned, 512);
        let cycles_one_pass = rig.stats.stack_cycles / 2;
        assert_eq!(
            rig.stats.stack_cycles,
            cycles_one_pass * 2,
            "both paths charge identical simulated cycles"
        );
    }

    #[test]
    fn ssb_passes_agree() {
        let mut rig = SsbRig::new();
        assert_eq!(rig.filter_pass(), 200_000);
        assert_eq!(rig.filter_pass_reference(), 200_000);
        assert_eq!(rig.stats.copied_bytes, 0);
    }

    #[test]
    fn barrier_passes_agree_and_are_idempotent() {
        let mut rig = BarrierRig::new();
        // Every distinct object records exactly once per pass, on both
        // paths, on repeated passes (each pass retires its own bits).
        assert_eq!(rig.filter_pass(), 4096);
        assert_eq!(rig.filter_pass(), 4096);
        assert_eq!(rig.filter_pass_reference(), 4096);
        assert_eq!(rig.filter_pass(), 4096);
    }

    #[test]
    fn bulk_clear_covers_the_whole_range() {
        let mut rig = BulkClearRig::new();
        let words = rig.clear_pass();
        assert_eq!(words, rig.clear_pass(), "idempotent");
        assert!(
            (rig.heap_mb_per_pass - (words as f64) * 8.0 / (1u64 << 20) as f64).abs() < 1e-9,
            "advertised MB matches words covered"
        );
        assert!(rig.heap_mb_per_pass > 63.9, "nearly the full 64 MB range");
    }
}
