//! `Peg` — triangular peg-solitaire search, from a Prolog-to-ML
//! translation (Hornof 1992).
//!
//! The board is a *mutable* pointer array updated (and undone) on every
//! move of the depth-first search, in the imperative style Prolog
//! translations produce: Table 2 shows Peg performing 2.97 million
//! pointer updates — four orders of magnitude more than any other
//! benchmark — which floods the sequential store buffer and makes root
//! processing 32 % of GC time (§4). In the Prolog idiom, finding enough
//! solutions aborts the search by raising an exception caught at the top.

use tilgc_mem::{Addr, SiteId};
use tilgc_runtime::{DescId, FrameDesc, RaiseOutcome, Trace, Value, Vm};

use crate::common::{cons, mix, must, Exn, PResult};

/// Jump moves (from, over, to) of 15-hole triangular solitaire.
const MOVES: [(usize, usize, usize); 36] = [
    (0, 1, 3),
    (0, 2, 5),
    (1, 3, 6),
    (1, 4, 8),
    (2, 4, 7),
    (2, 5, 9),
    (3, 1, 0),
    (3, 4, 5),
    (3, 6, 10),
    (3, 7, 12),
    (4, 7, 11),
    (4, 8, 13),
    (5, 2, 0),
    (5, 4, 3),
    (5, 8, 12),
    (5, 9, 14),
    (6, 3, 1),
    (6, 7, 8),
    (7, 4, 2),
    (7, 8, 9),
    (8, 4, 1),
    (8, 7, 6),
    (9, 5, 2),
    (9, 8, 7),
    (10, 6, 3),
    (10, 11, 12),
    (11, 7, 4),
    (11, 12, 13),
    (12, 7, 3),
    (12, 8, 5),
    (12, 11, 10),
    (12, 13, 14),
    (13, 8, 4),
    (13, 12, 11),
    (14, 9, 5),
    (14, 13, 12),
];

struct Peg {
    main: DescId,
    solve: DescId,
    board_site: SiteId,
    marker_site: SiteId,
    path_site: SiteId,
}

fn setup(vm: &mut Vm) -> Peg {
    Peg {
        main: vm.register_frame(FrameDesc::new("peg::main").slots(4, Trace::Pointer)),
        solve: vm.register_frame(
            FrameDesc::new("peg::solve")
                .slots(4, Trace::Pointer)
                .slot(Trace::NonPointer),
        ),
        board_site: vm.site("peg::board"),
        marker_site: vm.site("peg::marker"),
        path_site: vm.site("peg::path"),
    }
}

struct Search {
    budget: i64,
    solutions: u64,
    max_solutions: u64,
    hash: u64,
}

/// DFS over moves. Board slots hold the PEG/EMPTY marker pointers;
/// each move mutates three board cells and each backtrack undoes them —
/// six barriered stores per node.
///
/// Raises (host-side `Err` mirroring the VM unwind) once enough solutions
/// are found.
#[allow(clippy::too_many_arguments)]
fn solve(
    vm: &mut Vm,
    p: &Peg,
    board: Addr,
    peg: Addr,
    empty: Addr,
    path: Addr,
    pegs_left: i64,
    st: &mut Search,
) -> PResult<()> {
    if pegs_left == 1 {
        st.solutions += 1;
        st.hash = crate::common::list_checksum(vm, path, st.hash);
        if st.solutions >= st.max_solutions {
            // The Prolog idiom: abort the whole search with an exception.
            match vm.raise() {
                RaiseOutcome::Caught { .. } => return Err(Exn),
                RaiseOutcome::Uncaught => unreachable!("run() installs the handler"),
            }
        }
        return Ok(());
    }
    if st.budget <= 0 {
        return Ok(());
    }
    vm.push_frame(p.solve);
    vm.set_slot(0, Value::Ptr(board));
    vm.set_slot(1, Value::Ptr(peg));
    vm.set_slot(2, Value::Ptr(empty));
    vm.set_slot(3, Value::Ptr(path));
    for (i, &(from, over, to)) in MOVES.iter().enumerate() {
        st.budget -= 1;
        if st.budget <= 0 {
            break;
        }
        let board = vm.slot_ptr(0);
        let peg = vm.slot_ptr(1);
        let empty = vm.slot_ptr(2);
        let legal = vm.load_ptr(board, from) == peg
            && vm.load_ptr(board, over) == peg
            && vm.load_ptr(board, to) == empty;
        if !legal {
            continue;
        }
        // Apply the move (three mutations)...
        vm.store_ptr(board, from, empty);
        vm.store_ptr(board, over, empty);
        vm.store_ptr(board, to, peg);
        // ...extend the path (a short-lived cons)...
        let path = vm.slot_ptr(3);
        let path2 = cons(vm, p.path_site, Value::Int(i as i64), path);
        // ...recurse...
        let board = vm.slot_ptr(0);
        let peg = vm.slot_ptr(1);
        let empty = vm.slot_ptr(2);
        let res = solve(vm, p, board, peg, empty, path2, pegs_left - 1, st);
        if res.is_err() {
            // The VM stack is already unwound past this frame; do not pop.
            return Err(Exn);
        }
        // ...and undo (three more mutations).
        let board = vm.slot_ptr(0);
        let peg = vm.slot_ptr(1);
        let empty = vm.slot_ptr(2);
        vm.store_ptr(board, from, peg);
        vm.store_ptr(board, over, peg);
        vm.store_ptr(board, to, empty);
    }
    vm.pop_frame();
    Ok(())
}

/// Runs the benchmark: full search with the hole at the apex, stopping
/// after `500 · scale` solutions (the exception path) or
/// `400_000 · scale` move attempts.
pub fn run(vm: &mut Vm, scale: u32) -> u64 {
    let p = setup(vm);
    vm.push_frame(p.main);
    let peg = must(vm.alloc_record(p.marker_site, &[Value::Int(1)]));
    vm.set_slot(1, Value::Ptr(peg));
    let empty = must(vm.alloc_record(p.marker_site, &[Value::Int(0)]));
    vm.set_slot(2, Value::Ptr(empty));
    let empty = vm.slot_ptr(2);
    let board = must(vm.alloc_ptr_array(p.board_site, 15, empty));
    vm.set_slot(0, Value::Ptr(board));
    // Fill all but the apex with pegs.
    for i in 1..15 {
        let board = vm.slot_ptr(0);
        let peg = vm.slot_ptr(1);
        vm.store_ptr(board, i, peg);
    }
    let scale = scale.max(1);
    let mut st = Search {
        budget: 400_000 * i64::from(scale),
        solutions: 0,
        max_solutions: 500 * u64::from(scale),
        hash: 0,
    };
    vm.push_handler();
    let board = vm.slot_ptr(0);
    let peg = vm.slot_ptr(1);
    let empty = vm.slot_ptr(2);
    match solve(vm, &p, board, peg, empty, Addr::NULL, 14, &mut st) {
        Ok(()) => vm.pop_handler(),
        Err(Exn) => { /* handler consumed by the raise; VM stack unwound */ }
    }
    vm.pop_frame();
    mix(st.hash, st.solutions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::{run_all_kinds, tiny_config};
    use tilgc_core::{build_vm, CollectorKind};

    #[test]
    #[ignore = "full enumeration of the 29,760-solution game tree; minutes in debug builds — run with --ignored or --release"]
    fn finds_known_solutions() {
        let mut vm = build_vm(CollectorKind::Generational, &tiny_config());
        let p = setup(&mut vm);
        vm.push_frame(p.main);
        let peg = must(vm.alloc_record(p.marker_site, &[Value::Int(1)]));
        vm.set_slot(1, Value::Ptr(peg));
        let empty = must(vm.alloc_record(p.marker_site, &[Value::Int(0)]));
        vm.set_slot(2, Value::Ptr(empty));
        let empty = vm.slot_ptr(2);
        let board = must(vm.alloc_ptr_array(p.board_site, 15, empty));
        vm.set_slot(0, Value::Ptr(board));
        for i in 1..15 {
            let board = vm.slot_ptr(0);
            let peg = vm.slot_ptr(1);
            vm.store_ptr(board, i, peg);
        }
        let mut st = Search {
            budget: i64::MAX,
            solutions: 0,
            max_solutions: u64::MAX,
            hash: 0,
        };
        vm.push_handler();
        let board = vm.slot_ptr(0);
        let peg = vm.slot_ptr(1);
        let empty = vm.slot_ptr(2);
        solve(&mut vm, &p, board, peg, empty, Addr::NULL, 14, &mut st).unwrap();
        // Triangular 15-hole solitaire with a corner hole has 29,760
        // one-peg solutions — the classic enumeration result.
        assert_eq!(st.solutions, 29_760);
    }

    #[test]
    fn updates_dwarf_other_benchmarks() {
        let mut vm = build_vm(CollectorKind::Generational, &tiny_config());
        run(&mut vm, 1);
        assert!(
            vm.mutator_stats().pointer_updates > 50_000,
            "peg must be update-heavy, got {}",
            vm.mutator_stats().pointer_updates
        );
    }

    #[test]
    fn deterministic_and_collector_independent() {
        let results = run_all_kinds(|vm| run(vm, 1), &tiny_config());
        assert!(
            results.windows(2).all(|w| w[0] == w[1]),
            "results differ: {results:?}"
        );
    }
}
