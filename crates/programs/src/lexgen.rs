//! `Lexgen` — a lexical-analyzer generator (Appel, Mattson, Tarditi
//! 1989), processing an ML-ish token description.
//!
//! The pipeline is the real one: regular expressions are parsed into heap
//! ASTs, compiled to an NFA by Thompson's construction, determinized by
//! subset construction (state sets as sorted lists, ε-closure by deep
//! recursion — the source of Lexgen's 1800-frame stacks in Table 2), and
//! the resulting DFA tokenizes a generated source text. The DFA tables
//! are long-lived while the construction's intermediate sets die young —
//! the mix that gives Lexgen its 27 % pretenuring win in Table 6.

use tilgc_mem::{Addr, SiteId};
use tilgc_runtime::{DescId, FrameDesc, Trace, Value, Vm};

use crate::common::{mix, must, XorShift};

// Regex AST tags.
const RE_RANGE: i64 = 0; // [lo..hi] byte range
const RE_EPS: i64 = 1;
const RE_CAT: i64 = 2;
const RE_ALT: i64 = 3;
const RE_STAR: i64 = 4;

struct Lexgen {
    work: DescId,
    re_site: SiteId,
    nfa_site: SiteId,
    set_site: SiteId,
    dfa_site: SiteId,
    tok_site: SiteId,
}

fn setup(vm: &mut Vm) -> Lexgen {
    Lexgen {
        work: vm.register_frame(
            FrameDesc::new("lexgen::work")
                .slots(6, Trace::Pointer)
                .slots(2, Trace::NonPointer),
        ),
        re_site: vm.site("lexgen::regex"),
        nfa_site: vm.site("lexgen::nfa_edge"),
        set_site: vm.site("lexgen::state_set"),
        dfa_site: vm.site("lexgen::dfa_state"),
        tok_site: vm.site("lexgen::token"),
    }
}

// ----- regex parsing (host-side recursive descent into heap ASTs) ---------

/// Regex node `[tag, payload, l, r]` (payload packs lo + 256·hi for
/// ranges).
fn re(vm: &mut Vm, p: &Lexgen, tag: i64, payload: i64, l: Addr, r: Addr) -> Addr {
    must(vm.alloc_record(
        p.re_site,
        &[
            Value::Int(tag),
            Value::Int(payload),
            Value::Ptr(l),
            Value::Ptr(r),
        ],
    ))
}

struct Parser<'s> {
    src: &'s [u8],
    pos: usize,
}

impl<'s> Parser<'s> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> u8 {
        let c = self.src[self.pos];
        self.pos += 1;
        c
    }
}

/// `alt := cat ('|' cat)*`
fn parse_alt(vm: &mut Vm, p: &Lexgen, ps: &mut Parser<'_>) -> Addr {
    vm.push_frame(p.work);
    let first = parse_cat(vm, p, ps);
    vm.set_slot(0, Value::Ptr(first));
    while ps.peek() == Some(b'|') {
        ps.bump();
        let next = parse_cat(vm, p, ps);
        vm.set_slot(1, Value::Ptr(next));
        let l = vm.slot_ptr(0);
        let r = vm.slot_ptr(1);
        let node = re(vm, p, RE_ALT, 0, l, r);
        vm.set_slot(0, Value::Ptr(node));
    }
    let out = vm.slot_ptr(0);
    vm.pop_frame();
    out
}

/// `cat := rep+`
fn parse_cat(vm: &mut Vm, p: &Lexgen, ps: &mut Parser<'_>) -> Addr {
    vm.push_frame(p.work);
    let mut have = false;
    vm.set_slot(0, Value::NULL);
    while let Some(c) = ps.peek() {
        if c == b'|' || c == b')' {
            break;
        }
        let next = parse_rep(vm, p, ps);
        if have {
            vm.set_slot(1, Value::Ptr(next));
            let l = vm.slot_ptr(0);
            let r = vm.slot_ptr(1);
            let node = re(vm, p, RE_CAT, 0, l, r);
            vm.set_slot(0, Value::Ptr(node));
        } else {
            vm.set_slot(0, Value::Ptr(next));
            have = true;
        }
    }
    let out = if have {
        vm.slot_ptr(0)
    } else {
        re(vm, p, RE_EPS, 0, Addr::NULL, Addr::NULL)
    };
    vm.pop_frame();
    out
}

/// `rep := atom '*'?`
fn parse_rep(vm: &mut Vm, p: &Lexgen, ps: &mut Parser<'_>) -> Addr {
    vm.push_frame(p.work);
    let atom = parse_atom(vm, p, ps);
    vm.set_slot(0, Value::Ptr(atom));
    let out = if ps.peek() == Some(b'*') {
        ps.bump();
        let a = vm.slot_ptr(0);
        re(vm, p, RE_STAR, 0, a, Addr::NULL)
    } else {
        vm.slot_ptr(0)
    };
    vm.pop_frame();
    out
}

/// `atom := '(' alt ')' | '[' lo '-' hi ']' | char`
fn parse_atom(vm: &mut Vm, p: &Lexgen, ps: &mut Parser<'_>) -> Addr {
    match ps.bump() {
        b'(' => {
            let inner = parse_alt(vm, p, ps);
            assert_eq!(ps.bump(), b')', "unbalanced parenthesis in token spec");
            inner
        }
        b'[' => {
            let lo = ps.bump();
            assert_eq!(ps.bump(), b'-', "malformed range in token spec");
            let hi = ps.bump();
            assert_eq!(ps.bump(), b']', "malformed range in token spec");
            re(
                vm,
                p,
                RE_RANGE,
                i64::from(lo) + 256 * i64::from(hi),
                Addr::NULL,
                Addr::NULL,
            )
        }
        c => re(
            vm,
            p,
            RE_RANGE,
            i64::from(c) + 256 * i64::from(c),
            Addr::NULL,
            Addr::NULL,
        ),
    }
}

// ----- Thompson construction ------------------------------------------------

/// NFA builder: edges are heap lists of `[from, payload, to, next]` where
/// payload = −1 means ε, otherwise lo + 256·hi. The edge lists and state
/// counter live in a 3-slot record "builder": [edges, accept_list,
/// n_states].
const NFA_EPS: i64 = -1;

fn add_edge(vm: &mut Vm, p: &Lexgen, builder: Addr, from: i64, payload: i64, to: i64) {
    vm.push_frame(p.work);
    vm.set_slot(0, Value::Ptr(builder));
    let edges = vm.load_ptr(builder, 0);
    let edge = must(vm.alloc_record(
        p.nfa_site,
        &[
            Value::Int(from),
            Value::Int(payload),
            Value::Int(to),
            Value::Ptr(edges),
        ],
    ));
    let builder = vm.slot_ptr(0);
    vm.store_ptr(builder, 0, edge);
    vm.pop_frame();
}

fn fresh_state(vm: &mut Vm, builder: Addr) -> i64 {
    let n = vm.load_int(builder, 2);
    vm.store_int(builder, 2, n + 1);
    n
}

/// Compiles `ast` into the NFA between fresh entry/exit states; returns
/// `(entry, exit)`.
fn thompson(vm: &mut Vm, p: &Lexgen, builder: Addr, ast: Addr) -> (i64, i64) {
    vm.push_frame(p.work);
    vm.set_slot(0, Value::Ptr(builder));
    vm.set_slot(1, Value::Ptr(ast));
    let tag = vm.load_int(ast, 0);
    let out = match tag {
        RE_RANGE => {
            let payload = vm.load_int(ast, 1);
            let builder = vm.slot_ptr(0);
            let s = fresh_state(vm, builder);
            let t = fresh_state(vm, builder);
            let builder = vm.slot_ptr(0);
            add_edge(vm, p, builder, s, payload, t);
            (s, t)
        }
        RE_EPS => {
            let builder = vm.slot_ptr(0);
            let s = fresh_state(vm, builder);
            let t = fresh_state(vm, builder);
            let builder = vm.slot_ptr(0);
            add_edge(vm, p, builder, s, NFA_EPS, t);
            (s, t)
        }
        RE_CAT => {
            let l = vm.load_ptr(ast, 2);
            let builder = vm.slot_ptr(0);
            let (ls, lt) = thompson(vm, p, builder, l);
            let ast = vm.slot_ptr(1);
            let r = vm.load_ptr(ast, 3);
            let builder = vm.slot_ptr(0);
            let (rs, rt) = thompson(vm, p, builder, r);
            let builder = vm.slot_ptr(0);
            add_edge(vm, p, builder, lt, NFA_EPS, rs);
            (ls, rt)
        }
        RE_ALT => {
            let builder = vm.slot_ptr(0);
            let s = fresh_state(vm, builder);
            let t = fresh_state(vm, builder);
            let l = vm.load_ptr(ast, 2);
            let builder = vm.slot_ptr(0);
            let (ls, lt) = thompson(vm, p, builder, l);
            let ast = vm.slot_ptr(1);
            let r = vm.load_ptr(ast, 3);
            let builder = vm.slot_ptr(0);
            let (rs, rt) = thompson(vm, p, builder, r);
            let builder = vm.slot_ptr(0);
            add_edge(vm, p, builder, s, NFA_EPS, ls);
            let builder = vm.slot_ptr(0);
            add_edge(vm, p, builder, s, NFA_EPS, rs);
            let builder = vm.slot_ptr(0);
            add_edge(vm, p, builder, lt, NFA_EPS, t);
            let builder = vm.slot_ptr(0);
            add_edge(vm, p, builder, rt, NFA_EPS, t);
            (s, t)
        }
        RE_STAR => {
            let builder = vm.slot_ptr(0);
            let s = fresh_state(vm, builder);
            let t = fresh_state(vm, builder);
            let inner = vm.load_ptr(ast, 2);
            let builder = vm.slot_ptr(0);
            let (is, it) = thompson(vm, p, builder, inner);
            let builder = vm.slot_ptr(0);
            add_edge(vm, p, builder, s, NFA_EPS, is);
            let builder = vm.slot_ptr(0);
            add_edge(vm, p, builder, it, NFA_EPS, is);
            let builder = vm.slot_ptr(0);
            add_edge(vm, p, builder, s, NFA_EPS, t);
            let builder = vm.slot_ptr(0);
            add_edge(vm, p, builder, it, NFA_EPS, t);
            (s, t)
        }
        _ => unreachable!("bad regex tag"),
    };
    vm.pop_frame();
    out
}

// ----- subset construction ---------------------------------------------------

/// Sorted insertion of a state id into a set list (allocates the spine).
fn set_insert(vm: &mut Vm, p: &Lexgen, set: Addr, id: i64) -> Addr {
    vm.push_frame(p.work);
    vm.set_slot(0, Value::Ptr(set));
    let out = if set.is_null() || vm.load_int(set, 0) > id {
        let set = vm.slot_ptr(0);
        must(vm.alloc_record(p.set_site, &[Value::Int(id), Value::Ptr(set)]))
    } else if vm.load_int(set, 0) == id {
        set
    } else {
        let t = vm.load_ptr(set, 1);
        let nt = set_insert(vm, p, t, id);
        vm.set_slot(1, Value::Ptr(nt));
        let set = vm.slot_ptr(0);
        let h = vm.load_int(set, 0);
        let nt = vm.slot_ptr(1);
        must(vm.alloc_record(p.set_site, &[Value::Int(h), Value::Ptr(nt)]))
    };
    vm.pop_frame();
    out
}

fn set_contains(vm: &mut Vm, mut set: Addr, id: i64) -> bool {
    while !set.is_null() {
        let h = vm.load_int(set, 0);
        if h == id {
            return true;
        }
        if h > id {
            return false;
        }
        set = vm.load_ptr(set, 1);
    }
    false
}

fn set_eq(vm: &mut Vm, mut a: Addr, mut b: Addr) -> bool {
    loop {
        if a.is_null() || b.is_null() {
            return a == b;
        }
        if vm.load_int(a, 0) != vm.load_int(b, 0) {
            return false;
        }
        a = vm.load_ptr(a, 1);
        b = vm.load_ptr(b, 1);
    }
}

/// ε-closure of `set` — the deeply recursive walk: each reached state
/// recurses into its ε-successors, one frame per NFA state on the path.
/// Traversal uses the host edge index; all set building stays in the
/// heap.
fn eps_close(vm: &mut Vm, p: &Lexgen, edges: &[Vec<(i64, i64)>], set: Addr, state: i64) -> Addr {
    vm.push_frame(p.work);
    vm.set_slot(1, Value::Ptr(set));
    if set_contains(vm, set, state) {
        let out = vm.slot_ptr(1);
        vm.pop_frame();
        return out;
    }
    let set = vm.slot_ptr(1);
    let set = set_insert(vm, p, set, state);
    vm.set_slot(1, Value::Ptr(set));
    for &(payload, to) in &edges[state as usize] {
        if payload == NFA_EPS {
            let set = vm.slot_ptr(1);
            let set = eps_close(vm, p, edges, set, to);
            vm.set_slot(1, Value::Ptr(set));
        }
    }
    let out = vm.slot_ptr(1);
    vm.pop_frame();
    out
}

/// The byte alphabet the generated lexer discriminates on.
const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789 +-*/=<>();_";

/// Runs the benchmark.
pub fn run(vm: &mut Vm, scale: u32) -> u64 {
    let p = setup(vm);
    // The token description: an ML-flavoured lexical spec. Order encodes
    // priority (keywords before identifiers).
    let base_spec: &[(&str, &str)] = &[
        ("LET", "let"),
        ("IN", "in"),
        ("END", "end"),
        ("FUN", "fun"),
        ("IF", "if"),
        ("THEN", "then"),
        ("ELSE", "else"),
        ("VAL", "val"),
        ("ID", "[a-z]([a-z]|[0-9]|_)*"),
        ("NUM", "[0-9][0-9]*"),
        ("WS", "( )( )*"),
        ("OP", "+|-|*|/|=|<|>|<=|>=|;"),
    ];
    // The paper's Lexgen processes the full SML lexical description —
    // hundreds of rules. Pad the spec with generated keywords so the NFA
    // and the subset-construction state sets reach a comparable scale
    // (this is where Lexgen's deep recursion comes from: ε-closures and
    // sorted-set insertions recurse once per state).
    let mut spec: Vec<(String, String)> = base_spec
        .iter()
        .map(|&(n, p)| (n.to_string(), p.to_string()))
        .collect();
    let mut kwrng = XorShift::new(0x13e);
    for i in 0..(24 + 16 * scale.min(10) as usize) {
        let len = 6 + kwrng.below(8) as usize;
        let word: String = (0..len)
            .map(|_| (b'a' + kwrng.below(26) as u8) as char)
            .collect();
        spec.push((format!("KW{i}"), word));
    }

    vm.push_frame(p.work);
    // Builder record: [edges, accepts, n_states] — accepts is a list of
    // [state, rule_index] records.
    let builder = must(vm.alloc_record(p.nfa_site, &[Value::NULL, Value::NULL, Value::Int(0)]));
    vm.set_slot(0, Value::Ptr(builder));
    let builder = vm.slot_ptr(0);
    let start = fresh_state(vm, builder);
    for (idx, (_, pattern)) in spec.iter().enumerate() {
        let mut ps = Parser {
            src: pattern.as_bytes(),
            pos: 0,
        };
        let ast = parse_alt(vm, &p, &mut ps);
        vm.set_slot(1, Value::Ptr(ast));
        let builder = vm.slot_ptr(0);
        let ast = vm.slot_ptr(1);
        let (entry, exit) = thompson(vm, &p, builder, ast);
        let builder = vm.slot_ptr(0);
        add_edge(vm, &p, builder, start, NFA_EPS, entry);
        // Record the accepting state.
        let builder = vm.slot_ptr(0);
        let accepts = vm.load_ptr(builder, 1);
        let acc = must(vm.alloc_record(
            p.nfa_site,
            &[
                Value::Int(exit),
                Value::Int(idx as i64),
                Value::Ptr(accepts),
            ],
        ));
        let builder = vm.slot_ptr(0);
        vm.store_ptr(builder, 1, acc);
    }

    // Host-side index of the (now complete, immutable) NFA edges:
    // per-state out-edge lists of plain integers. The heap list remains
    // the NFA of record; the index only accelerates traversal, as the
    // per-state edge vectors of a compiled lexer generator would.
    let edge_index: Vec<Vec<(i64, i64)>> = {
        let builder = vm.slot_ptr(0);
        let n_states = vm.load_int(builder, 2) as usize;
        let mut index = vec![Vec::new(); n_states];
        let mut edge = vm.load_ptr(builder, 0);
        while !edge.is_null() {
            let from = vm.load_int(edge, 0) as usize;
            let payload = vm.load_int(edge, 1);
            let to = vm.load_int(edge, 2);
            index[from].push((payload, to));
            edge = vm.load_ptr(edge, 3);
        }
        index
    };

    // Subset construction. DFA states: list of [set, id, trans] where
    // trans is a 48-entry pointer array of next-state records (or null).
    // Worklist: list of dfa-state records.
    vm.set_slot(2, Value::NULL); // dfa states
    let s0 = eps_close(vm, &p, &edge_index, Addr::NULL, start);
    vm.set_slot(3, Value::Ptr(s0));
    let trans = must(vm.alloc_ptr_array(p.dfa_site, ALPHABET.len(), Addr::NULL));
    vm.set_slot(4, Value::Ptr(trans));
    let s0 = vm.slot_ptr(3);
    let trans = vm.slot_ptr(4);
    let d0 = must(vm.alloc_record(
        p.dfa_site,
        &[
            Value::Ptr(s0),
            Value::Int(0),
            Value::Ptr(trans),
            Value::NULL,
        ],
    ));
    vm.set_slot(2, Value::Ptr(d0));
    let mut n_dfa = 1i64;

    // Worklist of unprocessed DFA states (their record addrs), rooted in
    // slot 5 as [state, next] cells.
    let d0 = vm.slot_ptr(2);
    let wl = must(vm.alloc_record(p.dfa_site, &[Value::Ptr(d0), Value::NULL]));
    vm.set_slot(5, Value::Ptr(wl));
    while !vm.slot_ptr(5).is_null() {
        let wl = vm.slot_ptr(5);
        let dstate = vm.load_ptr(wl, 0);
        let rest = vm.load_ptr(wl, 1);
        vm.set_slot(5, Value::Ptr(rest));
        vm.set_slot(3, Value::Ptr(dstate));
        for (ci, &c) in ALPHABET.iter().enumerate() {
            // Move: states reachable on byte c from the set, ε-closed.
            vm.set_slot(4, Value::NULL); // target set accumulator
            let dstate = vm.slot_ptr(3);
            let set = vm.load_ptr(dstate, 0);
            let mut cursor = set;
            while !cursor.is_null() {
                let sid = vm.load_int(cursor, 0);
                let mut target_hits: Vec<i64> = Vec::new();
                for &(payload, to) in &edge_index[sid as usize] {
                    if payload != NFA_EPS {
                        let (lo, hi) = ((payload % 256) as u8, (payload / 256) as u8);
                        if lo <= c && c <= hi {
                            target_hits.push(to);
                        }
                    }
                }
                // Record cursor position by state id (lists may move
                // during closure allocation below).
                let cursor_id = sid;
                for t in target_hits {
                    let acc = vm.slot_ptr(4);
                    let acc = eps_close(vm, &p, &edge_index, acc, t);
                    vm.set_slot(4, Value::Ptr(acc));
                }
                // Re-find the cursor: walk the (possibly moved) set to
                // just past cursor_id.
                let dstate = vm.slot_ptr(3);
                let set = vm.load_ptr(dstate, 0);
                cursor = set;
                while !cursor.is_null() && vm.load_int(cursor, 0) <= cursor_id {
                    cursor = vm.load_ptr(cursor, 1);
                }
            }
            let target = vm.slot_ptr(4);
            if target.is_null() {
                continue;
            }
            // Known DFA state?
            let mut existing = Addr::NULL;
            let mut d = vm.slot_ptr(2);
            while !d.is_null() {
                let dset = vm.load_ptr(d, 0);
                let target = vm.slot_ptr(4);
                if set_eq(vm, dset, target) {
                    existing = d;
                    break;
                }
                d = vm.load_ptr(d, 3);
            }
            if existing.is_null() {
                let trans = must(vm.alloc_ptr_array(p.dfa_site, ALPHABET.len(), Addr::NULL));
                vm.set_slot(1, Value::Ptr(trans));
                let target = vm.slot_ptr(4);
                let trans = vm.slot_ptr(1);
                let states = vm.slot_ptr(2);
                let nd = must(vm.alloc_record(
                    p.dfa_site,
                    &[
                        Value::Ptr(target),
                        Value::Int(n_dfa),
                        Value::Ptr(trans),
                        Value::Ptr(states),
                    ],
                ));
                n_dfa += 1;
                vm.set_slot(2, Value::Ptr(nd));
                // Push onto the worklist.
                let nd = vm.slot_ptr(2);
                let wl = vm.slot_ptr(5);
                let cell = must(vm.alloc_record(p.dfa_site, &[Value::Ptr(nd), Value::Ptr(wl)]));
                vm.set_slot(5, Value::Ptr(cell));
                existing = vm.slot_ptr(2);
            }
            // Install the transition (a pointer update into the table —
            // Lexgen's couple hundred updates in Table 2).
            vm.set_slot(1, Value::Ptr(existing));
            let dstate = vm.slot_ptr(3);
            let trans = vm.load_ptr(dstate, 2);
            let existing = vm.slot_ptr(1);
            vm.store_ptr(trans, ci, existing);
        }
    }

    // Precompute each DFA state's best (lowest-priority-index) accepting
    // rule, once — the generated scanner's action table.
    let accept_table: Vec<i64> = {
        let mut table = vec![i64::MAX; n_dfa as usize];
        let mut d = vm.slot_ptr(2);
        while !d.is_null() {
            vm.set_slot(3, Value::Ptr(d));
            let id = vm.load_int(d, 1) as usize;
            let builder = vm.slot_ptr(0);
            let mut acc = vm.load_ptr(builder, 1);
            let mut best = i64::MAX;
            while !acc.is_null() {
                let st = vm.load_int(acc, 0);
                let rule = vm.load_int(acc, 1);
                let d2 = vm.slot_ptr(3);
                let set = vm.load_ptr(d2, 0);
                if set_contains(vm, set, st) {
                    best = best.min(rule);
                }
                acc = vm.load_ptr(acc, 2);
            }
            table[id] = best;
            let d2 = vm.slot_ptr(3);
            d = vm.load_ptr(d2, 3);
        }
        table
    };

    // ----- tokenize a generated source text with the DFA -----
    let src_len = 2_000 * scale.max(1) as usize;
    let src = must(vm.alloc_raw_array(p.tok_site, src_len));
    vm.set_slot(3, Value::Ptr(src));
    let mut rng = XorShift::new(0x1e4);
    let words = [
        "let", "val", "x1", "fun", "foo", "42", "7", "if", "then", "else", "in", "end",
    ];
    let ops = ["=", "+", "<=", ";", "-", "*"];
    {
        let mut pos = 0usize;
        let src = vm.slot_ptr(3);
        while pos < src_len {
            let tok: &str = if rng.below(3) == 0 {
                ops[rng.below(ops.len() as u64) as usize]
            } else {
                words[rng.below(words.len() as u64) as usize]
            };
            for &b in tok.as_bytes() {
                if pos >= src_len {
                    break;
                }
                vm.store_byte(src, pos, b);
                pos += 1;
            }
            if pos < src_len {
                vm.store_byte(src, pos, b' ');
                pos += 1;
            }
        }
    }

    // Longest-match scanning; emits a token list (short-lived).
    let mut h = 0u64;
    let mut pos = 0usize;
    let mut tokens = 0u64;
    while pos < src_len {
        let mut state = {
            // DFA state with id 0 (the list is in reverse creation order).
            let mut d = vm.slot_ptr(2);
            let mut found = Addr::NULL;
            while !d.is_null() {
                if vm.load_int(d, 1) == 0 {
                    found = d;
                    break;
                }
                d = vm.load_ptr(d, 3);
            }
            found
        };
        let mut best: Option<(usize, i64)> = None;
        let mut look = pos;
        while look < src_len && !state.is_null() {
            let rule = accept_table[vm.load_int(state, 1) as usize];
            if rule != i64::MAX {
                best = Some((look, rule));
            }
            let src = vm.slot_ptr(3);
            let c = vm.load_byte(src, look);
            let ci = match ALPHABET.iter().position(|&a| a == c) {
                Some(i) => i,
                None => break,
            };
            let trans = vm.load_ptr(state, 2);
            state = vm.load_ptr(trans, ci);
            look += 1;
        }
        // Check acceptance at the final position too.
        if !state.is_null() {
            let rule = accept_table[vm.load_int(state, 1) as usize];
            if rule != i64::MAX {
                best = Some((look, rule));
            }
        }
        match best {
            Some((end, rule)) => {
                // Emit a token record (short-lived).
                let _tok = must(vm.alloc_record(
                    p.tok_site,
                    &[
                        Value::Int(rule),
                        Value::Int(pos as i64),
                        Value::Int(end as i64),
                    ],
                ));
                h = mix(h, rule as u64);
                tokens += 1;
                pos = end.max(pos + 1);
            }
            None => pos += 1, // skip unlexable byte
        }
    }
    vm.pop_frame();
    mix(mix(h, tokens), n_dfa as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::{run_all_kinds, tiny_config};
    use tilgc_core::{build_vm, CollectorKind};

    #[test]
    fn deterministic_and_collector_independent() {
        let results = run_all_kinds(|vm| run(vm, 1), &tiny_config());
        assert!(
            results.windows(2).all(|w| w[0] == w[1]),
            "results differ: {results:?}"
        );
    }

    #[test]
    fn dfa_tables_are_long_lived() {
        let mut vm = build_vm(CollectorKind::Generational, &tiny_config());
        run(&mut vm, 1);
        assert!(vm.gc_stats().collections > 0);
        assert!(
            vm.gc_stats().copied_bytes > 0,
            "DFA tables survive collections"
        );
        assert!(
            vm.mutator_stats().pointer_updates > 50,
            "transition installs are updates"
        );
    }
}
