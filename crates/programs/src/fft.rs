//! `FFT` — fast Fourier transform multiplying polynomials (degrees up to
//! 65 536 in the paper, scaled down here).
//!
//! The workload is array-dominated: unboxed double arrays big enough for
//! the large-object space, a shallow stack, and almost no garbage — the
//! paper measures FFT spending 0.2 % of its time in GC precisely because
//! there is nothing for a collector to do. The polynomial product is
//! computed with an in-place iterative radix-2 Cooley–Tukey transform.

use tilgc_mem::Addr;
use tilgc_runtime::{DescId, FrameDesc, Trace, Value, Vm};

use crate::common::{mix, must, XorShift};

struct Fft {
    main: DescId,
    transform: DescId,
    re_site: tilgc_mem::SiteId,
    im_site: tilgc_mem::SiteId,
}

fn setup(vm: &mut Vm) -> Fft {
    Fft {
        main: vm.register_frame(FrameDesc::new("fft::main").slots(4, Trace::Pointer)),
        transform: vm.register_frame(
            FrameDesc::new("fft::transform")
                .slots(2, Trace::Pointer)
                .slot(Trace::NonPointer),
        ),
        re_site: vm.site("fft::re"),
        im_site: vm.site("fft::im"),
    }
}

/// In-place iterative FFT over the two raw arrays (`inverse` flips the
/// twiddle sign). Non-allocating: addresses stay valid throughout.
fn fft_in_place(vm: &mut Vm, p: &Fft, re: Addr, im: Addr, n: usize, inverse: bool) {
    vm.push_frame(p.transform);
    vm.set_slot(0, Value::Ptr(re));
    vm.set_slot(1, Value::Ptr(im));
    vm.set_slot(2, Value::Int(n as i64));
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            let (ri, rj) = (vm.load_f64(re, i), vm.load_f64(re, j));
            vm.store_f64(re, i, rj);
            vm.store_f64(re, j, ri);
            let (ii, ij) = (vm.load_f64(im, i), vm.load_f64(im, j));
            vm.store_f64(im, i, ij);
            vm.store_f64(im, j, ii);
        }
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2usize;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let (mut cr, mut ci) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let (ar, ai) = (vm.load_f64(re, i + k), vm.load_f64(im, i + k));
                let (br, bi) = (
                    vm.load_f64(re, i + k + len / 2),
                    vm.load_f64(im, i + k + len / 2),
                );
                let (tr, ti) = (br * cr - bi * ci, br * ci + bi * cr);
                vm.store_f64(re, i + k, ar + tr);
                vm.store_f64(im, i + k, ai + ti);
                vm.store_f64(re, i + k + len / 2, ar - tr);
                vm.store_f64(im, i + k + len / 2, ai - ti);
                let ncr = cr * wr - ci * wi;
                ci = cr * wi + ci * wr;
                cr = ncr;
            }
            i += len;
        }
        len <<= 1;
    }
    if inverse {
        for i in 0..n {
            let r = vm.load_f64(re, i);
            let v = vm.load_f64(im, i);
            vm.store_f64(re, i, r / n as f64);
            vm.store_f64(im, i, v / n as f64);
        }
    }
    vm.pop_frame();
}

/// Multiplies two pseudo-random polynomials of degree `deg` via FFT and
/// checksums the rounded product coefficients.
fn multiply_round(vm: &mut Vm, p: &Fft, deg: usize, seed: u64) -> u64 {
    let n = (2 * deg).next_power_of_two();
    vm.push_frame(p.main);
    // slot0..3: re/im of combined input (packing both polynomials into
    // one complex transform).
    let re = must(vm.alloc_raw_array(p.re_site, n * 8));
    vm.set_slot(0, Value::Ptr(re));
    let im = must(vm.alloc_raw_array(p.im_site, n * 8));
    vm.set_slot(1, Value::Ptr(im));
    let re = vm.slot_ptr(0);
    let im = vm.slot_ptr(1);
    let mut rng = XorShift::new(seed);
    for i in 0..deg {
        // a in the real part, b in the imaginary part.
        vm.store_f64(re, i, (rng.below(100)) as f64);
        vm.store_f64(im, i, (rng.below(100)) as f64);
    }
    fft_in_place(vm, p, re, im, n, false);
    // Pointwise: c(w) = A(w)·B(w) recovered from the packed transform:
    // A = (F + conj(F rev))/2, B = (F - conj(F rev))/2i.
    let pr = must(vm.alloc_raw_array(p.re_site, n * 8));
    vm.set_slot(2, Value::Ptr(pr));
    let pi = must(vm.alloc_raw_array(p.im_site, n * 8));
    vm.set_slot(3, Value::Ptr(pi));
    let re = vm.slot_ptr(0);
    let im = vm.slot_ptr(1);
    let pr = vm.slot_ptr(2);
    let pi = vm.slot_ptr(3);
    for k in 0..n {
        let krev = (n - k) % n;
        let (fr, fi) = (vm.load_f64(re, k), vm.load_f64(im, k));
        let (gr, gi) = (vm.load_f64(re, krev), -vm.load_f64(im, krev));
        let (ar, ai) = ((fr + gr) / 2.0, (fi + gi) / 2.0);
        let (br, bi) = ((fi - gi) / 2.0, (gr - fr) / 2.0);
        vm.store_f64(pr, k, ar * br - ai * bi);
        vm.store_f64(pi, k, ar * bi + ai * br);
    }
    fft_in_place(vm, p, pr, pi, n, true);
    let pr = vm.slot_ptr(2);
    let mut h = 0u64;
    for i in 0..(2 * deg - 1) {
        let c = vm.load_f64(pr, i).round() as i64;
        h = mix(h, c as u64);
    }
    vm.pop_frame();
    h
}

/// Runs the benchmark: polynomial products of doubling degrees up to
/// `256 << scale`.
pub fn run(vm: &mut Vm, scale: u32) -> u64 {
    let p = setup(vm);
    let mut h = 0u64;
    let mut deg = 64usize;
    let max_deg = 256usize << scale.min(8);
    let mut seed = 1;
    while deg <= max_deg {
        h = mix(h, multiply_round(vm, &p, deg, seed));
        seed += 1;
        deg *= 2;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::{run_all_kinds, tiny_config};
    use tilgc_core::{build_vm, CollectorKind};

    #[test]
    fn fft_multiplication_matches_schoolbook() {
        let mut vm = build_vm(CollectorKind::Generational, &tiny_config());
        let p = setup(&mut vm);
        // Reproduce the same pseudo-random polynomials host-side.
        let deg = 64;
        let mut rng = XorShift::new(5);
        let mut a = vec![0i64; deg];
        let mut b = vec![0i64; deg];
        for i in 0..deg {
            a[i] = rng.below(100) as i64;
            b[i] = rng.below(100) as i64;
        }
        let mut expect = vec![0i64; 2 * deg - 1];
        for i in 0..deg {
            for j in 0..deg {
                expect[i + j] += a[i] * b[j];
            }
        }
        let mut h = 0u64;
        for &c in &expect {
            h = mix(h, c as u64);
        }
        assert_eq!(multiply_round(&mut vm, &p, deg, 5), h);
    }

    #[test]
    fn arrays_dominate_allocation() {
        let mut vm = build_vm(CollectorKind::Generational, &tiny_config());
        run(&mut vm, 1);
        let s = vm.mutator_stats();
        assert!(s.array_bytes() > 50 * s.record_bytes.max(1));
    }

    #[test]
    fn deterministic_and_collector_independent() {
        let results = run_all_kinds(|vm| run(vm, 0), &tiny_config());
        assert!(
            results.windows(2).all(|w| w[0] == w[1]),
            "results differ: {results:?}"
        );
    }
}
