//! `Simple` — the SIMPLE spherical fluid-dynamics kernel (Ekanadham &
//! Arvind 1987), run for a few iterations on a 2-D grid.
//!
//! The state — velocity, pressure and energy fields — lives in unboxed
//! double arrays that are re-created every half-step: the previous
//! generation of grids survives a couple of collections and then dies,
//! while boundary-flux records churn in the nursery. The long-lived grid
//! arrays are what pretenuring targets (Table 6 reports a 44 % reduction
//! in copied data and 12 % in GC time for Simple).

use tilgc_mem::{Addr, SiteId};
use tilgc_runtime::{DescId, FrameDesc, Trace, Value, Vm};

use crate::common::{mix, must};

struct Simple {
    work: DescId,
    grid_site: SiteId,
    flux_site: SiteId,
    row_site: SiteId,
    row_array_site: SiteId,
}

fn setup(vm: &mut Vm) -> Simple {
    Simple {
        work: vm.register_frame(
            FrameDesc::new("simple::work")
                .slots(6, Trace::Pointer)
                .slots(2, Trace::NonPointer),
        ),
        grid_site: vm.site("simple::grid"),
        flux_site: vm.site("simple::flux"),
        row_site: vm.site("simple::rowstat"),
        row_array_site: vm.site("simple::row"),
    }
}

/// Allocates an n×n double grid as a pointer array of per-row double
/// arrays — the representation an SML `real array array` has, and the
/// reason the paper's Simple copies its state arrays through the
/// generations (each 256-byte row is an ordinary nursery object).
fn grid_init(vm: &mut Vm, p: &Simple, n: usize, f: impl Fn(usize, usize) -> f64) -> Addr {
    vm.push_frame(p.work);
    let g = must(vm.alloc_ptr_array(p.grid_site, n, Addr::NULL));
    vm.set_slot(0, Value::Ptr(g));
    for i in 0..n {
        let row = must(vm.alloc_raw_array(p.row_array_site, n * 8));
        vm.set_slot(1, Value::Ptr(row));
        let row = vm.slot_ptr(1);
        for j in 0..n {
            vm.store_f64(row, j, f(i, j));
        }
        let g = vm.slot_ptr(0);
        let row = vm.slot_ptr(1);
        vm.store_ptr(g, i, row);
    }
    let g = vm.slot_ptr(0);
    vm.pop_frame();
    g
}

/// Reads grid element `(i, j)` through the row array (non-allocating).
fn gget(vm: &mut Vm, g: Addr, n: usize, i: usize, j: usize) -> f64 {
    debug_assert!(i < n && j < n);
    let row = vm.load_ptr(g, i);
    vm.load_f64(row, j)
}

/// Writes grid element `(i, j)` through the row array (non-allocating).
fn gset(vm: &mut Vm, g: Addr, n: usize, i: usize, j: usize, v: f64) {
    debug_assert!(i < n && j < n);
    let row = vm.load_ptr(g, i);
    vm.store_f64(row, j, v);
}

/// One full step of the (simplified) hydrodynamics update: pressure from
/// divergence, velocity from the pressure gradient, a viscosity smoothing
/// pass, and reflecting boundaries computed through short-lived flux
/// records (as the original does with per-boundary tuples). Returns the
/// new (u, v, pr) grids — the caller roots them immediately.
fn step(
    vm: &mut Vm,
    p: &Simple,
    n: usize,
    dt: f64,
    u: Addr,
    v: Addr,
    pr: Addr,
) -> (Addr, Addr, Addr, Addr, u64) {
    vm.push_frame(p.work);
    vm.set_slot(0, Value::Ptr(u));
    vm.set_slot(1, Value::Ptr(v));
    vm.set_slot(2, Value::Ptr(pr));

    // New pressure: p' = p − dt · div(u, v).
    let npr = grid_init(vm, p, n, |_, _| 0.0);
    vm.set_slot(3, Value::Ptr(npr));
    for i in 0..n {
        for j in 0..n {
            let u = vm.slot_ptr(0);
            let v = vm.slot_ptr(1);
            let pr = vm.slot_ptr(2);
            let npr = vm.slot_ptr(3);
            let du = if j + 1 < n {
                gget(vm, u, n, i, j + 1) - gget(vm, u, n, i, j)
            } else {
                0.0
            };
            let dv = if i + 1 < n {
                gget(vm, v, n, i + 1, j) - gget(vm, v, n, i, j)
            } else {
                0.0
            };
            let val = gget(vm, pr, n, i, j) - dt * (du + dv);
            gset(vm, npr, n, i, j, val);
        }
    }

    // New velocities: u' = u − dt · ∂p'/∂x (plus a viscosity smoothing),
    // likewise v'.
    let nu = grid_init(vm, p, n, |_, _| 0.0);
    vm.set_slot(4, Value::Ptr(nu));
    let nv = grid_init(vm, p, n, |_, _| 0.0);
    vm.set_slot(5, Value::Ptr(nv));
    for i in 0..n {
        for j in 0..n {
            let u = vm.slot_ptr(0);
            let v = vm.slot_ptr(1);
            let npr = vm.slot_ptr(3);
            let nu = vm.slot_ptr(4);
            let nv = vm.slot_ptr(5);
            let dpx = if j > 0 {
                gget(vm, npr, n, i, j) - gget(vm, npr, n, i, j - 1)
            } else {
                0.0
            };
            let dpy = if i > 0 {
                gget(vm, npr, n, i, j) - gget(vm, npr, n, i - 1, j)
            } else {
                0.0
            };
            // Viscosity: average with the 4-neighbourhood.
            let avg = |vmx: &mut Vm, g: Addr, i: usize, j: usize| -> f64 {
                let c = gget(vmx, g, n, i, j);
                let l = if j > 0 { gget(vmx, g, n, i, j - 1) } else { c };
                let r = if j + 1 < n {
                    gget(vmx, g, n, i, j + 1)
                } else {
                    c
                };
                let up = if i > 0 { gget(vmx, g, n, i - 1, j) } else { c };
                let dn = if i + 1 < n {
                    gget(vmx, g, n, i + 1, j)
                } else {
                    c
                };
                0.6 * c + 0.1 * (l + r + up + dn)
            };
            let su = avg(vm, u, i, j);
            let sv = avg(vm, v, i, j);
            gset(vm, nu, n, i, j, su - dt * dpx);
            gset(vm, nv, n, i, j, sv - dt * dpy);
        }
    }

    // Reflecting boundaries via flux records (short-lived churn).
    let mut boundary_hash = 0u64;
    for k in 0..n {
        let nu = vm.slot_ptr(4);
        let nv = vm.slot_ptr(5);
        let top = gget(vm, nv, n, 0, k);
        let bottom = gget(vm, nv, n, n - 1, k);
        let lft = gget(vm, nu, n, k, 0);
        let rgt = gget(vm, nu, n, k, n - 1);
        let flux = must(vm.alloc_record(
            p.flux_site,
            &[
                Value::Real(top),
                Value::Real(bottom),
                Value::Real(lft),
                Value::Real(rgt),
            ],
        ));
        let nu = vm.slot_ptr(4);
        let nv = vm.slot_ptr(5);
        let f0 = vm.load_f64(flux, 0);
        let f1 = vm.load_f64(flux, 1);
        let f2 = vm.load_f64(flux, 2);
        let f3 = vm.load_f64(flux, 3);
        gset(vm, nv, n, 0, k, -f0);
        gset(vm, nv, n, n - 1, k, -f1);
        gset(vm, nu, n, k, 0, -f2);
        gset(vm, nu, n, k, n - 1, -f3);
        boundary_hash = mix(boundary_hash, (top * 1e9) as i64 as u64);
    }

    // Per-row conservation statistics: a linked list of records the
    // driver retains across iterations (SIMPLE keeps per-zone state
    // tables — the record-dominated, long-lived data that makes the
    // benchmark a pretenuring target in Table 6).
    vm.set_slot(0, Value::NULL);
    for i in 0..n {
        let npr = vm.slot_ptr(3);
        let nu = vm.slot_ptr(4);
        let mut mass = 0.0;
        let mut mom = 0.0;
        for j in 0..n {
            mass += gget(vm, npr, n, i, j);
            mom += gget(vm, nu, n, i, j);
        }
        let list = vm.slot_ptr(0);
        let row = must(vm.alloc_record(
            p.row_site,
            &[
                Value::Int(i as i64),
                Value::Real(mass),
                Value::Real(mom),
                Value::Ptr(list),
            ],
        ));
        vm.set_slot(0, Value::Ptr(row));
        boundary_hash = mix(boundary_hash, (mass * 1e6) as i64 as u64);
    }
    let rows = vm.slot_ptr(0);
    let nu = vm.slot_ptr(4);
    let nv = vm.slot_ptr(5);
    let npr = vm.slot_ptr(3);
    vm.pop_frame();
    (nu, nv, npr, rows, boundary_hash)
}

/// Runs the benchmark: `4` iterations (as in the paper) on a
/// `24 + 8·scale` grid, two half-steps each.
pub fn run(vm: &mut Vm, scale: u32) -> u64 {
    let p = setup(vm);
    let n = 24 + 8 * scale.min(22) as usize;
    vm.push_frame(p.work);
    let u = grid_init(vm, &p, n, |i, j| ((i * 7 + j * 3) % 13) as f64 / 13.0);
    vm.set_slot(0, Value::Ptr(u));
    let v = grid_init(vm, &p, n, |i, j| ((i * 5 + j * 11) % 17) as f64 / 17.0);
    vm.set_slot(1, Value::Ptr(v));
    let pr = grid_init(vm, &p, n, |i, j| {
        let (di, dj) = (i as f64 - n as f64 / 2.0, j as f64 - n as f64 / 2.0);
        (-(di * di + dj * dj) / (n * n) as f64).exp()
    });
    vm.set_slot(2, Value::Ptr(pr));

    let iterations = 4 * scale.max(1);
    let mut h = 0u64;
    // Slots 3/4: the last two steps' row-statistics tables (long-lived
    // records, replaced on a two-step lag).
    vm.set_slot(3, Value::NULL);
    vm.set_slot(4, Value::NULL);
    for _ in 0..iterations {
        for _half in 0..2 {
            let u = vm.slot_ptr(0);
            let v = vm.slot_ptr(1);
            let pr = vm.slot_ptr(2);
            let (nu, nv, npr, rows, bh) = step(vm, &p, n, 0.01, u, v, pr);
            // Root the new generation of grids; the old becomes garbage
            // (after having been tenured — Simple's pretenure profile).
            vm.set_slot(0, Value::Ptr(nu));
            vm.set_slot(1, Value::Ptr(nv));
            vm.set_slot(2, Value::Ptr(npr));
            vm.set_slot(3, Value::Ptr(rows));
            let old_rows = vm.slot_ptr(3);
            vm.set_slot(4, Value::Ptr(old_rows));
            h = mix(h, bh);
        }
    }
    // Total energy checksum.
    let mut energy = 0.0f64;
    for i in 0..n {
        for j in 0..n {
            let u = vm.slot_ptr(0);
            let pr = vm.slot_ptr(2);
            let uu = gget(vm, u, n, i, j);
            let pp = gget(vm, pr, n, i, j);
            energy += uu * uu + pp;
        }
    }
    vm.pop_frame();
    mix(h, (energy * 1e6).round() as i64 as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::{run_all_kinds, tiny_config};
    use tilgc_core::{build_vm, CollectorKind};

    #[test]
    fn grids_are_array_allocations() {
        let mut vm = build_vm(CollectorKind::Generational, &tiny_config());
        run(&mut vm, 1);
        let s = vm.mutator_stats();
        assert!(s.raw_array_bytes > 0);
        assert!(s.record_bytes > 0, "flux records churn too");
    }

    #[test]
    fn energy_stays_finite() {
        let mut vm = build_vm(CollectorKind::Generational, &tiny_config());
        let result = run(&mut vm, 1);
        // A NaN/∞ blow-up would collapse the checksum to a constant; the
        // exact value is covered by the determinism test. Just re-run and
        // compare.
        let mut vm2 = build_vm(CollectorKind::Generational, &tiny_config());
        assert_eq!(run(&mut vm2, 1), result);
    }

    #[test]
    fn deterministic_and_collector_independent() {
        let results = run_all_kinds(|vm| run(vm, 1), &tiny_config());
        assert!(
            results.windows(2).all(|w| w[0] == w[1]),
            "results differ: {results:?}"
        );
    }
}
