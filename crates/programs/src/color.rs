//! `Color` — brute-force graph 3-coloring.
//!
//! The search assigns colors vertex by vertex with one activation record
//! per vertex, so the stack is as deep as the graph (the paper's 482
//! frames) and stays deep for the whole run — the pathological case for
//! per-collection full stack scans that Table 5 shows markers fixing
//! (74 % GC-time reduction). Assignments are functional lists; almost
//! everything allocated dies before the next collection (max live 24 KB
//! against 98 MB allocated in the paper).

use tilgc_mem::{Addr, SiteId};
use tilgc_runtime::{DescId, FrameDesc, Trace, Value, Vm};

use crate::common::{cons, head_int, mix, must, tail, XorShift};

struct Color {
    main: DescId,
    try_vertex: DescId,
    edge_site: SiteId,
    graph_site: SiteId,
    assign_site: SiteId,
    counter_site: SiteId,
}

fn setup(vm: &mut Vm) -> Color {
    Color {
        main: vm.register_frame(FrameDesc::new("color::main").slots(3, Trace::Pointer)),
        try_vertex: vm.register_frame(
            FrameDesc::new("color::try")
                .slots(3, Trace::Pointer)
                .slot(Trace::NonPointer),
        ),
        edge_site: vm.site("color::edge"),
        graph_site: vm.site("color::graph"),
        assign_site: vm.site("color::assign"),
        counter_site: vm.site("color::counter"),
    }
}

/// Builds a sparse random graph as a pointer array of adjacency lists
/// (only edges to lower-numbered vertices, which is all the search
/// needs).
fn build_graph(vm: &mut Vm, p: &Color, frames: DescId, n: usize, rng: &mut XorShift) -> Addr {
    vm.push_frame(frames);
    let graph = must(vm.alloc_ptr_array(p.graph_site, n, Addr::NULL));
    vm.set_slot(0, Value::Ptr(graph));
    for v in 1..n {
        // A spanning tree plus occasional chords: always 3-colorable, so
        // the first solution is found at full depth and the enumeration
        // then churns near the bottom of the stack — a deep, persistent
        // stack like the paper's 469-frame average.
        let degree = 1 + usize::from(rng.below(4) == 0);
        for _ in 0..degree {
            let u = rng.below(v as u64) as i64;
            let graph = vm.slot_ptr(0);
            let old = vm.load_ptr(graph, v);
            let cell = cons(vm, p.edge_site, Value::Int(u), old);
            let graph = vm.slot_ptr(0);
            vm.store_ptr(graph, v, cell);
        }
    }
    let graph = vm.slot_ptr(0);
    vm.pop_frame();
    graph
}

/// Color of vertex `u` in the assignment list (vertex `len-1-i` at
/// position `i`); non-allocating.
fn color_of(vm: &mut Vm, assignment: Addr, depth: i64, u: i64) -> i64 {
    let mut l = assignment;
    let mut v = depth - 1;
    while !l.is_null() {
        if v == u {
            return head_int(vm, l);
        }
        v -= 1;
        l = tail(vm, l);
    }
    -1
}

/// Tries every color for vertex `v`; counts complete colorings. One frame
/// per vertex — the deep stack. (The argument list mirrors the SML
/// function's environment; a record would obscure the calling convention
/// being modeled.)
#[allow(clippy::too_many_arguments)]
fn try_vertex(
    vm: &mut Vm,
    p: &Color,
    graph: Addr,
    assignment: Addr,
    v: i64,
    n: i64,
    budget: &mut i64,
    found: &mut u64,
    h: &mut u64,
) {
    if v == n {
        *found += 1;
        *h = mix(*h, *found);
        return;
    }
    if *budget <= 0 {
        return;
    }
    vm.push_frame(p.try_vertex);
    vm.set_slot(0, Value::Ptr(graph));
    vm.set_slot(1, Value::Ptr(assignment));
    vm.set_slot(3, Value::Int(v));
    'colors: for c in 0..3i64 {
        *budget -= 1;
        if *budget <= 0 {
            break;
        }
        let graph = vm.slot_ptr(0);
        let assignment = vm.slot_ptr(1);
        // Check adjacent (lower-numbered) vertices.
        let mut adj = vm.load_ptr(graph, v as usize);
        while !adj.is_null() {
            let u = head_int(vm, adj);
            if color_of(vm, assignment, v, u) == c {
                continue 'colors;
            }
            adj = tail(vm, adj);
        }
        let extended = cons(vm, p.assign_site, Value::Int(c), assignment);
        vm.set_slot(2, Value::Ptr(extended));
        let graph = vm.slot_ptr(0);
        let extended = vm.slot_ptr(2);
        try_vertex(vm, p, graph, extended, v + 1, n, budget, found, h);
    }
    vm.pop_frame();
}

/// Runs the benchmark: 3-colors a `120 + 120·min(scale,4)`-vertex sparse
/// graph, exploring up to `200_000 · scale` search nodes.
pub fn run(vm: &mut Vm, scale: u32) -> u64 {
    let p = setup(vm);
    let n = 120 + 120 * scale.min(4) as usize;
    let mut rng = XorShift::new(0xc0105);
    vm.push_frame(p.main);
    let graph = build_graph(vm, &p, p.main, n, &mut rng);
    vm.set_slot(0, Value::Ptr(graph));
    // A mutable progress counter — the source of Color's modest
    // pointer-update count in Table 2.
    let counter = must(vm.alloc_ptr_array(p.counter_site, 1, Addr::NULL));
    vm.set_slot(1, Value::Ptr(counter));

    let mut budget = 200_000i64 * i64::from(scale.max(1));
    let mut found = 0u64;
    let mut h = 0u64;
    let graph = vm.slot_ptr(0);
    try_vertex(
        vm,
        &p,
        graph,
        Addr::NULL,
        0,
        n as i64,
        &mut budget,
        &mut found,
        &mut h,
    );
    // Record the final count through the mutable cell.
    let cell = must(vm.alloc_record(p.assign_site, &[Value::Int(found as i64)]));
    let counter = vm.slot_ptr(1);
    vm.store_ptr(counter, 0, cell);
    let counter = vm.slot_ptr(1);
    let cell = vm.load_ptr(counter, 0);
    let recorded = vm.load_int(cell, 0);
    vm.pop_frame();
    mix(h, recorded as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::{run_all_kinds, tiny_config};
    use tilgc_core::{build_vm, CollectorKind};

    #[test]
    fn triangle_has_six_colorings() {
        let mut vm = build_vm(CollectorKind::Generational, &tiny_config());
        let p = setup(&mut vm);
        vm.push_frame(p.main);
        // Build the triangle by hand: 1–0, 2–0, 2–1.
        let graph = must(vm.alloc_ptr_array(p.graph_site, 3, Addr::NULL));
        vm.set_slot(0, Value::Ptr(graph));
        for (v, u) in [(1usize, 0i64), (2, 0), (2, 1)] {
            let graph = vm.slot_ptr(0);
            let old = vm.load_ptr(graph, v);
            let cell = cons(&mut vm, p.edge_site, Value::Int(u), old);
            let graph = vm.slot_ptr(0);
            vm.store_ptr(graph, v, cell);
        }
        let mut budget = 10_000;
        let mut found = 0;
        let mut h = 0;
        let graph = vm.slot_ptr(0);
        try_vertex(
            &mut vm,
            &p,
            graph,
            Addr::NULL,
            0,
            3,
            &mut budget,
            &mut found,
            &mut h,
        );
        assert_eq!(found, 6, "a triangle has 3! proper 3-colorings");
    }

    #[test]
    fn stack_reaches_graph_depth() {
        let mut vm = build_vm(CollectorKind::Generational, &tiny_config());
        run(&mut vm, 1);
        assert!(
            vm.mutator().stack.stats().max_depth > 120,
            "depth {} too shallow",
            vm.mutator().stack.stats().max_depth
        );
    }

    #[test]
    fn deterministic_and_collector_independent() {
        let results = run_all_kinds(|vm| run(vm, 1), &tiny_config());
        assert!(
            results.windows(2).all(|w| w[0] == w[1]),
            "results differ: {results:?}"
        );
    }
}
