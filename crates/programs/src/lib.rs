//! The eleven PLDI'98 benchmark programs (Table 1), re-implemented as
//! mutators of the `tilgc` heap.
//!
//! Each module implements the real algorithm — peg solitaire really
//! searches, Knuth-Bendix really completes the group axioms, FFT really
//! multiplies polynomials — but every data structure lives in the
//! simulated GC heap and every recursion pushes a described activation
//! record, so the allocation-site structure, stack-depth profile,
//! mutation rate and lifetime bimodality that drive the paper's two
//! techniques arise from the algorithms themselves.
//!
//! See [`common`] for the rooting discipline programs follow.
//!
//! # Example
//!
//! ```
//! use tilgc_core::{build_vm, CollectorKind, GcConfig};
//! use tilgc_programs::Benchmark;
//!
//! let config = GcConfig::new().heap_budget_bytes(4 << 20).nursery_bytes(32 << 10);
//! let mut vm = build_vm(CollectorKind::GenerationalStack, &config);
//! let checksum = Benchmark::Nqueen.run(&mut vm, 1);
//! assert_ne!(checksum, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checksum;
pub mod color;
pub mod common;
pub mod fft;
pub mod grobner;
pub mod knuth_bendix;
pub mod lexgen;
pub mod life;
pub mod nqueen;
pub mod peg;
pub mod pia;
pub mod simple;

#[cfg(test)]
pub(crate) mod testing;

use tilgc_runtime::Vm;

/// One of the paper's eleven benchmark programs (Table 1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Benchmark {
    /// Foxnet checksum fragment: 16 KB buffers checksummed via iterators.
    Checksum,
    /// Brute-force graph 3-coloring (deep, persistent stack).
    Color,
    /// FFT polynomial multiplication (unboxed double arrays).
    Fft,
    /// Gröbner basis of a polynomial system (Buchberger).
    Grobner,
    /// Knuth-Bendix completion of the group axioms (deepest stacks,
    /// monotonically growing live set).
    KnuthBendix,
    /// Lexical-analyzer generator (regex → NFA → DFA).
    Lexgen,
    /// Conway's Life on lists (Reade 1989).
    Life,
    /// N-queens with retained solutions (bimodal lifetimes).
    Nqueen,
    /// Peg solitaire from a Prolog translation (update-heavy).
    Peg,
    /// Perspective Inversion Algorithm (tenured data dies fast).
    Pia,
    /// SIMPLE spherical fluid dynamics (long-lived grids).
    Simple,
}

impl Benchmark {
    /// All benchmarks, in the paper's table order.
    pub const ALL: [Benchmark; 11] = [
        Benchmark::Checksum,
        Benchmark::Color,
        Benchmark::Fft,
        Benchmark::Grobner,
        Benchmark::KnuthBendix,
        Benchmark::Lexgen,
        Benchmark::Life,
        Benchmark::Nqueen,
        Benchmark::Peg,
        Benchmark::Pia,
        Benchmark::Simple,
    ];

    /// The name used in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Benchmark::Checksum => "Checksum",
            Benchmark::Color => "Color",
            Benchmark::Fft => "FFT",
            Benchmark::Grobner => "Grobner",
            Benchmark::KnuthBendix => "Knuth-Bendix",
            Benchmark::Lexgen => "Lexgen",
            Benchmark::Life => "Life",
            Benchmark::Nqueen => "Nqueen",
            Benchmark::Peg => "Peg",
            Benchmark::Pia => "PIA",
            Benchmark::Simple => "Simple",
        }
    }

    /// The paper's Table 1 description.
    pub fn description(&self) -> &'static str {
        match self {
            Benchmark::Checksum => {
                "Checksum fragment from the Foxnet; 16KB buffers checksummed using iterators"
            }
            Benchmark::Color => "Brute-force graph coloring",
            Benchmark::Fft => "Fast Fourier transform, multiplying polynomials",
            Benchmark::Grobner => "Compute Grobner basis of a set of polynomials",
            Benchmark::KnuthBendix => "An implementation of the Knuth-Bendix completion algorithm",
            Benchmark::Lexgen => "A lexical-analyzer generator processing a lexical description",
            Benchmark::Life => "The game of Life implemented using lists",
            Benchmark::Nqueen => "The N-queens problem",
            Benchmark::Peg => "Solving a peg-jumping game (output of a Prolog to ML translator)",
            Benchmark::Pia => {
                "The Perspective Inversion Algorithm deciding the location of an object in a \
                 perspective video image"
            }
            Benchmark::Simple => "A spherical fluid-dynamics program",
        }
    }

    /// Parses a (case-insensitive) benchmark name.
    pub fn from_name(name: &str) -> Option<Benchmark> {
        let lower = name.to_ascii_lowercase();
        Benchmark::ALL
            .into_iter()
            .find(|b| b.name().to_ascii_lowercase().replace('-', "") == lower.replace('-', ""))
    }

    /// Runs the benchmark on `vm` at the given scale, returning its
    /// result checksum. The checksum is a pure function of the inputs —
    /// never of the collector — which the test suites rely on.
    pub fn run(&self, vm: &mut Vm, scale: u32) -> u64 {
        match self {
            Benchmark::Checksum => checksum::run(vm, scale),
            Benchmark::Color => color::run(vm, scale),
            Benchmark::Fft => fft::run(vm, scale),
            Benchmark::Grobner => grobner::run(vm, scale),
            Benchmark::KnuthBendix => knuth_bendix::run(vm, scale),
            Benchmark::Lexgen => lexgen::run(vm, scale),
            Benchmark::Life => life::run(vm, scale),
            Benchmark::Nqueen => nqueen::run(vm, scale),
            Benchmark::Peg => peg::run(vm, scale),
            Benchmark::Pia => pia::run(vm, scale),
            Benchmark::Simple => simple::run(vm, scale),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::from_name(b.name()), Some(b));
            assert!(!b.description().is_empty());
        }
        assert_eq!(
            Benchmark::from_name("knuthbendix"),
            Some(Benchmark::KnuthBendix)
        );
        assert_eq!(Benchmark::from_name("nosuch"), None);
    }
}
