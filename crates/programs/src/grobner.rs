//! `Gröbner` — Buchberger's algorithm computing a Gröbner basis.
//!
//! Polynomials over GF(32003) in three variables, represented as sorted
//! linked lists of monomial records (coefficient, packed exponent vector,
//! next). Reduction and S-polynomial formation churn through short-lived
//! list cells while the growing basis is medium-lived — the paper's
//! profile of a symbolic-computation workload (139 MB allocated, 128 KB
//! max live, moderate stack).

use tilgc_mem::{Addr, SiteId};
use tilgc_runtime::{DescId, FrameDesc, Trace, Value, Vm};

use crate::common::{mix, must, tail};

const P: i64 = 32003;
/// Exponents are packed base-64: x^a y^b z^c ⇒ a + 64 b + 4096 c.
const B: i64 = 64;

fn mono_mul(a: i64, b: i64) -> i64 {
    let m = a + b;
    debug_assert!(
        m % B < B && (m / B) % B < B && m / (B * B) < B,
        "monomial exponent overflow"
    );
    m
}

fn mono_divides(a: i64, b: i64) -> bool {
    // a | b componentwise.
    let (a1, a2, a3) = (a % B, (a / B) % B, a / (B * B));
    let (b1, b2, b3) = (b % B, (b / B) % B, b / (B * B));
    a1 <= b1 && a2 <= b2 && a3 <= b3
}

fn mono_div(b: i64, a: i64) -> i64 {
    b - a
}

fn mono_lcm(a: i64, b: i64) -> i64 {
    let (a1, a2, a3) = (a % B, (a / B) % B, a / (B * B));
    let (b1, b2, b3) = (b % B, (b / B) % B, b / (B * B));
    a1.max(b1) + B * a2.max(b2) + B * B * a3.max(b3)
}

/// Graded lexicographic order on packed monomials.
fn mono_cmp(a: i64, b: i64) -> std::cmp::Ordering {
    let deg = |m: i64| m % B + (m / B) % B + m / (B * B);
    deg(a).cmp(&deg(b)).then_with(|| {
        let key = |m: i64| (m % B, (m / B) % B, m / (B * B));
        key(a).cmp(&key(b))
    })
}

fn inv_mod(a: i64) -> i64 {
    // Fermat: a^(P-2) mod P.
    let mut base = a.rem_euclid(P);
    let mut exp = P - 2;
    let mut acc = 1i64;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = acc * base % P;
        }
        base = base * base % P;
        exp >>= 1;
    }
    acc
}

struct Grobner {
    work: DescId,
    term_site: SiteId,
    hist_site: SiteId,
    basis_site: SiteId,
    pair_site: SiteId,
}

fn setup(vm: &mut Vm) -> Grobner {
    Grobner {
        work: vm.register_frame(
            FrameDesc::new("grobner::work")
                .slots(6, Trace::Pointer)
                .slots(2, Trace::NonPointer),
        ),
        term_site: vm.site("grobner::term"),
        hist_site: vm.site("grobner::history"),
        basis_site: vm.site("grobner::basis"),
        pair_site: vm.site("grobner::pair"),
    }
}

/// Term records: `[coef, mono, next]` with only `next` a pointer.
fn term(vm: &mut Vm, p: &Grobner, coef: i64, mono: i64, next: Addr) -> Addr {
    must(vm.alloc_record(
        p.term_site,
        &[Value::Int(coef), Value::Int(mono), Value::Ptr(next)],
    ))
}

fn coef(vm: &mut Vm, t: Addr) -> i64 {
    vm.load_int(t, 0)
}

fn mono(vm: &mut Vm, t: Addr) -> i64 {
    vm.load_int(t, 1)
}

fn next(vm: &mut Vm, t: Addr) -> Addr {
    vm.load_ptr(t, 2)
}

/// Builds a polynomial from `(coef, mono)` pairs. The representation
/// invariant — strictly descending monomial order with no duplicates —
/// is established here: terms are sorted and equal monomials are combined
/// modulo P (dropping cancellations).
fn poly_from(vm: &mut Vm, p: &Grobner, terms: &[(i64, i64)]) -> Addr {
    let mut terms = terms.to_vec();
    terms.sort_by(|a, b| mono_cmp(a.1, b.1));
    let mut combined: Vec<(i64, i64)> = Vec::new();
    for (c, m) in terms {
        match combined.last_mut() {
            Some(last) if last.1 == m => last.0 = (last.0 + c).rem_euclid(P),
            _ => combined.push((c.rem_euclid(P), m)),
        }
    }
    combined.retain(|&(c, _)| c != 0);
    vm.push_frame(p.work);
    vm.set_slot(0, Value::NULL);
    for &(c, m) in combined.iter() {
        let acc = vm.slot_ptr(0);
        let t = term(vm, p, c, m, acc);
        vm.set_slot(0, Value::Ptr(t));
    }
    let out = vm.slot_ptr(0);
    vm.pop_frame();
    out
}

/// `a + scale · x^shift · b` over GF(P). The workhorse of reduction:
/// merges two sorted term lists, allocating the result afresh.
fn poly_add_scaled(vm: &mut Vm, p: &Grobner, a: Addr, b: Addr, scale: i64, shift: i64) -> Addr {
    vm.push_frame(p.work);
    vm.set_slot(0, Value::Ptr(a));
    vm.set_slot(1, Value::Ptr(b));
    vm.set_slot(2, Value::NULL); // reversed accumulator
    loop {
        let a = vm.slot_ptr(0);
        let b = vm.slot_ptr(1);
        let (c, m) = if a.is_null() && b.is_null() {
            break;
        } else if a.is_null() {
            let c = coef(vm, b) * scale % P;
            let m = mono_mul(mono(vm, b), shift);
            let nb = next(vm, b);
            vm.set_slot(1, Value::Ptr(nb));
            (c, m)
        } else if b.is_null() {
            let c = coef(vm, a);
            let m = mono(vm, a);
            let na = next(vm, a);
            vm.set_slot(0, Value::Ptr(na));
            (c, m)
        } else {
            let ma = mono(vm, a);
            let mb = mono_mul(mono(vm, b), shift);
            match mono_cmp(ma, mb) {
                std::cmp::Ordering::Greater => {
                    let c = coef(vm, a);
                    let na = next(vm, a);
                    vm.set_slot(0, Value::Ptr(na));
                    (c, ma)
                }
                std::cmp::Ordering::Less => {
                    let c = coef(vm, b) * scale % P;
                    let nb = next(vm, b);
                    vm.set_slot(1, Value::Ptr(nb));
                    (c, mb)
                }
                std::cmp::Ordering::Equal => {
                    let c = (coef(vm, a) + coef(vm, b) * scale) % P;
                    let na = next(vm, a);
                    let nb = next(vm, b);
                    vm.set_slot(0, Value::Ptr(na));
                    vm.set_slot(1, Value::Ptr(nb));
                    (c, ma)
                }
            }
        };
        if c.rem_euclid(P) != 0 {
            let acc = vm.slot_ptr(2);
            let t = term(vm, p, c.rem_euclid(P), m, acc);
            vm.set_slot(2, Value::Ptr(t));
        }
    }
    // Reverse the accumulator back into descending order.
    vm.set_slot(0, Value::NULL);
    loop {
        let acc = vm.slot_ptr(2);
        if acc.is_null() {
            break;
        }
        let c = coef(vm, acc);
        let m = mono(vm, acc);
        let n = next(vm, acc);
        vm.set_slot(2, Value::Ptr(n));
        let out = vm.slot_ptr(0);
        let t = term(vm, p, c, m, out);
        vm.set_slot(0, Value::Ptr(t));
    }
    let out = vm.slot_ptr(0);
    vm.pop_frame();
    out
}

/// Fully reduces `f` modulo the basis (a list of `[poly] `cells): repeat
/// until no leading term of a basis element divides the leading term of
/// the remainder; reduced terms are moved to the result.
fn normal_form(vm: &mut Vm, p: &Grobner, f: Addr, basis: Addr) -> Addr {
    vm.push_frame(p.work);
    vm.set_slot(0, Value::Ptr(f)); // remainder
    vm.set_slot(1, Value::Ptr(basis));
    vm.set_slot(2, Value::NULL); // result (reversed)
    #[cfg(feature = "kb-trace")]
    let mut steps = 0u64;
    'outer: loop {
        #[cfg(feature = "kb-trace")]
        {
            steps += 1;
            if steps % 1000 == 0 {
                eprintln!("    normal_form steps={steps}");
            }
        }
        let rem = vm.slot_ptr(0);
        if rem.is_null() {
            break;
        }
        let lm = mono(vm, rem);
        let lc = coef(vm, rem);
        // Find a reducer.
        let mut g = vm.slot_ptr(1);
        while !g.is_null() {
            let gp = vm.load_ptr(g, 0);
            let gm = mono(vm, gp);
            if mono_divides(gm, lm) {
                // rem ← rem − (lc/gc) · x^(lm−gm) · g
                let gc = coef(vm, gp);
                let factor = (P - lc * inv_mod(gc) % P) % P;
                let shift = mono_div(lm, gm);
                let rem = vm.slot_ptr(0);
                let reduced = poly_add_scaled(vm, p, rem, gp, factor, shift);
                vm.set_slot(0, Value::Ptr(reduced));
                continue 'outer;
            }
            g = tail(vm, g);
        }
        // Irreducible leading term: move it to the result.
        let rem = vm.slot_ptr(0);
        let (c, m) = (coef(vm, rem), mono(vm, rem));
        let n = next(vm, rem);
        vm.set_slot(0, Value::Ptr(n));
        let out = vm.slot_ptr(2);
        let t = term(vm, p, c, m, out);
        vm.set_slot(2, Value::Ptr(t));
    }
    // Reverse the result.
    vm.set_slot(0, Value::NULL);
    loop {
        let acc = vm.slot_ptr(2);
        if acc.is_null() {
            break;
        }
        let (c, m) = (coef(vm, acc), mono(vm, acc));
        let n = next(vm, acc);
        vm.set_slot(2, Value::Ptr(n));
        let out = vm.slot_ptr(0);
        let t = term(vm, p, c, m, out);
        vm.set_slot(0, Value::Ptr(t));
    }
    let out = vm.slot_ptr(0);
    vm.pop_frame();
    out
}

/// The S-polynomial of `f` and `g`.
fn s_poly(vm: &mut Vm, p: &Grobner, f: Addr, g: Addr) -> Addr {
    vm.push_frame(p.work);
    vm.set_slot(0, Value::Ptr(f));
    vm.set_slot(1, Value::Ptr(g));
    let (fm, fc) = (mono(vm, f), coef(vm, f));
    let (gm, gc) = (mono(vm, g), coef(vm, g));
    let l = mono_lcm(fm, gm);
    // s = x^(l−fm)·f − (fc/gc)·x^(l−gm)·g, built as two scaled adds.
    let f = vm.slot_ptr(0);
    let lifted_f = poly_add_scaled(vm, p, Addr::NULL, f, 1, mono_div(l, fm));
    vm.set_slot(2, Value::Ptr(lifted_f));
    let g = vm.slot_ptr(1);
    let lifted_f = vm.slot_ptr(2);
    let factor = (P - fc * inv_mod(gc) % P) % P;
    let s = poly_add_scaled(vm, p, lifted_f, g, factor, mono_div(l, gm));
    vm.pop_frame();
    s
}

/// Buchberger's algorithm: returns the basis list.
/// Buchberger's algorithm; returns `(basis, history)` — the caller must
/// root both immediately. The history is the list of every nonzero
/// reduced S-polynomial (the computation's retained derivation, which
/// grows monotonically like the paper's long-lived Gröbner data).
fn buchberger(
    vm: &mut Vm,
    p: &Grobner,
    initial: &[Vec<(i64, i64)>],
    max_pairs: usize,
) -> (Addr, Addr) {
    vm.push_frame(p.work);
    vm.set_slot(0, Value::NULL); // basis (list of [poly] cells)
    vm.set_slot(1, Value::NULL); // pair queue (list of [f, g] cells)
    vm.set_slot(5, Value::NULL); // retained reduction history
    for poly in initial {
        let f = poly_from(vm, p, poly);
        vm.set_slot(3, Value::Ptr(f));
        // Pair the new polynomial with every basis element.
        let mut g = vm.slot_ptr(0);
        while !g.is_null() {
            let gp = vm.load_ptr(g, 0);
            let f = vm.slot_ptr(3);
            vm.set_slot(4, Value::Ptr(g));
            let pair = must(vm.alloc_record(p.pair_site, &[Value::Ptr(f), Value::Ptr(gp)]));
            let q = vm.slot_ptr(1);
            vm.set_slot(2, Value::Ptr(pair));
            let pair = vm.slot_ptr(2);
            let cell = must(vm.alloc_record(p.pair_site, &[Value::Ptr(pair), Value::Ptr(q)]));
            vm.set_slot(1, Value::Ptr(cell));
            g = tail(vm, vm.slot_ptr(4));
        }
        let f = vm.slot_ptr(3);
        let basis = vm.slot_ptr(0);
        let cell = must(vm.alloc_record(p.basis_site, &[Value::Ptr(f), Value::Ptr(basis)]));
        vm.set_slot(0, Value::Ptr(cell));
    }
    let mut pairs_done = 0;
    loop {
        if pairs_done >= max_pairs {
            break;
        }
        let q = vm.slot_ptr(1);
        if q.is_null() {
            break;
        }
        pairs_done += 1;
        #[cfg(feature = "kb-trace")]
        eprintln!("  pair {pairs_done}");
        let pair = vm.load_ptr(q, 0);
        let f = vm.load_ptr(pair, 0);
        let g = vm.load_ptr(pair, 1);
        let nq = tail(vm, q);
        vm.set_slot(1, Value::Ptr(nq));
        // Degree-bounded completion: skip pairs whose lcm exceeds the
        // bound. (Besides keeping the computation tractable, this keeps
        // every exponent far below the base-64 packing limit.)
        {
            let l = mono_lcm(mono(vm, f), mono(vm, g));
            let deg = l % B + (l / B) % B + l / (B * B);
            if deg > 10 {
                continue;
            }
        }
        let s = s_poly(vm, p, f, g);
        vm.set_slot(3, Value::Ptr(s));
        // Discard enormous S-polynomials (the "sugar"-style size cut
        // every practical prover applies) so reduction stays bounded.
        {
            let mut len = 0;
            let mut t = vm.slot_ptr(3);
            while !t.is_null() {
                len += 1;
                t = next(vm, t);
            }
            if len > 120 {
                continue;
            }
        }
        let s = vm.slot_ptr(3);
        let basis = vm.slot_ptr(0);
        let r = normal_form(vm, p, s, basis);
        if r.is_null() {
            continue;
        }
        vm.set_slot(3, Value::Ptr(r));
        // Record the new element in the retained history: completion
        // keeps its derivation.
        {
            let r = vm.slot_ptr(3);
            let hist = vm.slot_ptr(5);
            let cell = must(vm.alloc_record(p.hist_site, &[Value::Ptr(r), Value::Ptr(hist)]));
            vm.set_slot(5, Value::Ptr(cell));
        }
        // New basis element: queue its pairs.
        let mut g = vm.slot_ptr(0);
        while !g.is_null() {
            let gp = vm.load_ptr(g, 0);
            let r = vm.slot_ptr(3);
            vm.set_slot(4, Value::Ptr(g));
            let pair = must(vm.alloc_record(p.pair_site, &[Value::Ptr(r), Value::Ptr(gp)]));
            vm.set_slot(2, Value::Ptr(pair));
            let q = vm.slot_ptr(1);
            let pair = vm.slot_ptr(2);
            let cell = must(vm.alloc_record(p.pair_site, &[Value::Ptr(pair), Value::Ptr(q)]));
            vm.set_slot(1, Value::Ptr(cell));
            g = tail(vm, vm.slot_ptr(4));
        }
        let r = vm.slot_ptr(3);
        let basis = vm.slot_ptr(0);
        let cell = must(vm.alloc_record(p.basis_site, &[Value::Ptr(r), Value::Ptr(basis)]));
        vm.set_slot(0, Value::Ptr(cell));
    }
    let basis = vm.slot_ptr(0);
    let history = vm.slot_ptr(5);
    vm.pop_frame();
    (basis, history)
}

/// Runs the benchmark: completes a sequence of deterministic
/// pseudo-random low-degree systems, retaining every round's reduction
/// history to the end of the run — so the live set grows monotonically
/// (the paper's long-lived Gröbner data: 139 MB allocated, 128 KB of it
/// live at peak) while each round's bases and pair queues churn.
pub fn run(vm: &mut Vm, scale: u32) -> u64 {
    let p = setup(vm);
    let x = 1i64;
    let y = B;
    let z = B * B;
    let mut h = 0u64;
    vm.push_frame(p.work);
    vm.set_slot(1, Value::NULL); // combined retained histories

    let mut rng = crate::common::XorShift::new(0x9b0b);
    let rounds = 16 * scale.max(1);
    for round in 0..rounds {
        // Cyclic-3-like core plus a rotating low-degree perturbation.
        let mut system: Vec<Vec<(i64, i64)>> = vec![
            vec![(1, x), (1, y), (1, z)],
            vec![(1, x + y), (1, y + z), (1, z + x)],
            vec![(1 + i64::from(round), x + y + z), (P - 1, 0)],
        ];
        let mut poly = Vec::new();
        let terms = 3 + rng.below(3);
        for _ in 0..terms {
            let coef = 1 + rng.below((P - 1) as u64) as i64;
            let mono = rng.below(3) as i64 + B * rng.below(3) as i64 + B * B * rng.below(2) as i64;
            poly.push((coef, mono));
        }
        system.push(poly);
        let (basis, history) = buchberger(vm, &p, &system, 60);
        vm.set_slot(0, Value::Ptr(basis));
        vm.set_slot(2, Value::Ptr(history));
        h = checksum_basis(vm, h);
        let history = vm.slot_ptr(2);
        let combined = vm.slot_ptr(1);
        let cell = must(vm.alloc_record(p.hist_site, &[Value::Ptr(history), Value::Ptr(combined)]));
        vm.set_slot(1, Value::Ptr(cell));
    }
    // Fold the retained histories into the checksum: live to the end.
    {
        let mut n = 0u64;
        let mut outer = vm.slot_ptr(1);
        while !outer.is_null() {
            let mut hist = vm.load_ptr(outer, 0);
            while !hist.is_null() {
                n += 1;
                hist = tail(vm, hist);
            }
            outer = tail(vm, outer);
        }
        h = mix(h, n);
    }
    vm.pop_frame();
    h
}

/// Folds the basis rooted in slot 0 into the checksum (non-allocating).
fn checksum_basis(vm: &mut Vm, mut h: u64) -> u64 {
    let mut b = vm.slot_ptr(0);
    let mut count = 0u64;
    while !b.is_null() {
        let poly = vm.load_ptr(b, 0);
        let mut t = poly;
        while !t.is_null() {
            h = mix(h, coef(vm, t) as u64);
            h = mix(h, mono(vm, t) as u64);
            t = next(vm, t);
        }
        count += 1;
        b = tail(vm, b);
    }
    mix(h, count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::{run_all_kinds, tiny_config};
    use tilgc_core::{build_vm, CollectorKind};

    #[test]
    fn arithmetic_helpers() {
        assert!(mono_divides(1, 1 + B));
        assert!(!mono_divides(2, 1 + B));
        assert_eq!(mono_lcm(2 + B, 1 + 2 * B), 2 + 2 * B);
        assert_eq!(inv_mod(7) * 7 % P, 1);
        // Within one degree the packed key orders x above y above z.
        assert_eq!(mono_cmp(1, B), std::cmp::Ordering::Greater);
        assert_eq!(mono_cmp(B, B * B), std::cmp::Ordering::Greater);
        assert_eq!(
            mono_cmp(2, 1 + B),
            std::cmp::Ordering::Greater,
            "grlex ties break by key"
        );
    }

    #[test]
    fn normal_form_reduces_to_zero_for_multiples() {
        let mut vm = build_vm(CollectorKind::Generational, &tiny_config());
        let p = setup(&mut vm);
        vm.push_frame(p.work);
        // f = x + 1, basis = {x + 1} ⇒ NF(f) = 0.
        let f = poly_from(&mut vm, &p, &[(1, 1), (1, 0)]);
        vm.set_slot(3, Value::Ptr(f));
        let f = vm.slot_ptr(3);
        let basis = must(vm.alloc_record(p.basis_site, &[Value::Ptr(f), Value::NULL]));
        vm.set_slot(4, Value::Ptr(basis));
        let f = vm.slot_ptr(3);
        let basis = vm.slot_ptr(4);
        let nf = normal_form(&mut vm, &p, f, basis);
        assert!(nf.is_null(), "x+1 reduces to zero modulo itself");
    }

    #[test]
    fn poly_from_combines_duplicate_monomials() {
        // A duplicated monomial must be merged, not kept as two terms —
        // otherwise lead cancellation in reduction is partial and
        // normal_form loops forever.
        let mut vm = build_vm(CollectorKind::Generational, &tiny_config());
        let p = setup(&mut vm);
        vm.push_frame(p.work);
        let f = poly_from(&mut vm, &p, &[(5, B), (7, B), (P - 12, B), (3, 1)]);
        vm.set_slot(3, Value::Ptr(f));
        // 5 + 7 − 12 = 0 on x^0 y^1: the whole monomial vanishes.
        let f = vm.slot_ptr(3);
        assert_eq!(mono(&mut vm, f), 1, "only the x term remains");
        let t = next(&mut vm, f);
        assert!(t.is_null());
    }

    #[test]
    fn poly_addition_cancels() {
        let mut vm = build_vm(CollectorKind::Generational, &tiny_config());
        let p = setup(&mut vm);
        vm.push_frame(p.work);
        let f = poly_from(&mut vm, &p, &[(5, B), (3, 1), (2, 0)]);
        vm.set_slot(3, Value::Ptr(f));
        let f = vm.slot_ptr(3);
        let f2 = vm.slot_ptr(3);
        // f − f = 0.
        let sum = poly_add_scaled(&mut vm, &p, f, f2, P - 1, 0);
        assert!(sum.is_null());
    }

    #[test]
    fn deterministic_and_collector_independent() {
        let results = run_all_kinds(|vm| run(vm, 1), &tiny_config());
        assert!(
            results.windows(2).all(|w| w[0] == w[1]),
            "results differ: {results:?}"
        );
    }
}
