//! Shared infrastructure for the benchmark programs.
//!
//! # The rooting discipline, program-side
//!
//! Collections happen **only** inside `Vm::alloc_*` and the explicit
//! `gc_*` calls. Between allocations, heap addresses are stable, so
//! non-allocating code may hold [`Addr`]s in host locals freely. Code that
//! allocates must keep its live pointers in frame slots:
//!
//! * a function that allocates pushes a frame (whose descriptor declares
//!   its slots) and parks incoming pointer arguments in slots immediately;
//! * after any allocation, pointers are re-read from slots;
//! * an `Addr` returned by a callee is stored into a slot before the next
//!   allocation.
//!
//! Functions that merely *read* the heap take and return bare addresses.
//!
//! # Exceptions
//!
//! `Vm::raise` unwinds the VM stack to the innermost handler; the host
//! call chain mirrors that by propagating [`Exn`] with `?` — and, because
//! the VM frames are already gone, propagating code must *not* pop frames
//! on the error path. The `handle`-installing function resumes.

use tilgc_mem::Addr;
use tilgc_runtime::{DescId, FrameDesc, HeapOverflow, Trace, Value, Vm};

/// The exception payload programs propagate host-side while the VM stack
/// unwinds. Carries nothing: SML exception values would live in a
/// register; none of the benchmarks inspects them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exn;

/// Result type for program functions that may raise.
pub type PResult<T> = Result<T, Exn>;

/// A deterministic xorshift64* generator — benchmark inputs must be
/// identical across collectors and runs.
#[derive(Clone, Debug)]
pub struct XorShift {
    state: u64,
}

impl XorShift {
    /// Creates a generator from a nonzero seed.
    pub fn new(seed: u64) -> XorShift {
        XorShift { state: seed.max(1) }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `0..bound`.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// FNV-1a-style mixing for result checksums.
#[inline]
pub fn mix(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x1000_0000_01b3)
}

/// Frame descriptors shared by the list helpers: `pN` has N pointer
/// slots.
#[derive(Clone, Copy, Debug)]
pub struct CommonFrames {
    /// One pointer slot.
    pub p1: DescId,
    /// Two pointer slots.
    pub p2: DescId,
    /// Three pointer slots.
    pub p3: DescId,
}

impl CommonFrames {
    /// Registers the shared descriptors in `vm`.
    pub fn register(vm: &mut Vm) -> CommonFrames {
        CommonFrames {
            p1: vm.register_frame(FrameDesc::new("common::p1").slots(1, Trace::Pointer)),
            p2: vm.register_frame(FrameDesc::new("common::p2").slots(2, Trace::Pointer)),
            p3: vm.register_frame(FrameDesc::new("common::p3").slots(3, Trace::Pointer)),
        }
    }
}

/// Unwraps an allocation in a calibrated benchmark, where the heap
/// budget is sized to the workload and exhaustion means the calibration
/// itself is wrong. Guest programs that want to *survive* exhaustion
/// install a handler and match on the [`HeapOverflow`] instead.
#[inline]
#[track_caller]
pub fn must(r: Result<Addr, HeapOverflow>) -> Addr {
    r.unwrap_or_else(|e| panic!("heap budget exhausted in a calibrated benchmark: {e}"))
}

/// Allocates a cons cell `(head, tail)` at `site`. `head` may be any
/// value; `tail` must be a list (or null). The operands are rooted by the
/// allocation buffer for the duration of the call.
#[inline]
pub fn cons(vm: &mut Vm, site: tilgc_mem::SiteId, head: Value, tail: Addr) -> Addr {
    must(vm.alloc_record(site, &[head, Value::Ptr(tail)]))
}

/// Head of a cons cell, as a raw integer field.
#[inline]
pub fn head_int(vm: &mut Vm, cell: Addr) -> i64 {
    vm.load_int(cell, 0)
}

/// Head of a cons cell, as a pointer field.
#[inline]
pub fn head_ptr(vm: &mut Vm, cell: Addr) -> Addr {
    vm.load_ptr(cell, 0)
}

/// Tail of a cons cell.
#[inline]
pub fn tail(vm: &mut Vm, cell: Addr) -> Addr {
    vm.load_ptr(cell, 1)
}

/// Length of a list (non-allocating).
pub fn list_len(vm: &mut Vm, mut l: Addr) -> usize {
    let mut n = 0;
    while !l.is_null() {
        n += 1;
        l = tail(vm, l);
    }
    n
}

/// Reverses an integer-headed list, allocating fresh cells at `site`.
pub fn list_rev(vm: &mut Vm, frames: &CommonFrames, site: tilgc_mem::SiteId, l: Addr) -> Addr {
    vm.push_frame(frames.p2);
    vm.set_slot(0, Value::Ptr(l)); // remaining input
    vm.set_slot(1, Value::NULL); // accumulated output
    loop {
        let rest = vm.slot_ptr(0);
        if rest.is_null() {
            break;
        }
        let h = head_int(vm, rest);
        let t = tail(vm, rest);
        vm.set_slot(0, Value::Ptr(t));
        let acc = vm.slot_ptr(1);
        let cell = cons(vm, site, Value::Int(h), acc);
        vm.set_slot(1, Value::Ptr(cell));
    }
    let out = vm.slot_ptr(1);
    vm.pop_frame();
    out
}

/// Whether an integer-headed list contains `x` (non-allocating).
pub fn list_mem_int(vm: &mut Vm, mut l: Addr, x: i64) -> bool {
    while !l.is_null() {
        if head_int(vm, l) == x {
            return true;
        }
        l = tail(vm, l);
    }
    false
}

/// Folds an integer-headed list into the checksum accumulator
/// (non-allocating).
pub fn list_checksum(vm: &mut Vm, mut l: Addr, mut h: u64) -> u64 {
    while !l.is_null() {
        h = mix(h, head_int(vm, l) as u64);
        l = tail(vm, l);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilgc_core::{build_vm, CollectorKind, GcConfig};

    fn vm() -> Vm {
        build_vm(
            CollectorKind::Generational,
            &GcConfig::new()
                .heap_budget_bytes(256 << 10)
                .nursery_bytes(8 << 10),
        )
    }

    #[test]
    fn xorshift_is_deterministic() {
        let mut a = XorShift::new(42);
        let mut b = XorShift::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let f = XorShift::new(7).unit_f64();
        assert!((0.0..1.0).contains(&f));
        assert!(XorShift::new(9).below(10) < 10);
    }

    #[test]
    fn list_round_trip_across_collections() {
        let mut vm = vm();
        let frames = CommonFrames::register(&mut vm);
        let site = vm.site("common::cell");
        vm.push_frame(frames.p1);
        vm.set_slot(0, Value::NULL);
        for i in 0..500 {
            let l = vm.slot_ptr(0);
            let cell = cons(&mut vm, site, Value::Int(i), l);
            vm.set_slot(0, Value::Ptr(cell));
        }
        // Force collections, then reverse (which allocates heavily).
        vm.gc_now();
        let l = vm.slot_ptr(0);
        assert_eq!(list_len(&mut vm, l), 500);
        let r = vm.slot_ptr(0);
        let rev = list_rev(&mut vm, &frames, site, r);
        vm.set_slot(0, Value::Ptr(rev));
        vm.gc_now();
        let rev = vm.slot_ptr(0);
        assert_eq!(
            head_int(&mut vm, rev),
            0,
            "reversal puts the first element first"
        );
        assert_eq!(list_len(&mut vm, rev), 500);
        assert!(list_mem_int(&mut vm, rev, 499));
        assert!(!list_mem_int(&mut vm, rev, 500));
    }

    #[test]
    fn checksums_differ_for_different_lists() {
        let mut vm = vm();
        let frames = CommonFrames::register(&mut vm);
        let site = vm.site("common::cell");
        vm.push_frame(frames.p2);
        vm.set_slot(0, Value::NULL);
        vm.set_slot(1, Value::NULL);
        for i in 0..10 {
            let a = vm.slot_ptr(0);
            let cell = cons(&mut vm, site, Value::Int(i), a);
            vm.set_slot(0, Value::Ptr(cell));
            let b = vm.slot_ptr(1);
            let cell = cons(&mut vm, site, Value::Int(i + 1), b);
            vm.set_slot(1, Value::Ptr(cell));
        }
        let a = vm.slot_ptr(0);
        let b = vm.slot_ptr(1);
        let ha = list_checksum(&mut vm, a, 0);
        let hb = list_checksum(&mut vm, b, 0);
        assert_ne!(ha, hb);
    }
}
