//! `Nqueen` — the N-queens problem (n = 10 in the paper).
//!
//! The search places queens row by row; each partial placement is a list
//! of column indices (short-lived), while complete solutions are consed
//! onto an accumulator that survives to the end of the run. This is the
//! paper's showcase of lifetime bimodality: Figure 2 shows 99 % of
//! Nqueen's copied bytes coming from just four sites (the solution
//! cells), which is why pretenuring cuts its GC time in half (Table 6).

use tilgc_mem::{Addr, SiteId};
use tilgc_runtime::{DescId, FrameDesc, Trace, Value, Vm};

use crate::common::{cons, head_int, list_checksum, tail};

struct NQueen {
    main: DescId,
    place: DescId,
    /// Short-lived partial placements.
    partial: SiteId,
    /// Long-lived: cells of saved solutions.
    solution: SiteId,
    /// Long-lived: the spine of the solutions list.
    spine: SiteId,
}

fn setup(vm: &mut Vm) -> NQueen {
    NQueen {
        main: vm.register_frame(FrameDesc::new("nqueen::main").slots(2, Trace::Pointer)),
        place: vm.register_frame(
            FrameDesc::new("nqueen::place")
                .slots(3, Trace::Pointer)
                .slot(Trace::NonPointer),
        ),
        partial: vm.site("nqueen::partial"),
        solution: vm.site("nqueen::solution"),
        spine: vm.site("nqueen::spine"),
    }
}

/// Whether a queen in `col` is attacked by the placement list (row
/// distance grows along the list). Non-allocating.
fn safe(vm: &mut Vm, placement: Addr, col: i64) -> bool {
    let mut dist = 1;
    let mut l = placement;
    while !l.is_null() {
        let c = head_int(vm, l);
        if c == col || (c - col).abs() == dist {
            return false;
        }
        dist += 1;
        l = tail(vm, l);
    }
    true
}

/// Copies a placement list into long-lived solution cells.
fn save_solution(vm: &mut Vm, p: &NQueen, placement: Addr, solutions: Addr) -> Addr {
    vm.push_frame(p.place);
    vm.set_slot(0, Value::Ptr(placement));
    vm.set_slot(1, Value::Ptr(solutions));
    vm.set_slot(2, Value::NULL);
    loop {
        let l = vm.slot_ptr(0);
        if l.is_null() {
            break;
        }
        let c = head_int(vm, l);
        let t = tail(vm, l);
        vm.set_slot(0, Value::Ptr(t));
        let acc = vm.slot_ptr(2);
        let cell = cons(vm, p.solution, Value::Int(c), acc);
        vm.set_slot(2, Value::Ptr(cell));
    }
    let sol = vm.slot_ptr(2);
    vm.set_slot(2, Value::Ptr(sol));
    let sols = vm.slot_ptr(1);
    vm.set_slot(1, Value::Ptr(sols));
    let sol = vm.slot_ptr(2);
    let sols = vm.slot_ptr(1);
    let out = cons(vm, p.spine, Value::Ptr(sol), sols);
    vm.pop_frame();
    out
}

/// Places queens in rows `row..n`; returns the updated solutions list.
/// One VM frame per row — the recursion the paper's 29-frame stack comes
/// from.
fn place(vm: &mut Vm, p: &NQueen, n: i64, row: i64, placement: Addr, solutions: Addr) -> Addr {
    vm.push_frame(p.place);
    vm.set_slot(0, Value::Ptr(placement));
    vm.set_slot(1, Value::Ptr(solutions));
    vm.set_slot(3, Value::Int(row));
    if row == n {
        let placement = vm.slot_ptr(0);
        let solutions = vm.slot_ptr(1);
        let out = save_solution(vm, p, placement, solutions);
        vm.pop_frame();
        return out;
    }
    for col in 0..n {
        let placement = vm.slot_ptr(0);
        if safe(vm, placement, col) {
            let extended = cons(vm, p.partial, Value::Int(col), placement);
            vm.set_slot(2, Value::Ptr(extended));
            let extended = vm.slot_ptr(2);
            let solutions = vm.slot_ptr(1);
            let updated = place(vm, p, n, row + 1, extended, solutions);
            vm.set_slot(1, Value::Ptr(updated));
        }
    }
    let out = vm.slot_ptr(1);
    vm.pop_frame();
    out
}

/// Runs the benchmark. `scale` ≥ 3 uses the paper's n = 10; smaller
/// scales shrink the board.
pub fn run(vm: &mut Vm, scale: u32) -> u64 {
    let p = setup(vm);
    let n = match scale {
        0 | 1 => 8,
        2 => 9,
        _ => 10,
    };
    vm.push_frame(p.main);
    vm.set_slot(0, Value::NULL);
    // The paper's run allocates 88 MB for n = 10; iterate the search,
    // accumulating the (long-lived) solutions across repetitions.
    for _ in 0..8 {
        let acc = vm.slot_ptr(0);
        let solutions = place(vm, &p, n, 0, Addr::NULL, acc);
        vm.set_slot(0, Value::Ptr(solutions));
    }
    // Fold every retained solution into the checksum — the solutions
    // really are live until the end.
    let mut h = 0u64;
    let mut count = 0u64;
    let mut spine = vm.slot_ptr(0);
    while !spine.is_null() {
        let sol = vm.load_ptr(spine, 0);
        h = list_checksum(vm, sol, h);
        count += 1;
        spine = tail(vm, spine);
    }
    vm.pop_frame();
    crate::common::mix(h, count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::{run_all_kinds, tiny_config};
    use tilgc_core::{build_vm, CollectorKind};

    fn count_solutions(n: i64) -> u64 {
        let mut vm = build_vm(CollectorKind::Generational, &tiny_config());
        let p = setup(&mut vm);
        vm.push_frame(p.main);
        let sols = place(&mut vm, &p, n, 0, Addr::NULL, Addr::NULL);
        vm.set_slot(0, Value::Ptr(sols));
        let sols = vm.slot_ptr(0);
        crate::common::list_len(&mut vm, sols) as u64
    }

    #[test]
    fn classic_solution_counts() {
        assert_eq!(count_solutions(4), 2);
        assert_eq!(count_solutions(5), 10);
        assert_eq!(count_solutions(6), 4);
        assert_eq!(count_solutions(8), 92);
    }

    #[test]
    fn deterministic_and_collector_independent() {
        let results = run_all_kinds(|vm| run(vm, 1), &tiny_config());
        assert!(
            results.windows(2).all(|w| w[0] == w[1]),
            "results differ: {results:?}"
        );
    }

    #[test]
    fn solutions_are_long_lived() {
        let mut vm = build_vm(CollectorKind::Generational, &tiny_config());
        run(&mut vm, 1);
        // The solution sites' data survives collections → copied bytes
        // accumulate across the run's many minor GCs.
        assert!(vm.gc_stats().collections > 0);
        assert!(vm.gc_stats().copied_bytes > 0);
    }
}
