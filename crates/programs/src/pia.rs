//! `PIA` — the Perspective Inversion Algorithm (Waugh, McAndrew,
//! Michaelson 1990): recovering the plane position of an object from its
//! perspective image.
//!
//! Per video frame, the program builds the observed 2-D projections of a
//! known planar grid, estimates the image→plane homography by direct
//! linear transformation (an 8×9 least-squares system solved with
//! Gaussian elimination over heap arrays), and back-projects every grid
//! point. Each frame's results are retained for a short sliding window
//! and then dropped — the allocation behaviour §4 calls out: "PIA's
//! tenured data tends to die rapidly", which makes generational
//! collection at small k pay for copious major collections (the 17-fold
//! GC-time swing between k = 1.5 and k = 4 in Table 4).

use tilgc_mem::{Addr, SiteId};
use tilgc_runtime::{DescId, FrameDesc, Trace, Value, Vm};

use crate::common::{mix, must};

struct Pia {
    work: DescId,
    point_site: SiteId,
    matrix_site: SiteId,
    result_site: SiteId,
}

fn setup(vm: &mut Vm) -> Pia {
    Pia {
        work: vm.register_frame(
            FrameDesc::new("pia::work")
                .slots(6, Trace::Pointer)
                .slots(2, Trace::NonPointer),
        ),
        point_site: vm.site("pia::point"),
        matrix_site: vm.site("pia::matrix"),
        result_site: vm.site("pia::result"),
    }
}

/// The ground-truth homography for a given frame: a slowly rotating,
/// translating camera.
fn true_homography(frame: u32) -> [f64; 9] {
    let t = f64::from(frame) * 0.05;
    let (s, c) = t.sin_cos();
    // Rotation + translation + mild perspective terms.
    [
        c,
        -s,
        1.0 + 0.3 * s,
        s,
        c,
        2.0 - 0.2 * c,
        0.002 * s,
        0.001 * c,
        1.0,
    ]
}

fn apply_h(h: &[f64; 9], x: f64, y: f64) -> (f64, f64) {
    let w = h[6] * x + h[7] * y + h[8];
    (
        (h[0] * x + h[1] * y + h[2]) / w,
        (h[3] * x + h[4] * y + h[5]) / w,
    )
}

/// Solves the n×n system `a·x = b` in place by Gaussian elimination with
/// partial pivoting; `a` is an n·n raw array, `b` length n. Returns false
/// on singularity. Non-allocating.
fn gauss_solve(vm: &mut Vm, a: Addr, b: Addr, n: usize) -> bool {
    for col in 0..n {
        // Pivot.
        let mut piv = col;
        let mut best = vm.load_f64(a, col * n + col).abs();
        for row in col + 1..n {
            let v = vm.load_f64(a, row * n + col).abs();
            if v > best {
                best = v;
                piv = row;
            }
        }
        if best < 1e-12 {
            return false;
        }
        if piv != col {
            for k in 0..n {
                let (x, y) = (vm.load_f64(a, col * n + k), vm.load_f64(a, piv * n + k));
                vm.store_f64(a, col * n + k, y);
                vm.store_f64(a, piv * n + k, x);
            }
            let (x, y) = (vm.load_f64(b, col), vm.load_f64(b, piv));
            vm.store_f64(b, col, y);
            vm.store_f64(b, piv, x);
        }
        let d = vm.load_f64(a, col * n + col);
        for row in col + 1..n {
            let f = vm.load_f64(a, row * n + col) / d;
            if f == 0.0 {
                continue;
            }
            for k in col..n {
                let v = vm.load_f64(a, row * n + k) - f * vm.load_f64(a, col * n + k);
                vm.store_f64(a, row * n + k, v);
            }
            let v = vm.load_f64(b, row) - f * vm.load_f64(b, col);
            vm.store_f64(b, row, v);
        }
    }
    // Back substitution into b.
    for col in (0..n).rev() {
        let mut v = vm.load_f64(b, col);
        for k in col + 1..n {
            v -= vm.load_f64(a, col * n + k) * vm.load_f64(b, k);
        }
        v /= vm.load_f64(a, col * n + col);
        vm.store_f64(b, col, v);
    }
    true
}

/// Processes one video frame: builds the observed projections of the
/// 4-point calibration square plus a `grid²` mesh, estimates the
/// homography from the 4 correspondences (DLT, 8×8 solve), back-projects
/// the mesh, and returns a result record holding the frame's point list.
fn process_frame(vm: &mut Vm, p: &Pia, frame: u32, grid: usize) -> Addr {
    vm.push_frame(p.work);
    let h_true = true_homography(frame);

    // Observed projections of the unit square corners (the calibration
    // points), stored as point records [x, y] of unboxed floats.
    let corners = [(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)];

    // DLT: for each correspondence (X,Y) -> (x,y):
    //   X·h0 + Y·h1 + h2 − x·X·h6 − x·Y·h7 = x
    //   X·h3 + Y·h4 + h5 − y·X·h6 − y·Y·h7 = y      (h8 = 1)
    let a = must(vm.alloc_raw_array(p.matrix_site, 8 * 8 * 8));
    vm.set_slot(0, Value::Ptr(a));
    let b = must(vm.alloc_raw_array(p.matrix_site, 8 * 8));
    vm.set_slot(1, Value::Ptr(b));
    let a = vm.slot_ptr(0);
    let b = vm.slot_ptr(1);
    for (i, &(gx, gy)) in corners.iter().enumerate() {
        let (ix, iy) = apply_h(&h_true, gx, gy);
        let r0 = 2 * i;
        let r1 = 2 * i + 1;
        let row0 = [gx, gy, 1.0, 0.0, 0.0, 0.0, -ix * gx, -ix * gy];
        let row1 = [0.0, 0.0, 0.0, gx, gy, 1.0, -iy * gx, -iy * gy];
        for k in 0..8 {
            vm.store_f64(a, r0 * 8 + k, row0[k]);
            vm.store_f64(a, r1 * 8 + k, row1[k]);
        }
        vm.store_f64(b, r0, ix);
        vm.store_f64(b, r1, iy);
    }
    let solved = gauss_solve(vm, a, b, 8);
    assert!(solved, "calibration system must be nonsingular");
    // Recovered homography (h8 = 1) — numerically equals h_true up to
    // scale.
    let mut h_est = [0.0f64; 9];
    let b = vm.slot_ptr(1);
    for (k, slot) in h_est.iter_mut().enumerate().take(8) {
        *slot = vm.load_f64(b, k);
    }
    h_est[8] = 1.0;

    // Invert it (3×3) to map image points back to the plane.
    let inv = must(vm.alloc_raw_array(p.matrix_site, 9 * 8));
    vm.set_slot(2, Value::Ptr(inv));
    let inv = vm.slot_ptr(2);
    {
        let m = &h_est;
        let det = m[0] * (m[4] * m[8] - m[5] * m[7]) - m[1] * (m[3] * m[8] - m[5] * m[6])
            + m[2] * (m[3] * m[7] - m[4] * m[6]);
        let cof = [
            m[4] * m[8] - m[5] * m[7],
            m[2] * m[7] - m[1] * m[8],
            m[1] * m[5] - m[2] * m[4],
            m[5] * m[6] - m[3] * m[8],
            m[0] * m[8] - m[2] * m[6],
            m[2] * m[3] - m[0] * m[5],
            m[3] * m[7] - m[4] * m[6],
            m[1] * m[6] - m[0] * m[7],
            m[0] * m[4] - m[1] * m[3],
        ];
        for (k, c) in cof.iter().enumerate() {
            vm.store_f64(inv, k, c / det);
        }
    }

    // Back-project the observed mesh: a list of point records.
    vm.set_slot(3, Value::NULL);
    let mut hash = 0u64;
    for gy in 0..grid {
        for gx in 0..grid {
            let (px, py) = (gx as f64 / grid as f64, gy as f64 / grid as f64);
            let (ix, iy) = apply_h(&h_true, px, py);
            // Recover the plane position through the estimated inverse.
            let inv = vm.slot_ptr(2);
            let mut m = [0.0f64; 9];
            for (k, slot) in m.iter_mut().enumerate() {
                *slot = vm.load_f64(inv, k);
            }
            let w = m[6] * ix + m[7] * iy + m[8];
            let rx = (m[0] * ix + m[1] * iy + m[2]) / w;
            let ry = (m[3] * ix + m[4] * iy + m[5]) / w;
            debug_assert!((rx - px).abs() < 1e-6 && (ry - py).abs() < 1e-6);
            // Intermediate per-point scratch (residuals, jacobian rows):
            // dies before the frame ends — the bulk of PIA's allocation
            // dies young; only the retained window survives the nursery.
            for _ in 0..8 {
                let scratch = must(vm.alloc_record(
                    p.point_site,
                    &[
                        Value::Real(ix - rx),
                        Value::Real(iy - ry),
                        Value::Real(w),
                        Value::Real(rx * ry),
                        Value::Real(rx + ry),
                        Value::Real(ix * iy),
                    ],
                ));
                hash = mix(hash, vm.load_f64(scratch, 2).to_bits() & 0xff);
            }
            hash = mix(hash, (rx * 1e6).round() as i64 as u64);
            hash = mix(hash, (ry * 1e6).round() as i64 as u64);
            let list = vm.slot_ptr(3);
            let point = must(vm.alloc_record(
                p.point_site,
                &[Value::Real(rx), Value::Real(ry), Value::Ptr(list)],
            ));
            vm.set_slot(3, Value::Ptr(point));
        }
    }
    let points = vm.slot_ptr(3);
    let result = must(vm.alloc_record(
        p.result_site,
        &[
            Value::Int(frame as i64),
            Value::Int(hash as i64),
            Value::Ptr(points),
            Value::NULL,
        ],
    ));
    vm.pop_frame();
    result
}

/// Runs the benchmark: `60 · scale` frames with a sliding window of
/// retained results. The window is sized so the live set sits just above
/// the nursery scale — the regime where the paper's PIA thrashes the
/// tenured generation at small k (§4).
pub fn run(vm: &mut Vm, scale: u32) -> u64 {
    let p = setup(vm);
    let frames = 60 * scale.max(1);
    let grid = 16;
    const WINDOW: usize = 4;
    vm.push_frame(p.work);
    vm.set_slot(0, Value::NULL); // sliding window: list of result records
    let mut h = 0u64;
    for f in 0..frames {
        let result = process_frame(vm, &p, f, grid);
        vm.set_slot(1, Value::Ptr(result));
        h = mix(h, vm.load_int(result, 1) as u64);
        // Link into the window and trim it to WINDOW entries — older
        // frames' meshes become garbage *after surviving a few
        // collections* (PIA's signature behaviour).
        let window = vm.slot_ptr(0);
        let result = vm.slot_ptr(1);
        vm.store_ptr(result, 3, window);
        vm.set_slot(0, Value::Ptr(result));
        let mut cur = vm.slot_ptr(0);
        for _ in 0..WINDOW - 1 {
            if cur.is_null() {
                break;
            }
            cur = vm.load_ptr(cur, 3);
        }
        if !cur.is_null() {
            vm.store_ptr(cur, 3, Addr::NULL); // drop the tail
        }
    }
    vm.pop_frame();
    mix(h, u64::from(frames))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::{run_all_kinds, tiny_config};
    use tilgc_core::{build_vm, CollectorKind};

    #[test]
    fn gaussian_elimination_solves() {
        let mut vm = build_vm(CollectorKind::Generational, &tiny_config());
        let p = setup(&mut vm);
        vm.push_frame(p.work);
        let a = must(vm.alloc_raw_array(p.matrix_site, 2 * 2 * 8));
        vm.set_slot(0, Value::Ptr(a));
        let b = must(vm.alloc_raw_array(p.matrix_site, 2 * 8));
        vm.set_slot(1, Value::Ptr(b));
        let a = vm.slot_ptr(0);
        let b = vm.slot_ptr(1);
        // 2x + y = 5; x − y = 1  ⇒  x = 2, y = 1.
        for (i, v) in [2.0, 1.0, 1.0, -1.0].iter().enumerate() {
            vm.store_f64(a, i, *v);
        }
        vm.store_f64(b, 0, 5.0);
        vm.store_f64(b, 1, 1.0);
        assert!(gauss_solve(&mut vm, a, b, 2));
        assert!((vm.load_f64(b, 0) - 2.0).abs() < 1e-12);
        assert!((vm.load_f64(b, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn homography_round_trip() {
        // process_frame debug-asserts that every mesh point inverts back
        // to its plane position within 1e-6.
        let mut vm = build_vm(CollectorKind::Generational, &tiny_config());
        let p = setup(&mut vm);
        vm.push_frame(p.work);
        let r = process_frame(&mut vm, &p, 7, 8);
        vm.set_slot(0, Value::Ptr(r));
        let r = vm.slot_ptr(0);
        assert_eq!(vm.load_int(r, 0), 7);
    }

    #[test]
    fn deterministic_and_collector_independent() {
        let results = run_all_kinds(|vm| run(vm, 1), &tiny_config());
        assert!(
            results.windows(2).all(|w| w[0] == w[1]),
            "results differ: {results:?}"
        );
    }
}
