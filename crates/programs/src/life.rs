//! `Life` — Conway's game of Life implemented with lists, after Reade
//! (1989).
//!
//! The live board is a sorted list of packed `(x, y)` coordinates. Each
//! generation filters survivors and collects births with list recursion,
//! so the stack depth tracks the population (the paper's max of 51
//! frames) and every generation's intermediate lists die young.

use tilgc_mem::{Addr, SiteId};
use tilgc_runtime::{DescId, FrameDesc, Trace, Value, Vm};

use crate::common::{cons, head_int, list_checksum, tail, Exn, PResult};

const OFFSETS: [(i64, i64); 8] = [
    (-1, -1),
    (-1, 0),
    (-1, 1),
    (0, -1),
    (0, 1),
    (1, -1),
    (1, 0),
    (1, 1),
];

fn pack(x: i64, y: i64) -> i64 {
    (x + 512) * 4096 + (y + 512)
}

fn unpack(c: i64) -> (i64, i64) {
    (c / 4096 - 512, c % 4096 - 512)
}

struct Life {
    main: DescId,
    filter: DescId,
    births: DescId,
    insert: DescId,
    cell: SiteId,
}

fn setup(vm: &mut Vm) -> Life {
    Life {
        main: vm.register_frame(FrameDesc::new("life::main").slots(2, Trace::Pointer)),
        filter: vm.register_frame(
            FrameDesc::new("life::filter")
                .slots(2, Trace::Pointer)
                .slot(Trace::NonPointer),
        ),
        births: vm.register_frame(FrameDesc::new("life::births").slots(3, Trace::Pointer)),
        insert: vm.register_frame(
            FrameDesc::new("life::insert")
                .slot(Trace::Pointer)
                .slot(Trace::NonPointer),
        ),
        cell: vm.site("life::cell"),
    }
}

/// Number of live neighbours of `(x, y)` (non-allocating).
fn neighbours(vm: &mut Vm, board: Addr, x: i64, y: i64) -> usize {
    let mut n = 0;
    for (dx, dy) in OFFSETS {
        let key = pack(x + dx, y + dy);
        let mut l = board;
        while !l.is_null() {
            let h = head_int(vm, l);
            if h == key {
                n += 1;
                break;
            }
            if h > key {
                break; // sorted
            }
            l = tail(vm, l);
        }
    }
    n
}

/// Sorted insertion (allocates one cell; rebuilds the prefix, as a
/// functional implementation would).
fn insert_sorted(vm: &mut Vm, p: &Life, list: Addr, key: i64) -> Addr {
    // Recursive: rebuild until the insertion point.
    vm.push_frame(p.insert);
    vm.set_slot(0, Value::Ptr(list));
    vm.set_slot(1, Value::Int(key));
    let result;
    if list.is_null() || head_int(vm, list) > key {
        result = cons(vm, p.cell, Value::Int(key), list);
    } else if head_int(vm, list) == key {
        result = list; // already present
    } else {
        let t = tail(vm, list);
        let new_tail = insert_sorted(vm, p, t, key);
        // Re-read the original list (it may have moved during the
        // recursive call's allocations).
        let list = vm.slot_ptr(0);
        let h = head_int(vm, list);
        // Root the freshly built tail while consing the head back on.
        vm.set_slot(0, Value::Ptr(new_tail));
        result = cons(vm, p.cell, Value::Int(h), new_tail);
    }
    vm.pop_frame();
    result
}

/// Survivors: recursive filter keeping cells with 2 or 3 neighbours. The
/// recursion depth equals the population — this is where Life's stack
/// comes from.
fn survivors(vm: &mut Vm, p: &Life, board: Addr, cells: Addr) -> Addr {
    if cells.is_null() {
        return Addr::NULL;
    }
    vm.push_frame(p.filter);
    vm.set_slot(0, Value::Ptr(board));
    vm.set_slot(1, Value::Ptr(cells));
    let c = head_int(vm, cells);
    let (x, y) = unpack(c);
    let n = neighbours(vm, board, x, y);
    let t = tail(vm, cells);
    let board2 = vm.slot_ptr(0);
    let rest = survivors(vm, p, board2, t);
    let result = if (2..=3).contains(&n) {
        vm.set_slot(0, Value::Ptr(rest));
        cons(vm, p.cell, Value::Int(c), rest)
    } else {
        rest
    };
    vm.pop_frame();
    result
}

/// Births: dead neighbours of live cells with exactly three live
/// neighbours, deduplicated by sorted insertion into the accumulator.
fn births(vm: &mut Vm, p: &Life, board: Addr) -> Addr {
    vm.push_frame(p.births);
    vm.set_slot(0, Value::Ptr(board)); // full board
    vm.set_slot(1, Value::Ptr(board)); // cursor
    vm.set_slot(2, Value::NULL); // accumulator
    loop {
        let cur = vm.slot_ptr(1);
        if cur.is_null() {
            break;
        }
        let c = head_int(vm, cur);
        let (x, y) = unpack(c);
        for (dx, dy) in OFFSETS {
            let (nx, ny) = (x + dx, y + dy);
            let key = pack(nx, ny);
            let board = vm.slot_ptr(0);
            let alive = {
                let mut l = board;
                let mut found = false;
                while !l.is_null() {
                    let h = head_int(vm, l);
                    if h == key {
                        found = true;
                    }
                    if h >= key {
                        break;
                    }
                    l = tail(vm, l);
                }
                found
            };
            if !alive && neighbours(vm, board, nx, ny) == 3 {
                let acc = vm.slot_ptr(2);
                let acc = insert_sorted(vm, p, acc, key);
                vm.set_slot(2, Value::Ptr(acc));
            }
        }
        let cur = vm.slot_ptr(1);
        let next = tail(vm, cur);
        vm.set_slot(1, Value::Ptr(next));
    }
    let out = vm.slot_ptr(2);
    vm.pop_frame();
    out
}

/// One generation: next = survivors ∪ births.
fn step(vm: &mut Vm, p: &Life, board: Addr) -> PResult<Addr> {
    // Population explosion would make the quadratic list operations
    // pathological; bail out the way the original's exception path would.
    if crate::common::list_len(vm, board) > 4000 {
        return Err(Exn);
    }
    vm.push_frame(p.main);
    vm.set_slot(0, Value::Ptr(board));
    let surv = survivors(vm, p, board, board);
    vm.set_slot(1, Value::Ptr(surv));
    let board = vm.slot_ptr(0);
    let born = births(vm, p, board);
    // Merge: insert each survivor into the births list.
    vm.set_slot(0, Value::Ptr(born));
    loop {
        let s = vm.slot_ptr(1);
        if s.is_null() {
            break;
        }
        let c = head_int(vm, s);
        let t = tail(vm, s);
        vm.set_slot(1, Value::Ptr(t));
        let acc = vm.slot_ptr(0);
        let acc = insert_sorted(vm, p, acc, c);
        vm.set_slot(0, Value::Ptr(acc));
    }
    let next = vm.slot_ptr(0);
    vm.pop_frame();
    Ok(next)
}

/// Runs the benchmark: the R-pentomino evolved for `30 * scale`
/// generations (population grows past 100 live cells).
pub fn run(vm: &mut Vm, scale: u32) -> u64 {
    let p = setup(vm);
    vm.push_frame(p.main);
    // The R-pentomino, a long-lived methuselah.
    let seed = [(0i64, 1i64), (0, 2), (1, 0), (1, 1), (2, 1)];
    vm.set_slot(0, Value::NULL);
    for (x, y) in seed {
        let b = vm.slot_ptr(0);
        let b = insert_sorted(vm, &p, b, pack(x, y));
        vm.set_slot(0, Value::Ptr(b));
    }
    let gens = 30 * scale;
    let mut h = 0u64;
    for g in 0..gens {
        let board = vm.slot_ptr(0);
        match step(vm, &p, board) {
            Ok(next) => vm.set_slot(0, Value::Ptr(next)),
            Err(Exn) => break,
        }
        let board = vm.slot_ptr(0);
        h = crate::common::mix(h, u64::from(g));
        h = list_checksum(vm, board, h);
    }
    let board = vm.slot_ptr(0);
    let h = list_checksum(vm, board, h);
    vm.pop_frame();
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::{run_all_kinds, tiny_config};

    #[test]
    fn r_pentomino_grows() {
        let mut vm = tilgc_core::build_vm(tilgc_core::CollectorKind::Generational, &tiny_config());
        let p = setup(&mut vm);
        vm.push_frame(p.main);
        vm.set_slot(0, Value::NULL);
        for (x, y) in [(0i64, 1i64), (0, 2), (1, 0), (1, 1), (2, 1)] {
            let b = vm.slot_ptr(0);
            let b = insert_sorted(&mut vm, &p, b, pack(x, y));
            vm.set_slot(0, Value::Ptr(b));
        }
        // Ground-truth populations from a reference implementation.
        let expected = [6, 7, 9, 8, 9, 12, 11, 18, 11, 11];
        for want in expected {
            let b = vm.slot_ptr(0);
            let next = step(&mut vm, &p, b).unwrap();
            vm.set_slot(0, Value::Ptr(next));
            let b = vm.slot_ptr(0);
            let pop = crate::common::list_len(&mut vm, b);
            assert_eq!(pop, want, "R-pentomino population sequence");
        }
    }

    #[test]
    fn pack_unpack_round_trip() {
        for (x, y) in [(0, 0), (-5, 7), (100, -100)] {
            assert_eq!(unpack(pack(x, y)), (x, y));
        }
        // Packing preserves lexicographic adjacency used by the sort.
        assert!(pack(0, 0) < pack(0, 1));
        assert!(pack(0, 5) < pack(1, -5));
    }

    #[test]
    fn deterministic_and_collector_independent() {
        let results = run_all_kinds(|vm| run(vm, 1), &tiny_config());
        assert!(
            results.windows(2).all(|w| w[0] == w[1]),
            "results differ: {results:?}"
        );
    }
}
