//! `Knuth-Bendix` — completion of the group axioms by term rewriting.
//!
//! The paper's flagship for generational stack collection: completion
//! normalizes terms with deeply non-tail-recursive rewriting, so the
//! collector routinely finds thousands of live activation records
//! (Table 2: 4234 max, 1336 average) of which only ~117 are new per
//! collection — and the rule set grows monotonically, so almost all data
//! that survives the nursery stays live to the end (no benefit from
//! larger heaps, big benefit from pretenuring; Tables 4 and 6).
//!
//! Starting from the three group axioms
//!
//! ```text
//! (x·y)·z = x·(y·z)        e·x = x        i(x)·x = e
//! ```
//!
//! completion with a Knuth–Bendix order (weights: e, vars = 1; ·, i = 0;
//! precedence i > · > e) derives the classic convergent system of ten
//! rules.

use tilgc_mem::{Addr, SiteId};
use tilgc_runtime::{DescId, FrameDesc, Trace, Value, Vm};

use crate::common::{mix, must};

/// Term tags.
const TAG_VAR: i64 = 0;
const TAG_E: i64 = 1;
const TAG_MUL: i64 = 2;
const TAG_INV: i64 = 3;

struct Kb {
    /// Working frame for the completion driver: seven pointer slots +
    /// two scratch ints.
    work: DescId,
    /// Two-pointer helper frame (matching, unification, renaming).
    w2: DescId,
    /// Three-pointer helper frame (substitution application, resolution,
    /// root rewriting).
    w3: DescId,
    /// Four-pointer helper frame (normalization).
    w4: DescId,
    /// Six-pointer helper frame (superposition, critical pairs).
    w6: DescId,
    term_site: SiteId,
    /// Terms rebuilt by variable canonicalization — they become the rule
    /// sides, living to the end of the run.
    canon_site: SiteId,
    /// Terms built by `resolve` — the instantiated peaks/bottoms queued
    /// as equations, surviving until their equation is processed.
    resolved_site: SiteId,
    /// Spines of the word-problem inputs: big terms that live across the
    /// collections that happen while they are built and normalized.
    word_site: SiteId,
    subst_site: SiteId,
    rule_site: SiteId,
    eq_site: SiteId,
    box_site: SiteId,
}

fn setup(vm: &mut Vm) -> Kb {
    Kb {
        work: vm.register_frame(
            FrameDesc::new("kb::work")
                .slots(8, Trace::Pointer)
                .slots(2, Trace::NonPointer),
        ),
        w2: vm.register_frame(FrameDesc::new("kb::w2").slots(2, Trace::Pointer)),
        w3: vm.register_frame(FrameDesc::new("kb::w3").slots(3, Trace::Pointer)),
        w4: vm.register_frame(
            FrameDesc::new("kb::w4")
                .slots(4, Trace::Pointer)
                .slot(Trace::NonPointer),
        ),
        w6: vm.register_frame(FrameDesc::new("kb::w6").slots(6, Trace::Pointer)),
        term_site: vm.site("kb::term"),
        canon_site: vm.site("kb::canon_term"),
        resolved_site: vm.site("kb::resolved_term"),
        word_site: vm.site("kb::word_term"),
        subst_site: vm.site("kb::subst"),
        rule_site: vm.site("kb::rule"),
        eq_site: vm.site("kb::eq"),
        box_site: vm.site("kb::eqbox"),
    }
}

// ----- term construction and access ---------------------------------------

/// Term record: `[tag, varidx, left, right]`, mask `0b1100`, allocated
/// at an explicit site (the profiler classifies terms by the code path
/// that built them, as TIL's per-program-point sites would).
fn mk_at(vm: &mut Vm, site: SiteId, tag: i64, var: i64, l: Addr, r: Addr) -> Addr {
    must(vm.alloc_record(
        site,
        &[
            Value::Int(tag),
            Value::Int(var),
            Value::Ptr(l),
            Value::Ptr(r),
        ],
    ))
}

/// Term record at the general (mostly short-lived) term site.
fn mk(vm: &mut Vm, p: &Kb, tag: i64, var: i64, l: Addr, r: Addr) -> Addr {
    mk_at(vm, p.term_site, tag, var, l, r)
}

fn var(vm: &mut Vm, p: &Kb, i: i64) -> Addr {
    mk(vm, p, TAG_VAR, i, Addr::NULL, Addr::NULL)
}

fn e_const(vm: &mut Vm, p: &Kb) -> Addr {
    mk(vm, p, TAG_E, 0, Addr::NULL, Addr::NULL)
}

fn tag(vm: &mut Vm, t: Addr) -> i64 {
    vm.load_int(t, 0)
}

fn var_idx(vm: &mut Vm, t: Addr) -> i64 {
    vm.load_int(t, 1)
}

fn left(vm: &mut Vm, t: Addr) -> Addr {
    vm.load_ptr(t, 2)
}

fn right(vm: &mut Vm, t: Addr) -> Addr {
    vm.load_ptr(t, 3)
}

/// Structural equality (non-allocating).
fn term_eq(vm: &mut Vm, a: Addr, b: Addr) -> bool {
    if a == b {
        return true;
    }
    if a.is_null() || b.is_null() {
        return false;
    }
    if tag(vm, a) != tag(vm, b) || var_idx(vm, a) != var_idx(vm, b) {
        return false;
    }
    let (al, bl) = (left(vm, a), left(vm, b));
    let l_eq = if al.is_null() && bl.is_null() {
        true
    } else {
        term_eq(vm, al, bl)
    };
    if !l_eq {
        return false;
    }
    let (ar, br) = (right(vm, a), right(vm, b));
    if ar.is_null() && br.is_null() {
        true
    } else {
        term_eq(vm, ar, br)
    }
}

/// Structural hash of a term (non-allocating).
fn term_hash(vm: &mut Vm, t: Addr) -> u64 {
    if t.is_null() {
        return 7;
    }
    let mut h = mix(11, tag(vm, t) as u64);
    h = mix(h, var_idx(vm, t) as u64);
    let l = left(vm, t);
    h = mix(h, term_hash(vm, l));
    let r = right(vm, t);
    mix(h, term_hash(vm, r))
}

// ----- the Knuth–Bendix order ----------------------------------------------

/// Weight: vars and `e` weigh 1; `·` and `i` weigh 0 (non-allocating).
fn weight(vm: &mut Vm, t: Addr) -> i64 {
    match tag(vm, t) {
        TAG_VAR | TAG_E => 1,
        TAG_MUL => {
            let (l, r) = (left(vm, t), right(vm, t));
            weight(vm, l) + weight(vm, r)
        }
        TAG_INV => {
            let l = left(vm, t);
            weight(vm, l)
        }
        _ => unreachable!("bad term tag"),
    }
}

/// Adds the variable occurrence counts of `t` into `counts`.
fn var_counts(vm: &mut Vm, t: Addr, counts: &mut [i64; 16]) {
    match tag(vm, t) {
        TAG_VAR => counts[(var_idx(vm, t) as usize) % 16] += 1,
        TAG_E => {}
        TAG_MUL => {
            let (l, r) = (left(vm, t), right(vm, t));
            var_counts(vm, l, counts);
            var_counts(vm, r, counts);
        }
        TAG_INV => {
            let l = left(vm, t);
            var_counts(vm, l, counts);
        }
        _ => unreachable!("bad term tag"),
    }
}

/// Precedence: i > · > e.
fn prec(t: i64) -> i64 {
    match t {
        TAG_INV => 3,
        TAG_MUL => 2,
        TAG_E => 1,
        _ => 0,
    }
}

/// KBO: returns `true` iff `s > t` (non-allocating).
fn kbo_greater(vm: &mut Vm, s: Addr, t: Addr) -> bool {
    let mut cs = [0i64; 16];
    let mut ct = [0i64; 16];
    var_counts(vm, s, &mut cs);
    var_counts(vm, t, &mut ct);
    if cs.iter().zip(&ct).any(|(a, b)| a < b) {
        return false; // variable condition fails
    }
    let (ws, wt) = (weight(vm, s), weight(vm, t));
    if ws != wt {
        return ws > wt;
    }
    let (ts, tt) = (tag(vm, s), tag(vm, t));
    if tt == TAG_VAR {
        // Equal weight over a variable: admissible only for i…i(x) > x.
        if ts == TAG_INV {
            let mut cur = s;
            while tag(vm, cur) == TAG_INV {
                cur = left(vm, cur);
            }
            return tag(vm, cur) == TAG_VAR && var_idx(vm, cur) == var_idx(vm, t);
        }
        return false;
    }
    if ts == TAG_VAR {
        return false;
    }
    if prec(ts) != prec(tt) {
        return prec(ts) > prec(tt);
    }
    match ts {
        TAG_MUL => {
            let (sl, tl) = (left(vm, s), left(vm, t));
            if !term_eq(vm, sl, tl) {
                return kbo_greater(vm, sl, tl);
            }
            let (sr, tr) = (right(vm, s), right(vm, t));
            kbo_greater(vm, sr, tr)
        }
        TAG_INV => {
            let (sl, tl) = (left(vm, s), left(vm, t));
            kbo_greater(vm, sl, tl)
        }
        _ => false,
    }
}

// ----- substitutions, matching, unification -------------------------------

/// Substitution binding lookup: `[varidx, term, next]` cells
/// (non-allocating).
fn lookup(vm: &mut Vm, subst: Addr, v: i64) -> Addr {
    let mut s = subst;
    while !s.is_null() {
        if vm.load_int(s, 0) == v {
            return vm.load_ptr(s, 1);
        }
        s = vm.load_ptr(s, 2);
    }
    Addr::NULL
}

fn bind(vm: &mut Vm, p: &Kb, subst: Addr, v: i64, t: Addr) -> Addr {
    must(vm.alloc_record(
        p.subst_site,
        &[Value::Int(v), Value::Ptr(t), Value::Ptr(subst)],
    ))
}

/// Matches `pattern` against `subject`, extending `subst`.
fn match_term(vm: &mut Vm, p: &Kb, pattern: Addr, subject: Addr, subst: Addr) -> Option<Addr> {
    let pt = tag(vm, pattern);
    if pt == TAG_VAR {
        let v = var_idx(vm, pattern);
        let bound = lookup(vm, subst, v);
        return if bound.is_null() {
            Some(bind(vm, p, subst, v, subject))
        } else if term_eq(vm, bound, subject) {
            Some(subst)
        } else {
            None
        };
    }
    if pt != tag(vm, subject) {
        return None;
    }
    match pt {
        TAG_E => Some(subst),
        TAG_INV => {
            let (pl, sl) = (left(vm, pattern), left(vm, subject));
            match_term(vm, p, pl, sl, subst)
        }
        TAG_MUL => {
            // The left recursion may allocate bindings; park the right
            // sides across it.
            vm.push_frame(p.w2);
            let pr = right(vm, pattern);
            vm.set_slot(0, Value::Ptr(pr));
            let sr = right(vm, subject);
            vm.set_slot(1, Value::Ptr(sr));
            let (pl, sl) = (left(vm, pattern), left(vm, subject));
            let res = match match_term(vm, p, pl, sl, subst) {
                Some(s1) => {
                    let pr = vm.slot_ptr(0);
                    let sr = vm.slot_ptr(1);
                    match_term(vm, p, pr, sr, s1)
                }
                None => None,
            };
            vm.pop_frame();
            res
        }
        _ => unreachable!("bad term tag"),
    }
}

/// Applies `subst` to `pattern`, building a fresh instance.
fn apply_subst(vm: &mut Vm, p: &Kb, subst: Addr, pattern: Addr) -> Addr {
    match tag(vm, pattern) {
        TAG_VAR => {
            let v = var_idx(vm, pattern);
            let bound = lookup(vm, subst, v);
            if bound.is_null() {
                var(vm, p, v)
            } else {
                bound
            }
        }
        TAG_E => e_const(vm, p),
        TAG_INV => {
            vm.push_frame(p.w3);
            vm.set_slot(0, Value::Ptr(subst));
            let l = left(vm, pattern);
            let s = vm.slot_ptr(0);
            let inner = apply_subst(vm, p, s, l);
            let out = mk(vm, p, TAG_INV, 0, inner, Addr::NULL);
            vm.pop_frame();
            out
        }
        TAG_MUL => {
            vm.push_frame(p.w3);
            vm.set_slot(0, Value::Ptr(subst));
            vm.set_slot(1, Value::Ptr(pattern));
            let l = left(vm, pattern);
            let s = vm.slot_ptr(0);
            let nl = apply_subst(vm, p, s, l);
            vm.set_slot(2, Value::Ptr(nl));
            let pattern2 = vm.slot_ptr(1);
            let r = right(vm, pattern2);
            let s = vm.slot_ptr(0);
            let nr = apply_subst(vm, p, s, r);
            let nl = vm.slot_ptr(2);
            let out = mk(vm, p, TAG_MUL, 0, nl, nr);
            vm.pop_frame();
            out
        }
        _ => unreachable!("bad term tag"),
    }
}

/// Copies `t` with every variable index shifted by `offset`.
fn rename(vm: &mut Vm, p: &Kb, t: Addr, offset: i64) -> Addr {
    match tag(vm, t) {
        TAG_VAR => {
            let i = var_idx(vm, t);
            var(vm, p, i + offset)
        }
        TAG_E => e_const(vm, p),
        TAG_INV => {
            vm.push_frame(p.w2);
            let l = left(vm, t);
            let nl = rename(vm, p, l, offset);
            let out = mk(vm, p, TAG_INV, 0, nl, Addr::NULL);
            vm.pop_frame();
            out
        }
        TAG_MUL => {
            vm.push_frame(p.w2);
            vm.set_slot(0, Value::Ptr(t));
            let l = left(vm, t);
            let nl = rename(vm, p, l, offset);
            vm.set_slot(1, Value::Ptr(nl));
            let t2 = vm.slot_ptr(0);
            let r = right(vm, t2);
            let nr = rename(vm, p, r, offset);
            let nl = vm.slot_ptr(1);
            let out = mk(vm, p, TAG_MUL, 0, nl, nr);
            vm.pop_frame();
            out
        }
        _ => unreachable!("bad term tag"),
    }
}

/// Whether variable `v` occurs in `t` under `subst` (non-allocating).
fn occurs(vm: &mut Vm, subst: Addr, v: i64, t: Addr) -> bool {
    match tag(vm, t) {
        TAG_VAR => {
            let u = var_idx(vm, t);
            if u == v {
                return true;
            }
            let bound = lookup(vm, subst, u);
            !bound.is_null() && occurs(vm, subst, v, bound)
        }
        TAG_E => false,
        TAG_INV => {
            let l = left(vm, t);
            occurs(vm, subst, v, l)
        }
        TAG_MUL => {
            let l = left(vm, t);
            if occurs(vm, subst, v, l) {
                return true;
            }
            let r = right(vm, t);
            occurs(vm, subst, v, r)
        }
        _ => unreachable!("bad term tag"),
    }
}

/// Chases variable bindings to a non-variable or unbound variable.
fn walk(vm: &mut Vm, subst: Addr, t: Addr) -> Addr {
    let mut cur = t;
    while tag(vm, cur) == TAG_VAR {
        let i = var_idx(vm, cur);
        let b = lookup(vm, subst, i);
        if b.is_null() {
            return cur;
        }
        cur = b;
    }
    cur
}

/// Unification with triangular substitutions.
fn unify(vm: &mut Vm, p: &Kb, a: Addr, b: Addr, subst: Addr) -> Option<Addr> {
    let a = walk(vm, subst, a);
    let b = walk(vm, subst, b);
    if a == b {
        return Some(subst);
    }
    if tag(vm, a) == TAG_VAR {
        let v = var_idx(vm, a);
        if occurs(vm, subst, v, b) {
            return None;
        }
        return Some(bind(vm, p, subst, v, b));
    }
    if tag(vm, b) == TAG_VAR {
        return unify(vm, p, b, a, subst);
    }
    if tag(vm, a) != tag(vm, b) {
        return None;
    }
    match tag(vm, a) {
        TAG_E => Some(subst),
        TAG_INV => {
            let (al, bl) = (left(vm, a), left(vm, b));
            unify(vm, p, al, bl, subst)
        }
        TAG_MUL => {
            vm.push_frame(p.w2);
            let ar = right(vm, a);
            vm.set_slot(0, Value::Ptr(ar));
            let br = right(vm, b);
            vm.set_slot(1, Value::Ptr(br));
            let (al, bl) = (left(vm, a), left(vm, b));
            let res = match unify(vm, p, al, bl, subst) {
                Some(s1) => {
                    let ar = vm.slot_ptr(0);
                    let br = vm.slot_ptr(1);
                    unify(vm, p, ar, br, s1)
                }
                None => None,
            };
            vm.pop_frame();
            res
        }
        _ => unreachable!("bad term tag"),
    }
}

/// Fully applies a triangular substitution, building a fresh term.
fn resolve(vm: &mut Vm, p: &Kb, subst: Addr, t: Addr) -> Addr {
    let t = walk(vm, subst, t);
    match tag(vm, t) {
        TAG_VAR => {
            let i = var_idx(vm, t);
            mk_at(vm, p.resolved_site, TAG_VAR, i, Addr::NULL, Addr::NULL)
        }
        TAG_E => mk_at(vm, p.resolved_site, TAG_E, 0, Addr::NULL, Addr::NULL),
        TAG_INV => {
            vm.push_frame(p.w3);
            vm.set_slot(0, Value::Ptr(subst));
            let l = left(vm, t);
            let s = vm.slot_ptr(0);
            let nl = resolve(vm, p, s, l);
            let out = mk_at(vm, p.resolved_site, TAG_INV, 0, nl, Addr::NULL);
            vm.pop_frame();
            out
        }
        TAG_MUL => {
            vm.push_frame(p.w3);
            vm.set_slot(0, Value::Ptr(subst));
            vm.set_slot(1, Value::Ptr(t));
            let l = left(vm, t);
            let s = vm.slot_ptr(0);
            let nl = resolve(vm, p, s, l);
            vm.set_slot(2, Value::Ptr(nl));
            let t2 = vm.slot_ptr(1);
            let r = right(vm, t2);
            let s = vm.slot_ptr(0);
            let nr = resolve(vm, p, s, r);
            let nl = vm.slot_ptr(2);
            let out = mk_at(vm, p.resolved_site, TAG_MUL, 0, nl, nr);
            vm.pop_frame();
            out
        }
        _ => unreachable!("bad term tag"),
    }
}

/// Collects the distinct variable indices of `t` in first-occurrence
/// order (non-allocating).
fn canon_collect(vm: &mut Vm, t: Addr, map: &mut Vec<i64>) {
    match tag(vm, t) {
        TAG_VAR => {
            let i = var_idx(vm, t);
            if !map.contains(&i) {
                map.push(i);
            }
        }
        TAG_E => {}
        TAG_INV => {
            let l = left(vm, t);
            canon_collect(vm, l, map);
        }
        TAG_MUL => {
            let l = left(vm, t);
            canon_collect(vm, l, map);
            let r = right(vm, t);
            canon_collect(vm, r, map);
        }
        _ => unreachable!("bad term tag"),
    }
}

/// Rebuilds `t` with every variable renumbered through `map`
/// (first-occurrence order => indices 0, 1, 2, ...). Keeps rule variables
/// small and collision-free no matter how many renamings a term has been
/// through.
fn canon_build(vm: &mut Vm, p: &Kb, t: Addr, map: &[i64]) -> Addr {
    match tag(vm, t) {
        TAG_VAR => {
            let i = var_idx(vm, t);
            let new = map.iter().position(|&m| m == i).expect("collected above") as i64;
            mk_at(vm, p.canon_site, TAG_VAR, new, Addr::NULL, Addr::NULL)
        }
        TAG_E => mk_at(vm, p.canon_site, TAG_E, 0, Addr::NULL, Addr::NULL),
        TAG_INV => {
            vm.push_frame(p.w2);
            let l = left(vm, t);
            let nl = canon_build(vm, p, l, map);
            let out = mk_at(vm, p.canon_site, TAG_INV, 0, nl, Addr::NULL);
            vm.pop_frame();
            out
        }
        TAG_MUL => {
            vm.push_frame(p.w2);
            vm.set_slot(0, Value::Ptr(t));
            let l = left(vm, t);
            let nl = canon_build(vm, p, l, map);
            vm.set_slot(1, Value::Ptr(nl));
            let t2 = vm.slot_ptr(0);
            let r = right(vm, t2);
            let nr = canon_build(vm, p, r, map);
            let nl = vm.slot_ptr(1);
            let out = mk_at(vm, p.canon_site, TAG_MUL, 0, nl, nr);
            vm.pop_frame();
            out
        }
        _ => unreachable!("bad term tag"),
    }
}

// ----- rewriting -----------------------------------------------------------

/// One root rewrite step with the first applicable rule from the `[lhs,
/// rhs, next]` rule list; returns the contractum or null.
fn rewrite_root(vm: &mut Vm, p: &Kb, t: Addr, rules: Addr) -> Addr {
    vm.push_frame(p.w3);
    vm.set_slot(0, Value::Ptr(t));
    vm.set_slot(1, Value::Ptr(rules));
    loop {
        let r = vm.slot_ptr(1);
        if r.is_null() {
            break;
        }
        let lhs = vm.load_ptr(r, 0);
        let t = vm.slot_ptr(0);
        if let Some(subst) = match_term(vm, p, lhs, t, Addr::NULL) {
            vm.set_slot(2, Value::Ptr(subst));
            let r = vm.slot_ptr(1);
            let rhs = vm.load_ptr(r, 1);
            let subst = vm.slot_ptr(2);
            let out = apply_subst(vm, p, subst, rhs);
            vm.pop_frame();
            return out;
        }
        let r = vm.slot_ptr(1);
        let next = vm.load_ptr(r, 2);
        vm.set_slot(1, Value::Ptr(next));
    }
    vm.pop_frame();
    Addr::NULL
}

/// Normalizes `t`: children first, then root steps, each root step
/// recursing on the whole contractum — the deeply non-tail recursion that
/// builds Knuth-Bendix's thousands-deep stacks.
fn normalize(vm: &mut Vm, p: &Kb, t: Addr, rules: Addr) -> Addr {
    vm.push_frame(p.w4);
    vm.set_slot(0, Value::Ptr(t));
    vm.set_slot(1, Value::Ptr(rules));
    let normd = match tag(vm, t) {
        TAG_VAR | TAG_E => vm.slot_ptr(0),
        TAG_INV => {
            let l = left(vm, t);
            let rules2 = vm.slot_ptr(1);
            let nl = normalize(vm, p, l, rules2);
            mk(vm, p, TAG_INV, 0, nl, Addr::NULL)
        }
        TAG_MUL => {
            let l = left(vm, t);
            let rules2 = vm.slot_ptr(1);
            let nl = normalize(vm, p, l, rules2);
            vm.set_slot(2, Value::Ptr(nl));
            let t2 = vm.slot_ptr(0);
            let r = right(vm, t2);
            let rules2 = vm.slot_ptr(1);
            let nr = normalize(vm, p, r, rules2);
            let nl = vm.slot_ptr(2);
            mk(vm, p, TAG_MUL, 0, nl, nr)
        }
        _ => unreachable!("bad term tag"),
    };
    vm.set_slot(3, Value::Ptr(normd));
    let normd = vm.slot_ptr(3);
    let rules2 = vm.slot_ptr(1);
    let stepped = rewrite_root(vm, p, normd, rules2);
    let out = if stepped.is_null() {
        vm.slot_ptr(3)
    } else {
        let rules2 = vm.slot_ptr(1);
        normalize(vm, p, stepped, rules2)
    };
    vm.pop_frame();
    out
}

/// Number of nodes in a term (non-allocating).
fn term_size(vm: &mut Vm, t: Addr) -> u64 {
    match tag(vm, t) {
        TAG_VAR | TAG_E => 1,
        TAG_INV => {
            let l = left(vm, t);
            1 + term_size(vm, l)
        }
        TAG_MUL => {
            let l = left(vm, t);
            let sl = term_size(vm, l);
            let r = right(vm, t);
            1 + sl + term_size(vm, r)
        }
        _ => unreachable!("bad term tag"),
    }
}

/// Renders a term for debugging traces.
#[allow(dead_code)]
fn term_str(vm: &mut Vm, t: Addr) -> String {
    match tag(vm, t) {
        TAG_VAR => format!("x{}", var_idx(vm, t)),
        TAG_E => "e".to_string(),
        TAG_INV => {
            let l = left(vm, t);
            format!("i({})", term_str(vm, l))
        }
        TAG_MUL => {
            let l = left(vm, t);
            let ls = term_str(vm, l);
            let r = right(vm, t);
            format!("({}*{})", ls, term_str(vm, r))
        }
        _ => "?".to_string(),
    }
}

// ----- completion -----------------------------------------------------------

/// Pushes the equation `a = b` onto the queue held in the one-element
/// pointer array `eq_box`.
fn push_eq(vm: &mut Vm, p: &Kb, eq_box: Addr, a: Addr, b: Addr) {
    vm.push_frame(p.w2);
    vm.set_slot(0, Value::Ptr(eq_box));
    let head = vm.load_ptr(eq_box, 0);
    let cell = must(vm.alloc_record(p.eq_site, &[Value::Ptr(a), Value::Ptr(b), Value::Ptr(head)]));
    let eq_box = vm.slot_ptr(0);
    vm.store_ptr(eq_box, 0, cell);
    vm.pop_frame();
}

/// Superposes `rule1` into the subterm `sub` of `lhs2` (already renamed
/// apart): if `lhs1` unifies with `sub`, the instantiated peak
/// `σ(lhs2) = σ(rhs2)` is queued; normalizing both sides when the
/// equation is processed reduces the peak both ways, yielding exactly the
/// critical pair's two bottoms.
fn superpose_at(vm: &mut Vm, p: &Kb, rule1: Addr, lhs2: Addr, sub: Addr, rhs2: Addr, eq_box: Addr) {
    if tag(vm, sub) == TAG_VAR {
        return;
    }
    vm.push_frame(p.w6);
    vm.set_slot(0, Value::Ptr(lhs2));
    vm.set_slot(1, Value::Ptr(rhs2));
    vm.set_slot(2, Value::Ptr(eq_box));
    let lhs1 = vm.load_ptr(rule1, 0);
    if let Some(subst) = unify(vm, p, lhs1, sub, Addr::NULL) {
        vm.set_slot(3, Value::Ptr(subst));
        let subst = vm.slot_ptr(3);
        let lhs2 = vm.slot_ptr(0);
        let peak = resolve(vm, p, subst, lhs2);
        vm.set_slot(4, Value::Ptr(peak));
        let subst = vm.slot_ptr(3);
        let rhs2 = vm.slot_ptr(1);
        let bottom = resolve(vm, p, subst, rhs2);
        vm.set_slot(5, Value::Ptr(bottom));
        let eq_box = vm.slot_ptr(2);
        let peak = vm.slot_ptr(4);
        let bottom = vm.slot_ptr(5);
        push_eq(vm, p, eq_box, peak, bottom);
    }
    vm.pop_frame();
}

/// Queues the critical pairs of `rule1` superposed into `rule2`.
fn critical_pairs(vm: &mut Vm, p: &Kb, rule1: Addr, rule2: Addr, eq_box: Addr) {
    vm.push_frame(p.w6);
    vm.set_slot(0, Value::Ptr(rule1));
    vm.set_slot(1, Value::Ptr(eq_box));
    // Rename rule2's variables apart.
    let lhs2 = vm.load_ptr(rule2, 0);
    vm.set_slot(5, Value::Ptr(rule2));
    let lhs2r = rename(vm, p, lhs2, 100);
    vm.set_slot(2, Value::Ptr(lhs2r));
    let rule2 = vm.slot_ptr(5);
    let rhs2 = vm.load_ptr(rule2, 1);
    let rhs2r = rename(vm, p, rhs2, 100);
    vm.set_slot(3, Value::Ptr(rhs2r));
    // Worklist of subterm positions of lhs2r (slot 4), as `[term, next]`
    // cells.
    let lhs2r = vm.slot_ptr(2);
    let wl = must(vm.alloc_record(p.eq_site, &[Value::Ptr(lhs2r), Value::NULL]));
    vm.set_slot(4, Value::Ptr(wl));
    loop {
        let wl = vm.slot_ptr(4);
        if wl.is_null() {
            break;
        }
        let sub = vm.load_ptr(wl, 0);
        let rest = vm.load_ptr(wl, 1);
        vm.set_slot(4, Value::Ptr(rest));
        if tag(vm, sub) == TAG_VAR {
            continue;
        }
        // Push the children first (allocations; park `sub` meanwhile).
        vm.set_slot(5, Value::Ptr(sub));
        for i in [2usize, 3] {
            let sub = vm.slot_ptr(5);
            let child = vm.load_ptr(sub, i);
            if child.is_null() {
                continue;
            }
            let wl = vm.slot_ptr(4);
            let cell = must(vm.alloc_record(p.eq_site, &[Value::Ptr(child), Value::Ptr(wl)]));
            vm.set_slot(4, Value::Ptr(cell));
        }
        let rule1 = vm.slot_ptr(0);
        let lhs2r = vm.slot_ptr(2);
        let sub = vm.slot_ptr(5);
        let rhs2r = vm.slot_ptr(3);
        let eq_box = vm.slot_ptr(1);
        superpose_at(vm, p, rule1, lhs2r, sub, rhs2r, eq_box);
    }
    vm.pop_frame();
}

/// Slot roles in `complete`'s frame.
struct Slots;
impl Slots {
    const RULES: usize = 0;
    const EQBOX: usize = 1;
    const T0: usize = 2;
    const T1: usize = 3;
    const NEW: usize = 4;
    const CURSOR: usize = 5;
    const KEPT: usize = 6;
    const HISTORY: usize = 7;
}

/// The completion loop; returns `(rule_count, checksum)`.
fn complete(vm: &mut Vm, p: &Kb, max_eqs: usize) -> (u64, u64) {
    vm.push_frame(p.work);
    vm.set_slot(Slots::RULES, Value::NULL);
    vm.set_slot(Slots::HISTORY, Value::NULL);
    let eq_box = must(vm.alloc_ptr_array(p.box_site, 1, Addr::NULL));
    vm.set_slot(Slots::EQBOX, Value::Ptr(eq_box));

    // --- the three group axioms ---
    // (x·y)·z = x·(y·z)
    {
        let x = var(vm, p, 0);
        vm.set_slot(Slots::T0, Value::Ptr(x));
        let y = var(vm, p, 1);
        let x = vm.slot_ptr(Slots::T0);
        let xy = mk(vm, p, TAG_MUL, 0, x, y);
        vm.set_slot(Slots::T0, Value::Ptr(xy));
        let z = var(vm, p, 2);
        let xy = vm.slot_ptr(Slots::T0);
        let lhs = mk(vm, p, TAG_MUL, 0, xy, z);
        vm.set_slot(Slots::T0, Value::Ptr(lhs));

        let y = var(vm, p, 1);
        vm.set_slot(Slots::T1, Value::Ptr(y));
        let z = var(vm, p, 2);
        let y = vm.slot_ptr(Slots::T1);
        let yz = mk(vm, p, TAG_MUL, 0, y, z);
        vm.set_slot(Slots::T1, Value::Ptr(yz));
        let x = var(vm, p, 0);
        let yz = vm.slot_ptr(Slots::T1);
        let rhs = mk(vm, p, TAG_MUL, 0, x, yz);
        vm.set_slot(Slots::T1, Value::Ptr(rhs));

        let eq_box = vm.slot_ptr(Slots::EQBOX);
        let a = vm.slot_ptr(Slots::T0);
        let b = vm.slot_ptr(Slots::T1);
        push_eq(vm, p, eq_box, a, b);
    }
    // e·x = x
    {
        let e = e_const(vm, p);
        vm.set_slot(Slots::T0, Value::Ptr(e));
        let x = var(vm, p, 0);
        let e = vm.slot_ptr(Slots::T0);
        let lhs = mk(vm, p, TAG_MUL, 0, e, x);
        vm.set_slot(Slots::T0, Value::Ptr(lhs));
        let rhs = var(vm, p, 0);
        vm.set_slot(Slots::T1, Value::Ptr(rhs));
        let eq_box = vm.slot_ptr(Slots::EQBOX);
        let a = vm.slot_ptr(Slots::T0);
        let b = vm.slot_ptr(Slots::T1);
        push_eq(vm, p, eq_box, a, b);
    }
    // i(x)·x = e
    {
        let x = var(vm, p, 0);
        let ix = mk(vm, p, TAG_INV, 0, x, Addr::NULL);
        vm.set_slot(Slots::T0, Value::Ptr(ix));
        let x = var(vm, p, 0);
        let ix = vm.slot_ptr(Slots::T0);
        let lhs = mk(vm, p, TAG_MUL, 0, ix, x);
        vm.set_slot(Slots::T0, Value::Ptr(lhs));
        let rhs = e_const(vm, p);
        vm.set_slot(Slots::T1, Value::Ptr(rhs));
        let eq_box = vm.slot_ptr(Slots::EQBOX);
        let a = vm.slot_ptr(Slots::T0);
        let b = vm.slot_ptr(Slots::T1);
        push_eq(vm, p, eq_box, a, b);
    }

    // --- main loop ---
    let mut processed = 0usize;
    while processed < max_eqs {
        let eq_box = vm.slot_ptr(Slots::EQBOX);
        let eqs = vm.load_ptr(eq_box, 0);
        if eqs.is_null() {
            break;
        }
        processed += 1;
        // Fair selection: take the *smallest* equation (classic
        // completion strategy — a LIFO queue dives into families of
        // ever-growing critical pairs and never converges).
        let eqs = {
            let mut best = eqs;
            let mut best_size = u64::MAX;
            let mut cur = eqs;
            while !cur.is_null() {
                let a = vm.load_ptr(cur, 0);
                let sa = term_size(vm, a);
                let b = vm.load_ptr(cur, 1);
                let sb = term_size(vm, b);
                if sa + sb < best_size {
                    best_size = sa + sb;
                    best = cur;
                }
                cur = vm.load_ptr(cur, 2);
            }
            // Unlink `best` (pure pointer surgery, no allocation).
            let head = vm.load_ptr(eq_box, 0);
            if best == head {
                let next = vm.load_ptr(best, 2);
                vm.store_ptr(eq_box, 0, next);
            } else {
                let mut prev = head;
                loop {
                    let next = vm.load_ptr(prev, 2);
                    if next == best {
                        break;
                    }
                    prev = next;
                }
                let next = vm.load_ptr(best, 2);
                vm.store_ptr(prev, 2, next);
            }
            best
        };
        #[cfg(feature = "kb-trace")]
        {
            let mut qlen = 0;
            let mut q = eqs;
            while !q.is_null() {
                qlen += 1;
                q = vm.load_ptr(q, 2);
            }
            let mut rules_n = 0;
            let mut r = vm.slot_ptr(Slots::RULES);
            while !r.is_null() {
                rules_n += 1;
                r = vm.load_ptr(r, 2);
            }
            eprintln!("eq#{processed}: queue={qlen} rules={rules_n}");
        }
        let a = vm.load_ptr(eqs, 0);
        let b = vm.load_ptr(eqs, 1);
        vm.set_slot(Slots::T1, Value::Ptr(b));

        let rules = vm.slot_ptr(Slots::RULES);
        let na = normalize(vm, p, a, rules);
        vm.set_slot(Slots::T0, Value::Ptr(na));
        let b = vm.slot_ptr(Slots::T1);
        let rules = vm.slot_ptr(Slots::RULES);
        let nb = normalize(vm, p, b, rules);
        vm.set_slot(Slots::T1, Value::Ptr(nb));
        let na = vm.slot_ptr(Slots::T0);
        let nb = vm.slot_ptr(Slots::T1);
        // Record the derivation: completion keeps every processed
        // equation's normal forms (its proof trace), so the live set
        // grows monotonically through the run — the paper's signature KB
        // behaviour ("almost all the data that survives the nursery
        // remains alive to the end").
        {
            let history = vm.slot_ptr(Slots::HISTORY);
            let entry = must(vm.alloc_record(
                p.rule_site,
                &[Value::Ptr(na), Value::Ptr(nb), Value::Ptr(history)],
            ));
            vm.set_slot(Slots::HISTORY, Value::Ptr(entry));
        }
        let na = vm.slot_ptr(Slots::T0);
        let nb = vm.slot_ptr(Slots::T1);
        if term_eq(vm, na, nb) {
            continue;
        }
        // Canonicalize variables (rules otherwise accumulate ever-larger
        // renamed indices, breaking the KBO variable condition's bounded
        // counting and hiding duplicates).
        {
            let mut map = Vec::new();
            let na = vm.slot_ptr(Slots::T0);
            canon_collect(vm, na, &mut map);
            let nb = vm.slot_ptr(Slots::T1);
            canon_collect(vm, nb, &mut map);
            let na = vm.slot_ptr(Slots::T0);
            let ca = canon_build(vm, p, na, &map);
            vm.set_slot(Slots::T0, Value::Ptr(ca));
            let nb = vm.slot_ptr(Slots::T1);
            let cb = canon_build(vm, p, nb, &map);
            vm.set_slot(Slots::T1, Value::Ptr(cb));
        }
        let na = vm.slot_ptr(Slots::T0);
        let nb = vm.slot_ptr(Slots::T1);
        let (lhs_slot, rhs_slot) = if kbo_greater(vm, na, nb) {
            (Slots::T0, Slots::T1)
        } else if kbo_greater(vm, nb, na) {
            (Slots::T1, Slots::T0)
        } else {
            continue; // unorientable; a full prover would postpone
        };
        #[cfg(feature = "kb-trace")]
        {
            let lhs = vm.slot_ptr(lhs_slot);
            let ls = term_str(vm, lhs);
            let rhs = vm.slot_ptr(rhs_slot);
            eprintln!("  new rule: {} -> {}", ls, term_str(vm, rhs));
        }
        let lhs = vm.slot_ptr(lhs_slot);
        let rhs = vm.slot_ptr(rhs_slot);
        let rule = must(vm.alloc_record(
            p.rule_site,
            &[Value::Ptr(lhs), Value::Ptr(rhs), Value::NULL],
        ));
        vm.set_slot(Slots::NEW, Value::Ptr(rule));

        // Collapse/compose: reduce existing rules by the new one alone.
        vm.set_slot(Slots::KEPT, Value::NULL);
        let rules = vm.slot_ptr(Slots::RULES);
        vm.set_slot(Slots::CURSOR, Value::Ptr(rules));
        loop {
            let cur = vm.slot_ptr(Slots::CURSOR);
            if cur.is_null() {
                break;
            }
            let old_lhs = vm.load_ptr(cur, 0);
            let single = vm.slot_ptr(Slots::NEW);
            let reduced_lhs = normalize(vm, p, old_lhs, single);
            vm.set_slot(Slots::T0, Value::Ptr(reduced_lhs));
            let cur = vm.slot_ptr(Slots::CURSOR);
            let old_lhs = vm.load_ptr(cur, 0);
            let reduced_lhs = vm.slot_ptr(Slots::T0);
            if !term_eq(vm, reduced_lhs, old_lhs) {
                // Collapsed: the old rule becomes an equation again.
                let cur = vm.slot_ptr(Slots::CURSOR);
                let old_lhs = vm.load_ptr(cur, 0);
                let old_rhs = vm.load_ptr(cur, 1);
                let eq_box = vm.slot_ptr(Slots::EQBOX);
                push_eq(vm, p, eq_box, old_lhs, old_rhs);
            } else {
                // Compose: normalize the right-hand side in place.
                let cur = vm.slot_ptr(Slots::CURSOR);
                let old_rhs = vm.load_ptr(cur, 1);
                let single = vm.slot_ptr(Slots::NEW);
                let reduced_rhs = normalize(vm, p, old_rhs, single);
                let cur = vm.slot_ptr(Slots::CURSOR);
                vm.store_ptr(cur, 1, reduced_rhs);
                // Keep: relink onto the kept list.
                let kept = vm.slot_ptr(Slots::KEPT);
                let cur = vm.slot_ptr(Slots::CURSOR);
                let next = vm.load_ptr(cur, 2);
                vm.set_slot(Slots::T0, Value::Ptr(next));
                vm.store_ptr(cur, 2, kept);
                let cur = vm.slot_ptr(Slots::CURSOR);
                vm.set_slot(Slots::KEPT, Value::Ptr(cur));
                let next = vm.slot_ptr(Slots::T0);
                vm.set_slot(Slots::CURSOR, Value::Ptr(next));
                continue;
            }
            let cur = vm.slot_ptr(Slots::CURSOR);
            let next = vm.load_ptr(cur, 2);
            vm.set_slot(Slots::CURSOR, Value::Ptr(next));
        }
        let kept = vm.slot_ptr(Slots::KEPT);
        vm.set_slot(Slots::RULES, Value::Ptr(kept));

        // Critical pairs with every kept rule (both directions) and with
        // itself.
        let rules = vm.slot_ptr(Slots::RULES);
        vm.set_slot(Slots::CURSOR, Value::Ptr(rules));
        loop {
            let cur = vm.slot_ptr(Slots::CURSOR);
            if cur.is_null() {
                break;
            }
            let new_rule = vm.slot_ptr(Slots::NEW);
            let eq_box = vm.slot_ptr(Slots::EQBOX);
            critical_pairs(vm, p, new_rule, cur, eq_box);
            let cur = vm.slot_ptr(Slots::CURSOR);
            let new_rule = vm.slot_ptr(Slots::NEW);
            let eq_box = vm.slot_ptr(Slots::EQBOX);
            critical_pairs(vm, p, cur, new_rule, eq_box);
            let cur = vm.slot_ptr(Slots::CURSOR);
            let next = vm.load_ptr(cur, 2);
            vm.set_slot(Slots::CURSOR, Value::Ptr(next));
        }
        let new_rule = vm.slot_ptr(Slots::NEW);
        let eq_box = vm.slot_ptr(Slots::EQBOX);
        critical_pairs(vm, p, new_rule, new_rule, eq_box);

        // Install the new rule.
        let rules = vm.slot_ptr(Slots::RULES);
        let rule = vm.slot_ptr(Slots::NEW);
        vm.store_ptr(rule, 2, rules);
        let rule = vm.slot_ptr(Slots::NEW);
        vm.set_slot(Slots::RULES, Value::Ptr(rule));
    }

    // --- word problem workout ---
    // With the convergent system in hand, normalize long group words:
    // every rewrite step is a recursive `normalize` call, so reducing a
    // word with hundreds of redexes piles up the thousands-deep stacks
    // the paper measures for Knuth-Bendix (Table 2: 4234 max frames).
    let mut h = 0u64;
    {
        let mut rng = crate::common::XorShift::new(0x6b62);
        let words = 2 + max_eqs / 200;
        let word_len = 48;
        for _ in 0..words {
            // A *left*-nested word over generators and their inverses:
            // normalizing it replays the associativity rule once per
            // nesting level, every step a fresh activation record.
            let g = mk_at(
                vm,
                p.word_site,
                TAG_VAR,
                rng.below(6) as i64,
                Addr::NULL,
                Addr::NULL,
            );
            vm.set_slot(Slots::T0, Value::Ptr(g));
            for _ in 0..word_len {
                let g = mk_at(
                    vm,
                    p.word_site,
                    TAG_VAR,
                    rng.below(6) as i64,
                    Addr::NULL,
                    Addr::NULL,
                );
                vm.set_slot(Slots::T1, Value::Ptr(g));
                if rng.below(4) == 0 {
                    let g = vm.slot_ptr(Slots::T1);
                    let ig = mk_at(vm, p.word_site, TAG_INV, 0, g, Addr::NULL);
                    vm.set_slot(Slots::T1, Value::Ptr(ig));
                }
                let acc = vm.slot_ptr(Slots::T0);
                let g = vm.slot_ptr(Slots::T1);
                let w = mk_at(vm, p.word_site, TAG_MUL, 0, acc, g);
                vm.set_slot(Slots::T0, Value::Ptr(w));
            }
            let word = vm.slot_ptr(Slots::T0);
            let rules = vm.slot_ptr(Slots::RULES);
            let nf = normalize(vm, p, word, rules);
            h = mix(h, term_hash(vm, nf));
            vm.set_slot(Slots::T1, Value::Ptr(nf));
            let history = vm.slot_ptr(Slots::HISTORY);
            let nf = vm.slot_ptr(Slots::T1);
            let entry = must(vm.alloc_record(
                p.rule_site,
                &[Value::Ptr(nf), Value::NULL, Value::Ptr(history)],
            ));
            vm.set_slot(Slots::HISTORY, Value::Ptr(entry));
        }
        // Cancellation chains: g·(g⁻¹·(h·(h⁻¹· ...))) — every level's
        // cancellation fires inside the nested normalize of the level
        // above, so the stack grows linearly with the chain. This is
        // Knuth-Bendix's signature: thousands of live frames of which
        // only the top few change between collections.
        let chains = 16 * (max_eqs / 400).max(1);
        let chain_len = 1000;
        for _ in 0..chains {
            let e = mk_at(vm, p.word_site, TAG_E, 0, Addr::NULL, Addr::NULL);
            vm.set_slot(Slots::T0, Value::Ptr(e));
            for _ in 0..chain_len {
                let gi = rng.below(6) as i64;
                let g = var(vm, p, gi);
                vm.set_slot(Slots::T1, Value::Ptr(g));
                // Wrap the generator in a chain of double-inverses:
                // normalizing i(i(...(g))) back to g happens bottom-up
                // during the *descent*, so allocation — and therefore
                // collections — occur while the stack is deep and still
                // growing, where the scan cache shines.
                for _ in 0..rng.below(5) {
                    let g = vm.slot_ptr(Slots::T1);
                    let ig = mk_at(vm, p.word_site, TAG_INV, 0, g, Addr::NULL);
                    vm.set_slot(Slots::NEW, Value::Ptr(ig));
                    let ig = vm.slot_ptr(Slots::NEW);
                    let iig = mk_at(vm, p.word_site, TAG_INV, 0, ig, Addr::NULL);
                    vm.set_slot(Slots::T1, Value::Ptr(iig));
                }
                let g = vm.slot_ptr(Slots::T1);
                let ig = mk_at(vm, p.word_site, TAG_INV, 0, g, Addr::NULL);
                vm.set_slot(Slots::NEW, Value::Ptr(ig));
                let ig = vm.slot_ptr(Slots::NEW);
                let acc = vm.slot_ptr(Slots::T0);
                let inner = mk_at(vm, p.word_site, TAG_MUL, 0, ig, acc);
                vm.set_slot(Slots::T0, Value::Ptr(inner));
                let g = vm.slot_ptr(Slots::T1);
                let inner = vm.slot_ptr(Slots::T0);
                let outer = mk_at(vm, p.word_site, TAG_MUL, 0, g, inner);
                vm.set_slot(Slots::T0, Value::Ptr(outer));
            }
            let word = vm.slot_ptr(Slots::T0);
            let rules = vm.slot_ptr(Slots::RULES);
            let nf = normalize(vm, p, word, rules);
            debug_assert_eq!(tag(vm, nf), TAG_E, "cancellation chain must reduce to e");
            h = mix(h, term_hash(vm, nf));
        }
    }

    // The derivation history is live to the very end: fold its length in.
    {
        let mut n = 0u64;
        let mut hist = vm.slot_ptr(Slots::HISTORY);
        while !hist.is_null() {
            n += 1;
            hist = vm.load_ptr(hist, 2);
        }
        h = mix(h, n);
    }

    // Checksum the final rule set (order-independent combination).
    let mut count = 0u64;
    let mut r = vm.slot_ptr(Slots::RULES);
    while !r.is_null() {
        let lhs = vm.load_ptr(r, 0);
        let lh = term_hash(vm, lhs);
        let rhs = vm.load_ptr(r, 1);
        let rh = term_hash(vm, rhs);
        h ^= mix(lh, rh);
        count += 1;
        r = vm.load_ptr(r, 2);
    }
    vm.pop_frame();
    (count, mix(h, count))
}

/// Runs the benchmark: completes the group axioms, processing up to
/// `400 · scale` equations (well past convergence at any scale ≥ 1).
pub fn run(vm: &mut Vm, scale: u32) -> u64 {
    let p = setup(vm);
    let (_count, h) = complete(vm, &p, 400 * scale.max(1) as usize);
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::run_all_kinds;
    use tilgc_core::{build_vm, CollectorKind};

    fn test_vm() -> Vm {
        // Completion's rule set, equation queue and peaks form a genuinely
        // large live set (the paper's KB has 16 MB max live); give it room.
        let config = tilgc_core::GcConfig::new()
            .heap_budget_bytes(32 << 20)
            .nursery_bytes(32 << 10);
        build_vm(CollectorKind::Generational, &config)
    }

    #[test]
    fn kbo_orients_the_axioms() {
        let mut vm = test_vm();
        let p = setup(&mut vm);
        vm.push_frame(p.work);
        // e·x > x
        let e = e_const(&mut vm, &p);
        vm.set_slot(0, Value::Ptr(e));
        let x = var(&mut vm, &p, 0);
        let e = vm.slot_ptr(0);
        let ex = mk(&mut vm, &p, TAG_MUL, 0, e, x);
        vm.set_slot(0, Value::Ptr(ex));
        let x = var(&mut vm, &p, 0);
        let ex = vm.slot_ptr(0);
        assert!(kbo_greater(&mut vm, ex, x));
        assert!(!kbo_greater(&mut vm, x, ex));
        // i(i(x)) > x (the equal-weight inverse-chain case).
        let x = var(&mut vm, &p, 0);
        vm.set_slot(1, Value::Ptr(x));
        let x = vm.slot_ptr(1);
        let ix = mk(&mut vm, &p, TAG_INV, 0, x, Addr::NULL);
        vm.set_slot(1, Value::Ptr(ix));
        let ix = vm.slot_ptr(1);
        let iix = mk(&mut vm, &p, TAG_INV, 0, ix, Addr::NULL);
        vm.set_slot(1, Value::Ptr(iix));
        let y = var(&mut vm, &p, 0);
        let iix = vm.slot_ptr(1);
        assert!(kbo_greater(&mut vm, iix, y));
    }

    #[test]
    fn matching_and_substitution() {
        let mut vm = test_vm();
        let p = setup(&mut vm);
        vm.push_frame(p.work);
        // pattern e·x matched against e·i(e) binds x ↦ i(e).
        let e = e_const(&mut vm, &p);
        vm.set_slot(0, Value::Ptr(e));
        let x = var(&mut vm, &p, 0);
        let e = vm.slot_ptr(0);
        let pat = mk(&mut vm, &p, TAG_MUL, 0, e, x);
        vm.set_slot(0, Value::Ptr(pat));

        let e2 = e_const(&mut vm, &p);
        vm.set_slot(1, Value::Ptr(e2));
        let e3 = e_const(&mut vm, &p);
        let ie = mk(&mut vm, &p, TAG_INV, 0, e3, Addr::NULL);
        vm.set_slot(2, Value::Ptr(ie));
        let e2 = vm.slot_ptr(1);
        let ie = vm.slot_ptr(2);
        let subject = mk(&mut vm, &p, TAG_MUL, 0, e2, ie);
        vm.set_slot(1, Value::Ptr(subject));

        let pat = vm.slot_ptr(0);
        let subject = vm.slot_ptr(1);
        let subst = match_term(&mut vm, &p, pat, subject, Addr::NULL).expect("must match");
        let bound = lookup(&mut vm, subst, 0);
        let ie = vm.slot_ptr(2);
        assert!(term_eq(&mut vm, bound, ie));
    }

    #[test]
    fn completion_reaches_the_ten_rule_group_system() {
        crate::testing::with_big_stack(|| {
            let mut vm = test_vm();
            let p = setup(&mut vm);
            let (count, _) = complete(&mut vm, &p, 400);
            assert_eq!(count, 10, "group axioms complete to the classic 10 rules");
        });
    }

    #[test]
    fn completion_is_internally_reproducible() {
        crate::testing::with_big_stack(|| {
            let mut vm = test_vm();
            let p = setup(&mut vm);
            vm.push_frame(p.work);
            let (count, _) = complete(&mut vm, &p, 400);
            assert_eq!(count, 10);
            // Completing again in the same VM must reproduce both the
            // count and the checksum.
            let (c2, h2) = complete(&mut vm, &p, 400);
            let (c3, h3) = complete(&mut vm, &p, 400);
            assert_eq!((c2, h2), (c3, h3));
        });
    }

    #[test]
    fn stack_gets_deep() {
        crate::testing::with_big_stack(|| {
            let mut vm = test_vm();
            run(&mut vm, 1);
            assert!(
                vm.mutator().stack.stats().max_depth > 1000,
                "normalization recursion should go deep, got {}",
                vm.mutator().stack.stats().max_depth
            );
        });
    }

    #[test]
    fn deterministic_and_collector_independent() {
        crate::testing::with_big_stack(|| {
            let config = tilgc_core::GcConfig::new()
                .heap_budget_bytes(32 << 20)
                .nursery_bytes(32 << 10);
            let results = run_all_kinds(|vm| run(vm, 1), &config);
            assert!(
                results.windows(2).all(|w| w[0] == w[1]),
                "results differ: {results:?}"
            );
        });
    }
}
