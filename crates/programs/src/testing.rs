//! Test helpers shared by the benchmark modules.

use tilgc_core::{build_vm, CollectorKind, GcConfig};
use tilgc_runtime::Vm;

/// Runs `f` on a thread with a large stack: some benchmarks (notably
/// Knuth-Bendix) recurse thousands of VM frames deep, which in unoptimized
/// builds exceeds the 2 MB default stack of test threads.
pub fn with_big_stack<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
    std::thread::Builder::new()
        .stack_size(256 << 20)
        .spawn(f)
        .expect("spawn")
        .join()
        .expect("benchmark thread panicked")
}

/// A small configuration that forces frequent collections even at scale 1.
pub fn tiny_config() -> GcConfig {
    GcConfig::new()
        .heap_budget_bytes(1 << 20)
        .nursery_bytes(8 << 10)
}

/// Runs `program` once under each of the paper's four collector
/// configurations and returns the four results. Collector choice must
/// never change a program's result, so tests assert all four are equal.
pub fn run_all_kinds(mut program: impl FnMut(&mut Vm) -> u64, config: &GcConfig) -> Vec<u64> {
    CollectorKind::ALL
        .iter()
        .map(|&kind| {
            let mut vm = build_vm(kind, config);
            let r = program(&mut vm);
            tilgc_core::verify_vm(&vm);
            r
        })
        .collect()
}
