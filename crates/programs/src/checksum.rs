//! `Checksum` — the checksum fragment from the Foxnet TCP/IP stack
//! (Biagioni et al. 1994).
//!
//! Each iteration materializes a 16 KB buffer as a chain of small records
//! (the functional representation Foxnet's iterators traverse — this is
//! why the paper's Table 2 shows Checksum allocating 1.4 GB of *records*
//! and no arrays) and folds the Internet ones'-complement checksum over
//! it. The stack stays four frames deep and almost nothing survives a
//! collection: the benchmark isolates per-collection fixed overheads.

use tilgc_mem::Addr;
use tilgc_runtime::{DescId, FrameDesc, Trace, Value, Vm};

use crate::common::{mix, must, XorShift};

/// Data words per buffer chunk record (plus one link field).
const CHUNK_WORDS: usize = 11;
/// Simulated buffer size in bytes — 4 KB against the scaled 32 KB
/// nursery, preserving the paper's buffer ≪ nursery relationship that
/// lets the buffers die young.
const BUFFER_BYTES: usize = 4 << 10;

struct Frames {
    main: DescId,
    iter: DescId,
    sum: DescId,
}

fn frames(vm: &mut Vm) -> Frames {
    Frames {
        main: vm.register_frame(FrameDesc::new("checksum::main").slot(Trace::NonPointer)),
        iter: vm.register_frame(
            FrameDesc::new("checksum::iter")
                .slot(Trace::Pointer)
                .slot(Trace::NonPointer),
        ),
        sum: vm.register_frame(FrameDesc::new("checksum::sum").slot(Trace::Pointer)),
    }
}

/// Builds one 16 KB buffer as a chain of `CHUNK_WORDS`-word records.
/// Returns the head of the chain; the caller roots it immediately.
fn build_buffer(vm: &mut Vm, f: &Frames, site: tilgc_mem::SiteId, seed: u64) -> Addr {
    vm.push_frame(f.iter);
    vm.set_slot(0, Value::NULL);
    let chunks = BUFFER_BYTES / (CHUNK_WORDS * 8);
    let mut rng = XorShift::new(seed);
    for _ in 0..chunks {
        let prev = vm.slot_ptr(0);
        let mut fields = [Value::Int(0); CHUNK_WORDS + 1];
        for field in fields.iter_mut().take(CHUNK_WORDS) {
            *field = Value::Int(rng.next_u64() as i64);
        }
        fields[CHUNK_WORDS] = Value::Ptr(prev);
        let chunk = must(vm.alloc_record(site, &fields));
        vm.set_slot(0, Value::Ptr(chunk));
    }
    let head = vm.slot_ptr(0);
    vm.pop_frame();
    head
}

/// Internet-style ones'-complement sum over the chain (non-allocating,
/// but pushes the paper's fourth frame).
fn checksum_buffer(vm: &mut Vm, f: &Frames, head: Addr) -> u16 {
    vm.push_frame(f.sum);
    vm.set_slot(0, Value::Ptr(head));
    let mut acc: u32 = 0;
    let mut cur = head;
    while !cur.is_null() {
        for i in 0..CHUNK_WORDS {
            let w = vm.load_int(cur, i) as u64;
            for half in 0..4 {
                acc += ((w >> (16 * half)) & 0xffff) as u32;
                acc = (acc & 0xffff) + (acc >> 16);
            }
        }
        cur = vm.load_ptr(cur, CHUNK_WORDS);
    }
    vm.pop_frame();
    !(acc as u16)
}

/// Runs the benchmark; `scale` multiplies the iteration count.
pub fn run(vm: &mut Vm, scale: u32) -> u64 {
    let f = frames(vm);
    let site = vm.site("checksum::chunk");
    vm.push_frame(f.main);
    let iters = 150 * scale as u64;
    let mut result = 0u64;
    for i in 0..iters {
        let head = build_buffer(vm, &f, site, i + 1);
        let sum = checksum_buffer(vm, &f, head);
        result = mix(result, u64::from(sum));
    }
    vm.pop_frame();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::{run_all_kinds, tiny_config};

    #[test]
    fn deterministic_and_collector_independent() {
        let results = run_all_kinds(|vm| run(vm, 1), &tiny_config());
        assert!(
            results.windows(2).all(|w| w[0] == w[1]),
            "results differ: {results:?}"
        );
    }

    #[test]
    fn stack_stays_shallow() {
        let config = tiny_config();
        let mut vm = tilgc_core::build_vm(tilgc_core::CollectorKind::Generational, &config);
        run(&mut vm, 1);
        assert!(vm.mutator().stack.stats().max_depth <= 5);
        assert!(
            vm.gc_stats().collections > 0,
            "16 KB buffers must overflow a small nursery"
        );
    }

    #[test]
    fn allocation_is_record_dominated() {
        let config = tiny_config();
        let mut vm = tilgc_core::build_vm(tilgc_core::CollectorKind::Generational, &config);
        run(&mut vm, 1);
        let s = vm.mutator_stats();
        assert!(s.record_bytes > 100 * s.array_bytes().max(1));
    }
}
