//! The simulated cycle cost model.
//!
//! The paper reports wall-clock seconds on a 150 MHz DEC Alpha 21064.
//! Those absolute numbers are irreproducible; what *is* reproducible is
//! the operation counts that drive them — words copied, frames decoded,
//! slots traced, store-buffer entries filtered. The simulator counts every
//! such operation and converts to "seconds" through this table of
//! per-operation cycle costs, so that the relative shapes of the paper's
//! tables (who wins, by what factor, where stack scanning dominates) can
//! be regenerated deterministically.
//!
//! The default costs are order-of-magnitude estimates for a simple
//! in-order 64-bit machine with the paper's cache structure; experiments
//! in `EXPERIMENTS.md` show the reproduced shapes are insensitive to
//! reasonable variations.

/// Per-operation costs in simulated cycles.
///
/// Construct with [`CostModel::default`] and adjust fields as needed:
///
/// ```
/// let model = tilgc_runtime::CostModel { copy_per_word: 8, ..Default::default() };
/// assert_eq!(model.copy_per_word, 8);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// Simulated clock rate, for converting cycles to seconds.
    pub clock_hz: u64,

    // --- mutator-side costs (client time) ---
    /// Fixed cost of an allocation (pointer bump + limit check).
    pub alloc_base: u64,
    /// Cost per word initialized at allocation.
    pub alloc_per_word: u64,
    /// Extra fixed cost of allocating into the pretenured region (the
    /// paper notes the pretenured code sequence "is somewhat longer").
    pub pretenure_alloc_extra: u64,
    /// Pushing an activation record.
    pub frame_push: u64,
    /// Popping an activation record (normal return).
    pub frame_pop: u64,
    /// Extra cost when a return goes through a marker stub.
    pub marker_fire: u64,
    /// Recording one pointer update in the write barrier.
    pub barrier_record: u64,
    /// A heap load or store.
    pub heap_access: u64,
    /// Raising an exception (dispatch, unwind setup).
    pub raise_base: u64,
    /// Updating the watermark `M` at a raise (variant 1 of §5).
    pub raise_watermark: u64,

    // --- collector-side costs (GC time) ---
    /// Fixed cost of entering a collection (trap, setup, space flip).
    pub gc_base: u64,
    /// Decoding one stack frame via the trace table.
    pub frame_decode: u64,
    /// Classifying one stack slot or register from its trace.
    pub slot_trace: u64,
    /// Extra cost for a `Compute` trace (fetch + interpret runtime type).
    pub compute_trace_extra: u64,
    /// Examining one discovered root (load + null/range test).
    pub root_check: u64,
    /// Relocating a root that did point into from-space (forward +
    /// store back).
    pub root_process: u64,
    /// Copying one word of live data.
    pub copy_per_word: u64,
    /// Cheney-scanning one word of copied data.
    pub scan_per_word: u64,
    /// Filtering one sequential-store-buffer entry or card.
    pub barrier_entry: u64,
    /// Scanning one word of a dirty card or pretenured region.
    pub region_scan_per_word: u64,
    /// Placing one stack marker (swap return address, table insert).
    pub marker_place: u64,
    /// Visiting one handler-chain entry in the deferred raise variant.
    pub handler_walk: u64,
    /// Reusing one cached frame (the cheap path of generational stack
    /// collection — a bounds check, no decoding).
    pub frame_reuse: u64,
    /// Mark-sweep cost per large object examined.
    pub large_object_visit: u64,

    // --- heap-pressure governor costs (GC time) ---
    /// Taking one retry rung of the pressure ladder (re-test the limit
    /// and re-enter the allocation sequence after a forced collection).
    pub pressure_retry: u64,
    /// The one-shot nursery/tenured budget rebalance rung (recompute
    /// limits, shrink the nursery reservation, republish thresholds).
    pub pressure_rebalance: u64,
    /// Demoting one pretenured site back to nursery allocation
    /// (policy-table update plus profile bookkeeping).
    pub pressure_demote: u64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            clock_hz: 150_000_000, // DEC 3000/500's 21064 runs at 150 MHz
            alloc_base: 5,
            alloc_per_word: 1,
            pretenure_alloc_extra: 4,
            frame_push: 6,
            frame_pop: 3,
            marker_fire: 30,
            barrier_record: 5,
            heap_access: 2,
            raise_base: 40,
            raise_watermark: 8,
            gc_base: 3000,
            frame_decode: 30,
            slot_trace: 6,
            compute_trace_extra: 10,
            root_check: 3,
            root_process: 12,
            copy_per_word: 6,
            scan_per_word: 3,
            barrier_entry: 10,
            region_scan_per_word: 2,
            marker_place: 25,
            handler_walk: 8,
            frame_reuse: 2,
            large_object_visit: 40,
            pressure_retry: 20,
            pressure_rebalance: 200,
            pressure_demote: 150,
        }
    }
}

impl CostModel {
    /// Converts a cycle count to simulated seconds.
    pub fn secs(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_hz as f64
    }

    /// Simulated cycles in `ms` milliseconds of this clock — the
    /// conversion the SLO tooling uses to express wall-time pause and
    /// MMU-window bounds in the deterministic cycle domain (10 ms at the
    /// default 150 MHz clock is 1_500_000 cycles).
    pub fn cycles_per_ms(&self, ms: u64) -> u64 {
        self.clock_hz / 1000 * ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_clock_matches_alpha() {
        let m = CostModel::default();
        assert_eq!(m.clock_hz, 150_000_000);
        assert!((m.secs(150_000_000) - 1.0).abs() < 1e-12);
        assert_eq!(m.cycles_per_ms(10), 1_500_000);
        assert_eq!(m.cycles_per_ms(1), 150_000);
    }

    #[test]
    fn struct_update_syntax_works() {
        let m = CostModel {
            gc_base: 1,
            ..Default::default()
        };
        assert_eq!(m.gc_base, 1);
        assert_eq!(m.copy_per_word, CostModel::default().copy_per_word);
    }
}
