//! Exception handler chains.
//!
//! SML's `handle` installs a handler tied to the installing activation
//! record; `raise` transfers control to the innermost handler, discarding
//! every frame above it — possibly jumping past marked frames without
//! running their stubs (§5). The runtime therefore needs *some* mechanism
//! to tell the collector how deep raises have cut. The paper describes
//! two and implements the first:
//!
//! 1. **Watermark at raise time** ([`RaiseBookkeeping::Watermark`]): each
//!    raise updates `M` immediately (a couple of instructions per raise).
//! 2. **Deferred** ([`RaiseBookkeeping::Deferred`]): raises record nothing
//!    globally; handlers that caught remember the depth, and the collector
//!    walks the handler chain at each collection.

/// Which of the two §5 exception-bookkeeping strategies is in effect.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum RaiseBookkeeping {
    /// Update the watermark `M` on every raise (the paper's choice).
    #[default]
    Watermark,
    /// Record on the handler; the collector reconstructs `M` by walking
    /// the chain at collection time.
    Deferred,
}

/// One installed exception handler.
#[derive(Clone, Copy, Debug)]
struct Handler {
    /// Depth of the frame the handler returns control to.
    frame_depth: usize,
    /// For the deferred variant: the shallowest depth a raise cut this
    /// part of the chain down to since the last collection.
    caught_depth: Option<usize>,
}

/// The chain of installed exception handlers, innermost last.
///
/// # Example
///
/// ```
/// use tilgc_runtime::HandlerChain;
///
/// let mut chain = HandlerChain::new();
/// chain.push(3);          // a handler protecting from frame depth 3
/// chain.push(10);
/// assert_eq!(chain.raise(), Some(10));
/// assert_eq!(chain.raise(), Some(3));
/// assert_eq!(chain.raise(), None); // uncaught
/// ```
#[derive(Clone, Debug, Default)]
pub struct HandlerChain {
    handlers: Vec<Handler>,
    /// Deferred-variant info that would otherwise be lost when a flagged
    /// handler is popped normally.
    orphaned_caught_depth: Option<usize>,
}

impl HandlerChain {
    /// Creates an empty chain.
    pub fn new() -> HandlerChain {
        HandlerChain::default()
    }

    /// Installs a handler anchored at `frame_depth`.
    pub fn push(&mut self, frame_depth: usize) {
        self.handlers.push(Handler {
            frame_depth,
            caught_depth: None,
        });
    }

    /// Removes the innermost handler on normal exit from its `handle`
    /// expression. Deferred-variant catch records are propagated outward
    /// so the collector's walk still sees them.
    ///
    /// # Panics
    ///
    /// Panics if no handler is installed.
    pub fn pop(&mut self) {
        let h = self.handlers.pop().expect("pop on empty handler chain");
        if let Some(d) = h.caught_depth {
            match self.handlers.last_mut() {
                Some(outer) => {
                    outer.caught_depth = Some(outer.caught_depth.map_or(d, |o| o.min(d)));
                }
                None => {
                    self.orphaned_caught_depth =
                        Some(self.orphaned_caught_depth.map_or(d, |o| o.min(d)));
                }
            }
        }
    }

    /// Raises an exception: removes the innermost handler and returns the
    /// frame depth control transfers to, or `None` if the exception is
    /// uncaught. The deferred catch record lands on the *enclosing*
    /// handler (or the orphan slot), since the catching handler itself is
    /// consumed.
    pub fn raise(&mut self) -> Option<usize> {
        let caught = self.handlers.pop()?;
        let d = caught.frame_depth;
        let merged = match caught.caught_depth {
            Some(prev) => prev.min(d),
            None => d,
        };
        match self.handlers.last_mut() {
            Some(outer) => {
                outer.caught_depth = Some(outer.caught_depth.map_or(merged, |o| o.min(merged)));
            }
            None => {
                self.orphaned_caught_depth =
                    Some(self.orphaned_caught_depth.map_or(merged, |o| o.min(merged)));
            }
        }
        Some(d)
    }

    /// Number of installed handlers.
    pub fn len(&self) -> usize {
        self.handlers.len()
    }

    /// Whether no handler is installed.
    pub fn is_empty(&self) -> bool {
        self.handlers.is_empty()
    }

    /// The innermost handler's frame depth, if any.
    pub fn innermost_depth(&self) -> Option<usize> {
        self.handlers.last().map(|h| h.frame_depth)
    }

    /// Collector-side walk for the deferred variant: returns the
    /// shallowest depth any raise reached since the last walk (or `None`)
    /// and clears the records. The returned `usize` also reports how many
    /// chain entries were visited, for cost accounting.
    pub fn walk_for_collection(&mut self) -> (Option<usize>, usize) {
        let mut min = self.orphaned_caught_depth.take();
        let visited = self.handlers.len();
        for h in &mut self.handlers {
            if let Some(d) = h.caught_depth.take() {
                min = Some(min.map_or(d, |m| m.min(d)));
            }
        }
        (min, visited)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raise_unwinds_to_innermost() {
        let mut c = HandlerChain::new();
        c.push(2);
        c.push(8);
        assert_eq!(c.innermost_depth(), Some(8));
        assert_eq!(c.raise(), Some(8));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn uncaught_raise_returns_none() {
        let mut c = HandlerChain::new();
        assert_eq!(c.raise(), None);
    }

    #[test]
    fn deferred_walk_sees_catch_depths() {
        let mut c = HandlerChain::new();
        c.push(2);
        c.push(8);
        c.raise(); // caught at depth 8, recorded on the handler at 2
        let (min, visited) = c.walk_for_collection();
        assert_eq!(min, Some(8));
        assert_eq!(visited, 1);
        // Records are cleared by the walk.
        assert_eq!(c.walk_for_collection().0, None);
    }

    #[test]
    fn deferred_records_survive_normal_pops() {
        let mut c = HandlerChain::new();
        c.push(2);
        c.push(5);
        c.push(8);
        c.raise(); // depth 8 recorded on handler at 5
        c.pop(); // handler at 5 exits normally; record moves to handler at 2
        let (min, _) = c.walk_for_collection();
        assert_eq!(min, Some(8));
    }

    #[test]
    fn deferred_records_survive_popping_the_last_handler() {
        let mut c = HandlerChain::new();
        c.push(4);
        c.raise(); // uncaught chain-wise? No: handler at 4 catches.
        assert!(c.is_empty());
        let (min, _) = c.walk_for_collection();
        assert_eq!(min, Some(4));
    }

    #[test]
    fn nested_raises_keep_the_minimum() {
        let mut c = HandlerChain::new();
        c.push(1);
        c.push(6);
        c.push(9);
        assert_eq!(c.raise(), Some(9));
        assert_eq!(c.raise(), Some(6));
        let (min, _) = c.walk_for_collection();
        assert_eq!(min, Some(6));
    }
}
