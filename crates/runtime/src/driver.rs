//! An op-level driver for the [`Vm`]: a small closed instruction set
//! whose every instruction is well-formed by construction, so arbitrary
//! op sequences (random, replayed, or minimized) can be executed against
//! any collector without violating the rooting discipline.
//!
//! The driver is the execution substrate of the differential torture
//! harness in `tilgc-torture`: the *same* [`VmOp`] sequence is stepped in
//! lockstep against every plan, and because each op's observable effect
//! depends only on plan-invariant state (stack depth, header shape,
//! null-ness of slots — never raw addresses), any cross-plan divergence
//! in the reachable graph is a collector bug, not driver nondeterminism.
//!
//! Coverage by design:
//!
//! * allocations of all three object kinds across [`REC_SITES`] +
//!   [`ARR_SITES`] + [`RAW_SITES`] distinct sites (including a
//!   pointer-free record site, the §7.2 no-scan candidate);
//! * barriered pointer stores and loads into records and pointer arrays;
//! * calls/returns deep enough ([`MAX_DEPTH`] frames, batch pushes) to
//!   cross the paper's every-25th-frame stack markers;
//! * exception handlers and raises that drive the watermark `M` below
//!   intact markers;
//! * register churn through two pinned pointer registers, one of which is
//!   spilled via a `CalleeSave` trace so scans must thread register
//!   pointerness through frame effects.

use tilgc_mem::{Addr, ObjectKind, SiteId};

use crate::trace::{DescId, FrameDesc, Reg, Trace};
use crate::value::Value;
use crate::vm::{HeapOverflow, RaiseOutcome, Vm, VmExit};

/// What executing one [`VmOp`] did, when the guest program survived it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// The op completed normally.
    Ran,
    /// An allocation in the op overflowed the heap, and an installed
    /// handler caught the resulting raise: the stack is unwound to the
    /// handler and the driver's bookkeeping follows, exactly as for
    /// [`VmOp::Raise`]. The destination slot of the failed allocation is
    /// left untouched.
    OomCaught,
}

/// Pointer slots per driver frame.
pub const PTR_SLOTS: usize = 6;
/// Record allocation sites the driver registers.
pub const REC_SITES: usize = 6;
/// Pointer-array allocation sites the driver registers.
pub const ARR_SITES: usize = 3;
/// Raw-array allocation sites the driver registers.
pub const RAW_SITES: usize = 3;
/// Index (within the record sites) of the pointer-free record site.
pub const PTR_FREE_REC_INDEX: usize = REC_SITES - 1;
/// Maximum stack depth the driver grows to — several marker intervals.
pub const MAX_DEPTH: usize = 200;
/// Maximum live handlers (mirrors the property-test discipline).
pub const MAX_HANDLERS: usize = 16;

/// The two registers the driver pins as pointer-holding: the base frame
/// declares `DefPointer` for both, every other frame preserves them.
const REG_A: Reg = Reg::new(2);
const REG_B: Reg = Reg::new(3);

/// One driver instruction. All operands are `u8` selectors reduced
/// modulo the relevant bound at execution time, so every sequence of
/// `VmOp`s is executable — the property the trace minimizer relies on
/// (any subsequence of a valid program is a valid program).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VmOp {
    /// Allocate a record at record site `site % REC_SITES` (pointer
    /// fields seeded from slots, arity varies by site) into slot `dst`.
    AllocRecord {
        /// Record-site selector.
        site: u8,
        /// Destination slot selector.
        dst: u8,
        /// Slot selector for the first pointer field.
        src_a: u8,
        /// Slot selector for the second pointer field.
        src_b: u8,
        /// Integer payload.
        tag: i8,
    },
    /// Allocate a pointer array of `1 + len % 6` elements, initialized
    /// from slot `init`, into slot `dst`.
    AllocPtrArray {
        /// Array-site selector.
        site: u8,
        /// Destination slot selector.
        dst: u8,
        /// Initializer slot selector.
        init: u8,
        /// Length selector.
        len: u8,
    },
    /// Allocate a raw byte array of `1 + len % 96` bytes (stamping its
    /// last byte) into slot `dst`.
    AllocRawArray {
        /// Raw-site selector.
        site: u8,
        /// Destination slot selector.
        dst: u8,
        /// Length selector.
        len: u8,
    },
    /// Barriered pointer store into a pointer field of the object in
    /// slot `obj` (skipped if the slot is null or the object has no
    /// pointer fields).
    StorePtr {
        /// Slot selector for the target object.
        obj: u8,
        /// Field selector.
        field: u8,
        /// Slot selector for the stored value.
        val: u8,
    },
    /// Integer store into a non-pointer field (byte store for raw
    /// arrays; skipped for objects with no non-pointer fields).
    StoreInt {
        /// Slot selector for the target object.
        obj: u8,
        /// Field selector.
        field: u8,
        /// Stored value.
        val: i8,
    },
    /// Load a pointer field back into slot `dst`.
    LoadPtr {
        /// Slot selector for the source object.
        obj: u8,
        /// Field selector.
        field: u8,
        /// Destination slot selector.
        dst: u8,
    },
    /// Copy the pointer in slot `src` into pinned register A or B.
    RegSet {
        /// Register selector (even = A, odd = B).
        reg: u8,
        /// Source slot selector.
        src: u8,
    },
    /// Copy a pinned register's pointer into slot `dst`.
    RegGet {
        /// Register selector (even = A, odd = B).
        reg: u8,
        /// Destination slot selector.
        dst: u8,
    },
    /// Push one frame; `kind` selects the plain or spill layout.
    Push {
        /// Frame-layout selector (even = plain, odd = spill).
        kind: u8,
    },
    /// Push `1 + n % 24` frames — enough to cross a marker interval.
    PushMany {
        /// Frame-layout selector.
        kind: u8,
        /// Count selector.
        n: u8,
    },
    /// Pop one frame (never the base frame).
    Pop,
    /// Pop `1 + n % 24` frames (stopping at the base frame).
    PopMany {
        /// Count selector.
        n: u8,
    },
    /// Install an exception handler anchored at the current frame.
    PushHandler,
    /// Raise an exception (no-op when no handler is installed).
    Raise,
    /// Force a collection (minor for generational plans).
    Gc,
    /// Force a major collection.
    GcMajor,
}

/// The driver: owns the frame descriptors, site ids and host-side
/// handler bookkeeping for one [`Vm`], and executes [`VmOp`]s against it.
#[derive(Debug)]
pub struct OpDriver {
    plain: DescId,
    spill: DescId,
    rec_sites: Vec<SiteId>,
    arr_sites: Vec<SiteId>,
    raw_sites: Vec<SiteId>,
    /// Frame-layout kind per stack depth (`true` = spill layout).
    frame_spill: Vec<bool>,
    /// Anchor depths of live handlers, innermost last.
    handlers: Vec<usize>,
}

/// Site ids the driver's record sites will get on a fresh VM, in index
/// order. The registry hands out ids sequentially from 1, and
/// [`OpDriver::install`] registers record sites first — an assertion
/// there keeps this function honest.
pub fn rec_site_id(index: usize) -> SiteId {
    assert!(index < REC_SITES);
    SiteId::new((1 + index) as u16)
}

/// Site id of the driver's `index`-th pointer-array site on a fresh VM.
pub fn arr_site_id(index: usize) -> SiteId {
    assert!(index < ARR_SITES);
    SiteId::new((1 + REC_SITES + index) as u16)
}

/// Site id of the driver's `index`-th raw-array site on a fresh VM.
pub fn raw_site_id(index: usize) -> SiteId {
    assert!(index < RAW_SITES);
    SiteId::new((1 + REC_SITES + ARR_SITES + index) as u16)
}

impl OpDriver {
    /// Registers the driver's frame descriptors and allocation sites on
    /// `vm`, pushes the base frame and seeds the pinned registers.
    ///
    /// Must be the first registration activity on the VM: the
    /// `rec_site_id`/`arr_site_id`/`raw_site_id` helpers (used to build
    /// pretenuring policies before the VM exists) assume the driver's
    /// sites get the first registry ids.
    ///
    /// # Panics
    ///
    /// Panics if sites or frames were registered on `vm` before the
    /// driver, breaking the deterministic site-id layout.
    pub fn install(vm: &mut Vm) -> OpDriver {
        let base = vm.register_frame(
            FrameDesc::new("torture::base")
                .slots(PTR_SLOTS, Trace::Pointer)
                .slots(2, Trace::NonPointer)
                .def_pointer(REG_A)
                .def_pointer(REG_B),
        );
        let plain = vm.register_frame(
            FrameDesc::new("torture::plain")
                .slots(PTR_SLOTS, Trace::Pointer)
                .slots(2, Trace::NonPointer),
        );
        let spill = vm.register_frame(
            FrameDesc::new("torture::spill")
                .slot(Trace::CalleeSave(REG_A))
                .slots(PTR_SLOTS, Trace::Pointer)
                .slot(Trace::NonPointer),
        );
        let rec_sites: Vec<SiteId> = (0..REC_SITES)
            .map(|i| vm.site(&format!("torture::rec{i}")))
            .collect();
        let arr_sites: Vec<SiteId> = (0..ARR_SITES)
            .map(|i| vm.site(&format!("torture::arr{i}")))
            .collect();
        let raw_sites: Vec<SiteId> = (0..RAW_SITES)
            .map(|i| vm.site(&format!("torture::raw{i}")))
            .collect();
        for (i, &s) in rec_sites.iter().enumerate() {
            assert_eq!(s, rec_site_id(i), "driver sites must register first");
        }
        for (i, &s) in arr_sites.iter().enumerate() {
            assert_eq!(s, arr_site_id(i), "driver sites must register first");
        }
        for (i, &s) in raw_sites.iter().enumerate() {
            assert_eq!(s, raw_site_id(i), "driver sites must register first");
        }
        // The pinned registers are declared DefPointer by the base frame,
        // so their shadows must be pointer-tagged before the first scan.
        vm.set_reg(REG_A, Value::NULL);
        vm.set_reg(REG_B, Value::NULL);
        vm.push_frame(base);
        OpDriver {
            plain,
            spill,
            rec_sites,
            arr_sites,
            raw_sites,
            frame_spill: vec![false],
            handlers: Vec::new(),
        }
    }

    /// Pointer-slot index for selector `sel` in the current top frame
    /// (the spill layout shifts pointer slots up by one).
    fn ptr_slot(&self, sel: u8) -> usize {
        let base = usize::from(*self.frame_spill.last().expect("base frame"));
        base + (sel as usize) % PTR_SLOTS
    }

    fn reg(sel: u8) -> Reg {
        if sel % 2 == 0 {
            REG_A
        } else {
            REG_B
        }
    }

    fn push_one(&mut self, vm: &mut Vm, kind: u8) {
        if vm.depth() >= MAX_DEPTH {
            return;
        }
        let spill = kind % 2 == 1;
        vm.push_frame(if spill { self.spill } else { self.plain });
        self.frame_spill.push(spill);
    }

    fn pop_one(&mut self, vm: &mut Vm) {
        if vm.depth() <= 1 {
            return;
        }
        // Handlers anchored at the departing frame leave scope with it.
        while self.handlers.last() == Some(&vm.depth()) {
            vm.pop_handler();
            self.handlers.pop();
        }
        vm.pop_frame();
        self.frame_spill.pop();
    }

    /// Absorbs a [`HeapOverflow`] from an allocation op: a caught raise
    /// unwinds driver bookkeeping exactly like [`VmOp::Raise`]; an
    /// uncaught one ends the guest program cleanly.
    fn on_overflow(&mut self, overflow: HeapOverflow) -> Result<StepOutcome, VmExit> {
        match overflow.outcome {
            RaiseOutcome::Caught { handler_depth } => {
                self.handlers.pop();
                self.frame_spill.truncate(handler_depth);
                Ok(StepOutcome::OomCaught)
            }
            RaiseOutcome::Uncaught => Err(VmExit::OutOfMemory(overflow.error)),
        }
    }

    /// Executes one op against `vm`.
    ///
    /// # Errors
    ///
    /// Returns [`VmExit::OutOfMemory`] when an allocation overflows the
    /// heap with no guest handler installed — the clean, panic-free end
    /// of the simulated program.
    pub fn step(&mut self, vm: &mut Vm, op: VmOp) -> Result<StepOutcome, VmExit> {
        match op {
            VmOp::AllocRecord {
                site,
                dst,
                src_a,
                src_b,
                tag,
            } => {
                let k = (site as usize) % REC_SITES;
                let site = self.rec_sites[k];
                let rec = if k == PTR_FREE_REC_INDEX {
                    vm.alloc_record(site, &[Value::Int(i64::from(tag)), Value::Int(42)])
                } else {
                    let a = vm.slot_ptr(self.ptr_slot(src_a));
                    let b = vm.slot_ptr(self.ptr_slot(src_b));
                    let mut fields = vec![Value::Ptr(a), Value::Ptr(b), Value::Int(i64::from(tag))];
                    for extra in 0..k % 3 {
                        fields.push(Value::Int(extra as i64));
                    }
                    vm.alloc_record(site, &fields)
                };
                match rec {
                    Ok(rec) => vm.set_slot(self.ptr_slot(dst), Value::Ptr(rec)),
                    Err(overflow) => return self.on_overflow(overflow),
                }
            }
            VmOp::AllocPtrArray {
                site,
                dst,
                init,
                len,
            } => {
                let site = self.arr_sites[(site as usize) % ARR_SITES];
                let init = vm.slot_ptr(self.ptr_slot(init));
                match vm.alloc_ptr_array(site, 1 + (len as usize) % 6, init) {
                    Ok(arr) => vm.set_slot(self.ptr_slot(dst), Value::Ptr(arr)),
                    Err(overflow) => return self.on_overflow(overflow),
                }
            }
            VmOp::AllocRawArray { site, dst, len } => {
                let site = self.raw_sites[(site as usize) % RAW_SITES];
                let len = 1 + (len as usize) % 96;
                match vm.alloc_raw_array(site, len) {
                    Ok(raw) => {
                        vm.store_byte(raw, len - 1, 0xc3);
                        vm.set_slot(self.ptr_slot(dst), Value::Ptr(raw));
                    }
                    Err(overflow) => return self.on_overflow(overflow),
                }
            }
            VmOp::StorePtr { obj, field, val } => {
                let target = vm.slot_ptr(self.ptr_slot(obj));
                if target.is_null() {
                    return Ok(StepOutcome::Ran);
                }
                let Some(field) = ptr_field_of(vm, target, field) else {
                    return Ok(StepOutcome::Ran);
                };
                let val = vm.slot_ptr(self.ptr_slot(val));
                vm.store_ptr(target, field, val);
            }
            VmOp::StoreInt { obj, field, val } => {
                let target = vm.slot_ptr(self.ptr_slot(obj));
                if target.is_null() {
                    return Ok(StepOutcome::Ran);
                }
                let h = vm.header(target);
                if h.kind() == ObjectKind::RawArray {
                    vm.store_byte(target, (field as usize) % h.len(), val as u8);
                } else if let Some(field) = int_field_of(vm, target, field) {
                    vm.store_int(target, field, i64::from(val));
                }
            }
            VmOp::LoadPtr { obj, field, dst } => {
                let target = vm.slot_ptr(self.ptr_slot(obj));
                if target.is_null() {
                    return Ok(StepOutcome::Ran);
                }
                let Some(field) = ptr_field_of(vm, target, field) else {
                    return Ok(StepOutcome::Ran);
                };
                let v = vm.load_ptr(target, field);
                vm.set_slot(self.ptr_slot(dst), Value::Ptr(v));
            }
            VmOp::RegSet { reg, src } => {
                let p = vm.slot_ptr(self.ptr_slot(src));
                vm.set_reg(Self::reg(reg), Value::Ptr(p));
            }
            VmOp::RegGet { reg, dst } => {
                let p = vm.reg_ptr(Self::reg(reg));
                vm.set_slot(self.ptr_slot(dst), Value::Ptr(p));
            }
            VmOp::Push { kind } => self.push_one(vm, kind),
            VmOp::PushMany { kind, n } => {
                for _ in 0..1 + n % 24 {
                    self.push_one(vm, kind);
                }
            }
            VmOp::Pop => self.pop_one(vm),
            VmOp::PopMany { n } => {
                for _ in 0..1 + n % 24 {
                    self.pop_one(vm);
                }
            }
            VmOp::PushHandler => {
                if self.handlers.len() < MAX_HANDLERS {
                    vm.push_handler();
                    self.handlers.push(vm.depth());
                }
            }
            VmOp::Raise => {
                if let RaiseOutcome::Caught { handler_depth } = vm.raise() {
                    self.handlers.pop();
                    // The raise unwound frames without pop_frame calls;
                    // drop our layout record of the discarded frames.
                    self.frame_spill.truncate(handler_depth);
                }
            }
            VmOp::Gc => vm.gc_now(),
            VmOp::GcMajor => vm.gc_major(),
        }
        Ok(StepOutcome::Ran)
    }
}

/// First pointer field at or cyclically after selector `sel`, if any.
fn ptr_field_of(vm: &Vm, obj: Addr, sel: u8) -> Option<usize> {
    let h = vm.header(obj);
    if h.kind() == ObjectKind::RawArray || h.is_empty() {
        return None;
    }
    let len = h.len();
    (0..len)
        .map(|i| ((sel as usize) + i) % len)
        .find(|&f| h.field_is_pointer(f))
}

/// First non-pointer field at or cyclically after selector `sel`
/// (records and pointer arrays only), if any.
fn int_field_of(vm: &Vm, obj: Addr, sel: u8) -> Option<usize> {
    let h = vm.header(obj);
    if h.is_empty() {
        return None;
    }
    let len = h.len();
    (0..len)
        .map(|i| ((sel as usize) + i) % len)
        .find(|&f| !h.field_is_pointer(f))
}
