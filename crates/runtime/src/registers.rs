use crate::trace::{Reg, NUM_REGS};
use crate::value::{ShadowTag, Value};

/// The simulated general-purpose register file.
///
/// Registers are bare words, like everything else in a nearly tag-free
/// runtime; a parallel array of [`ShadowTag`]s records what the mutator
/// last wrote so that tests can validate the collector's trace-based
/// classification (the collector itself never reads the shadows).
///
/// # Example
///
/// ```
/// use tilgc_runtime::{RegisterFile, Reg, Value};
/// use tilgc_mem::Addr;
///
/// let mut regs = RegisterFile::new();
/// regs.set(Reg::new(3), Value::Ptr(Addr::new(80)));
/// assert_eq!(regs.word(Reg::new(3)), 80);
/// ```
#[derive(Clone, Debug)]
pub struct RegisterFile {
    words: [u64; NUM_REGS],
    shadow: [ShadowTag; NUM_REGS],
}

impl Default for RegisterFile {
    fn default() -> Self {
        RegisterFile::new()
    }
}

impl RegisterFile {
    /// Creates a register file with all registers zeroed (non-pointers).
    pub fn new() -> RegisterFile {
        RegisterFile {
            words: [0; NUM_REGS],
            shadow: [ShadowTag::NonPtr; NUM_REGS],
        }
    }

    /// Writes a typed value into `reg`, updating the shadow tag.
    #[inline]
    pub fn set(&mut self, reg: Reg, value: Value) {
        self.words[reg.index()] = value.to_word();
        self.shadow[reg.index()] = ShadowTag::of(value);
    }

    /// The raw word in `reg`.
    #[inline]
    pub fn word(&self, reg: Reg) -> u64 {
        self.words[reg.index()]
    }

    /// Overwrites the raw word in `reg` without touching the shadow tag.
    ///
    /// Used by the collector when it relocates a pointer held in a
    /// register: pointerness is unchanged, only the address moved.
    #[inline]
    pub fn set_word_raw(&mut self, reg: Reg, word: u64) {
        self.words[reg.index()] = word;
    }

    /// Writes a raw word together with an explicit shadow tag (callee-save
    /// restore: the word and its pointerness come back from the spill
    /// slot).
    #[inline]
    pub fn set_word_tagged(&mut self, reg: Reg, word: u64, tag: ShadowTag) {
        self.words[reg.index()] = word;
        self.shadow[reg.index()] = tag;
    }

    /// The shadow tag of `reg` (testing oracle only).
    #[inline]
    pub fn shadow(&self, reg: Reg) -> ShadowTag {
        self.shadow[reg.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilgc_mem::Addr;

    #[test]
    fn set_tracks_shadow() {
        let mut r = RegisterFile::new();
        assert_eq!(r.shadow(Reg::new(0)), ShadowTag::NonPtr);
        r.set(Reg::new(0), Value::Ptr(Addr::new(4)));
        assert_eq!(r.shadow(Reg::new(0)), ShadowTag::Ptr);
        assert_eq!(r.word(Reg::new(0)), 4);
        r.set(Reg::new(0), Value::Int(7));
        assert_eq!(r.shadow(Reg::new(0)), ShadowTag::NonPtr);
    }

    #[test]
    fn raw_write_preserves_shadow() {
        let mut r = RegisterFile::new();
        r.set(Reg::new(5), Value::Ptr(Addr::new(4)));
        r.set_word_raw(Reg::new(5), 96);
        assert_eq!(r.shadow(Reg::new(5)), ShadowTag::Ptr);
        assert_eq!(r.word(Reg::new(5)), 96);
    }
}
