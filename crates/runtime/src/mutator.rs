//! The bundle of mutator-owned state a collector scans for roots.

use crate::barrier::WriteBarrier;
use crate::cost::CostModel;
use crate::handlers::{HandlerChain, RaiseBookkeeping};
use crate::registers::RegisterFile;
use crate::sites::SiteRegistry;
use crate::stack::Stack;
use crate::stats::MutatorStats;
use crate::trace::TraceTable;
use tilgc_obs::{NullRecorder, Recorder};

/// Everything the mutator owns: stack, registers, write barrier, handler
/// chain, trace tables, allocation sites and statistics.
///
/// This is a passive data bundle in the C spirit — the `Vm` facade drives
/// it from above and collectors scan it from below, and both need free
/// access to its parts, so the fields are public.
#[derive(Debug)]
pub struct MutatorState {
    /// The activation-record stack.
    pub stack: Stack,
    /// The register file.
    pub regs: RegisterFile,
    /// The write barrier recording pointer updates.
    pub barrier: WriteBarrier,
    /// The exception handler chain.
    pub handlers: HandlerChain,
    /// Registered frame descriptors (the trace table).
    pub traces: TraceTable,
    /// Registered allocation sites.
    pub sites: SiteRegistry,
    /// Mutator-side statistics.
    pub stats: MutatorStats,
    /// The shared cycle cost model.
    pub cost: CostModel,
    /// Which §5 exception-bookkeeping variant is active.
    pub raise_mode: RaiseBookkeeping,
    /// Whether API entry points cross-check shadow tags against traces
    /// (catches mis-declared frame descriptors in test programs).
    pub check_shadows: bool,
    /// Staging buffer for allocation operands; scanned as roots during
    /// collections triggered by the allocation itself.
    pub alloc_buf: Vec<u64>,
    /// Which alloc-buffer entries are pointers (bit *i* ⇒ entry *i*).
    pub alloc_buf_ptr_mask: u64,
    /// The telemetry sink. Defaults to the disabled [`NullRecorder`];
    /// collectors gate all event production on `recorder.is_enabled()`
    /// and never charge simulated cycles for it, so the default leaves
    /// every deterministic counter byte-identical.
    pub recorder: Box<dyn Recorder>,
    /// Fault-injection budget: while non-zero, each allocation attempt in
    /// a collector consumes one unit and fails spuriously, as if the
    /// target space were full. Drives the torture harness's `oom-alloc`
    /// fault; zero (the default) disables injection entirely.
    pub force_alloc_failures: u32,
    /// Client-cycle timestamp of this mutator's most recent safepoint
    /// poll (the GC-possible points: allocation completion and explicit
    /// collection requests). A collection's time-to-safepoint is the
    /// client cycles elapsed since this mark — observational only,
    /// never charged.
    pub last_safepoint_cycles: u64,
}

impl Default for MutatorState {
    fn default() -> Self {
        MutatorState::new()
    }
}

impl MutatorState {
    /// Creates mutator state with an SSB write barrier (the paper's
    /// configuration) and default cost model.
    pub fn new() -> MutatorState {
        MutatorState {
            stack: Stack::new(),
            regs: RegisterFile::new(),
            barrier: WriteBarrier::ssb(),
            handlers: HandlerChain::new(),
            traces: TraceTable::new(),
            sites: SiteRegistry::new(),
            stats: MutatorStats::default(),
            cost: CostModel::default(),
            raise_mode: RaiseBookkeeping::Watermark,
            check_shadows: cfg!(debug_assertions),
            alloc_buf: Vec::new(),
            alloc_buf_ptr_mask: 0,
            recorder: Box::new(NullRecorder),
            force_alloc_failures: 0,
            last_safepoint_cycles: 0,
        }
    }

    /// Marks a safepoint poll: the mutator is at a GC-possible point.
    /// Collectors read the distance from the previous mark as the
    /// collection's time-to-safepoint.
    #[inline]
    pub fn poll_safepoint(&mut self) {
        self.last_safepoint_cycles = self.stats.client_cycles;
    }

    /// Client cycles elapsed since the last safepoint poll.
    #[inline]
    pub fn cycles_since_safepoint(&self) -> u64 {
        self.stats
            .client_cycles
            .saturating_sub(self.last_safepoint_cycles)
    }

    /// Charges `cycles` to the client (mutator) account.
    #[inline]
    pub fn charge(&mut self, cycles: u64) {
        self.stats.client_cycles += cycles;
    }

    /// Consumes one injected allocation failure, if any are pending.
    ///
    /// Collectors call this at the head of every allocation attempt; a
    /// `true` return means the attempt must be treated as not fitting
    /// even if the space has room.
    #[inline]
    pub fn consume_forced_failure(&mut self) -> bool {
        if self.force_alloc_failures > 0 {
            self.force_alloc_failures -= 1;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_configuration() {
        let m = MutatorState::new();
        assert!(matches!(m.barrier, WriteBarrier::Ssb(_)));
        assert_eq!(m.raise_mode, RaiseBookkeeping::Watermark);
        assert_eq!(m.stack.depth(), 0);
    }

    #[test]
    fn charge_accumulates() {
        let mut m = MutatorState::new();
        m.charge(10);
        m.charge(5);
        assert_eq!(m.stats.client_cycles, 15);
    }
}
