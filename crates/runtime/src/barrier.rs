//! Write barriers for intergenerational pointer updates.
//!
//! A pointer store into an already-allocated object may create a reference
//! from an older generation into the nursery; collecting the nursery
//! without knowing about it would leave a dangling pointer (§2.1,
//! footnote). The paper uses Appel's *sequential store buffer*: the
//! mutator appends every pointer-update location to a list, and the
//! collector filters the list at each collection. The paper notes (§4)
//! that this is pathological for Peg's 2.9 million updates — "the simple
//! sequential store list records a mutated site repeatedly" — and
//! suggests card marking (Sobalvarro 1988) as the realistic fix.
//!
//! The alternative implemented here is an *object-marking* remembered set:
//! a dirty bit in the heap's side bitmap (one bit per word, off to the
//! side of the object — never in its header) deduplicates repeated
//! updates, and each dirty object is recorded once and scanned in place at
//! the next collection. This preserves exactly the property card marking
//! buys (barrier work bounded by distinct mutated objects rather than by
//! update count) while staying exact in the simulation, where there is no
//! card-to-object crossing map — and the collector retires a whole
//! space's worth of dirty bits with one bulk word sweep when it vacates
//! the space.

use tilgc_mem::Addr;

/// What a drained barrier entry refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BarrierEntry {
    /// The address of a single updated pointer field (SSB).
    Field(Addr),
    /// The address of an object at least one of whose pointer fields was
    /// updated (object marking); the collector scans the whole object and
    /// must clear its dirty bit.
    Object(Addr),
}

/// A write-barrier implementation.
#[derive(Clone, Debug)]
pub enum WriteBarrier {
    /// No barrier: suitable for non-generational (semispace) collection,
    /// where every collection scans everything anyway.
    None,
    /// Appel-style sequential store buffer: one entry per update,
    /// duplicates and all (the paper's configuration).
    Ssb(Vec<Addr>),
    /// Object-marking remembered set: one entry per distinct dirty object
    /// (the card-marking-style alternative).
    ObjectMark(Vec<Addr>),
}

impl WriteBarrier {
    /// Creates the sequential store buffer the paper's generational
    /// collector uses.
    pub fn ssb() -> WriteBarrier {
        WriteBarrier::Ssb(Vec::new())
    }

    /// Creates the deduplicating object-marking barrier.
    pub fn object_mark() -> WriteBarrier {
        WriteBarrier::ObjectMark(Vec::new())
    }

    /// Records an update. For [`WriteBarrier::Ssb`], `field_addr` is
    /// stored; for [`WriteBarrier::ObjectMark`], `obj` is stored — the
    /// caller (the VM, which owns heap access) is responsible for the
    /// side-bitmap dirty test-and-set and only calls this when the
    /// object was clean.
    #[inline]
    pub fn record(&mut self, obj: Addr, field_addr: Addr) {
        match self {
            WriteBarrier::None => {}
            WriteBarrier::Ssb(entries) => entries.push(field_addr),
            WriteBarrier::ObjectMark(objs) => objs.push(obj),
        }
    }

    /// Whether the object-marking dedup check applies to this barrier.
    #[inline]
    pub fn dedups_objects(&self) -> bool {
        matches!(self, WriteBarrier::ObjectMark(_))
    }

    /// Number of entries the collector will have to examine right now.
    pub fn pending(&self) -> usize {
        match self {
            WriteBarrier::None => 0,
            WriteBarrier::Ssb(entries) => entries.len(),
            WriteBarrier::ObjectMark(objs) => objs.len(),
        }
    }

    /// Drains all recorded entries into `f`, clearing the barrier.
    pub fn drain(&mut self, mut f: impl FnMut(BarrierEntry)) {
        match self {
            WriteBarrier::None => {}
            WriteBarrier::Ssb(entries) => {
                for &a in entries.iter() {
                    f(BarrierEntry::Field(a));
                }
                entries.clear();
            }
            WriteBarrier::ObjectMark(objs) => {
                for &o in objs.iter() {
                    f(BarrierEntry::Object(o));
                }
                objs.clear();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_records_nothing() {
        let mut b = WriteBarrier::None;
        b.record(Addr::new(2), Addr::new(10));
        assert_eq!(b.pending(), 0);
        let mut seen = 0;
        b.drain(|_| seen += 1);
        assert_eq!(seen, 0);
    }

    #[test]
    fn ssb_keeps_duplicates_in_order() {
        let mut b = WriteBarrier::ssb();
        b.record(Addr::new(4), Addr::new(5));
        b.record(Addr::new(4), Addr::new(5));
        b.record(Addr::new(8), Addr::new(9));
        assert_eq!(b.pending(), 3);
        let mut seen = Vec::new();
        b.drain(|e| seen.push(e));
        assert_eq!(
            seen,
            vec![
                BarrierEntry::Field(Addr::new(5)),
                BarrierEntry::Field(Addr::new(5)),
                BarrierEntry::Field(Addr::new(9)),
            ]
        );
        assert_eq!(b.pending(), 0, "drain clears the buffer");
    }

    #[test]
    fn object_mark_records_objects() {
        let mut b = WriteBarrier::object_mark();
        assert!(b.dedups_objects());
        b.record(Addr::new(4), Addr::new(5));
        let mut seen = Vec::new();
        b.drain(|e| seen.push(e));
        assert_eq!(seen, vec![BarrierEntry::Object(Addr::new(4))]);
    }
}
