//! Registry of named allocation sites.
//!
//! The profiling compiler assigns each static allocation point an
//! identifier (the paper's site numbers like `10897`); benchmark programs
//! here register sites by name once at startup.

use tilgc_mem::SiteId;

/// Maps allocation-site names to dense [`SiteId`]s.
///
/// # Example
///
/// ```
/// use tilgc_runtime::SiteRegistry;
///
/// let mut sites = SiteRegistry::new();
/// let cons = sites.register("kb::cons");
/// assert_eq!(sites.name(cons), "kb::cons");
/// assert_eq!(sites.register("kb::cons"), cons, "same name, same id");
/// ```
#[derive(Clone, Debug)]
pub struct SiteRegistry {
    names: Vec<String>,
}

impl Default for SiteRegistry {
    fn default() -> Self {
        SiteRegistry::new()
    }
}

impl SiteRegistry {
    /// Creates a registry containing only [`SiteId::UNKNOWN`].
    pub fn new() -> SiteRegistry {
        SiteRegistry {
            names: vec!["<unknown>".to_string()],
        }
    }

    /// Registers (or looks up) the site named `name`.
    ///
    /// # Panics
    ///
    /// Panics if more than 65 535 sites are registered — the header field
    /// is 16 bits, like the paper's 2048-entry profile tables, scaled up.
    pub fn register(&mut self, name: &str) -> SiteId {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            return SiteId::new(i as u16);
        }
        let id = self.names.len();
        assert!(id <= usize::from(u16::MAX), "too many allocation sites");
        self.names.push(name.to_string());
        SiteId::new(id as u16)
    }

    /// The name of `site`.
    ///
    /// # Panics
    ///
    /// Panics if `site` was not registered here.
    pub fn name(&self, site: SiteId) -> &str {
        &self.names[site.index()]
    }

    /// Number of registered sites (including the unknown site).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether only the unknown site exists.
    pub fn is_empty(&self) -> bool {
        self.names.len() <= 1
    }

    /// Iterates over `(id, name)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SiteId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (SiteId::new(i as u16), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_site_preregistered() {
        let r = SiteRegistry::new();
        assert_eq!(r.name(SiteId::UNKNOWN), "<unknown>");
        assert_eq!(r.len(), 1);
        assert!(r.is_empty());
    }

    #[test]
    fn registration_is_idempotent() {
        let mut r = SiteRegistry::new();
        let a = r.register("x");
        let b = r.register("y");
        assert_ne!(a, b);
        assert_eq!(r.register("x"), a);
        assert_eq!(r.len(), 3);
        let all: Vec<_> = r.iter().map(|(_, n)| n.to_string()).collect();
        assert_eq!(all, vec!["<unknown>", "x", "y"]);
    }
}
