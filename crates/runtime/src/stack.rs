//! The activation-record stack, including the paper's *stack marker*
//! machinery (§5).
//!
//! Frames are pushed and popped by the mutator. At each collection the
//! collector may *mark* every n-th frame by swapping its return address
//! for a stub and recording the original in a side table. When a marked
//! frame later returns normally, the stub fires: the original return
//! address is restored and the side-table entry is removed. Exceptions
//! unwind without returning through stubs, so a watermark `M` tracks the
//! shallowest depth reached by raises.
//!
//! At the next collection the *reusable prefix* — the frames whose scan
//! results from last time are still valid — is bounded by the deepest
//! marker that is still intact and by `M`:
//! frames `0 .. reusable_prefix()` are provably untouched since the last
//! scan. The bound is conservative by up to one marker interval, which is
//! exactly the trade the paper makes ("n is a parameter best chosen to
//! balance the gains of information reuse against the cost of the
//! bookkeeping").

use std::collections::BTreeMap;

use crate::trace::DescId;
use crate::value::{ShadowTag, Value};

/// One activation record.
///
/// The real runtime lays frames out contiguously in memory with the return
/// address in the first slot (Figure 1); here each frame is a small object
/// carrying its descriptor key (the "return address"), its raw slot words,
/// and the simulation-only shadow tags.
#[derive(Clone, Debug)]
pub struct Frame {
    desc: DescId,
    slots: Vec<u64>,
    shadow: Vec<ShadowTag>,
    marked: bool,
}

impl Frame {
    fn new(desc: DescId, num_slots: usize) -> Frame {
        Frame {
            desc,
            slots: vec![0; num_slots],
            shadow: vec![ShadowTag::NonPtr; num_slots],
            marked: false,
        }
    }

    /// The trace-table key for this frame (its "return address").
    #[inline]
    pub fn desc(&self) -> DescId {
        self.desc
    }

    /// Number of slots.
    #[inline]
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// Raw word in slot `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn word(&self, i: usize) -> u64 {
        self.slots[i]
    }

    /// Writes a typed value into slot `i`, updating the shadow tag.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn set(&mut self, i: usize, value: Value) {
        self.slots[i] = value.to_word();
        self.shadow[i] = ShadowTag::of(value);
    }

    /// Overwrites the raw word in slot `i` without touching the shadow tag
    /// (collector relocation of a pointer).
    #[inline]
    pub fn set_word_raw(&mut self, i: usize, word: u64) {
        self.slots[i] = word;
    }

    /// Writes a raw word together with an explicit shadow tag — used for
    /// callee-save spills, which copy both the word and its (unknowable to
    /// the frame itself) pointerness from the register file.
    #[inline]
    pub fn set_word_tagged(&mut self, i: usize, word: u64, tag: ShadowTag) {
        self.slots[i] = word;
        self.shadow[i] = tag;
    }

    /// Shadow tag of slot `i` (testing oracle only).
    #[inline]
    pub fn shadow(&self, i: usize) -> ShadowTag {
        self.shadow[i]
    }

    /// Whether this frame currently carries a stack marker.
    #[inline]
    pub fn is_marked(&self) -> bool {
        self.marked
    }
}

/// Counters the stack maintains for Table 2 and the cost model.
#[derive(Clone, Copy, Debug, Default)]
pub struct StackStats {
    /// Total frames pushed over the run.
    pub pushes: u64,
    /// Total frames popped over the run.
    pub pops: u64,
    /// Deepest stack seen (Table 2, "Max Frames in Stack").
    pub max_depth: usize,
    /// Number of stub firings (returns through marked frames).
    pub marker_fires: u64,
    /// Number of markers placed by collections.
    pub markers_placed: u64,
    /// Number of exceptions raised.
    pub raises: u64,
}

/// What [`Stack::pop`] observed, so the VM can charge the right simulated
/// cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PopEvent {
    /// The popped frame's descriptor.
    pub desc: DescId,
    /// Whether the pop returned through a stub (a marker fired).
    pub fired_marker: bool,
}

/// The activation-record stack with marker bookkeeping.
///
/// # Example
///
/// ```
/// use tilgc_runtime::{Stack, TraceTable, FrameDesc, Trace};
///
/// let mut table = TraceTable::new();
/// let d = table.register(FrameDesc::new("f").slot(Trace::NonPointer));
/// let mut stack = Stack::new();
/// for _ in 0..100 { stack.push(d, 1); }
/// // A collection scans the stack and places markers every 25 frames.
/// stack.place_markers(25);
/// assert_eq!(stack.reusable_prefix(), 99); // all but the active top frame
/// for _ in 0..30 { stack.pop(); }          // pops fire the markers at depths 99 and 74
/// assert_eq!(stack.reusable_prefix(), 49); // bounded by the intact marker at depth 49
/// ```
#[derive(Clone, Debug, Default)]
pub struct Stack {
    frames: Vec<Frame>,
    /// Original return addresses of marked frames, keyed by depth.
    marker_table: BTreeMap<usize, DescId>,
    /// Shallowest depth reached by exception unwinds since the last scan
    /// (`usize::MAX` if none) — the paper's `M`.
    watermark: usize,
    /// Simulation-only oracle: the true shallowest depth reached by any
    /// means since the last scan. Property tests check that
    /// `reusable_prefix() <= min_depth_since_scan`.
    min_depth_since_scan: usize,
    stats: StackStats,
}

impl Stack {
    /// Creates an empty stack.
    pub fn new() -> Stack {
        Stack {
            frames: Vec::new(),
            marker_table: BTreeMap::new(),
            watermark: usize::MAX,
            min_depth_since_scan: 0,
            stats: StackStats::default(),
        }
    }

    /// Current depth (number of live frames).
    #[inline]
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Whether the stack is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Pushes a frame of `num_slots` zeroed slots described by `desc`.
    pub fn push(&mut self, desc: DescId, num_slots: usize) {
        self.frames.push(Frame::new(desc, num_slots));
        self.stats.pushes += 1;
        self.stats.max_depth = self.stats.max_depth.max(self.frames.len());
    }

    /// Pops the top frame, firing its marker stub if it carries one.
    ///
    /// # Panics
    ///
    /// Panics if the stack is empty.
    pub fn pop(&mut self) -> PopEvent {
        let frame = self.frames.pop().expect("pop on empty stack");
        let depth = self.frames.len();
        self.stats.pops += 1;
        self.min_depth_since_scan = self.min_depth_since_scan.min(depth);
        let fired = frame.marked;
        if fired {
            // The stub runs: it notes the deactivation (removes the table
            // entry) and control continues at the recorded original
            // return address.
            let original = self.marker_table.remove(&depth);
            debug_assert!(original.is_some(), "marked frame without table entry");
            self.stats.marker_fires += 1;
        }
        PopEvent {
            desc: frame.desc,
            fired_marker: fired,
        }
    }

    /// Unwinds to `target_depth` because of a raised exception: frames are
    /// discarded *without* returning through their stubs, and the
    /// watermark `M` is updated instead.
    ///
    /// # Panics
    ///
    /// Panics if `target_depth` exceeds the current depth.
    pub fn unwind_for_raise(&mut self, target_depth: usize) {
        assert!(
            target_depth <= self.depth(),
            "unwind target beyond stack top"
        );
        let popped = self.depth() - target_depth;
        self.frames.truncate(target_depth);
        self.stats.pops += popped as u64;
        self.stats.raises += 1;
        self.watermark = self.watermark.min(target_depth);
        self.min_depth_since_scan = self.min_depth_since_scan.min(target_depth);
        // Stale marker-table entries above the cut are removed lazily at
        // the next scan; the watermark makes them harmless meanwhile.
    }

    /// Like [`unwind_for_raise`](Stack::unwind_for_raise) but *without*
    /// updating the watermark — the bookkeeping variant of §5 in which the
    /// collector later reconstructs the watermark by walking the handler
    /// chain ("deferring the handling of exceptions to a collection").
    /// The caller must eventually feed the reconstructed depth back via
    /// [`note_watermark`](Stack::note_watermark) before the next scan
    /// reuses anything.
    ///
    /// # Panics
    ///
    /// Panics if `target_depth` exceeds the current depth.
    pub fn unwind_for_raise_silent(&mut self, target_depth: usize) {
        assert!(
            target_depth <= self.depth(),
            "unwind target beyond stack top"
        );
        let popped = self.depth() - target_depth;
        self.frames.truncate(target_depth);
        self.stats.pops += popped as u64;
        self.stats.raises += 1;
        self.min_depth_since_scan = self.min_depth_since_scan.min(target_depth);
    }

    /// Lowers the watermark to `depth` (used by the deferred
    /// exception-bookkeeping variant at collection time).
    pub fn note_watermark(&mut self, depth: usize) {
        self.watermark = self.watermark.min(depth);
    }

    /// The frame at `depth` (0 = oldest).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is out of range.
    #[inline]
    pub fn frame(&self, depth: usize) -> &Frame {
        &self.frames[depth]
    }

    /// Mutable access to the frame at `depth`.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is out of range.
    #[inline]
    pub fn frame_mut(&mut self, depth: usize) -> &mut Frame {
        &mut self.frames[depth]
    }

    /// The top (most recent) frame.
    ///
    /// # Panics
    ///
    /// Panics if the stack is empty.
    #[inline]
    pub fn top(&self) -> &Frame {
        self.frames.last().expect("top of empty stack")
    }

    /// Mutable access to the top frame.
    ///
    /// # Panics
    ///
    /// Panics if the stack is empty.
    #[inline]
    pub fn top_mut(&mut self) -> &mut Frame {
        self.frames.last_mut().expect("top of empty stack")
    }

    /// Number of leading frames that are provably unchanged since the last
    /// scan: the collector may reuse their cached scan results.
    ///
    /// Computed as the paper prescribes: the shallower of the exception
    /// watermark `M` and the deepest *intact* marker (a fired or stale
    /// marker proves nothing). An intact marker at depth `m` proves the
    /// stack never unwound past frame `m` — but frame `m` itself may have
    /// been the *top* frame (actively written) without being popped, so
    /// only frames `0 .. m` are reusable. Likewise a raise that unwound to
    /// depth `t` made frame `t − 1` the active frame, so `M = t` proves
    /// only `0 .. t − 1`.
    pub fn reusable_prefix(&self) -> usize {
        // Entries at depth ≥ M are stale: an exception jumped past them
        // without firing their stubs.
        let intact_bound = self.watermark.min(self.depth());
        let deepest_intact = match self.marker_table.range(..intact_bound).next_back() {
            Some((&d, _)) => d,
            None => return 0,
        };
        deepest_intact.min(self.watermark.saturating_sub(1))
    }

    /// Simulation-only oracle: the true unchanged prefix length. The frame
    /// at the minimum depth reached was the active frame at that moment,
    /// so it does not count as unchanged.
    pub fn true_unchanged_prefix(&self) -> usize {
        self.min_depth_since_scan
            .min(self.depth())
            .saturating_sub(1)
    }

    /// Called by the collector after a full or partial scan: removes stale
    /// marker entries, resets the watermark and the oracle, and marks
    /// every `interval`-th frame. Returns the number of markers placed
    /// (each placement has a bookkeeping cost).
    ///
    /// With `interval == 0` no new markers are placed (marker machinery
    /// disabled), but bookkeeping is still reset.
    pub fn place_markers(&mut self, interval: usize) -> usize {
        // Lazy cleanup: an entry is stale if its frame is gone or was
        // replaced by a new (unmarked) frame after an exception unwind.
        let depth = self.depth();
        let frames = &self.frames;
        self.marker_table
            .retain(|&d, _| d < depth && frames[d].marked);
        self.watermark = usize::MAX;
        self.min_depth_since_scan = depth;
        if interval == 0 {
            return 0;
        }
        let mut placed = 0;
        let mut d = interval - 1;
        while d < depth {
            let frame = &mut self.frames[d];
            if !frame.marked {
                self.marker_table.insert(d, frame.desc);
                frame.marked = true;
                placed += 1;
            }
            d += interval;
        }
        self.stats.markers_placed += placed as u64;
        placed
    }

    /// Like [`place_markers`](Stack::place_markers) but with an explicit
    /// list of depths, for non-uniform placement policies (§7.1 notes "a
    /// more dynamic policy of marker placement may achieve better
    /// performance with fewer markers"). Depths beyond the stack are
    /// ignored. Returns the number of markers placed.
    pub fn place_markers_at(&mut self, depths: impl IntoIterator<Item = usize>) -> usize {
        let depth = self.depth();
        let frames = &self.frames;
        self.marker_table
            .retain(|&d, _| d < depth && frames[d].marked);
        self.watermark = usize::MAX;
        self.min_depth_since_scan = depth;
        let mut placed = 0;
        for d in depths {
            if d >= depth {
                continue;
            }
            let frame = &mut self.frames[d];
            if !frame.marked {
                self.marker_table.insert(d, frame.desc);
                frame.marked = true;
                placed += 1;
            }
        }
        self.stats.markers_placed += placed as u64;
        placed
    }

    /// The current exception watermark `M` (`usize::MAX` when no raise has
    /// happened since the last scan).
    #[inline]
    pub fn watermark(&self) -> usize {
        self.watermark
    }

    /// Number of intact marker-table entries.
    pub fn live_markers(&self) -> usize {
        self.marker_table.len()
    }

    /// Cumulative stack statistics.
    #[inline]
    pub fn stats(&self) -> &StackStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{FrameDesc, TraceTable};

    fn desc() -> DescId {
        let mut t = TraceTable::new();
        t.register(FrameDesc::new("t"))
    }

    fn stack_of(n: usize) -> Stack {
        let d = desc();
        let mut s = Stack::new();
        for _ in 0..n {
            s.push(d, 2);
        }
        s
    }

    #[test]
    fn push_pop_lifo() {
        let mut s = stack_of(3);
        assert_eq!(s.depth(), 3);
        s.top_mut().set(0, Value::Int(9));
        assert_eq!(s.top().word(0), 9);
        let ev = s.pop();
        assert!(!ev.fired_marker);
        assert_eq!(s.depth(), 2);
        assert_eq!(s.stats().max_depth, 3);
    }

    #[test]
    fn fresh_stack_has_no_reusable_prefix() {
        let s = stack_of(100);
        assert_eq!(
            s.reusable_prefix(),
            0,
            "nothing scanned yet, nothing to reuse"
        );
    }

    #[test]
    fn markers_every_interval() {
        let mut s = stack_of(100);
        let placed = s.place_markers(25);
        assert_eq!(placed, 4); // depths 24, 49, 74, 99
        assert!(s.frame(24).is_marked() && s.frame(99).is_marked());
        assert!(!s.frame(25).is_marked());
        assert_eq!(s.reusable_prefix(), 99);
    }

    #[test]
    fn interval_zero_disables_markers() {
        let mut s = stack_of(100);
        assert_eq!(s.place_markers(0), 0);
        assert_eq!(s.reusable_prefix(), 0);
        // But the oracle still resets.
        assert_eq!(s.true_unchanged_prefix(), 99);
    }

    #[test]
    fn firing_markers_shrinks_the_prefix_conservatively() {
        let mut s = stack_of(100);
        s.place_markers(25);
        for _ in 0..26 {
            s.pop(); // pops 99..74, firing markers at 99 and 74
        }
        assert_eq!(s.stats().marker_fires, 2);
        assert_eq!(s.depth(), 74);
        // Deepest intact marker is 49; frames 49..73 are actually intact
        // but unprovable — the conservative price of interval 25.
        assert_eq!(s.reusable_prefix(), 49);
        assert_eq!(s.true_unchanged_prefix(), 73);
    }

    #[test]
    fn regrowth_after_pops_is_not_reused() {
        let d = desc();
        let mut s = stack_of(100);
        s.place_markers(25);
        for _ in 0..60 {
            s.pop(); // down to depth 40, firing markers 99, 74, 49
        }
        for _ in 0..60 {
            s.push(d, 2); // regrow to 100 with *new* frames
        }
        assert_eq!(
            s.reusable_prefix(),
            24,
            "only frames under the intact marker at 24"
        );
        assert!(s.reusable_prefix() <= s.true_unchanged_prefix());
    }

    #[test]
    fn exception_unwind_uses_watermark_not_stubs() {
        let d = desc();
        let mut s = stack_of(100);
        s.place_markers(25);
        s.unwind_for_raise(30); // jumps past markers at 99, 74, 49 silently
        assert_eq!(s.stats().marker_fires, 0);
        assert_eq!(s.watermark(), 30);
        for _ in 0..70 {
            s.push(d, 2);
        }
        // Markers at 49, 74, 99 are stale (their frames are new and
        // unmarked); M = 30 caps reuse, and the deepest intact marker
        // below 30 is 24.
        assert_eq!(s.reusable_prefix(), 24);
        assert!(s.reusable_prefix() <= s.true_unchanged_prefix());
    }

    #[test]
    fn rescan_cleans_stale_entries_and_resets_watermark() {
        let d = desc();
        let mut s = stack_of(100);
        s.place_markers(25);
        s.unwind_for_raise(10);
        for _ in 0..40 {
            s.push(d, 2);
        }
        s.place_markers(25);
        assert_eq!(s.watermark(), usize::MAX);
        assert_eq!(s.reusable_prefix(), 49); // depth 50, markers at 24 and 49 intact
        assert_eq!(s.live_markers(), 2);
    }

    #[test]
    fn remarking_does_not_duplicate() {
        let mut s = stack_of(50);
        assert_eq!(s.place_markers(25), 2);
        assert_eq!(
            s.place_markers(25),
            0,
            "existing markers are kept, not re-placed"
        );
    }

    #[test]
    fn explicit_marker_placement() {
        let mut s = stack_of(50);
        // Depths beyond the stack are ignored; duplicates collapse.
        let placed = s.place_markers_at([3, 10, 10, 49, 120]);
        assert_eq!(placed, 3);
        assert!(s.frame(3).is_marked() && s.frame(10).is_marked() && s.frame(49).is_marked());
        assert_eq!(s.live_markers(), 3);
        assert_eq!(s.reusable_prefix(), 49);
        // Re-placing over existing markers is free.
        assert_eq!(s.place_markers_at([3, 10]), 0);
    }

    #[test]
    #[should_panic(expected = "pop on empty stack")]
    fn pop_empty_panics() {
        Stack::new().pop();
    }

    #[test]
    fn unwind_to_current_depth_is_noop_on_frames() {
        let mut s = stack_of(5);
        s.unwind_for_raise(5);
        assert_eq!(s.depth(), 5);
        assert_eq!(s.watermark(), 5);
    }
}
