//! Run statistics: the raw material of the paper's tables.

/// Mutator-side counters (the "Client" columns and most of Table 2).
#[derive(Clone, Copy, Debug, Default)]
pub struct MutatorStats {
    /// Total bytes allocated (Table 2, "Total Alloc").
    pub alloc_bytes: u64,
    /// Bytes allocated as records (Table 2, "Records Alloc").
    pub record_bytes: u64,
    /// Bytes allocated as pointer arrays.
    pub ptr_array_bytes: u64,
    /// Bytes allocated as raw arrays (with `ptr_array_bytes`, Table 2's
    /// "Arrays Alloc").
    pub raw_array_bytes: u64,
    /// Objects allocated, total.
    pub alloc_objects: u64,
    /// Pointer updates recorded by the write barrier (Table 2, "Number of
    /// Pointer Updates").
    pub pointer_updates: u64,
    /// Simulated cycles spent in the mutator ("Client time").
    pub client_cycles: u64,
}

impl MutatorStats {
    /// Bytes allocated as arrays of either flavour.
    pub fn array_bytes(&self) -> u64 {
        self.ptr_array_bytes + self.raw_array_bytes
    }
}

/// Collector-side counters (the "GC" columns, Tables 3–6).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Number of collections (Tables 3/4, "Number of GCs").
    pub collections: u64,
    /// How many of those were major (tenured-generation) collections.
    pub major_collections: u64,
    /// Bytes of live data copied over all collections ("Data copied").
    pub copied_bytes: u64,
    /// Words Cheney-scanned in to-space.
    pub scanned_words: u64,
    /// Stack frames decoded from scratch (the expensive path).
    pub frames_scanned: u64,
    /// Stack frames whose cached scan results were reused (generational
    /// stack collection's cheap path).
    pub frames_reused: u64,
    /// Sum over collections of the stack depth at collection time — with
    /// `collections`, gives Table 4's "Avg Frame Depth".
    pub depth_at_gc_sum: u64,
    /// Stack slots classified via trace-table decoding.
    pub slots_scanned: u64,
    /// Roots discovered and processed.
    pub roots_found: u64,
    /// Write-barrier entries filtered.
    pub barrier_entries: u64,
    /// Stack markers placed.
    pub markers_placed: u64,
    /// Words of pretenured regions scanned in place.
    pub pretenured_scanned_words: u64,
    /// Bytes allocated directly into the tenured generation by
    /// pretenuring.
    pub pretenured_bytes: u64,
    /// High-water mark of live bytes observed after any collection
    /// (Table 2, "Max Live Data").
    pub max_live_bytes: u64,
    /// Live bytes after the most recent collection.
    pub last_live_bytes: u64,

    /// Heap-pressure episodes the governor opened (the escalation
    /// ladder engaged after the ordinary slow path failed). Zero means
    /// the run was pressure-free.
    pub pressure_episodes: u64,
    /// Collections that left a generation holding more live data than
    /// its budget share — the deferred-failure state where the *next*
    /// allocation that misses fails typed instead of the collection
    /// panicking. Like `pressure_episodes`, nonzero means the heap
    /// budget undershot the workload.
    pub budget_overruns: u64,

    /// Allocation sites the online adaptive policy promoted to
    /// tenured-at-birth placement mid-run. Zero whenever adaptation is
    /// off — the offline (profile-driven) flow never flips sites.
    pub sites_promoted: u64,
    /// Allocation sites demoted back to the nursery path mid-run, by
    /// the adaptive estimator or by the pressure governor's demotion
    /// rung while adaptation is on.
    pub sites_demoted: u64,

    /// Parallel collection workers lost (panicked, stalled past the
    /// watchdog deadline, or over the cycle budget) over the run. Zero
    /// on every fault-free run.
    pub workers_lost: u64,
    /// Collections that degraded mid-cycle to the serial drain (a lost
    /// worker or an orphaned packet handed the remaining work to the
    /// coordinator's exact serial path). Each one is bracketed by a
    /// `degradation-begin`/`degradation-end` telemetry episode.
    pub degraded_collections: u64,

    /// Simulated cycles spent processing roots ("GC-stack", Table 5).
    pub stack_cycles: u64,
    /// Simulated cycles spent scanning and copying the heap ("GC-copy").
    pub copy_cycles: u64,
    /// Remaining collection cycles (fixed overheads, barrier filtering,
    /// bookkeeping).
    pub other_cycles: u64,

    /// Wall-clock nanoseconds spent in root processing.
    pub stack_wall_ns: u64,
    /// Wall-clock nanoseconds spent in copy/scan work.
    pub copy_wall_ns: u64,
    /// Total wall-clock nanoseconds spent collecting.
    pub total_wall_ns: u64,
}

impl GcStats {
    /// Total simulated GC cycles.
    pub fn gc_cycles(&self) -> u64 {
        self.stack_cycles + self.copy_cycles + self.other_cycles
    }

    /// Fraction of simulated GC time spent in root processing (Table 5's
    /// "stack%").
    pub fn stack_fraction(&self) -> f64 {
        let total = self.gc_cycles();
        if total == 0 {
            0.0
        } else {
            self.stack_cycles as f64 / total as f64
        }
    }

    /// Mean stack depth at collection time (Table 4's "Avg Frame Depth").
    pub fn avg_depth_at_gc(&self) -> f64 {
        if self.collections == 0 {
            0.0
        } else {
            self.depth_at_gc_sum as f64 / self.collections as f64
        }
    }

    /// Mean number of freshly scanned frames per collection (Table 2's
    /// "New Frames in Stack").
    pub fn avg_new_frames(&self) -> f64 {
        if self.collections == 0 {
            0.0
        } else {
            self.frames_scanned as f64 / self.collections as f64
        }
    }

    /// Records the live size after a collection, maintaining the
    /// high-water mark.
    pub fn note_live_bytes(&mut self, live: u64) {
        self.last_live_bytes = live;
        self.max_live_bytes = self.max_live_bytes.max(live);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_ratios() {
        let mut s = GcStats::default();
        assert_eq!(s.stack_fraction(), 0.0);
        assert_eq!(s.avg_depth_at_gc(), 0.0);
        s.stack_cycles = 30;
        s.copy_cycles = 60;
        s.other_cycles = 10;
        s.collections = 4;
        s.depth_at_gc_sum = 10;
        s.frames_scanned = 6;
        assert!((s.stack_fraction() - 0.3).abs() < 1e-12);
        assert!((s.avg_depth_at_gc() - 2.5).abs() < 1e-12);
        assert!((s.avg_new_frames() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn live_high_water_mark() {
        let mut s = GcStats::default();
        s.note_live_bytes(100);
        s.note_live_bytes(40);
        assert_eq!(s.max_live_bytes, 100);
        assert_eq!(s.last_live_bytes, 40);
    }

    #[test]
    fn mutator_array_bytes() {
        let m = MutatorStats {
            ptr_array_bytes: 3,
            raw_array_bytes: 4,
            ..Default::default()
        };
        assert_eq!(m.array_bytes(), 7);
    }
}
