use std::fmt;

use tilgc_mem::Addr;

/// A mutator-level value.
///
/// TIL is *nearly tag-free*: at runtime a word is just 64 bits, and whether
/// it is a pointer is known only from static information (stack trace
/// tables, record header masks) or from runtime type parameters
/// (§2.2–2.3). `Value` is the typed view the mutator API works with; the
/// moment a value is stored into a stack slot, register or heap field it
/// becomes a bare word again, and the collector must recover its
/// pointerness exactly the way the paper describes.
///
/// # Example
///
/// ```
/// use tilgc_runtime::Value;
/// use tilgc_mem::Addr;
///
/// let v = Value::Ptr(Addr::new(64));
/// assert!(v.is_pointer());
/// assert_eq!(Value::from_ptr_word(v.to_word()), v);
///
/// let n = Value::Int(-3);
/// assert_eq!(Value::from_int_word(n.to_word()), n);
/// ```
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub enum Value {
    /// An unboxed, untagged word-sized integer.
    Int(i64),
    /// An unboxed IEEE-754 double (TIL does not always box floats).
    Real(f64),
    /// A pointer to a heap object (possibly null).
    Ptr(Addr),
    /// The default contents of an uninitialized slot.
    #[default]
    Uninit,
}

impl Value {
    /// The null pointer.
    pub const NULL: Value = Value::Ptr(Addr::NULL);

    /// Whether this value must be reported to the collector as a root.
    #[inline]
    pub fn is_pointer(self) -> bool {
        matches!(self, Value::Ptr(_))
    }

    /// Encodes the value as the bare word the runtime stores.
    #[inline]
    pub fn to_word(self) -> u64 {
        match self {
            Value::Int(i) => i as u64,
            Value::Real(r) => r.to_bits(),
            Value::Ptr(a) => u64::from(a.raw()),
            Value::Uninit => 0,
        }
    }

    /// Decodes a word known (from traces) to be a pointer.
    #[inline]
    pub fn from_ptr_word(word: u64) -> Value {
        Value::Ptr(Addr::new(word as u32))
    }

    /// Decodes a word known (from traces) to be an integer.
    #[inline]
    pub fn from_int_word(word: u64) -> Value {
        Value::Int(word as i64)
    }

    /// The pointer payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a pointer.
    #[inline]
    pub fn as_ptr(self) -> Addr {
        match self {
            Value::Ptr(a) => a,
            other => panic!("expected pointer, found {other:?}"),
        }
    }

    /// The integer payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not an integer.
    #[inline]
    pub fn as_int(self) -> i64 {
        match self {
            Value::Int(i) => i,
            other => panic!("expected integer, found {other:?}"),
        }
    }

    /// The floating-point payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a real.
    #[inline]
    pub fn as_real(self) -> f64 {
        match self {
            Value::Real(r) => r,
            other => panic!("expected real, found {other:?}"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(r: f64) -> Value {
        Value::Real(r)
    }
}

impl From<Addr> for Value {
    fn from(a: Addr) -> Value {
        Value::Ptr(a)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Real(r) => write!(f, "{r}"),
            Value::Ptr(a) => write!(f, "{a}"),
            Value::Uninit => f.write_str("<uninit>"),
        }
    }
}

/// What the mutator last wrote into a slot or register.
///
/// Shadow tags are *simulation-only* oracles: the real TIL runtime has no
/// such information (that is the entire difficulty §2.3 describes). The
/// collector never consults them to find roots; they exist so tests can
/// assert that trace-directed scanning reaches exactly the right
/// conclusions, and so that mis-declared frame descriptors in benchmark
/// programs fail fast instead of corrupting the heap.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ShadowTag {
    /// The location holds a non-pointer word (or was never written).
    #[default]
    NonPtr,
    /// The location holds a heap pointer.
    Ptr,
}

impl ShadowTag {
    /// Shadow tag corresponding to a [`Value`].
    #[inline]
    pub fn of(value: Value) -> ShadowTag {
        if value.is_pointer() {
            ShadowTag::Ptr
        } else {
            ShadowTag::NonPtr
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_round_trips() {
        assert_eq!(
            Value::from_int_word(Value::Int(-77).to_word()),
            Value::Int(-77)
        );
        let p = Value::Ptr(Addr::new(123));
        assert_eq!(Value::from_ptr_word(p.to_word()), p);
        assert_eq!(f64::from_bits(Value::Real(6.5).to_word()), 6.5);
    }

    #[test]
    fn pointerness() {
        assert!(Value::NULL.is_pointer());
        assert!(!Value::Int(0).is_pointer());
        assert!(!Value::Uninit.is_pointer());
        assert_eq!(ShadowTag::of(Value::Ptr(Addr::new(1))), ShadowTag::Ptr);
        assert_eq!(ShadowTag::of(Value::Real(0.0)), ShadowTag::NonPtr);
    }

    #[test]
    #[should_panic(expected = "expected pointer")]
    fn as_ptr_on_int_panics() {
        let _ = Value::Int(3).as_ptr();
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(Addr::new(9)), Value::Ptr(Addr::new(9)));
        assert_eq!(Value::from(1.5f64), Value::Real(1.5));
    }
}
