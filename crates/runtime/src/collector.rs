//! The interface between the mutator and a garbage collector.
//!
//! The runtime owns the stack, registers, write barrier and handler chain
//! (everything the mutator touches); a [`Collector`] owns the memory and
//! its spaces. Allocation requests flow down through
//! [`Collector::alloc`]; when space runs out the collector scans the
//! mutator state for roots, relocates live data and retries.

use tilgc_mem::{Addr, AllocKind, GcError, Memory, SiteId};

use crate::mutator::MutatorState;
use crate::profile_data::HeapProfile;
use crate::stats::GcStats;

/// The shape of a requested allocation.
///
/// The *contents* (initial field words) travel separately, in
/// [`MutatorState::alloc_buf`]: the collector treats that buffer as a root
/// area during any collection the allocation triggers, which models the
/// argument registers a compiled allocation sequence would hold its
/// operands in. By the time the collector initializes the new object, the
/// buffer has been relocated along with everything else.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocShape {
    /// A record; field words come from the alloc buffer.
    Record {
        /// Allocation site.
        site: SiteId,
        /// Number of fields.
        len: usize,
        /// Pointer mask (bit *i* set ⇒ field *i* is a pointer).
        mask: u32,
    },
    /// A pointer array; the single alloc-buffer word is the initializer.
    PtrArray {
        /// Allocation site.
        site: SiteId,
        /// Element count.
        len: usize,
    },
    /// A zero-filled raw array; the alloc buffer is unused.
    RawArray {
        /// Allocation site.
        site: SiteId,
        /// Payload size in bytes.
        len_bytes: usize,
    },
}

impl AllocShape {
    /// The allocation site of the request.
    pub fn site(&self) -> SiteId {
        match *self {
            AllocShape::Record { site, .. }
            | AllocShape::PtrArray { site, .. }
            | AllocShape::RawArray { site, .. } => site,
        }
    }

    /// Total words the object will occupy, including its header.
    pub fn size_words(&self) -> usize {
        match *self {
            AllocShape::Record { len, .. } => 1 + len,
            AllocShape::PtrArray { len, .. } => 1 + len,
            AllocShape::RawArray { len_bytes, .. } => 1 + tilgc_mem::bytes_to_words(len_bytes),
        }
    }

    /// Total bytes the object will occupy, including its header.
    pub fn size_bytes(&self) -> usize {
        tilgc_mem::words_to_bytes(self.size_words())
    }

    /// The broad shape class of the request, for [`GcError`] reporting.
    pub fn kind(&self) -> AllocKind {
        match self {
            AllocShape::Record { .. } => AllocKind::Record,
            AllocShape::PtrArray { .. } => AllocKind::PtrArray,
            AllocShape::RawArray { .. } => AllocKind::RawArray,
        }
    }
}

/// A post-collection inspection record: what the most recent collection
/// *claims* it did, in a form an external oracle can cross-check.
///
/// Cumulative [`GcStats`] cannot be checked per collection — deltas from
/// different collections blur together. Collectors therefore record the
/// per-collection deltas (plus the scan's prefix-reuse claim) here at the
/// end of every collection, and a verifier such as `tilgc-core`'s
/// `verify_collection` holds them against the shadow-tag oracle: the
/// claimed reuse prefix must stay under the simulation oracle, every
/// copied word must have been Cheney-scanned, and the reachable bytes an
/// independent graph walk finds must fit the claimed live size.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CollectionInspection {
    /// Value of [`GcStats::collections`] after this collection (1-based).
    pub collection: u64,
    /// Whether the whole heap was collected (a semispace or major
    /// collection) rather than the nursery alone.
    pub was_major: bool,
    /// Stack depth (frames) at the collection point.
    pub depth_at_gc: u64,
    /// Live bytes the collector accounted for at the end of the
    /// collection ([`GcStats::last_live_bytes`] at that instant).
    pub live_bytes_after: u64,
    /// Whether `live_bytes_after` covers *every* space a live object can
    /// inhabit. A §7.2 tenure-threshold minor copies survivors back into
    /// the nursery system without counting them, so its record sets this
    /// false and byte-level cross-checks are skipped.
    pub live_accounting_complete: bool,
    /// Bytes copied by this collection alone.
    pub copied_bytes: u64,
    /// Words Cheney-scanned by this collection alone.
    pub scanned_words: u64,
    /// Words scanned in place in pretenured regions by this collection.
    pub pretenured_scanned_words: u64,
    /// Root locations processed by this collection.
    pub roots_found: u64,
    /// Frames decoded from scratch by this collection's stack scan.
    pub frames_scanned: u64,
    /// Frames whose cached decode was reused (§5).
    pub frames_reused: u64,
    /// The cached-prefix claim the scan acted on:
    /// `min(M, deepest intact marker)`, clamped to the cache length.
    pub claimed_prefix: u64,
    /// The simulation oracle's true unchanged prefix at the same instant,
    /// captured *before* marker placement reset the bookkeeping.
    pub oracle_prefix: u64,
}

/// Why a collection was requested.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CollectReason {
    /// An allocation did not fit in the allocation space.
    AllocFailure,
    /// The embedder forced a collection.
    Forced,
    /// The embedder forced a *major* collection (meaningful for
    /// generational collectors; others treat it as `Forced`).
    ForcedMajor,
}

/// A garbage collector driving a [`Memory`].
///
/// Implementations live in `tilgc-core`: the semispace baseline, the
/// generational collector, and the generational collector extended with
/// stack markers and pretenuring.
pub trait Collector {
    /// A short human-readable name ("semispace", "generational", ...).
    fn name(&self) -> &'static str;

    /// Read access to the simulated memory.
    fn memory(&self) -> &Memory;

    /// Write access to the simulated memory (mutator field stores).
    fn memory_mut(&mut self) -> &mut Memory;

    /// Allocates an object, collecting first if necessary.
    ///
    /// # Errors
    ///
    /// Returns a [`GcError`] when even the full heap-pressure escalation
    /// ladder (retry after minor, retry after major, budget rebalance,
    /// pretenuring demotion) cannot make the request fit within the fixed
    /// heap budget. The error names the exhausted space; the VM converts
    /// it into a catchable `HeapOverflow` raise for the guest program.
    fn alloc(&mut self, mutator: &mut MutatorState, shape: AllocShape) -> Result<Addr, GcError>;

    /// Runs a collection now.
    fn collect(&mut self, mutator: &mut MutatorState, reason: CollectReason);

    /// Cumulative collection statistics.
    fn gc_stats(&self) -> &GcStats;

    /// Live bytes as of the last collection.
    fn live_bytes_estimate(&self) -> u64 {
        self.gc_stats().last_live_bytes
    }

    /// End-of-run hook: flush profiling data, run a final sweep, etc.
    ///
    /// Deliberately *not* defaulted: a defaulted no-op let collectors
    /// silently skip their final profile flush (the pretenuring plan's
    /// final-sweep flush is load-bearing for §6 policy derivation), so
    /// every implementation must state what — if anything — it does.
    fn finish(&mut self, mutator: &mut MutatorState);

    /// Extracts the heap profile gathered during the run, if profiling
    /// was enabled. Collectors that never profile return `None`
    /// explicitly; there is no default, for the same reason as
    /// [`finish`](Collector::finish).
    fn take_profile(&mut self) -> Option<HeapProfile>;

    /// The [`CollectionInspection`] record of the most recent collection,
    /// or `None` if no collection has happened yet.
    ///
    /// Not defaulted, for the same anti-drift reason as
    /// [`finish`](Collector::finish): a defaulted `None` would let a
    /// collector silently opt out of post-collection verification, which
    /// is exactly the accounting the differential torture harness exists
    /// to keep honest.
    fn last_inspection(&self) -> Option<&CollectionInspection>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_sizes() {
        let r = AllocShape::Record {
            site: SiteId::UNKNOWN,
            len: 3,
            mask: 0,
        };
        assert_eq!(r.size_words(), 4);
        assert_eq!(r.size_bytes(), 32);
        let p = AllocShape::PtrArray {
            site: SiteId::UNKNOWN,
            len: 10,
        };
        assert_eq!(p.size_words(), 11);
        let b = AllocShape::RawArray {
            site: SiteId::new(2),
            len_bytes: 9,
        };
        assert_eq!(b.size_words(), 3);
        assert_eq!(b.site(), SiteId::new(2));
    }
}
