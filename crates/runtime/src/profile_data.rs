//! Raw heap-profile data gathered during a profiling run (§6).
//!
//! The collectors update a [`HeapProfile`] as they allocate, copy and
//! sweep; the `tilgc-profile` crate turns the result into the paper's
//! Figure-2 report and into pretenuring policies. Keeping the raw data
//! here (in the runtime substrate) lets the collector crate fill it in
//! without depending on the analysis crate.

use std::collections::{BTreeMap, HashMap};

use tilgc_mem::{Addr, SiteId};

/// Per-allocation-site lifetime statistics — one row of Figure 2.
#[derive(Clone, Debug, Default)]
pub struct SiteProfile {
    /// Bytes allocated from this site ("alloc size").
    pub alloc_bytes: u64,
    /// Objects allocated from this site ("alloc count").
    pub alloc_objects: u64,
    /// Bytes from this site copied during all collections ("copied size").
    pub copied_bytes: u64,
    /// Objects from this site that survived the first collection after
    /// their creation (numerator of "% old").
    pub survived_first: u64,
    /// Objects from this site observed dead.
    pub dead_objects: u64,
    /// Sum of ages at death, in KB of allocation (numerator of "avg age").
    pub age_sum_kb: f64,
    /// Observed pointer edges: target site → count. Feeds the §7.2
    /// `P(s) ⊆ S` reachability analysis.
    pub edges_to: BTreeMap<SiteId, u64>,
}

impl SiteProfile {
    /// Percentage of objects surviving their first collection ("% old").
    pub fn old_percent(&self) -> f64 {
        if self.alloc_objects == 0 {
            0.0
        } else {
            100.0 * self.survived_first as f64 / self.alloc_objects as f64
        }
    }

    /// Mean age at death in KB of allocation ("avg age").
    pub fn avg_age_kb(&self) -> f64 {
        if self.dead_objects == 0 {
            0.0
        } else {
            self.age_sum_kb / self.dead_objects as f64
        }
    }

    /// Ratio of copied to allocated bytes (Figure 2's last column; can
    /// exceed 1 when objects are copied repeatedly).
    pub fn copy_ratio(&self) -> f64 {
        if self.alloc_bytes == 0 {
            0.0
        } else {
            self.copied_bytes as f64 / self.alloc_bytes as f64
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Birth {
    site: SiteId,
    born_at_bytes: u64,
    survived_first: bool,
}

/// Heap profile being gathered during a run.
///
/// Object identity is tracked by current address: the collector reports
/// every relocation with [`on_copy`](HeapProfile::on_copy), so the birth
/// table follows objects around, which is how the profiler attributes a
/// death discovered in the vacated nursery to the right site and age.
#[derive(Clone, Debug, Default)]
pub struct HeapProfile {
    sites: Vec<SiteProfile>,
    births: HashMap<u32, Birth>,
    alloc_clock_bytes: u64,
    /// Objects still live when the run finished.
    pub live_at_exit: u64,
    /// Sites the heap-pressure governor demoted from pretenured back to
    /// nursery allocation, in demotion order. A site appearing here means
    /// its pretenuring decision was wrong for this heap budget — the next
    /// policy derivation should treat the site as nursery-allocated.
    pub demoted_sites: Vec<SiteId>,
}

impl HeapProfile {
    /// Creates an empty profile.
    pub fn new() -> HeapProfile {
        HeapProfile::default()
    }

    /// Total bytes allocated so far (the profile's clock).
    pub fn clock_bytes(&self) -> u64 {
        self.alloc_clock_bytes
    }

    fn entry(&mut self, site: SiteId) -> &mut SiteProfile {
        let i = site.index();
        if i >= self.sites.len() {
            self.sites.resize_with(i + 1, SiteProfile::default);
        }
        &mut self.sites[i]
    }

    /// The profile row for `site`, if any allocation was seen from it.
    pub fn site(&self, site: SiteId) -> Option<&SiteProfile> {
        self.sites.get(site.index())
    }

    /// Iterates over `(site, row)` pairs with at least one allocation.
    pub fn iter(&self) -> impl Iterator<Item = (SiteId, &SiteProfile)> {
        self.sites
            .iter()
            .enumerate()
            .filter(|(_, p)| p.alloc_objects > 0 || p.copied_bytes > 0)
            .map(|(i, p)| (SiteId::new(i as u16), p))
    }

    /// Records an allocation of `bytes` bytes at `addr` from `site`.
    pub fn on_alloc(&mut self, addr: Addr, site: SiteId, bytes: usize) {
        self.alloc_clock_bytes += bytes as u64;
        let e = self.entry(site);
        e.alloc_bytes += bytes as u64;
        e.alloc_objects += 1;
        self.births.insert(
            addr.raw(),
            Birth {
                site,
                born_at_bytes: self.alloc_clock_bytes,
                survived_first: false,
            },
        );
    }

    /// Records that the object at `old` was copied to `new`.
    /// `from_nursery` marks a first promotion out of the allocation area,
    /// which is what "% old" counts.
    pub fn on_copy(&mut self, old: Addr, new: Addr, bytes: usize, from_nursery: bool) {
        let Some(mut birth) = self.births.remove(&old.raw()) else {
            return;
        };
        let e = self.entry(birth.site);
        e.copied_bytes += bytes as u64;
        if from_nursery && !birth.survived_first {
            birth.survived_first = true;
            e.survived_first += 1;
        }
        self.births.insert(new.raw(), birth);
    }

    /// Records that the object at `addr` was found dead.
    pub fn on_death(&mut self, addr: Addr) {
        let Some(birth) = self.births.remove(&addr.raw()) else {
            return;
        };
        let age_kb = (self.alloc_clock_bytes - birth.born_at_bytes) as f64 / 1024.0;
        let e = self.entry(birth.site);
        e.dead_objects += 1;
        e.age_sum_kb += age_kb;
    }

    /// Records a pointer from an object born at `from_site` to one born at
    /// `to_site`.
    pub fn on_edge(&mut self, from_site: SiteId, to_site: SiteId) {
        *self.entry(from_site).edges_to.entry(to_site).or_insert(0) += 1;
    }

    /// Looks up the birth site of the (live) object at `addr`.
    pub fn site_of(&self, addr: Addr) -> Option<SiteId> {
        self.births.get(&addr.raw()).map(|b| b.site)
    }

    /// Records that the governor demoted `site` out of the pretenured
    /// set under memory pressure.
    pub fn note_demotion(&mut self, site: SiteId) {
        self.demoted_sites.push(site);
    }

    /// Ends the run: objects still live are counted as dying at the end,
    /// so "avg age" reflects them, mirroring a whole-program profile.
    pub fn finish(&mut self) {
        let clock = self.alloc_clock_bytes;
        self.live_at_exit = self.births.len() as u64;
        let births: Vec<Birth> = self.births.drain().map(|(_, b)| b).collect();
        for birth in births {
            let age_kb = (clock - birth.born_at_bytes) as f64 / 1024.0;
            let e = self.entry(birth.site);
            e.dead_objects += 1;
            e.age_sum_kb += age_kb;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S1: SiteId = SiteId::new(1);
    const S2: SiteId = SiteId::new(2);

    #[test]
    fn alloc_copy_death_lifecycle() {
        let mut p = HeapProfile::new();
        p.on_alloc(Addr::new(10), S1, 1024);
        p.on_alloc(Addr::new(20), S2, 2048);
        // S1's object survives a minor collection; S2's dies.
        p.on_copy(Addr::new(10), Addr::new(100), 1024, true);
        p.on_death(Addr::new(20));

        let s1 = p.site(S1).unwrap();
        assert_eq!(s1.alloc_objects, 1);
        assert_eq!(s1.copied_bytes, 1024);
        assert_eq!(s1.survived_first, 1);
        assert_eq!(s1.old_percent(), 100.0);

        let s2 = p.site(S2).unwrap();
        assert_eq!(s2.old_percent(), 0.0);
        assert_eq!(s2.dead_objects, 1);
        // Died when the clock stood at 3072 bytes, born at 3072 → age 0? No:
        // born after its own allocation (clock 3072), died at 3072 → age 0 KB.
        assert_eq!(s2.avg_age_kb(), 0.0);
    }

    #[test]
    fn repeated_copies_accumulate_but_survival_counts_once() {
        let mut p = HeapProfile::new();
        p.on_alloc(Addr::new(10), S1, 100);
        p.on_copy(Addr::new(10), Addr::new(20), 100, true);
        p.on_copy(Addr::new(20), Addr::new(30), 100, false); // major copy
        let s = p.site(S1).unwrap();
        assert_eq!(s.copied_bytes, 200);
        assert_eq!(s.survived_first, 1);
        assert!((s.copy_ratio() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn age_measured_in_kb_of_allocation() {
        let mut p = HeapProfile::new();
        p.on_alloc(Addr::new(10), S1, 512);
        p.on_alloc(Addr::new(20), S2, 4096); // clock advances 4 KB
        p.on_death(Addr::new(10));
        let s = p.site(S1).unwrap();
        assert!((s.avg_age_kb() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn finish_accounts_for_survivors() {
        let mut p = HeapProfile::new();
        p.on_alloc(Addr::new(10), S1, 1024);
        p.on_alloc(Addr::new(20), S1, 1024);
        p.on_death(Addr::new(20));
        p.finish();
        assert_eq!(p.live_at_exit, 1);
        let s = p.site(S1).unwrap();
        assert_eq!(s.dead_objects, 2);
    }

    #[test]
    fn edges_recorded_per_target() {
        let mut p = HeapProfile::new();
        p.on_edge(S1, S2);
        p.on_edge(S1, S2);
        p.on_edge(S1, S1);
        let s = p.site(S1).unwrap();
        assert_eq!(s.edges_to.get(&S2), Some(&2));
        assert_eq!(s.edges_to.get(&S1), Some(&1));
    }

    #[test]
    fn conservation_after_finish() {
        // Every allocated object is eventually accounted dead (possibly
        // at finish), and survivors-of-first-collection never exceed
        // allocations.
        let mut p = HeapProfile::new();
        let mut next = 10u32;
        for i in 0..50u32 {
            let a = Addr::new(next);
            next += 4;
            p.on_alloc(a, S1, 16);
            if i % 3 == 0 {
                let moved = Addr::new(next);
                next += 4;
                p.on_copy(a, moved, 16, true);
                if i % 6 == 0 {
                    p.on_death(moved);
                }
            } else if i % 3 == 1 {
                p.on_death(a);
            }
        }
        p.finish();
        let s = p.site(S1).unwrap();
        assert_eq!(s.alloc_objects, 50);
        assert_eq!(s.dead_objects, 50, "finish accounts every survivor");
        assert!(s.survived_first <= s.alloc_objects);
        assert_eq!(s.survived_first, 17); // i % 3 == 0 for 0..50
    }

    #[test]
    fn death_of_untracked_address_is_ignored() {
        let mut p = HeapProfile::new();
        p.on_death(Addr::new(77)); // e.g. runtime-internal object
        assert_eq!(p.iter().count(), 0);
    }
}
