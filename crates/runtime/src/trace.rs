//! Trace tables: the compiler-emitted metadata that lets the collector
//! decode stack frames (§2.3 of the paper, Figure 1).
//!
//! Every activation record is described by a [`FrameDesc`] registered in
//! the [`TraceTable`]. A frame's *return address* is the key into the
//! table; in this simulation the key is a [`DescId`]. For each stack slot
//! and each register the descriptor records a [`Trace`]:
//!
//! * [`Trace::Pointer`] — statically known pointer, always a root;
//! * [`Trace::NonPointer`] — statically known non-pointer, never a root;
//! * [`Trace::CalleeSave`] — the slot holds the spilled value of a
//!   callee-save register, so its pointerness is whatever that register
//!   held *in the caller*: frames cannot be decoded in isolation, which is
//!   why the paper's stack scan is two-pass;
//! * [`Trace::Compute`] — polymorphic value; the collector must fetch a
//!   runtime type from another location and decide dynamically.

use std::fmt;
use std::sync::Arc;

use crate::value::Value;

/// Number of general-purpose registers in the simulated machine (the Alpha
/// has 32).
pub const NUM_REGS: usize = 32;

/// A general-purpose register index.
///
/// # Example
///
/// ```
/// use tilgc_runtime::Reg;
/// let r = Reg::new(10);
/// assert_eq!(r.to_string(), "$10");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Reg(u8);

impl Reg {
    /// Creates a register index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_REGS`.
    #[inline]
    pub const fn new(index: u8) -> Reg {
        assert!((index as usize) < NUM_REGS, "register out of range");
        Reg(index)
    }

    /// The register number.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}", self.0)
    }
}

/// Where a `Compute` trace finds its runtime type.
///
/// TIL passes types to polymorphic code at runtime (§2.2); the trace table
/// records where the type for a polymorphic value lives — some other slot
/// of the same frame, or a register.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TypeLoc {
    /// The type descriptor is in slot `n` of the same frame.
    Slot(u16),
    /// The type descriptor is in a register.
    Reg(Reg),
}

/// Interprets a runtime type word: the low bit says whether values of the
/// described type are heap pointers.
///
/// This is the simulation's stand-in for TIL's type analysis — rich enough
/// that the collector genuinely cannot classify a `Compute` slot without
/// fetching and interpreting another value, which is the behaviour (and
/// cost) the paper describes.
#[inline]
pub fn type_word_is_pointer(type_word: u64) -> bool {
    type_word & 1 == 1
}

/// The runtime type word for "boxed" (pointer) values.
pub const TYPE_BOXED: i64 = 1;
/// The runtime type word for "unboxed" (non-pointer) values.
pub const TYPE_UNBOXED: i64 = 0;

/// The trace recorded for one stack slot or register (§2.3 lists exactly
/// these four).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Trace {
    /// Statically known to be a pointer.
    Pointer,
    /// Statically known not to be a pointer.
    NonPointer,
    /// Holds the spilled value of the given callee-save register.
    CalleeSave(Reg),
    /// Pointerness must be computed from a runtime type at `TypeLoc`.
    Compute(TypeLoc),
}

impl Trace {
    /// Whether writing `value` into a location with this trace is
    /// consistent. `Compute` and `CalleeSave` locations accept anything —
    /// their pointerness is context-dependent by design.
    pub fn admits(self, value: Value) -> bool {
        match self {
            Trace::Pointer => value.is_pointer(),
            Trace::NonPointer => !value.is_pointer(),
            Trace::CalleeSave(_) | Trace::Compute(_) => true,
        }
    }
}

/// What a frame's code does to a register by the time the frame is
/// suspended at a call (the register portion of Figure 1's table entry).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum RegEffect {
    /// The frame leaves the caller's value in place (callee-save
    /// discipline). This is the default for unlisted registers.
    #[default]
    Preserve,
    /// The frame leaves a pointer in the register.
    DefPointer,
    /// The frame leaves a non-pointer in the register.
    DefNonPointer,
}

/// Identifier of a registered [`FrameDesc`] — the simulation's "return
/// address", used as the key into the [`TraceTable`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DescId(u32);

impl DescId {
    /// Index form for dense tables.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DescId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ret:{:#x}", self.0)
    }
}

/// Static description of one kind of activation record.
///
/// Built with a fluent API and registered once per function/call-site:
///
/// ```
/// use tilgc_runtime::{FrameDesc, Trace, TypeLoc, Reg, TraceTable};
///
/// let mut table = TraceTable::new();
/// let desc = FrameDesc::new("kb::rewrite")
///     .slot(Trace::NonPointer)
///     .slot(Trace::Pointer)
///     .slot(Trace::Pointer)
///     .slot(Trace::NonPointer)              // runtime type for slot 4
///     .slot(Trace::Compute(TypeLoc::Slot(3)))
///     .slot(Trace::CalleeSave(Reg::new(10)))
///     .def_pointer(Reg::new(10));
/// let id = table.register(desc);
/// assert_eq!(table.desc(id).num_slots(), 6);
/// ```
#[derive(Clone, Debug)]
pub struct FrameDesc {
    name: String,
    slots: Vec<Trace>,
    reg_effects: Vec<(Reg, RegEffect)>,
}

impl FrameDesc {
    /// Starts a descriptor for the function/call-site named `name`.
    pub fn new(name: impl Into<String>) -> FrameDesc {
        FrameDesc {
            name: name.into(),
            slots: Vec::new(),
            reg_effects: Vec::new(),
        }
    }

    /// Appends a slot with the given trace.
    #[must_use]
    pub fn slot(mut self, trace: Trace) -> FrameDesc {
        self.slots.push(trace);
        self
    }

    /// Appends `n` slots with the same trace.
    #[must_use]
    pub fn slots(mut self, n: usize, trace: Trace) -> FrameDesc {
        self.slots.extend(std::iter::repeat_n(trace, n));
        self
    }

    /// Declares that this frame leaves a pointer in `reg` while suspended.
    #[must_use]
    pub fn def_pointer(mut self, reg: Reg) -> FrameDesc {
        self.reg_effects.push((reg, RegEffect::DefPointer));
        self
    }

    /// Declares that this frame leaves a non-pointer in `reg` while
    /// suspended.
    #[must_use]
    pub fn def_non_pointer(mut self, reg: Reg) -> FrameDesc {
        self.reg_effects.push((reg, RegEffect::DefNonPointer));
        self
    }

    /// The descriptor's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of slots in frames of this shape (the paper's "frame size").
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// The trace for slot `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn slot_trace(&self, i: usize) -> Trace {
        self.slots[i]
    }

    /// All slot traces, in slot order.
    pub fn slot_traces(&self) -> &[Trace] {
        &self.slots
    }

    /// The declared register effects (unlisted registers are
    /// [`RegEffect::Preserve`]).
    pub fn reg_effects(&self) -> &[(Reg, RegEffect)] {
        &self.reg_effects
    }

    /// The effect of this frame on register `reg`.
    pub fn reg_effect(&self, reg: Reg) -> RegEffect {
        self.reg_effects
            .iter()
            .rev()
            .find(|(r, _)| *r == reg)
            .map(|&(_, e)| e)
            .unwrap_or(RegEffect::Preserve)
    }

    /// The callee-save registers this frame spills into slots, with the
    /// slot index of each spill.
    pub fn callee_saves(&self) -> impl Iterator<Item = (usize, Reg)> + '_ {
        self.slots.iter().enumerate().filter_map(|(i, t)| match t {
            Trace::CalleeSave(r) => Some((i, *r)),
            _ => None,
        })
    }
}

/// A [`FrameDesc`]'s slot traces precompiled at [`TraceTable::register`]
/// time.
///
/// Most frames are *static*: every slot is [`Trace::Pointer`] or
/// [`Trace::NonPointer`], so which slots are roots is known the moment the
/// descriptor is registered. For those frames the compiled form packs the
/// pointer slots into a `u64` bitmap (and a shared slot-index list for the
/// scan cache), letting the stack scan walk set bits instead of matching a
/// `Trace` per slot. Frames with [`Trace::CalleeSave`] or
/// [`Trace::Compute`] slots depend on runtime state and keep the two-pass
/// decode.
#[derive(Clone, Debug)]
pub struct CompiledTrace {
    /// Bit `i` set means slot `i` is statically a pointer. Meaningful only
    /// when [`is_static`](CompiledTrace::is_static); empty otherwise.
    ptr_bitmap: Vec<u64>,
    /// The same information as `ptr_bitmap`, as a shared index list —
    /// cloned (not recomputed) into every scan-cache entry.
    ptr_slots: Arc<[u16]>,
    num_slots: usize,
    is_static: bool,
}

impl CompiledTrace {
    fn compile(desc: &FrameDesc) -> CompiledTrace {
        let num_slots = desc.slots.len();
        let is_static = desc
            .slots
            .iter()
            .all(|t| matches!(t, Trace::Pointer | Trace::NonPointer));
        let mut ptr_bitmap = Vec::new();
        let mut ptr_slots = Vec::new();
        if is_static {
            ptr_bitmap = vec![0u64; num_slots.div_ceil(64)];
            for (i, t) in desc.slots.iter().enumerate() {
                if matches!(t, Trace::Pointer) {
                    ptr_bitmap[i / 64] |= 1 << (i % 64);
                    ptr_slots.push(i as u16);
                }
            }
        }
        CompiledTrace {
            ptr_bitmap,
            ptr_slots: ptr_slots.into(),
            num_slots,
            is_static,
        }
    }

    /// Whether every slot's pointerness was decided at registration time
    /// (no callee-save or compute slots).
    #[inline]
    pub fn is_static(&self) -> bool {
        self.is_static
    }

    /// Number of slots in frames of this shape.
    #[inline]
    pub fn num_slots(&self) -> usize {
        self.num_slots
    }

    /// The packed pointer bitmap (one bit per slot, 64 slots per word).
    #[inline]
    pub fn ptr_bitmap(&self) -> &[u64] {
        &self.ptr_bitmap
    }

    /// The static pointer-slot list, shared (not copied) per clone.
    #[inline]
    pub fn ptr_slots(&self) -> Arc<[u16]> {
        Arc::clone(&self.ptr_slots)
    }
}

/// The table of auxiliary frame information the collector indexes by
/// return address (§2.3).
#[derive(Clone, Debug, Default)]
pub struct TraceTable {
    descs: Vec<FrameDesc>,
    compiled: Vec<CompiledTrace>,
}

impl TraceTable {
    /// Creates an empty table.
    pub fn new() -> TraceTable {
        TraceTable::default()
    }

    /// Registers a frame descriptor, returning its key.
    ///
    /// # Panics
    ///
    /// Panics on descriptors whose `Compute` traces reference slots out of
    /// range — the moral equivalent of a compiler bug.
    pub fn register(&mut self, desc: FrameDesc) -> DescId {
        for (i, t) in desc.slots.iter().enumerate() {
            if let Trace::Compute(TypeLoc::Slot(s)) = t {
                assert!(
                    (*s as usize) < desc.slots.len(),
                    "compute trace of slot {i} in {:?} references missing slot {s}",
                    desc.name
                );
            }
        }
        let id = DescId(self.descs.len() as u32);
        self.compiled.push(CompiledTrace::compile(&desc));
        self.descs.push(desc);
        id
    }

    /// Looks up a descriptor (the "table index by return address").
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn desc(&self, id: DescId) -> &FrameDesc {
        &self.descs[id.index()]
    }

    /// Looks up a descriptor's precompiled trace bitmap.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn compiled(&self, id: DescId) -> &CompiledTrace {
        &self.compiled[id.index()]
    }

    /// Number of registered descriptors.
    pub fn len(&self) -> usize {
        self.descs.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.descs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_slots_and_effects() {
        let d = FrameDesc::new("f")
            .slot(Trace::Pointer)
            .slots(3, Trace::NonPointer)
            .def_pointer(Reg::new(4))
            .def_non_pointer(Reg::new(5));
        assert_eq!(d.num_slots(), 4);
        assert_eq!(d.slot_trace(0), Trace::Pointer);
        assert_eq!(d.slot_trace(3), Trace::NonPointer);
        assert_eq!(d.reg_effect(Reg::new(4)), RegEffect::DefPointer);
        assert_eq!(d.reg_effect(Reg::new(5)), RegEffect::DefNonPointer);
        assert_eq!(d.reg_effect(Reg::new(6)), RegEffect::Preserve);
    }

    #[test]
    fn later_reg_effect_wins() {
        let d = FrameDesc::new("f")
            .def_pointer(Reg::new(1))
            .def_non_pointer(Reg::new(1));
        assert_eq!(d.reg_effect(Reg::new(1)), RegEffect::DefNonPointer);
    }

    #[test]
    fn callee_saves_listed_with_slots() {
        let d = FrameDesc::new("f")
            .slot(Trace::NonPointer)
            .slot(Trace::CalleeSave(Reg::new(9)))
            .slot(Trace::CalleeSave(Reg::new(10)));
        let spills: Vec<_> = d.callee_saves().collect();
        assert_eq!(spills, vec![(1, Reg::new(9)), (2, Reg::new(10))]);
    }

    #[test]
    fn table_round_trip() {
        let mut t = TraceTable::new();
        let a = t.register(FrameDesc::new("a"));
        let b = t.register(FrameDesc::new("b").slot(Trace::Pointer));
        assert_ne!(a, b);
        assert_eq!(t.desc(a).name(), "a");
        assert_eq!(t.desc(b).num_slots(), 1);
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "references missing slot")]
    fn bad_compute_reference_panics() {
        let mut t = TraceTable::new();
        t.register(FrameDesc::new("bad").slot(Trace::Compute(TypeLoc::Slot(5))));
    }

    #[test]
    fn compiled_bitmap_matches_static_traces() {
        let mut t = TraceTable::new();
        let id = t.register(
            FrameDesc::new("s")
                .slot(Trace::Pointer)
                .slots(70, Trace::NonPointer)
                .slot(Trace::Pointer),
        );
        let c = t.compiled(id);
        assert!(c.is_static());
        assert_eq!(c.num_slots(), 72);
        assert_eq!(c.ptr_bitmap().len(), 2);
        assert_eq!(c.ptr_bitmap()[0], 1);
        assert_eq!(c.ptr_bitmap()[1], 1 << (71 - 64));
        assert_eq!(&*c.ptr_slots(), &[0u16, 71]);
    }

    #[test]
    fn compiled_dynamic_frames_are_flagged() {
        let mut t = TraceTable::new();
        let cs = t.register(FrameDesc::new("cs").slot(Trace::CalleeSave(Reg::new(3))));
        let cp = t.register(
            FrameDesc::new("cp")
                .slot(Trace::NonPointer)
                .slot(Trace::Compute(TypeLoc::Slot(0))),
        );
        assert!(!t.compiled(cs).is_static());
        assert!(!t.compiled(cp).is_static());
        assert_eq!(t.compiled(cp).num_slots(), 2);
    }

    #[test]
    fn compiled_empty_frame_is_static() {
        let mut t = TraceTable::new();
        let id = t.register(FrameDesc::new("leaf"));
        assert!(t.compiled(id).is_static());
        assert_eq!(t.compiled(id).num_slots(), 0);
        assert!(t.compiled(id).ptr_bitmap().is_empty());
        assert!(t.compiled(id).ptr_slots().is_empty());
    }

    #[test]
    fn trace_admits() {
        use crate::value::Value;
        use tilgc_mem::Addr;
        assert!(Trace::Pointer.admits(Value::Ptr(Addr::NULL)));
        assert!(!Trace::Pointer.admits(Value::Int(1)));
        assert!(Trace::NonPointer.admits(Value::Real(2.0)));
        assert!(!Trace::NonPointer.admits(Value::Ptr(Addr::new(8))));
        assert!(Trace::Compute(TypeLoc::Slot(0)).admits(Value::Int(1)));
        assert!(Trace::CalleeSave(Reg::new(0)).admits(Value::Ptr(Addr::new(8))));
    }

    #[test]
    fn type_word_interpretation() {
        assert!(type_word_is_pointer(TYPE_BOXED as u64));
        assert!(!type_word_is_pointer(TYPE_UNBOXED as u64));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_out_of_range_panics() {
        let _ = Reg::new(32);
    }
}
