//! TIL-style runtime substrate for the `tilgc` collectors.
//!
//! This crate models the runtime system of the TIL Standard ML compiler as
//! described in *Generational Stack Collection and Profile-Driven
//! Pretenuring* (Cheng, Harper, Lee; PLDI 1998), §2:
//!
//! * an activation-record [`Stack`] whose frames are described by
//!   compiler-emitted [trace tables](trace) — with the four trace kinds of
//!   §2.3 (pointer, non-pointer, callee-save, compute) that force the
//!   collector's stack scan to be two-pass;
//! * the *stack marker* machinery of §5: markers placed by the collector,
//!   stubs fired by returns, and the exception watermark `M`;
//! * [write barriers](barrier): the sequential store buffer the paper
//!   uses, plus the card-marking alternative it recommends for
//!   update-heavy programs;
//! * exception [handler chains](HandlerChain) with both §5 bookkeeping
//!   variants;
//! * the [`Collector`] interface that the collectors in `tilgc-core`
//!   implement, and the [`Vm`] facade benchmark programs are written
//!   against;
//! * the cycle [cost model](CostModel) and [statistics](GcStats) that regenerate
//!   the paper's tables, and the [heap-profile data](profile_data) behind
//!   Figure 2 and pretenuring.
//!
//! See the module documentation of [`Vm`] for the rooting discipline
//! programs must follow.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod barrier;
mod collector;
mod cost;
pub mod driver;
mod handlers;
mod mutator;
pub mod profile_data;
mod registers;
mod sites;
pub mod stack;
mod stats;
pub mod trace;
mod value;
mod vm;

pub use barrier::{BarrierEntry, WriteBarrier};
pub use collector::{AllocShape, CollectReason, CollectionInspection, Collector};
pub use cost::CostModel;
pub use driver::{OpDriver, StepOutcome, VmOp};
pub use handlers::{HandlerChain, RaiseBookkeeping};
pub use mutator::MutatorState;
pub use profile_data::{HeapProfile, SiteProfile};
pub use registers::RegisterFile;
pub use sites::SiteRegistry;
pub use stack::{Frame, PopEvent, Stack, StackStats};
pub use stats::{GcStats, MutatorStats};
pub use trace::{
    type_word_is_pointer, CompiledTrace, DescId, FrameDesc, Reg, RegEffect, Trace, TraceTable,
    TypeLoc, NUM_REGS, TYPE_BOXED, TYPE_UNBOXED,
};
pub use value::{ShadowTag, Value};
pub use vm::{HeapOverflow, RaiseOutcome, Vm, VmExit};

// Telemetry: the recorder lives in `MutatorState` so collectors can emit
// events; re-exported here so callers need not depend on `tilgc-obs`
// directly for the common cases.
pub use tilgc_obs::{Event, GcPhase, NullRecorder, Recorder, RingRecorder};
