//! The `Vm` facade: the API benchmark programs are written against.
//!
//! A `Vm` couples a [`MutatorState`] with a [`Collector`]. Programs
//! allocate through it, keep their live pointers in *frame slots* (never
//! in host-language locals across an allocation — any allocation may move
//! objects), and mirror their call structure as pushed/popped frames so
//! the collector sees a realistic activation-record stack.
//!
//! # The rooting discipline
//!
//! Because every collector here is a *moving* collector, an [`Addr`] held
//! outside the VM goes stale at the next collection. The contract is the
//! one real compiled code obeys:
//!
//! * values that must survive an allocation live in frame slots (or
//!   registers) declared by the frame's [`FrameDesc`];
//! * an `Addr` read out of a slot may be used only up to the next
//!   allocation; afterwards re-read it from the slot.
//!
//! Allocation operands are safe by construction: they are staged in an
//! internal buffer that the collector treats as roots, the way argument
//! registers would be.
//!
//! Violations do not go quietly: vacated spaces are poisoned in debug
//! builds and the heap verifier in `tilgc-core` rejects dangling
//! addresses.

use std::fmt;

use tilgc_mem::{object, Addr, GcError, Header, Memory, SiteId, MAX_RECORD_FIELDS};

use crate::collector::{AllocShape, CollectReason, Collector};
use crate::handlers::RaiseBookkeeping;
use crate::mutator::MutatorState;
use crate::profile_data::HeapProfile;
use crate::stack::PopEvent;
use crate::stats::{GcStats, MutatorStats};
use crate::trace::{DescId, FrameDesc, Reg};
use crate::value::{ShadowTag, Value};

/// Result of [`Vm::raise`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RaiseOutcome {
    /// The exception was caught; the stack has been unwound to
    /// `handler_depth` frames and control belongs to the handler.
    Caught {
        /// Stack depth after unwinding.
        handler_depth: usize,
    },
    /// No handler was installed; the stack is untouched.
    Uncaught,
}

/// The guest-visible face of an out-of-memory condition.
///
/// When a collector's escalation ladder gives up, the VM raises through
/// the ordinary exception machinery — exactly as SML's `Overflow` would
/// surface — and returns this from the allocation entry point. `outcome`
/// tells the caller whether a handler caught the raise (the guest resumes
/// at the handler, the stack already unwound) or not (the program is dead;
/// terminate with [`VmExit::OutOfMemory`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HeapOverflow {
    /// The typed verdict from the collector.
    pub error: GcError,
    /// What the raise through the handler chain did.
    pub outcome: RaiseOutcome,
}

impl fmt::Display for HeapOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.outcome {
            RaiseOutcome::Caught { handler_depth } => write!(
                f,
                "heap overflow caught at depth {handler_depth}: {}",
                self.error
            ),
            RaiseOutcome::Uncaught => write!(f, "uncaught heap overflow: {}", self.error),
        }
    }
}

impl std::error::Error for HeapOverflow {}

/// A clean, panic-free reason for ending a guest program's run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum VmExit {
    /// The heap budget was exhausted and no guest handler was installed.
    OutOfMemory(GcError),
}

impl fmt::Display for VmExit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmExit::OutOfMemory(e) => write!(f, "guest terminated: {e}"),
        }
    }
}

impl std::error::Error for VmExit {}

/// A running TIL-style virtual machine: mutator state plus a collector.
///
/// # Example
///
/// ```no_run
/// use tilgc_runtime::{Vm, FrameDesc, Trace, Value};
///
/// # fn collector() -> Box<dyn tilgc_runtime::Collector> { unimplemented!() }
/// let mut vm = Vm::new(collector());
/// let site = vm.site("example::pair");
/// let d = vm.register_frame(FrameDesc::new("example").slot(Trace::Pointer));
/// vm.push_frame(d);
/// let pair = vm.alloc_record(site, &[Value::Int(1), Value::Int(2)]).unwrap();
/// vm.set_slot(0, Value::Ptr(pair));
/// vm.pop_frame();
/// ```
pub struct Vm {
    m: MutatorState,
    gc: Box<dyn Collector>,
}

impl std::fmt::Debug for Vm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Vm")
            .field("collector", &self.gc.name())
            .field("depth", &self.m.stack.depth())
            .finish()
    }
}

impl Vm {
    /// Creates a VM over the given collector with default mutator state.
    pub fn new(collector: Box<dyn Collector>) -> Vm {
        Vm {
            m: MutatorState::new(),
            gc: collector,
        }
    }

    /// Creates a VM with custom mutator state (barrier choice, cost
    /// model, raise bookkeeping, ...).
    pub fn with_mutator(mutator: MutatorState, collector: Box<dyn Collector>) -> Vm {
        Vm {
            m: mutator,
            gc: collector,
        }
    }

    // ----- introspection ---------------------------------------------------

    /// The mutator state (stack, registers, statistics, ...).
    pub fn mutator(&self) -> &MutatorState {
        &self.m
    }

    /// Mutable access to the mutator state.
    pub fn mutator_mut(&mut self) -> &mut MutatorState {
        &mut self.m
    }

    /// The collector.
    pub fn collector(&self) -> &dyn Collector {
        &*self.gc
    }

    /// The simulated memory (read-only).
    pub fn mem(&self) -> &Memory {
        self.gc.memory()
    }

    /// Collector statistics.
    pub fn gc_stats(&self) -> &GcStats {
        self.gc.gc_stats()
    }

    /// Mutator statistics.
    pub fn mutator_stats(&self) -> &MutatorStats {
        &self.m.stats
    }

    /// Current stack depth.
    pub fn depth(&self) -> usize {
        self.m.stack.depth()
    }

    // ----- registration ----------------------------------------------------

    /// Registers (or looks up) an allocation site by name.
    pub fn site(&mut self, name: &str) -> SiteId {
        self.m.sites.register(name)
    }

    /// Registers a frame descriptor.
    pub fn register_frame(&mut self, desc: FrameDesc) -> DescId {
        self.m.traces.register(desc)
    }

    // ----- frames ------------------------------------------------------------

    /// Pushes an activation record described by `desc`, spilling its
    /// callee-save registers into the declared slots. Slots declared
    /// [`Trace::Pointer`](crate::Trace::Pointer) start as null pointers
    /// (the frame is zeroed, and the layout says they are pointer slots).
    pub fn push_frame(&mut self, desc: DescId) {
        let d = self.m.traces.desc(desc);
        let num_slots = d.num_slots();
        let spills: Vec<(usize, Reg)> = d.callee_saves().collect();
        let ptr_slots: Vec<usize> = d
            .slot_traces()
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(t, crate::Trace::Pointer))
            .map(|(i, _)| i)
            .collect();
        let push_cost = self.m.cost.frame_push;
        self.m.stack.push(desc, num_slots);
        for i in ptr_slots {
            self.m.stack.top_mut().set_word_tagged(i, 0, ShadowTag::Ptr);
        }
        for (slot, reg) in spills {
            let word = self.m.regs.word(reg);
            let tag = self.m.regs.shadow(reg);
            self.m.stack.top_mut().set_word_tagged(slot, word, tag);
        }
        self.m.charge(push_cost);
    }

    /// Pops the top activation record, restoring its callee-save
    /// registers from the spill slots.
    ///
    /// # Panics
    ///
    /// Panics if the stack is empty.
    pub fn pop_frame(&mut self) {
        let top = self.m.stack.top();
        let desc = top.desc();
        let d = self.m.traces.desc(desc);
        let restores: Vec<(usize, Reg)> = d.callee_saves().collect();
        for &(slot, reg) in &restores {
            let word = self.m.stack.top().word(slot);
            let tag = self.m.stack.top().shadow(slot);
            self.m.regs.set_word_tagged(reg, word, tag);
        }
        let PopEvent { fired_marker, .. } = self.m.stack.pop();
        let mut cost = self.m.cost.frame_pop;
        if fired_marker {
            cost += self.m.cost.marker_fire;
        }
        self.m.charge(cost);
    }

    /// Writes a typed value into slot `i` of the top frame.
    ///
    /// # Panics
    ///
    /// Panics (when shadow checking is on) if the slot's declared trace
    /// does not admit the value — e.g. storing a pointer into a
    /// `NonPointer` slot, which in the real system would hide a root from
    /// the collector.
    pub fn set_slot(&mut self, i: usize, value: Value) {
        if self.m.check_shadows {
            let trace = self.m.traces.desc(self.m.stack.top().desc()).slot_trace(i);
            assert!(
                trace.admits(value),
                "slot {i} with trace {trace:?} cannot hold {value:?}"
            );
        }
        self.m.stack.top_mut().set(i, value);
    }

    /// Raw word in slot `i` of the top frame.
    pub fn slot_word(&self, i: usize) -> u64 {
        self.m.stack.top().word(i)
    }

    /// Pointer in slot `i` of the top frame.
    ///
    /// # Panics
    ///
    /// Panics in checked mode if the slot does not currently hold a
    /// pointer.
    pub fn slot_ptr(&self, i: usize) -> Addr {
        if self.m.check_shadows {
            assert_eq!(
                self.m.stack.top().shadow(i),
                ShadowTag::Ptr,
                "slot {i} read as pointer but holds a non-pointer"
            );
        }
        Addr::new(self.m.stack.top().word(i) as u32)
    }

    /// Integer in slot `i` of the top frame.
    pub fn slot_int(&self, i: usize) -> i64 {
        self.m.stack.top().word(i) as i64
    }

    /// Double in slot `i` of the top frame.
    pub fn slot_f64(&self, i: usize) -> f64 {
        f64::from_bits(self.m.stack.top().word(i))
    }

    /// The value in slot `i`, decoded via its shadow tag (pointers come
    /// back as `Value::Ptr`, everything else as `Value::Int`).
    pub fn slot_value(&self, i: usize) -> Value {
        let word = self.m.stack.top().word(i);
        match self.m.stack.top().shadow(i) {
            ShadowTag::Ptr => Value::from_ptr_word(word),
            ShadowTag::NonPtr => Value::from_int_word(word),
        }
    }

    /// Writes a typed value into a register.
    pub fn set_reg(&mut self, reg: Reg, value: Value) {
        self.m.regs.set(reg, value);
    }

    /// Pointer in register `reg`.
    ///
    /// # Panics
    ///
    /// Panics in checked mode if the register holds a non-pointer.
    pub fn reg_ptr(&self, reg: Reg) -> Addr {
        if self.m.check_shadows {
            assert_eq!(
                self.m.regs.shadow(reg),
                ShadowTag::Ptr,
                "register {reg} is not a pointer"
            );
        }
        Addr::new(self.m.regs.word(reg) as u32)
    }

    /// Integer in register `reg`.
    pub fn reg_int(&self, reg: Reg) -> i64 {
        self.m.regs.word(reg) as i64
    }

    // ----- allocation --------------------------------------------------------

    /// Allocates a record; the pointer mask is derived from the field
    /// values.
    ///
    /// # Errors
    ///
    /// Returns [`HeapOverflow`] if the heap budget is exhausted even
    /// after the collector's full escalation ladder; the raise through
    /// the guest handler chain has already happened (see
    /// [`HeapOverflow::outcome`]).
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_RECORD_FIELDS`] fields are given.
    pub fn alloc_record(&mut self, site: SiteId, fields: &[Value]) -> Result<Addr, HeapOverflow> {
        assert!(
            fields.len() <= MAX_RECORD_FIELDS,
            "record of {} fields",
            fields.len()
        );
        let mut mask = 0u32;
        self.m.alloc_buf.clear();
        self.m.alloc_buf_ptr_mask = 0;
        for (i, v) in fields.iter().enumerate() {
            if v.is_pointer() {
                mask |= 1 << i;
                self.m.alloc_buf_ptr_mask |= 1 << i;
            }
            self.m.alloc_buf.push(v.to_word());
        }
        let shape = AllocShape::Record {
            site,
            len: fields.len(),
            mask,
        };
        self.pre_alloc(&shape);
        self.m.stats.record_bytes += shape.size_bytes() as u64;
        self.finish_alloc(shape)
    }

    /// Allocates a pointer array filled with `init`.
    ///
    /// # Errors
    ///
    /// Returns [`HeapOverflow`] on budget exhaustion, as
    /// [`alloc_record`](Vm::alloc_record) does.
    pub fn alloc_ptr_array(
        &mut self,
        site: SiteId,
        len: usize,
        init: Addr,
    ) -> Result<Addr, HeapOverflow> {
        self.m.alloc_buf.clear();
        self.m.alloc_buf.push(u64::from(init.raw()));
        self.m.alloc_buf_ptr_mask = 1;
        let shape = AllocShape::PtrArray { site, len };
        self.pre_alloc(&shape);
        self.m.stats.ptr_array_bytes += shape.size_bytes() as u64;
        self.finish_alloc(shape)
    }

    /// Allocates a zero-filled raw array of `len_bytes` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`HeapOverflow`] on budget exhaustion, as
    /// [`alloc_record`](Vm::alloc_record) does.
    pub fn alloc_raw_array(
        &mut self,
        site: SiteId,
        len_bytes: usize,
    ) -> Result<Addr, HeapOverflow> {
        self.m.alloc_buf.clear();
        self.m.alloc_buf_ptr_mask = 0;
        let shape = AllocShape::RawArray { site, len_bytes };
        self.pre_alloc(&shape);
        self.m.stats.raw_array_bytes += shape.size_bytes() as u64;
        self.finish_alloc(shape)
    }

    fn pre_alloc(&mut self, shape: &AllocShape) {
        let words = shape.size_words() as u64;
        let cost = self.m.cost.alloc_base + self.m.cost.alloc_per_word * words;
        self.m.charge(cost);
        self.m.stats.alloc_bytes += shape.size_bytes() as u64;
        self.m.stats.alloc_objects += 1;
    }

    /// Hands the staged request to the collector; a typed refusal is
    /// raised through the handler chain as an SML-style heap overflow.
    fn finish_alloc(&mut self, shape: AllocShape) -> Result<Addr, HeapOverflow> {
        // Allocation is a GC-possible point: the collector may run
        // inside `alloc`, reading its time-to-safepoint as the client
        // cycles since the previous poll; the poll after it starts the
        // next interval. Observational only — no cycles charged.
        let result = match self.gc.alloc(&mut self.m, shape) {
            Ok(addr) => Ok(addr),
            Err(error) => {
                let outcome = self.raise();
                Err(HeapOverflow { error, outcome })
            }
        };
        self.m.poll_safepoint();
        result
    }

    // ----- heap access ---------------------------------------------------------

    /// Header of the object at `obj`.
    pub fn header(&self, obj: Addr) -> Header {
        object::header(self.gc.memory(), obj)
    }

    /// Loads pointer field `i` of `obj`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the header says field `i` is not a
    /// pointer.
    pub fn load_ptr(&mut self, obj: Addr, i: usize) -> Addr {
        debug_assert!(
            object::header(self.gc.memory(), obj).field_is_pointer(i),
            "load_ptr of non-pointer field {i} of {obj}"
        );
        self.m.charge(self.m.cost.heap_access);
        object::ptr_field(self.gc.memory(), obj, i)
    }

    /// Loads integer field `i` of `obj`.
    pub fn load_int(&mut self, obj: Addr, i: usize) -> i64 {
        debug_assert!(
            !object::header(self.gc.memory(), obj).field_is_pointer(i),
            "load_int of pointer field {i} of {obj}"
        );
        self.m.charge(self.m.cost.heap_access);
        object::field(self.gc.memory(), obj, i) as i64
    }

    /// Loads double element `i` of a raw array, or an unboxed float field
    /// of a record (TIL does not always box floats, §2.2).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the field is a pointer field.
    pub fn load_f64(&mut self, obj: Addr, i: usize) -> f64 {
        debug_assert!(
            !object::header(self.gc.memory(), obj).field_is_pointer(i),
            "load_f64 of pointer field {i} of {obj}"
        );
        self.m.charge(self.m.cost.heap_access);
        object::f64_elem(self.gc.memory(), obj, i)
    }

    /// Loads byte `i` of a raw array.
    pub fn load_byte(&mut self, obj: Addr, i: usize) -> u8 {
        self.m.charge(self.m.cost.heap_access);
        object::byte(self.gc.memory(), obj, i)
    }

    /// Stores a pointer into field `i` of `obj`, recording the update in
    /// the write barrier (§2.1's "pointer updates").
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the header says field `i` is not a
    /// pointer field.
    pub fn store_ptr(&mut self, obj: Addr, i: usize, value: Addr) {
        debug_assert!(
            object::header(self.gc.memory(), obj).field_is_pointer(i),
            "store_ptr into non-pointer field {i} of {obj}"
        );
        let record = if self.m.barrier.dedups_objects() {
            // Object-marking barrier: the side dirty bitmap deduplicates
            // repeated updates to the same object. One branch-free
            // test-and-set (load, OR, store, bit-test) replaces the old
            // header read-modify-write with its taken/not-taken branch.
            !self.gc.memory_mut().dirty_test_and_set(obj)
        } else {
            true
        };
        if record {
            self.m.barrier.record(obj, object::field_addr(obj, i));
        }
        self.m.stats.pointer_updates += 1;
        self.m
            .charge(self.m.cost.heap_access + self.m.cost.barrier_record);
        object::set_field(self.gc.memory_mut(), obj, i, u64::from(value.raw()));
    }

    /// Stores an integer into field `i` of `obj` (no barrier needed, as
    /// the paper notes).
    pub fn store_int(&mut self, obj: Addr, i: usize, value: i64) {
        debug_assert!(
            !object::header(self.gc.memory(), obj).field_is_pointer(i),
            "store_int into pointer field {i} of {obj}"
        );
        self.m.charge(self.m.cost.heap_access);
        object::set_field(self.gc.memory_mut(), obj, i, value as u64);
    }

    /// Stores a double into element `i` of a raw array or an unboxed
    /// float field of a record (no barrier — floats are not pointers).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the field is a pointer field.
    pub fn store_f64(&mut self, obj: Addr, i: usize, value: f64) {
        debug_assert!(
            !object::header(self.gc.memory(), obj).field_is_pointer(i),
            "store_f64 into pointer field {i} of {obj}"
        );
        self.m.charge(self.m.cost.heap_access);
        object::set_f64_elem(self.gc.memory_mut(), obj, i, value);
    }

    /// Stores a byte into a raw array.
    pub fn store_byte(&mut self, obj: Addr, i: usize, value: u8) {
        self.m.charge(self.m.cost.heap_access);
        object::set_byte(self.gc.memory_mut(), obj, i, value);
    }

    // ----- exceptions ---------------------------------------------------------

    /// Installs an exception handler anchored at the current frame.
    pub fn push_handler(&mut self) {
        let depth = self.m.stack.depth();
        self.m.handlers.push(depth);
    }

    /// Removes the innermost handler on normal exit from its scope.
    ///
    /// # Panics
    ///
    /// Panics if no handler is installed.
    pub fn pop_handler(&mut self) {
        self.m.handlers.pop();
    }

    /// Raises an exception: unwinds to the innermost handler.
    ///
    /// With [`RaiseBookkeeping::Watermark`] the stack watermark `M` is
    /// updated now; with [`RaiseBookkeeping::Deferred`] the record lands
    /// on the handler chain for the collector to find.
    pub fn raise(&mut self) -> RaiseOutcome {
        let Some(target) = self.m.handlers.raise() else {
            return RaiseOutcome::Uncaught;
        };
        let mut cost = self.m.cost.raise_base;
        match self.m.raise_mode {
            RaiseBookkeeping::Watermark => {
                self.m.stack.unwind_for_raise(target);
                cost += self.m.cost.raise_watermark;
            }
            RaiseBookkeeping::Deferred => {
                self.m.stack.unwind_for_raise_silent(target);
            }
        }
        self.m.charge(cost);
        RaiseOutcome::Caught {
            handler_depth: target,
        }
    }

    // ----- collection control ---------------------------------------------------

    /// Forces a collection.
    pub fn gc_now(&mut self) {
        self.gc.collect(&mut self.m, CollectReason::Forced);
        self.m.poll_safepoint();
    }

    /// Forces a major collection (for generational collectors).
    pub fn gc_major(&mut self) {
        self.gc.collect(&mut self.m, CollectReason::ForcedMajor);
        self.m.poll_safepoint();
    }

    /// Ends the run: final collector bookkeeping (profile flush, ...).
    pub fn finish(&mut self) {
        self.gc.finish(&mut self.m);
    }

    /// Extracts the heap profile, if the collector gathered one.
    pub fn take_profile(&mut self) -> Option<HeapProfile> {
        self.gc.take_profile()
    }

    // ----- telemetry -------------------------------------------------------------

    /// Installs a telemetry recorder; collectors emit per-collection
    /// events through it. The default is the disabled
    /// [`NullRecorder`](tilgc_obs::NullRecorder), under which no events
    /// are produced and no simulated cycles are charged.
    pub fn set_recorder(&mut self, recorder: Box<dyn tilgc_obs::Recorder>) {
        self.m.recorder = recorder;
    }

    /// The installed telemetry recorder (e.g. to drain a
    /// [`RingRecorder`](tilgc_obs::RingRecorder) after a run).
    pub fn recorder_mut(&mut self) -> &mut dyn tilgc_obs::Recorder {
        &mut *self.m.recorder
    }
}
