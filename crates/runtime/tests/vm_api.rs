//! Behavioural tests of the `Vm` facade against a minimal test collector,
//! exercising the runtime substrate independently of `tilgc-core`: frame
//! push/pop with callee-save spill/restore, slot/trace validation,
//! barriers, exceptions, and allocation staging.

use tilgc_mem::{object, Addr, Memory, Space};
use tilgc_runtime::{
    AllocShape, CollectReason, Collector, FrameDesc, GcStats, MutatorState, RaiseOutcome, Reg,
    ShadowTag, Trace, Value, Vm,
};

/// A bump-only collector that never collects — the runtime substrate can
/// be tested without any GC behaviour.
struct BumpCollector {
    mem: Memory,
    space: Space,
    stats: GcStats,
}

impl BumpCollector {
    fn new() -> BumpCollector {
        let mut mem = Memory::with_capacity_words(1 << 20);
        let space = Space::new(mem.reserve((1 << 20) - 16).expect("reserve"));
        BumpCollector {
            mem,
            space,
            stats: GcStats::default(),
        }
    }
}

impl Collector for BumpCollector {
    fn name(&self) -> &'static str {
        "bump"
    }

    fn memory(&self) -> &Memory {
        &self.mem
    }

    fn memory_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    fn alloc(
        &mut self,
        m: &mut MutatorState,
        shape: AllocShape,
    ) -> Result<Addr, tilgc_mem::GcError> {
        let addr = self
            .space
            .alloc(shape.size_words())
            .expect("bump space exhausted");
        match shape {
            AllocShape::Record { site, len, mask } => {
                let h = tilgc_mem::Header::record(len, mask).expect("valid");
                object::set_header(&mut self.mem, addr, h);
                self.mem.set_site(addr, site);
                for (i, &w) in m.alloc_buf.iter().enumerate().take(len) {
                    object::set_field(&mut self.mem, addr, i, w);
                }
            }
            AllocShape::PtrArray { site, len } => {
                let h = tilgc_mem::Header::ptr_array(len).expect("valid");
                object::set_header(&mut self.mem, addr, h);
                self.mem.set_site(addr, site);
                let init = m.alloc_buf.first().copied().unwrap_or(0);
                for i in 0..len {
                    object::set_field(&mut self.mem, addr, i, init);
                }
            }
            AllocShape::RawArray { site, len_bytes } => {
                let h = tilgc_mem::Header::raw_array(len_bytes).expect("valid");
                object::set_header(&mut self.mem, addr, h);
                self.mem.set_site(addr, site);
                for i in 0..h.payload_words() {
                    object::set_field(&mut self.mem, addr, i, 0);
                }
            }
        }
        Ok(addr)
    }

    fn collect(&mut self, _m: &mut MutatorState, _reason: CollectReason) {}

    fn gc_stats(&self) -> &GcStats {
        &self.stats
    }

    fn finish(&mut self, _m: &mut MutatorState) {}

    fn take_profile(&mut self) -> Option<tilgc_runtime::HeapProfile> {
        None
    }

    fn last_inspection(&self) -> Option<&tilgc_runtime::CollectionInspection> {
        None
    }
}

fn vm() -> Vm {
    Vm::new(Box::new(BumpCollector::new()))
}

#[test]
fn callee_save_spills_at_push_and_restores_at_pop() {
    let mut vm = vm();
    let site = vm.site("t::x");
    let callee = vm.register_frame(
        FrameDesc::new("callee")
            .slot(Trace::CalleeSave(Reg::new(9)))
            .def_pointer(Reg::new(9)),
    );
    // The caller leaves a pointer in $9...
    let obj = vm.alloc_record(site, &[Value::Int(5)]).unwrap();
    vm.set_reg(Reg::new(9), Value::Ptr(obj));
    // ...the callee spills it, clobbers the register, and the pop restores.
    vm.push_frame(callee);
    assert_eq!(vm.slot_word(0), u64::from(obj.raw()), "spilled at entry");
    assert_eq!(vm.mutator().stack.top().shadow(0), ShadowTag::Ptr);
    let other = vm.alloc_record(site, &[Value::Int(6)]).unwrap();
    vm.set_reg(Reg::new(9), Value::Ptr(other));
    vm.pop_frame();
    assert_eq!(vm.reg_ptr(Reg::new(9)), obj, "restored at exit");
}

#[test]
fn pointer_slots_start_as_null_pointers() {
    let mut vm = vm();
    let d = vm.register_frame(
        FrameDesc::new("f")
            .slot(Trace::Pointer)
            .slot(Trace::NonPointer),
    );
    vm.push_frame(d);
    assert!(vm.slot_ptr(0).is_null());
    assert_eq!(vm.mutator().stack.top().shadow(0), ShadowTag::Ptr);
    assert_eq!(vm.mutator().stack.top().shadow(1), ShadowTag::NonPtr);
}

#[test]
#[should_panic(expected = "cannot hold")]
fn trace_validation_rejects_pointer_in_int_slot() {
    let mut vm = vm();
    let site = vm.site("t::x");
    let d = vm.register_frame(FrameDesc::new("f").slot(Trace::NonPointer));
    vm.push_frame(d);
    let obj = vm.alloc_record(site, &[Value::Int(1)]).unwrap();
    vm.set_slot(0, Value::Ptr(obj)); // hides a root — must be rejected
}

#[test]
fn alloc_buffer_stages_operands() {
    let mut vm = vm();
    let site = vm.site("t::pair");
    let a = vm.alloc_record(site, &[Value::Int(1)]).unwrap();
    let b = vm
        .alloc_record(site, &[Value::Ptr(a), Value::Int(2), Value::Real(0.5)])
        .unwrap();
    assert_eq!(vm.load_ptr(b, 0), a);
    assert_eq!(vm.load_int(b, 1), 2);
    assert_eq!(vm.load_f64(b, 2), 0.5);
    // Mask derived from the values: only field 0 is a pointer.
    assert!(vm.header(b).field_is_pointer(0));
    assert!(!vm.header(b).field_is_pointer(1));
}

#[test]
fn stores_charge_barrier_and_stats() {
    let mut vm = vm();
    let site = vm.site("t::arr");
    let target = vm.alloc_record(site, &[Value::Int(9)]).unwrap();
    let arr = vm.alloc_ptr_array(site, 3, Addr::NULL).unwrap();
    vm.store_ptr(arr, 1, target);
    vm.store_ptr(arr, 1, target);
    assert_eq!(vm.mutator_stats().pointer_updates, 2);
    assert_eq!(vm.mutator().barrier.pending(), 2, "SSB keeps duplicates");
    assert_eq!(vm.load_ptr(arr, 1), target);
    // Integer stores are unbarriered.
    vm.store_int(target, 0, 11);
    assert_eq!(vm.mutator_stats().pointer_updates, 2);
}

#[test]
fn raise_unwinds_to_handler_and_consumes_it() {
    let mut vm = vm();
    let d = vm.register_frame(FrameDesc::new("f").slot(Trace::NonPointer));
    vm.push_frame(d);
    vm.push_handler();
    for _ in 0..5 {
        vm.push_frame(d);
    }
    assert_eq!(vm.depth(), 6);
    assert_eq!(vm.raise(), RaiseOutcome::Caught { handler_depth: 1 });
    assert_eq!(vm.depth(), 1);
    // The handler is consumed: a second raise is uncaught and leaves the
    // stack alone.
    assert_eq!(vm.raise(), RaiseOutcome::Uncaught);
    assert_eq!(vm.depth(), 1);
}

#[test]
fn nested_handlers_unwind_innermost_first() {
    let mut vm = vm();
    let d = vm.register_frame(FrameDesc::new("f").slot(Trace::NonPointer));
    vm.push_frame(d);
    vm.push_handler(); // depth 1
    vm.push_frame(d);
    vm.push_frame(d);
    vm.push_handler(); // depth 3
    vm.push_frame(d);
    assert_eq!(vm.raise(), RaiseOutcome::Caught { handler_depth: 3 });
    assert_eq!(vm.raise(), RaiseOutcome::Caught { handler_depth: 1 });
}

#[test]
fn raw_array_byte_and_f64_access() {
    let mut vm = vm();
    let site = vm.site("t::raw");
    let raw = vm.alloc_raw_array(site, 40).unwrap();
    vm.store_byte(raw, 0, 0x12);
    vm.store_byte(raw, 39, 0x34);
    assert_eq!(vm.load_byte(raw, 0), 0x12);
    assert_eq!(vm.load_byte(raw, 39), 0x34);
    vm.store_f64(raw, 2, -7.25);
    assert_eq!(vm.load_f64(raw, 2), -7.25);
}

#[test]
fn client_cycles_accumulate_per_operation() {
    let mut vm = vm();
    let site = vm.site("t::x");
    let before = vm.mutator_stats().client_cycles;
    let _ = vm.alloc_record(site, &[Value::Int(0)]).unwrap();
    let mid = vm.mutator_stats().client_cycles;
    assert!(mid > before, "allocation charges client cycles");
    let d = vm.register_frame(FrameDesc::new("f").slot(Trace::NonPointer));
    vm.push_frame(d);
    vm.pop_frame();
    assert!(
        vm.mutator_stats().client_cycles > mid,
        "frame ops charge client cycles"
    );
}
