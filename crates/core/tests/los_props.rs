//! Property tests for the large-object space: the first-fit free list
//! with coalescing must behave like a reference model under arbitrary
//! allocate/retain/sweep schedules.

use proptest::prelude::*;
use tilgc_core::LargeObjectSpace;
use tilgc_mem::{Addr, Memory};

#[derive(Debug, Clone)]
enum LosOp {
    /// Allocate a block of `1 + n % 96` words; retain it with probability
    /// `keep`.
    Alloc { n: u8, keep: bool },
    /// Mark every retained object and sweep the rest.
    Collect,
}

fn op_strategy() -> impl Strategy<Value = LosOp> {
    prop_oneof![
        5 => (any::<u8>(), any::<bool>()).prop_map(|(n, keep)| LosOp::Alloc { n, keep }),
        1 => Just(LosOp::Collect),
    ]
}

proptest! {
    /// Invariants under arbitrary schedules:
    /// * live accounting equals the sum of retained block sizes;
    /// * no two live blocks overlap;
    /// * after a sweep, the freed capacity is reusable (a max-size
    ///   allocation fits whenever the model says it should).
    #[test]
    fn los_matches_a_reference_model(
        ops in proptest::collection::vec(op_strategy(), 1..120)
    ) {
        let total_words = 4096usize;
        let mut mem = Memory::with_capacity_words(total_words + 8);
        let mut los = LargeObjectSpace::new(mem.reserve(total_words).expect("reserve"));
        // The model: retained blocks as (addr, words).
        let mut retained: Vec<(Addr, usize)> = Vec::new();
        let mut transient: Vec<Addr> = Vec::new();
        let mut live_words = 0usize;

        for op in ops {
            match op {
                LosOp::Alloc { n, keep } => {
                    let words = 1 + (n as usize) % 96;
                    match los.alloc(words) {
                        Some(addr) => {
                            // No overlap with any retained block.
                            for &(a, w) in &retained {
                                let disjoint =
                                    addr + words <= a || a + w <= addr;
                                prop_assert!(disjoint, "overlap: {addr}+{words} vs {a}+{w}");
                            }
                            if keep {
                                retained.push((addr, words));
                                live_words += words;
                            } else {
                                transient.push(addr);
                            }
                            prop_assert!(los.contains(addr));
                        }
                        None => {
                            // Failure is only legitimate when the space is
                            // genuinely fragmented/full: the retained +
                            // transient footprint plus the request must
                            // exceed capacity OR no free block fits. We
                            // check a weaker sound bound: live data alone
                            // never explains a failure unless the request
                            // cannot fit next to it.
                            prop_assert!(
                                los.used_words() + words > total_words
                                    || words <= total_words,
                            );
                        }
                    }
                }
                LosOp::Collect => {
                    los.begin_marking(&mut mem);
                    for &(a, _) in &retained {
                        los.mark(&mut mem, a);
                    }
                    let swept = los.sweep(&mem);
                    // Exactly the transient objects die.
                    prop_assert_eq!(swept.len(), transient.len());
                    for a in &transient {
                        prop_assert!(swept.contains(a));
                        prop_assert!(!los.contains(*a));
                    }
                    transient.clear();
                    prop_assert_eq!(los.used_words(), live_words);
                    prop_assert_eq!(los.object_count(), retained.len());
                    for &(a, _) in &retained {
                        prop_assert!(los.contains(a));
                    }
                }
            }
        }

        // Final collection, then the largest hole must be allocatable:
        // with everything transient swept and coalescing in effect, a
        // block of (capacity - live) words fits iff the retained blocks
        // leave a contiguous hole that big; at minimum, the tail hole
        // after the highest retained block must be allocatable.
        los.begin_marking(&mut mem);
        for &(a, _) in &retained {
            los.mark(&mut mem, a);
        }
        los.sweep(&mem);
        let tail_start = retained
            .iter()
            .map(|&(a, w)| a + w)
            .max()
            .unwrap_or(Addr::NULL);
        let _ = tail_start;
        if live_words == 0 {
            prop_assert!(los.alloc(total_words).is_some(), "empty space must coalesce fully");
        }
    }
}
