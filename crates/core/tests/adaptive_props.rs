//! Property tests for the online adaptive-pretenuring estimator: its
//! decisions are a pure function of the telemetry stream, and the
//! hysteresis contract (at most one flip per site per cooldown window)
//! holds under arbitrary streams — not just the hand-built ones the unit
//! tests pin.

use std::collections::BTreeMap;

use proptest::prelude::*;
use tilgc_core::{AdaptiveConfig, AdaptivePretenure, PretenurePolicy};
use tilgc_mem::SiteId;
use tilgc_obs::SiteWindow;

/// One collection of telemetry: a major/minor flag and per-site windows.
/// Site ids are drawn from a small pool (0 = UNKNOWN included on
/// purpose) so streams revisit the same sites often enough to flip them.
#[derive(Debug, Clone)]
struct Tick {
    major: bool,
    windows: Vec<(u16, u64, u64, u64)>, // (site, allocs, survived, tenured_live)
}

fn tick_strategy() -> impl Strategy<Value = Tick> {
    let window = (0u16..6, 0u64..200, 0u64..200, 0u64..200);
    (any::<bool>(), proptest::collection::vec(window, 0..6)).prop_map(|(major, mut raw)| {
        // The accumulator hands the estimator at most one window per
        // site, in ascending site order; mimic that.
        raw.sort_by_key(|w| w.0);
        raw.dedup_by_key(|w| w.0);
        Tick {
            major,
            windows: raw,
        }
    })
}

fn to_windows(tick: &Tick) -> Vec<SiteWindow> {
    tick.windows
        .iter()
        .map(|&(site, allocs, survived, tenured_live)| {
            let survived = survived.min(allocs);
            SiteWindow {
                site,
                allocs,
                alloc_bytes: allocs * 8,
                // The census the estimator reads at majors is
                // `copied_objects - survived`.
                copied_objects: survived + tenured_live,
                copied_bytes: (survived + tenured_live) * 8,
                survived,
            }
        })
        .collect()
}

/// Replays `stream` through a fresh estimator and returns the full
/// decision log. `seed_site` 0 means "no static seed policy" (the
/// vendored proptest has no `option::of`, so None is encoded in-band —
/// site 0 is UNKNOWN and could never be seeded anyway).
fn replay(stream: &[Tick], seed_site: u16) -> Vec<(u64, Vec<u16>, Vec<u16>)> {
    let seed = (seed_site != 0).then(|| {
        let s = seed_site;
        let mut p = PretenurePolicy::new();
        p.add_site(SiteId::new(s));
        p
    });
    let mut a = AdaptivePretenure::new(AdaptiveConfig::default(), seed.as_ref());
    let mut log = Vec::new();
    for (gc, tick) in stream.iter().enumerate() {
        let out = a.observe(gc as u64, tick.major, &to_windows(tick));
        if !out.is_empty() {
            log.push((
                gc as u64,
                out.promotions.iter().map(|(s, _)| s.get()).collect(),
                out.demotions.iter().map(|(s, _)| s.get()).collect(),
            ));
        }
    }
    log
}

proptest! {
    /// The same telemetry stream always yields the same promote/demote
    /// sequence — the estimator holds no hidden nondeterministic state.
    #[test]
    fn same_stream_always_yields_same_flip_sequence(
        stream in proptest::collection::vec(tick_strategy(), 1..80),
        seed in 0u16..6,
    ) {
        prop_assert_eq!(replay(&stream, seed), replay(&stream, seed));
    }

    /// Under any stream: no site flips twice within the cooldown, the
    /// UNKNOWN site never flips, and every demotion was preceded by a
    /// matching promotion (or the seed).
    #[test]
    fn flip_contract_holds_under_arbitrary_streams(
        stream in proptest::collection::vec(tick_strategy(), 1..120),
        seed in 0u16..6,
    ) {
        let config = AdaptiveConfig::default();
        let log = replay(&stream, seed);
        let mut last_flip: BTreeMap<u16, u64> = BTreeMap::new();
        let mut pretenured: Vec<u16> = (seed != 0).then_some(seed).into_iter().collect();
        for (gc, promotions, demotions) in log {
            for site in promotions {
                prop_assert!(site != 0, "UNKNOWN site promoted");
                prop_assert!(!pretenured.contains(&site), "promoted twice");
                if let Some(&last) = last_flip.get(&site) {
                    prop_assert!(gc - last >= config.cooldown,
                        "site {} flipped at {} and {}", site, last, gc);
                }
                last_flip.insert(site, gc);
                pretenured.push(site);
            }
            for site in demotions {
                prop_assert!(site != 0, "UNKNOWN site demoted");
                prop_assert!(pretenured.contains(&site),
                    "site {} demoted while on the nursery path", site);
                if let Some(&last) = last_flip.get(&site) {
                    prop_assert!(gc - last >= config.cooldown,
                        "site {} flipped at {} and {}", site, last, gc);
                }
                last_flip.insert(site, gc);
                pretenured.retain(|&s| s != site);
            }
        }
    }
}

/// A pressure-driven forced demotion that lands *during a degraded
/// collection* — the governor demotes mid-cycle while the coordinator
/// is draining a failed parallel section's leftover packets on the
/// serial path — must start the same cooldown window as any other
/// flip. Degradation is invisible to the estimator by design (it only
/// ever sees the collection index the plan passes in), so a site must
/// not oscillate faster just because the collection that demoted it
/// also lost a worker.
#[test]
fn forced_demotion_during_degraded_collection_respects_cooldown() {
    let config = AdaptiveConfig::default();
    let win = |site: u16, allocs: u64, survived: u64| SiteWindow {
        site,
        allocs,
        alloc_bytes: allocs * 8,
        copied_objects: survived,
        copied_bytes: survived * 8,
        survived,
    };
    let mut seed = PretenurePolicy::new();
    seed.add_site(SiteId::new(3));
    let mut a = AdaptivePretenure::new(config, Some(&seed));

    // Collection 10 degrades (worker lost, serial drain); the pressure
    // rung fires inside that same collection and force-demotes site 3.
    let degraded = 10u64;
    a.note_forced_demotion(SiteId::new(3), degraded);
    assert!(!a.is_pretenured(SiteId::new(3)));

    // Perfect survival evidence from the episode's own serial drain and
    // the collections right after it must not re-promote the site
    // inside the cooldown window.
    for gc in degraded..degraded + config.cooldown {
        let out = a.observe(gc, false, &[win(3, 100, 100)]);
        assert!(
            out.promotions.is_empty(),
            "flip at {gc} violates the cooldown of {} started by the \
             mid-degradation demotion",
            config.cooldown
        );
    }

    // Once cooled down and re-proven, the site may flip back.
    let mut promoted = false;
    for gc in degraded + config.cooldown..degraded + 4 * config.cooldown {
        promoted |= !a
            .observe(gc, false, &[win(3, 100, 100)])
            .promotions
            .is_empty();
    }
    assert!(promoted, "site re-promotes once cooled down and re-proven");
}
