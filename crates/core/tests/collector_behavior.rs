//! Scenario tests for the generational collector: write barriers,
//! promotion, large objects, stack markers, pretenuring and exceptions,
//! all through the public `Vm` API.

use tilgc_core::{
    build_vm, verify_vm, vm_snapshot, CollectorKind, GcConfig, MarkerPolicy, Plan, PretenurePolicy,
};
use tilgc_mem::Addr;
use tilgc_runtime::{FrameDesc, MutatorState, RaiseOutcome, Trace, Value, Vm, WriteBarrier};

fn small_config() -> GcConfig {
    GcConfig::new()
        .heap_budget_bytes(256 << 10)
        .nursery_bytes(8 << 10)
}

fn frame_with_ptrs(vm: &mut Vm, n: usize) -> tilgc_runtime::DescId {
    vm.register_frame(FrameDesc::new("test").slots(n, Trace::Pointer))
}

#[test]
fn minor_collections_promote_survivors() {
    let mut vm = build_vm(CollectorKind::Generational, &small_config());
    let site = vm.site("t::cell");
    let d = frame_with_ptrs(&mut vm, 1);
    vm.push_frame(d);
    vm.set_slot(0, Value::NULL);
    // Build a list with interleaved garbage so several minor GCs run.
    for i in 0..200 {
        let tail = vm.slot_ptr(0);
        let cell = vm
            .alloc_record(site, &[Value::Int(i), Value::Ptr(tail)])
            .unwrap();
        vm.set_slot(0, Value::Ptr(cell));
        for _ in 0..50 {
            let _ = vm.alloc_record(site, &[Value::Int(-1), Value::NULL]);
        }
    }
    let stats = vm.gc_stats();
    assert!(
        stats.collections > 3,
        "expected several minor GCs, got {}",
        stats.collections
    );
    let mut cur = vm.slot_ptr(0);
    for expect in (0..200).rev() {
        assert_eq!(vm.load_int(cur, 0), expect);
        cur = vm.load_ptr(cur, 1);
    }
    assert!(cur.is_null());
    verify_vm(&vm);
}

#[test]
fn ssb_catches_old_to_young_stores() {
    let mut vm = build_vm(CollectorKind::Generational, &small_config());
    let site = vm.site("t::node");
    let d = frame_with_ptrs(&mut vm, 2);
    vm.push_frame(d);
    // Allocate an object and force it into the tenured generation.
    let old = vm.alloc_record(site, &[Value::NULL]).unwrap();
    vm.set_slot(0, Value::Ptr(old));
    vm.gc_now();
    let old = vm.slot_ptr(0);
    // Allocate a young object and store it into the old one — the classic
    // old→young reference only the write barrier knows about.
    let young = vm.alloc_record(site, &[Value::NULL]).unwrap();
    vm.store_ptr(old, 0, young);
    // Deliberately do NOT root `young` in a slot; the barrier must keep it.
    vm.gc_now();
    let old = vm.slot_ptr(0);
    let kept = vm.load_ptr(old, 0);
    assert!(!kept.is_null());
    // The promoted young object is a valid, reachable record.
    assert!(vm.load_ptr(kept, 0).is_null());
    assert!(
        vm.gc_stats().barrier_entries > 0,
        "the SSB entry was filtered"
    );
    verify_vm(&vm);
}

#[test]
fn object_mark_barrier_is_equivalent_to_ssb() {
    // Run the same mutation-heavy workload under both barriers; final
    // graphs must match.
    let run = |barrier: WriteBarrier| -> Vec<u64> {
        let mut m = MutatorState::new();
        m.barrier = barrier;
        let mut vm = Vm::with_mutator(
            m,
            tilgc_core::build_collector(CollectorKind::Generational, &small_config()),
        );
        let site = vm.site("t::slotbox");
        let d = frame_with_ptrs(&mut vm, 1);
        vm.push_frame(d);
        let arr = vm.alloc_ptr_array(site, 16, Addr::NULL).unwrap();
        vm.set_slot(0, Value::Ptr(arr));
        vm.gc_now(); // tenure the array
        for round in 0..300 {
            let arr = vm.slot_ptr(0);
            let v = vm.alloc_record(site, &[Value::Int(round)]).unwrap();
            vm.store_ptr(arr, (round % 16) as usize, v);
            for _ in 0..20 {
                let _ = vm.alloc_record(site, &[Value::Int(0)]);
            }
        }
        vm_snapshot(&vm)
    };
    let a = run(WriteBarrier::ssb());
    let b = run(WriteBarrier::object_mark());
    assert_eq!(a, b, "both barriers must preserve the same reachable graph");
}

#[test]
fn object_mark_barrier_dedups_repeated_updates() {
    let mut m = MutatorState::new();
    m.barrier = WriteBarrier::object_mark();
    let mut vm = Vm::with_mutator(
        m,
        tilgc_core::build_collector(CollectorKind::Generational, &small_config()),
    );
    let site = vm.site("t::box");
    let d = frame_with_ptrs(&mut vm, 2);
    vm.push_frame(d);
    let boxed = vm.alloc_ptr_array(site, 4, Addr::NULL).unwrap();
    vm.set_slot(0, Value::Ptr(boxed));
    vm.gc_now();
    let boxed = vm.slot_ptr(0);
    let val = vm.alloc_record(site, &[Value::Int(3)]).unwrap();
    vm.set_slot(1, Value::Ptr(val));
    // 1000 updates to one object → one barrier entry.
    for _ in 0..1000 {
        let val = vm.slot_ptr(1);
        vm.store_ptr(boxed, 0, val);
    }
    assert_eq!(vm.mutator().barrier.pending(), 1);
    assert_eq!(vm.mutator_stats().pointer_updates, 1000);
}

#[test]
fn large_arrays_bypass_the_nursery_and_survive_majors() {
    let config = small_config().large_object_bytes(4 << 10);
    let mut vm = build_vm(CollectorKind::Generational, &config);
    let site = vm.site("t::bigarray");
    let small_site = vm.site("t::small");
    let d = frame_with_ptrs(&mut vm, 1);
    vm.push_frame(d);
    let big = vm.alloc_raw_array(site, 8 << 10).unwrap(); // 8 KB ≥ threshold
    vm.store_byte(big, 1000, 0xaa);
    vm.set_slot(0, Value::Ptr(big));
    let copied_before = vm.gc_stats().copied_bytes;
    vm.gc_major();
    // The large array is never copied.
    assert_eq!(vm.slot_ptr(0), big, "large objects do not move");
    assert_eq!(vm.load_byte(big, 1000), 0xaa);
    let copied_after = vm.gc_stats().copied_bytes;
    assert!(
        copied_after - copied_before < 1024,
        "the 8 KB array must not be copied"
    );
    // Drop the root: the next major sweeps it.
    vm.set_slot(0, Value::NULL);
    vm.gc_major();
    let _ = small_site;
    verify_vm(&vm);
}

#[test]
fn large_ptr_array_keeps_young_initializer_alive() {
    let config = small_config().large_object_bytes(2 << 10);
    let mut vm = build_vm(CollectorKind::Generational, &config);
    let site = vm.site("t::bigptr");
    // The frame declares that it leaves a pointer in $4 — without the
    // declaration the trace tables would (rightly) miss the register root.
    let d = vm.register_frame(FrameDesc::new("losroot").def_pointer(tilgc_runtime::Reg::new(4)));
    vm.push_frame(d);
    vm.set_reg(tilgc_runtime::Reg::new(4), Value::NULL);
    // A young record used as the initializer of a large pointer array.
    let young = vm.alloc_record(site, &[Value::Int(77)]).unwrap();
    let big = vm.alloc_ptr_array(site, 1024, young).unwrap();
    // Only the array references the young record... and nothing roots the
    // array except a register.
    vm.set_reg(tilgc_runtime::Reg::new(4), Value::Ptr(big));
    vm.gc_now();
    let big = vm.reg_ptr(tilgc_runtime::Reg::new(4));
    let kept = vm.load_ptr(big, 0);
    assert_eq!(
        vm.load_int(kept, 0),
        77,
        "initializing store into LOS array kept alive"
    );
    verify_vm(&vm);
}

fn deep_recursion(vm: &mut Vm, d: tilgc_runtime::DescId, site: tilgc_mem::SiteId, depth: usize) {
    vm.push_frame(d);
    let obj = vm.alloc_record(site, &[Value::Int(depth as i64)]).unwrap();
    vm.set_slot(0, Value::Ptr(obj));
    if depth > 0 {
        deep_recursion(vm, d, site, depth - 1);
        // Allocate after the call so every level triggers GCs at varying
        // stack depths.
        for _ in 0..3 {
            let _ = vm.alloc_record(site, &[Value::Int(0)]);
        }
    } else {
        for _ in 0..2000 {
            let _ = vm.alloc_record(site, &[Value::Int(0)]);
        }
    }
    let kept = vm.slot_ptr(0);
    assert_eq!(
        vm.load_int(kept, 0),
        depth as i64,
        "per-frame root survived"
    );
    vm.pop_frame();
}

#[test]
fn stack_markers_cut_frames_scanned_on_deep_stacks() {
    let run = |kind: CollectorKind| -> (u64, u64) {
        let mut vm = build_vm(kind, &small_config());
        let site = vm.site("t::deep");
        let d = frame_with_ptrs(&mut vm, 1);
        deep_recursion(&mut vm, d, site, 300);
        let s = vm.gc_stats();
        (s.frames_scanned, s.collections)
    };
    let (frames_plain, gcs_plain) = run(CollectorKind::Generational);
    let (frames_marked, gcs_marked) = run(CollectorKind::GenerationalStack);
    assert_eq!(
        gcs_plain, gcs_marked,
        "same workload, same collection count"
    );
    assert!(
        frames_marked * 3 < frames_plain,
        "markers should slash frames scanned: {frames_marked} vs {frames_plain}"
    );
}

#[test]
fn exceptions_keep_the_scan_cache_sound() {
    let mut vm = build_vm(CollectorKind::GenerationalStack, &small_config());
    let site = vm.site("t::exn");
    let d = frame_with_ptrs(&mut vm, 1);
    // Build a deep stack with a handler in the middle.
    for i in 0..120 {
        vm.push_frame(d);
        let obj = vm.alloc_record(site, &[Value::Int(i)]).unwrap();
        vm.set_slot(0, Value::Ptr(obj));
        if i == 40 {
            vm.push_handler();
        }
    }
    vm.gc_now(); // scan + markers over 120 frames
                 // Raise: jumps from depth 120 to 41, past the markers in between.
    match vm.raise() {
        RaiseOutcome::Caught { handler_depth } => assert_eq!(handler_depth, 41),
        RaiseOutcome::Uncaught => panic!("handler was installed"),
    }
    // Regrow with fresh frames and different roots.
    for i in 0..60 {
        vm.push_frame(d);
        let obj = vm.alloc_record(site, &[Value::Int(1000 + i)]).unwrap();
        vm.set_slot(0, Value::Ptr(obj));
    }
    vm.gc_now();
    // All 101 frames' roots must be intact; shadow checks inside the scan
    // plus the verifier cover soundness.
    verify_vm(&vm);
    for depth in 0..41 {
        let frame = vm.mutator().stack.frame(depth);
        let addr = Addr::new(frame.word(0) as u32);
        assert!(!addr.is_null());
    }
}

#[test]
fn pretenuring_reduces_copying_and_preserves_the_graph() {
    let run = |policy: Option<PretenurePolicy>| -> (u64, Vec<u64>) {
        let mut config = small_config();
        let kind = if policy.is_some() {
            CollectorKind::GenerationalStackPretenure
        } else {
            CollectorKind::Generational
        };
        if let Some(p) = policy {
            config = config.pretenure(p);
        }
        let mut vm = build_vm(kind, &config);
        let long_site = vm.site("t::longlived");
        let short_site = vm.site("t::shortlived");
        let d = frame_with_ptrs(&mut vm, 1);
        vm.push_frame(d);
        vm.set_slot(0, Value::NULL);
        for i in 0..500 {
            let tail = vm.slot_ptr(0);
            let cell = vm
                .alloc_record(long_site, &[Value::Int(i), Value::Ptr(tail)])
                .unwrap();
            vm.set_slot(0, Value::Ptr(cell));
            for _ in 0..30 {
                let _ = vm.alloc_record(short_site, &[Value::Int(0), Value::NULL]);
            }
        }
        (vm.gc_stats().copied_bytes, vm_snapshot(&vm))
    };

    let (copied_plain, snap_plain) = run(None);
    // Pretenure the long-lived site. Its id must match across runs — site
    // registration order is identical, so recompute it.
    let mut probe = build_vm(CollectorKind::Generational, &small_config());
    let long_site = probe.site("t::longlived");
    let mut policy = PretenurePolicy::new();
    policy.add_site(long_site);
    let (copied_pt, snap_pt) = run(Some(policy));

    assert_eq!(
        snap_plain, snap_pt,
        "pretenuring must not change program results"
    );
    assert!(
        copied_pt * 2 < copied_plain,
        "pretenuring the long-lived site should slash copying: {copied_pt} vs {copied_plain}"
    );
}

#[test]
fn pretenured_objects_with_young_children_are_scanned() {
    let mut probe = build_vm(CollectorKind::Generational, &small_config());
    let pt_site = probe.site("t::pt");
    let mut policy = PretenurePolicy::new();
    policy.add_site(pt_site);
    let config = small_config().pretenure(policy);
    let mut vm = build_vm(CollectorKind::GenerationalStackPretenure, &config);
    let pt_site = vm.site("t::pt");
    let young_site = vm.site("t::young");
    let d = frame_with_ptrs(&mut vm, 1);
    vm.push_frame(d);
    // A young child referenced ONLY from a pretenured (tenured-at-birth)
    // parent: the pretenured-region scan must find it.
    let child = vm.alloc_record(young_site, &[Value::Int(1234)]).unwrap();
    let parent = vm.alloc_record(pt_site, &[Value::Ptr(child)]).unwrap();
    vm.set_slot(0, Value::Ptr(parent));
    assert!(
        vm.gc_stats().pretenured_bytes > 0,
        "parent went straight to tenured"
    );
    vm.gc_now();
    let parent = vm.slot_ptr(0);
    let child = vm.load_ptr(parent, 0);
    assert_eq!(vm.load_int(child, 0), 1234);
    verify_vm(&vm);
}

#[test]
fn forced_major_compacts_tenured_garbage() {
    let mut vm = build_vm(CollectorKind::Generational, &small_config());
    let site = vm.site("t::g");
    let d = frame_with_ptrs(&mut vm, 1);
    vm.push_frame(d);
    // Tenure a chunk of data, then drop it.
    let a = vm.alloc_ptr_array(site, 256, Addr::NULL).unwrap();
    vm.set_slot(0, Value::Ptr(a));
    vm.gc_now();
    let live_with_garbage = vm.gc_stats().last_live_bytes;
    vm.set_slot(0, Value::NULL);
    vm.gc_major();
    let live_after = vm.gc_stats().last_live_bytes;
    assert!(vm.gc_stats().major_collections >= 1);
    assert!(
        live_after < live_with_garbage,
        "major collection reclaims tenured garbage: {live_after} vs {live_with_garbage}"
    );
}

#[test]
fn snapshot_is_stable_across_forced_collections() {
    let mut vm = build_vm(CollectorKind::GenerationalStack, &small_config());
    let site = vm.site("t::stable");
    let d = frame_with_ptrs(&mut vm, 2);
    vm.push_frame(d);
    let arr = vm.alloc_ptr_array(site, 8, Addr::NULL).unwrap();
    vm.set_slot(0, Value::Ptr(arr));
    for i in 0..8 {
        let arr = vm.slot_ptr(0);
        let v = vm.alloc_record(site, &[Value::Int(i)]).unwrap();
        vm.store_ptr(arr, i as usize, v);
    }
    let before = vm_snapshot(&vm);
    vm.gc_now();
    assert_eq!(
        vm_snapshot(&vm),
        before,
        "minor GC preserves the reachable graph"
    );
    vm.gc_major();
    assert_eq!(
        vm_snapshot(&vm),
        before,
        "major GC preserves the reachable graph"
    );
}

#[test]
fn adaptive_mode_is_transparent_and_engages_on_dying_tenured() {
    // A PIA-like workload: retained window that dies shortly after
    // tenuring. The adaptive collector must produce the same result, and
    // its collection mix must differ from the plain generational one
    // (evidence the mode actually engaged).
    let run = |adaptive: bool| {
        let config = GcConfig::new()
            .heap_budget_bytes(256 << 10)
            .nursery_bytes(8 << 10)
            .adaptive_major(adaptive);
        let mut vm = build_vm(CollectorKind::Generational, &config);
        let site = vm.site("t::win");
        let d = frame_with_ptrs(&mut vm, 1);
        vm.push_frame(d);
        vm.set_slot(0, Value::NULL);
        for i in 0..4000 {
            // Keep a sliding window of 40 cells alive.
            let tail = vm.slot_ptr(0);
            let cell = vm
                .alloc_record(site, &[Value::Int(i), Value::Ptr(tail)])
                .unwrap();
            vm.set_slot(0, Value::Ptr(cell));
            if i % 40 == 39 {
                // Truncate: walk 40 cells in and cut.
                let mut cur = vm.slot_ptr(0);
                for _ in 0..39 {
                    cur = vm.load_ptr(cur, 1);
                }
                vm.store_ptr(cur, 1, Addr::NULL);
            }
        }
        let mut h = 0u64;
        let mut cur = vm.slot_ptr(0);
        while !cur.is_null() {
            h = h.wrapping_mul(31).wrapping_add(vm.load_int(cur, 0) as u64);
            cur = vm.load_ptr(cur, 1);
        }
        verify_vm(&vm);
        (
            h,
            vm.gc_stats().major_collections,
            vm.gc_stats().collections,
        )
    };
    let (h_plain, _, _) = run(false);
    let (h_adaptive, majors, collections) = run(true);
    assert_eq!(h_plain, h_adaptive, "adaptive mode changed program results");
    assert!(majors > 0 && collections > 0);
}

#[test]
fn tenure_threshold_ages_objects_through_the_nursery_system() {
    // §7.2 variant: with threshold 3, a live object must survive three
    // minor collections before reaching the tenured generation.
    let config = small_config().tenure_threshold(3);
    let mut vm = build_vm(CollectorKind::Generational, &config);
    let site = vm.site("t::aged");
    let d = frame_with_ptrs(&mut vm, 1);
    vm.push_frame(d);
    let obj = vm.alloc_record(site, &[Value::Int(77)]).unwrap();
    vm.set_slot(0, Value::Ptr(obj));

    let tenured_live = |vm: &tilgc_runtime::Vm| vm.gc_stats().last_live_bytes;
    // Two minors: still young (copied back), nothing tenured.
    vm.gc_now();
    assert_eq!(tenured_live(&vm), 0, "age 1: copied back, not tenured");
    vm.gc_now();
    assert_eq!(tenured_live(&vm), 0, "age 2: copied back, not tenured");
    // Third minor: age reaches the threshold — promoted.
    vm.gc_now();
    assert!(
        tenured_live(&vm) > 0,
        "age 3: promoted to the tenured generation"
    );
    let obj = vm.slot_ptr(0);
    assert_eq!(vm.load_int(obj, 0), 77);
    // Once tenured, minor collections leave it alone.
    let before = vm.slot_ptr(0);
    vm.gc_now();
    assert_eq!(
        vm.slot_ptr(0),
        before,
        "tenured objects do not move at minors"
    );
    verify_vm(&vm);
}

#[test]
fn tenure_threshold_preserves_linked_structures() {
    // The same list workload as the immediate-promotion test, with aging.
    let config = small_config().tenure_threshold(2);
    let mut vm = build_vm(CollectorKind::GenerationalStack, &config);
    let site = vm.site("t::cell");
    let d = frame_with_ptrs(&mut vm, 1);
    vm.push_frame(d);
    vm.set_slot(0, Value::NULL);
    for i in 0..300 {
        let tail = vm.slot_ptr(0);
        let cell = vm
            .alloc_record(site, &[Value::Int(i), Value::Ptr(tail)])
            .unwrap();
        vm.set_slot(0, Value::Ptr(cell));
        for _ in 0..40 {
            let _ = vm.alloc_record(site, &[Value::Int(-1), Value::NULL]);
        }
    }
    assert!(vm.gc_stats().collections > 5);
    let mut cur = vm.slot_ptr(0);
    for expect in (0..300).rev() {
        assert_eq!(vm.load_int(cur, 0), expect);
        cur = vm.load_ptr(cur, 1);
    }
    assert!(cur.is_null());
    verify_vm(&vm);
}

#[test]
fn tenure_threshold_increases_copying_which_pretenuring_removes() {
    // §7.2: "Since objects that are tenured are copied several times
    // before being promoted, pretenuring in such systems is likely to
    // yield an even greater benefit."
    let run = |threshold: u8, pretenure: bool| -> u64 {
        let mut probe = build_vm(CollectorKind::Generational, &small_config());
        let long_site = probe.site("t::long");
        let mut config = small_config().tenure_threshold(threshold);
        if pretenure {
            let mut policy = PretenurePolicy::new();
            policy.add_site(long_site);
            config = config.pretenure(policy);
        }
        let kind = if pretenure {
            CollectorKind::GenerationalStackPretenure
        } else {
            CollectorKind::Generational
        };
        let mut vm = build_vm(kind, &config);
        let long_site = vm.site("t::long");
        let short_site = vm.site("t::short");
        let d = frame_with_ptrs(&mut vm, 1);
        vm.push_frame(d);
        vm.set_slot(0, Value::NULL);
        for i in 0..400 {
            let tail = vm.slot_ptr(0);
            let cell = vm
                .alloc_record(long_site, &[Value::Int(i), Value::Ptr(tail)])
                .unwrap();
            vm.set_slot(0, Value::Ptr(cell));
            for _ in 0..30 {
                let _ = vm.alloc_record(short_site, &[Value::Int(0), Value::NULL]);
            }
        }
        vm.gc_stats().copied_bytes
    };
    let immediate = run(0, false);
    let aged = run(3, false);
    assert!(
        aged > immediate,
        "threshold tenuring copies survivors repeatedly: {aged} vs {immediate}"
    );
    let aged_pretenured = run(3, true);
    assert!(
        aged_pretenured * 2 < aged,
        "pretenuring removes the repeated copies: {aged_pretenured} vs {aged}"
    );
}

#[test]
fn pointer_free_pretenured_objects_skip_the_region_scan() {
    // §7.2: pretenured raw arrays and pointer-free records need no scan.
    let mut probe = build_vm(CollectorKind::Generational, &small_config());
    let raw_site = probe.site("t::rawdata");
    let flat_site = probe.site("t::flat");
    let mut policy = PretenurePolicy::new();
    policy.add_site(raw_site);
    policy.add_site(flat_site);
    let config = small_config().pretenure(policy);
    let mut vm = build_vm(CollectorKind::GenerationalStackPretenure, &config);
    let raw_site = vm.site("t::rawdata");
    let flat_site = vm.site("t::flat");
    let d = frame_with_ptrs(&mut vm, 2);
    vm.push_frame(d);
    let raw = vm.alloc_raw_array(raw_site, 256).unwrap();
    vm.set_slot(0, Value::Ptr(raw));
    let flat = vm
        .alloc_record(flat_site, &[Value::Int(1), Value::Real(2.5)])
        .unwrap();
    vm.set_slot(1, Value::Ptr(flat));
    assert!(
        vm.gc_stats().pretenured_bytes > 0,
        "both went straight to tenured"
    );
    vm.gc_now();
    assert_eq!(
        vm.gc_stats().pretenured_scanned_words,
        0,
        "pointer-free pretenured objects must not be region-scanned"
    );
    assert_eq!(vm.load_byte(vm.slot_ptr(0), 0), 0);
    assert_eq!(vm.load_int(vm.slot_ptr(1), 0), 1);
    verify_vm(&vm);
}

#[test]
fn semispace_with_markers_reuses_decodes_but_processes_all_roots() {
    // §7.1: "Generational stack collection can also be used with
    // non-generational collectors" — every collection still relocates
    // every root, but cached frames skip the trace-table decode.
    let config = small_config().marker_policy(MarkerPolicy::PAPER);
    let mut m = MutatorState::new();
    m.barrier = WriteBarrier::None;
    let mut vm = Vm::with_mutator(m, tilgc_core::SemispacePlan::new(&config).into_collector());
    let site = vm.site("t::deep");
    let d = frame_with_ptrs(&mut vm, 1);
    // A deep, persistent stack with one root per frame.
    for i in 0..200 {
        vm.push_frame(d);
        let obj = vm.alloc_record(site, &[Value::Int(i)]).unwrap();
        vm.set_slot(0, Value::Ptr(obj));
    }
    // Churn garbage at the top: repeated collections over an unchanged
    // prefix.
    for _ in 0..30_000 {
        let _ = vm.alloc_record(site, &[Value::Int(0)]);
    }
    let s = vm.gc_stats();
    assert!(s.collections > 3);
    assert!(
        s.frames_reused > 3 * s.frames_scanned,
        "the scan cache must carry most frames: reused {} vs scanned {}",
        s.frames_reused,
        s.frames_scanned
    );
    // Every frame's root is still correct after all those moving GCs.
    for depth in 0..200 {
        let frame = vm.mutator().stack.frame(depth);
        let addr = Addr::new(frame.word(0) as u32);
        assert_eq!(vm.load_int(addr, 0), depth as i64);
    }
    verify_vm(&vm);
}
