//! Telemetry reconciliation: the event stream is not a parallel universe
//! of approximations — its sums must reproduce `GcStats` exactly, on
//! every plan, and an installed-but-disabled recorder must leave the
//! deterministic counters byte-identical to a run with no recorder.

use tilgc_core::{build_vm, build_vm_with_recorder, CollectorKind, GcConfig, PretenurePolicy};
use tilgc_mem::SiteId;
use tilgc_obs::{jsonl, schema, Event, NullRecorder, RingRecorder};
use tilgc_runtime::{DescId, FrameDesc, GcStats, Trace, Value, Vm};

/// The site the pretenuring configuration tenures at birth. Site ids are
/// assigned in registration order starting at 1; the workload registers
/// this site first and asserts the id matched.
const CELL_SITE: u16 = 1;

fn config_for(kind: CollectorKind) -> GcConfig {
    let config = GcConfig::new()
        .heap_budget_bytes(256 << 10)
        .nursery_bytes(8 << 10);
    if kind == CollectorKind::GenerationalStackPretenure {
        let mut policy = PretenurePolicy::new();
        policy.add_site(SiteId::new(CELL_SITE));
        config.pretenure(policy)
    } else {
        config
    }
}

fn deep(vm: &mut Vm, d: DescId, site: SiteId, n: usize) {
    if n == 0 {
        vm.gc_now();
        return;
    }
    vm.push_frame(d);
    let c = vm
        .alloc_record(site, &[Value::Int(n as i64), Value::NULL])
        .unwrap();
    vm.set_slot(0, Value::Ptr(c));
    vm.set_slot(1, Value::NULL);
    deep(vm, d, site, n - 1);
    // Collect partway up so the unwound prefix differs from the scanned
    // one — frames_reused gets a chance to be nonzero under markers.
    if n == 20 {
        vm.gc_now();
    }
    vm.pop_frame();
}

/// Exercises every counter the events reconcile against: minor and major
/// collections, barrier traffic, a pointer array, deep recursion for the
/// marker machinery, and a forced final collection so every allocation
/// delta has been drained into a `site-sample` by the end.
fn workload(vm: &mut Vm) {
    let cell = vm.site("telem::cell");
    assert_eq!(cell.get(), CELL_SITE);
    let junk = vm.site("telem::junk");
    let arr = vm.site("telem::arr");
    let d = vm.register_frame(FrameDesc::new("telem").slots(2, Trace::Pointer));
    vm.push_frame(d);
    vm.set_slot(0, Value::NULL);
    vm.set_slot(1, Value::NULL);
    for i in 0..150 {
        let tail = vm.slot_ptr(0);
        let c = vm
            .alloc_record(cell, &[Value::Int(i), Value::Ptr(tail)])
            .unwrap();
        vm.set_slot(0, Value::Ptr(c));
        for _ in 0..20 {
            let _ = vm.alloc_record(junk, &[Value::Int(-1), Value::NULL]);
        }
    }
    // Old-to-young store: the head is tenured by the forced collection,
    // the fresh cell is nursery-young.
    vm.gc_now();
    let head = vm.slot_ptr(0);
    let young = vm
        .alloc_record(cell, &[Value::Int(999), Value::NULL])
        .unwrap();
    vm.store_ptr(head, 1, young);
    let a = vm.alloc_ptr_array(arr, 64, head).unwrap();
    vm.set_slot(1, Value::Ptr(a));
    deep(vm, d, cell, 40);
    vm.gc_major();
    for _ in 0..100 {
        let _ = vm.alloc_record(junk, &[Value::Int(0), Value::NULL]);
    }
    vm.gc_now();
}

/// Zeroes the host-time fields, which legitimately differ run to run;
/// everything else in `GcStats` is deterministic and must match.
fn scrub(mut s: GcStats) -> GcStats {
    s.stack_wall_ns = 0;
    s.copy_wall_ns = 0;
    s.total_wall_ns = 0;
    s
}

#[test]
fn event_sums_reproduce_gc_stats_on_every_plan() {
    for kind in CollectorKind::ALL {
        let config = config_for(kind);
        let recorder = Box::new(RingRecorder::with_capacity(1 << 18));
        let mut vm = build_vm_with_recorder(kind, &config, recorder);
        workload(&mut vm);
        vm.finish();
        let stats = *vm.gc_stats();
        let alloc_bytes = vm.mutator_stats().alloc_bytes;
        let events = RingRecorder::drain_events_from(vm.recorder_mut())
            .expect("a RingRecorder was installed");
        assert!(!events.is_empty(), "{}: no events recorded", kind.label());

        let mut begins = 0u64;
        let mut ends = 0u64;
        let mut censuses = 0u64;
        let mut sum = GcStats::default();
        let mut sum_gc_cycles = 0u64;
        let mut rung_cycles = 0u64;
        let mut sample_alloc_bytes = 0u64;
        let mut sample_copied_bytes = 0u64;
        let mut phase_cycles: std::collections::HashMap<u64, u64> =
            std::collections::HashMap::new();
        let mut end_gc_cycles: std::collections::HashMap<u64, u64> =
            std::collections::HashMap::new();
        for e in &events {
            match e {
                Event::CollectionBegin(_) => begins += 1,
                Event::Phase(p) => *phase_cycles.entry(p.collection).or_default() += p.cycles,
                Event::CollectionEnd(c) => {
                    ends += 1;
                    sum.copied_bytes += c.copied_bytes;
                    sum.scanned_words += c.scanned_words;
                    sum.pretenured_scanned_words += c.pretenured_scanned_words;
                    sum.roots_found += c.roots_found;
                    sum.frames_scanned += c.frames_scanned;
                    sum.frames_reused += c.frames_reused;
                    sum.slots_scanned += c.slots_scanned;
                    sum.barrier_entries += c.barrier_entries;
                    sum.markers_placed += c.markers_placed;
                    sum_gc_cycles += c.gc_cycles;
                    end_gc_cycles.insert(c.collection, c.gc_cycles);
                }
                Event::SiteSample(s) => {
                    sample_alloc_bytes += s.alloc_bytes;
                    sample_copied_bytes += s.copied_bytes;
                }
                Event::PressureBegin(_) | Event::PressureEnd(_) => {}
                Event::PressureRung(r) => rung_cycles += r.cycles,
                Event::SitePromote(_) => sum.sites_promoted += 1,
                Event::SiteDemote(_) => sum.sites_demoted += 1,
                Event::HeapCensus(c) => {
                    censuses += 1;
                    assert_eq!(
                        c.collection, ends,
                        "census trails its own collection's end event"
                    );
                    assert!(!c.spaces.is_empty(), "census without space rows");
                    for s in &c.spaces {
                        assert!(
                            s.used_words <= s.reserved_words,
                            "{}: used exceeds reserved",
                            s.space
                        );
                        assert!(s.chunks > 0, "{}: space owns no chunks", s.space);
                    }
                }
                // Fault-free runs never degrade.
                Event::DegradationBegin(_) | Event::DegradationEnd(_) => {
                    panic!("degradation event on a fault-free run")
                }
            }
        }

        let label = kind.label();
        assert_eq!(begins, stats.collections, "{label}: begin events");
        assert_eq!(ends, stats.collections, "{label}: end events");
        assert_eq!(censuses, stats.collections, "{label}: census events");
        assert_eq!(sum.copied_bytes, stats.copied_bytes, "{label}: copied");
        assert_eq!(sum.scanned_words, stats.scanned_words, "{label}: scanned");
        assert_eq!(
            sum.pretenured_scanned_words, stats.pretenured_scanned_words,
            "{label}: pretenured scan"
        );
        assert_eq!(sum.roots_found, stats.roots_found, "{label}: roots");
        assert_eq!(
            sum.frames_scanned, stats.frames_scanned,
            "{label}: frames scanned"
        );
        assert_eq!(
            sum.frames_reused, stats.frames_reused,
            "{label}: frames reused"
        );
        assert_eq!(
            sum.slots_scanned, stats.slots_scanned,
            "{label}: slots scanned"
        );
        assert_eq!(
            sum.barrier_entries, stats.barrier_entries,
            "{label}: barrier entries"
        );
        assert_eq!(
            sum.markers_placed, stats.markers_placed,
            "{label}: markers placed"
        );
        // Site flips reconcile too (zero here — adaptation is off, so
        // nonzero would mean a phantom flip).
        assert_eq!(
            sum.sites_promoted, stats.sites_promoted,
            "{label}: site promotes"
        );
        assert_eq!(
            sum.sites_demoted, stats.sites_demoted,
            "{label}: site demotes"
        );

        // The global identity: every simulated GC cycle is attributed
        // either to a collection or to a pressure-governor rung.
        assert_eq!(
            sum_gc_cycles + rung_cycles,
            stats.gc_cycles(),
            "{label}: gc cycles"
        );

        // Per-collection phase attribution is exact, not approximate.
        for (collection, total) in &end_gc_cycles {
            assert_eq!(
                phase_cycles.get(collection).copied().unwrap_or(0),
                *total,
                "{label}: phase cycle sum of collection {collection}"
            );
        }

        // Per-site samples: every allocation was drained (the workload
        // ends in a forced collection) and every copy carries its site.
        assert_eq!(
            sample_alloc_bytes, alloc_bytes,
            "{label}: sampled alloc bytes"
        );
        assert_eq!(
            sample_copied_bytes, stats.copied_bytes,
            "{label}: sampled copied bytes"
        );

        // The stream renders to schema-valid JSONL on every plan.
        let doc = jsonl::render(label, "telemetry-test", 150_000_000, &[], &events);
        schema::validate_jsonl(&doc).unwrap_or_else(|e| panic!("{label}: {e}"));

        // Plan-specific signal checks, so the reconciliation above is
        // not vacuously summing zeros.
        assert!(stats.collections >= 3, "{label}: too few collections");
        assert!(stats.copied_bytes > 0, "{label}: nothing copied");
        if kind != CollectorKind::Semispace {
            assert!(stats.barrier_entries > 0, "{label}: no barrier traffic");
        }
        if kind == CollectorKind::GenerationalStack
            || kind == CollectorKind::GenerationalStackPretenure
        {
            assert!(stats.markers_placed > 0, "{label}: no markers placed");
        }
        if kind == CollectorKind::GenerationalStackPretenure {
            assert!(
                stats.pretenured_scanned_words > 0,
                "{label}: pretenured region never scanned"
            );
        }
    }
}

/// The PR 9 metrics layer reconciles exactly too: the streaming pause
/// histogram's count/sum reproduce `GcStats` (modulo governor rung
/// cycles, which are charged outside collection brackets by design), its
/// percentiles are ordered, and the MMU curve is monotone in the window.
#[test]
fn pause_metrics_reconcile_against_gc_stats_on_every_plan() {
    use tilgc_obs::metrics::PauseMetrics;
    for kind in CollectorKind::ALL {
        let config = config_for(kind);
        let recorder = Box::new(RingRecorder::with_capacity(1 << 18));
        let mut vm = build_vm_with_recorder(kind, &config, recorder);
        workload(&mut vm);
        vm.finish();
        let stats = *vm.gc_stats();
        let client_cycles = vm.mutator_stats().client_cycles;
        let events = RingRecorder::drain_events_from(vm.recorder_mut())
            .expect("a RingRecorder was installed");

        let label = kind.label();
        let mut metrics = PauseMetrics::from_events(&events);
        metrics.set_horizon(client_cycles + stats.gc_cycles());
        let h = metrics.histogram();

        // Exact identities against GcStats.
        assert_eq!(h.count(), stats.collections, "{label}: histogram count");
        assert_eq!(
            metrics.pause_count() as u64,
            stats.collections,
            "{label}: pause intervals"
        );
        let rung_cycles: u64 = events
            .iter()
            .filter_map(|e| match e {
                Event::PressureRung(r) => Some(r.cycles),
                _ => None,
            })
            .sum();
        assert_eq!(
            h.sum() + rung_cycles,
            stats.gc_cycles(),
            "{label}: histogram sum + rung cycles == total gc cycles"
        );
        assert!(h.max() <= stats.gc_cycles(), "{label}: max pause bound");
        assert!(h.min() > 0, "{label}: zero-cycle collection");

        // Percentiles are ordered and land within [min, max].
        let ps: Vec<u64> = [500, 900, 990, 999, 1000]
            .iter()
            .map(|&p| h.percentile(p))
            .collect();
        assert!(ps.windows(2).all(|w| w[0] <= w[1]), "{label}: {ps:?}");
        assert!(ps[0] >= h.min(), "{label}: p50 below min");
        assert_eq!(ps[4], h.max(), "{label}: p100 is the max");

        // MMU is not monotone in the window in general (clustered pauses
        // can dent larger windows), but for this workload's pause spacing
        // the curve is non-decreasing — and the whole-run point must be
        // exactly the run's mutator fraction. All deterministic.
        let horizon = metrics.horizon();
        assert_eq!(
            horizon,
            client_cycles + stats.gc_cycles(),
            "{label}: horizon is the run's full timeline"
        );
        let windows = [1_000, 10_000, 100_000, horizon];
        let curve = metrics.mmu_curve(&windows);
        assert!(
            curve.windows(2).all(|w| w[0].1 <= w[1].1),
            "{label}: MMU not monotone: {curve:?}"
        );
        let overall = (horizon - (stats.gc_cycles() - rung_cycles)) * 1000 / horizon;
        assert_eq!(
            curve.last().unwrap().1,
            overall,
            "{label}: whole-run MMU is the mutator fraction"
        );
        assert!(curve.iter().all(|&(_, u)| u <= 1000), "{label}: {curve:?}");
    }
}

/// A workload that gives the online estimator real signal in both
/// directions: `keep` allocates only survivors (promotion evidence),
/// the statically seeded `drop` site allocates only garbage that majors
/// reveal as dead (demotion evidence).
fn adaptive_workload(vm: &mut Vm) {
    let keep = vm.site("telem::cell"); // id 1 — the statically seeded site
    assert_eq!(keep.get(), CELL_SITE);
    let hot = vm.site("telem::hot");
    let d = vm.register_frame(FrameDesc::new("adapt").slots(1, Trace::Pointer));
    vm.push_frame(d);
    vm.set_slot(0, Value::NULL);
    for round in 0..30 {
        // `hot` survivors chain onto the rooted list every round.
        for i in 0..16 {
            let tail = vm.slot_ptr(0);
            let c = vm
                .alloc_record(hot, &[Value::Int(i), Value::Ptr(tail)])
                .unwrap();
            vm.set_slot(0, Value::Ptr(c));
        }
        // The seeded site's objects are all garbage.
        for _ in 0..64 {
            let _ = vm.alloc_record(keep, &[Value::Int(-1), Value::NULL]);
        }
        vm.gc_now();
        if round % 3 == 2 {
            vm.gc_major();
        }
    }
}

#[test]
fn adaptive_flips_reconcile_events_against_stats() {
    let mut policy = PretenurePolicy::new();
    policy.add_site(SiteId::new(CELL_SITE));
    let config = GcConfig::new()
        .heap_budget_bytes(256 << 10)
        .nursery_bytes(8 << 10)
        .pretenure(policy)
        .adaptive(tilgc_core::AdaptiveConfig::default());
    let kind = CollectorKind::GenerationalStackPretenure;

    let mut vm = build_vm_with_recorder(
        kind,
        &config,
        Box::new(RingRecorder::with_capacity(1 << 18)),
    );
    adaptive_workload(&mut vm);
    vm.finish();
    let stats = *vm.gc_stats();
    let events =
        RingRecorder::drain_events_from(vm.recorder_mut()).expect("a RingRecorder was installed");

    let mut promotes = 0u64;
    let mut demotes = 0u64;
    for e in &events {
        match e {
            Event::SitePromote(p) => {
                assert!(p.survival_permille <= 1000);
                promotes += 1;
            }
            Event::SiteDemote(dm) => {
                assert!(dm.survival_permille <= 1000);
                assert!(dm.reason == "adaptive" || dm.reason == "pressure");
                demotes += 1;
            }
            _ => {}
        }
    }
    assert_eq!(promotes, stats.sites_promoted, "promote events vs stats");
    assert_eq!(demotes, stats.sites_demoted, "demote events vs stats");
    assert!(promotes > 0, "the always-survives site never promoted");
    assert!(demotes > 0, "the always-dies seeded site never demoted");

    // The stream (flips included) renders to schema-valid JSONL.
    let doc = jsonl::render(kind.label(), "adaptive-test", 150_000_000, &[], &events);
    schema::validate_jsonl(&doc).unwrap_or_else(|e| panic!("{e}"));

    // Adaptation reads the same windows the recorder samples; running
    // without any recorder must decide identically.
    let mut bare = build_vm(kind, &config);
    adaptive_workload(&mut bare);
    bare.finish();
    assert_eq!(
        scrub(stats),
        scrub(*bare.gc_stats()),
        "recorder presence changed adaptive decisions"
    );
}

#[test]
fn adaptation_off_yields_no_flips() {
    let config = config_for(CollectorKind::GenerationalStackPretenure);
    let mut vm = build_vm(CollectorKind::GenerationalStackPretenure, &config);
    adaptive_workload(&mut vm);
    vm.finish();
    assert_eq!(vm.gc_stats().sites_promoted, 0);
    assert_eq!(vm.gc_stats().sites_demoted, 0);
}

#[test]
fn installed_recorders_leave_gc_stats_byte_identical() {
    for kind in CollectorKind::ALL {
        let config = config_for(kind);

        let mut bare = build_vm(kind, &config);
        workload(&mut bare);
        bare.finish();

        let mut nulled = build_vm_with_recorder(kind, &config, Box::new(NullRecorder));
        workload(&mut nulled);
        nulled.finish();

        let mut ringed = build_vm_with_recorder(
            kind,
            &config,
            Box::new(RingRecorder::with_capacity(1 << 18)),
        );
        workload(&mut ringed);
        ringed.finish();

        let label = kind.label();
        let base = scrub(*bare.gc_stats());
        assert_eq!(
            base,
            scrub(*nulled.gc_stats()),
            "{label}: NullRecorder perturbed GcStats"
        );
        assert_eq!(
            base,
            scrub(*ringed.gc_stats()),
            "{label}: RingRecorder perturbed GcStats"
        );
        assert_eq!(
            bare.mutator_stats().client_cycles,
            ringed.mutator_stats().client_cycles,
            "{label}: recording perturbed client cycles"
        );
        assert_eq!(
            bare.mutator_stats().alloc_bytes,
            ringed.mutator_stats().alloc_bytes,
            "{label}: recording perturbed allocation accounting"
        );
    }
}
