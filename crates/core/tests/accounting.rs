//! Accounting pinning: the verifier's independent [`LiveReport`] must
//! agree with each plan's own `GcStats`/`CollectionInspection` byte
//! accounting on hand-built heaps — exact equalities, not just the
//! inequalities `check_inspection` enforces. One test per plan the paper
//! compares, including a pretenured region scanned in place.

use tilgc_core::{build_vm, verify_collection, CollectorKind, GcConfig, PretenurePolicy};
use tilgc_mem::SiteId;
use tilgc_runtime::{CollectionInspection, FrameDesc, Trace, Value};

/// Bytes of a 2-field record: header word + 2 field words.
const REC_BYTES: u64 = 24;

fn inspection(vm: &tilgc_runtime::Vm) -> CollectionInspection {
    *vm.collector()
        .last_inspection()
        .expect("a collection has run")
}

#[test]
fn semispace_report_matches_copied_bytes_exactly() {
    let config = GcConfig::new().heap_budget_bytes(64 << 10);
    let mut vm = build_vm(CollectorKind::Semispace, &config);
    let frame = vm.register_frame(FrameDesc::new("acct").slots(2, Trace::Pointer));
    vm.push_frame(frame);
    let site = vm.site("acct::rec");
    let keep = vm
        .alloc_record(site, &[Value::Int(1), Value::Int(2)])
        .unwrap();
    vm.set_slot(0, Value::Ptr(keep));
    // Garbage that must NOT be copied or reported.
    for i in 0..10 {
        let _ = vm.alloc_record(site, &[Value::Int(i), Value::Int(i)]);
    }
    vm.gc_now();

    let report = verify_collection(&vm, 0);
    let stats = vm.gc_stats();
    assert_eq!(stats.collections, 1);
    assert_eq!(report.objects, 1);
    assert_eq!(report.bytes as u64, stats.copied_bytes);
    assert_eq!(stats.copied_bytes, REC_BYTES);

    let insp = inspection(&vm);
    assert_eq!(insp.collection, 1);
    assert!(insp.was_major);
    assert!(insp.live_accounting_complete);
    assert_eq!(insp.depth_at_gc, 1);
    assert_eq!(insp.copied_bytes, REC_BYTES);
    // A semispace collection Cheney-scans exactly what it copied.
    assert_eq!(
        insp.scanned_words * tilgc_mem::WORD_BYTES as u64,
        insp.copied_bytes
    );
    assert_eq!(insp.live_bytes_after, REC_BYTES);
    assert_eq!(insp.frames_scanned, 1);
    assert_eq!(insp.frames_reused, 0);
    assert_eq!(insp.pretenured_scanned_words, 0);
}

#[test]
fn generational_minor_promotes_exactly_the_reachable_bytes() {
    let config = GcConfig::new()
        .heap_budget_bytes(256 << 10)
        .nursery_bytes(8 << 10);
    let mut vm = build_vm(CollectorKind::Generational, &config);
    let frame = vm.register_frame(FrameDesc::new("acct").slots(2, Trace::Pointer));
    vm.push_frame(frame);
    let site = vm.site("acct::cons");
    // A 5-cell list rooted in slot 0, plus interleaved garbage.
    vm.set_slot(0, Value::NULL);
    for i in 0..5 {
        let tail = vm.slot_ptr(0);
        let cell = vm
            .alloc_record(site, &[Value::Ptr(tail), Value::Int(i)])
            .unwrap();
        vm.set_slot(0, Value::Ptr(cell));
        let _ = vm.alloc_record(site, &[Value::NULL, Value::Int(-1)]);
    }
    vm.gc_now();

    let report = verify_collection(&vm, 0);
    let stats = vm.gc_stats();
    assert_eq!(stats.collections, 1);
    assert_eq!(stats.major_collections, 0);
    assert_eq!(report.objects, 5);
    // Immediate promotion: after a minor, everything reachable sits in
    // the tenured generation and was copied by this collection.
    assert_eq!(report.bytes as u64, stats.copied_bytes);
    assert_eq!(stats.copied_bytes, 5 * REC_BYTES);

    let insp = inspection(&vm);
    assert!(!insp.was_major);
    assert!(insp.live_accounting_complete, "zero tenure threshold");
    assert_eq!(insp.copied_bytes, 5 * REC_BYTES);
    assert_eq!(insp.live_bytes_after, 5 * REC_BYTES);
}

#[test]
fn incomplete_live_accounting_is_flagged_under_a_tenure_threshold() {
    // With a §7.2 tenure threshold, minor survivors are copied back into
    // the nursery system and are missing from `last_live_bytes` — the
    // inspection must say so, or verifiers would false-positive.
    let config = GcConfig::new()
        .heap_budget_bytes(256 << 10)
        .nursery_bytes(8 << 10)
        .tenure_threshold(2);
    let mut vm = build_vm(CollectorKind::GenerationalStack, &config);
    let frame = vm.register_frame(FrameDesc::new("acct").slots(1, Trace::Pointer));
    vm.push_frame(frame);
    let site = vm.site("acct::rec");
    let keep = vm
        .alloc_record(site, &[Value::Int(5), Value::Int(6)])
        .unwrap();
    vm.set_slot(0, Value::Ptr(keep));
    vm.gc_now();

    let insp = inspection(&vm);
    assert!(!insp.was_major);
    assert!(!insp.live_accounting_complete);
    // The survivor was still copied (within the nursery system), and the
    // oracle must accept the incomplete record.
    assert_eq!(insp.copied_bytes, REC_BYTES);
    let report = verify_collection(&vm, 0);
    assert_eq!(report.bytes as u64, REC_BYTES);
}

#[test]
fn stack_markers_pin_frame_reuse_accounting() {
    let config = GcConfig::new()
        .heap_budget_bytes(256 << 10)
        .nursery_bytes(8 << 10);
    let mut vm = build_vm(CollectorKind::GenerationalStack, &config);
    let frame = vm.register_frame(FrameDesc::new("acct").slots(1, Trace::Pointer));
    // 30 frames: one more than one marker interval (the paper's n = 25).
    for _ in 0..30 {
        vm.push_frame(frame);
    }
    vm.gc_now();
    let first = inspection(&vm);
    assert_eq!(first.depth_at_gc, 30);
    assert_eq!(first.frames_scanned, 30, "first scan decodes everything");
    assert_eq!(first.frames_reused, 0);

    // Untouched stack: the second scan must reuse the marker-covered
    // prefix and rescan only the frames above the deepest intact marker.
    vm.gc_now();
    let second = inspection(&vm);
    assert_eq!(second.frames_scanned + second.frames_reused, 30);
    assert!(
        second.frames_reused >= 20,
        "marker at the 25-frame interval should cover most of the stack \
         (reused {})",
        second.frames_reused
    );
    assert_eq!(second.frames_reused, second.claimed_prefix);
    // The simulation oracle concedes the whole untouched stack but the
    // top frame; the claim must stay within it.
    assert_eq!(second.oracle_prefix, 29);
    assert!(second.claimed_prefix <= second.oracle_prefix);
    assert_eq!(second.copied_bytes, 0, "nothing young to copy");
    verify_collection(&vm, 0);
}

#[test]
fn pretenured_region_is_scanned_in_place_and_reported() {
    // Site ids are handed out in registration order starting at 1; the
    // pretenure policy is built before the VM exists.
    let mut policy = PretenurePolicy::new();
    policy.add_site(SiteId::new(1));
    let config = GcConfig::new()
        .heap_budget_bytes(256 << 10)
        .nursery_bytes(8 << 10)
        .pretenure(policy);
    let mut vm = build_vm(CollectorKind::GenerationalStackPretenure, &config);
    let frame = vm.register_frame(FrameDesc::new("acct").slots(2, Trace::Pointer));
    vm.push_frame(frame);
    let pre_site = vm.site("acct::pre"); // id 1: pretenured
    let young_site = vm.site("acct::young"); // id 2: nursery
    let young = vm
        .alloc_record(young_site, &[Value::Int(7), Value::Int(8)])
        .unwrap();
    vm.set_slot(0, Value::Ptr(young));
    // Born tenured, holding the only heap reference into the nursery —
    // the in-place scan must find it.
    let pre = vm
        .alloc_record(pre_site, &[Value::Ptr(young), Value::Int(9)])
        .unwrap();
    vm.set_slot(1, Value::Ptr(pre));
    vm.gc_now();

    let report = verify_collection(&vm, 0);
    let stats = vm.gc_stats();
    let insp = inspection(&vm);
    assert!(!insp.was_major);
    assert_eq!(stats.pretenured_bytes, REC_BYTES, "one record born tenured");
    assert!(
        insp.pretenured_scanned_words > 0,
        "the fresh pretenured region owes its one in-place scan"
    );
    // Reachable = the promoted young record (copied) + the pretenured
    // record (never copied, counted via pretenured_bytes).
    assert_eq!(report.objects, 2);
    assert_eq!(
        report.bytes as u64,
        insp.copied_bytes + stats.pretenured_bytes
    );
    assert_eq!(insp.copied_bytes, REC_BYTES);
    assert_eq!(insp.live_bytes_after, 2 * REC_BYTES);
}
