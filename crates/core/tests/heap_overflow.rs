//! Out-of-memory is a guest-level event, not a host-level one: on every
//! plan, budget exhaustion must surface as a catchable `HeapOverflow`
//! raise (the guest resumes at its handler and keeps allocating), an
//! unhandled raise must report `RaiseOutcome::Uncaught` without
//! panicking, and a run that *recovers* from pressure via the governor's
//! ladder must stay byte-deterministic.

use tilgc_core::{build_vm, build_vm_with_recorder, CollectorKind, GcConfig};
use tilgc_mem::Addr;
use tilgc_obs::{jsonl, schema, Event, RingRecorder};
use tilgc_runtime::{FrameDesc, GcStats, HeapOverflow, RaiseOutcome, Trace, Value, Vm};

/// A budget small enough that a retained chain of 1 KB pointer arrays
/// exhausts it within a few dozen allocations on every plan.
fn tight_config() -> GcConfig {
    GcConfig::new()
        .heap_budget_bytes(64 << 10)
        .nursery_bytes(4 << 10)
        .large_object_bytes(1 << 10)
}

/// Allocates 128-slot pointer arrays chained through their fill value
/// until the collector refuses; returns the overflow. The head of the
/// chain stays rooted in slot 0, so live data only grows.
fn exhaust(vm: &mut Vm) -> HeapOverflow {
    let site = vm.site("ovf::chain");
    for _ in 0..10_000 {
        let head = vm.slot_ptr(0);
        match vm.alloc_ptr_array(site, 128, head) {
            Ok(a) => vm.set_slot(0, Value::Ptr(a)),
            Err(e) => return e,
        }
    }
    panic!("a 64 KB budget survived 10k retained 1 KB arrays");
}

#[test]
fn caught_overflow_resumes_the_guest_on_every_plan() {
    for kind in CollectorKind::ALL {
        let label = kind.label();
        let mut vm = build_vm(kind, &tight_config());
        let d = vm.register_frame(FrameDesc::new("ovf").slot(Trace::Pointer));
        vm.push_frame(d);
        vm.set_slot(0, Value::NULL);
        vm.push_handler();

        let overflow = exhaust(&mut vm);
        assert_eq!(
            overflow.outcome,
            RaiseOutcome::Caught { handler_depth: 1 },
            "{label}: the installed handler must catch the raise"
        );
        assert!(
            overflow.error.budget().budget_words > 0,
            "{label}: error carries the budget snapshot"
        );
        assert!(
            overflow.error.to_string().contains("space exhausted"),
            "{label}: {}",
            overflow.error
        );

        // The guest resumes at the handler: drop the chain, collect, and
        // the same allocation succeeds again.
        vm.set_slot(0, Value::NULL);
        vm.gc_now();
        let site = vm.site("ovf::chain");
        let again = vm.alloc_ptr_array(site, 128, Addr::NULL);
        assert!(
            again.is_ok(),
            "{label}: heap unusable after a caught overflow: {:?}",
            again.err()
        );
    }
}

#[test]
fn unhandled_overflow_is_a_typed_verdict_not_a_panic() {
    for kind in CollectorKind::ALL {
        let label = kind.label();
        let mut vm = build_vm(kind, &tight_config());
        let d = vm.register_frame(FrameDesc::new("ovf").slot(Trace::Pointer));
        vm.push_frame(d);
        vm.set_slot(0, Value::NULL);

        let overflow = exhaust(&mut vm);
        assert_eq!(
            overflow.outcome,
            RaiseOutcome::Uncaught,
            "{label}: no handler installed"
        );
        // The VM object itself outlives the guest program: the host can
        // still inspect it, and a hypothetical fresh guest could run.
        vm.set_slot(0, Value::NULL);
        vm.gc_now();
        assert!(vm.gc_stats().collections > 0, "{label}");
    }
}

/// Enough injected attempt-failures to push past the ordinary slow path
/// into a governor episode, per plan: the semispace ladder opens after
/// two failed attempts, the generational nursery ladder after three.
fn episode_tokens(kind: CollectorKind) -> u32 {
    match kind {
        CollectorKind::Semispace => 2,
        _ => 3,
    }
}

/// A list-building workload with a burst of injected allocation
/// failures in the middle — deep enough to open a pressure episode, on a
/// budget generous enough that the retry rungs recover it.
fn pressured_workload(vm: &mut Vm, kind: CollectorKind) {
    let site = vm.site("ovf::cell");
    let d = vm.register_frame(FrameDesc::new("ovf").slot(Trace::Pointer));
    vm.push_frame(d);
    vm.set_slot(0, Value::NULL);
    for i in 0..300 {
        if i == 150 {
            vm.mutator_mut().force_alloc_failures = episode_tokens(kind);
        }
        let tail = vm.slot_ptr(0);
        let c = vm
            .alloc_record(site, &[Value::Int(i), Value::Ptr(tail)])
            .expect("a generous budget recovers via the retry rungs");
        vm.set_slot(0, Value::Ptr(c));
    }
    vm.gc_now();
}

fn scrub(mut s: GcStats) -> GcStats {
    s.stack_wall_ns = 0;
    s.copy_wall_ns = 0;
    s.total_wall_ns = 0;
    s
}

#[test]
fn recovered_pressure_runs_stay_byte_deterministic() {
    let config = GcConfig::new()
        .heap_budget_bytes(256 << 10)
        .nursery_bytes(8 << 10);
    for kind in CollectorKind::ALL {
        let label = kind.label();
        let mut a = build_vm(kind, &config);
        pressured_workload(&mut a, kind);
        a.finish();
        let mut b = build_vm(kind, &config);
        pressured_workload(&mut b, kind);
        b.finish();
        assert_eq!(
            scrub(*a.gc_stats()),
            scrub(*b.gc_stats()),
            "{label}: identical pressured runs diverged"
        );

        // A recorder must observe the episode without perturbing the
        // deterministic counters, and the rung events must render to
        // schema-valid JSONL (begin/rung/end bracketing included).
        let mut r = build_vm_with_recorder(
            kind,
            &config,
            Box::new(RingRecorder::with_capacity(1 << 16)),
        );
        pressured_workload(&mut r, kind);
        r.finish();
        assert_eq!(
            scrub(*a.gc_stats()),
            scrub(*r.gc_stats()),
            "{label}: recording a pressured run perturbed GcStats"
        );
        let events = RingRecorder::drain_events_from(r.recorder_mut()).expect("recorder installed");
        let begins = events
            .iter()
            .filter(|e| matches!(e, Event::PressureBegin(_)))
            .count();
        let rungs = events
            .iter()
            .filter(|e| matches!(e, Event::PressureRung(_)))
            .count();
        assert!(begins >= 1, "{label}: no pressure episode recorded");
        assert!(rungs >= 1, "{label}: no ladder rung recorded");
        let doc = jsonl::render(label, "heap-overflow-test", 150_000_000, &[], &events);
        schema::validate_jsonl(&doc).unwrap_or_else(|e| panic!("{label}: {e}"));
    }
}
