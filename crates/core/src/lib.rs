//! Collectors for the PLDI 1998 paper *Generational Stack Collection and
//! Profile-Driven Pretenuring* (Cheng, Harper, Lee).
//!
//! This crate is the paper's contribution proper, built on the
//! [`tilgc-mem`](tilgc_mem) and [`tilgc-runtime`](tilgc_runtime)
//! substrates, and is organized in three layers:
//!
//! * **spaces** ([`space`] module) — the policy components:
//!   [`CopySpace`] semispace pairs, the mark-sweep [`LargeObjectSpace`],
//!   and the scanned-in-place [`PretenuredRegion`] (§6), each carrying
//!   its [`CopySemantics`];
//! * **plans** ([`Plan`]) — the compositions the paper compares:
//!   [`SemispacePlan`] (the Fenichel–Yochelson/Cheney baseline with
//!   target-liveness resizing, r = 0.10), [`GenerationalPlan`]
//!   (nursery + tenured generation with immediate promotion and
//!   sequential-store-buffer filtering, §2.1), and [`PretenuringPlan`]
//!   (§6 site-directed tenured allocation). Plans reach the runtime
//!   through the [`PlanCollector`] adapter;
//! * **the tracing driver** ([`Evacuator`]) — one work-queue transitive
//!   closure (Cheney scan cursors + an [`ObjectQueue`] for objects traced
//!   in place) that every plan configures and reuses.
//!
//! Cross-cutting the layers: **generational stack collection** (§5) —
//! scan caching in [`roots`], driven by stack markers placed per
//! [`MarkerPolicy`] — and **profile-driven pretenuring** (§6) per
//! [`PretenurePolicy`], including the §7.2 no-scan and site-grouping
//! extensions.
//!
//! # Quick start
//!
//! ```
//! use tilgc_core::{build_collector, CollectorKind, GcConfig};
//! use tilgc_runtime::{Value, Vm};
//!
//! let config = GcConfig::new().heap_budget_bytes(1 << 20);
//! let mut vm = Vm::new(build_collector(CollectorKind::Generational, &config));
//! let site = vm.site("example::pair");
//! let pair = vm.alloc_record(site, &[Value::Int(1), Value::Int(2)]).unwrap();
//! assert_eq!(vm.load_int(pair, 0), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
mod config;
mod evac;
mod generational;
mod governor;
mod los;
mod plan;
pub mod roots;
pub mod scheduler;
mod semispace;
pub mod space;
mod util;
pub mod verify;

pub use adaptive::{AdaptiveConfig, AdaptiveOutcome, AdaptivePretenure};
pub use config::{GcConfig, MarkerPolicy, PretenurePolicy};
pub use evac::{Evacuator, ObjectQueue, POISON};
pub use generational::GenerationalPlan;
pub use los::LargeObjectSpace;
pub use plan::{Plan, PlanCollector, PretenuringPlan};
pub use roots::{FrameScanInfo, RootLoc, ScanCache, ScanOutcome};
pub use scheduler::{WorkerFaultKind, WorkerFaultSpec};
pub use semispace::SemispacePlan;
pub use space::{CopySemantics, CopySpace, PretenuredRegion, SpacePolicy};
pub use verify::{
    check_graph, check_inspection, graph_snapshot, verify_collection, verify_vm, vm_snapshot,
    LiveReport,
};

use tilgc_runtime::{Collector, MutatorState, Vm, WriteBarrier};

/// The collector configurations the paper compares (§3).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CollectorKind {
    /// Semispace baseline.
    Semispace,
    /// Generational collector, no stack markers, no pretenuring.
    Generational,
    /// Generational collector with stack markers (n = 25).
    GenerationalStack,
    /// Generational collector with stack markers and pretenuring.
    /// Requires a [`PretenurePolicy`] in the configuration to have any
    /// effect.
    GenerationalStackPretenure,
}

impl CollectorKind {
    /// All four configurations, in the paper's comparison order.
    pub const ALL: [CollectorKind; 4] = [
        CollectorKind::Semispace,
        CollectorKind::Generational,
        CollectorKind::GenerationalStack,
        CollectorKind::GenerationalStackPretenure,
    ];

    /// The label used in the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            CollectorKind::Semispace => "semispace",
            CollectorKind::Generational => "generational",
            CollectorKind::GenerationalStack => "gen+markers",
            CollectorKind::GenerationalStackPretenure => "gen+markers+pretenure",
        }
    }
}

/// Builds a collector of the given kind, adjusting `config` to the kind's
/// needs (marker policy on for the stack-collection variants; pretenuring
/// dropped for the kinds that do not use it) and wrapping the plan in the
/// [`PlanCollector`] adapter.
pub fn build_collector(kind: CollectorKind, config: &GcConfig) -> Box<dyn Collector> {
    let mut config = config.clone();
    match kind {
        CollectorKind::Semispace => {
            config.pretenure = None;
            config.adaptive = None;
            SemispacePlan::new(&config).into_collector()
        }
        CollectorKind::Generational => {
            config.marker_policy = MarkerPolicy::Disabled;
            config.pretenure = None;
            config.adaptive = None;
            GenerationalPlan::new(&config).into_collector()
        }
        CollectorKind::GenerationalStack => {
            if !config.marker_policy.is_enabled() {
                config.marker_policy = MarkerPolicy::PAPER;
            }
            config.pretenure = None;
            config.adaptive = None;
            GenerationalPlan::new(&config).into_collector()
        }
        CollectorKind::GenerationalStackPretenure => {
            if !config.marker_policy.is_enabled() {
                config.marker_policy = MarkerPolicy::PAPER;
            }
            PretenuringPlan::new(&config).into_collector()
        }
    }
}

/// Builds a full [`Vm`] of the given kind, with the write barrier matched
/// to the collector (none for semispace, SSB otherwise — the paper's
/// setup).
pub fn build_vm(kind: CollectorKind, config: &GcConfig) -> Vm {
    let mut m = MutatorState::new();
    m.barrier = match kind {
        CollectorKind::Semispace => WriteBarrier::None,
        _ => WriteBarrier::ssb(),
    };
    Vm::with_mutator(m, build_collector(kind, config))
}

/// Builds a full [`Vm`] like [`build_vm`], with a telemetry recorder
/// installed: the plans emit per-collection events, phase spans and
/// per-site survival samples through it. Telemetry is host-side only —
/// it charges no simulated cycles and leaves `GcStats` untouched, so a
/// recorded run's deterministic counters match an unrecorded run's
/// exactly.
pub fn build_vm_with_recorder(
    kind: CollectorKind,
    config: &GcConfig,
    recorder: Box<dyn tilgc_runtime::Recorder>,
) -> Vm {
    let mut vm = build_vm(kind, config);
    vm.set_recorder(recorder);
    vm
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilgc_runtime::Value;

    #[test]
    fn build_all_kinds() {
        let config = GcConfig::new().heap_budget_bytes(1 << 20);
        for kind in CollectorKind::ALL {
            let mut vm = build_vm(kind, &config);
            let site = vm.site("t::x");
            let a = vm.alloc_record(site, &[Value::Int(7)]).unwrap();
            assert_eq!(vm.load_int(a, 0), 7);
            assert!(!kind.label().is_empty());
        }
    }

    #[test]
    fn plain_generational_never_places_markers() {
        let config = GcConfig::new()
            .heap_budget_bytes(1 << 20)
            .marker_policy(MarkerPolicy::PAPER);
        let mut vm = build_vm(CollectorKind::Generational, &config);
        let site = vm.site("t::x");
        for _ in 0..50_000 {
            let _ = vm.alloc_record(site, &[Value::Int(1)]);
        }
        assert!(vm.gc_stats().collections > 0);
        assert_eq!(vm.gc_stats().markers_placed, 0);
    }

    #[test]
    fn plan_adapter_exposes_the_plan() {
        let config = GcConfig::new().heap_budget_bytes(1 << 20);
        let adapter = PlanCollector::new(SemispacePlan::new(&config));
        assert_eq!(Plan::name(adapter.plan()), "semispace");
        let plan = adapter.into_plan();
        assert!(plan.semispace_words() > 0);
    }
}
